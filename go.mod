module openmb

go 1.24.0
