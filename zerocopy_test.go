package openmb

// Zero-copy data-path benchmarks and invariants. BenchmarkFigure9cEventZeroCopy
// replays the Figure 9(c) event workload's data-path component — paced packets
// traversing ingress -> switch -> monitor runtime — on the pooled ring-buffer
// path; BenchmarkAblationCopyingLinks is the identical workload on the seed's
// copying channel path (fresh heap packet per event, channel links). Both
// report allocs/op, so `go test -bench 'Figure9cEventZeroCopy|AblationCopyingLinks'`
// prints the allocation delta the zero-copy tentpole exists for.

import (
	"net/netip"
	"testing"
	"time"

	"openmb/internal/bed"
	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/monitor"
	"openmb/internal/mbox/nat"
	"openmb/internal/netsim"
	"openmb/internal/packet"
	"openmb/internal/trace"
)

// eventPathRig is the shared topology: an ingress feeding a switch that
// forwards everything to a PRADS-like monitor runtime.
type eventPathRig struct {
	net  *netsim.Network
	rt   *mbox.Runtime
	pool *packet.Pool
	tpls []*packet.Packet
	zero bool
	sent int
}

const eventPathFlows = 256

func newEventPathRig(tb testing.TB, zero bool) *eventPathRig {
	tb.Helper()
	n := netsim.NewWithOptions(netsim.Options{ZeroCopy: zero})
	sw := netsim.NewSwitch(n, "s1")
	rt := mbox.New("mon", monitor.New(), mbox.Options{QueueSize: 1 << 15})
	n.Attach("mon", rt)
	if err := n.Connect("s1", "mon", 0); err != nil {
		tb.Fatal(err)
	}
	sw.Install(netsim.Rule{Priority: 1, Match: packet.MatchAll, OutPorts: []string{"mon"}})
	r := &eventPathRig{net: n, rt: rt, pool: packet.NewPool(packet.PoolOptions{}), zero: zero}
	r.tpls = make([]*packet.Packet, eventPathFlows)
	for i := range r.tpls {
		p := mbtestPacket(i)
		r.tpls[i] = p
	}
	tb.Cleanup(func() {
		n.Stop()
		rt.Close()
	})
	return r
}

// mbtestPacket builds a steady-state data packet for flow i whose payload
// matches no service fingerprint, so the monitor's hot path is pure
// record-update work.
func mbtestPacket(i int) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Flags:   packet.FlagACK,
		TTL:     64,
		Payload: []byte("zzz-steady-state-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	}
}

// inject sends the i-th event packet: a pooled recycled clone on the
// zero-copy path, a fresh heap packet on the copying ablation (the seed's
// per-event allocation).
func (r *eventPathRig) inject(tb testing.TB, i int) {
	tpl := r.tpls[i%eventPathFlows]
	var q *packet.Packet
	if r.zero {
		q = r.pool.Clone(tpl)
	} else {
		q = tpl.Clone()
	}
	if err := r.net.Inject("s1", q); err != nil {
		tb.Fatal(err)
	}
	r.sent++
	// Bound the in-flight window so pooled packets actually recycle (and
	// the ablation's queues never overflow); both modes pay the same
	// drain cadence.
	if r.sent%1024 == 0 {
		r.drain(tb)
	}
}

func (r *eventPathRig) drain(tb testing.TB) {
	if !r.net.Quiesce(10*time.Second) || !r.rt.Drain(10*time.Second) {
		tb.Fatal("event path did not drain")
	}
}

func benchEventPath(b *testing.B, zero bool) {
	r := newEventPathRig(b, zero)
	// Warm up: materialize every flow's record and size the pool.
	for i := 0; i < 2*eventPathFlows; i++ {
		r.inject(b, i)
	}
	r.drain(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.inject(b, i)
	}
	r.drain(b)
	b.StopTimer()
	if st := r.pool.Stats(); zero && st.Outstanding != 0 {
		b.Fatalf("pool leak after drain: %+v", st)
	}
}

// BenchmarkFigure9cEventZeroCopy is the zero-copy data path under the
// Figure 9(c) event workload (paced per-flow packets through the monitor).
func BenchmarkFigure9cEventZeroCopy(b *testing.B) { benchEventPath(b, true) }

// BenchmarkAblationCopyingLinks is the same workload on the seed's copying
// path: channel links and a fresh heap packet per event. Compare allocs/op
// against BenchmarkFigure9cEventZeroCopy — the zero-copy tentpole's win is
// this delta.
func BenchmarkAblationCopyingLinks(b *testing.B) { benchEventPath(b, false) }

// TestZeroCopySteadyStateAllocs is the tentpole's allocation invariant: a
// full link hop plus the monitor's HandlePacket costs at most 2 allocs per
// packet on the zero-copy path, while the copying ablation on the identical
// workload still allocates — the flag provably switches implementations.
func TestZeroCopySteadyStateAllocs(t *testing.T) {
	measure := func(zero bool) float64 {
		r := newEventPathRig(t, zero)
		for i := 0; i < 2*eventPathFlows; i++ {
			r.inject(t, i)
		}
		r.drain(t)
		i := 0
		processed := r.rt.Metrics().Processed
		return testing.AllocsPerRun(400, func() {
			r.inject(t, i)
			i++
			// Wait for the packet to clear the monitor so its whole
			// cost lands inside the measured window (and the pooled
			// packet is recycled for the next round).
			processed++
			for r.rt.Metrics().Processed < processed {
				time.Sleep(10 * time.Microsecond)
			}
		})
	}
	if allocs := measure(true); allocs > 2 {
		t.Errorf("zero-copy link hop + monitor HandlePacket: %.2f allocs/packet, want <= 2", allocs)
	}
	if allocs := measure(false); allocs < 1 {
		t.Errorf("copying ablation allocated only %.2f/packet; the ZeroCopy flag is not switching implementations", allocs)
	}
}

// TestBedTraceReplayBorrowDiscipline runs a full testbed — trace replay
// through a switch into a NAT (which rewrites and re-emits) and a monitor
// tap, with an ingress drop fault — on the zero-copy path with an
// accounting pool, and requires every borrowed packet released exactly once
// after quiesce.
func TestBedTraceReplayBorrowDiscipline(t *testing.T) {
	b, err := bed.NewWithNet(core.Options{QuietPeriod: 50 * time.Millisecond}, netsim.Options{ZeroCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	b.Pool = packet.NewPool(packet.PoolOptions{Accounting: true})

	sw := b.AddSwitch("s1")
	dst := b.AddHost("dst", 1<<16)
	natLogic := nat.New(netip.AddrFrom4([4]byte{203, 0, 113, 1}))
	b.AddStandaloneMB("nat1", natLogic, "s2")
	sw2 := b.AddSwitch("s2")
	b.AddStandaloneMB("mon1", monitor.New(), "")
	for _, pair := range [][2]string{{"s1", "nat1"}, {"s1", "mon1"}, {"nat1", "s2"}, {"s2", "dst"}} {
		if err := b.Connect(pair[0], pair[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	sw.Install(netsim.Rule{Priority: 1, Match: packet.MatchAll, OutPorts: []string{"nat1", "mon1"}})
	sw2.Install(netsim.Rule{Priority: 1, Match: packet.MatchAll, OutPorts: []string{"dst"}})
	if err := b.Net.SetFault(netsim.Ingress, "s1", netsim.DropFraction(0.1, 99)); err != nil {
		t.Fatal(err)
	}

	tr := trace.Cloud(trace.CloudConfig{Seed: 11, Flows: 60})
	if err := b.InjectTrace("s1", tr.Packets, 0); err != nil {
		t.Fatal(err)
	}
	if !b.Quiesce(30 * time.Second) {
		t.Fatal("bed did not quiesce")
	}
	if dst.Count() == 0 {
		t.Fatal("no packets made it through the chain")
	}
	// The recording host copies deliveries out and releases the pooled
	// originals at arrival (Host.Received copy-out), so the accounting
	// pool must balance with the records still held — no Reset needed.
	for _, p := range dst.Received() {
		if p.Pooled() {
			t.Fatal("recording host retained a pooled packet; copy-out is not copying")
		}
	}
	if err := b.Pool.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	// The trace itself must be untouched by the replay (pooled clones
	// isolate it): NAT rewrites must not have leaked into the templates.
	for _, p := range tr.Packets {
		if p.Pooled() {
			t.Fatal("trace packet became pooled")
		}
	}
}
