package core

import (
	"fmt"
	"sync"

	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// This file implements the sharded transaction router: the controller-global
// structure that connects reprocess events raised by a source middlebox to
// the transaction that owns the state they touched. The seed kept this state
// as two maps behind a single per-MB mutex; every event route, chunk
// registration, and put acknowledgment serialized on it. The router
// partitions the key space into N power-of-two shards by FlowKey.FastHash(),
// each with its own mutex, so those operations only ever take one shard lock.
//
// FastHash is symmetric — k and k.Reverse() hash equal — so both directions
// of a connection land in the same shard. That property is load-bearing: a
// middlebox may raise events keyed by either direction of a flow it exported
// under the canonical key, and a single shard lock must cover the whole
// conversation for the buffer-until-ACK ordering argument (§4.2.1) to stay a
// one-lock argument.

// maxOrphansPerKey bounds reprocess events held per unregistered key, so
// stragglers from completed transactions cannot accumulate.
const maxOrphansPerKey = 256

// routeKey names one flow key on one source middlebox. Routing state is
// controller-global, so entries are qualified by the source connection:
// different MBs routinely hold state for identical flow keys (e.g. replicas
// fed the same trace).
type routeKey struct {
	mb  *mbConn
	key packet.FlowKey
}

// keyState is a shard's record for one in-transaction flow key: the owning
// transaction, how many of its puts are unacknowledged, and the events
// buffered until those puts are ACKed.
type keyState struct {
	owner    *txn
	pending  int
	buffered []*sbi.Event
	// flushing marks an in-progress ordered drain of buffered: the
	// draining goroutine releases the shard lock around each forward
	// batch, and events arriving meanwhile append to buffered (rather
	// than being forwarded directly), so the destination always sees
	// events for a key in arrival order.
	flushing bool
}

// routerShard owns one slice of the key space.
type routerShard struct {
	mu   sync.Mutex
	keys map[routeKey]*keyState
	// orphans holds reprocess events that arrived before the chunk that
	// registers their key: a packet processed between a chunk's snapshot
	// and the chunk's transmission puts its event ahead of the chunk on
	// the wire. The registering transaction adopts them.
	orphans map[routeKey][]*sbi.Event
}

// txnRouter shards transaction routing by FlowKey.FastHash(). Shard count is
// a power of two so the hash maps to a shard with a mask.
type txnRouter struct {
	shards []routerShard
	mask   uint64
}

func newTxnRouter(shards int) *txnRouter {
	r := &txnRouter{shards: make([]routerShard, shards), mask: uint64(shards - 1)}
	for i := range r.shards {
		r.shards[i].keys = map[routeKey]*keyState{}
		r.shards[i].orphans = map[routeKey][]*sbi.Event{}
	}
	return r
}

// mix64 is a splitmix-style avalanche finisher: FNV-family hashes of
// similar short inputs (flow keys differing in few bytes, names like
// "src0"/"src1") differ by small multiples of the prime, which disperses
// poorly under a power-of-two mask or onto a hash ring. Both the router's
// shard selection and the cluster directory's ring placement finish with
// it.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

func (r *txnRouter) shard(key packet.FlowKey) *routerShard {
	// mix64 is a pure function of FastHash, so the symmetry property
	// (k and k.Reverse() share a shard) is preserved.
	return &r.shards[mix64(key.FastHash())&r.mask]
}

// register records t as the owner of key on t.src with one more outstanding
// put, and adopts any orphaned events that raced ahead of the chunk. Called
// from the source's read loop, before the chunk is delivered to the move
// consumer, so event routing can never miss the registration.
func (r *txnRouter) register(t *txn, key packet.FlowKey) {
	rk := routeKey{mb: t.src, key: key}
	sh := r.shard(key)
	var evicted []*sbi.Event
	var evictedDst *mbConn
	sh.mu.Lock()
	ks := sh.keys[rk]
	if ks == nil || ks.owner != t {
		if ks != nil {
			// A newer transaction claims a key an older one never
			// released (overlapping moves from the same source).
			// Hand the old owner its outstanding put count and
			// buffer, so its remaining ACKs still release its
			// events toward its own destination — the seed's
			// per-txn buffers survived routing overwrites the same
			// way. If nothing is outstanding, the buffer is due
			// immediately.
			evicted, evictedDst = ks.owner.adoptStale(key, ks), ks.owner.dst
		}
		ks = &keyState{owner: t}
		sh.keys[rk] = ks
	}
	ks.pending++
	if adopted := sh.orphans[rk]; len(adopted) > 0 {
		delete(sh.orphans, rk)
		ks.buffered = append(ks.buffered, adopted...)
		t.ctrl.eventsBuffered.Add(uint64(len(adopted)))
	}
	sh.mu.Unlock()
	forwardEvents(t.ctrl, evictedDst, evicted)
	t.noteKey(key)
}

// ackPut marks one put for key acknowledged and, once no puts remain
// outstanding, drains the buffered events in order. If t no longer owns the
// key (a newer transaction claimed it), the ACK releases t's stale buffer
// instead.
func (r *txnRouter) ackPut(t *txn, key packet.FlowKey) {
	rk := routeKey{mb: t.src, key: key}
	sh := r.shard(key)
	sh.mu.Lock()
	ks := sh.keys[rk]
	if ks == nil || ks.owner != t {
		sh.mu.Unlock()
		t.ackStale(key)
		return
	}
	ks.pending--
	if ks.pending > 0 || ks.flushing || len(ks.buffered) == 0 {
		sh.mu.Unlock()
		return
	}
	// Ordered drain: forward without the lock, but keep the key in
	// "flushing" state so concurrent events append behind the batch in
	// flight instead of overtaking it. Stop if a new registration raises
	// the pending count mid-drain.
	ks.flushing = true
	for ks.pending <= 0 && len(ks.buffered) > 0 {
		flush := ks.buffered
		ks.buffered = nil
		sh.mu.Unlock()
		forwardEvents(t.ctrl, t.dst, flush)
		sh.mu.Lock()
	}
	ks.flushing = false
	sh.mu.Unlock()
}

// route dispatches one reprocess event from src: buffer while the key's puts
// are outstanding, forward (in order) otherwise, or hold as an orphan when
// the registering chunk has not arrived yet. Shared-state events bypass the
// shards entirely — at most one clone/merge owns a source's shared state, so
// a per-MB atomic pointer suffices.
func (r *txnRouter) route(src *mbConn, ev *sbi.Event) {
	if ev.Shared {
		if t := src.sharedTxn.Load(); t != nil {
			t.handleSharedEvent(ev)
		}
		return
	}
	rk := routeKey{mb: src, key: ev.Key}
	sh := r.shard(ev.Key)
	sh.mu.Lock()
	ks := sh.keys[rk]
	if ks == nil {
		if ev.Kind == sbi.EventReprocess && len(sh.orphans[rk]) < maxOrphansPerKey {
			sh.orphans[rk] = append(sh.orphans[rk], ev)
		}
		sh.mu.Unlock()
		return
	}
	t := ks.owner
	t.touch()
	if ks.pending > 0 || len(ks.buffered) > 0 || ks.flushing {
		ks.buffered = append(ks.buffered, ev)
		t.ctrl.eventsBuffered.Add(1)
		sh.mu.Unlock()
		return
	}
	sh.mu.Unlock()
	forwardEvents(t.ctrl, t.dst, []*sbi.Event{ev})
}

// detach removes every routing entry t owns, touching only the shards its
// keys hash to. When the source MB has no other live transactions, its
// orphaned events are discarded — stragglers from the finished transactions
// that nothing will ever adopt.
func (r *txnRouter) detach(t *txn) {
	for _, key := range t.takeKeys() {
		rk := routeKey{mb: t.src, key: key}
		sh := r.shard(key)
		sh.mu.Lock()
		if ks := sh.keys[rk]; ks != nil && ks.owner == t {
			delete(sh.keys, rk)
		}
		sh.mu.Unlock()
	}
	t.src.sharedTxn.CompareAndSwap(t, nil)
	if t.src.liveTxns.Add(-1) == 0 {
		r.purgeOrphans(t.src)
	}
}

// purgeOrphans discards every orphaned event held for mb.
func (r *txnRouter) purgeOrphans(mb *mbConn) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for rk := range sh.orphans {
			if rk.mb == mb {
				delete(sh.orphans, rk)
			}
		}
		sh.mu.Unlock()
	}
}

// purgeOrphanMatch discards orphaned events held for mb whose key falls
// under m (either direction, matching the clear-marks semantics on the
// middlebox side). Move rollback uses it: orphans raised under an aborted
// transfer's match describe packets the restarted transfer's snapshot will
// already contain, so letting the restart adopt them would replay — and
// double-count — those packets at the destination.
func (r *txnRouter) purgeOrphanMatch(mb *mbConn, m packet.FieldMatch) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for rk := range sh.orphans {
			if rk.mb == mb && m.MatchEither(rk.key) {
				delete(sh.orphans, rk)
			}
		}
		sh.mu.Unlock()
	}
}

// purgeMB drops all routing state for a disconnected middlebox so entries
// cannot leak past the connection's lifetime.
func (r *txnRouter) purgeMB(mb *mbConn) {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for rk := range sh.keys {
			if rk.mb == mb {
				delete(sh.keys, rk)
			}
		}
		for rk := range sh.orphans {
			if rk.mb == mb {
				delete(sh.orphans, rk)
			}
		}
		sh.mu.Unlock()
	}
}

// forwardEvents sends reprocess events to dst in order — one frame per call
// (up to the destination's announced batch) rather than one frame per
// event, and one explicit flush for the whole forwarded batch rather than
// one flush decision per frame. Destinations that did not announce event
// batching in their hello get the per-event framing. The flush is inline
// (not handed to the flush scheduler) on purpose: a drain blocking here
// against a slow destination is the router's ordered-drain backpressure,
// which eviction-during-drain correctness leans on. Never called with a
// shard lock held.
func forwardEvents(c *Controller, dst *mbConn, evs []*sbi.Event) {
	if len(evs) == 0 {
		return
	}
	c.eventsForwarded.Add(uint64(len(evs)))
	batch := dst.eventBatch
	if batch < 1 {
		batch = 1
	}
	err := sbi.FrameEvents(evs, batch, func(frame []*sbi.Event) error {
		m := &sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpReprocess}
		m.SetEvents(frame)
		return dst.conn.SendDeferred(m)
	})
	if err == nil {
		_ = dst.conn.Flush()
	}
}

// routeEvent dispatches an MB-raised event: introspection events go to the
// owning replica's subscribers; reprocess events go to that replica's
// sharded transaction router. The handoff read-lock pins the owner for the
// duration of the route — during an ownership transfer the connection's
// read loop blocks here (in arrival order) and resumes against the new
// owner's router, which is exactly the freeze-transfer-replay discipline.
func (mb *mbConn) routeEvent(ev *sbi.Event) {
	if ev == nil {
		return
	}
	if ev.Kind == sbi.EventIntrospection {
		mb.controller().notifyIntrospection(mb.name, ev)
		return
	}
	mb.routingLock()
	mb.controller().router.route(mb, ev)
	mb.routingUnlock()
}

// notifyIntrospection fans one introspection event out to subscribers.
func (c *Controller) notifyIntrospection(mbName string, ev *sbi.Event) {
	c.introMu.Lock()
	subs := append([]func(string, *sbi.Event){}, c.introSubs...)
	c.introMu.Unlock()
	for _, fn := range subs {
		fn(mbName, ev)
	}
}

// exportHandoff freezes nothing itself — the caller holds mb's handoff
// write-lock — but removes and returns every routing entry the router holds
// for mb: in-transaction key states and orphaned events, rendered as the
// SBI ownership-transfer payload. Transaction identity travels as registry
// IDs in the payload's Txns table, so the result is self-contained: any
// receiver with access to the transaction registry — the next replica over
// or a different process entirely — can re-bind the keys from the bytes
// alone. With the write-lock held no route/register/ACK/drain can be in
// flight, so pending counts and buffers are exact and no key can be
// flushing.
func (r *txnRouter) exportHandoff(mb *mbConn) *sbi.Handoff {
	h := &sbi.Handoff{MB: mb.name}
	var txns []*txn
	index := map[*txn]uint64{}
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for rk, ks := range sh.keys {
			if rk.mb != mb {
				continue
			}
			ti, ok := index[ks.owner]
			if !ok {
				txns = append(txns, ks.owner)
				ti = uint64(len(txns))
				index[ks.owner] = ti
			}
			h.Keys = append(h.Keys, sbi.HandoffKey{
				Key: rk.key, Txn: ti, Pending: ks.pending, Events: ks.buffered,
			})
			delete(sh.keys, rk)
		}
		for rk, evs := range sh.orphans {
			if rk.mb != mb {
				continue
			}
			h.Keys = append(h.Keys, sbi.HandoffKey{Key: rk.key, Events: evs})
			delete(sh.orphans, rk)
		}
		sh.mu.Unlock()
	}
	// Publish the transfer table's registry IDs on the wire payload, so a
	// receiver (or an operator reading a handoff dump) can name the exact
	// transactions being re-bound: Txns[i] is the ID of table slot i+1.
	for _, t := range txns {
		h.Txns = append(h.Txns, t.id)
	}
	return h
}

// importHandoff installs a transferred flowspace into this router, resolving
// the payload's transfer table through reg by wire ID — the payload plus a
// registry is the complete input, so an import works identically whether the
// handoff crossed a function call or a process boundary. The caller still
// holds mb's handoff write-lock, so the entries become visible atomically
// with the ownership swap. Shard counts may differ between replicas — each
// router hashes the keys into its own shards.
//
// IDs reg cannot resolve name transactions that died with a remote
// coordinator: their keys are dropped (buffered events discarded), the same
// aborted-remote outcome a move rollback produces, and the count of dropped
// keys is returned. Live packets are always counted at the source first, so
// discarding the replay buffer loses no accepted packet.
func (r *txnRouter) importHandoff(mb *mbConn, h *sbi.Handoff, reg *txnRegistry) (int, error) {
	table := make([]*txn, len(h.Txns))
	for i, id := range h.Txns {
		table[i] = reg.find(id)
	}
	for i := range h.Keys {
		hk := &h.Keys[i]
		if hk.Txn > uint64(len(table)) {
			return 0, fmt.Errorf("core: handoff for %q references transaction %d of %d", h.MB, hk.Txn, len(table))
		}
	}
	dropped := 0
	for i := range h.Keys {
		hk := &h.Keys[i]
		rk := routeKey{mb: mb, key: hk.Key}
		sh := r.shard(hk.Key)
		sh.mu.Lock()
		if hk.Txn == 0 {
			sh.orphans[rk] = append(sh.orphans[rk], hk.Events...)
		} else if owner := table[hk.Txn-1]; owner != nil {
			sh.keys[rk] = &keyState{owner: owner, pending: hk.Pending, buffered: hk.Events}
		} else {
			dropped++
		}
		sh.mu.Unlock()
	}
	return dropped, nil
}
