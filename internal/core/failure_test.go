package core

// Failure-domain tests: replica failure mid-move (the kill-a-replica chaos
// scenario), heartbeat liveness detection, truncated-hello timeouts on both
// accept paths, a reconnect flap storm through the fault-injection
// transport, and an asymmetric partition. CI runs this file under -race,
// with the fault-injection scenarios in their own job.

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"openmb/internal/faults"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// recoverySLO is the stated bound on failure recovery: from the instant a
// replica is declared dead until an aborted cross-partition move has rolled
// back and re-run to completion on the survivors. Generous against CI -race
// slowness; the interactive path is dominated by one quiet period and the
// re-streamed transfer, tens of milliseconds here.
const recoverySLO = 5 * time.Second

// TestFailReplicaMidMove is the kill-a-replica-mid-move chaos scenario: a
// gated logic pins pair 0's move provably mid-data-phase — registered keys,
// outstanding puts, buffered events all live on the coordinating replica —
// and that replica is then declared failed, under live traffic, with
// heartbeats running. The move must roll back and re-run on the survivors
// within the recovery SLO, with zero packet loss (combined counts exact),
// no leaked transactions, and no heartbeat false positives.
func TestFailReplicaMidMove(t *testing.T) {
	const pairs, flows, rounds = 2, 40, 5
	r := newClusterRigOpts(t, 3, pairs, true, Options{
		QuietPeriod:       60 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
	})
	for i := 0; i < pairs; i++ {
		r.srcs[i].Preload(flows)
	}

	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := r.rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}

	var moves sync.WaitGroup
	moveErrs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			moveErrs[i] = r.cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}

	// The gate guarantees pair 0's move is frozen mid-stream when the
	// coordinating replica (the move source's owner) dies.
	<-r.gate.reached
	coord, err := r.cl.ReplicaOf("src0")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.cl.FailReplica(coord); err != nil {
		t.Fatalf("fail replica %d: %v", coord, err)
	}
	close(r.gate.release)
	moves.Wait()
	recovery := time.Since(start)
	for i, err := range moveErrs {
		if err != nil {
			t.Fatalf("move %d across replica failure: %v", i, err)
		}
	}
	if recovery > recoverySLO {
		t.Fatalf("recovery took %v, SLO %v", recovery, recoverySLO)
	}

	traffic.Wait()
	r.drainAll(t)
	if !r.cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete after replica failure")
	}
	r.drainAll(t)

	// The mid-flight move really was aborted and restarted, not silently
	// completed on the dead coordinator.
	if got := r.cl.Metrics().MovesStarted; got < pairs+1 {
		t.Fatalf("only %d moves started; the failure aborted nothing", got)
	}
	// Conservation: 1 preloaded count + `rounds` packets per flow, exactly
	// once each, across abort, rollback, and restart.
	for i := 0; i < pairs; i++ {
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			if got := r.srcs[i].Count(k) + r.dsts[i].Count(k); got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", i, f, got, rounds+1)
			}
		}
		if got := r.srcs[i].Flows(); got != 0 {
			t.Fatalf("pair %d: source still holds %d flows after recovered move", i, got)
		}
		if got := r.dsts[i].Flows(); got != flows {
			t.Fatalf("pair %d: destination holds %d flows, want %d", i, got, flows)
		}
	}
	assertRoutersQuiescent(t, r.cl)
	if got := r.cl.registry.Live(); got != 0 {
		t.Fatalf("%d transactions leaked in the registry", got)
	}
	if got := r.cl.Metrics().HeartbeatDeaths; got != 0 {
		t.Fatalf("heartbeats killed %d live connections under load", got)
	}
}

// TestFailReplicaValidation covers the edges: bad indices, double failure,
// failing the last live replica, and the failed replica being refused as a
// rebalance or drain target — while the surviving cluster keeps serving
// every northbound operation.
func TestFailReplicaValidation(t *testing.T) {
	r := newClusterRig(t, 2, 1, false)
	if err := r.cl.FailReplica(5); err == nil {
		t.Fatal("out-of-range replica accepted")
	}
	if err := r.cl.FailReplica(0); err != nil {
		t.Fatalf("fail replica 0: %v", err)
	}
	if err := r.cl.FailReplica(0); err == nil {
		t.Fatal("double failure accepted")
	}
	if err := r.cl.FailReplica(1); err == nil {
		t.Fatal("failing the last live replica accepted")
	}
	if err := r.cl.Rebalance("src0", 0); err == nil {
		t.Fatal("rebalance onto a failed replica accepted")
	}
	if err := r.cl.Drain(1); err == nil {
		t.Fatal("drain with no live target accepted")
	}

	// Everything the dead replica owned migrated; the survivors serve the
	// full northbound API.
	for _, name := range []string{"src0", "dst0"} {
		ri, err := r.cl.ReplicaOf(name)
		if err != nil {
			t.Fatal(err)
		}
		if ri != 1 {
			t.Fatalf("%s still on failed replica %d", name, ri)
		}
	}
	if _, err := r.cl.Stats("src0", packet.MatchAll); err != nil {
		t.Fatalf("stats after failover: %v", err)
	}
	if err := r.cl.WriteConfig("src0", "knob", []string{"v"}); err != nil {
		t.Fatalf("writeConfig after failover: %v", err)
	}
	r.srcs[0].Preload(10)
	if err := r.cl.MoveInternal("src0", "dst0", packet.MatchAll); err != nil {
		t.Fatalf("move after failover: %v", err)
	}
	if got := r.dsts[0].Flows(); got != 10 {
		t.Fatalf("post-failover move delivered %d flows, want 10", got)
	}
	if !r.cl.WaitTxns(10 * time.Second) {
		t.Fatal("post-failover move did not complete")
	}
	if got := r.cl.registry.Live(); got != 0 {
		t.Fatalf("%d transactions leaked", got)
	}
}

// TestHeartbeatDetectsSilentPeer proves liveness detection both ways: a
// peer that registers and then goes silent (a wedged process — it neither
// writes nor reads) is probed, declared dead after the miss threshold, and
// deregistered through the normal disconnect cleanup; a responsive but idle
// middlebox is probed too and must never be killed.
func TestHeartbeatDetectsSilentPeer(t *testing.T) {
	c := NewController(Options{HeartbeatInterval: 25 * time.Millisecond, HeartbeatMisses: 4})
	tr := sbi.NewMemTransport()
	if err := c.Serve(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rt := mbox.New("alive", mbtest.NewCounterLogic(4), mbox.Options{})
	defer rt.Close()
	if err := rt.Connect(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForMB("alive", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	raw, err := tr.Dial("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	conn := sbi.NewConn(raw)
	defer conn.Close()
	if err := conn.Send(&sbi.Message{Type: sbi.MsgHello, Name: "silent"}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForMB("silent", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// The silent peer must be deregistered within a few miss windows.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.mb("silent"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("silent peer never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	m := c.Metrics()
	if m.HeartbeatDeaths != 1 {
		t.Fatalf("heartbeat deaths = %d, want 1", m.HeartbeatDeaths)
	}
	if m.PingsSent == 0 {
		t.Fatal("no pings sent before declaring the peer dead")
	}
	// The responsive middlebox — equally idle, so it IS being probed — must
	// still be registered: its pongs prove liveness.
	if _, err := c.mb("alive"); err != nil {
		t.Fatalf("responsive middlebox was killed: %v", err)
	}
}

// TestTruncatedHelloTimesOut sends a partial hello frame — bytes that never
// complete a newline-delimited JSON message — on both accept paths. The
// accept goroutine must close the connection after HelloTimeout rather than
// hang forever, and a well-formed registration afterwards must succeed.
func TestTruncatedHelloTimesOut(t *testing.T) {
	opts := Options{HelloTimeout: 50 * time.Millisecond}
	c := NewController(opts)
	cl := NewCluster(ClusterOptions{Replicas: 3, Controller: opts})
	cases := []struct {
		name    string
		serve   func(tr sbi.Transport) error
		stop    func()
		waitFor func(name string, d time.Duration) error
	}{
		{"controller", func(tr sbi.Transport) error { return c.Serve(tr, "ctrl") }, c.Close, c.WaitForMB},
		{"cluster", func(tr sbi.Transport) error { return cl.Serve(tr, "ctrl") }, cl.Close, cl.WaitForMB},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := sbi.NewMemTransport()
			if err := tc.serve(tr); err != nil {
				t.Fatal(err)
			}
			defer tc.stop()

			raw, err := tr.Dial("ctrl")
			if err != nil {
				t.Fatal(err)
			}
			defer raw.Close()
			if _, err := raw.Write([]byte(`{"type":"hello","na`)); err != nil {
				t.Fatal(err)
			}
			// The accept path must CLOSE the connection (our read unblocks
			// with a peer-close error), not sit on it until our own read
			// deadline fires.
			_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
			if _, err := raw.Read(make([]byte, 1)); err == nil {
				t.Fatal("read succeeded on a truncated hello")
			} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
				t.Fatal("accept goroutine still pinned after HelloTimeout")
			}

			// The listener kept accepting throughout: a real middlebox
			// registers fine.
			rt := mbox.New("post-truncation", mbtest.NewCounterLogic(4), mbox.Options{})
			defer rt.Close()
			if err := rt.Connect(tr, "ctrl"); err != nil {
				t.Fatal(err)
			}
			if err := tc.waitFor("post-truncation", 5*time.Second); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterReconnectFlapStorm runs repeated whole-fleet connection kills
// through the fault-injection transport against reconnecting runtimes: the
// fleet must re-register after every storm round, a full workload with
// moves must then run loss-free on the re-established sessions, and the
// churn must not leak goroutines.
func TestClusterReconnectFlapStorm(t *testing.T) {
	const pairs, flows, rounds, storms = 3, 30, 4, 3
	before := runtime.NumGoroutine()
	ft := faults.New(sbi.NewMemTransport(), faults.Options{Seed: 42})
	cl := NewCluster(ClusterOptions{Replicas: 3, Controller: Options{
		QuietPeriod:       60 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
	}})
	if err := cl.Serve(ft, "cluster"); err != nil {
		t.Fatal(err)
	}

	names := make([]string, 0, 2*pairs)
	srcs := make([]*mbtest.CounterLogic, pairs)
	dsts := make([]*mbtest.CounterLogic, pairs)
	rts := map[string]*mbox.Runtime{}
	attach := func(name string, logic *mbtest.CounterLogic) {
		rt := mbox.New(name, logic, mbox.Options{
			Reconnect:    true,
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 40 * time.Millisecond,
		})
		if err := rt.Connect(ft, "cluster"); err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitForMB(name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		rts[name] = rt
		names = append(names, name)
	}
	for i := 0; i < pairs; i++ {
		srcs[i] = mbtest.NewCounterLogic(16)
		dsts[i] = mbtest.NewCounterLogic(16)
		attach(fmt.Sprintf("src%d", i), srcs[i])
		attach(fmt.Sprintf("dst%d", i), dsts[i])
	}

	// The storm: sever every live connection, wait for the whole fleet to
	// re-establish sessions AND re-register, repeat. The session count is
	// the gate — WaitForMB alone can pass on the dying round's still-
	// registered entry before its cleanup lands.
	fleetReconnects := func() uint64 {
		var total uint64
		for _, rt := range rts {
			total += rt.Metrics().Reconnects
		}
		return total
	}
	for round := 0; round < storms; round++ {
		if n := ft.KillAll(); n == 0 {
			t.Fatalf("storm round %d found no connections to kill", round)
		}
		want := uint64(2 * pairs * (round + 1))
		deadline := time.Now().Add(10 * time.Second)
		for fleetReconnects() < want {
			if time.Now().After(deadline) {
				t.Fatalf("storm round %d: fleet reconnected %d times, want >= %d",
					round, fleetReconnects(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
		for _, name := range names {
			if err := cl.WaitForMB(name, 10*time.Second); err != nil {
				t.Fatalf("storm round %d: %s never reconnected: %v", round, name, err)
			}
		}
	}

	// Full workload on the re-established sessions: session resume is the
	// re-run hello, so marks/filters/state all live runtime-side and the
	// counts must come out exact.
	for i := 0; i < pairs; i++ {
		srcs[i].Preload(flows)
	}
	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	moveErrs := make([]error, pairs)
	var moves sync.WaitGroup
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			moveErrs[i] = cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}
	moves.Wait()
	traffic.Wait()
	for i, err := range moveErrs {
		if err != nil {
			t.Fatalf("move %d after flap storm: %v", i, err)
		}
	}
	for name, rt := range rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
	if !cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete after flap storm")
	}
	for name, rt := range rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
	for i := 0; i < pairs; i++ {
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			if got := srcs[i].Count(k) + dsts[i].Count(k); got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", i, f, got, rounds+1)
			}
		}
	}
	assertRoutersQuiescent(t, cl)

	// Goroutine hygiene: tear everything down and verify the storm's churn
	// (read loops, reconnect loops, heartbeats, ping writers) all exited.
	for _, rt := range rts {
		rt.Close()
	}
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+10 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after teardown", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAsymmetricPartition blackholes the middlebox→controller direction
// while the reverse stays up: the controller must declare the connection
// dead by heartbeat (its pings go through, the pongs vanish), reconnect
// attempts against the standing partition must be cut off by HelloTimeout
// rather than half-register, and once the partition heals the middlebox
// must re-register on its own.
func TestAsymmetricPartition(t *testing.T) {
	ft := faults.New(sbi.NewMemTransport(), faults.Options{})
	c := NewController(Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   3,
		HelloTimeout:      100 * time.Millisecond,
	})
	if err := c.Serve(ft, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rt := mbox.New("mb", mbtest.NewCounterLogic(4), mbox.Options{
		Reconnect:    true,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	defer rt.Close()
	if err := rt.Connect(ft, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForMB("mb", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Dark in the dialed (mb→controller) direction only.
	ft.SetPartition(true, false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.mb("mb"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned connection never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Metrics().HeartbeatDeaths; got == 0 {
		t.Fatal("partition was not detected by heartbeat")
	}

	// Reconnect attempts keep hitting the partition: their hellos vanish,
	// so HelloTimeout must keep cutting them off — no registration.
	time.Sleep(300 * time.Millisecond)
	if _, err := c.mb("mb"); err == nil {
		t.Fatal("middlebox registered through a standing partition")
	}

	ft.SetPartition(false, false)
	if err := c.WaitForMB("mb", 10*time.Second); err != nil {
		t.Fatalf("middlebox never re-registered after the partition healed: %v", err)
	}
	if got := rt.Metrics().Reconnects; got == 0 {
		t.Fatal("runtime reports no reconnects")
	}
}
