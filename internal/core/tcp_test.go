package core_test

import (
	"sync"
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// TestEndToEndOverTCP runs the full controller/middlebox protocol over real
// TCP sockets — the deployment mode of cmd/openmb-controller and
// cmd/openmb-mb — including a move with live traffic and events.
func TestEndToEndOverTCP(t *testing.T) {
	ctrl := core.NewController(core.Options{QuietPeriod: 80 * time.Millisecond})
	tr := sbi.TCPTransport{}
	if err := ctrl.Serve(tr, "127.0.0.1:0"); err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer ctrl.Close()
	addr := ctrl.Addr()
	if addr == "" {
		t.Fatal("controller has no address")
	}

	src := mbtest.NewCounterLogic(202)
	dst := mbtest.NewCounterLogic(202)
	srcRT := mbox.New("src", src, mbox.Options{})
	dstRT := mbox.New("dst", dst, mbox.Options{})
	defer srcRT.Close()
	defer dstRT.Close()
	if err := srcRT.Connect(tr, addr); err != nil {
		t.Fatal(err)
	}
	if err := dstRT.Connect(tr, addr); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.WaitForMB("src", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.WaitForMB("dst", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	const flows = 30
	src.Preload(flows)

	// Config round trip over TCP.
	if err := ctrl.WriteConfig("src", "rules/0", []string{"v"}); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.CloneConfig("src", "dst"); err != nil {
		t.Fatal(err)
	}
	if !src.Config().Equal(dst.Config()) {
		t.Fatal("config clone over TCP failed")
	}

	// Move with live traffic: atomicity over a real network stack.
	stop := make(chan struct{})
	var sent int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				srcRT.HandlePacket(mbtest.PacketForFlow(i % flows))
				sent++
				i++
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	if err := ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if !srcRT.Drain(5 * time.Second) {
		t.Fatal("src drain")
	}
	if !ctrl.WaitTxns(15 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	if !dstRT.Drain(5 * time.Second) {
		t.Fatal("dst drain")
	}
	want := uint64(flows + sent)
	if got := dst.SumCounts(); got != want {
		t.Fatalf("TCP atomicity: dst=%d want=%d", got, want)
	}
	if src.Flows() != 0 {
		t.Fatalf("src flows remain: %d", src.Flows())
	}
}

// TestQuietPeriodSweep verifies that conservation holds across quiet-period
// settings: a short quiet period deletes source state earlier, but every
// packet must still be counted exactly once at the destination.
func TestQuietPeriodSweep(t *testing.T) {
	for _, quiet := range []time.Duration{20 * time.Millisecond, 60 * time.Millisecond, 150 * time.Millisecond} {
		quiet := quiet
		t.Run(quiet.String(), func(t *testing.T) {
			r := newRig(t, core.Options{QuietPeriod: quiet})
			const flows = 25
			r.src.Preload(flows)
			stop := make(chan struct{})
			var sent int
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				i := 0
				for {
					select {
					case <-stop:
						return
					default:
						r.srcRT.HandlePacket(mbtest.PacketForFlow(i % flows))
						sent++
						i++
						time.Sleep(200 * time.Microsecond)
					}
				}
			}()
			if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
				t.Fatal(err)
			}
			close(stop)
			wg.Wait()
			r.srcRT.Drain(5 * time.Second)
			if !r.ctrl.WaitTxns(15 * time.Second) {
				t.Fatal("transactions did not complete")
			}
			r.dstRT.Drain(5 * time.Second)
			// Counts may now be split between dst (moved + replayed)
			// and src (packets that arrived after the delete created
			// fresh records) — but never lost or duplicated.
			total := r.dst.SumCounts() + r.src.SumCounts()
			if total != uint64(flows+sent) {
				t.Fatalf("quiet=%v: total=%d want=%d (dst=%d src=%d)",
					quiet, total, flows+sent, r.dst.SumCounts(), r.src.SumCounts())
			}
		})
	}
}

// TestMovePropertyMatchingSubset is a property-style test: for arbitrary
// prefix lengths, MoveInternal relocates exactly the matching flows and
// leaves the rest untouched.
func TestMovePropertyMatchingSubset(t *testing.T) {
	for _, bits := range []int{26, 27, 28, 30} {
		bits := bits
		t.Run(packetPrefix(bits), func(t *testing.T) {
			r := newRig(t, core.Options{QuietPeriod: 40 * time.Millisecond})
			const flows = 64
			keys := r.src.Preload(flows)
			m, err := packet.ParseFieldMatch("[nw_src=10.0.0.0/" + itoa(bits) + "]")
			if err != nil {
				t.Fatal(err)
			}
			wantMoved := 0
			for _, k := range keys {
				if m.MatchEither(k) {
					wantMoved++
				}
			}
			if err := r.ctrl.MoveInternal("src", "dst", m); err != nil {
				t.Fatal(err)
			}
			if !r.ctrl.WaitTxns(10 * time.Second) {
				t.Fatal("transactions did not complete")
			}
			if got := r.dst.Flows(); got != wantMoved {
				t.Fatalf("/%d: moved %d flows, want %d", bits, got, wantMoved)
			}
			if got := r.src.Flows(); got != flows-wantMoved {
				t.Fatalf("/%d: src retains %d flows, want %d", bits, got, flows-wantMoved)
			}
		})
	}
}

func packetPrefix(bits int) string { return "/" + itoa(bits) }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
