package core

import (
	"errors"
	"sync"
)

// ErrReplicaFailed is the error a northbound operation observes when the
// cluster replica coordinating it has been declared dead (FailReplica).
// Cluster-level callers treat it as retryable: the connections themselves
// survive a replica failure (they are handed off to survivors), so the
// operation can be rolled back and restarted on the current owner.
var ErrReplicaFailed = errors.New("core: controller replica failed")

// txnRegistry assigns cluster-wide transaction IDs and tracks every live
// transaction, so replica-failure recovery can find the in-flight
// transactions a dead coordinator leaves behind and abort them
// deterministically (rather than leaking their routing state as orphans).
// The IDs are wire-visible: a handoff payload carries them in
// sbi.Handoff.Txns, parallel to its transfer table, which is what lets a
// receiving replica — in-process today, cross-process later — name the exact
// transactions an import re-binds or an abort kills.
//
// A lone Controller owns a private registry; a Cluster shares one across its
// replicas, so IDs stay unique cluster-wide and abortController can sweep by
// coordinating replica.
type txnRegistry struct {
	mu     sync.Mutex
	nextID uint64
	live   map[uint64]*txn
}

func newTxnRegistry() *txnRegistry {
	return &txnRegistry{live: map[uint64]*txn{}}
}

// add assigns t the next ID and tracks it until detach removes it.
func (r *txnRegistry) add(t *txn) {
	r.mu.Lock()
	r.nextID++
	t.id = r.nextID
	r.live[t.id] = t
	r.mu.Unlock()
}

// find resolves a wire-visible transaction ID to its live transaction, or
// nil when no such transaction is tracked here. Handoff imports use it to
// re-bind transferred keys: an ID this registry cannot resolve belongs to a
// transaction coordinated by another process (or one already finished), and
// the importer treats its keys as aborted-remote.
func (r *txnRegistry) find(id uint64) *txn {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.live[id]
}

// seed offsets the ID counter by a node-specific salt in the high bits, so
// transaction IDs minted by different cluster processes never collide and a
// wire ID names its minting node unambiguously. Must be called before the
// first add; a zero salt leaves the single-process numbering unchanged.
func (r *txnRegistry) seed(salt uint64) {
	r.mu.Lock()
	r.nextID = salt
	r.mu.Unlock()
}

// remove untracks a detached transaction. Idempotent.
func (r *txnRegistry) remove(t *txn) {
	if t.id == 0 {
		return
	}
	r.mu.Lock()
	delete(r.live, t.id)
	r.mu.Unlock()
}

// Live reports how many transactions are currently tracked; recovery tests
// use it to prove failures leak no transactions.
func (r *txnRegistry) Live() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// abortController marks every live transaction coordinated by c as aborted
// and returns how many it hit. The flag is only acted on by the per-flow
// move pipeline (its chunk and put stages check it and bail out with
// ErrReplicaFailed); transactions past their data phase — and shared
// clone/merge transfers, whose restart would double-merge completed classes
// — deliberately ignore it and run to completion on the migrated machinery,
// which is the "recovered" arm of failure handling.
func (r *txnRegistry) abortController(c *Controller) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, t := range r.live {
		if t.ctrl == c {
			t.aborted.Store(true)
			n++
		}
	}
	return n
}
