package core

import (
	"fmt"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// This file implements replica-failure recovery: declaring one cluster
// replica dead and migrating everything it owns — connections, routing
// state, pending quiet-period completions — onto the survivors, plus the
// rollback that lets an aborted cross-partition move restart loss-free.
//
// The migration is the handoff protocol of handoff.go run once per
// connection the dead replica owns, with the target chosen by the directory
// after the dead replica's ring points have been pruned. In-flight
// transactions the dead replica coordinates are marked aborted through the
// cluster's shared registry; the move pipeline notices at its next chunk or
// put and unwinds, and Cluster.MoveInternal rolls the half-applied transfer
// back and restarts it on the connection's new owner.
//
// Lock order during reassignment (matching Rebalance exactly, so failure
// recovery and planned rebalancing can never deadlock each other):
// Cluster.mu -> mbConn.handoffMu(write) -> Controller.mu / router shard
// locks. The directory's lock nests innermost and is never held across any
// of the others.

// FailReplica declares replica i dead and recovers everything it owns. The
// replica's process-level resources (listener goroutines, live southbound
// connections) are left untouched — in-process, "failure" means the control
// machinery stops coordinating, which is exactly what a crashed controller
// process would leave behind from the survivors' point of view. Steps:
//
//  1. mark the replica failed — new transactions refuse to start there;
//  2. prune it from the directory, so owner() resolves to survivors;
//  3. sweep the shared transaction registry, marking its in-flight
//     transactions aborted (the per-flow move pipeline unwinds at its next
//     step; completed-data-phase moves and shared transfers run on);
//  4. hand each of its connections off to the directory's new owner via
//     the freeze → transfer → switch protocol;
//  5. redirect its completer to a survivor, migrating pending quiet-period
//     completions with their due times intact.
//
// Calling it on an already-failed replica is an error; so is failing the
// last live replica (there is nowhere to recover to).
func (cl *Cluster) FailReplica(i int) error {
	if i < 0 || i >= len(cl.replicas) {
		return fmt.Errorf("core: fail replica: no replica %d", i)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	dead := cl.replicas[i]
	survivor := -1
	for j, c := range cl.replicas {
		if j != i && !c.failed.Load() {
			survivor = j
			break
		}
	}
	if survivor < 0 {
		return fmt.Errorf("core: fail replica %d: no live replica to recover to", i)
	}
	if !dead.failed.CompareAndSwap(false, true) {
		return fmt.Errorf("core: replica %d already failed", i)
	}

	// The directory must stop answering with the dead replica before any
	// migration target is picked from it.
	cl.dir.removeReplica(i)

	// Abort the dead coordinator's in-flight transactions. Connections are
	// still frozen one at a time below, but the abort flag is what stops
	// the move pipelines (which run on their own goroutines, outside any
	// freeze) from installing further state at their destinations.
	cl.registry.abortController(dead)

	// Migrate every connection the dead replica owns. Each handoff is the
	// Rebalance critical section with the target dictated by the pruned
	// directory; errors on individual names (disconnected mid-freeze) are
	// skipped — the disconnect cleanup owns those connections now.
	for _, name := range dead.Middleboxes() {
		target := cl.dir.owner(name)
		_ = cl.failoverMB(dead, name, target)
	}

	// Pending completions (quiet-period deletes of moves whose data phase
	// finished) must run on live machinery, with their due times intact.
	dead.completer.redirectTo(cl.replicas[survivor].completer)
	return nil
}

// failoverMB moves one middlebox from a failed replica to the target via
// the freeze → transfer → switch protocol. It is Rebalance's critical
// section without the top-level Cluster.mu acquisition (FailReplica already
// holds it) and without the no-op-same-replica case (the directory can no
// longer answer with the dead replica).
func (cl *Cluster) failoverMB(from *Controller, mbName string, target int) error {
	to := cl.replicas[target]
	from.mu.Lock()
	mb := from.mbs[mbName]
	from.mu.Unlock()
	if mb == nil {
		return fmt.Errorf("core: failover %q: not registered", mbName)
	}

	// FREEZE: wait out in-flight router operations, block new ones.
	mb.handoffMu.Lock()
	defer mb.handoffMu.Unlock()
	if mb.controller() != from {
		return fmt.Errorf("core: failover %q: ownership changed mid-freeze", mbName)
	}
	from.mu.Lock()
	stillOwned := from.mbs[mbName] == mb
	from.mu.Unlock()
	if !stillOwned {
		return fmt.Errorf("core: failover %q: disconnected mid-freeze", mbName)
	}

	// TRANSFER: dead router -> ownership-transfer payload -> survivor.
	h := from.router.exportHandoff(mb)
	if _, err := to.router.importHandoff(mb, h, cl.registry); err != nil {
		_, _ = from.router.importHandoff(mb, h, cl.registry)
		return err
	}

	// SWITCH: insert at the target before deleting from the dead replica,
	// so the name stays resolvable throughout (same ordering argument as
	// Rebalance).
	to.mu.Lock()
	if _, dup := to.mbs[mbName]; dup {
		to.mu.Unlock()
		restored := to.router.exportHandoff(mb)
		_, _ = from.router.importHandoff(mb, restored, cl.registry)
		return fmt.Errorf("core: failover %q: name already registered at replica %d", mbName, target)
	}
	to.mbs[mbName] = mb
	to.mu.Unlock()
	mb.ctrl.Store(to)
	cl.dir.assign(mbName, target)
	to.wakeWaiters(mbName)
	from.mu.Lock()
	delete(from.mbs, mbName)
	from.mu.Unlock()
	cl.handoffs.Add(1)
	return nil
}

// rollbackMove restores "the move never happened" after a replica failure
// aborted a per-flow move mid-data-phase, so MoveInternal can restart it
// cleanly. Conservation rests on one fact about the middlebox runtime: live
// packets are ALWAYS counted at the source, marked or not (marks only
// trigger reprocess events; replay-time skips apply to replays, not live
// traffic). The source therefore still holds a complete, correct copy —
// snapshot values plus every in-window increment — and rollback reduces to
// wiping the destination's partial copy and the transfer's bookkeeping:
//
//  1. clear the source's per-flow transaction marks under m. Southbound
//     requests are served serially, so by the time this returns the aborted
//     epoch's get streams have fully finished at the source and no further
//     key under m is marked — no new reprocess events can be raised;
//  2. sleep one quiet period: events raised just before the clear may still
//     be in the source's coalescing outbox or on the wire, and replays the
//     controller already forwarded may still be in the destination's
//     ingress ring (the same timing argument the normal completion path's
//     quiet period rests on);
//  3. drain the source's event pipeline (received-but-unrouted events), so
//     every stale-epoch event has landed in an orphan list;
//  4. purge those orphans: their packets' increments are inside the
//     restart's snapshot, so letting the restart adopt and replay them
//     would double-count;
//  5. delete the half-installed per-flow state at the destination. This
//     presumes the destination holds no independent state under m — the
//     standing precondition for a per-flow move to be meaningful at all.
func (cl *Cluster) rollbackMove(src, dst *mbConn, m packet.FieldMatch) {
	// Options come from the source's current (live) owner.
	opts := src.controller().opts

	_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpEndTransaction, Match: m}, opts.CallTimeout)

	time.Sleep(opts.QuietPeriod)

	deadline := time.Now().Add(opts.CallTimeout)
	for src.eventsInFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(500 * time.Microsecond)
	}

	src.routingLock()
	src.controller().router.purgeOrphanMatch(src, m)
	src.routingUnlock()

	_, _ = dst.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelSupportPerflow, Match: m}, opts.CallTimeout)
	_, _ = dst.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelReportPerflow, Match: m}, opts.CallTimeout)
}
