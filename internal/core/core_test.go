package core_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// rig is a controller with two counter middleboxes attached over an
// in-memory transport.
type rig struct {
	ctrl     *core.Controller
	tr       *sbi.MemTransport
	src, dst *mbtest.CounterLogic
	srcRT    *mbox.Runtime
	dstRT    *mbox.Runtime
}

func newRig(t *testing.T, opts core.Options) *rig {
	t.Helper()
	if opts.QuietPeriod == 0 {
		opts.QuietPeriod = 60 * time.Millisecond
	}
	r := &rig{
		ctrl: core.NewController(opts),
		tr:   sbi.NewMemTransport(),
		src:  mbtest.NewCounterLogic(16),
		dst:  mbtest.NewCounterLogic(16),
	}
	if err := r.ctrl.Serve(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.ctrl.Close)
	r.srcRT = r.attach(t, "src", r.src)
	r.dstRT = r.attach(t, "dst", r.dst)
	return r
}

func (r *rig) attach(t *testing.T, name string, logic mbox.Logic) *mbox.Runtime {
	t.Helper()
	rt := mbox.New(name, logic, mbox.Options{})
	t.Cleanup(rt.Close)
	if err := rt.Connect(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.WaitForMB(name, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestRegistrationAndWaitForMB(t *testing.T) {
	r := newRig(t, core.Options{})
	names := r.ctrl.Middleboxes()
	if len(names) != 2 {
		t.Fatalf("middleboxes: %v", names)
	}
	if err := r.ctrl.WaitForMB("ghost", 30*time.Millisecond); err == nil {
		t.Fatal("WaitForMB for absent MB should time out")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	r := newRig(t, core.Options{})
	logic := mbtest.NewCounterLogic(16)
	rt := mbox.New("src", logic, mbox.Options{}) // name collision
	defer rt.Close()
	if err := rt.Connect(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	// The controller closes the duplicate connection; the original src
	// must remain reachable.
	time.Sleep(20 * time.Millisecond)
	if _, err := r.ctrl.Stats("src", packet.MatchAll); err != nil {
		t.Fatalf("original registration broken: %v", err)
	}
}

func TestConfigRoundTripAndClone(t *testing.T) {
	r := newRig(t, core.Options{})
	if err := r.ctrl.WriteConfig("src", "rules/0", []string{"alert tcp any -> any 80"}); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.WriteConfig("src", "params/window", []string{"5s"}); err != nil {
		t.Fatal(err)
	}
	entries, err := r.ctrl.ReadConfig("src", "*")
	if err != nil || len(entries) != 2 {
		t.Fatalf("read: %v %v", entries, err)
	}
	// Step 1 of the paper's control applications: clone configuration.
	if err := r.ctrl.CloneConfig("src", "dst"); err != nil {
		t.Fatal(err)
	}
	if !r.src.Config().Equal(r.dst.Config()) {
		t.Fatal("cloned config differs")
	}
	if err := r.ctrl.DelConfig("src", "rules/0"); err != nil {
		t.Fatal(err)
	}
	if r.src.Config().Equal(r.dst.Config()) {
		t.Fatal("delete did not diverge configs")
	}
}

func TestStats(t *testing.T) {
	r := newRig(t, core.Options{})
	r.src.Preload(7)
	s, err := r.ctrl.Stats("src", packet.MatchAll)
	if err != nil {
		t.Fatal(err)
	}
	if s.SupportPerflowChunks != 7 {
		t.Fatalf("stats: %+v", s)
	}
	if _, err := r.ctrl.Stats("ghost", packet.MatchAll); err == nil {
		t.Fatal("stats on unknown MB should fail")
	}
}

func TestMoveInternalBasic(t *testing.T) {
	r := newRig(t, core.Options{})
	r.src.Preload(100)
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	if r.dst.Flows() != 100 || r.dst.SumCounts() != 100 {
		t.Fatalf("dst flows=%d sum=%d", r.dst.Flows(), r.dst.SumCounts())
	}
	// After the quiet period the controller deletes the source state.
	if !r.ctrl.WaitTxns(5 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	if r.src.Flows() != 0 {
		t.Fatalf("source still holds %d flows after move completion", r.src.Flows())
	}
	if r.srcRT.MarkedKeys() != 0 {
		t.Fatalf("source marks remain: %d", r.srcRT.MarkedKeys())
	}
	m := r.ctrl.Metrics()
	if m.ChunksMoved != 100 || m.MovesStarted != 1 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestMoveInternalSubset(t *testing.T) {
	r := newRig(t, core.Options{})
	r.src.Preload(50)                                      // flows 10.0.0.0..10.0.0.49
	m, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/28]") // first 16 flows
	if err := r.ctrl.MoveInternal("src", "dst", m); err != nil {
		t.Fatal(err)
	}
	if r.dst.Flows() != 16 {
		t.Fatalf("dst flows=%d, want 16", r.dst.Flows())
	}
	if !r.ctrl.WaitTxns(5 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	if r.src.Flows() != 34 {
		t.Fatalf("src flows=%d, want 34", r.src.Flows())
	}
}

// TestMoveAtomicityUnderTraffic is the core correctness property of the
// paper (§4.2.1): packets keep flowing to the source during a move, and no
// state update may be lost or double-applied. Every packet increments its
// flow's counter exactly once somewhere; at the end the destination must
// hold exactly one increment per packet.
func TestMoveAtomicityUnderTraffic(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 80 * time.Millisecond})
	const flows = 40
	r.src.Preload(flows)

	stop := make(chan struct{})
	var sent int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.srcRT.HandlePacket(mbtest.PacketForFlow(i % flows))
			sent++
			i++
			if i%50 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()

	time.Sleep(5 * time.Millisecond) // let some traffic land first
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	// The "routing change": traffic to the source stops.
	close(stop)
	wg.Wait()
	if !r.srcRT.Drain(10 * time.Second) {
		t.Fatal("source did not drain")
	}
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	if !r.dstRT.Drain(10 * time.Second) {
		t.Fatal("destination did not drain replays")
	}

	want := uint64(flows + sent) // preloaded counts + one per packet
	got := r.dst.SumCounts()
	if got != want {
		t.Fatalf("atomicity violated: dst sum=%d want=%d (sent=%d, events raised=%d forwarded=%d)",
			got, want, sent, r.srcRT.Metrics().EventsRaised, r.ctrl.Metrics().EventsForwarded)
	}
	if r.src.Flows() != 0 {
		t.Fatalf("src flows remain: %d", r.src.Flows())
	}
}

func TestMoveEventsAreBufferedUntilPutAck(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 80 * time.Millisecond})
	const flows = 20
	r.src.Preload(flows)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
				r.srcRT.HandlePacket(mbtest.PacketForFlow(i % flows))
				i++
				time.Sleep(50 * time.Microsecond)
			}
		}
	}()
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	r.ctrl.WaitTxns(10 * time.Second)
	m := r.ctrl.Metrics()
	if m.EventsForwarded == 0 {
		t.Fatal("no events forwarded during move under traffic")
	}
}

func TestCloneSupportSharedState(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 60 * time.Millisecond})
	for i := 0; i < 25; i++ {
		r.srcRT.HandlePacket(mbtest.PacketForFlow(i))
	}
	r.srcRT.Drain(time.Second)
	if err := r.ctrl.CloneSupport("src", "dst"); err != nil {
		t.Fatal(err)
	}
	if got := r.dst.SharedSupport(); got != 25 {
		t.Fatalf("cloned shared supporting state: %d, want 25", got)
	}
	// Clone must NOT delete or alter the source.
	if got := r.src.SharedSupport(); got != 25 {
		t.Fatalf("source shared state changed: %d", got)
	}
	// Reporting state must not be cloned (double-reporting, §4.1.3).
	if got := r.dst.SharedReport(); got != 0 {
		t.Fatalf("shared reporting state cloned: %d", got)
	}
	if !r.ctrl.WaitTxns(5 * time.Second) {
		t.Fatal("clone transaction did not complete")
	}
}

func TestCloneForwardsEventsUntilQuiet(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 100 * time.Millisecond})
	for i := 0; i < 10; i++ {
		r.srcRT.HandlePacket(mbtest.PacketForFlow(i))
	}
	r.srcRT.Drain(time.Second)
	if err := r.ctrl.CloneSupport("src", "dst"); err != nil {
		t.Fatal(err)
	}
	// Traffic continues at the source during the transaction window; the
	// destination's clone must track it via replayed events.
	for i := 0; i < 15; i++ {
		r.srcRT.HandlePacket(mbtest.PacketForFlow(i))
	}
	r.srcRT.Drain(time.Second)
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("clone transaction did not complete")
	}
	r.dstRT.Drain(time.Second)
	if got := r.dst.SharedSupport(); got != 25 {
		t.Fatalf("clone not kept in sync: dst=%d want 25", got)
	}
	// After the transaction ends, source updates no longer propagate.
	r.srcRT.HandlePacket(mbtest.PacketForFlow(0))
	r.srcRT.Drain(time.Second)
	time.Sleep(20 * time.Millisecond)
	r.dstRT.Drain(time.Second)
	if got := r.dst.SharedSupport(); got != 25 {
		t.Fatalf("events still forwarded after transaction end: dst=%d", got)
	}
}

func TestMergeInternal(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 60 * time.Millisecond})
	for i := 0; i < 10; i++ {
		r.srcRT.HandlePacket(mbtest.PacketForFlow(i))
	}
	for i := 0; i < 7; i++ {
		r.dstRT.HandlePacket(mbtest.PacketForFlow(100 + i))
	}
	r.srcRT.Drain(time.Second)
	r.dstRT.Drain(time.Second)
	if err := r.ctrl.MergeInternal("src", "dst"); err != nil {
		t.Fatal(err)
	}
	// Merge sums both shared supporting and shared reporting state.
	if got := r.dst.SharedSupport(); got != 17 {
		t.Fatalf("merged shared supporting: %d, want 17", got)
	}
	if got := r.dst.SharedReport(); got != 17 {
		t.Fatalf("merged shared reporting: %d, want 17", got)
	}
	if !r.ctrl.WaitTxns(5 * time.Second) {
		t.Fatal("merge transaction did not complete")
	}
}

func TestConcurrentMoves(t *testing.T) {
	opts := core.Options{QuietPeriod: 60 * time.Millisecond}
	r := newRig(t, opts)
	// Additional MB pairs.
	logics := make([]*mbtest.CounterLogic, 6)
	for i := range logics {
		logics[i] = mbtest.NewCounterLogic(16)
		r.attach(t, "mb"+string(rune('0'+i)), logics[i])
	}
	for i := 0; i < 3; i++ {
		logics[i*2].Preload(200)
	}
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = r.ctrl.MoveInternal("mb"+string(rune('0'+i*2)), "mb"+string(rune('0'+i*2+1)), packet.MatchAll)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		if got := logics[i*2+1].Flows(); got != 200 {
			t.Fatalf("pair %d: dst flows=%d", i, got)
		}
	}
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("transactions did not complete")
	}
}

// TestShardEquivalence runs the same move-under-traffic scenario on the
// serialized ablation (Shards: 1, the seed transaction path) and on the
// sharded router, and requires the identical externally visible outcome:
// every packet counted exactly once at the destination, the source emptied.
func TestShardEquivalence(t *testing.T) {
	const flows = 60
	run := func(t *testing.T, shards int) (sum uint64, sent int) {
		r := newRig(t, core.Options{QuietPeriod: 80 * time.Millisecond, Shards: shards})
		r.src.Preload(flows)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.srcRT.HandlePacket(mbtest.PacketForFlow(i % flows))
				sent++
				i++
				if i%50 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}()
		time.Sleep(5 * time.Millisecond)
		if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		if !r.srcRT.Drain(10*time.Second) || !r.ctrl.WaitTxns(10*time.Second) || !r.dstRT.Drain(10*time.Second) {
			t.Fatal("scenario did not settle")
		}
		if r.src.Flows() != 0 {
			t.Fatalf("shards=%d: src flows remain: %d", shards, r.src.Flows())
		}
		return r.dst.SumCounts(), sent
	}
	for _, shards := range []int{1, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sum, sent := run(t, shards)
			if want := uint64(flows + sent); sum != want {
				t.Fatalf("shards=%d: dst sum=%d want=%d", shards, sum, want)
			}
		})
	}
}

// TestConcurrentMovesManyKeys drives several simultaneous moves, each over
// many flow keys with live traffic, through the sharded router — the
// concurrent path the Figure 10(b) sweep measures, as a correctness check
// (run under -race in CI).
func TestConcurrentMovesManyKeys(t *testing.T) {
	const pairs, flows = 4, 150
	// The quiet period is the conservation margin: if a source's packet
	// worker is starved past it during the marked window (zero events →
	// "quiet" → del clears the marks), later packets legitimately count
	// into post-move source state and the sum check fails. Under -race on
	// one CPU with 8 runtimes' worth of goroutines, 80 ms is inside the
	// scheduler's tail; 250 ms is not (traffic stops before the dels, so
	// the widening costs one period of wall clock, not per-move time).
	r := newRig(t, core.Options{QuietPeriod: 250 * time.Millisecond, Shards: 8})
	logics := make([]*mbtest.CounterLogic, 2*pairs)
	rts := make([]*mbox.Runtime, 2*pairs)
	for i := range logics {
		logics[i] = mbtest.NewCounterLogic(16)
		rts[i] = r.attach(t, fmt.Sprintf("mb%d", i), logics[i])
	}
	for i := 0; i < pairs; i++ {
		logics[2*i].Preload(flows)
	}

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			n := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rts[2*i].HandlePacket(mbtest.PacketForFlow(n % flows))
				n++
				if n%40 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(i)
	}

	var moves sync.WaitGroup
	errs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			errs[i] = r.ctrl.MoveInternal(fmt.Sprintf("mb%d", 2*i), fmt.Sprintf("mb%d", 2*i+1), packet.MatchAll)
		}(i)
	}
	moves.Wait()
	close(stop)
	traffic.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("move %d: %v", i, err)
		}
	}
	for i := 0; i < pairs; i++ {
		if !rts[2*i].Drain(10 * time.Second) {
			t.Fatalf("source %d did not drain", i)
		}
	}
	if !r.ctrl.WaitTxns(15 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	for i := 0; i < pairs; i++ {
		if !rts[2*i+1].Drain(10 * time.Second) {
			t.Fatalf("destination %d did not drain replays", i)
		}
		srcM, dstM := rts[2*i].Metrics(), rts[2*i+1].Metrics()
		// Conservation is over ACCEPTED packets: the ingress ring sheds
		// live deliveries under sustained overload by design (a loaded
		// middlebox drops; -race on one CPU reaches that regime), and a
		// shed packet touched no state anywhere. Replays, by contrast,
		// carry state another instance already exported — shedding one
		// IS loss, so it must never happen here.
		if srcM.DroppedReplays != 0 || dstM.DroppedReplays != 0 {
			t.Fatalf("pair %d: replay sheds src=%d dst=%d", i, srcM.DroppedReplays, dstM.DroppedReplays)
		}
		want := uint64(flows) + srcM.Processed
		if got := logics[2*i+1].SumCounts(); got != want {
			t.Fatalf("pair %d: dst sum=%d want=%d srcM=%+v dstM=%+v", i, got, want, srcM, dstM)
		}
		if srcM.Processed == 0 {
			t.Fatalf("pair %d: source accepted no traffic; the workload exercised nothing", i)
		}
		if got := logics[2*i].Flows(); got != 0 {
			t.Fatalf("pair %d: src flows remain: %d", i, got)
		}
	}
}

// stallGetLogic wraps a CounterLogic so its first per-flow export signals
// the test and then blocks until released — a deterministic way to catch a
// move with its get stream in flight.
type stallGetLogic struct {
	*mbtest.CounterLogic
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (l *stallGetLogic) GetPerflow(class state.Class, m packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	return l.CounterLogic.GetPerflow(class, m, func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error {
		l.once.Do(func() { close(l.started) })
		<-l.release
		return emit(key, build)
	})
}

// TestDisconnectErrorIsPropagated: calls outstanding when a middlebox drops
// must report the disconnect reason, not a generic failure (the seed
// discarded failAll's error). The source's get stream is stalled on its
// first chunk, so the disconnect deterministically lands mid-call.
func TestDisconnectErrorIsPropagated(t *testing.T) {
	r := newRig(t, core.Options{})
	stalled := &stallGetLogic{
		CounterLogic: mbtest.NewCounterLogic(16),
		started:      make(chan struct{}),
		release:      make(chan struct{}),
	}
	stalled.Preload(50)
	rt := r.attach(t, "stall", stalled)
	errCh := make(chan error, 1)
	go func() { errCh <- r.ctrl.MoveInternal("stall", "dst", packet.MatchAll) }()
	<-stalled.started
	go rt.Close() // Close waits for the stalled worker; release it after
	defer close(stalled.release)
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("move across a disconnect succeeded")
		}
		if !strings.Contains(err.Error(), "disconnected") {
			t.Fatalf("error does not carry the disconnect reason: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("move did not fail after disconnect")
	}
}

// TestOppositeMovesDoNotDeadlock runs two large concurrent moves in
// opposite directions between the same MB pair. Each MB's read loop then
// both delivers the other move's chunks and carries this move's put ACKs;
// if the put pipeline ever backpressures the chunk path, the ACKs behind it
// become undeliverable and the moves deadlock until CallTimeout. The put
// queue must therefore never block the stream consumer.
func TestOppositeMovesDoNotDeadlock(t *testing.T) {
	const flows = 600 // enough to exceed any in-flight put window
	r := newRig(t, core.Options{QuietPeriod: 60 * time.Millisecond, Shards: 4, CallTimeout: 8 * time.Second})
	for i := 0; i < flows; i++ {
		r.srcRT.HandlePacket(mbtest.PacketForFlow(i))         // 10.0.x.x
		r.dstRT.HandlePacket(mbtest.PacketForFlow(1<<16 + i)) // 10.1.x.x
	}
	if !r.srcRT.Drain(5*time.Second) || !r.dstRT.Drain(5*time.Second) {
		t.Fatal("preload did not drain")
	}
	m1, err := packet.ParseFieldMatch("[nw_src=10.0.0.0/16]")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := packet.ParseFieldMatch("[nw_src=10.1.0.0/16]")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	go func() { errs <- r.ctrl.MoveInternal("src", "dst", m1) }()
	go func() { errs <- r.ctrl.MoveInternal("dst", "src", m2) }()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatalf("opposite-direction move failed: %v", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("opposite-direction moves deadlocked")
		}
	}
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	// The populations swapped: each side now holds the other's flows.
	if r.src.Flows() != flows || r.dst.Flows() != flows {
		t.Fatalf("flows after swap: src=%d dst=%d, want %d each", r.src.Flows(), r.dst.Flows(), flows)
	}
}

func TestMoveErrors(t *testing.T) {
	r := newRig(t, core.Options{})
	if err := r.ctrl.MoveInternal("ghost", "dst", packet.MatchAll); err == nil {
		t.Fatal("move from unknown MB should fail")
	}
	if err := r.ctrl.MoveInternal("src", "ghost", packet.MatchAll); err == nil {
		t.Fatal("move to unknown MB should fail")
	}
	// Granularity error propagates from the source MB.
	m, _ := packet.ParseFieldMatch("[tp_dst=80]")
	if err := r.ctrl.MoveInternal("src", "dst", m); err == nil {
		t.Fatal("finer-than-keying move should fail")
	}
}

func TestIntrospectionEndToEnd(t *testing.T) {
	r := newRig(t, core.Options{})
	var mu sync.Mutex
	var got []*sbi.Event
	r.ctrl.SubscribeIntrospection(func(mb string, ev *sbi.Event) {
		if mb == "src" {
			mu.Lock()
			got = append(got, ev)
			mu.Unlock()
		}
	})
	if err := r.ctrl.SetEventFilter("src", "counter.", packet.MatchAll, true); err != nil {
		t.Fatal(err)
	}
	r.srcRT.HandlePacket(mbtest.PacketForFlow(1))
	r.srcRT.Drain(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no introspection event delivered")
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Code != "counter.flow.seen" {
		t.Fatalf("event: %+v", got[0])
	}
}

func TestMoveWithCompression(t *testing.T) {
	r := newRig(t, core.Options{Compress: true, QuietPeriod: 60 * time.Millisecond})
	r.src.Preload(50)
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	if r.dst.Flows() != 50 || r.dst.SumCounts() != 50 {
		t.Fatalf("compressed move: flows=%d sum=%d", r.dst.Flows(), r.dst.SumCounts())
	}
	r.ctrl.WaitTxns(5 * time.Second)
}

func TestMBDisconnectFailsCalls(t *testing.T) {
	r := newRig(t, core.Options{})
	r.src.Preload(10)
	r.srcRT.Close()
	time.Sleep(20 * time.Millisecond)
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err == nil {
		t.Fatal("move from disconnected MB should fail")
	}
}

func TestMoveEmptyMatchIsFine(t *testing.T) {
	// moveInternal(src, dst, []) with no state present: valid, moves
	// nothing (the scale-down app's first step when no flows exist).
	r := newRig(t, core.Options{QuietPeriod: 40 * time.Millisecond})
	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	if r.dst.Flows() != 0 {
		t.Fatal("phantom state appeared")
	}
	r.ctrl.WaitTxns(5 * time.Second)
}

func TestEventFilterTTLExpires(t *testing.T) {
	r := newRig(t, core.Options{})
	var mu sync.Mutex
	var got int
	r.ctrl.SubscribeIntrospection(func(mb string, ev *sbi.Event) {
		mu.Lock()
		got++
		mu.Unlock()
	})
	// Enable for a short window only (§4.2.2's overload protection).
	if err := r.ctrl.SetEventFilterFor("src", "counter.", packet.MatchAll, true, 60*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	r.srcRT.HandlePacket(mbtest.PacketForFlow(1))
	r.srcRT.Drain(time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := got
		mu.Unlock()
		if n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no event within the filter window")
		}
		time.Sleep(time.Millisecond)
	}
	// After the TTL, events stop without any disable call.
	time.Sleep(80 * time.Millisecond)
	r.srcRT.HandlePacket(mbtest.PacketForFlow(1))
	r.srcRT.Drain(time.Second)
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if got != 1 {
		t.Fatalf("events after filter expiry: %d", got)
	}
}
