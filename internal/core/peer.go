package core

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/sbi"
)

// peerConn is one node-to-node SBI link. It is symmetric: the same
// connection carries requests in both directions (directory updates, sync
// requests, ownership releases), each side correlating replies to its own
// outstanding calls by frame ID. The link speaks the ordinary SBI codecs —
// a JSON hello announcing Kind "peer" and the binary codec, then binary
// frames — so the wire is inspectable with the same tooling as a middlebox
// connection.
type peerConn struct {
	name string // remote node's name, learned from its hello
	addr string // remote node's advertised address, for redials
	conn *sbi.Conn
	node *Node

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *sbi.Message
	closed  bool
}

func newPeerConn(node *Node, name, addr string, conn *sbi.Conn) *peerConn {
	return &peerConn{node: node, name: name, addr: addr, conn: conn, pending: map[uint64]chan *sbi.Message{}}
}

// readLoop dispatches incoming frames: requests go to the node's peer-op
// handler (on their own goroutine — an ownership release blocks on a
// middlebox round trip and must not stall the link), replies complete
// outstanding calls. Runs until the connection dies, then fails every
// outstanding call and tells the node the link is gone.
func (p *peerConn) readLoop() {
	for {
		m, err := p.conn.Receive()
		if err != nil {
			break
		}
		switch m.Type {
		case sbi.MsgRequest:
			go p.node.servePeerRequest(p, m)
		case sbi.MsgDone, sbi.MsgError:
			p.mu.Lock()
			ch := p.pending[m.ID]
			delete(p.pending, m.ID)
			p.mu.Unlock()
			if ch != nil {
				ch <- m
			}
		}
	}
	p.close()
	p.node.peerGone(p)
}

// call sends one request and waits for its reply. A timeout closes the
// connection: on a healthy link replies are immediate, so a silent one is
// dead or partitioned (an asymmetric partition shows no read error at all),
// and closing forces both sides to redial fresh — the only way a latched-
// dark connection ever heals.
func (p *peerConn) call(req *sbi.Message, timeout time.Duration) (*sbi.Message, error) {
	ch := make(chan *sbi.Message, 1)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("core: peer %s: link closed", p.name)
	}
	p.nextID++
	id := p.nextID
	p.pending[id] = ch
	p.mu.Unlock()
	req.ID = id

	if err := p.conn.Send(req); err != nil {
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		p.close()
		return nil, fmt.Errorf("core: peer %s: %w", p.name, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case m := <-ch:
		if m == nil {
			return nil, fmt.Errorf("core: peer %s: link closed", p.name)
		}
		if m.Type == sbi.MsgError {
			return nil, fmt.Errorf("core: peer %s: %s", p.name, m.Error)
		}
		return m, nil
	case <-timer.C:
		p.mu.Lock()
		delete(p.pending, id)
		p.mu.Unlock()
		p.close()
		return nil, fmt.Errorf("core: peer %s: call timed out after %v", p.name, timeout)
	}
}

// reply answers a peer request on this link. Send is internally serialized,
// so replies may race calls and other replies safely.
func (p *peerConn) reply(m *sbi.Message) {
	_ = p.conn.Send(m)
}

// close severs the link and fails every outstanding call. Idempotent.
func (p *peerConn) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	pending := p.pending
	p.pending = map[uint64]chan *sbi.Message{}
	p.mu.Unlock()
	p.conn.Close()
	for _, ch := range pending {
		ch <- nil
	}
}
