package core

// White-box tests for the sharded transaction router and the completer:
// shard selection (power-of-two rounding, FastHash symmetry), orphan
// adoption when events beat their registering chunk, ownership guards when
// transactions overlap on a key, detach cleanup, and quiescence-driven
// completion. End-to-end behaviour (moves under traffic, shards=1 vs
// shards=N equivalence) is covered in core_test and fastpath_test.

import (
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// testPeer is one side of an in-process southbound connection: the mbConn
// the router forwards through, plus a reader draining the middlebox side
// (net.Pipe is synchronous, so forwards block until read).
type testPeer struct {
	mb   *mbConn
	recv chan *sbi.Message
}

func newTestPeer(t *testing.T, c *Controller, name string) *testPeer {
	p, release := newHeldTestPeer(t, c, name)
	release()
	return p
}

// newHeldTestPeer returns a peer whose reader does not start until release
// is called — sends toward it block (net.Pipe is synchronous), which lets
// tests freeze an ordered drain mid-forward.
func newHeldTestPeer(t *testing.T, c *Controller, name string) (*testPeer, func()) {
	t.Helper()
	ctrlSide, mbSide := net.Pipe()
	p := &testPeer{
		mb:   newMBConn(name, "", sbi.NewConn(ctrlSide), c),
		recv: make(chan *sbi.Message, 256),
	}
	peer := sbi.NewConn(mbSide)
	hold := make(chan struct{})
	var once sync.Once
	go func() {
		<-hold
		for {
			m, err := peer.Receive()
			if err != nil {
				close(p.recv)
				return
			}
			p.recv <- m
		}
	}()
	release := func() { once.Do(func() { close(hold) }) }
	t.Cleanup(func() { release(); p.mb.conn.Close(); peer.Close() })
	return p, release
}

func (p *testPeer) expectReprocess(t *testing.T, key packet.FlowKey) {
	t.Helper()
	select {
	case m := <-p.recv:
		if m.Op != sbi.OpReprocess || m.Event == nil || m.Event.Key != key {
			t.Fatalf("forwarded frame: %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatalf("no reprocess forwarded for %v", key)
	}
}

func (p *testPeer) expectNothing(t *testing.T) {
	t.Helper()
	select {
	case m := <-p.recv:
		t.Fatalf("unexpected forward: %+v", m)
	case <-time.After(20 * time.Millisecond):
	}
}

func key(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP: ipv4(10, 0, byte(i>>8), byte(i)), DstIP: ipv4(192, 168, 1, 1),
		Proto: packet.ProtoTCP, SrcPort: uint16(1000 + i), DstPort: 80,
	}
}

func reprocessEvent(k packet.FlowKey) *sbi.Event {
	return &sbi.Event{Kind: sbi.EventReprocess, Key: k}
}

func TestShardDefaultsAndRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {100, 128}, {maxShards + 1, maxShards},
	} {
		o := Options{Shards: tc.in}
		o.setDefaults()
		if o.Shards != tc.want {
			t.Errorf("Shards %d resolved to %d, want %d", tc.in, o.Shards, tc.want)
		}
	}
	for _, in := range []int{0, -4} {
		auto := Options{Shards: in}
		auto.setDefaults()
		if auto.Shards < 2 || auto.Shards&(auto.Shards-1) != 0 {
			t.Errorf("Shards %d resolved to %d, want the auto default (power of two >= 2)", in, auto.Shards)
		}
	}
}

// TestShardSymmetry: FastHash is symmetric, so both directions of a flow
// must resolve to the same shard — the property the per-shard ordering
// argument relies on.
func TestShardSymmetry(t *testing.T) {
	r := newTxnRouter(16)
	spread := map[*routerShard]bool{}
	for i := 0; i < 64; i++ {
		k := key(i)
		if r.shard(k) != r.shard(k.Reverse()) {
			t.Fatalf("key %v and its reverse land in different shards", k)
		}
		spread[r.shard(k)] = true
	}
	if len(spread) < 12 {
		t.Fatalf("64 distinct flows hit only %d/16 shards", len(spread))
	}
}

// TestOrphanAdoptionAcrossShards: events that beat their registering chunk
// are held per shard and adopted at registration, then released only when
// the key's put is acknowledged.
func TestOrphanAdoptionAcrossShards(t *testing.T) {
	c := NewController(Options{Shards: 8, QuietPeriod: 50 * time.Millisecond})
	src := newTestPeer(t, c, "src")
	dst := newTestPeer(t, c, "dst")
	tx := newTxn(c, src.mb, dst.mb)

	// Enough keys to span several shards.
	keys := make([]packet.FlowKey, 32)
	for i := range keys {
		keys[i] = key(i)
	}
	for _, k := range keys {
		c.router.route(src.mb, reprocessEvent(k)) // beats its chunk: orphaned
	}
	dst.expectNothing(t)
	for _, k := range keys {
		tx.registerChunk(k) // adopts the orphan
	}
	dst.expectNothing(t) // still buffered: put outstanding
	for _, k := range keys {
		tx.ackPut(k)
		dst.expectReprocess(t, k)
	}
	if got := c.Metrics().EventsBuffered; got != uint64(len(keys)) {
		t.Fatalf("EventsBuffered = %d, want %d", got, len(keys))
	}
	tx.detach()
}

// TestOrphansAreBounded: stragglers for a never-registered key stop
// accumulating at maxOrphansPerKey.
func TestOrphansAreBounded(t *testing.T) {
	c := NewController(Options{Shards: 2})
	src := newTestPeer(t, c, "src")
	k := key(7)
	for i := 0; i < maxOrphansPerKey+100; i++ {
		c.router.route(src.mb, reprocessEvent(k))
	}
	sh := c.router.shard(k)
	sh.mu.Lock()
	n := len(sh.orphans[routeKey{mb: src.mb, key: k}])
	sh.mu.Unlock()
	if n != maxOrphansPerKey {
		t.Fatalf("orphans held = %d, want %d", n, maxOrphansPerKey)
	}
}

// TestOverlappingTxnOwnership: when a newer transaction claims a key an
// older one registered, the old transaction keeps its outstanding put count
// and buffer as stale state — its own ACK (not the new owner's) releases
// its events toward its own destination, and it must never release the new
// owner's buffer early.
func TestOverlappingTxnOwnership(t *testing.T) {
	c := NewController(Options{Shards: 4})
	src := newTestPeer(t, c, "src")
	dst1 := newTestPeer(t, c, "dst1")
	dst2 := newTestPeer(t, c, "dst2")
	k := key(3)

	t1 := newTxn(c, src.mb, dst1.mb)
	t1.registerChunk(k)
	c.router.route(src.mb, reprocessEvent(k)) // buffered against t1's put

	t2 := newTxn(c, src.mb, dst2.mb)
	t2.registerChunk(k) // takes over routing; t1's buffer goes stale
	dst1.expectNothing(t)

	c.router.route(src.mb, reprocessEvent(k)) // buffered against t2's put
	t1.ackPut(k)                              // releases t1's stale buffer, not t2's
	dst1.expectReprocess(t, k)
	dst2.expectNothing(t)
	t2.ackPut(k)
	dst2.expectReprocess(t, k)
	t1.detach()
	t2.detach()
}

// TestEvictionDuringDrain: a new transaction claiming a key while the old
// owner's ordered drain is blocked mid-forward must not forward concurrently
// with the drain — the drain delivers the remainder in order, and later
// events belong to the new owner only.
func TestEvictionDuringDrain(t *testing.T) {
	c := NewController(Options{Shards: 4})
	src := newTestPeer(t, c, "src")
	dst1, release1 := newHeldTestPeer(t, c, "dst1")
	dst2 := newTestPeer(t, c, "dst2")
	k := key(5)

	t1 := newTxn(c, src.mb, dst1.mb)
	t1.registerChunk(k)
	ev := func(seq uint64) *sbi.Event {
		return &sbi.Event{Kind: sbi.EventReprocess, Key: k, Seq: seq}
	}
	c.router.route(src.mb, ev(1))
	c.router.route(src.mb, ev(2))

	// The ACK starts the drain, which blocks sending toward the held
	// dst1. Run it on its own goroutine and wait until the drain has
	// marked the key as flushing (set under the shard lock before the
	// first forward), so the next event deterministically lands mid-drain.
	drainDone := make(chan struct{})
	go func() { t1.ackPut(k); close(drainDone) }()
	sh := c.router.shard(k)
	rk := routeKey{mb: src.mb, key: k}
	for deadline := time.Now().Add(5 * time.Second); ; {
		sh.mu.Lock()
		flushing := sh.keys[rk] != nil && sh.keys[rk].flushing
		sh.mu.Unlock()
		if flushing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(time.Millisecond)
	}
	c.router.route(src.mb, ev(3)) // arrives mid-drain: must queue behind 1,2

	t2 := newTxn(c, src.mb, dst2.mb)
	t2.registerChunk(k) // eviction while t1's drain is frozen
	c.router.route(src.mb, ev(4))

	release1()
	<-drainDone
	for want := uint64(1); want <= 3; want++ {
		select {
		case m := <-dst1.recv:
			if m.Event == nil || m.Event.Seq != want {
				t.Fatalf("dst1 received %+v, want seq %d", m, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("dst1 missing event seq %d", want)
		}
	}
	dst2.expectNothing(t) // seq 4 buffered against t2's put
	t2.ackPut(k)
	select {
	case m := <-dst2.recv:
		if m.Event == nil || m.Event.Seq != 4 {
			t.Fatalf("dst2 received %+v, want seq 4", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dst2 missing event seq 4")
	}
	dst1.expectNothing(t)
	t1.detach()
	t2.detach()
}

// TestDetachPurges: detach removes only the transaction's own entries, and
// the last detach on a source discards its orphans.
func TestDetachPurges(t *testing.T) {
	c := NewController(Options{Shards: 4})
	src := newTestPeer(t, c, "src")
	dst := newTestPeer(t, c, "dst")
	tx := newTxn(c, src.mb, dst.mb)
	for i := 0; i < 16; i++ {
		tx.registerChunk(key(i))
	}
	c.router.route(src.mb, reprocessEvent(key(99))) // unregistered: orphaned
	tx.detach()
	tx.detach() // idempotent
	for i := range c.router.shards {
		sh := &c.router.shards[i]
		sh.mu.Lock()
		nk, no := len(sh.keys), len(sh.orphans)
		sh.mu.Unlock()
		if nk != 0 || no != 0 {
			t.Fatalf("shard %d not purged: keys=%d orphans=%d", i, nk, no)
		}
	}
}

// TestCompleterWaitsForQuiescence: a completion fires only after the full
// quiet period, and source activity observed meanwhile pushes it out.
func TestCompleterWaitsForQuiescence(t *testing.T) {
	const quiet = 80 * time.Millisecond
	c := NewController(Options{Shards: 2, QuietPeriod: quiet})
	src := newTestPeer(t, c, "src")
	dst := newTestPeer(t, c, "dst")
	tx := newTxn(c, src.mb, dst.mb)

	start := time.Now()
	done := make(chan time.Duration, 1)
	c.finishAfterQuiet(tx, func() {
		done <- time.Since(start)
		tx.detach()
	})
	time.Sleep(quiet / 2)
	tx.touch() // activity: completion must restart its quiet window
	touched := time.Since(start)
	select {
	case elapsed := <-done:
		if elapsed < touched+quiet-5*time.Millisecond {
			t.Fatalf("completed %v after start despite activity at %v (quiet %v)", elapsed, touched, quiet)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("completion never fired")
	}
	if !c.WaitTxns(2 * time.Second) {
		t.Fatal("WaitTxns did not observe the completion")
	}
}

// TestCompleterCloseFlushes: closing the controller dispatches pending
// completions immediately instead of leaking them.
func TestCompleterCloseFlushes(t *testing.T) {
	c := NewController(Options{Shards: 2, QuietPeriod: time.Hour})
	src := newTestPeer(t, c, "src")
	dst := newTestPeer(t, c, "dst")
	tx := newTxn(c, src.mb, dst.mb)
	done := make(chan struct{})
	c.finishAfterQuiet(tx, func() { close(done); tx.detach() })
	c.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("pending completion not dispatched at Close")
	}
}

func ipv4(a, b, c, d byte) netip.Addr { return netip.AddrFrom4([4]byte{a, b, c, d}) }
