package core

import (
	"sync"

	"openmb/internal/sbi"
)

// connFlusher is the controller's cross-connection flush scheduler: one
// goroutine flushes every dirty southbound connection, instead of each
// sender paying (or deferring ad hoc) its own per-frame flush. Senders
// encode with SendDeferred and mark the connection dirty; the scheduler
// drains the dirty list and issues one Flush per connection per pass, so a
// controller juggling requests, pings, and reprocess forwards across many
// middleboxes amortizes flush syscalls across all of them.
//
// The OPENMB_COALESCE=off ablation needs no special casing here:
// SendDeferred flushes inline per frame when coalescing is off, so the
// scheduler's pass finds the connections clean and its Flush calls are
// no-ops — per-frame wire semantics are preserved by construction.
type connFlusher struct {
	mu     sync.Mutex
	cond   sync.Cond
	dirty  []*sbi.Conn
	enq    map[*sbi.Conn]bool
	closed bool
	wg     sync.WaitGroup
}

func newConnFlusher() *connFlusher {
	f := &connFlusher{enq: map[*sbi.Conn]bool{}}
	f.cond.L = &f.mu
	f.wg.Add(1)
	go f.run()
	return f
}

// send encodes m on conn without an inline flush and schedules the
// connection for the scheduler's next pass. The frame reaches the transport
// within one scheduler wakeup — bounded by goroutine scheduling latency, far
// inside every southbound call timeout.
func (f *connFlusher) send(conn *sbi.Conn, m *sbi.Message) error {
	err := conn.SendDeferred(m)
	f.mark(conn)
	return err
}

// mark schedules conn for the next flush pass (idempotent while already
// scheduled). After close it degrades to an inline flush, so late senders —
// a heartbeat racing shutdown — still publish their frame.
func (f *connFlusher) mark(conn *sbi.Conn) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		_ = conn.Flush()
		return
	}
	if !f.enq[conn] {
		f.enq[conn] = true
		f.dirty = append(f.dirty, conn)
		if len(f.dirty) == 1 {
			f.cond.Signal()
		}
	}
	f.mu.Unlock()
}

func (f *connFlusher) run() {
	defer f.wg.Done()
	var batch []*sbi.Conn
	for {
		f.mu.Lock()
		for len(f.dirty) == 0 && !f.closed {
			f.cond.Wait()
		}
		if len(f.dirty) == 0 {
			f.mu.Unlock()
			return
		}
		batch, f.dirty = f.dirty, batch[:0]
		for _, c := range batch {
			delete(f.enq, c)
		}
		f.mu.Unlock()
		// A connection re-marked while we flush it re-enters the dirty
		// list and is caught by the next pass; frames encoded after our
		// Flush are never stranded.
		for i, c := range batch {
			_ = c.Flush()
			batch[i] = nil
		}
	}
}

// close drains the remaining dirty list and stops the scheduler goroutine.
func (f *connFlusher) close() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
	f.wg.Wait()
}
