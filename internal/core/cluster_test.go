package core

// Cluster and handoff tests: the replicas=1 vs replicas=3 equivalence bed
// (the tentpole acceptance criterion), forced mid-move handoffs, the chaos
// handoff storm, the ownership-transfer codec round trip, cross-partition
// proxying, and the registration-storm test for the keyed waiter registry.
// CI runs this file under -race.

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// gateLogic wraps a CounterLogic so its per-flow supporting get signals the
// test after a few chunks and then blocks until released — pinning a move
// mid-stream so a forced handoff deterministically lands while the router
// holds registered keys, pending puts, and buffered events.
type gateLogic struct {
	*mbtest.CounterLogic
	after   int
	reached chan struct{}
	release chan struct{}
	once    sync.Once
	seen    int
	mu      sync.Mutex
}

func newGateLogic(after int) *gateLogic {
	return &gateLogic{
		CounterLogic: mbtest.NewCounterLogic(16),
		after:        after,
		reached:      make(chan struct{}),
		release:      make(chan struct{}),
	}
}

func (g *gateLogic) GetPerflow(class state.Class, m packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	return g.CounterLogic.GetPerflow(class, m, func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error {
		g.mu.Lock()
		g.seen++
		hit := g.seen == g.after
		g.mu.Unlock()
		if hit {
			g.once.Do(func() { close(g.reached) })
			<-g.release
		}
		return emit(key, build)
	})
}

// clusterRig is a cluster with `pairs` counter-MB pairs attached over an
// in-memory transport. Pair 0's source is a gateLogic when gated is set.
type clusterRig struct {
	cl   *Cluster
	tr   *sbi.MemTransport
	srcs []*mbtest.CounterLogic
	dsts []*mbtest.CounterLogic
	rts  map[string]*mbox.Runtime
	gate *gateLogic
}

func newClusterRig(t *testing.T, replicas, pairs int, gated bool) *clusterRig {
	t.Helper()
	return newClusterRigOpts(t, replicas, pairs, gated,
		Options{QuietPeriod: 60 * time.Millisecond})
}

// newClusterRigOpts is newClusterRig with the controller options exposed —
// the failure tests enable heartbeats and shorten hello timeouts.
func newClusterRigOpts(t *testing.T, replicas, pairs int, gated bool, ctrl Options) *clusterRig {
	t.Helper()
	r := &clusterRig{
		cl: NewCluster(ClusterOptions{
			Replicas:   replicas,
			Controller: ctrl,
		}),
		tr:  sbi.NewMemTransport(),
		rts: map[string]*mbox.Runtime{},
	}
	if err := r.cl.Serve(r.tr, "cluster"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.cl.Close)
	attach := func(name string, logic mbox.Logic) {
		rt := mbox.New(name, logic, mbox.Options{})
		t.Cleanup(rt.Close)
		if err := rt.Connect(r.tr, "cluster"); err != nil {
			t.Fatal(err)
		}
		if err := r.cl.WaitForMB(name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		r.rts[name] = rt
	}
	for i := 0; i < pairs; i++ {
		var src *mbtest.CounterLogic
		if i == 0 && gated {
			r.gate = newGateLogic(10)
			src = r.gate.CounterLogic
			attach("src0", r.gate)
		} else {
			src = mbtest.NewCounterLogic(16)
			attach(fmt.Sprintf("src%d", i), src)
		}
		dst := mbtest.NewCounterLogic(16)
		attach(fmt.Sprintf("dst%d", i), dst)
		r.srcs = append(r.srcs, src)
		r.dsts = append(r.dsts, dst)
	}
	return r
}

// drainAll drains every runtime until quiescent.
func (r *clusterRig) drainAll(t *testing.T) {
	t.Helper()
	for name, rt := range r.rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
}

// combinedCounts returns, per pair, the combined per-flow counts across the
// pair's two instances — the externally visible final state a workload run
// must reproduce exactly regardless of replica count or handoffs.
func (r *clusterRig) combinedCounts(flows int) [][]uint64 {
	out := make([][]uint64, len(r.srcs))
	for i := range r.srcs {
		counts := make([]uint64, flows)
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			counts[f] = r.srcs[i].Count(k) + r.dsts[i].Count(k)
		}
		out[i] = counts
	}
	return out
}

// assertRoutersQuiescent verifies no routing state survived the workload on
// any replica: every transferred buffer drained, every detach purged.
func assertRoutersQuiescent(t *testing.T, cl *Cluster) {
	t.Helper()
	for ri, c := range cl.replicas {
		for si := range c.router.shards {
			sh := &c.router.shards[si]
			sh.mu.Lock()
			nk, no := len(sh.keys), len(sh.orphans)
			sh.mu.Unlock()
			if nk != 0 || no != 0 {
				t.Fatalf("replica %d shard %d not quiescent: keys=%d orphans=%d", ri, si, nk, no)
			}
		}
	}
}

// runClusterWorkload drives the randomized-equivalence workload: `pairs`
// concurrent moves (pair 0 pinned mid-stream by the gate) with live traffic
// and interleaved northbound gets/puts, forced handoffs while the gated
// move is provably in flight, then move-backs for the upper half of the
// pairs. Returns the combined per-flow counts per pair.
func runClusterWorkload(t *testing.T, replicas int, forceHandoffs bool) [][]uint64 {
	t.Helper()
	const pairs, flows, rounds = 4, 60, 5
	r := newClusterRig(t, replicas, pairs, true)
	for i := 0; i < pairs; i++ {
		r.srcs[i].Preload(flows)
	}

	// Traffic: a fixed schedule of rounds*flows packets per pair, paced to
	// span the move windows. The totals are deterministic, so the final
	// combined counts must be identical across replica counts.
	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := r.rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(i)
	}

	// Interleaved control-plane gets and puts on the non-gated pairs.
	ctlDone := make(chan struct{})
	var ctl sync.WaitGroup
	ctl.Add(1)
	go func() {
		defer ctl.Done()
		for i := 0; ; i++ {
			select {
			case <-ctlDone:
				return
			default:
			}
			name := fmt.Sprintf("src%d", 1+i%(pairs-1))
			if _, err := r.cl.Stats(name, packet.MatchAll); err != nil {
				t.Errorf("stats %s: %v", name, err)
				return
			}
			if err := r.cl.WriteConfig(name, "chaos/knob", []string{fmt.Sprint(i)}); err != nil {
				t.Errorf("writeConfig %s: %v", name, err)
				return
			}
			if _, err := r.cl.ReadConfig(name, "*"); err != nil {
				t.Errorf("readConfig %s: %v", name, err)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Phase 1: concurrent moves on every pair.
	var moves sync.WaitGroup
	moveErrs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			moveErrs[i] = r.cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}

	// Forced mid-move handoffs: the gate guarantees pair 0's move is
	// frozen mid-stream — registered keys, outstanding puts, buffered
	// events all live in the router — when the rebalances run.
	<-r.gate.reached
	if forceHandoffs {
		for _, mb := range []string{"src0", "dst1", "src2"} {
			cur, err := r.cl.ReplicaOf(mb)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.cl.Rebalance(mb, (cur+1)%replicas); err != nil {
				t.Fatalf("rebalance %s: %v", mb, err)
			}
		}
	}
	close(r.gate.release)
	moves.Wait()
	for i, err := range moveErrs {
		if err != nil {
			t.Fatalf("phase-1 move %d: %v", i, err)
		}
	}
	if !r.cl.WaitTxns(30 * time.Second) {
		t.Fatal("phase-1 transactions did not complete")
	}

	// Phase 2: the upper half of the pairs scales back down (dst -> src),
	// with one more handoff in flight when forcing.
	var back sync.WaitGroup
	backErrs := make([]error, pairs)
	for i := pairs / 2; i < pairs; i++ {
		back.Add(1)
		go func(i int) {
			defer back.Done()
			backErrs[i] = r.cl.MoveInternal(fmt.Sprintf("dst%d", i), fmt.Sprintf("src%d", i), packet.MatchAll)
		}(i)
	}
	if forceHandoffs {
		cur, err := r.cl.ReplicaOf("dst2")
		if err != nil {
			t.Fatal(err)
		}
		if err := r.cl.Rebalance("dst2", (cur+1)%replicas); err != nil {
			t.Fatalf("rebalance dst2: %v", err)
		}
	}
	back.Wait()
	for i, err := range backErrs {
		if err != nil {
			t.Fatalf("phase-2 move %d: %v", i, err)
		}
	}

	traffic.Wait()
	close(ctlDone)
	ctl.Wait()
	r.drainAll(t)
	if !r.cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	r.drainAll(t) // replayed events enqueued by late completions

	if forceHandoffs {
		if got := r.cl.Handoffs(); got < 2 {
			t.Fatalf("forced handoffs not performed: %d", got)
		}
	}
	assertRoutersQuiescent(t, r.cl)
	return r.combinedCounts(flows)
}

// TestClusterHandoffEquivalence is the tentpole acceptance criterion: the
// workload on replicas=3 with >= 2 forced mid-move handoffs must produce
// final per-flow state identical to the replicas=1 ablation (today's
// single-controller path), with zero lost events and no duplicate counting
// — every packet lands in exactly one counter.
func TestClusterHandoffEquivalence(t *testing.T) {
	const pairs, flows, rounds = 4, 60, 5
	single := runClusterWorkload(t, 1, false)
	replicated := runClusterWorkload(t, 3, true)
	if !reflect.DeepEqual(single, replicated) {
		t.Fatalf("final per-flow state diverged between replicas=1 and replicas=3-with-handoffs:\n single:     %v\n replicated: %v", single, replicated)
	}
	// Loss-freedom in absolute terms: 1 preloaded count + `rounds` packets
	// per flow, exactly once each.
	for p := 0; p < pairs; p++ {
		for f := 0; f < flows; f++ {
			if got := replicated[p][f]; got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", p, f, got, rounds+1)
			}
		}
	}
}

// TestClusterChaosHandoffStorm keeps rebalancing random middleboxes across
// replicas while every pair moves under live traffic: no move may fail, no
// packet may be lost or double-counted, and the routers must be empty at
// the end.
func TestClusterChaosHandoffStorm(t *testing.T) {
	const pairs, flows, rounds, replicas = 4, 50, 4, 3
	r := newClusterRig(t, replicas, pairs, false)
	for i := 0; i < pairs; i++ {
		r.srcs[i].Preload(flows)
	}

	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := r.rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}

	stopChaos := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		// A deterministic storm: every MB in turn, cycled to the next
		// replica, as fast as the freezes allow.
		names := r.cl.Middleboxes()
		for i := 0; ; i++ {
			select {
			case <-stopChaos:
				return
			default:
			}
			name := names[i%len(names)]
			cur, err := r.cl.ReplicaOf(name)
			if err != nil {
				continue // mid-reconnect; fine under chaos
			}
			_ = r.cl.Rebalance(name, (cur+1+i%(replicas-1))%replicas)
			time.Sleep(time.Millisecond)
		}
	}()

	var moves sync.WaitGroup
	errs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			errs[i] = r.cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}
	moves.Wait()
	traffic.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("move %d under chaos: %v", i, err)
		}
	}
	r.drainAll(t)
	if !r.cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete under chaos")
	}
	close(stopChaos)
	chaos.Wait()
	r.drainAll(t)

	if got := r.cl.Handoffs(); got < uint64(replicas) {
		t.Fatalf("chaos performed only %d handoffs", got)
	}
	for i := 0; i < pairs; i++ {
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			if got := r.srcs[i].Count(k) + r.dsts[i].Count(k); got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", i, f, got, rounds+1)
			}
		}
		if got := r.srcs[i].Flows(); got != 0 {
			t.Fatalf("pair %d: source still holds %d flows", i, got)
		}
	}
	assertRoutersQuiescent(t, r.cl)
}

// TestClusterCrossPartitionOps pins a pair onto different replicas and runs
// every proxied northbound operation across the partition boundary.
func TestClusterCrossPartitionOps(t *testing.T) {
	r := newClusterRig(t, 3, 1, false)
	if err := r.cl.Rebalance("src0", 0); err != nil {
		t.Fatal(err)
	}
	if err := r.cl.Rebalance("dst0", 2); err != nil {
		t.Fatal(err)
	}
	r.srcs[0].Preload(40)

	if err := r.cl.WriteConfig("src0", "rules/0", []string{"alert"}); err != nil {
		t.Fatal(err)
	}
	if err := r.cl.CloneConfig("src0", "dst0"); err != nil {
		t.Fatal(err)
	}
	if !r.srcs[0].Config().Equal(r.dsts[0].Config()) {
		t.Fatal("cross-partition config clone diverged")
	}
	s, err := r.cl.Stats("src0", packet.MatchAll)
	if err != nil || s.SupportPerflowChunks != 40 {
		t.Fatalf("cross-partition stats: %+v, %v", s, err)
	}
	if err := r.cl.MoveInternal("src0", "dst0", packet.MatchAll); err != nil {
		t.Fatalf("cross-partition move: %v", err)
	}
	if got := r.dsts[0].Flows(); got != 40 {
		t.Fatalf("cross-partition move delivered %d flows, want 40", got)
	}
	if !r.cl.WaitTxns(10 * time.Second) {
		t.Fatal("cross-partition move did not complete")
	}
	if got := r.srcs[0].Flows(); got != 0 {
		t.Fatalf("source not emptied: %d", got)
	}

	// Shared-state transfers across the boundary.
	r.rts["src0"].HandlePacket(mbtest.PacketForFlow(0))
	if !r.rts["src0"].Drain(5 * time.Second) {
		t.Fatal("src0 did not drain")
	}
	if err := r.cl.MergeInternal("src0", "dst0"); err != nil {
		t.Fatalf("cross-partition merge: %v", err)
	}
	if got := r.dsts[0].SharedSupport(); got == 0 {
		t.Fatal("cross-partition merge moved nothing")
	}
	if !r.cl.WaitTxns(10 * time.Second) {
		t.Fatal("merge did not complete")
	}
}

// TestClusterDrain empties a replica live and verifies its middleboxes keep
// working from their new owners.
func TestClusterDrain(t *testing.T) {
	r := newClusterRig(t, 3, 2, false)
	victim := -1
	for _, name := range r.cl.Middleboxes() {
		i, err := r.cl.ReplicaOf(name)
		if err != nil {
			t.Fatal(err)
		}
		victim = i
		break
	}
	if err := r.cl.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if got := r.cl.Replica(victim).Middleboxes(); len(got) != 0 {
		t.Fatalf("replica %d still owns %v after drain", victim, got)
	}
	r.srcs[0].Preload(25)
	if err := r.cl.MoveInternal("src0", "dst0", packet.MatchAll); err != nil {
		t.Fatalf("move after drain: %v", err)
	}
	if got := r.dsts[0].Flows(); got != 25 {
		t.Fatalf("post-drain move delivered %d flows", got)
	}
	r.cl.WaitTxns(10 * time.Second)
}

// TestClusterReplicasSpread sanity-checks the directory: with enough MBs
// and 3 replicas, more than one replica owns connections, and replicas=1
// puts everything on replica 0 (the ablation really is the old path).
func TestClusterReplicasSpread(t *testing.T) {
	r := newClusterRig(t, 3, 4, false)
	owners := map[int]int{}
	for _, name := range r.cl.Middleboxes() {
		i, err := r.cl.ReplicaOf(name)
		if err != nil {
			t.Fatal(err)
		}
		owners[i]++
	}
	if len(owners) < 2 {
		t.Fatalf("8 middleboxes all landed on one replica: %v", owners)
	}
	single := newClusterRig(t, 1, 2, false)
	for _, name := range single.cl.Middleboxes() {
		i, err := single.cl.ReplicaOf(name)
		if err != nil || i != 0 {
			t.Fatalf("replicas=1 owner of %s: %d, %v", name, i, err)
		}
	}
}

// TestHandoffMessageCodecRoundTrip proves the ownership-transfer payload
// survives both SBI codecs byte-for-byte: a live export — registered keys,
// pending puts, buffered events, orphans — is framed, round-tripped through
// each codec over a real connection, imported from the DECODED payload, and
// must then drain identically to the original.
func TestHandoffMessageCodecRoundTrip(t *testing.T) {
	for _, codec := range []sbi.Codec{sbi.CodecJSON, sbi.CodecBinary} {
		t.Run(string(codec), func(t *testing.T) {
			c := NewController(Options{Shards: 4})
			src := newTestPeer(t, c, "src")
			dst := newTestPeer(t, c, "dst")
			tx := newTxn(c, src.mb, dst.mb)

			// Routing state of every flavor.
			tx.registerChunk(key(1)) // pending put, one buffered event
			c.router.route(src.mb, &sbi.Event{Kind: sbi.EventReprocess, Key: key(1), Seq: 1, Packet: []byte{0xA}})
			tx.registerChunk(key(2)) // pending put, empty buffer
			c.router.route(src.mb, &sbi.Event{Kind: sbi.EventReprocess, Key: key(9), Seq: 2, Packet: []byte{0xB}}) // orphan

			src.mb.handoffMu.Lock()
			h := c.router.exportHandoff(src.mb)
			src.mb.handoffMu.Unlock()
			if len(h.Keys) != 3 {
				t.Fatalf("export produced %d records, want 3: %+v", len(h.Keys), h)
			}
			// The payload must name its transactions by registry ID: that
			// is what lets replica-failure recovery abort the exact
			// transactions a dead coordinator left in a handed-off table.
			if len(h.Txns) != 1 || h.Txns[0] != tx.id {
				t.Fatalf("export carried txn IDs %v, want [%d]", h.Txns, tx.id)
			}

			// Round-trip the frame over a real connection pair.
			a, b := net.Pipe()
			left, right := sbi.NewConn(a), sbi.NewConn(b)
			defer left.Close()
			defer right.Close()
			if err := left.Upgrade(codec); err != nil {
				t.Fatal(err)
			}
			if err := right.Upgrade(codec); err != nil {
				t.Fatal(err)
			}
			sendErr := make(chan error, 1)
			go func() { sendErr <- left.Send(handoffMessage(h)) }()
			decoded, err := right.Receive()
			if err != nil {
				t.Fatal(err)
			}
			if err := <-sendErr; err != nil {
				t.Fatal(err)
			}
			if decoded.Op != sbi.OpTransferOwnership || !reflect.DeepEqual(decoded.Handoff, h) {
				t.Fatalf("%s round trip mutated the handoff:\n sent: %+v\n got:  %+v", codec, h, decoded.Handoff)
			}

			// Import the decoded payload into a second replica and drain:
			// the ACKs must release the transferred buffers in order. The
			// import resolves transactions from the decoded bytes through
			// the exporter's registry — the cross-process code path.
			c2 := NewController(Options{Shards: 8}) // different shard count on purpose
			dropped, err := c2.router.importHandoff(src.mb, decoded.Handoff, c.registry)
			if err != nil {
				t.Fatal(err)
			}
			if dropped != 0 {
				t.Fatalf("import dropped %d keys of a fully resolvable payload", dropped)
			}
			src.mb.ctrl.Store(c2)
			tx.ackPut(key(1))
			dst.expectReprocess(t, key(1))
			tx.ackPut(key(2))
			dst.expectNothing(t)
			// The orphan waits for its registering chunk, then its ACK.
			tx.registerChunk(key(9))
			tx.ackPut(key(9))
			dst.expectReprocess(t, key(9))
			tx.detach()
			assertRouterEmpty(t, c2.router)
		})
	}
}

// TestImportHandoffAbortedRemote: a handoff whose txn IDs the importer's
// registry cannot resolve belongs to a coordinator that died with its
// process. The import must drop those keys as aborted-remote — buffered
// events discarded, conservation intact because live packets are always
// counted at the source — while still installing orphan records, and must
// never install a key with a dangling owner.
func TestImportHandoffAbortedRemote(t *testing.T) {
	c := NewController(Options{Shards: 4})
	src := newTestPeer(t, c, "src")
	dst := newTestPeer(t, c, "dst")
	tx := newTxn(c, src.mb, dst.mb)
	tx.registerChunk(key(1))
	c.router.route(src.mb, &sbi.Event{Kind: sbi.EventReprocess, Key: key(1), Seq: 1, Packet: []byte{0xA}})
	c.router.route(src.mb, &sbi.Event{Kind: sbi.EventReprocess, Key: key(9), Seq: 2, Packet: []byte{0xB}}) // orphan

	src.mb.handoffMu.Lock()
	h := c.router.exportHandoff(src.mb)
	src.mb.handoffMu.Unlock()

	// A fresh controller models the recovering process: its registry has
	// never seen the exporter's transaction.
	c2 := NewController(Options{Shards: 2})
	dropped, err := c2.router.importHandoff(src.mb, h, c2.registry)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Fatalf("import dropped %d keys, want 1 (the dead coordinator's)", dropped)
	}
	keys, orphans := 0, 0
	for i := range c2.router.shards {
		sh := &c2.router.shards[i]
		sh.mu.Lock()
		keys += len(sh.keys)
		orphans += len(sh.orphans)
		sh.mu.Unlock()
	}
	if keys != 0 || orphans != 1 {
		t.Fatalf("after aborted-remote import: keys=%d orphans=%d, want 0/1", keys, orphans)
	}

	// A corrupt index past the table must still be rejected outright.
	bad := &sbi.Handoff{MB: "src", Keys: []sbi.HandoffKey{{Key: key(2), Txn: 7}}, Txns: []uint64{tx.id}}
	if _, err := c2.router.importHandoff(src.mb, bad, c2.registry); err == nil {
		t.Fatal("out-of-table txn index accepted")
	}
	tx.detach()
}

func assertRouterEmpty(t *testing.T, r *txnRouter) {
	t.Helper()
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		nk, no := len(sh.keys), len(sh.orphans)
		sh.mu.Unlock()
		if nk != 0 || no != 0 {
			t.Fatalf("shard %d not empty: keys=%d orphans=%d", i, nk, no)
		}
	}
}

// TestRegistrationStorm hammers the keyed waiter registry: 32 goroutines
// connecting, waiting, and disconnecting concurrently, with extra waiters
// on every name. Under -race this catches waiter-registry races; the keyed
// layout also keeps a storm from waking every unrelated waiter.
func TestRegistrationStorm(t *testing.T) {
	const workers = 32
	c := NewController(Options{})
	tr := sbi.NewMemTransport()
	if err := c.Serve(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("storm%d", w)
			for round := 0; round < 4; round++ {
				// A second goroutine races WaitForMB against the
				// registration itself.
				waitDone := make(chan error, 1)
				go func() { waitDone <- c.WaitForMB(name, 5*time.Second) }()
				rt := mbox.New(name, mbtest.NewCounterLogic(16), mbox.Options{})
				if err := rt.Connect(tr, "ctrl"); err != nil {
					t.Errorf("%s connect: %v", name, err)
					rt.Close()
					return
				}
				if err := c.WaitForMB(name, 5*time.Second); err != nil {
					t.Errorf("%s wait: %v", name, err)
				}
				if err := <-waitDone; err != nil {
					t.Errorf("%s racing wait: %v", name, err)
				}
				rt.Close()
				// Wait until the deregistration lands so the next
				// round's connect cannot be rejected as a duplicate.
				deadline := time.Now().Add(5 * time.Second)
				for {
					if _, err := c.mb(name); err != nil {
						break
					}
					if time.Now().After(deadline) {
						t.Errorf("%s never deregistered", name)
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}(w)
	}
	// Waiters on names that never register must time out cleanly and not
	// leak registry entries.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.WaitForMB(fmt.Sprintf("ghost%d", w), 30*time.Millisecond); err == nil {
				t.Error("ghost registration appeared")
			}
		}(w)
	}
	wg.Wait()
	c.waitMu.Lock()
	leaked := len(c.waiters)
	c.waitMu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d waiter entries leaked", leaked)
	}
}

// TestClusterBatchedEventHandoffStorm is the coalesced-wire-path stress:
// burst traffic (whole flow sets back to back, so the mbox outbox reliably
// produces multi-event frames) against concurrent moves while a handoff
// storm rotates every middlebox between three replicas. Batched frames must
// survive the freeze-transfer-replay discipline exactly like singles: every
// event either replays at the destination or is counted at the source, and
// the combined per-flow counts come out exact. Run under -race in CI.
func TestClusterBatchedEventHandoffStorm(t *testing.T) {
	const pairs, flows, rounds, replicas = 3, 40, 30, 3
	r := newClusterRig(t, replicas, pairs, false)
	for i := 0; i < pairs; i++ {
		r.srcs[i].Preload(flows)
	}

	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := r.rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				// The whole flow set in one burst: the packet worker
				// raises the events back to back, so the 2 ms coalescing
				// window packs them into batched frames.
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	stopChaos := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		names := r.cl.Middleboxes()
		for i := 0; ; i++ {
			select {
			case <-stopChaos:
				return
			default:
			}
			name := names[i%len(names)]
			cur, err := r.cl.ReplicaOf(name)
			if err != nil {
				continue
			}
			_ = r.cl.Rebalance(name, (cur+1)%replicas)
			time.Sleep(time.Millisecond)
		}
	}()

	var moves sync.WaitGroup
	errs := make([]error, pairs)
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			errs[i] = r.cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}
	moves.Wait()
	traffic.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("move %d under batched-event storm: %v", i, err)
		}
	}
	r.drainAll(t)
	if !r.cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	close(stopChaos)
	chaos.Wait()
	r.drainAll(t)

	if got := r.cl.Handoffs(); got < uint64(replicas) {
		t.Fatalf("storm performed only %d handoffs", got)
	}
	var raised uint64
	for i := 0; i < pairs; i++ {
		raised += r.rts[fmt.Sprintf("src%d", i)].Metrics().EventsRaised
	}
	if raised == 0 {
		t.Fatal("workload raised no reprocess events; the storm exercised nothing")
	}
	for i := 0; i < pairs; i++ {
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			if got := r.srcs[i].Count(k) + r.dsts[i].Count(k); got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", i, f, got, rounds+1)
			}
		}
		if got := r.srcs[i].Flows(); got != 0 {
			t.Fatalf("pair %d: source still holds %d flows", i, got)
		}
	}
	assertRoutersQuiescent(t, r.cl)
}
