package core

// White-box tests for the pooled per-call reply channels on the move path:
// a recycled channel must come back empty, and a reply racing the waiter's
// abandonment (timeout, error) must never surface inside the call that
// reuses the channel.

import (
	"net"
	"sync"
	"testing"
	"time"

	"openmb/internal/sbi"
)

// newCallConnPair returns an mbConn whose read loop is running against a
// scripted peer side.
func newCallConnPair(t *testing.T) (*mbConn, *sbi.Conn) {
	t.Helper()
	ctrlSide, mbSide := net.Pipe()
	mb := &mbConn{name: "mb", conn: sbi.NewConn(ctrlSide), pending: map[uint64]*call{}}
	peer := sbi.NewConn(mbSide)
	go func() { _ = mb.readLoop() }()
	t.Cleanup(func() {
		mb.conn.Close()
		peer.Close()
	})
	return mb, peer
}

// TestRecycledCallChannelComesBackEmpty pins the drain in dropCall: replies
// that were delivered but never consumed (an abandoned call) must not
// survive into the next call that draws the same channel from the pool.
func TestRecycledCallChannelComesBackEmpty(t *testing.T) {
	mb := &mbConn{name: "mb", pending: map[uint64]*call{}}
	id1, cl1 := mb.newCall(nil)
	// Two replies arrive but the waiter abandons the call without reading.
	cl1.ch <- &sbi.Message{Type: sbi.MsgChunk, ID: id1}
	cl1.ch <- &sbi.Message{Type: sbi.MsgDone, ID: id1}
	mb.dropCall(id1)

	_, cl2 := mb.newCall(nil)
	if cl2.ch != cl1.ch {
		// The free list is LIFO, so the very next call must reuse the
		// channel — this is what makes the emptiness assertion meaningful.
		t.Fatal("expected the recycled channel back")
	}
	if n := len(cl2.ch); n != 0 {
		t.Fatalf("recycled call channel holds %d stale replies", n)
	}
}

// TestLateReplyNeverLeaksIntoRecycledCall hammers the race between the read
// loop delivering a reply and the waiter abandoning the call: whatever the
// interleaving, the next call reusing the channel must only ever observe its
// own reply. Run with -race this also checks the hand-off publication.
func TestLateReplyNeverLeaksIntoRecycledCall(t *testing.T) {
	mb, peer := newCallConnPair(t)
	for round := 0; round < 300; round++ {
		idOld, _ := mb.newCall(nil)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The reply races dropCall below; net.Pipe is synchronous,
			// so this returns once the read loop picked the frame up.
			_ = peer.Send(&sbi.Message{Type: sbi.MsgDone, ID: idOld})
		}()
		mb.dropCall(idOld) // the waiter gave up (timeout path)
		wg.Wait()

		idNew, cl := mb.newCall(nil)
		if err := peer.Send(&sbi.Message{Type: sbi.MsgDone, ID: idNew}); err != nil {
			t.Fatal(err)
		}
		select {
		case m := <-cl.ch:
			if m.ID != idNew {
				t.Fatalf("round %d: reply %d leaked into call %d", round, m.ID, idNew)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("round %d: reply for call %d never arrived", round, idNew)
		}
		mb.dropCall(idNew)
	}
}

// TestFailedCallChannelIsNotRecycled: failAll closes the channels of calls
// outstanding at disconnect; a closed channel must never reach the pool (it
// could not carry the next call's replies).
func TestFailedCallChannelIsNotRecycled(t *testing.T) {
	mb := &mbConn{name: "mb", pending: map[uint64]*call{}}
	id, cl := mb.newCall(nil)
	mb.failAll(errTestDisconnect)
	if _, ok := <-cl.ch; ok {
		t.Fatal("failAll did not close the call channel")
	}
	// The waiter's deferred dropCall runs after failAll took the call over;
	// it must be a no-op, not a recycle of the closed channel.
	mb.dropCall(id)
	_, cl2 := mb.newCall(nil)
	if cl2.ch == cl.ch {
		t.Fatal("closed channel was recycled")
	}
	select {
	case cl2.ch <- &sbi.Message{Type: sbi.MsgDone, ID: 1}:
	default:
		t.Fatal("fresh call channel not usable")
	}
}

var errTestDisconnect = &net.OpError{Op: "read", Err: net.ErrClosed}
