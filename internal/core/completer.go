package core

import (
	"container/heap"
	"sync"
	"time"
)

// completer finishes transactions after event quiescence. The seed dedicated
// one goroutine per transaction to a sleep-poll loop (time.Sleep of a fifth
// of the quiet period until quietSince held), so N concurrent moves paid for
// N pollers waking 5x per period whether or not anything happened. The
// completer replaces them with a single timer goroutine owning a deadline
// heap: each pending completion sleeps exactly until its earliest possible
// quiescence instant, and a transaction that saw events in the meantime is
// pushed back to its new deadline instead of being polled.
type completer struct {
	ctrl *Controller

	mu      sync.Mutex
	pending completionHeap
	started bool
	stopped bool
	// redirect, once set by redirectTo, forwards every future schedule to
	// a survivor replica's completer. Completions must outlive the replica
	// that scheduled them: a transaction whose data phase finished keeps
	// its quiet-period completion even if its coordinator is declared
	// failed, and that completion has to run somewhere alive.
	redirect *completer
	wake     chan struct{}
	stop     chan struct{}
}

// completion is one scheduled transaction finish.
type completion struct {
	t   *txn
	due int64 // unix nanos of the next quiescence check
	// finish completes the transaction; it runs on its own goroutine
	// because it issues blocking southbound calls.
	finish func()
}

type completionHeap []*completion

func (h completionHeap) Len() int           { return len(h) }
func (h completionHeap) Less(i, j int) bool { return h[i].due < h[j].due }
func (h completionHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)        { *h = append(*h, x.(*completion)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func newCompleter(c *Controller) *completer {
	return &completer{ctrl: c, wake: make(chan struct{}, 1), stop: make(chan struct{})}
}

// schedule queues t to be finished once its source has been quiet for the
// controller's period. finish runs exactly once, on its own goroutine. The
// timer goroutine starts lazily with the first scheduled completion.
func (c *completer) schedule(t *txn, finish func()) {
	e := &completion{t: t, due: t.quietAt(c.ctrl.opts.QuietPeriod), finish: finish}
	c.mu.Lock()
	if r := c.redirect; r != nil {
		c.mu.Unlock()
		r.adopt(e)
		return
	}
	if c.stopped {
		c.mu.Unlock()
		// The controller is shutting down: complete immediately; the
		// southbound calls inside finish fail fast on closed
		// connections.
		go finish()
		return
	}
	heap.Push(&c.pending, e)
	if !c.started {
		c.started = true
		go c.loop()
	}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// adopt enqueues an already-built completion (migrated from a failed
// replica's completer, or handed over by its redirect). Semantics match the
// tail of schedule.
func (c *completer) adopt(e *completion) {
	c.mu.Lock()
	if r := c.redirect; r != nil {
		c.mu.Unlock()
		r.adopt(e)
		return
	}
	if c.stopped {
		c.mu.Unlock()
		go e.finish()
		return
	}
	heap.Push(&c.pending, e)
	if !c.started {
		c.started = true
		go c.loop()
	}
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// redirectTo migrates this completer's pending completions to other and
// forwards everything scheduled afterwards there too. Called by FailReplica
// after the dead replica's connections have been handed to survivors, so
// quiet-period completions keep their due times and run on live machinery.
func (c *completer) redirectTo(other *completer) {
	c.mu.Lock()
	c.redirect = other
	rest := c.pending
	c.pending = nil
	c.mu.Unlock()
	// Recompute the (now empty) heap's sleep so the timer goroutine parks.
	select {
	case c.wake <- struct{}{}:
	default:
	}
	for _, e := range rest {
		other.adopt(e)
	}
}

// close stops the timer goroutine and dispatches every still-pending
// completion immediately; their southbound calls fail fast once the
// connections close, mirroring what the seed's pollers did at shutdown
// without waiting out their quiet periods.
func (c *completer) close() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	rest := c.pending
	c.pending = nil
	started := c.started
	c.mu.Unlock()
	if started {
		close(c.stop)
	}
	for _, e := range rest {
		go e.finish()
	}
}

func (c *completer) loop() {
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		c.mu.Lock()
		wait := time.Hour
		if len(c.pending) > 0 {
			wait = time.Duration(c.pending[0].due - time.Now().UnixNano())
		}
		c.mu.Unlock()
		if wait > 0 {
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-c.wake:
			case <-c.stop:
				return
			}
		}
		now := time.Now().UnixNano()
		quiet := int64(c.ctrl.opts.QuietPeriod)
		var ready []*completion
		c.mu.Lock()
		for len(c.pending) > 0 && c.pending[0].due <= now {
			e := heap.Pop(&c.pending).(*completion)
			// Pipeline first, clock second (the order matters — see
			// txn.quietSince): events the source already delivered but
			// the router has not routed will touch the quiet clock when
			// they route, so re-poll rather than completing past them.
			if e.t.src.eventsInFlight() > 0 {
				e.due = now + quiet/5
				heap.Push(&c.pending, e)
				continue
			}
			if due := e.t.lastEvent.Load() + quiet; due > now {
				// Events arrived since this deadline was set: not
				// quiet yet. Sleep until the new earliest instant.
				e.due = due
				heap.Push(&c.pending, e)
				continue
			}
			ready = append(ready, e)
		}
		c.mu.Unlock()
		for _, e := range ready {
			go e.finish()
		}
	}
}
