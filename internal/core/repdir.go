package core

import (
	"sort"
	"sync"

	"openmb/internal/sbi"
)

// repDirectory is the cross-node replicated middlebox directory: every
// cluster node holds a full copy of name → owning-node records, so lookups
// are always local (and therefore stale-but-safe under partition — a
// partitioned node keeps answering from its last synchronized view). Writes
// propagate as versioned sbi.OpDirUpdate peer ops; the quorum discipline
// that makes a write durable lives in Node.commitOwnership, not here.
//
// The conflict rule is a deterministic last-writer-wins merge: the entry
// with the higher version wins, and equal versions break toward the
// lexicographically greater node name. Two nodes that each committed a
// version-k entry during a partition therefore converge to the same record
// on heal, whichever direction the updates replay in.
type repDirectory struct {
	mu      sync.Mutex
	entries map[string]sbi.DirEntry
}

func newRepDirectory() *repDirectory {
	return &repDirectory{entries: map[string]sbi.DirEntry{}}
}

// lookup answers which node owns the middlebox, from the local copy.
func (d *repDirectory) lookup(name string) (string, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[name]
	return e.Node, ok
}

// version reports the current version of the name's record (0 if absent).
func (d *repDirectory) version(name string) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.entries[name].Version
}

// next renders the entry a local ownership commit proposes: the current
// version plus one, owned by node. It does NOT apply the entry — a commit
// only becomes visible once its quorum is in (Node.commitOwnership calls
// apply after counting acks), so a refused commit leaves the stale view
// untouched.
func (d *repDirectory) next(name, node string) sbi.DirEntry {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sbi.DirEntry{Name: name, Node: node, Version: d.entries[name].Version + 1}
}

// apply merges one entry under the conflict rule and reports whether the
// local copy changed.
func (d *repDirectory) apply(e sbi.DirEntry) bool {
	if e.Name == "" {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	cur, ok := d.entries[e.Name]
	if ok && !wins(e, cur) {
		return false
	}
	d.entries[e.Name] = e
	return true
}

// wins reports whether candidate beats incumbent under the conflict rule.
func wins(candidate, incumbent sbi.DirEntry) bool {
	if candidate.Version != incumbent.Version {
		return candidate.Version > incumbent.Version
	}
	return candidate.Node > incumbent.Node
}

// snapshot returns every entry, sorted by name so syncs and tests are
// deterministic.
func (d *repDirectory) snapshot() []sbi.DirEntry {
	d.mu.Lock()
	out := make([]sbi.DirEntry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
