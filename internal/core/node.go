package core

import (
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// Node lifts a Cluster across the process boundary: one controller process
// per Node, joined to fellow nodes over SBI peer links (peer.go). Within
// the process the node is an ordinary Cluster — replicas, consistent-hash
// directory, shared transaction registry; across processes it adds:
//
//   - a replicated middlebox directory (repdir.go): every node holds a full
//     name → owning-node copy, updated by versioned OpDirUpdate peer ops
//     under a deterministic conflict rule, so lookups never cross the wire
//     and keep answering (stale but safe) under partition;
//   - quorum-committed ownership: registering a middlebox bumps its
//     directory entry and requires acknowledgments from a majority of known
//     nodes. A partitioned minority node refuses registrations — and
//     therefore refuses to become an owner it could not prove — while dead
//     nodes stay in the denominator, so a majority-side survivor keeps
//     committing after a crash;
//   - cross-node middlebox movement: Pull asks the owner to freeze the
//     middlebox, export its routing state as the standard
//     OpTransferOwnership payload, and redirect the middlebox here; the
//     payload's transaction table is resolved through the local registry by
//     wire ID, with unresolvable (remote-coordinated) transactions dropped
//     as aborted-remote.
//
// Node embeds *Cluster, so the whole northbound API — moves, clones,
// merges, stats, rebalancing — works unchanged on a node; MoveInternal is
// shadowed to pull both endpoints local first.
type Node struct {
	*Cluster

	name      string
	advertise string
	opts      NodeOptions
	tr        sbi.Transport

	repdir *repDirectory

	mu       sync.Mutex
	peers    map[string]*peerConn // live links, by remote node name
	known    map[string]string    // every non-departed node ever seen (name → addr), self excluded
	listener net.Listener
	closed   atomic.Bool

	dirCommits     atomic.Uint64
	dirRefusals    atomic.Uint64
	peerReconnects atomic.Uint64
	pulls          atomic.Uint64
}

// NodeOptions configures a cluster node.
type NodeOptions struct {
	// Name identifies this node cluster-wide; it must be unique among
	// peers (default "node"). It also salts the transaction registry so
	// wire-visible txn IDs never collide across processes.
	Name string
	// Advertise is the address peers and redirected middleboxes dial to
	// reach this node; defaults to the Serve listener's address.
	Advertise string
	// PeerCallTimeout bounds one peer round trip (default 3s). It doubles
	// as the partition detector: a timed-out call closes the link.
	PeerCallTimeout time.Duration
	// PullTimeout bounds how long a Pull waits for the released middlebox
	// to redial this node (default 10s).
	PullTimeout time.Duration
	// Cluster configures the in-process replica set. FindRetryWindow
	// defaults to 2s on a node (cross-process failover gaps include dial
	// latencies and reconnect backoff) instead of the in-process 250ms.
	Cluster ClusterOptions
}

// nodeSalt derives the registry ID salt from the node name: 16 well-mixed
// bits in the high half, leaving 2^48 IDs per node before any overlap.
func nodeSalt(name string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(name))
	return (mix64(f.Sum64()) & 0xFFFF) << 48
}

// NewNode creates a node wrapping a fresh Cluster.
func NewNode(opts NodeOptions) *Node {
	if opts.Name == "" {
		opts.Name = "node"
	}
	if opts.PeerCallTimeout <= 0 {
		opts.PeerCallTimeout = 3 * time.Second
	}
	if opts.PullTimeout <= 0 {
		opts.PullTimeout = 10 * time.Second
	}
	if opts.Cluster.FindRetryWindow <= 0 {
		opts.Cluster.FindRetryWindow = 2 * time.Second
	}
	cl := NewCluster(opts.Cluster)
	cl.registry.seed(nodeSalt(opts.Name))
	return &Node{
		Cluster:   cl,
		name:      opts.Name,
		advertise: opts.Advertise,
		opts:      opts,
		repdir:    newRepDirectory(),
		peers:     map[string]*peerConn{},
		known:     map[string]string{},
	}
}

// Name returns the node's cluster-wide name.
func (n *Node) Name() string { return n.name }

// Serve starts the node's accept loop: middlebox hellos are quorum-committed
// into the replicated directory and handed to the owning replica; peer
// hellos are answered and become node-to-node links.
func (n *Node) Serve(tr sbi.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("core: node %s listen %q: %w", n.name, addr, err)
	}
	n.mu.Lock()
	n.tr = tr
	n.listener = l
	if n.advertise == "" {
		n.advertise = l.Addr().String()
	}
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// Addr returns the node listener's address, or "" before Serve.
func (n *Node) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Advertise returns the address this node announces to peers and redirected
// middleboxes.
func (n *Node) Advertise() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.advertise
}

func (n *Node) acceptLoop(l net.Listener) {
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			conn := sbi.NewConn(raw)
			_ = conn.SetReadDeadline(time.Now().Add(n.replicas[0].opts.HelloTimeout))
			hello, err := conn.Receive()
			if err != nil || hello.Type != sbi.MsgHello || hello.Name == "" {
				conn.Close()
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
			if hello.Kind == sbi.PeerKind {
				n.acceptPeer(conn, hello)
				return
			}
			// Middlebox registration is an ownership change: it must
			// commit to the replicated directory under quorum before the
			// connection is accepted. A partitioned node refuses here —
			// the middlebox's reconnect machinery moves on to the next
			// address in its list, which is a node that CAN commit.
			if err := n.commitOwnership(hello.Name); err != nil {
				_ = conn.Send(&sbi.Message{Type: sbi.MsgError, Error: err.Error()})
				conn.Close()
				return
			}
			n.replicas[n.Cluster.dir.owner(hello.Name)].serveMB(conn, hello)
		}()
	}
}

// ---------------------------------------------------------------------------
// Peer mesh.

// Join dials a member of an existing cluster, syncs the replicated
// directory, and dials every other node the member knows — one exchange
// makes the mesh full again.
func (n *Node) Join(addr string) error {
	p, err := n.connectPeer(addr)
	if err != nil {
		return err
	}
	resp, err := p.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDirSync}, n.opts.PeerCallTimeout)
	if err != nil {
		return err
	}
	for _, e := range resp.Dir {
		n.repdir.apply(e)
	}
	for _, kv := range resp.Values {
		name, peerAddr, ok := strings.Cut(kv, "=")
		if !ok || name == n.name || peerAddr == "" {
			continue
		}
		n.mu.Lock()
		n.known[name] = peerAddr
		linked := n.peers[name] != nil
		n.mu.Unlock()
		if !linked {
			// Best-effort: an unreachable third node surfaces later as a
			// quorum refusal, not a failed join.
			go func(a string) { _, _ = n.connectPeer(a) }(peerAddr)
		}
	}
	return nil
}

// connectPeer dials one peer: JSON hello announcing the peer role and our
// advertised address, the acceptor's hello back (the only answered hello in
// the protocol — the dialer needs the remote name), then the binary codec.
func (n *Node) connectPeer(addr string) (*peerConn, error) {
	n.mu.Lock()
	tr := n.tr
	adv := n.advertise
	n.mu.Unlock()
	if tr == nil {
		return nil, fmt.Errorf("core: node %s: not serving yet", n.name)
	}
	raw, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("core: node %s dial peer %q: %w", n.name, addr, err)
	}
	conn := sbi.NewConn(raw)
	hello := &sbi.Message{Type: sbi.MsgHello, Name: n.name, Kind: sbi.PeerKind, Codec: sbi.CodecBinary, Addr: adv}
	if err := conn.Send(hello); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetReadDeadline(time.Now().Add(n.opts.PeerCallTimeout))
	reply, err := conn.Receive()
	if err != nil || reply.Type != sbi.MsgHello || reply.Name == "" {
		conn.Close()
		return nil, fmt.Errorf("core: node %s: peer %q sent no hello back", n.name, addr)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if err := conn.Upgrade(sbi.CodecBinary); err != nil {
		conn.Close()
		return nil, err
	}
	peerAddr := reply.Addr
	if peerAddr == "" {
		peerAddr = addr
	}
	return n.registerPeer(reply.Name, peerAddr, conn), nil
}

// acceptPeer completes the accept side of the handshake.
func (n *Node) acceptPeer(conn *sbi.Conn, hello *sbi.Message) {
	n.mu.Lock()
	adv := n.advertise
	n.mu.Unlock()
	ours := &sbi.Message{Type: sbi.MsgHello, Name: n.name, Kind: sbi.PeerKind, Codec: hello.Codec, Addr: adv}
	if err := conn.Send(ours); err != nil {
		conn.Close()
		return
	}
	if err := conn.Upgrade(hello.Codec); err != nil {
		conn.Close()
		return
	}
	n.registerPeer(hello.Name, hello.Addr, conn)
}

// registerPeer records the link and starts its read loop. Latest wins: a
// fresh link to a name replaces (and closes) any stale one, which is how
// both a reconnect and a simultaneous cross-dial converge to one link.
func (n *Node) registerPeer(name, addr string, conn *sbi.Conn) *peerConn {
	p := newPeerConn(n, name, addr, conn)
	n.mu.Lock()
	old := n.peers[name]
	n.peers[name] = p
	if addr != "" {
		n.known[name] = addr
	}
	n.mu.Unlock()
	if old != nil {
		old.close()
	}
	go p.readLoop()
	// Anti-entropy: every (re)established link syncs directories, so entries
	// committed while the two nodes could not talk — a healed partition, a
	// node that was down — converge without waiting for the next commit.
	go func() {
		resp, err := p.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDirSync}, n.opts.PeerCallTimeout)
		if err != nil {
			return
		}
		for _, e := range resp.Dir {
			n.repdir.apply(e)
		}
	}()
	return p
}

// peerGone handles a dead link. The node with the smaller name owns
// redialing (deterministic, so a heal produces one link, not a crossed
// pair); the peer stays in the known set regardless — only an explicit
// OpPeerLeave shrinks the quorum denominator.
func (n *Node) peerGone(p *peerConn) {
	n.mu.Lock()
	if n.peers[p.name] == p {
		delete(n.peers, p.name)
	}
	_, stillKnown := n.known[p.name]
	n.mu.Unlock()
	if stillKnown && !n.closed.Load() && n.name < p.name {
		go n.redialLoop(p.name, p.addr)
	}
}

func (n *Node) redialLoop(name, addr string) {
	delay := 100 * time.Millisecond
	for !n.closed.Load() {
		n.mu.Lock()
		_, stillKnown := n.known[name]
		linked := n.peers[name] != nil
		n.mu.Unlock()
		if !stillKnown || linked {
			return
		}
		if _, err := n.connectPeer(addr); err == nil {
			n.peerReconnects.Add(1)
			return
		}
		time.Sleep(delay)
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
}

// peer returns the live link to a node, or nil.
func (n *Node) peer(name string) *peerConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.peers[name]
}

// Peers lists the node names with live links, sorted.
func (n *Node) Peers() []string {
	n.mu.Lock()
	names := make([]string, 0, len(n.peers))
	for name := range n.peers {
		names = append(names, name)
	}
	n.mu.Unlock()
	sort.Strings(names)
	return names
}

// KnownNodes reports how many nodes this one believes are in the cluster,
// itself included — the quorum denominator.
func (n *Node) KnownNodes() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.known) + 1
}

// ---------------------------------------------------------------------------
// Replicated directory.

// Lookup answers which node owns the middlebox, from the local replica of
// the directory. Always local, therefore partition-safe: a minority node
// keeps serving its last synchronized (stale-but-safe) view.
func (n *Node) Lookup(mbName string) (string, bool) {
	return n.repdir.lookup(mbName)
}

// commitOwnership records this node as mbName's owner, durably: the bumped
// entry must be acknowledged by a majority of known nodes (self included)
// before it is applied and the registration accepted. Dead nodes never ack
// but stay known, so a 3-node cluster with one crashed member still commits
// 2-of-3, while a partitioned single node fails 1-of-3 and refuses.
func (n *Node) commitOwnership(mbName string) error {
	e := n.repdir.next(mbName, n.name)
	n.mu.Lock()
	total := len(n.known) + 1
	links := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		links = append(links, p)
	}
	n.mu.Unlock()

	acks := 1 // self
	if total > 1 {
		update := &sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDirUpdate, Dir: []sbi.DirEntry{e}}
		results := make(chan bool, len(links))
		for _, p := range links {
			go func(p *peerConn) {
				_, err := p.call(&sbi.Message{Type: update.Type, Op: update.Op, Dir: update.Dir}, n.opts.PeerCallTimeout)
				results <- err == nil
			}(p)
		}
		for range links {
			if <-results {
				acks++
			}
		}
	}
	if 2*acks <= total {
		n.dirRefusals.Add(1)
		return fmt.Errorf("core: node %s: cannot commit ownership of %q: %d of %d nodes acknowledged (partitioned minority refuses ownership changes)", n.name, mbName, acks, total)
	}
	n.repdir.apply(e)
	n.dirCommits.Add(1)
	return nil
}

// servePeerRequest handles one incoming peer op and replies on the link.
func (n *Node) servePeerRequest(p *peerConn, m *sbi.Message) {
	switch m.Op {
	case sbi.OpDirUpdate:
		for _, e := range m.Dir {
			n.repdir.apply(e)
		}
		p.reply(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})
	case sbi.OpDirSync:
		n.mu.Lock()
		values := make([]string, 0, len(n.known)+1)
		values = append(values, n.name+"="+n.advertise)
		for name, addr := range n.known {
			values = append(values, name+"="+addr)
		}
		n.mu.Unlock()
		sort.Strings(values)
		p.reply(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Dir: n.repdir.snapshot(), Values: values})
	case sbi.OpPeerLeave:
		p.reply(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})
		n.mu.Lock()
		delete(n.known, p.name)
		n.mu.Unlock()
		p.close()
	case sbi.OpReleaseMB:
		h, err := n.releaseMB(m.Name, m.Addr)
		if err != nil {
			p.reply(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
			return
		}
		p.reply(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Handoff: h})
	default:
		p.reply(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: fmt.Sprintf("core: unknown peer op %q", m.Op)})
	}
}

// releaseMB gives up a locally registered middlebox to the node at toAddr:
// freeze, export the routing state (the caller ships it back in the reply),
// then redirect the middlebox so it redials its new owner. The redirect
// happens outside the freeze — holding the handoff write-lock across a
// middlebox round trip would deadlock against its read loop — so events the
// middlebox raises in the short window between export and reconnect land as
// orphans and are recovered by the standard rollback machinery.
func (n *Node) releaseMB(mbName, toAddr string) (*sbi.Handoff, error) {
	cl := n.Cluster
	cl.mu.Lock()
	c, mb, err := cl.find(mbName)
	if err != nil {
		cl.mu.Unlock()
		return nil, err
	}
	mb.handoffMu.Lock()
	if mb.controller() != c {
		mb.handoffMu.Unlock()
		cl.mu.Unlock()
		return nil, fmt.Errorf("core: release %q: ownership changed mid-freeze", mbName)
	}
	h := c.router.exportHandoff(mb)
	mb.handoffMu.Unlock()
	cl.mu.Unlock()

	if toAddr != "" {
		_, _ = mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpRedirect, Addr: toAddr}, c.opts.CallTimeout)
	}
	return h, nil
}

// Pull moves ownership of a middlebox to this node: ask the current owner
// to release it (freeze + export + redirect), wait for the middlebox to
// redial here (its registration quorum-commits the directory change), then
// import the exported routing state from the wire payload through the local
// registry. Remote-coordinated transactions resolve to nothing and drop as
// aborted-remote; a subsequent RecoverMove restores any move they were
// mid-flight on. Pulling an already-local middlebox is a no-op.
func (n *Node) Pull(mbName string) error {
	if _, _, err := n.Cluster.find(mbName); err == nil {
		return nil
	}
	owner, ok := n.repdir.lookup(mbName)
	if !ok {
		return fmt.Errorf("core: node %s: no directory entry for %q", n.name, mbName)
	}
	if owner == n.name {
		return fmt.Errorf("core: node %s: directory names this node for %q but it is not registered", n.name, mbName)
	}
	p := n.peer(owner)
	if p == nil {
		return fmt.Errorf("core: node %s: no live peer link to %q (owner of %q)", n.name, owner, mbName)
	}
	resp, err := p.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpReleaseMB, Name: mbName, Addr: n.Advertise()}, n.opts.PeerCallTimeout)
	if err != nil {
		return err
	}
	if err := n.Cluster.WaitForMB(mbName, n.opts.PullTimeout); err != nil {
		return fmt.Errorf("core: node %s: released middlebox %q never redialed: %w", n.name, mbName, err)
	}
	if resp.Handoff != nil && len(resp.Handoff.Keys) > 0 {
		c, mb, err := n.Cluster.findRetry(mbName)
		if err != nil {
			return err
		}
		mb.handoffMu.Lock()
		_, ierr := c.router.importHandoff(mb, resp.Handoff, n.Cluster.registry)
		mb.handoffMu.Unlock()
		if ierr != nil {
			return ierr
		}
	}
	n.pulls.Add(1)
	return nil
}

// MoveInternal shadows Cluster.MoveInternal with cross-node awareness: both
// endpoints are pulled local first (the wire handoff travels on the peer
// link; the middlebox redials), then the move runs on the local cluster
// unchanged.
func (n *Node) MoveInternal(srcMB, dstMB string, m packet.FieldMatch) error {
	if err := n.Pull(srcMB); err != nil {
		return err
	}
	if err := n.Pull(dstMB); err != nil {
		return err
	}
	return n.Cluster.MoveInternal(srcMB, dstMB, m)
}

// ---------------------------------------------------------------------------
// Lifecycle and metrics.

// Shutdown is the graceful exit: wait out in-flight transactions, announce
// departure to every peer (shrinking their quorum denominators), then tear
// the node down. The timeout bounds the transaction wait; departure
// announcements use the peer call timeout.
func (n *Node) Shutdown(timeout time.Duration) {
	n.Cluster.WaitTxns(timeout)
	n.mu.Lock()
	links := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		links = append(links, p)
	}
	n.mu.Unlock()
	var wg sync.WaitGroup
	for _, p := range links {
		wg.Add(1)
		go func(p *peerConn) {
			defer wg.Done()
			_, _ = p.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpPeerLeave}, n.opts.PeerCallTimeout)
		}(p)
	}
	wg.Wait()
	n.Close()
}

// Close stops the node: listener, peer links, then the embedded cluster.
// Peers are NOT notified (that is Shutdown) — a closed-without-leave node
// stays in its peers' quorum denominators, like a crash.
func (n *Node) Close() {
	if !n.closed.CompareAndSwap(false, true) {
		return
	}
	n.mu.Lock()
	l := n.listener
	links := make([]*peerConn, 0, len(n.peers))
	for _, p := range n.peers {
		links = append(links, p)
	}
	n.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, p := range links {
		p.close()
	}
	n.Cluster.Close()
}

// Collect implements obs.Collector: the cluster's series plus the node
// layer's own counters.
func (n *Node) Collect(e *obs.Emitter) {
	n.Cluster.Collect(e)
	e.Counter("openmb_node_dir_commits_total", "Replicated-directory ownership changes committed under quorum.", n.dirCommits.Load())
	e.Counter("openmb_node_dir_refusals_total", "Ownership changes refused for lack of quorum (partitioned minority).", n.dirRefusals.Load())
	e.Counter("openmb_node_peer_reconnects_total", "Peer links re-established after loss.", n.peerReconnects.Load())
	e.Counter("openmb_node_pulls_total", "Middleboxes pulled from other nodes.", n.pulls.Load())
}
