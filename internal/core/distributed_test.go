package core

// Distributed-cluster tests: the replicated directory's conflict rule, the
// peer mesh over real TCP sockets, quorum-refused ownership under an
// asymmetric partition (with heal), cross-node pulls and moves with exact
// per-flow conservation, and TCP ports of the PR 6 chaos scenarios (flap
// storm, asymmetric partition) through the fault-injection transport
// wrapping real listeners. CI runs these under -race in the distributed job.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"openmb/internal/faults"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

func TestRepDirectoryConflictRule(t *testing.T) {
	d := newRepDirectory()
	if _, ok := d.lookup("mb"); ok {
		t.Fatal("empty directory resolved a name")
	}

	// next proposes but must not apply: a refused commit leaves no trace.
	e := d.next("mb", "a")
	if e.Version != 1 || e.Node != "a" {
		t.Fatalf("first proposal = %+v, want version 1 node a", e)
	}
	if _, ok := d.lookup("mb"); ok {
		t.Fatal("proposal applied without commit")
	}

	if !d.apply(e) {
		t.Fatal("first apply rejected")
	}
	if owner, _ := d.lookup("mb"); owner != "a" {
		t.Fatalf("owner = %s, want a", owner)
	}

	// Higher version wins regardless of arrival order.
	if !d.apply(sbi.DirEntry{Name: "mb", Node: "b", Version: 3}) {
		t.Fatal("higher version rejected")
	}
	if d.apply(sbi.DirEntry{Name: "mb", Node: "z", Version: 2}) {
		t.Fatal("stale version applied")
	}
	if owner, _ := d.lookup("mb"); owner != "b" {
		t.Fatalf("owner = %s, want b", owner)
	}

	// Equal versions break toward the greater node name — both orders
	// converge to the same record, the whole point of the rule.
	d1, d2 := newRepDirectory(), newRepDirectory()
	ea := sbi.DirEntry{Name: "x", Node: "alpha", Version: 5}
	eb := sbi.DirEntry{Name: "x", Node: "beta", Version: 5}
	d1.apply(ea)
	d1.apply(eb)
	d2.apply(eb)
	d2.apply(ea)
	o1, _ := d1.lookup("x")
	o2, _ := d2.lookup("x")
	if o1 != "beta" || o2 != "beta" {
		t.Fatalf("tie converged to %q/%q, want beta/beta", o1, o2)
	}
}

// newTestNode starts a node over the given transport on a loopback port.
func newTestNode(t *testing.T, name string, tr sbi.Transport) *Node {
	t.Helper()
	n := NewNode(NodeOptions{
		Name:            name,
		PeerCallTimeout: 400 * time.Millisecond,
		Cluster: ClusterOptions{
			Replicas:   1,
			Controller: Options{QuietPeriod: 60 * time.Millisecond},
		},
	})
	if err := n.Serve(tr, "127.0.0.1:0"); err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func attachNodeMB(t *testing.T, name string, logic mbox.Logic, addrs string) *mbox.Runtime {
	t.Helper()
	rt := mbox.New(name, logic, mbox.Options{
		Reconnect:    true,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	t.Cleanup(rt.Close)
	if err := rt.Connect(sbi.TCPTransport{}, addrs); err != nil {
		t.Fatal(err)
	}
	return rt
}

// TestNodeJoinMeshAndDirectory brings up a three-node cluster over TCP with
// one Join call per late node: the mesh must complete itself from the
// directory-sync exchange, and a middlebox registration on one node must be
// quorum-committed into every replica of the directory before it is
// accepted.
func TestNodeJoinMeshAndDirectory(t *testing.T) {
	a := newTestNode(t, "a", sbi.TCPTransport{})
	b := newTestNode(t, "b", sbi.TCPTransport{})
	c := newTestNode(t, "c", sbi.TCPTransport{})
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{a, b, c} {
		waitUntil(t, 10*time.Second, n.Name()+" full mesh", func() bool {
			return len(n.Peers()) == 2 && n.KnownNodes() == 3
		})
	}

	attachNodeMB(t, "mb1", mbtest.NewCounterLogic(16), a.Addr())
	if err := a.Cluster.WaitForMB("mb1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	// The registration was only accepted after the quorum round, so every
	// acking node already holds the entry.
	for _, n := range []*Node{a, b, c} {
		waitUntil(t, 5*time.Second, n.Name()+" directory entry", func() bool {
			owner, ok := n.Lookup("mb1")
			return ok && owner == "a"
		})
	}
	if got := a.dirCommits.Load(); got != 1 {
		t.Fatalf("a committed %d ownership changes, want 1", got)
	}
}

// TestNodePullMovesSession registers a middlebox on node a knowing only a's
// address, then pulls it to b and back: each pull must redirect the
// middlebox (teaching it the new owner's address), re-register it under a
// quorum-committed directory bump, deregister it at the old owner, and
// leave the logic's state untouched.
func TestNodePullMovesSession(t *testing.T) {
	a := newTestNode(t, "a", sbi.TCPTransport{})
	b := newTestNode(t, "b", sbi.TCPTransport{})
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "mesh", func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 1
	})

	logic := mbtest.NewCounterLogic(16)
	attachNodeMB(t, "m1", logic, a.Addr())
	if err := a.Cluster.WaitForMB("m1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	logic.Preload(10)

	if err := b.Pull("m1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Cluster.find("m1"); err != nil {
		t.Fatalf("pulled middlebox not registered at b: %v", err)
	}
	waitUntil(t, 5*time.Second, "deregistration at a", func() bool {
		return len(a.Cluster.Middleboxes()) == 0
	})
	for _, n := range []*Node{a, b} {
		if owner, _ := n.Lookup("m1"); owner != "b" {
			t.Fatalf("%s directory says %q owns m1, want b", n.Name(), owner)
		}
	}
	if v := b.repdir.version("m1"); v != 2 {
		t.Fatalf("directory version %d after pull, want 2", v)
	}
	if got := logic.Flows(); got != 10 {
		t.Fatalf("pull disturbed logic state: %d flows, want 10", got)
	}

	// Pull it back, then verify an already-local pull is a no-op.
	if err := a.Pull("m1"); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "directory flip back to a", func() bool {
		ob, _ := b.Lookup("m1")
		oa, _ := a.Lookup("m1")
		return oa == "a" && ob == "a"
	})
	if v := a.repdir.version("m1"); v != 3 {
		t.Fatalf("directory version %d after pull-back, want 3", v)
	}
	if err := a.Pull("m1"); err != nil {
		t.Fatal(err)
	}
	if v := a.repdir.version("m1"); v != 3 {
		t.Fatalf("no-op pull bumped the directory to %d", v)
	}
	if a.pulls.Load() != 1 || b.pulls.Load() != 1 {
		t.Fatalf("pull counters a=%d b=%d, want 1/1", a.pulls.Load(), b.pulls.Load())
	}
}

// TestNodeCrossNodeMoveConservation is the tentpole's conservation check: a
// move whose endpoints start on different nodes, under live traffic, over
// real TCP. The source is pulled across the node boundary (freeze, export
// on the peer wire, redirect, re-register) and the move then runs locally;
// every preloaded count and every packet must land exactly once.
func TestNodeCrossNodeMoveConservation(t *testing.T) {
	const flows, rounds = 24, 4
	a := newTestNode(t, "a", sbi.TCPTransport{})
	b := newTestNode(t, "b", sbi.TCPTransport{})
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 10*time.Second, "mesh", func() bool {
		return len(a.Peers()) == 1 && len(b.Peers()) == 1
	})

	src := mbtest.NewCounterLogic(16)
	dst := mbtest.NewCounterLogic(16)
	srcRT := attachNodeMB(t, "src", src, a.Addr())
	attachNodeMB(t, "dst", dst, b.Addr())
	if err := a.Cluster.WaitForMB("src", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := b.Cluster.WaitForMB("dst", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	src.Preload(flows)

	var traffic sync.WaitGroup
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		for round := 0; round < rounds; round++ {
			for f := 0; f < flows; f++ {
				srcRT.HandlePacket(mbtest.PacketForFlow(f))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	if err := b.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatalf("cross-node move: %v", err)
	}
	traffic.Wait()
	for _, rt := range []*mbox.Runtime{srcRT} {
		if !rt.Drain(10 * time.Second) {
			t.Fatal("source did not drain")
		}
	}
	if !b.Cluster.WaitTxns(30 * time.Second) {
		t.Fatal("cross-node move transactions did not complete")
	}
	if !srcRT.Drain(10 * time.Second) {
		t.Fatal("source did not drain after txns")
	}

	for f := 0; f < flows; f++ {
		k := mbtest.FlowN(f)
		if got := src.Count(k) + dst.Count(k); got != rounds+1 {
			t.Fatalf("flow %d: combined count %d, want %d", f, got, rounds+1)
		}
	}
	if got := src.Flows(); got != 0 {
		t.Fatalf("source still holds %d flows", got)
	}
	if got := dst.Flows(); got != flows {
		t.Fatalf("destination holds %d flows, want %d", got, flows)
	}
	assertRoutersQuiescent(t, b.Cluster)
	if got := b.Cluster.registry.Live(); got != 0 {
		t.Fatalf("%d transactions leaked at b", got)
	}
	if got := a.Cluster.registry.Live(); got != 0 {
		t.Fatalf("%d transactions leaked at a", got)
	}
}

// TestNodePartitionRefusesOwnership puts one node of three behind a
// directional blackhole (its outbound bytes vanish; it still hears the
// world — the nastiest partition shape): a middlebox registering there must
// be refused for lack of quorum and fail over to a majority node, the
// partitioned node must keep serving stale directory reads, and after the
// heal the mesh must re-form and the node must commit registrations again.
func TestNodePartitionRefusesOwnership(t *testing.T) {
	ftC := faults.New(sbi.TCPTransport{}, faults.Options{})
	a := newTestNode(t, "a", sbi.TCPTransport{})
	b := newTestNode(t, "b", sbi.TCPTransport{})
	c := newTestNode(t, "c", ftC)
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, n := range []*Node{a, b, c} {
		waitUntil(t, 10*time.Second, n.Name()+" full mesh", func() bool {
			return len(n.Peers()) == 2
		})
	}
	attachNodeMB(t, "mb1", mbtest.NewCounterLogic(16), a.Addr())
	if err := a.Cluster.WaitForMB("mb1", 10*time.Second); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "mb1 in c's directory", func() bool {
		owner, ok := c.Lookup("mb1")
		return ok && owner == "a"
	})

	// Everything c writes now vanishes; everything written TO c arrives.
	ftC.SetPartition(true, true)

	// A middlebox that prefers c must be refused there (c cannot commit
	// ownership: its quorum round goes dark) and land on a instead — the
	// rotation through its candidate list is the failover.
	attachNodeMB(t, "mb2", mbtest.NewCounterLogic(16), c.Addr()+","+a.Addr())
	if err := a.Cluster.WaitForMB("mb2", 20*time.Second); err != nil {
		t.Fatalf("refused middlebox never failed over to the majority: %v", err)
	}
	if got := c.dirRefusals.Load(); got == 0 {
		t.Fatal("partitioned node refused nothing")
	}
	if got := c.Cluster.Middleboxes(); len(got) != 0 {
		t.Fatalf("partitioned node accepted a registration: %v", got)
	}
	// Stale-but-safe reads: the partitioned node still answers from its
	// last synchronized view.
	if owner, ok := c.Lookup("mb1"); !ok || owner != "a" {
		t.Fatalf("partitioned node lost its stale view: %q %v", owner, ok)
	}

	// Heal. Latched-dark connections never resume (mid-frame delivery would
	// desynchronize the codec); the peers' call-timeout-closes-the-link
	// discipline plus redial is what actually restores the mesh.
	ftC.SetPartition(false, false)
	for _, n := range []*Node{a, b, c} {
		waitUntil(t, 20*time.Second, n.Name()+" mesh re-formed", func() bool {
			return len(n.Peers()) == 2
		})
	}
	// The healed node commits registrations again, and the commit reaches
	// the majority side's directories.
	attachNodeMB(t, "mb3", mbtest.NewCounterLogic(16), c.Addr())
	if err := c.Cluster.WaitForMB("mb3", 20*time.Second); err != nil {
		t.Fatalf("healed node cannot accept registrations: %v", err)
	}
	waitUntil(t, 10*time.Second, "mb3 propagated to a", func() bool {
		owner, ok := a.Lookup("mb3")
		return ok && owner == "c"
	})
}

// TestTCPClusterReconnectFlapStorm is the PR 6 flap-storm chaos scenario
// ported from the in-memory transport to real TCP listeners wrapped in the
// fault-injection transport: repeated whole-fleet connection kills against
// reconnecting runtimes, then a full workload with moves that must come out
// loss-free, and no goroutine leaks from the churn.
func TestTCPClusterReconnectFlapStorm(t *testing.T) {
	const pairs, flows, rounds, storms = 2, 20, 3, 2
	before := runtime.NumGoroutine()
	ft := faults.New(sbi.TCPTransport{}, faults.Options{Seed: 42})
	cl := NewCluster(ClusterOptions{Replicas: 3, Controller: Options{
		QuietPeriod:       60 * time.Millisecond,
		HeartbeatInterval: 25 * time.Millisecond,
	}})
	if err := cl.Serve(ft, "127.0.0.1:0"); err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	addr := cl.Addr()

	names := make([]string, 0, 2*pairs)
	srcs := make([]*mbtest.CounterLogic, pairs)
	dsts := make([]*mbtest.CounterLogic, pairs)
	rts := map[string]*mbox.Runtime{}
	attach := func(name string, logic *mbtest.CounterLogic) {
		rt := mbox.New(name, logic, mbox.Options{
			Reconnect:    true,
			ReconnectMin: 2 * time.Millisecond,
			ReconnectMax: 40 * time.Millisecond,
		})
		if err := rt.Connect(ft, addr); err != nil {
			t.Fatal(err)
		}
		if err := cl.WaitForMB(name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		rts[name] = rt
		names = append(names, name)
	}
	for i := 0; i < pairs; i++ {
		srcs[i] = mbtest.NewCounterLogic(16)
		dsts[i] = mbtest.NewCounterLogic(16)
		attach(fmt.Sprintf("src%d", i), srcs[i])
		attach(fmt.Sprintf("dst%d", i), dsts[i])
	}

	fleetReconnects := func() uint64 {
		var total uint64
		for _, rt := range rts {
			total += rt.Metrics().Reconnects
		}
		return total
	}
	for round := 0; round < storms; round++ {
		if n := ft.KillAll(); n == 0 {
			t.Fatalf("storm round %d found no connections to kill", round)
		}
		want := uint64(2 * pairs * (round + 1))
		deadline := time.Now().Add(10 * time.Second)
		for fleetReconnects() < want {
			if time.Now().After(deadline) {
				t.Fatalf("storm round %d: fleet reconnected %d times, want >= %d",
					round, fleetReconnects(), want)
			}
			time.Sleep(2 * time.Millisecond)
		}
		for _, name := range names {
			if err := cl.WaitForMB(name, 10*time.Second); err != nil {
				t.Fatalf("storm round %d: %s never reconnected: %v", round, name, err)
			}
		}
	}

	for i := 0; i < pairs; i++ {
		srcs[i].Preload(flows)
	}
	var traffic sync.WaitGroup
	for i := 0; i < pairs; i++ {
		traffic.Add(1)
		go func(i int) {
			defer traffic.Done()
			rt := rts[fmt.Sprintf("src%d", i)]
			for round := 0; round < rounds; round++ {
				for f := 0; f < flows; f++ {
					rt.HandlePacket(mbtest.PacketForFlow(f))
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	moveErrs := make([]error, pairs)
	var moves sync.WaitGroup
	for i := 0; i < pairs; i++ {
		moves.Add(1)
		go func(i int) {
			defer moves.Done()
			moveErrs[i] = cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
		}(i)
	}
	moves.Wait()
	traffic.Wait()
	for i, err := range moveErrs {
		if err != nil {
			t.Fatalf("move %d after flap storm: %v", i, err)
		}
	}
	for name, rt := range rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
	if !cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete after flap storm")
	}
	for name, rt := range rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
	for i := 0; i < pairs; i++ {
		for f := 0; f < flows; f++ {
			k := mbtest.FlowN(f)
			if got := srcs[i].Count(k) + dsts[i].Count(k); got != rounds+1 {
				t.Fatalf("pair %d flow %d: combined count %d, want %d", i, f, got, rounds+1)
			}
		}
	}
	assertRoutersQuiescent(t, cl)

	for _, rt := range rts {
		rt.Close()
	}
	cl.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+10 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPAsymmetricPartition is the PR 6 asymmetric-partition scenario over
// real TCP: the middlebox→controller direction goes dark while the reverse
// stays up; heartbeats must detect it, reconnect attempts must be cut off
// by HelloTimeout while the partition stands, and the middlebox must
// re-register on its own once it heals.
func TestTCPAsymmetricPartition(t *testing.T) {
	ft := faults.New(sbi.TCPTransport{}, faults.Options{})
	c := NewController(Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   3,
		HelloTimeout:      100 * time.Millisecond,
	})
	if err := c.Serve(ft, "127.0.0.1:0"); err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer c.Close()

	rt := mbox.New("mb", mbtest.NewCounterLogic(4), mbox.Options{
		Reconnect:    true,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	defer rt.Close()
	if err := rt.Connect(ft, c.Addr()); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForMB("mb", 5*time.Second); err != nil {
		t.Fatal(err)
	}

	ft.SetPartition(true, false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.mb("mb"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("partitioned connection never declared dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Metrics().HeartbeatDeaths; got == 0 {
		t.Fatal("partition was not detected by heartbeat")
	}

	time.Sleep(300 * time.Millisecond)
	if _, err := c.mb("mb"); err == nil {
		t.Fatal("middlebox registered through a standing partition")
	}

	ft.SetPartition(false, false)
	if err := c.WaitForMB("mb", 10*time.Second); err != nil {
		t.Fatalf("middlebox never re-registered after the partition healed: %v", err)
	}
	if got := rt.Metrics().Reconnects; got == 0 {
		t.Fatal("runtime reports no reconnects")
	}
}
