package core

import (
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// txn tracks one move/clone/merge transaction. Per-flow routing state
// (outstanding puts and buffered events per key) lives in the controller's
// sharded router; the txn itself holds only what is inherently per
// transaction — the endpoints, the activity clock the completer watches,
// the list of keys it registered (so detach touches exactly the shards it
// used), and the shared-state transfer bookkeeping.
type txn struct {
	ctrl *Controller
	src  *mbConn
	dst  *mbConn

	// id is the cluster-wide transaction ID the registry assigned (wire-
	// visible: exported handoffs carry it in sbi.Handoff.Txns). Immutable
	// after newTxn.
	id uint64

	// aborted is set by the registry when this transaction's coordinating
	// replica is declared failed. Only the per-flow move data phase acts on
	// it (see txnRegistry.abortController for why completions and shared
	// transfers deliberately ignore it).
	aborted atomic.Bool

	// lastEvent is the unix-nano time the source last raised an event for
	// this transaction; the completer reads it to detect quiescence.
	lastEvent atomic.Int64

	mu sync.Mutex
	// keys are the flow keys registered with the router, for detach.
	keys []packet.FlowKey
	// stale holds put counts and buffered events for keys this
	// transaction lost to a newer one (overlapping moves); its remaining
	// ACKs release them toward its own destination.
	stale map[packet.FlowKey]*staleKey
	// sharedPending counts unacknowledged shared puts; sharedBuffered
	// holds shared-state events meanwhile, and sharedFlushing marks an
	// ordered drain in progress (see keyState.flushing).
	sharedPending  int
	sharedBuffered []*sbi.Event
	sharedFlushing bool
	detached       bool
}

// staleKey is the outstanding state for a key whose routing entry a newer
// transaction took over.
type staleKey struct {
	pending  int
	buffered []*sbi.Event
}

func newTxn(c *Controller, src, dst *mbConn) *txn {
	t := &txn{ctrl: c, src: src, dst: dst}
	t.touch()
	c.registry.add(t)
	src.liveTxns.Add(1)
	return t
}

// touch records source activity, pushing quiescence out.
func (t *txn) touch() { t.lastEvent.Store(time.Now().UnixNano()) }

// quietSince reports whether no events have arrived for d AND the source
// connection's event pipeline is drained. The second condition is
// load-bearing with the decoupled event router: events the read loop has
// accepted but the router has not yet routed have not touched the quiet
// clock, and completing past them would clear source marks early and
// orphan their replays.
// The pipeline check runs FIRST: if it reads empty at some instant, every
// routed event's touch happened before that instant and is visible to the
// lastEvent read that follows. The reverse order races a router draining
// its backlog between the two loads — a stale-then-fresh interleaving that
// reports quiet right after a burst.
func (t *txn) quietSince(d time.Duration) bool {
	return t.src.eventsInFlight() == 0 && time.Now().UnixNano()-t.lastEvent.Load() >= int64(d)
}

// quietAt returns the earliest unix-nano instant the transaction can
// complete if no further events arrive.
func (t *txn) quietAt(d time.Duration) int64 { return t.lastEvent.Load() + int64(d) }

// registerChunk attaches the txn to the router for key and adopts any
// orphaned events that raced ahead of the chunk. Called from the source's
// read loop, before the chunk is delivered to the move consumer, so event
// routing can never miss the registration.
//
// Routing state lives with whichever cluster replica currently owns the
// source connection (not necessarily t.ctrl, the replica that started the
// transaction): the handoff read-lock pins the owner for the duration of
// the router call, so a concurrent ownership transfer either sees this
// registration in the state it exports or happens entirely after it.
func (t *txn) registerChunk(key packet.FlowKey) {
	t.src.routingLock()
	t.src.controller().router.register(t, key)
	t.src.routingUnlock()
}

// ackPut marks one put for key acknowledged; see txnRouter.ackPut. Owner
// resolution follows registerChunk.
func (t *txn) ackPut(key packet.FlowKey) {
	t.src.routingLock()
	t.src.controller().router.ackPut(t, key)
	t.src.routingUnlock()
}

// noteKey remembers a registered key for detach.
func (t *txn) noteKey(key packet.FlowKey) {
	t.mu.Lock()
	t.keys = append(t.keys, key)
	t.mu.Unlock()
}

// takeKeys returns and clears the registered-key list.
func (t *txn) takeKeys() []packet.FlowKey {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := t.keys
	t.keys = nil
	return keys
}

// adoptStale takes over the outstanding put count and buffered events of a
// routing entry this transaction just lost to a newer one. Called with the
// key's shard lock held (lock order is always shard -> txn, never the
// reverse); ks belongs to the caller after this returns. If nothing remains
// outstanding, the buffer is returned for the caller to forward once the
// shard lock is released.
func (t *txn) adoptStale(key packet.FlowKey, ks *keyState) []*sbi.Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.stale[key]
	if s == nil {
		s = &staleKey{}
		if t.stale == nil {
			t.stale = map[packet.FlowKey]*staleKey{}
		}
		t.stale[key] = s
	}
	s.pending += ks.pending
	ks.pending = 0
	if ks.flushing {
		// An ordered drain is mid-flight on this key (it re-reads
		// ks.buffered under the shard lock per batch). Nothing here
		// may forward concurrently with it.
		if s.pending > 0 {
			// Puts went outstanding again mid-drain (the old owner
			// re-registered the key): the buffered events must wait
			// for those ACKs, so take the buffer away from the
			// drain — it exits on its next lock acquisition — and
			// let ackStale release it. Residual imprecision: if an
			// ACK lands while the drain's last batch is still in
			// flight, the stale flush can interleave with that
			// batch's tail; the seed had this window on every
			// flush, here it needs a double eviction race.
			s.buffered = append(s.buffered, ks.buffered...)
			ks.buffered = nil
			return nil
		}
		// Nothing outstanding: leave the buffer with the drain, which
		// delivers the remainder in order itself (prepending earlier
		// stale leftovers so they go out first).
		if len(s.buffered) > 0 {
			ks.buffered = append(s.buffered, ks.buffered...)
		}
		delete(t.stale, key)
		return nil
	}
	s.buffered = append(s.buffered, ks.buffered...)
	ks.buffered = nil
	if s.pending > 0 {
		return nil
	}
	due := s.buffered
	delete(t.stale, key)
	return due
}

// ackStale releases one stale put for key; the last one flushes the
// remaining buffer toward this transaction's destination.
func (t *txn) ackStale(key packet.FlowKey) {
	t.mu.Lock()
	s := t.stale[key]
	if s == nil {
		t.mu.Unlock()
		return
	}
	s.pending--
	var flush []*sbi.Event
	if s.pending <= 0 {
		flush = s.buffered
		delete(t.stale, key)
	}
	t.mu.Unlock()
	forwardEvents(t.ctrl, t.dst, flush)
}

// registerShared claims the source's shared state for this transaction and
// counts one more outstanding shared put. sharedTxn is a per-MB atomic
// pointer rather than router state: at most one clone/merge owns a source's
// shared state at a time.
func (t *txn) registerShared() {
	t.src.sharedTxn.Store(t)
	t.mu.Lock()
	t.sharedPending++
	t.mu.Unlock()
}

// ackSharedPut marks one shared put acknowledged; the last outstanding one
// drains buffered shared-state events in order (same flushing discipline as
// txnRouter.ackPut).
func (t *txn) ackSharedPut() {
	t.mu.Lock()
	t.sharedPending--
	if t.sharedPending > 0 || t.sharedFlushing || len(t.sharedBuffered) == 0 {
		t.mu.Unlock()
		return
	}
	t.sharedFlushing = true
	for t.sharedPending <= 0 && len(t.sharedBuffered) > 0 {
		flush := t.sharedBuffered
		t.sharedBuffered = nil
		t.mu.Unlock()
		forwardEvents(t.ctrl, t.dst, flush)
		t.mu.Lock()
	}
	t.sharedFlushing = false
	t.mu.Unlock()
}

// handleSharedEvent buffers one shared-state reprocess event while the
// shared put is outstanding (or a drain is in flight), and forwards it
// otherwise.
func (t *txn) handleSharedEvent(ev *sbi.Event) {
	t.touch()
	t.mu.Lock()
	if t.sharedPending > 0 || len(t.sharedBuffered) > 0 || t.sharedFlushing {
		t.sharedBuffered = append(t.sharedBuffered, ev)
		t.ctrl.eventsBuffered.Add(1)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	forwardEvents(t.ctrl, t.dst, []*sbi.Event{ev})
}

// detach removes the txn from the routing tables of the replica that
// currently owns the source connection (handoffs move all of a source's
// entries together, so one router holds them all). Idempotent.
func (t *txn) detach() {
	t.mu.Lock()
	if t.detached {
		t.mu.Unlock()
		return
	}
	t.detached = true
	t.mu.Unlock()
	t.ctrl.registry.remove(t)
	t.src.routingLock()
	t.src.controller().router.detach(t)
	t.src.routingUnlock()
}
