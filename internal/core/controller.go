// Package core implements the OpenMB middlebox controller — the paper's
// primary contribution. The controller sits between control applications and
// middleboxes: it exposes the northbound control API of §5 (readConfig,
// writeConfig, stats, moveInternal, cloneSupport, mergeInternal) and brokers
// each call into southbound operations per Figure 5, handling the details
// applications must not see:
//
//   - streaming gets from the source MB and pipelined puts to the
//     destination, with per-put acknowledgment tracking;
//   - buffering reprocess events until the put for the state they apply to
//     has been acknowledged, then forwarding them in order;
//   - detecting event quiescence (no events for a quiet period) and then
//     completing the transaction: deleting moved state at the source, or
//     clearing transaction marks for clones and merges.
//
// This centralization is a deliberate design choice (§5): middleboxes never
// talk to each other, need no peer-communication logic, and the sequencing/
// failure handling is implemented once.
package core

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Options tunes controller behaviour.
type Options struct {
	// QuietPeriod is how long the controller waits without events from a
	// transaction's source MB before assuming the routing change has
	// taken effect and completing the transaction (paper default: 5 s;
	// tests and benchmarks use shorter values).
	QuietPeriod time.Duration
	// Compress requests flate compression of state transfers (§8.3).
	Compress bool
	// CallTimeout bounds individual southbound calls (default 30 s).
	CallTimeout time.Duration
	// BatchSize is how many state chunks the controller asks middleboxes
	// to pack per MsgChunk frame during moves, and how many it forwards
	// per put. 0 and 1 mean one chunk per frame (the paper's framing).
	BatchSize int
	// Shards is the number of transaction-router shards event routing,
	// chunk registration, and put acknowledgment are partitioned over,
	// rounded up to a power of two. 0 (or a negative value) selects a
	// default derived from GOMAXPROCS (minimum 2, so the concurrent
	// lifecycle is the default even on single-core hosts). Shards = 1 is
	// the serialized ablation:
	// it restores the seed's transaction path — one global routing lock,
	// one sleep-poll completion goroutine per transaction, and one
	// goroutine per put frame — so the sharded fast path can be measured
	// against it (eval's Figure 10(b) sweep does exactly that).
	Shards int
	// PutWorkers bounds how many puts one MoveInternal keeps in flight
	// (default 64 — deep enough to hide the put ACK round trip, measured
	// on the Figure 10(b) sweep, while bounding memory). The seed spawned
	// one goroutine per received frame, so a large move under concurrency
	// held thousands of blocked goroutines, their per-call channels, and
	// their pinned frames.
	PutWorkers int
	// HeartbeatInterval enables liveness probing of connected middleboxes:
	// a connection quiet for one interval is sent an OpPing, and one quiet
	// for HeartbeatMisses consecutive intervals is declared dead (its
	// connection is closed, which drives the normal disconnect cleanup —
	// failAll, routing purge, deregistration). 0 (the default) disables
	// heartbeats; any frame received on the connection counts as liveness,
	// so a busy middlebox is never pinged at all.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many silent intervals kill a connection
	// (default 3).
	HeartbeatMisses int
	// HelloTimeout bounds how long an accepted connection may take to
	// deliver its hello (default 10 s). A peer that connects and stalls —
	// a truncated hello, a half-open socket — is closed instead of pinning
	// its accept goroutine forever.
	HelloTimeout time.Duration
}

// maxShards caps the router shard count; beyond this, shard maps cost more
// than the contention they avoid.
const maxShards = 4096

func (o *Options) setDefaults() {
	if o.QuietPeriod == 0 {
		o.QuietPeriod = 5 * time.Second
	}
	if o.CallTimeout == 0 {
		o.CallTimeout = 30 * time.Second
	}
	if o.BatchSize < 1 {
		o.BatchSize = 1
	}
	if o.Shards <= 0 {
		// 0 and nonsense negatives both select the automatic default;
		// only an explicit 1 may degrade to the serialized ablation.
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards < 2 {
			o.Shards = 2
		}
	}
	if o.Shards > maxShards {
		o.Shards = maxShards
	}
	o.Shards = ceilPow2(o.Shards)
	if o.PutWorkers < 1 {
		o.PutWorkers = 64
	}
	if o.HeartbeatMisses < 1 {
		o.HeartbeatMisses = 3
	}
	if o.HelloTimeout == 0 {
		o.HelloTimeout = 10 * time.Second
	}
}

// ceilPow2 rounds n up to the next power of two.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Controller is the OpenMB middlebox controller.
type Controller struct {
	opts     Options
	listener net.Listener

	// router shards transaction routing state (see router.go); completer
	// finishes quiescent transactions (see completer.go).
	router    *txnRouter
	completer *completer

	// registry tracks live transactions under cluster-wide IDs; a Cluster
	// replaces it with one shared across replicas (before any txn exists).
	registry *txnRegistry

	// failed marks a cluster replica declared dead by FailReplica. New
	// northbound transactions refuse to start here (ErrReplicaFailed);
	// everything already migrated runs on the survivors.
	failed atomic.Bool

	mu  sync.Mutex
	mbs map[string]*mbConn

	// flusher is the cross-connection flush scheduler: southbound frames
	// (requests, pings, reprocess forwards) encode deferred and one
	// goroutine flushes every dirty connection per pass. See flusher.go.
	flusher *connFlusher

	// waiters blocks WaitForMB callers per name. It rides its own small
	// lock rather than mu: a registration storm (many MBs connecting,
	// many callers waiting) otherwise serializes waiter churn against
	// every connection-table access. The no-lost-wakeup protocol is
	// strictly ordered: WaitForMB inserts its waiter under waitMu and
	// only then checks mbs; registration inserts into mbs and only then
	// drains waiters — whichever runs second sees the other's write.
	waitMu  sync.Mutex
	waiters map[string][]chan struct{}

	introMu   sync.Mutex
	introSubs []func(mb string, ev *sbi.Event)

	// clustered marks this controller as a replica of a multi-replica
	// Cluster (set once, before Serve). Connections owned by a lone
	// controller — or a replicas=1 cluster — can never be handed off, so
	// their routing paths skip the handoff freeze lock entirely and run
	// the exact pre-cluster fast path.
	clustered bool

	txnWG sync.WaitGroup

	closed atomic.Bool

	// Metrics.
	movesStarted    atomic.Uint64
	eventsForwarded atomic.Uint64
	eventsBuffered  atomic.Uint64
	chunksMoved     atomic.Uint64
	bytesMoved      atomic.Uint64
	pingsSent       atomic.Uint64
	pongsRecv       atomic.Uint64
	heartbeatDeaths atomic.Uint64

	// Operation-window latency histograms (zero-alloc record path; see
	// internal/obs): the whole move window (freeze -> transfer -> switch,
	// i.e. moveConns start to last put ACK), each southbound get stream,
	// and each put-ACK round trip.
	histMove obs.Histogram
	histGet  obs.Histogram
	histPut  obs.Histogram
}

// NewController creates a controller with the given options.
func NewController(opts Options) *Controller {
	opts.setDefaults()
	c := &Controller{opts: opts, mbs: map[string]*mbConn{}, waiters: map[string][]chan struct{}{}}
	c.flusher = newConnFlusher()
	c.router = newTxnRouter(opts.Shards)
	c.completer = newCompleter(c)
	c.registry = newTxnRegistry()
	return c
}

// Shards reports the resolved router shard count (after defaulting and
// power-of-two rounding); 1 means the serialized ablation path.
func (c *Controller) Shards() int { return c.opts.Shards }

// serialized reports whether the controller runs the seed's serialized
// transaction path (the shards=1 ablation).
func (c *Controller) serialized() bool { return c.opts.Shards == 1 }

// finishAfterQuiet arranges for fn to run once t's source has been quiet for
// the configured period. The sharded path queues it on the completer; the
// shards=1 ablation reproduces the seed's per-transaction sleep-poll
// goroutine.
func (c *Controller) finishAfterQuiet(t *txn, fn func()) {
	c.txnWG.Add(1)
	if c.serialized() {
		go func() {
			defer c.txnWG.Done()
			for !t.quietSince(c.opts.QuietPeriod) {
				time.Sleep(c.opts.QuietPeriod / 5)
			}
			fn()
		}()
		return
	}
	c.completer.schedule(t, func() {
		defer c.txnWG.Done()
		fn()
	})
}

// Serve starts accepting middlebox connections on addr over the given
// transport. It returns once the listener is ready; accepting continues in
// the background until Close.
func (c *Controller) Serve(tr sbi.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("core: listen %q: %w", addr, err)
	}
	c.mu.Lock()
	c.listener = l
	c.mu.Unlock()
	go c.acceptLoop(l)
	return nil
}

func (c *Controller) acceptLoop(l net.Listener) {
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		go c.handleConn(sbi.NewConn(raw))
	}
}

func (c *Controller) handleConn(conn *sbi.Conn) {
	// Bound the hello wait: a peer that connects and then stalls (or sends
	// a truncated hello) must time out, not pin this goroutine forever.
	_ = conn.SetReadDeadline(time.Now().Add(c.opts.HelloTimeout))
	hello, err := conn.Receive()
	if err != nil || hello.Type != sbi.MsgHello || hello.Name == "" {
		conn.Close()
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	c.serveMB(conn, hello)
}

// serveMB upgrades the connection to the hello's codec, registers the
// middlebox, and runs its read loop until disconnect. The single-controller
// accept path calls it after receiving the hello itself; a Cluster receives
// the hello in its own accept loop (to consult the directory) and hands the
// connection to the owning replica here.
func (c *Controller) serveMB(conn *sbi.Conn, hello *sbi.Message) {
	// The hello (always JSON) may announce a faster codec for everything
	// after it; the controller's side of the connection follows suit.
	if err := conn.Upgrade(hello.Codec); err != nil {
		_ = conn.Send(&sbi.Message{Type: sbi.MsgError, Error: err.Error()})
		conn.Close()
		return
	}
	mb := newMBConn(hello.Name, hello.Kind, conn, c)
	// The hello's Batch announces the largest events[] batch the middlebox
	// is willing to receive per reprocess frame (0/1: the per-event framing
	// peers that predate event batching expect).
	mb.eventBatch = hello.Batch
	if !c.register(mb) {
		conn.Close()
		return
	}
	mb.eventWG.Add(1)
	go mb.eventRouter()
	if c.opts.HeartbeatInterval > 0 {
		mb.pingWG.Add(1)
		go mb.heartbeat(c)
	}
	err := mb.readLoop()
	close(mb.pingStop)
	mb.pingWG.Wait()
	// The MB disconnected: drain the event router (queued events route
	// against whatever transactions remain — the purge below cleans up),
	// fail outstanding calls with the reason, drop the routing state, and
	// deregister — from whichever replica owns it now. The handoff
	// read-lock serializes this cleanup against a concurrent ownership
	// transfer, so the purge and the deregistration hit the same
	// controller and a transfer can never resurrect state for a
	// connection that is already gone.
	close(mb.eventQ)
	mb.eventWG.Wait()
	mb.failAll(fmt.Errorf("middlebox disconnected: %w", err))
	mb.routingLock()
	cur := mb.controller()
	cur.router.purgeMB(mb)
	cur.mu.Lock()
	if cur.mbs[mb.name] == mb {
		delete(cur.mbs, mb.name)
	}
	cur.mu.Unlock()
	mb.routingUnlock()
}

// register adds mb to the connection table and wakes its name's waiters;
// it reports false on a duplicate name.
func (c *Controller) register(mb *mbConn) bool {
	c.mu.Lock()
	if _, dup := c.mbs[mb.name]; dup {
		c.mu.Unlock()
		return false
	}
	c.mbs[mb.name] = mb
	c.mu.Unlock()
	c.wakeWaiters(mb.name)
	return true
}

// wakeWaiters releases every WaitForMB call blocked on name. Called after
// the mbs insert, per the waiter-ordering protocol (see the waiters field).
func (c *Controller) wakeWaiters(name string) {
	c.waitMu.Lock()
	waiters := c.waiters[name]
	delete(c.waiters, name)
	c.waitMu.Unlock()
	for _, w := range waiters {
		close(w)
	}
}

// Addr returns the listener's address (useful with ":0" listens), or ""
// before Serve.
func (c *Controller) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.listener == nil {
		return ""
	}
	return c.listener.Addr().String()
}

// WaitForMB blocks until a middlebox named name has registered, or the
// timeout elapses. Waiters are keyed by name, so a registration wakes only
// the callers waiting for that middlebox.
func (c *Controller) WaitForMB(name string, timeout time.Duration) error {
	// Fast path: already registered — no waiter-registry traffic. (The
	// Cluster polls this in short slices, so the common case must stay
	// allocation-free.)
	c.mu.Lock()
	_, ok := c.mbs[name]
	c.mu.Unlock()
	if ok {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		// Insert the waiter BEFORE re-checking the table: if the MB
		// registers between the check and the wait, its wake drains the
		// already-inserted waiter (registration inserts into mbs first,
		// then wakes — the mirrored order).
		w := make(chan struct{})
		c.waitMu.Lock()
		c.waiters[name] = append(c.waiters[name], w)
		c.waitMu.Unlock()
		c.mu.Lock()
		_, ok := c.mbs[name]
		c.mu.Unlock()
		if ok {
			c.dropWaiter(name, w)
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			c.dropWaiter(name, w)
			return fmt.Errorf("core: middlebox %q did not register", name)
		}
		select {
		case <-w:
			// Woken by a registration of this name; loop re-checks (the
			// MB may already have disconnected again).
		case <-time.After(remain):
			c.dropWaiter(name, w)
			return fmt.Errorf("core: middlebox %q did not register", name)
		}
	}
}

// dropWaiter removes one waiter channel without waking it, so abandoned
// waits (timeouts, immediate hits) do not accumulate under the name.
func (c *Controller) dropWaiter(name string, w chan struct{}) {
	c.waitMu.Lock()
	defer c.waitMu.Unlock()
	ws := c.waiters[name]
	for i := range ws {
		if ws[i] == w {
			ws[i] = ws[len(ws)-1]
			c.waiters[name] = ws[:len(ws)-1]
			break
		}
	}
	if len(c.waiters[name]) == 0 {
		delete(c.waiters, name)
	}
}

// Middleboxes returns the names of registered middleboxes.
func (c *Controller) Middleboxes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.mbs))
	for n := range c.mbs {
		names = append(names, n)
	}
	return names
}

func (c *Controller) mb(name string) (*mbConn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mb, ok := c.mbs[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown middlebox %q", name)
	}
	return mb, nil
}

// SubscribeIntrospection registers fn to receive introspection events from
// all middleboxes. Enable generation per-MB with SetEventFilter.
func (c *Controller) SubscribeIntrospection(fn func(mb string, ev *sbi.Event)) {
	c.introMu.Lock()
	defer c.introMu.Unlock()
	c.introSubs = append(c.introSubs, fn)
}

// SetEventFilter enables or disables introspection events on a middlebox
// for an event-code prefix and flow match (§4.2.2).
func (c *Controller) SetEventFilter(mbName, codePrefix string, m packet.FieldMatch, enable bool) error {
	return c.SetEventFilterFor(mbName, codePrefix, m, enable, 0)
}

// SetEventFilterFor is SetEventFilter with a bounded lifetime: the filter
// expires after ttl (0 means no expiry). This is §4.2.2's overload
// protection — "receive all events only for a limited period of time".
func (c *Controller) SetEventFilterFor(mbName, codePrefix string, m packet.FieldMatch, enable bool, ttl time.Duration) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.setEventFilterConn(mb, codePrefix, m, enable, ttl)
}

func (c *Controller) setEventFilterConn(mb *mbConn, codePrefix string, m packet.FieldMatch, enable bool, ttl time.Duration) error {
	_, err := mb.call(&sbi.Message{
		Type: sbi.MsgRequest, Op: sbi.OpSetEventFilter,
		Path: codePrefix, Match: m, Enable: enable, TTLNanos: int64(ttl),
	}, c.opts.CallTimeout)
	return err
}

// WaitTxns blocks until all in-flight transactions (including their
// quiet-period completions) have finished, or the timeout elapses. Intended
// for tests and benchmarks that need deterministic completion.
func (c *Controller) WaitTxns(timeout time.Duration) bool {
	done := make(chan struct{})
	go func() {
		c.txnWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		return false
	}
}

// Metrics is a snapshot of controller counters.
type Metrics struct {
	MovesStarted    uint64
	EventsForwarded uint64
	EventsBuffered  uint64
	ChunksMoved     uint64
	BytesMoved      uint64
	// PingsSent counts liveness probes issued; PongsReceived the done
	// frames that came back marked Op=pong (pre-pong peers answer with
	// unmarked frames, which prove life but are not counted here);
	// HeartbeatDeaths counts connections closed for exceeding the miss
	// threshold.
	PingsSent       uint64
	PongsReceived   uint64
	HeartbeatDeaths uint64
}

// Metrics returns a snapshot of the controller's counters.
func (c *Controller) Metrics() Metrics {
	return Metrics{
		MovesStarted:    c.movesStarted.Load(),
		EventsForwarded: c.eventsForwarded.Load(),
		EventsBuffered:  c.eventsBuffered.Load(),
		ChunksMoved:     c.chunksMoved.Load(),
		BytesMoved:      c.bytesMoved.Load(),
		PingsSent:       c.pingsSent.Load(),
		PongsReceived:   c.pongsRecv.Load(),
		HeartbeatDeaths: c.heartbeatDeaths.Load(),
	}
}

// ConnCounters returns each registered middlebox connection's wire counters
// (frames sent/received, flushes), keyed by middlebox name. Each entry is a
// per-connection atomic snapshot; entries are taken one after another, so a
// consumer must not correlate counters ACROSS connections from one call —
// the elastic placement loop scores each connection against its own
// previous sample, which is why per-entry coherence suffices.
func (c *Controller) ConnCounters() map[string]sbi.Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]sbi.Counters, len(c.mbs))
	for name, mb := range c.mbs {
		out[name] = mb.conn.Counters()
	}
	return out
}

// OpLatencies returns snapshots of the controller's operation-window
// histograms: the move window, southbound get streams, and put-ACK round
// trips. Eval reports and tests read percentiles from these.
func (c *Controller) OpLatencies() (move, get, put obs.HistogramSnapshot) {
	return c.histMove.Snapshot(), c.histGet.Snapshot(), c.histPut.Snapshot()
}

// Collect implements obs.Collector: controller counters, the three
// operation-window histograms, and per-connection wire counters.
func (c *Controller) Collect(e *obs.Emitter) { c.collect(e) }

// collect emits the controller's series with extra label pairs appended
// (Cluster.Collect uses this to tag each replica).
func (c *Controller) collect(e *obs.Emitter, labels ...string) {
	m := c.Metrics()
	e.Counter("openmb_moves_started_total", "State-move transactions started.", m.MovesStarted, labels...)
	e.Counter("openmb_events_forwarded_total", "Reprocess events forwarded to move destinations.", m.EventsForwarded, labels...)
	e.Counter("openmb_events_buffered_total", "Reprocess events buffered awaiting a put ACK.", m.EventsBuffered, labels...)
	e.Counter("openmb_state_chunks_moved_total", "State chunks transferred between middleboxes.", m.ChunksMoved, labels...)
	e.Counter("openmb_state_bytes_moved_total", "State bytes transferred between middleboxes.", m.BytesMoved, labels...)
	e.Counter("openmb_heartbeat_pings_sent_total", "Liveness probes sent on idle connections.", m.PingsSent, labels...)
	e.Counter("openmb_heartbeat_pongs_received_total", "Pong-marked done frames received.", m.PongsReceived, labels...)
	e.Counter("openmb_heartbeat_deaths_total", "Connections closed for missing the heartbeat deadline.", m.HeartbeatDeaths, labels...)
	e.Histogram("openmb_move_duration_seconds", "Move window: freeze through transfer to last put ACK.", &c.histMove, labels...)
	e.Histogram("openmb_get_duration_seconds", "Southbound get stream duration (first request to done).", &c.histGet, labels...)
	e.Histogram("openmb_put_ack_duration_seconds", "Put round trip: request to installation ACK.", &c.histPut, labels...)

	c.mu.Lock()
	type connRow struct {
		name string
		wc   sbi.Counters
	}
	rows := make([]connRow, 0, len(c.mbs))
	for name, mb := range c.mbs {
		rows = append(rows, connRow{name, mb.conn.Counters()})
	}
	c.mu.Unlock()
	e.Gauge("openmb_mbs_registered", "Middlebox connections currently registered.", float64(len(rows)), labels...)
	for _, r := range rows {
		lbl := append(append([]string(nil), labels...), "conn", r.name, "side", "controller")
		e.Counter("openmb_conn_sent_frames_total", "SBI frames sent on the southbound connection.", r.wc.Sent, lbl...)
		e.Counter("openmb_conn_received_frames_total", "SBI frames received on the southbound connection.", r.wc.Received, lbl...)
		e.Counter("openmb_conn_flushes_total", "Transport flushes on the southbound connection.", r.wc.Flushes, lbl...)
	}
}

// Close stops the accept loop and disconnects all middleboxes.
func (c *Controller) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	c.mu.Lock()
	l := c.listener
	mbs := make([]*mbConn, 0, len(c.mbs))
	for _, mb := range c.mbs {
		mbs = append(mbs, mb)
	}
	c.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, mb := range mbs {
		mb.conn.Close()
	}
	// The flush scheduler stops after the connections close: its final
	// pass drains whatever was marked dirty (flushes on closed conns fail
	// harmlessly), and later senders fall back to inline flushes.
	c.flusher.close()
	// Stop the completer last: pending completions dispatch immediately
	// and their southbound calls fail fast on the closed connections.
	c.completer.close()
}

// mbConn is the controller's view of one connected middlebox. The paper's
// prototype dedicates one thread per MB to operations and one to events;
// here a single reader goroutine dispatches responses to per-call channels
// and events to the sharded transaction router. Per-flow routing state lives
// in the controller's router (see router.go); the connection itself keeps
// only the shared-state owner and a live-transaction count.
type mbConn struct {
	name string
	kind string
	conn *sbi.Conn
	// eventBatch is the largest events[] batch this middlebox accepts per
	// reprocess frame, from its hello announcement (immutable after
	// registration); <= 1 keeps the per-event framing.
	eventBatch int

	// ctrl is the controller (cluster replica) that currently owns this
	// connection's routing state. A handoff retargets it; everything that
	// routes through the owner resolves it via controller() under
	// handoffMu, so a single-replica deployment pays one atomic load and
	// one uncontended read-lock on the event path.
	ctrl atomic.Pointer[Controller]

	// handoffMu freezes the connection's flowspace during an ownership
	// transfer. Every router access on behalf of this MB — event routing,
	// chunk registration, put ACKs, detach, disconnect purge — holds it
	// for read (via routingLock); Cluster handoff holds it for write while
	// it moves the routing state between replicas and swaps ctrl. Events
	// arriving during the freeze block in order on the connection's read
	// loop (the replica-scope analogue of a move's buffer-until-ACK
	// window) and drain against the new owner the moment the transfer
	// completes.
	handoffMu sync.RWMutex
	// noHandoff (immutable after construction) marks connections owned by
	// an un-clustered controller: no handoff can ever target them, so the
	// routing paths skip handoffMu.
	noHandoff bool

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*call
	// chanFree recycles reply channels for this connection's calls; see
	// getCallChanLocked.
	chanFree []chan *sbi.Message

	// eventQ hands MsgEvent frames from the read loop to the connection's
	// event-router goroutine (see eventRouter). Routing off the read loop
	// keeps chunk streams and ACKs flowing at wire speed while an event
	// burst is being routed — with the coalesced wire path a source can
	// legitimately have thousands of events in flight, and routing them
	// inline would head-of-line-block the move pipeline behind them
	// (stretching the move window, which raises yet more events). The
	// queue is bounded: a router that falls behind backpressures the read
	// loop, exactly the seed's inline-routing throttle, just with slack.
	eventQ  chan *sbi.Message
	eventWG sync.WaitGroup
	// eventsRecv counts events the read loop has accepted off the wire;
	// eventsRouted counts events the router has finished routing. Their
	// difference is the connection's in-flight event pipeline, and
	// transaction quiescence requires it to be empty: with routing
	// decoupled from receiving, "no events for a quiet period" must mean
	// no events *anywhere*, or a descheduled router would let the
	// completer end a transaction whose count-bearing events are still
	// queued (clearing source marks early and orphaning the replays).
	// The seed coupled receipt to routing, so its quiet clock saw events
	// the moment they left the wire; these counters restore that meaning.
	eventsRecv   atomic.Uint64
	eventsRouted atomic.Uint64

	// lastRecv is the unix-nano time of the last frame received on this
	// connection — any frame: data, ACKs, events, and ping replies all
	// prove liveness, so heartbeats only probe genuinely idle links.
	lastRecv atomic.Int64
	// pingStop ends the heartbeat goroutine when the read loop exits;
	// pingWG lets serveMB join it before tearing the connection down.
	pingStop chan struct{}
	pingWG   sync.WaitGroup

	// sharedTxn is the transaction that currently owns this MB's shared
	// state: at most one clone/merge per source runs at a time.
	sharedTxn atomic.Pointer[txn]
	// liveTxns counts transactions with this MB as their source; when it
	// drops to zero the router discards the MB's orphaned events.
	liveTxns atomic.Int64
}

// eventQueueDepth bounds frames queued between a connection's read loop
// and its event router. Deep enough to absorb a coalescing window's burst
// (a few full frames), shallow enough that a routing backlog promptly
// backpressures the source — the depth is also the worst-case
// head-of-line wait for a chunk frame arriving behind queued events (the
// read loop blocks on admission when the queue is full), so a deep queue
// lets a saturating event firehose stretch a concurrent get stream from
// seconds into minutes.
const eventQueueDepth = 32

// newMBConn builds the controller's view of one middlebox connection, owned
// by c until a handoff moves it.
func newMBConn(name, kind string, conn *sbi.Conn, c *Controller) *mbConn {
	mb := &mbConn{
		name: name, kind: kind, conn: conn,
		pending:   map[uint64]*call{},
		eventQ:    make(chan *sbi.Message, eventQueueDepth),
		pingStop:  make(chan struct{}),
		noHandoff: !c.clustered,
	}
	mb.lastRecv.Store(time.Now().UnixNano())
	mb.ctrl.Store(c)
	return mb
}

// heartbeat probes this connection's liveness on behalf of the controller
// that registered it (which keeps the options and counters stable if a
// cluster handoff later moves the connection's routing state elsewhere).
// Each tick it measures how long the link has been silent: past one
// interval it sends an OpPing — fire-and-forget, from a short-lived
// goroutine so a peer that has stopped reading (blocking our write) cannot
// wedge the liveness clock — and past HeartbeatMisses intervals it closes
// the connection, which unblocks any stuck ping write and drives the normal
// disconnect cleanup in serveMB. The pong is a done frame marked Op=pong
// (counted in pongsRecv), but the prober does not require the marker: a
// plain done from a pre-pong middlebox, or an unknown-op error from a
// pre-heartbeat peer, is equally alive. Either way the read loop stamps
// lastRecv, so the probe needs no completion tracking.
func (mb *mbConn) heartbeat(c *Controller) {
	defer mb.pingWG.Done()
	interval := c.opts.HeartbeatInterval
	deadAfter := time.Duration(c.opts.HeartbeatMisses) * interval
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-mb.pingStop:
			return
		case <-ticker.C:
		}
		idle := time.Duration(time.Now().UnixNano() - mb.lastRecv.Load())
		if idle >= deadAfter {
			c.heartbeatDeaths.Add(1)
			mb.conn.Close()
			return
		}
		if idle >= interval {
			c.pingsSent.Add(1)
			// At most HeartbeatMisses-1 of these can pile up on a dead
			// peer before the close above releases them all.
			go func() {
				_ = mb.send(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpPing})
			}()
		}
	}
}

// eventRouter drains eventQ, routing each frame's events in arrival (seq)
// order. One goroutine per connection, so per-source FIFO ordering — the
// §4.2.1 buffer-until-ACK argument's foundation — is preserved exactly as
// if the read loop still routed inline. Forwarding from here cannot
// deadlock: reprocess forwards target middlebox runtimes, which consume
// their southbound stream unconditionally.
func (mb *mbConn) eventRouter() {
	defer mb.eventWG.Done()
	for m := range mb.eventQ {
		// EachEvent covers both wire forms (and their illegal-but-
		// decodable combination), matching the EventCount the read loop
		// charged into eventsRecv.
		m.EachEvent(mb.routeEvent)
		// Routed only after every event in the frame has touched its
		// transaction's quiet clock, so a quiescence check can never see
		// the pipeline empty while a touch is still pending.
		mb.eventsRouted.Add(uint64(m.EventCount()))
	}
}

// eventsInFlight reports how many received events are still queued for (or
// mid-) routing. Reading routed before recv keeps the result conservative:
// a racing arrival can only make the pipeline look busier, never empty.
func (mb *mbConn) eventsInFlight() uint64 {
	routed := mb.eventsRouted.Load()
	return mb.eventsRecv.Load() - routed
}

// drainEvents waits until every event frame received from this connection
// has been routed (bounded by timeout). Transaction completion uses it
// between the mark-clearing ack and the detach: the source guarantees all
// events it raised under the old marks are on the wire ahead of the ack,
// and the read loop has charged them into eventsRecv before delivering the
// ack — but routing happens on the connection's eventRouter goroutine, so
// without this wait the detach could still outrun the router and orphan
// the transaction's final events.
func (mb *mbConn) drainEvents(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for mb.eventsInFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
}

// controller returns the replica that currently owns this connection.
func (mb *mbConn) controller() *Controller { return mb.ctrl.Load() }

// routingLock/routingUnlock take the connection's handoff freeze lock for
// read around one router operation. Un-clustered connections skip it: their
// owner can never change, so the pre-cluster fast path stays intact.
func (mb *mbConn) routingLock() {
	if !mb.noHandoff {
		mb.handoffMu.RLock()
	}
}

func (mb *mbConn) routingUnlock() {
	if !mb.noHandoff {
		mb.handoffMu.RUnlock()
	}
}

// call is one outstanding request. Streaming responses (get chunks) are
// delivered through ch before the final done/error message. For gets that
// are part of a transaction, txn is set so the read loop can register
// streamed keys before any later event is dispatched. err records why the
// call was aborted; it is written before ch closes, so the channel close
// publishes it to the waiter.
type call struct {
	ch   chan *sbi.Message
	txn  *txn
	dead chan struct{}
	err  error

	// delivering serializes the read loop's delivery into ch against
	// dropCall's recycling of ch: dropCall takes it after closing dead, so
	// once it holds the lock no sender references the channel and it can
	// be drained and returned to the pool. dropped tells a sender that
	// grabbed the call just before it left pending to stand down.
	delivering sync.Mutex
	dropped    bool
}

// callChanCap is the reply-channel capacity: deep enough that a streamed
// get's chunks pipeline without the read loop blocking between frames.
const callChanCap = 256

// callChanPoolMax bounds how many idle channels one connection retains;
// the list naturally grows only to the connection's peak concurrent calls
// (the put pipeline depth plus a few).
const callChanPoolMax = 256

// getCallChanLocked pops a recycled reply channel (LIFO, which keeps reuse
// deterministic for the reuse-correctness tests) or allocates one. The free
// list is per connection and rides mb.mu — which newCall holds anyway — so
// recycling adds no cross-connection synchronization to the move path.
func (mb *mbConn) getCallChanLocked() chan *sbi.Message {
	if n := len(mb.chanFree); n > 0 {
		ch := mb.chanFree[n-1]
		mb.chanFree[n-1] = nil
		mb.chanFree = mb.chanFree[:n-1]
		return ch
	}
	return make(chan *sbi.Message, callChanCap)
}

// putCallChan returns a drained, never-closed channel to the free list.
func (mb *mbConn) putCallChan(ch chan *sbi.Message) {
	mb.mu.Lock()
	if len(mb.chanFree) < callChanPoolMax {
		mb.chanFree = append(mb.chanFree, ch)
	}
	mb.mu.Unlock()
}

func (mb *mbConn) newCall(t *txn) (uint64, *call) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.nextID++
	id := mb.nextID
	cl := &call{ch: mb.getCallChanLocked(), txn: t, dead: make(chan struct{})}
	mb.pending[id] = cl
	return id, cl
}

func (mb *mbConn) dropCall(id uint64) {
	mb.mu.Lock()
	cl := mb.pending[id]
	delete(mb.pending, id)
	mb.mu.Unlock()
	if cl == nil {
		// Taken over by failAll, which closed ch: a closed channel can
		// never be recycled, so it is simply dropped.
		return
	}
	close(cl.dead)
	// Barrier: a read-loop delivery that looked the call up before it left
	// pending may still hold ch. Closing dead above unblocks it; taking
	// delivering after it guarantees it has let go before the channel is
	// drained and recycled. Without this, a late reply could surface on a
	// recycled channel inside a different call.
	cl.delivering.Lock()
	cl.dropped = true
	cl.delivering.Unlock()
	for {
		select {
		case <-cl.ch:
		default:
			mb.putCallChan(cl.ch)
			return
		}
	}
}

// failAll aborts every outstanding call, recording err as the reason each
// waiter observes (the seed discarded it and callers saw only a generic
// "disconnected").
func (mb *mbConn) failAll(err error) {
	mb.mu.Lock()
	pend := mb.pending
	mb.pending = map[uint64]*call{}
	mb.mu.Unlock()
	for _, cl := range pend {
		cl.err = err
		close(cl.ch)
	}
}

// abortErr renders the error a waiter reports when its call channel closed:
// the recorded disconnect reason when there is one.
func (mb *mbConn) abortErr(cl *call, op sbi.Op) error {
	if cl.err != nil {
		return fmt.Errorf("core: %s %s: %w", mb.name, op, cl.err)
	}
	return fmt.Errorf("core: %s disconnected during %s", mb.name, op)
}

func (mb *mbConn) readLoop() error {
	for {
		m, err := mb.conn.Receive()
		if err != nil {
			return err
		}
		mb.lastRecv.Store(time.Now().UnixNano())
		switch m.Type {
		case sbi.MsgEvent:
			// Count the events in before queueing them (quiescence reads
			// recv before routed, so the pipeline can never look empty
			// with this frame in it), then hand the frame to the event
			// router; blocking when the router is eventQueueDepth frames
			// behind is the intended backpressure (the seed routed
			// inline, i.e. with no slack).
			mb.eventsRecv.Add(uint64(m.EventCount()))
			mb.eventQ <- m
		case sbi.MsgChunk, sbi.MsgDone, sbi.MsgError:
			if m.Op == sbi.OpPong {
				// Pong-marked heartbeat reply. Pings are fire-and-forget
				// (no request ID), so the pending lookup below finds
				// nothing and skips it — exactly what a pre-pong
				// controller did with the unmarked reply.
				mb.controller().pongsRecv.Add(1)
			}
			mb.mu.Lock()
			cl := mb.pending[m.ID]
			mb.mu.Unlock()
			if cl == nil {
				continue
			}
			cl.delivering.Lock()
			if !cl.dropped {
				if m.Type == sbi.MsgChunk && cl.txn != nil {
					// Register here, on the read loop, so an
					// event for any of these keys received later
					// on this connection always finds the
					// transaction.
					m.EachChunk(func(ch *state.Chunk) {
						cl.txn.registerChunk(ch.Key)
					})
				}
				// Blocking send: chunk streams may outpace the
				// consumer (the consumer issues a put per chunk),
				// and dropping a chunk would lose state. The dead
				// channel unblocks the loop if the consumer
				// abandoned the call.
				select {
				case cl.ch <- m:
				case <-cl.dead:
				}
			}
			cl.delivering.Unlock()
		}
	}
}

// send routes one southbound frame through the owning replica's flush
// scheduler: the frame encodes immediately (deferred) and the connection is
// flushed on the scheduler's next pass, so concurrent senders across all
// connections share flushes instead of each paying its own. With coalescing
// off the encode flushed inline and the scheduled pass is a no-op.
func (mb *mbConn) send(m *sbi.Message) error {
	return mb.controller().flusher.send(mb.conn, m)
}

// call sends a request and waits for its single done/error reply.
func (mb *mbConn) call(req *sbi.Message, timeout time.Duration) (*sbi.Message, error) {
	id, cl := mb.newCall(nil)
	defer mb.dropCall(id)
	req.ID = id
	if err := mb.send(req); err != nil {
		// Usually a dead connection, but the binary codec also rejects
		// unencodable frames here — keep the underlying error visible.
		return nil, fmt.Errorf("core: %s %s: send failed (middlebox disconnected?): %w", mb.name, req.Op, err)
	}
	select {
	case m, ok := <-cl.ch:
		if !ok {
			return nil, mb.abortErr(cl, req.Op)
		}
		if m.ID != id {
			// Recycled-channel invariant: dropCall's barrier makes a
			// foreign reply on this channel impossible; failing loudly
			// beats silently completing with another call's result.
			return nil, fmt.Errorf("core: %s %s: reply %d leaked into call %d", mb.name, req.Op, m.ID, id)
		}
		if m.Type == sbi.MsgError {
			return nil, fmt.Errorf("core: %s %s: %s", mb.name, req.Op, m.Error)
		}
		return m, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("core: %s %s timed out", mb.name, req.Op)
	}
}

// stream sends a get request and invokes onChunk for each streamed chunk
// until the final done (returning its Count) or an error. If t is non-nil,
// the read loop registers each chunk's key with t before delivery, so that
// events behind the chunk on the wire always find the transaction.
func (mb *mbConn) stream(t *txn, req *sbi.Message, timeout time.Duration, onChunk func(m *sbi.Message) error) (int, error) {
	id, cl := mb.newCall(t)
	defer mb.dropCall(id)
	req.ID = id
	if err := mb.send(req); err != nil {
		return 0, fmt.Errorf("core: %s %s: send failed (middlebox disconnected?): %w", mb.name, req.Op, err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case m, ok := <-cl.ch:
			if !ok {
				return 0, mb.abortErr(cl, req.Op)
			}
			if m.ID != id {
				return 0, fmt.Errorf("core: %s %s: reply %d leaked into call %d", mb.name, req.Op, m.ID, id)
			}
			switch m.Type {
			case sbi.MsgChunk:
				if err := onChunk(m); err != nil {
					return 0, err
				}
			case sbi.MsgDone:
				return m.Count, nil
			case sbi.MsgError:
				return 0, fmt.Errorf("core: %s %s: %s", mb.name, req.Op, m.Error)
			}
		case <-deadline.C:
			return 0, fmt.Errorf("core: %s %s timed out", mb.name, req.Op)
		}
	}
}
