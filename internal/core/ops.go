package core

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// ReadConfig implements the northbound readConfig(SrcMB, HierarchicalKey):
// it returns the configuration leaves under path ("*" or "" for all).
func (c *Controller) ReadConfig(mbName, path string) ([]state.Entry, error) {
	mb, err := c.mb(mbName)
	if err != nil {
		return nil, err
	}
	m, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpGetConfig, Path: path}, c.opts.CallTimeout)
	if err != nil {
		return nil, err
	}
	return m.Entries, nil
}

// WriteConfig implements writeConfig(DstMB, HierarchicalKey, values).
func (c *Controller) WriteConfig(mbName, path string, values []string) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	_, err = mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpSetConfig, Path: path, Values: values}, c.opts.CallTimeout)
	return err
}

// WriteConfigAll installs a full set of configuration entries on a
// middlebox: writeConfig(DstMB, "*", values), the configuration-cloning step
// of the control applications (§6).
func (c *Controller) WriteConfigAll(mbName string, entries []state.Entry) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	_, err = mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpSetConfig, Path: "*", Entries: entries}, c.opts.CallTimeout)
	return err
}

// DelConfig implements delConfig(DstMB, HierarchicalKey).
func (c *Controller) DelConfig(mbName, path string) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	_, err = mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelConfig, Path: path}, c.opts.CallTimeout)
	return err
}

// CloneConfig copies all configuration from one middlebox to another — the
// composition of readConfig and writeConfig the paper suggests (§5).
func (c *Controller) CloneConfig(srcMB, dstMB string) error {
	entries, err := c.ReadConfig(srcMB, "*")
	if err != nil {
		return err
	}
	return c.WriteConfigAll(dstMB, entries)
}

// Stats implements stats(SrcMB, HeaderFieldList): how much shared and
// per-flow supporting and reporting state exists for the given key.
func (c *Controller) Stats(mbName string, m packet.FieldMatch) (sbi.StatsReply, error) {
	mb, err := c.mb(mbName)
	if err != nil {
		return sbi.StatsReply{}, err
	}
	reply, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpStats, Match: m}, c.opts.CallTimeout)
	if err != nil {
		return sbi.StatsReply{}, err
	}
	if reply.Stats == nil {
		return sbi.StatsReply{}, fmt.Errorf("core: %s returned no stats", mbName)
	}
	return *reply.Stats, nil
}

// txn tracks one move/clone/merge transaction: which keys have outstanding
// puts, the events buffered against them, and when the source last raised an
// event (for quiet-period completion).
type txn struct {
	ctrl *Controller
	src  *mbConn
	dst  *mbConn

	mu sync.Mutex
	// pendingPuts counts unacknowledged puts per key.
	pendingPuts map[packet.FlowKey]int
	// buffered holds events per key until the key's puts are ACKed.
	buffered map[packet.FlowKey][]*sbi.Event
	// sharedPending counts unacknowledged shared puts; sharedBuffered
	// holds shared-state events meanwhile.
	sharedPending  int
	sharedBuffered []*sbi.Event
	lastEvent      time.Time
	sawEvent       bool
	ended          bool
}

func newTxn(c *Controller, src, dst *mbConn) *txn {
	return &txn{
		ctrl: c, src: src, dst: dst,
		pendingPuts: map[packet.FlowKey]int{},
		buffered:    map[packet.FlowKey][]*sbi.Event{},
		lastEvent:   time.Now(),
	}
}

// registerChunk attaches the txn to the source's routing tables for key and
// adopts any orphaned events that raced ahead of the chunk. Called from the
// source's read loop, before the chunk is delivered to the move consumer, so
// event routing can never miss the registration.
func (t *txn) registerChunk(mb *mbConn, key packet.FlowKey) {
	mb.txnMu.Lock()
	mb.keyTxns[key] = t
	adopted := mb.orphans[key]
	delete(mb.orphans, key)
	mb.txnMu.Unlock()
	t.mu.Lock()
	t.pendingPuts[key]++
	if len(adopted) > 0 {
		t.buffered[key] = append(t.buffered[key], adopted...)
		t.ctrl.eventsBuffered.Add(uint64(len(adopted)))
	}
	t.mu.Unlock()
}

func (t *txn) registerShared() {
	t.src.txnMu.Lock()
	t.src.sharedTxn = t
	t.src.txnMu.Unlock()
	t.mu.Lock()
	t.sharedPending++
	t.mu.Unlock()
}

// ackPut marks one put for key acknowledged and flushes buffered events.
func (t *txn) ackPut(key packet.FlowKey) {
	t.mu.Lock()
	t.pendingPuts[key]--
	var flush []*sbi.Event
	if t.pendingPuts[key] <= 0 {
		flush = t.buffered[key]
		delete(t.buffered, key)
	}
	t.mu.Unlock()
	t.forward(flush)
}

func (t *txn) ackSharedPut() {
	t.mu.Lock()
	t.sharedPending--
	var flush []*sbi.Event
	if t.sharedPending <= 0 {
		flush = t.sharedBuffered
		t.sharedBuffered = nil
	}
	t.mu.Unlock()
	t.forward(flush)
}

func (t *txn) forward(evs []*sbi.Event) {
	for _, ev := range evs {
		t.ctrl.eventsForwarded.Add(1)
		_ = t.dst.conn.Send(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpReprocess, Event: ev})
	}
}

// handleEvent routes one reprocess event from the source: buffer while the
// corresponding put is outstanding, forward (in order) otherwise.
func (t *txn) handleEvent(ev *sbi.Event) {
	t.mu.Lock()
	t.lastEvent = time.Now()
	t.sawEvent = true
	if ev.Shared {
		if t.sharedPending > 0 || len(t.sharedBuffered) > 0 {
			t.sharedBuffered = append(t.sharedBuffered, ev)
			t.ctrl.eventsBuffered.Add(1)
			t.mu.Unlock()
			return
		}
	} else if t.pendingPuts[ev.Key] > 0 || len(t.buffered[ev.Key]) > 0 {
		t.buffered[ev.Key] = append(t.buffered[ev.Key], ev)
		t.ctrl.eventsBuffered.Add(1)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.ctrl.eventsForwarded.Add(1)
	_ = t.dst.conn.Send(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpReprocess, Event: ev})
}

// quietSince reports whether no events have arrived for d.
func (t *txn) quietSince(d time.Duration) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Since(t.lastEvent) >= d
}

// detach removes the txn from the source's routing tables. When the source
// has no remaining transactions, stale orphaned events are discarded.
func (t *txn) detach() {
	t.src.txnMu.Lock()
	for k, owner := range t.src.keyTxns {
		if owner == t {
			delete(t.src.keyTxns, k)
		}
	}
	if t.src.sharedTxn == t {
		t.src.sharedTxn = nil
	}
	if len(t.src.keyTxns) == 0 && t.src.sharedTxn == nil {
		t.src.orphans = map[packet.FlowKey][]*sbi.Event{}
	}
	t.src.txnMu.Unlock()
}

// routeEvent dispatches an MB-raised event: introspection events go to
// subscribers; reprocess events go to the transaction that owns the state.
func (c *Controller) routeEvent(src *mbConn, ev *sbi.Event) {
	if ev == nil {
		return
	}
	if ev.Kind == sbi.EventIntrospection {
		c.introMu.Lock()
		subs := append([]func(string, *sbi.Event){}, c.introSubs...)
		c.introMu.Unlock()
		for _, fn := range subs {
			fn(src.name, ev)
		}
		return
	}
	src.txnMu.Lock()
	var t *txn
	if ev.Shared {
		t = src.sharedTxn
	} else {
		t = src.keyTxns[ev.Key]
	}
	src.txnMu.Unlock()
	if t == nil {
		if ev.Kind == sbi.EventReprocess && !ev.Shared {
			// The event may have raced ahead of the chunk that
			// registers its key (a packet processed between the
			// chunk's snapshot and its transmission). Hold it for
			// adoption; bounded so stragglers from completed
			// transactions cannot accumulate.
			src.txnMu.Lock()
			if len(src.orphans[ev.Key]) < 256 {
				src.orphans[ev.Key] = append(src.orphans[ev.Key], ev)
			}
			src.txnMu.Unlock()
		}
		return
	}
	t.handleEvent(ev)
}

// MoveInternal implements moveInternal(SrcMB, DstMB, HeaderFieldList):
// move all per-flow supporting and reporting state matching m from src to
// dst, per the Figure 5 sequence. It returns once every exported chunk has
// been installed (put-ACKed) at the destination. Event forwarding continues
// in the background; once the source goes quiet for the configured period,
// the controller deletes the moved state at the source, completing the move.
func (c *Controller) MoveInternal(srcMB, dstMB string, m packet.FieldMatch) error {
	src, err := c.mb(srcMB)
	if err != nil {
		return err
	}
	dst, err := c.mb(dstMB)
	if err != nil {
		return err
	}
	c.movesStarted.Add(1)
	t := newTxn(c, src, dst)

	var putWG sync.WaitGroup
	errCh := make(chan error, 64)

	// One get per state class; the read loop registers each streamed
	// chunk (so events start buffering), then the chunks are put to the
	// destination — one put per received frame, so a batched get yields
	// batched puts; ACKs release the buffered events for every key in
	// the frame.
	movePair := func(getOp, putOp sbi.Op) {
		get := &sbi.Message{
			Type: sbi.MsgRequest, Op: getOp, Match: m,
			Compressed: c.opts.Compress, Batch: c.opts.BatchSize,
		}
		_, err := src.stream(t, get, c.opts.CallTimeout, func(chunk *sbi.Message) error {
			var keys []packet.FlowKey
			var bytes uint64
			chunk.EachChunk(func(ch *state.Chunk) {
				keys = append(keys, ch.Key)
				bytes += uint64(len(ch.Blob))
			})
			c.chunksMoved.Add(uint64(len(keys)))
			c.bytesMoved.Add(bytes)
			putWG.Add(1)
			go func() {
				defer putWG.Done()
				put := &sbi.Message{
					Type: sbi.MsgRequest, Op: putOp,
					Chunk: chunk.Chunk, Chunks: chunk.Chunks,
					Compressed: chunk.Compressed,
				}
				_, perr := dst.call(put, c.opts.CallTimeout)
				if perr != nil {
					select {
					case errCh <- perr:
					default:
					}
				}
				for _, key := range keys {
					t.ackPut(key)
				}
			}()
			return nil
		})
		if err != nil {
			select {
			case errCh <- err:
			default:
			}
		}
	}

	var getWG sync.WaitGroup
	getWG.Add(2)
	go func() { defer getWG.Done(); movePair(sbi.OpGetSupportPerflow, sbi.OpPutSupportPerflow) }()
	go func() { defer getWG.Done(); movePair(sbi.OpGetReportPerflow, sbi.OpPutReportPerflow) }()
	getWG.Wait()
	putWG.Wait()

	select {
	case err := <-errCh:
		t.detach()
		return err
	default:
	}

	// Background completion: wait for event quiescence, then delete the
	// moved state at the source (which also clears its transaction
	// marks), and detach the event routing.
	c.txnWG.Add(1)
	go func() {
		defer c.txnWG.Done()
		for !t.quietSince(c.opts.QuietPeriod) {
			time.Sleep(c.opts.QuietPeriod / 5)
		}
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelSupportPerflow, Match: m}, c.opts.CallTimeout)
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelReportPerflow, Match: m}, c.opts.CallTimeout)
		t.detach()
	}()
	return nil
}

// CloneSupport implements cloneSupport(SrcMB, DstMB): copy the shared
// supporting state from src to dst (§5). Reprocess events raised by the
// source while the clone is in progress are forwarded so the copy stays
// up to date (§6.1); no delete is issued when events stop — the source
// keeps its state. The transaction ends (marks cleared at the source) after
// the quiet period.
func (c *Controller) CloneSupport(srcMB, dstMB string) error {
	return c.sharedTransfer(srcMB, dstMB, []sbi.Op{sbi.OpGetSupportShared}, []sbi.Op{sbi.OpPutSupportShared})
}

// MergeInternal implements mergeInternal(SrcMB, DstMB): merge the shared
// supporting and reporting state of src into dst. The destination applies
// its own merge semantics (§4.1.2, §4.1.3) — e.g. summing counters. No
// delete is issued; the source is typically deprecated by the application
// afterwards (scale-down, §6.2).
func (c *Controller) MergeInternal(srcMB, dstMB string) error {
	return c.sharedTransfer(srcMB, dstMB,
		[]sbi.Op{sbi.OpGetSupportShared, sbi.OpGetReportShared},
		[]sbi.Op{sbi.OpPutSupportShared, sbi.OpPutReportShared})
}

func (c *Controller) sharedTransfer(srcMB, dstMB string, getOps, putOps []sbi.Op) error {
	src, err := c.mb(srcMB)
	if err != nil {
		return err
	}
	dst, err := c.mb(dstMB)
	if err != nil {
		return err
	}
	t := newTxn(c, src, dst)
	for i, getOp := range getOps {
		t.registerShared()
		reply, err := src.call(&sbi.Message{Type: sbi.MsgRequest, Op: getOp, Compressed: c.opts.Compress}, c.opts.CallTimeout)
		if err != nil {
			t.detach()
			return err
		}
		if reply.Count == 0 && len(reply.Blob) == 0 {
			// The source maintains no shared state of this class:
			// nothing to transfer (and no mark was set).
			t.ackSharedPut()
			continue
		}
		c.bytesMoved.Add(uint64(len(reply.Blob)))
		_, err = dst.call(&sbi.Message{Type: sbi.MsgRequest, Op: putOps[i], Blob: reply.Blob, Compressed: reply.Compressed}, c.opts.CallTimeout)
		if err != nil {
			t.detach()
			return err
		}
		t.ackSharedPut()
	}
	// Background completion: after quiescence, end the transaction at the
	// source so it stops raising events; state is left in place.
	c.txnWG.Add(1)
	go func() {
		defer c.txnWG.Done()
		for !t.quietSince(c.opts.QuietPeriod) {
			time.Sleep(c.opts.QuietPeriod / 5)
		}
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpEndTransaction, Enable: true}, c.opts.CallTimeout)
		t.detach()
	}()
	return nil
}
