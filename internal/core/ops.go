package core

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// The public name-based operations resolve the middlebox in this
// controller's table and delegate to conn-level helpers. The Cluster
// resolves names cluster-wide (a concurrent handoff may move a middlebox
// between replicas mid-call) and invokes the conn-level helpers directly,
// so an operation can never fail on a re-lookup of a name that just moved.

// ReadConfig implements the northbound readConfig(SrcMB, HierarchicalKey):
// it returns the configuration leaves under path ("*" or "" for all).
func (c *Controller) ReadConfig(mbName, path string) ([]state.Entry, error) {
	mb, err := c.mb(mbName)
	if err != nil {
		return nil, err
	}
	return c.readConfigConn(mb, path)
}

func (c *Controller) readConfigConn(mb *mbConn, path string) ([]state.Entry, error) {
	m, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpGetConfig, Path: path}, c.opts.CallTimeout)
	if err != nil {
		return nil, err
	}
	return m.Entries, nil
}

// WriteConfig implements writeConfig(DstMB, HierarchicalKey, values).
func (c *Controller) WriteConfig(mbName, path string, values []string) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.writeConfigConn(mb, path, values)
}

func (c *Controller) writeConfigConn(mb *mbConn, path string, values []string) error {
	_, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpSetConfig, Path: path, Values: values}, c.opts.CallTimeout)
	return err
}

// WriteConfigAll installs a full set of configuration entries on a
// middlebox: writeConfig(DstMB, "*", values), the configuration-cloning step
// of the control applications (§6).
func (c *Controller) WriteConfigAll(mbName string, entries []state.Entry) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.writeConfigAllConn(mb, entries)
}

func (c *Controller) writeConfigAllConn(mb *mbConn, entries []state.Entry) error {
	_, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpSetConfig, Path: "*", Entries: entries}, c.opts.CallTimeout)
	return err
}

// DelConfig implements delConfig(DstMB, HierarchicalKey).
func (c *Controller) DelConfig(mbName, path string) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.delConfigConn(mb, path)
}

func (c *Controller) delConfigConn(mb *mbConn, path string) error {
	_, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelConfig, Path: path}, c.opts.CallTimeout)
	return err
}

// CloneConfig copies all configuration from one middlebox to another — the
// composition of readConfig and writeConfig the paper suggests (§5).
func (c *Controller) CloneConfig(srcMB, dstMB string) error {
	entries, err := c.ReadConfig(srcMB, "*")
	if err != nil {
		return err
	}
	return c.WriteConfigAll(dstMB, entries)
}

// Stats implements stats(SrcMB, HeaderFieldList): how much shared and
// per-flow supporting and reporting state exists for the given key.
func (c *Controller) Stats(mbName string, m packet.FieldMatch) (sbi.StatsReply, error) {
	mb, err := c.mb(mbName)
	if err != nil {
		return sbi.StatsReply{}, err
	}
	return c.statsConn(mb, m)
}

func (c *Controller) statsConn(mb *mbConn, m packet.FieldMatch) (sbi.StatsReply, error) {
	reply, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpStats, Match: m}, c.opts.CallTimeout)
	if err != nil {
		return sbi.StatsReply{}, err
	}
	if reply.Stats == nil {
		return sbi.StatsReply{}, fmt.Errorf("core: %s returned no stats", mb.name)
	}
	return *reply.Stats, nil
}

// ArmFlowTrace arms the middlebox's filtered flow tracer: capture up to
// budget per-hop records of packets matching m in either direction. The
// middlebox compiles the predicate once at arm time (sbi.OpTraceFlow);
// budget<=0 selects the runtime's default.
func (c *Controller) ArmFlowTrace(mbName string, m packet.FieldMatch, budget int) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.armFlowTraceConn(mb, m, budget, true)
}

// DisarmFlowTrace stops the middlebox's tracer; captured records remain
// retrievable via FlowTraceRecords.
func (c *Controller) DisarmFlowTrace(mbName string) error {
	mb, err := c.mb(mbName)
	if err != nil {
		return err
	}
	return c.armFlowTraceConn(mb, packet.FieldMatch{}, 0, false)
}

func (c *Controller) armFlowTraceConn(mb *mbConn, m packet.FieldMatch, budget int, enable bool) error {
	_, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpTraceFlow, Match: m, Count: budget, Enable: enable}, c.opts.CallTimeout)
	return err
}

// FlowTraceRecords dumps the middlebox's newest trace session: one rendered
// record per line, in capture order. Dumping does not disturb an armed
// session.
func (c *Controller) FlowTraceRecords(mbName string) ([]string, error) {
	mb, err := c.mb(mbName)
	if err != nil {
		return nil, err
	}
	return c.flowTraceRecordsConn(mb)
}

func (c *Controller) flowTraceRecordsConn(mb *mbConn) ([]string, error) {
	reply, err := mb.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpTraceDump}, c.opts.CallTimeout)
	if err != nil {
		return nil, err
	}
	return reply.Values, nil
}

// putJob is one received chunk frame to forward to a move's destination.
type putJob struct {
	op    sbi.Op
	frame *sbi.Message
	keys  []packet.FlowKey
}

// putQueue is an unbounded FIFO of put jobs feeding a move's worker pool.
// push never blocks (see the deadlock note in MoveInternal); pop blocks
// until a job is available or the queue is closed and drained.
type putQueue struct {
	mu     sync.Mutex
	cond   sync.Cond
	items  []putJob
	closed bool
}

func newPutQueue() *putQueue {
	q := &putQueue{}
	q.cond.L = &q.mu
	return q
}

func (q *putQueue) push(j putJob) {
	q.mu.Lock()
	q.items = append(q.items, j)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *putQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *putQueue) pop() (putJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return putJob{}, false
	}
	j := q.items[0]
	q.items[0] = putJob{} // drop the frame reference for the collector
	q.items = q.items[1:]
	return j, true
}

// MoveInternal implements moveInternal(SrcMB, DstMB, HeaderFieldList):
// move all per-flow supporting and reporting state matching m from src to
// dst, per the Figure 5 sequence. It returns once every exported chunk has
// been installed (put-ACKed) at the destination. Event forwarding continues
// in the background; once the source goes quiet for the configured period,
// the controller deletes the moved state at the source, completing the move.
func (c *Controller) MoveInternal(srcMB, dstMB string, m packet.FieldMatch) error {
	src, err := c.mb(srcMB)
	if err != nil {
		return err
	}
	dst, err := c.mb(dstMB)
	if err != nil {
		return err
	}
	return c.moveConns(src, dst, m)
}

// moveConns is MoveInternal on resolved connections. The Cluster calls it
// directly for cross-partition moves: the endpoints may be registered with
// other replicas, but the transaction (completer, metrics, WaitTxns
// accounting) runs here while routing state follows the source connection's
// current owner (see txn.registerChunk).
func (c *Controller) moveConns(src, dst *mbConn, m packet.FieldMatch) error {
	if c.failed.Load() {
		// This replica has been declared dead; the caller (Cluster) retries
		// on the connection's current owner.
		return ErrReplicaFailed
	}
	c.movesStarted.Add(1)
	moveStart := time.Now()
	t := newTxn(c, src, dst)

	errCh := make(chan error, 1)
	fail := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	doPut := func(j putJob) {
		if t.aborted.Load() {
			// The coordinating replica was declared failed mid-move: stop
			// installing state at the destination. The ACKs are skipped
			// too — rollback wipes the routing entries wholesale, and an
			// ACK-driven drain here would forward events for state the
			// rollback is about to delete.
			fail(ErrReplicaFailed)
			return
		}
		put := &sbi.Message{
			Type: sbi.MsgRequest, Op: j.op,
			Chunk: j.frame.Chunk, Chunks: j.frame.Chunks,
			Compressed: j.frame.Compressed,
		}
		putStart := time.Now()
		if _, perr := dst.call(put, c.opts.CallTimeout); perr != nil {
			fail(perr)
		}
		// Put-ACK round trip, observed on success and failure alike (a
		// timed-out put is the tail the histogram exists to expose).
		c.histPut.Observe(time.Since(putStart))
		for _, key := range j.keys {
			t.ackPut(key)
		}
	}

	// Puts run on a bounded worker pool fed by an unbounded FIFO: the
	// destination installs chunks from one southbound goroutine anyway,
	// so PutWorkers in-flight puts keep it saturated, and a queued frame
	// costs only its payload — far less than the seed's goroutine per
	// frame (stack + per-call channel). The queue must never block the
	// producer: the producer is, transitively, the source MB's read
	// loop, which also delivers the put ACKs the workers wait on.
	// Backpressuring it deadlocks opposite-direction moves between the
	// same MB pair (each read loop stuck on the other move's chunks,
	// the ACKs queued behind them undeliverable). The pool spawns on
	// the first frame, all workers at once — a move that exports
	// nothing pays for no goroutines, and spawning per frame measurably
	// delays pipeline fill-up. The shards=1 ablation reproduces the
	// seed's unbounded goroutine-per-frame fan-out instead.
	serialized := c.serialized()
	var putWG sync.WaitGroup
	var queue *putQueue
	var poolOnce sync.Once
	enqueue := func(j putJob) {
		poolOnce.Do(func() {
			putWG.Add(c.opts.PutWorkers)
			for i := 0; i < c.opts.PutWorkers; i++ {
				go func() {
					defer putWG.Done()
					for {
						j, ok := queue.pop()
						if !ok {
							return
						}
						doPut(j)
					}
				}()
			}
		})
		queue.push(j)
	}
	if !serialized {
		queue = newPutQueue()
	}

	// One get per state class; the read loop registers each streamed
	// chunk (so events start buffering), then the chunks are put to the
	// destination — one put per received frame, so a batched get yields
	// batched puts; ACKs release the buffered events for every key in
	// the frame.
	movePair := func(getOp, putOp sbi.Op) {
		get := &sbi.Message{
			Type: sbi.MsgRequest, Op: getOp, Match: m,
			Compressed: c.opts.Compress, Batch: c.opts.BatchSize,
		}
		getStart := time.Now()
		_, err := src.stream(t, get, c.opts.CallTimeout, func(chunk *sbi.Message) error {
			if t.aborted.Load() {
				return ErrReplicaFailed
			}
			var keys []packet.FlowKey
			var bytes uint64
			chunk.EachChunk(func(ch *state.Chunk) {
				keys = append(keys, ch.Key)
				bytes += uint64(len(ch.Blob))
			})
			c.chunksMoved.Add(uint64(len(keys)))
			c.bytesMoved.Add(bytes)
			j := putJob{op: putOp, frame: chunk, keys: keys}
			if serialized {
				putWG.Add(1)
				go func() {
					defer putWG.Done()
					doPut(j)
				}()
				return nil
			}
			enqueue(j)
			return nil
		})
		// Get-stream duration: first request frame to the stream's done.
		c.histGet.Observe(time.Since(getStart))
		if err != nil {
			fail(err)
		}
	}

	var getWG sync.WaitGroup
	getWG.Add(2)
	go func() { defer getWG.Done(); movePair(sbi.OpGetSupportPerflow, sbi.OpPutSupportPerflow) }()
	go func() { defer getWG.Done(); movePair(sbi.OpGetReportPerflow, sbi.OpPutReportPerflow) }()
	getWG.Wait()
	if !serialized {
		queue.close()
	}
	putWG.Wait()
	// The move window closes here: every chunk is exported and its put
	// ACKed, so the destination owns the state (the quiet-period delete at
	// the source is background completion, not part of the window).
	c.histMove.Observe(time.Since(moveStart))

	// A failure declared after the last put was issued but before this
	// point must still abort: once finishAfterQuiet is scheduled the move
	// is committed to completing (the quiet-period delete at the source is
	// then the only loss-free ending).
	if t.aborted.Load() {
		fail(ErrReplicaFailed)
	}

	select {
	case err := <-errCh:
		t.detach()
		return err
	default:
	}

	// Background completion: wait for event quiescence, then delete the
	// moved state at the source (which also clears its transaction
	// marks), and detach the event routing.
	c.finishAfterQuiet(t, func() {
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelSupportPerflow, Match: m}, c.opts.CallTimeout)
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpDelReportPerflow, Match: m}, c.opts.CallTimeout)
		// The deletes above destroyed the source's post-snapshot updates for
		// marked packets that were still draining off its ingress ring; the
		// source flushed their reprocess events ahead of the delete acks.
		// Route them all (they forward to the destination for replay) before
		// tearing down the routing entries — detaching first would orphan
		// them and lose those packets from the moved state.
		src.drainEvents(c.opts.CallTimeout)
		t.detach()
	})
	return nil
}

// CloneSupport implements cloneSupport(SrcMB, DstMB): copy the shared
// supporting state from src to dst (§5). Reprocess events raised by the
// source while the clone is in progress are forwarded so the copy stays
// up to date (§6.1); no delete is issued when events stop — the source
// keeps its state. The transaction ends (marks cleared at the source) after
// the quiet period.
func (c *Controller) CloneSupport(srcMB, dstMB string) error {
	return c.sharedTransfer(srcMB, dstMB, []sbi.Op{sbi.OpGetSupportShared}, []sbi.Op{sbi.OpPutSupportShared})
}

// MergeInternal implements mergeInternal(SrcMB, DstMB): merge the shared
// supporting and reporting state of src into dst. The destination applies
// its own merge semantics (§4.1.2, §4.1.3) — e.g. summing counters. No
// delete is issued; the source is typically deprecated by the application
// afterwards (scale-down, §6.2).
func (c *Controller) MergeInternal(srcMB, dstMB string) error {
	return c.sharedTransfer(srcMB, dstMB,
		[]sbi.Op{sbi.OpGetSupportShared, sbi.OpGetReportShared},
		[]sbi.Op{sbi.OpPutSupportShared, sbi.OpPutReportShared})
}

func (c *Controller) sharedTransfer(srcMB, dstMB string, getOps, putOps []sbi.Op) error {
	src, err := c.mb(srcMB)
	if err != nil {
		return err
	}
	dst, err := c.mb(dstMB)
	if err != nil {
		return err
	}
	return c.sharedTransferConns(src, dst, getOps, putOps)
}

// sharedTransferConns is sharedTransfer on resolved connections (the
// cluster's cross-partition path, mirroring moveConns).
func (c *Controller) sharedTransferConns(src, dst *mbConn, getOps, putOps []sbi.Op) error {
	if c.failed.Load() {
		return ErrReplicaFailed
	}
	t := newTxn(c, src, dst)
	for i, getOp := range getOps {
		t.registerShared()
		reply, err := src.call(&sbi.Message{Type: sbi.MsgRequest, Op: getOp, Compressed: c.opts.Compress}, c.opts.CallTimeout)
		if err != nil {
			t.detach()
			return err
		}
		if reply.Count == 0 && len(reply.Blob) == 0 {
			// The source maintains no shared state of this class:
			// nothing to transfer (and no mark was set).
			t.ackSharedPut()
			continue
		}
		c.bytesMoved.Add(uint64(len(reply.Blob)))
		_, err = dst.call(&sbi.Message{Type: sbi.MsgRequest, Op: putOps[i], Blob: reply.Blob, Compressed: reply.Compressed}, c.opts.CallTimeout)
		if err != nil {
			t.detach()
			return err
		}
		t.ackSharedPut()
	}
	// Background completion: after quiescence, end the transaction at the
	// source so it stops raising events; state is left in place.
	c.finishAfterQuiet(t, func() {
		_, _ = src.call(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpEndTransaction, Enable: true}, c.opts.CallTimeout)
		// Shared events flushed ahead of the end-transaction ack still need
		// routing (they forward to the destination, which replays them into
		// its shared copy only — Context.SkipPerflow); detach after.
		src.drainEvents(c.opts.CallTimeout)
		t.detach()
	})
	return nil
}
