package core_test

import (
	"fmt"
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// fastRig builds a controller plus two counter middleboxes speaking the
// given codec, with the given chunk batch size.
func fastRig(t *testing.T, codec sbi.Codec, batch int) *rig {
	t.Helper()
	r := &rig{
		ctrl: core.NewController(core.Options{QuietPeriod: 60 * time.Millisecond, BatchSize: batch}),
		tr:   sbi.NewMemTransport(),
		src:  mbtest.NewCounterLogic(16),
		dst:  mbtest.NewCounterLogic(16),
	}
	if err := r.ctrl.Serve(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.ctrl.Close)
	attach := func(name string, logic mbox.Logic) *mbox.Runtime {
		rt := mbox.New(name, logic, mbox.Options{Codec: codec})
		t.Cleanup(rt.Close)
		if err := rt.Connect(r.tr, "ctrl"); err != nil {
			t.Fatal(err)
		}
		if err := r.ctrl.WaitForMB(name, 2*time.Second); err != nil {
			t.Fatal(err)
		}
		return rt
	}
	r.srcRT = attach("src", r.src)
	r.dstRT = attach("dst", r.dst)
	return r
}

// TestMoveAcrossCodecsAndBatches verifies the full move pipeline — get
// stream, batched puts, delete-at-source — preserves every flow and count
// for each codec x batch-size combination, including batch sizes larger
// than the resident state.
func TestMoveAcrossCodecsAndBatches(t *testing.T) {
	const flows = 257 // not a multiple of any batch size: exercises partial final frames
	for _, codec := range []sbi.Codec{sbi.CodecJSON, sbi.CodecBinary} {
		for _, batch := range []int{1, 7, 64, 1024} {
			t.Run(fmt.Sprintf("%s/batch%d", codec, batch), func(t *testing.T) {
				r := fastRig(t, codec, batch)
				r.src.Preload(flows)
				if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
					t.Fatal(err)
				}
				if got := r.dst.Flows(); got != flows {
					t.Fatalf("destination has %d flows, want %d", got, flows)
				}
				if got := r.dst.SumCounts(); got != flows {
					t.Fatalf("destination count sum %d, want %d", got, flows)
				}
				if !r.ctrl.WaitTxns(5 * time.Second) {
					t.Fatal("transactions did not complete")
				}
				if got := r.src.Flows(); got != 0 {
					t.Fatalf("source still has %d flows after move", got)
				}
				m := r.ctrl.Metrics()
				if m.ChunksMoved != flows {
					t.Fatalf("metrics counted %d chunks, want %d", m.ChunksMoved, flows)
				}
			})
		}
	}
}

// TestMoveWithEventsBatchedBinary runs a move under packet load with the
// binary codec and batching: reprocess events raised mid-move must still be
// buffered against their key's put and replayed at the destination, so no
// packet count is lost (the §4.2.1 loss-freedom argument, on the fast path).
func TestMoveWithEventsBatchedBinary(t *testing.T) {
	const flows = 120
	r := fastRig(t, sbi.CodecBinary, 16)
	r.src.Preload(flows)

	stop := make(chan struct{})
	done := make(chan uint64, 1)
	go func() {
		var injected uint64
		for {
			select {
			case <-stop:
				done <- injected
				return
			default:
			}
			r.srcRT.HandlePacket(mbtest.PacketForFlow(int(injected) % flows))
			injected++
			time.Sleep(50 * time.Microsecond)
		}
	}()

	if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	close(stop)
	injected := <-done
	r.srcRT.Drain(5 * time.Second)
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	r.dstRT.Drain(5 * time.Second)

	// Conservation: preloaded counts plus every injected packet that the
	// source accepted must be accounted for at the destination (injected
	// packets land either in the moved blob or in a replayed event).
	processed := r.srcRT.Metrics().Processed
	want := uint64(flows) + processed
	if got := r.dst.SumCounts(); got != want {
		t.Fatalf("destination sum %d, want %d (injected %d, processed %d)", got, want, injected, processed)
	}
}

// TestHelloBadCodecRejected verifies the controller refuses an unknown
// codec announcement instead of silently misparsing later frames.
func TestHelloBadCodecRejected(t *testing.T) {
	tr := sbi.NewMemTransport()
	ctrl := core.NewController(core.Options{})
	if err := ctrl.Serve(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer ctrl.Close()
	raw, err := tr.Dial("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	conn := sbi.NewConn(raw)
	defer conn.Close()
	if err := conn.Send(&sbi.Message{Type: sbi.MsgHello, Name: "evil", Codec: "protobuf"}); err != nil {
		t.Fatal(err)
	}
	m, err := conn.Receive()
	if err == nil && m.Type != sbi.MsgError {
		t.Fatalf("expected error reply or close, got %+v", m)
	}
	if err := ctrl.WaitForMB("evil", 50*time.Millisecond); err == nil {
		t.Fatal("middlebox with unknown codec must not register")
	}
}
