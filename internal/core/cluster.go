package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Cluster runs N Controller replicas behind one listener and partitions the
// registered middleboxes across them by a consistent-hash directory. The
// paper's control plane is a single controller process; a Stratos-style
// deployment orchestrates pools of middleboxes whose control load exceeds
// one instance, so each replica here owns a slice of the MB population —
// its connections, its transaction router shards, its completer — and the
// cluster proxies the northbound API so applications keep calling one
// object:
//
//   - same-partition operations delegate to the owning replica unchanged;
//   - cross-partition moves/clones/merges run on the source's replica while
//     the destination connection is resolved cluster-wide (the transaction
//     machinery never required both endpoints to share a router — event
//     routing keys on the source, and forwarding is plain connection I/O);
//   - Rebalance/Drain move a middlebox between replicas LIVE, mid-
//     transaction, via the handoff protocol in handoff.go.
//
// Replicas = 1 is the ablation: one replica, the directory always answering
// 0, and every operation taking exactly today's single-controller path.
type ClusterOptions struct {
	// Replicas is the number of controller replicas (default 1).
	Replicas int
	// Controller configures every replica (quiet period, shards, ...).
	Controller Options
	// FindRetryWindow bounds how long northbound operations keep
	// re-resolving a middlebox name that transiently resolves nowhere
	// (mid-handoff, mid-recovery, mid-reconnect). Zero selects the
	// in-process default (250ms); cross-process deployments, whose
	// failover gaps include real dial latencies and reconnect backoff,
	// want seconds.
	FindRetryWindow time.Duration
}

// defaultFindRetryWindow is the in-process findRetry bound: long enough to
// cover a handoff freeze, a replica-failure migration, or a reconnecting
// middlebox's first backoff; short enough that a genuinely unknown name
// still fails fast.
const defaultFindRetryWindow = 250 * time.Millisecond

// Cluster is a replicated OpenMB controller.
type Cluster struct {
	replicas []*Controller
	dir      *directory
	// registry is the cluster-wide transaction registry every replica
	// shares (see txnRegistry).
	registry *txnRegistry

	mu       sync.Mutex // serializes handoffs and listener state
	listener net.Listener
	closed   atomic.Bool

	// findRetryWindow bounds findRetry; see ClusterOptions.FindRetryWindow.
	findRetryWindow time.Duration

	// handoffs counts completed live ownership transfers.
	handoffs atomic.Uint64
	// dirMissRetries counts findRetry poll iterations that found the name
	// unresolved (or resolved onto a failed replica) — a measure of how
	// much time northbound callers spend riding out directory misses.
	dirMissRetries atomic.Uint64
}

// NewCluster creates a cluster of opts.Replicas controller replicas.
func NewCluster(opts ClusterOptions) *Cluster {
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.FindRetryWindow <= 0 {
		opts.FindRetryWindow = defaultFindRetryWindow
	}
	cl := &Cluster{
		dir:             newDirectory(opts.Replicas),
		registry:        newTxnRegistry(),
		findRetryWindow: opts.FindRetryWindow,
	}
	for i := 0; i < opts.Replicas; i++ {
		c := NewController(opts.Controller)
		// Replicas of a multi-replica cluster participate in handoffs;
		// a replicas=1 cluster has nowhere to hand off to and keeps the
		// single-controller fast path (the ablation stays exact).
		c.clustered = opts.Replicas > 1
		// All replicas share one transaction registry: IDs stay unique
		// cluster-wide and FailReplica can sweep a dead replica's
		// in-flight transactions. Replaced before any Serve, so no txn
		// can have registered with the replica-private one.
		c.registry = cl.registry
		cl.replicas = append(cl.replicas, c)
	}
	return cl
}

// Replicas returns the replica count.
func (cl *Cluster) Replicas() int { return len(cl.replicas) }

// Replica returns the i-th replica, for tests and per-replica metrics.
func (cl *Cluster) Replica(i int) *Controller { return cl.replicas[i] }

// Shards reports the per-replica router shard count (all replicas share one
// Options value).
func (cl *Cluster) Shards() int { return cl.replicas[0].Shards() }

// Serve starts accepting middlebox connections on addr. The cluster reads
// each connection's hello itself — the directory needs the MB name to pick
// the owning replica — then hands the connection to that replica, which
// upgrades the codec and runs the read loop exactly as a lone controller
// would.
func (cl *Cluster) Serve(tr sbi.Transport, addr string) error {
	l, err := tr.Listen(addr)
	if err != nil {
		return fmt.Errorf("core: cluster listen %q: %w", addr, err)
	}
	cl.mu.Lock()
	cl.listener = l
	cl.mu.Unlock()
	go cl.acceptLoop(l)
	return nil
}

func (cl *Cluster) acceptLoop(l net.Listener) {
	for {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		go func() {
			conn := sbi.NewConn(raw)
			// Same hello bound as Controller.handleConn: a stalled or
			// truncated hello must not pin this goroutine.
			_ = conn.SetReadDeadline(time.Now().Add(cl.replicas[0].opts.HelloTimeout))
			hello, err := conn.Receive()
			if err != nil || hello.Type != sbi.MsgHello || hello.Name == "" {
				conn.Close()
				return
			}
			_ = conn.SetReadDeadline(time.Time{})
			cl.replicas[cl.dir.owner(hello.Name)].serveMB(conn, hello)
		}()
	}
}

// Addr returns the listener's address, or "" before Serve.
func (cl *Cluster) Addr() string {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.listener == nil {
		return ""
	}
	return cl.listener.Addr().String()
}

// find resolves a middlebox to its current replica and connection. The
// directory owner is checked first; a scan covers the races a concurrent
// rebalance can open between the directory update and the table moves.
func (cl *Cluster) find(name string) (*Controller, *mbConn, error) {
	owner := cl.dir.owner(name)
	for off := 0; off < len(cl.replicas); off++ {
		c := cl.replicas[(owner+off)%len(cl.replicas)]
		c.mu.Lock()
		mb, ok := c.mbs[name]
		c.mu.Unlock()
		if ok {
			return c, mb, nil
		}
	}
	return nil, nil, fmt.Errorf("core: unknown middlebox %q", name)
}

// findRetry is find with bounded retry (ClusterOptions.FindRetryWindow): a
// name mid-handoff, mid-recovery, or mid-reconnect transiently resolves
// nowhere (or to a replica declared failed), and the northbound API should
// ride out that window instead of surfacing a spurious unknown-middlebox
// error.
func (cl *Cluster) findRetry(name string) (*Controller, *mbConn, error) {
	deadline := time.Now().Add(cl.findRetryWindow)
	for {
		c, mb, err := cl.find(name)
		if err == nil && !c.failed.Load() {
			return c, mb, nil
		}
		cl.dirMissRetries.Add(1)
		if !time.Now().Before(deadline) {
			if err == nil {
				// The connection never migrated off the failed replica
				// (e.g. FailReplica is still mid-flight); hand it back
				// rather than erroring — conn-level calls still work.
				return c, mb, nil
			}
			return nil, nil, err
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// ReplicaOf reports which replica currently serves the middlebox.
func (cl *Cluster) ReplicaOf(name string) (int, error) {
	c, _, err := cl.find(name)
	if err != nil {
		return 0, err
	}
	for i, r := range cl.replicas {
		if r == c {
			return i, nil
		}
	}
	return 0, fmt.Errorf("core: middlebox %q on unknown replica", name)
}

// WaitForMB blocks until the middlebox is registered anywhere in the
// cluster. The blocking wait parks on the directory owner's waiter
// registry (the replica a fresh registration lands on), but each wait is
// sliced and re-resolved cluster-wide: a concurrent Rebalance moves the
// name between replicas and wakes only the new owner's waiters, so a
// single full-timeout wait on one replica could miss it.
func (cl *Cluster) WaitForMB(name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, _, err := cl.find(name); err == nil {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return fmt.Errorf("core: middlebox %q did not register", name)
		}
		slice := remain
		if slice > 50*time.Millisecond {
			slice = 50 * time.Millisecond
		}
		// Wakes early when the name registers at the current owner;
		// otherwise the slice bounds how stale the owner resolution and
		// the cluster-wide scan can get.
		_ = cl.replicas[cl.dir.owner(name)].WaitForMB(name, slice)
	}
}

// Middleboxes returns the names registered across all replicas.
func (cl *Cluster) Middleboxes() []string {
	var names []string
	for _, c := range cl.replicas {
		names = append(names, c.Middleboxes()...)
	}
	sort.Strings(names)
	return names
}

// SubscribeIntrospection registers fn on every replica, so events arrive
// regardless of which replica owns the raising middlebox.
func (cl *Cluster) SubscribeIntrospection(fn func(mb string, ev *sbi.Event)) {
	for _, c := range cl.replicas {
		c.SubscribeIntrospection(fn)
	}
}

// The proxied single-MB operations below resolve the name cluster-wide
// once (with bounded retry, riding out handoff and recovery windows) and
// then call through the resolved connection: re-resolving by name on the
// owning replica would race a concurrent Rebalance moving the name away
// between the two lookups and fail a healthy middlebox.

// ReadConfig proxies to the middlebox's replica.
func (cl *Cluster) ReadConfig(mbName, path string) ([]state.Entry, error) {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return nil, err
	}
	return c.readConfigConn(mb, path)
}

// WriteConfig proxies to the middlebox's replica.
func (cl *Cluster) WriteConfig(mbName, path string, values []string) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.writeConfigConn(mb, path, values)
}

// WriteConfigAll proxies to the middlebox's replica.
func (cl *Cluster) WriteConfigAll(mbName string, entries []state.Entry) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.writeConfigAllConn(mb, entries)
}

// DelConfig proxies to the middlebox's replica.
func (cl *Cluster) DelConfig(mbName, path string) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.delConfigConn(mb, path)
}

// CloneConfig copies all configuration between middleboxes on any replicas:
// the read runs at the source's replica, the write at the destination's.
func (cl *Cluster) CloneConfig(srcMB, dstMB string) error {
	entries, err := cl.ReadConfig(srcMB, "*")
	if err != nil {
		return err
	}
	return cl.WriteConfigAll(dstMB, entries)
}

// Stats proxies to the middlebox's replica.
func (cl *Cluster) Stats(mbName string, m packet.FieldMatch) (sbi.StatsReply, error) {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return sbi.StatsReply{}, err
	}
	return c.statsConn(mb, m)
}

// SetEventFilter proxies to the middlebox's replica.
func (cl *Cluster) SetEventFilter(mbName, codePrefix string, m packet.FieldMatch, enable bool) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.setEventFilterConn(mb, codePrefix, m, enable, 0)
}

// ArmFlowTrace proxies to the middlebox's replica; see
// Controller.ArmFlowTrace.
func (cl *Cluster) ArmFlowTrace(mbName string, m packet.FieldMatch, budget int) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.armFlowTraceConn(mb, m, budget, true)
}

// DisarmFlowTrace proxies to the middlebox's replica.
func (cl *Cluster) DisarmFlowTrace(mbName string) error {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return err
	}
	return c.armFlowTraceConn(mb, packet.FieldMatch{}, 0, false)
}

// FlowTraceRecords proxies to the middlebox's replica.
func (cl *Cluster) FlowTraceRecords(mbName string) ([]string, error) {
	c, mb, err := cl.findRetry(mbName)
	if err != nil {
		return nil, err
	}
	return c.flowTraceRecordsConn(mb)
}

// moveAttempts bounds how many times MoveInternal restarts a move whose
// coordinating replica was declared failed mid-flight.
const moveAttempts = 3

// MoveInternal moves per-flow state between middleboxes on any replicas.
// The transaction runs on the source's replica (its completer finishes it;
// its metrics count it); the destination is resolved cluster-wide.
//
// If the coordinating replica is declared failed mid-move (FailReplica),
// the half-applied transfer is rolled back — per-flow marks cleared at the
// source, stale-epoch routing state purged, half-installed state deleted at
// the destination — and the move restarts on the connection's current
// owner, up to moveAttempts times. The rollback restores "the move never
// happened": live packets are always counted at the source, so wiping the
// destination's partial copy leaves every packet accounted exactly once.
func (cl *Cluster) MoveInternal(srcMB, dstMB string, m packet.FieldMatch) error {
	for attempt := 1; ; attempt++ {
		srcC, src, err := cl.findRetry(srcMB)
		if err != nil {
			return err
		}
		_, dst, err := cl.findRetry(dstMB)
		if err != nil {
			return err
		}
		err = srcC.moveConns(src, dst, m)
		if err == nil || !errors.Is(err, ErrReplicaFailed) || attempt >= moveAttempts {
			return err
		}
		cl.rollbackMove(src, dst, m)
	}
}

// RecoverMove restores a move whose coordinating process died mid-flight.
// The in-process retry above cannot help there — the coordinator's registry,
// and with it every live transaction, died with the process — so whichever
// node the middleboxes reconnect to calls RecoverMove: roll the half-applied
// transfer back to "the move never happened" (safe even if the move never
// started, or finished — rollback only clears marks and purges half-copied
// state that exists), then run the move again from scratch on this cluster.
// Both middleboxes must already be registered locally.
func (cl *Cluster) RecoverMove(srcMB, dstMB string, m packet.FieldMatch) error {
	_, src, err := cl.findRetry(srcMB)
	if err != nil {
		return err
	}
	_, dst, err := cl.findRetry(dstMB)
	if err != nil {
		return err
	}
	cl.rollbackMove(src, dst, m)
	return cl.MoveInternal(srcMB, dstMB, m)
}

// CloneSupport clones shared supporting state across partitions; see
// Controller.CloneSupport.
func (cl *Cluster) CloneSupport(srcMB, dstMB string) error {
	return cl.sharedTransfer(srcMB, dstMB,
		[]sbi.Op{sbi.OpGetSupportShared}, []sbi.Op{sbi.OpPutSupportShared})
}

// MergeInternal merges shared state across partitions; see
// Controller.MergeInternal.
func (cl *Cluster) MergeInternal(srcMB, dstMB string) error {
	return cl.sharedTransfer(srcMB, dstMB,
		[]sbi.Op{sbi.OpGetSupportShared, sbi.OpGetReportShared},
		[]sbi.Op{sbi.OpPutSupportShared, sbi.OpPutReportShared})
}

func (cl *Cluster) sharedTransfer(srcMB, dstMB string, getOps, putOps []sbi.Op) error {
	for attempt := 1; ; attempt++ {
		srcC, src, err := cl.findRetry(srcMB)
		if err != nil {
			return err
		}
		_, dst, err := cl.findRetry(dstMB)
		if err != nil {
			return err
		}
		err = srcC.sharedTransferConns(src, dst, getOps, putOps)
		// Only the before-anything-started refusal is retryable: a shared
		// transfer that aborted mid-flight may have merged some classes
		// into the destination already, and restarting would merge them
		// twice. (Mid-flight shared transfers are deliberately never
		// aborted — see txnRegistry.abortController.)
		if err == nil || !errors.Is(err, ErrReplicaFailed) || attempt >= moveAttempts {
			return err
		}
	}
}

// WaitTxns blocks until every replica's in-flight transactions have
// finished, or the timeout elapses.
func (cl *Cluster) WaitTxns(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for _, c := range cl.replicas {
		remain := time.Until(deadline)
		if remain <= 0 {
			remain = time.Millisecond
		}
		if !c.WaitTxns(remain) {
			return false
		}
	}
	return true
}

// LiveTxns reports the number of in-flight transactions cluster-wide; zero
// after WaitTxns returns true. Recovery and elasticity tests use it to prove
// that aborted or retried operations leak nothing in the shared registry.
func (cl *Cluster) LiveTxns() int { return cl.registry.Live() }

// ConnCounters merges every replica's per-connection wire counters; see
// Controller.ConnCounters for the per-entry coherence contract.
func (cl *Cluster) ConnCounters() map[string]sbi.Counters {
	out := map[string]sbi.Counters{}
	for _, c := range cl.replicas {
		for name, wc := range c.ConnCounters() {
			out[name] = wc
		}
	}
	return out
}

// Handoffs reports how many live ownership transfers have completed.
func (cl *Cluster) Handoffs() uint64 { return cl.handoffs.Load() }

// Metrics sums the replicas' counters.
func (cl *Cluster) Metrics() Metrics {
	var sum Metrics
	for _, c := range cl.replicas {
		m := c.Metrics()
		sum.MovesStarted += m.MovesStarted
		sum.EventsForwarded += m.EventsForwarded
		sum.EventsBuffered += m.EventsBuffered
		sum.ChunksMoved += m.ChunksMoved
		sum.BytesMoved += m.BytesMoved
		sum.PingsSent += m.PingsSent
		sum.PongsReceived += m.PongsReceived
		sum.HeartbeatDeaths += m.HeartbeatDeaths
	}
	return sum
}

// Collect implements obs.Collector: every replica's series tagged with a
// replica label, plus the cluster-level handoff counter.
func (cl *Cluster) Collect(e *obs.Emitter) {
	for i, c := range cl.replicas {
		c.collect(e, "replica", strconv.Itoa(i))
	}
	e.Counter("openmb_handoffs_total", "Live replica-to-replica ownership transfers completed.", cl.handoffs.Load())
	e.Counter("openmb_directory_miss_retries_total", "Northbound findRetry polls that found a middlebox name unresolved or on a failed replica.", cl.dirMissRetries.Load())
}

// Close stops the accept loop and every replica.
func (cl *Cluster) Close() {
	if !cl.closed.CompareAndSwap(false, true) {
		return
	}
	cl.mu.Lock()
	l := cl.listener
	cl.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range cl.replicas {
		c.Close()
	}
}

// ---------------------------------------------------------------------------
// Directory.

// vnodesPerReplica is the number of consistent-hash ring points per replica;
// enough for an even spread at small replica counts without making the ring
// search measurable.
const vnodesPerReplica = 64

// directory maps middlebox names to replica indices: a consistent-hash ring
// (so growing the replica set moves only ~1/N of the names) overlaid with
// explicit assignments recording live handoffs. Both the ring and the
// overrides ride d.mu: the ring was immutable until replica failure —
// removeReplica prunes a dead replica's points so the ring itself stops
// answering with it.
type directory struct {
	mu        sync.Mutex
	points    []ringPoint // sorted by hash
	overrides map[string]int
}

type ringPoint struct {
	hash    uint64
	replica int
}

func newDirectory(replicas int) *directory {
	d := &directory{overrides: map[string]int{}}
	for r := 0; r < replicas; r++ {
		for v := 0; v < vnodesPerReplica; v++ {
			d.points = append(d.points, ringPoint{
				hash:    ringHash(fmt.Sprintf("replica-%d/%d", r, v)),
				replica: r,
			})
		}
	}
	sort.Slice(d.points, func(i, j int) bool { return d.points[i].hash < d.points[j].hash })
	return d
}

func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	// Without the finisher, FNV of short similar names ("src0", "src1",
	// ...) lands on nearby ring positions and whole MB pools pile onto
	// one replica; see mix64.
	return mix64(f.Sum64())
}

// owner resolves a middlebox name to its replica: an explicit assignment if
// a handoff recorded one, else the first ring point at or after the name's
// hash (wrapping).
func (d *directory) owner(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if r, ok := d.overrides[name]; ok {
		return r
	}
	h := ringHash(name)
	i := sort.Search(len(d.points), func(i int) bool { return d.points[i].hash >= h })
	if i == len(d.points) {
		i = 0
	}
	return d.points[i].replica
}

// assign records a handoff's new ownership.
func (d *directory) assign(name string, replica int) {
	d.mu.Lock()
	d.overrides[name] = replica
	d.mu.Unlock()
}

// removeReplica excises a dead replica from the directory: its ring points
// are pruned (names it owned by hash redistribute to the ring's survivors)
// and its explicit assignments are dropped (those names fall back to the
// pruned ring). After this, owner can never answer with the dead replica,
// which is what lets FailReplica pick migration targets by simply asking
// the directory.
func (d *directory) removeReplica(replica int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	kept := d.points[:0]
	for _, p := range d.points {
		if p.replica != replica {
			kept = append(kept, p)
		}
	}
	d.points = kept
	for name, r := range d.overrides {
		if r == replica {
			delete(d.overrides, name)
		}
	}
}
