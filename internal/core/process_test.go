package core

// Multi-process chaos: real openmb controller nodes in separate OS
// processes, real TCP between them, and kill = SIGKILL of an actual
// process. The child processes are this test binary re-executed into
// TestHelperNodeProcess (the standard helper-process pattern), which runs a
// cluster Node and takes commands on stdin; the middlebox runtimes live in
// the parent so per-flow conservation is asserted on real state the killed
// process cannot take with it.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// TestHelperNodeProcess is not a test: it is the body of the child
// processes spawned by the multi-process scenarios. Guarded by an
// environment variable so normal test runs skip it.
func TestHelperNodeProcess(t *testing.T) {
	if os.Getenv("OPENMB_HELPER_NODE") != "1" {
		t.Skip("helper process body")
	}
	n := NewNode(NodeOptions{
		Name:            os.Getenv("OPENMB_HELPER_NAME"),
		PeerCallTimeout: 400 * time.Millisecond,
		Cluster: ClusterOptions{
			Replicas:   1,
			Controller: Options{QuietPeriod: 60 * time.Millisecond},
		},
	})
	if err := n.Serve(sbi.TCPTransport{}, "127.0.0.1:0"); err != nil {
		fmt.Printf("ERR serve: %v\n", err)
		return
	}
	if join := os.Getenv("OPENMB_HELPER_JOIN"); join != "" {
		if err := n.Join(join); err != nil {
			fmt.Printf("ERR join: %v\n", err)
			return
		}
	}
	fmt.Printf("LISTEN %s\n", n.Addr())

	// Command loop: one line per command until stdin closes (the parent is
	// done with us). "move src dst" coordinates a cluster move here — the
	// scenario SIGKILLs this process mid-move, so the result line may never
	// be written.
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 3 && fields[0] == "move" {
			go func(src, dst string) {
				if err := n.MoveInternal(src, dst, packet.MatchAll); err != nil {
					fmt.Printf("MOVERR %v\n", err)
					return
				}
				fmt.Println("MOVED")
			}(fields[1], fields[2])
		}
	}
	n.Close()
}

// helperNode is one spawned child controller process.
type helperNode struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	addr  string
}

func spawnHelperNode(t *testing.T, name, join string) *helperNode {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperNodeProcess$", "-test.v")
	cmd.Env = append(os.Environ(),
		"OPENMB_HELPER_NODE=1",
		"OPENMB_HELPER_NAME="+name,
		"OPENMB_HELPER_JOIN="+join,
	)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("spawn %s: %v", name, err)
	}
	h := &helperNode{cmd: cmd, stdin: stdin}
	t.Cleanup(func() {
		_ = stdin.Close()
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	// The child announces its listener with a LISTEN line; everything else
	// on its stdout (go test chatter, MOVED/MOVERR results) is drained in
	// the background.
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		announced := false
		for sc.Scan() {
			line := sc.Text()
			if !announced && (strings.HasPrefix(line, "LISTEN ") || strings.HasPrefix(line, "ERR ")) {
				announced = true
				lines <- line
			}
		}
	}()
	select {
	case line := <-lines:
		if !strings.HasPrefix(line, "LISTEN ") {
			t.Fatalf("child %s failed to start: %s", name, line)
		}
		h.addr = strings.TrimPrefix(line, "LISTEN ")
	case <-time.After(30 * time.Second):
		t.Fatalf("child %s never announced its listener", name)
	}
	return h
}

func (h *helperNode) send(t *testing.T, cmd string) {
	t.Helper()
	if _, err := io.WriteString(h.stdin, cmd+"\n"); err != nil {
		t.Fatalf("command %q: %v", cmd, err)
	}
}

// sigkill terminates the child the hard way — no drain, no goodbye, the
// kernel reaps its sockets.
func (h *helperNode) sigkill(t *testing.T) {
	t.Helper()
	if err := h.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = h.cmd.Process.Wait()
}

// TestProcessKillMidMove is the kill-mid-move chaos scenario across real
// process boundaries: three controller nodes (one in-test, two spawned
// processes), middlebox runtimes in the parent registered to a child node,
// a move pinned provably mid-data-phase by a gated logic — and then SIGKILL
// of the coordinating process. The runtimes must fail over to the surviving
// node (its registration quorum-commits against the remaining majority; the
// killed node stays in the denominator), RecoverMove must roll back the
// orphaned half-move and re-run it, and every preloaded count and live
// packet must land exactly once, inside the recovery SLO.
func TestProcessKillMidMove(t *testing.T) {
	const flows, rounds = 30, 5
	n0 := NewNode(NodeOptions{
		Name:            "n0",
		PeerCallTimeout: 400 * time.Millisecond,
		Cluster: ClusterOptions{
			Replicas:   1,
			Controller: Options{QuietPeriod: 60 * time.Millisecond},
		},
	})
	if err := n0.Serve(sbi.TCPTransport{}, "127.0.0.1:0"); err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	t.Cleanup(n0.Close)

	n1 := spawnHelperNode(t, "n1", n0.Addr())
	spawnHelperNode(t, "n2", n0.Addr())
	waitUntil(t, 20*time.Second, "three-node mesh", func() bool {
		return len(n0.Peers()) == 2 && n0.KnownNodes() == 3
	})

	// Middlebox runtimes live HERE, in the parent — the killed process
	// cannot take the ground truth with it. They prefer the doomed child
	// and fail over to n0.
	gate := newGateLogic(10)
	dst := mbtest.NewCounterLogic(16)
	srcRT := attachNodeMB(t, "src0", gate, n1.addr+","+n0.Addr())
	dstRT := attachNodeMB(t, "dst0", dst, n1.addr+","+n0.Addr())
	waitUntil(t, 20*time.Second, "registrations committed at n1", func() bool {
		so, _ := n0.Lookup("src0")
		do, _ := n0.Lookup("dst0")
		return so == "n1" && do == "n1"
	})
	gate.Preload(flows)

	var traffic sync.WaitGroup
	traffic.Add(1)
	go func() {
		defer traffic.Done()
		for round := 0; round < rounds; round++ {
			for f := 0; f < flows; f++ {
				srcRT.HandlePacket(mbtest.PacketForFlow(f))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The child coordinates the move; the gate pins it mid-data-phase —
	// exported chunks in flight, marks set, events buffering — and then the
	// coordinator is SIGKILLed. Everything it knew (its transaction
	// registry, its routing state, its half of the handoff) dies with it.
	n1.send(t, "move src0 dst0")
	<-gate.reached
	start := time.Now()
	n1.sigkill(t)
	close(gate.release)

	// Failover: the runtimes redial down their candidate lists to n0,
	// whose commits still clear quorum (n0 + n2 of {n0, n1, n2}).
	if err := n0.Cluster.WaitForMB("src0", 15*time.Second); err != nil {
		t.Fatalf("src0 never failed over to the survivor: %v", err)
	}
	if err := n0.Cluster.WaitForMB("dst0", 15*time.Second); err != nil {
		t.Fatalf("dst0 never failed over to the survivor: %v", err)
	}
	if err := n0.RecoverMove("src0", "dst0", packet.MatchAll); err != nil {
		t.Fatalf("recover move after SIGKILL: %v", err)
	}
	recovery := time.Since(start)
	if recovery > recoverySLO {
		t.Fatalf("recovery took %v, SLO %v", recovery, recoverySLO)
	}
	for _, n := range []*Node{n0} {
		if owner, _ := n.Lookup("src0"); owner != "n0" {
			t.Fatalf("directory says %q owns src0 after failover, want n0", owner)
		}
	}

	traffic.Wait()
	for name, rt := range map[string]*mbox.Runtime{"src0": srcRT, "dst0": dstRT} {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
	if !n0.Cluster.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete after recovery")
	}
	for name, rt := range map[string]*mbox.Runtime{"src0": srcRT, "dst0": dstRT} {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain after txns", name)
		}
	}

	// Exact conservation across the process kill: 1 preloaded count +
	// `rounds` live packets per flow, each exactly once, across the orphaned
	// half-move, its rollback, and the recovered move.
	for f := 0; f < flows; f++ {
		k := mbtest.FlowN(f)
		if got := gate.Count(k) + dst.Count(k); got != rounds+1 {
			t.Fatalf("flow %d: combined count %d, want %d", f, got, rounds+1)
		}
	}
	if got := gate.Flows(); got != 0 {
		t.Fatalf("source still holds %d flows after recovered move", got)
	}
	if got := dst.Flows(); got != flows {
		t.Fatalf("destination holds %d flows, want %d", got, flows)
	}
	assertRoutersQuiescent(t, n0.Cluster)
	if got := n0.Cluster.registry.Live(); got != 0 {
		t.Fatalf("%d transactions leaked in the survivor's registry", got)
	}
}
