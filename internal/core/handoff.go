package core

import (
	"fmt"

	"openmb/internal/sbi"
)

// This file implements the cluster's live ownership-transfer (handoff)
// protocol: moving a middlebox — its connection and every piece of routing
// state the owning replica holds for it — to another replica without
// dropping, duplicating, or reordering a single event, even while moves
// from or to that middlebox are in flight.
//
// The mechanism is the paper's per-flow move discipline lifted one layer
// up. A move freezes a flow's event stream behind its put (buffer until
// ACK); a handoff freezes the whole flowspace of one MB behind the
// transfer:
//
//  1. FREEZE — take the connection's handoff write-lock. Every router
//     access on behalf of this MB (event routing from its read loop, chunk
//     registration, put ACKs, detach, disconnect purge) holds the read
//     side, so acquiring the write side waits for in-flight operations —
//     including a mid-flight ordered buffer drain — to finish, and blocks
//     new ones in arrival order.
//  2. TRANSFER — export the old replica's router entries for the MB (key
//     states with their unacknowledged put counts and buffered events,
//     plus orphans) as an sbi.OpTransferOwnership payload, and import it
//     into the new replica's router. Transactions stay alive on the
//     replica that started them; only their routing state moves. The SBI
//     message is the canonical serialized form — its Txns table carries
//     registry IDs, which the importer resolves back to live transactions
//     through the shared transaction registry, so the identical payload
//     works across a function call or a process boundary (core.Node puts
//     it on a peer wire).
//  3. SWITCH & REPLAY — retarget the connection's owner pointer, move the
//     registration between the replicas' tables, record the new ownership
//     in the directory, and release the lock. Blocked events resume in
//     order against the new owner's router; transferred buffers drain
//     through the new owner's ACK path exactly as they would have on the
//     old one.
//
// Loss-freedom and order preservation follow from two facts: an MB's
// events are delivered by a single read-loop goroutine (so blocking the
// routing step cannot reorder them), and under the write-lock there are no
// in-flight router operations (so the export is a complete snapshot).

// Rebalance moves the named middlebox to the given replica, live. It is
// safe to call while transactions involving the middlebox are in flight;
// the freeze window is the in-memory state transfer, microseconds in
// practice. Rebalancing onto the current owner is a no-op.
func (cl *Cluster) Rebalance(mbName string, target int) error {
	if target < 0 || target >= len(cl.replicas) {
		return fmt.Errorf("core: rebalance %q: no replica %d", mbName, target)
	}
	if cl.replicas[target].failed.Load() {
		return fmt.Errorf("core: rebalance %q: replica %d has failed", mbName, target)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	from, mb, err := cl.find(mbName)
	if err != nil {
		return err
	}
	to := cl.replicas[target]
	if from == to {
		cl.dir.assign(mbName, target)
		return nil
	}

	// FREEZE: wait out in-flight router operations, block new ones.
	mb.handoffMu.Lock()
	defer mb.handoffMu.Unlock()
	if mb.controller() != from {
		// The MB disconnected (and possibly reconnected elsewhere)
		// between find and the freeze; its cleanup won the race.
		return fmt.Errorf("core: rebalance %q: ownership changed mid-freeze", mbName)
	}
	from.mu.Lock()
	stillOwned := from.mbs[mbName] == mb
	from.mu.Unlock()
	if !stillOwned {
		return fmt.Errorf("core: rebalance %q: disconnected mid-freeze", mbName)
	}

	// TRANSFER: old router -> ownership-transfer payload -> new router,
	// with transactions resolved back through the shared registry by wire
	// ID — the same path a payload that crossed a process boundary takes.
	h := from.router.exportHandoff(mb)
	if _, err := to.router.importHandoff(mb, h, cl.registry); err != nil {
		// Unreachable for a locally built payload (export produces a
		// consistent table); restore rather than strand the state.
		_, _ = from.router.importHandoff(mb, h, cl.registry)
		return err
	}

	// SWITCH, ordered so the directory never names a replica whose table
	// lacks the middlebox: insert at the target, repoint the directory,
	// only then remove from the old owner. A connection announcing the
	// same name mid-switch is therefore always routed to a replica that
	// still holds it and rejected as a duplicate — deleting first would
	// open a window where a second live connection registers under the
	// name. find() may briefly see both entries; owner-first resolution
	// returns the right one.
	to.mu.Lock()
	if _, dup := to.mbs[mbName]; dup {
		to.mu.Unlock()
		// Pull the just-imported state back to the old owner before
		// aborting, so nothing is stranded on a replica that will never
		// own the connection.
		restored := to.router.exportHandoff(mb)
		_, _ = from.router.importHandoff(mb, restored, cl.registry)
		return fmt.Errorf("core: rebalance %q: name already registered at replica %d", mbName, target)
	}
	to.mbs[mbName] = mb
	to.mu.Unlock()
	mb.ctrl.Store(to)
	cl.dir.assign(mbName, target)
	to.wakeWaiters(mbName)
	from.mu.Lock()
	delete(from.mbs, mbName)
	from.mu.Unlock()
	cl.handoffs.Add(1)
	return nil
}

// Drain hands every middlebox off the given replica to the other replicas,
// round-robin — the scale-down / maintenance path. The replica keeps
// finishing transactions it started; it just stops owning connections.
func (cl *Cluster) Drain(replica int) error {
	if replica < 0 || replica >= len(cl.replicas) {
		return fmt.Errorf("core: drain: no replica %d", replica)
	}
	if len(cl.replicas) == 1 {
		return fmt.Errorf("core: drain: cannot drain the only replica")
	}
	live := 0
	for j, c := range cl.replicas {
		if j != replica && !c.failed.Load() {
			live++
		}
	}
	if live == 0 {
		return fmt.Errorf("core: drain: no live replica to drain to")
	}
	names := cl.replicas[replica].Middleboxes()
	next := 0
	for _, name := range names {
		// Skip the drained replica and any replica declared failed.
		for next == replica || cl.replicas[next].failed.Load() {
			next = (next + 1) % len(cl.replicas)
		}
		if err := cl.Rebalance(name, next); err != nil {
			return err
		}
		next = (next + 1) % len(cl.replicas)
	}
	return nil
}

// handoffMessage renders an export as the full SBI request frame — the form
// a cross-process cluster would put on the wire. Exposed for the codec
// round-trip tests, which prove both codecs carry a live handoff intact.
func handoffMessage(h *sbi.Handoff) *sbi.Message {
	return &sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpTransferOwnership, Handoff: h}
}
