package core_test

// Regression tests for the move-completion / event-publication race the
// flash-crowd elasticity eval exposed: a slow consumer can still be draining
// marked packets off its ingress ring when the transaction's quiet period
// expires. The source's updates for those packets are destroyed by the
// quiet-period delete, so their reprocess events are the only surviving
// record — if the transaction detaches before they are routed, they are
// purged as orphans and the packets vanish from the moved state. The fix is
// a two-sided barrier: the source acks a mark-clearing op only after every
// event decided under the old marks is flushed to the wire (mbox
// syncEvents), and the controller routes everything received ahead of that
// ack before detaching (mbConn.drainEvents).

import (
	"sync/atomic"
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
)

// gatedCounter wedges the packet worker once, AFTER the wrapped logic has
// updated state and made its Touch (raise) decision but BEFORE the runtime
// enqueues the reprocess event — the widest version of the window between a
// packet's mark check and its event hitting the wire.
type gatedCounter struct {
	*mbtest.CounterLogic
	gate  chan struct{}
	armed atomic.Bool
}

func (l *gatedCounter) Process(ctx *mbox.Context, p *packet.Packet) {
	l.CounterLogic.Process(ctx, p)
	if l.armed.CompareAndSwap(true, false) {
		<-l.gate
	}
}

// TestMoveCompletionWaitsForInFlightEvent pins the loss-freedom contract
// under the race: the quiet-period delete must not outrun a reprocess event
// still inside the worker. Without the publication barrier the timeline is
// deterministic — quiet fires while the worker is wedged mid-packet, the
// delete destroys the packet's update at the source, the transaction
// detaches, and the event (enqueued on release) arrives post-detach and is
// purged as an orphan: the packet is counted nowhere.
func TestMoveCompletionWaitsForInFlightEvent(t *testing.T) {
	r := newRig(t, core.Options{QuietPeriod: 40 * time.Millisecond})
	logic := &gatedCounter{CounterLogic: mbtest.NewCounterLogic(16), gate: make(chan struct{})}
	rt := mbox.New("gsrc", logic, mbox.Options{})
	t.Cleanup(rt.Close)
	if err := rt.Connect(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.WaitForMB("gsrc", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	key := mbtest.FlowN(0).Canonical()
	logic.Preload(1)

	// Snapshot + put complete here; the background quiet-period delete is
	// now armed and the flow's key is marked at the source.
	if err := r.ctrl.MoveInternal("gsrc", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}

	// One more packet for the marked flow, wedged after its state update
	// and raise decision. The update is doomed (the delete will destroy
	// it), so its event MUST reach the destination.
	logic.armed.Store(true)
	rt.HandlePacket(mbtest.PacketForFlow(0))
	deadline := time.Now().Add(2 * time.Second)
	for logic.Count(key) != 2 {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the wedge")
		}
		time.Sleep(time.Millisecond)
	}

	// Let the quiet period expire with the event still unpublished, then
	// release the worker.
	time.Sleep(150 * time.Millisecond)
	close(logic.gate)

	if !rt.Drain(10 * time.Second) {
		t.Fatal("source never drained")
	}
	if !r.ctrl.WaitTxns(10 * time.Second) {
		t.Fatal("transactions never settled")
	}

	src, dst := logic.Count(key), r.dst.Count(key)
	if src+dst != 2 {
		t.Fatalf("flow counted %d (src %d + dst %d), want 2: the wedged packet's event was lost to the quiet-period delete",
			src+dst, src, dst)
	}
	if dst != 2 {
		t.Fatalf("destination holds %d, want 2 (snapshot 1 + replayed wedge packet); source still holds %d", dst, src)
	}
}

// TestMoveSlowConsumerConservation is the statistical cousin: a latency-bound
// logic (1 ms per packet) accumulates a deep ring backlog of marked-flow
// packets, so reprocess events keep streaming long after the move's put
// phase completes. However the quiet period lands relative to that stream,
// every packet must end up counted exactly once across source and
// destination.
func TestMoveSlowConsumerConservation(t *testing.T) {
	const (
		flows   = 4
		perFlow = 25
	)
	r := newRig(t, core.Options{QuietPeriod: 40 * time.Millisecond})
	logic := &slowCounter{CounterLogic: mbtest.NewCounterLogic(16), wait: time.Millisecond}
	rt := mbox.New("ssrc", logic, mbox.Options{QueueSize: flows * perFlow})
	t.Cleanup(rt.Close)
	if err := rt.Connect(r.tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := r.ctrl.WaitForMB("ssrc", 2*time.Second); err != nil {
		t.Fatal(err)
	}
	logic.Preload(flows)

	// Fill the ring before the move so the snapshot races a deep backlog,
	// interleaving flows so marked packets keep surfacing until the end.
	for i := 0; i < perFlow; i++ {
		for f := 0; f < flows; f++ {
			rt.HandlePacket(mbtest.PacketForFlow(f))
		}
	}
	if err := r.ctrl.MoveInternal("ssrc", "dst", packet.MatchAll); err != nil {
		t.Fatal(err)
	}
	if !rt.Drain(30 * time.Second) {
		t.Fatal("source never drained")
	}
	if !r.ctrl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions never settled")
	}
	if m := rt.Metrics(); m.DroppedPackets != 0 || m.DroppedReplays != 0 {
		t.Fatalf("ring shed %d/%d packets; the conservation audit needs a loss-free run", m.DroppedPackets, m.DroppedReplays)
	}

	for f := 0; f < flows; f++ {
		key := mbtest.FlowN(f).Canonical()
		src, dst := logic.Count(key), r.dst.Count(key)
		if src+dst != 1+perFlow {
			t.Fatalf("flow %d counted %d (src %d + dst %d), want %d (preload 1 + %d injected)",
				f, src+dst, src, dst, 1+perFlow, perFlow)
		}
	}
}

// slowCounter delays each packet before the wrapped logic runs: a
// latency-bound middlebox (an external-lookup DPI box) whose worker drains
// its ring far slower than packets arrive.
type slowCounter struct {
	*mbtest.CounterLogic
	wait time.Duration
}

func (l *slowCounter) Process(ctx *mbox.Context, p *packet.Packet) {
	time.Sleep(l.wait)
	l.CounterLogic.Process(ctx, p)
}
