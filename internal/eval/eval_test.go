package eval

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func mustRun(t *testing.T, run func() (*Table, error)) *Table {
	t.Helper()
	tbl, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s: empty table", tbl.ID)
	}
	out := tbl.Render()
	if !strings.Contains(out, tbl.ID) {
		t.Fatalf("render missing id: %s", out)
	}
	t.Logf("\n%s", out)
	return tbl
}

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tbl.ID, row, col)
	}
	return tbl.Rows[row][col]
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("not an int: %q", s)
	}
	return v
}

func TestFigure8Shape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return Figure8FlowDurationCDF(Figure8Config{Flows: 3000}) })
	// The note carries the tail fraction; check it lands near 9%.
	found := false
	for _, n := range tbl.Notes {
		if strings.HasPrefix(n, "P(duration > 1500 s)") {
			found = true
			var frac float64
			if _, err := fmtSscanf(n, &frac); err != nil {
				t.Fatalf("parse note %q: %v", n, err)
			}
			if frac < 0.05 || frac > 0.14 {
				t.Fatalf("tail fraction %v outside [0.05,0.14]", frac)
			}
		}
	}
	if !found {
		t.Fatal("tail note missing")
	}
}

func fmtSscanf(n string, frac *float64) (int, error) {
	idx := strings.Index(n, "= ")
	rest := n[idx+2:]
	end := strings.IndexByte(rest, ' ')
	v, err := strconv.ParseFloat(rest[:end], 64)
	*frac = v
	return 1, err
}

func TestTable2Classifications(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return Table2Applicability() })
	if cell(t, tbl, 0, 1) != "Y" || cell(t, tbl, 0, 2) != "Y" || cell(t, tbl, 0, 3) != "Y" {
		t.Fatal("SDMBN must be fully supported")
	}
	if cell(t, tbl, 1, 2) != "N" {
		t.Fatal("snapshot scale-down must be unsupported")
	}
}

func TestTable3Shape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return Table3REMigration(Table3Config{}) })
	sdmbnEnc := atoi(t, cell(t, tbl, 0, 1))
	sdmbnUndec := atoi(t, cell(t, tbl, 0, 2))
	cfgEnc := atoi(t, cell(t, tbl, 1, 1))
	cfgUndec := atoi(t, cell(t, tbl, 1, 2))
	if sdmbnUndec != 0 {
		t.Fatalf("SDMBN undecodable: %d", sdmbnUndec)
	}
	if cfgUndec == 0 {
		t.Fatal("config+routing should have undecodable bytes")
	}
	if sdmbnEnc <= cfgEnc {
		t.Fatalf("SDMBN should encode more than config+routing: %d vs %d", sdmbnEnc, cfgEnc)
	}
}

func TestFigure9Shape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return Figure9GetPut(Figure9Config{ChunkCounts: []int{100, 400}}) })
	// 4 rows: prads x2, bro x2. Get must grow with chunks for each MB.
	getAt := func(row int) time.Duration {
		d, err := time.ParseDuration(cell(t, tbl, row, 2))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if getAt(1) <= getAt(0) {
		t.Fatalf("prads get not growing: %v vs %v", getAt(0), getAt(1))
	}
	if getAt(3) <= getAt(2) {
		t.Fatalf("bro get not growing: %v vs %v", getAt(2), getAt(3))
	}
}

func TestFigure9EventsGrowWithRate(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) {
		return Figure9Events(Figure9EventsConfig{
			ChunkCounts: []int{100}, Rates: []int{400, 2000}, Window: 100 * time.Millisecond,
		}, false)
	})
	low := atoi(t, cell(t, tbl, 0, 2))
	high := atoi(t, cell(t, tbl, 1, 2))
	if high <= low {
		t.Fatalf("events should grow with rate: %d (400pps) vs %d (2000pps)", low, high)
	}
}

func TestFigure10aShape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return Figure10aSingleMove(Figure10aConfig{ChunkCounts: []int{300, 1200}}) })
	at := func(row, col int) time.Duration {
		d, err := time.ParseDuration(cell(t, tbl, row, col))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if at(1, 1) <= at(0, 1) {
		t.Fatalf("move time not growing with chunks: %v vs %v", at(0, 1), at(1, 1))
	}
}

func TestFigure10bRuns(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) {
		return Figure10bConcurrentMoves(Figure10bConfig{Concurrency: []int{1, 4}, ChunkCounts: []int{400}})
	})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestRebalanceUnderLoadRuns(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) {
		return RebalanceUnderLoad(RebalanceConfig{Pairs: 2, Chunks: 300, Replicas: []int{1, 3}, Handoffs: 2})
	})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// The ablation row performs no handoffs; the replicated row must have
	// performed at least one (the scenario itself asserts loss-freedom).
	if got := cell(t, tbl, 0, 3); got != "0" {
		t.Fatalf("replicas=1 performed handoffs: %s", got)
	}
	if got := atoi(t, cell(t, tbl, 1, 3)); got < 1 {
		t.Fatalf("replicas=3 performed no handoffs")
	}
}

func TestRecoveryUnderFailureRuns(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) {
		return RecoveryUnderFailure(ChaosConfig{Pairs: 2, Chunks: 300})
	})
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// Clean rows report no recovery window; the chaos row must (the
	// scenario itself asserts loss-freedom and that every move returned).
	if got := cell(t, tbl, 0, 5); got != "-" {
		t.Fatalf("baseline reported a recovery time: %s", got)
	}
	if got := cell(t, tbl, 2, 5); got == "-" || got == "0s" {
		t.Fatalf("chaos row reported no recovery time: %s", got)
	}
	if got := cell(t, tbl, 2, 0); got != "on" {
		t.Fatalf("chaos row faults cell: %s", got)
	}
}

func TestSnapshotComparisonShape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return SnapshotComparison(60, 40) })
	full := atoi(t, cell(t, tbl, 1, 1))
	baseSz := atoi(t, cell(t, tbl, 0, 1))
	moved := atoi(t, cell(t, tbl, 5, 1))
	if full <= baseSz {
		t.Fatal("FULL image should exceed BASE")
	}
	if moved >= full-baseSz {
		t.Fatalf("SDMBN-moved bytes (%d) should be less than the full delta (%d)", moved, full-baseSz)
	}
	// Anomalous entries recorded in the notes.
	if !strings.Contains(strings.Join(tbl.Notes, " "), "incorrect") {
		t.Fatal("anomalous-entry note missing")
	}
}

func TestSplitMergeBufferingShape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return SplitMergeBuffering(400, 2000) })
	var buffered int
	for _, row := range tbl.Rows {
		if row[0] == "packets buffered" {
			buffered = atoi(t, row[1])
		}
	}
	if buffered == 0 {
		t.Fatal("no packets buffered during halt window")
	}
}

func TestCorrectnessDiffZero(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return CorrectnessDiff(61, 30) })
	for _, row := range tbl.Rows {
		if row[len(row)-1] != "0" {
			t.Fatalf("mismatches in %v", row)
		}
	}
}

func TestLatencyDuringGetBounded(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return LatencyDuringGet(200, 1000) })
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestCompressionAblationShape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return CompressionAblation(150) })
	plain, _ := strconv.Atoi(cell(t, tbl, 0, 2))
	comp, _ := strconv.Atoi(cell(t, tbl, 1, 2))
	if comp >= plain {
		t.Fatalf("compression did not shrink transfers: %d vs %d", comp, plain)
	}
}

func TestAblationLinearScanGrows(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return AblationLinearScan(50, []int{1000, 16000}) })
	at := func(row int) time.Duration {
		d, err := time.ParseDuration(cell(t, tbl, row, 2))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if at(1) <= at(0) {
		t.Fatalf("scan time should grow with table size: %v vs %v", at(0), at(1))
	}
}

func TestFigure7Runs(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) {
		return Figure7ScaleUpTimeline(Figure7Config{
			Duration: 500 * time.Millisecond, MoveAt: 150 * time.Millisecond,
			Bucket: 50 * time.Millisecond, Rate: 2000,
		})
	})
	// The new instance must take over packets after the move.
	tookOver := false
	for _, row := range tbl.Rows {
		if atoi(t, row[2]) > 0 {
			tookOver = true
		}
	}
	if !tookOver {
		t.Fatal("new instance never processed packets")
	}
}

func TestFlashCrowdRuns(t *testing.T) {
	// Default (quick) scale, both rows. The experiment self-asserts the
	// hard contract — loop-on must be loss-free with exact per-flow
	// conservation and at least one scale-out AND scale-in; loop-off must
	// shed — so this test only re-checks the rendered shape.
	tbl := mustRun(t, func() (*Table, error) {
		return FlashCrowd(FlashCrowdConfig{})
	})
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	if got := cell(t, tbl, 0, 0); got != "on" {
		t.Fatalf("row 0 loop cell: %s", got)
	}
	if atoi(t, cell(t, tbl, 0, 3)) < 1 || atoi(t, cell(t, tbl, 0, 4)) < 1 {
		t.Fatalf("loop-on row shows no scaling: %v", tbl.Rows[0])
	}
	if atoi(t, cell(t, tbl, 0, 5)) != 0 {
		t.Fatalf("loop-on row shed packets: %v", tbl.Rows[0])
	}
	if atoi(t, cell(t, tbl, 1, 2)) != 1 || atoi(t, cell(t, tbl, 1, 5)) == 0 {
		t.Fatalf("frozen ablation row did not shed on one member: %v", tbl.Rows[1])
	}
	if atoi(t, cell(t, tbl, 0, 2)) < 2 {
		t.Fatalf("loop-on fleet never grew: %v", tbl.Rows[0])
	}
}
