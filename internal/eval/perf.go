package eval

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"openmb/internal/baseline"
	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/ips"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/mbox/monitor"
	"openmb/internal/netsim"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
	"openmb/internal/trace"
)

// pktSource supplies the per-event packets the paced injection loops feed
// middleboxes. On the zero-copy path (netsim.ZeroCopyDefault, i.e.
// OPENMB_ZEROCOPY or -zerocopy) every packet is a pooled clone of a prebuilt
// template — recycled as soon as the runtime releases it, so steady-state
// replay allocates nothing. Otherwise each event gets a fresh heap packet,
// the seed's behaviour and the measurable ablation.
type pktSource struct {
	pool      *packet.Pool
	templates []*packet.Packet
}

// newPktSource prepares a source cycling over the given number of flows.
func newPktSource(flows int) *pktSource {
	if !netsim.ZeroCopyDefault() {
		return &pktSource{}
	}
	s := &pktSource{pool: packet.NewPool(packet.PoolOptions{})}
	s.templates = make([]*packet.Packet, flows)
	for i := range s.templates {
		s.templates[i] = mbtest.PacketForFlow(i)
	}
	return s
}

// packetFor returns the i-th event's packet (caller owns one reference; the
// receiving runtime releases it after processing).
func (s *pktSource) packetFor(i int) *packet.Packet {
	if s.pool == nil {
		return mbtest.PacketForFlow(i)
	}
	return s.pool.Clone(s.templates[i%len(s.templates)])
}

// preloadMonitor fills a monitor with n distinct flows.
func preloadMonitor(m *monitor.Monitor, n int) *mbox.Runtime {
	rt := mbox.New("pre", m, mbox.Options{})
	for i := 0; i < n; i++ {
		rt.HandlePacket(mbtest.PacketForFlow(i))
	}
	rt.Drain(60 * time.Second)
	return rt
}

// preloadIPS fills an IPS with n distinct connections including HTTP
// analyzer state, making chunks deep as in Bro.
func preloadIPS(i *ips.IPS, n int) *mbox.Runtime {
	rt := mbox.New("pre", i, mbox.Options{})
	for f := 0; f < n; f++ {
		base := mbtest.PacketForFlow(f)
		syn := base.Clone()
		syn.Flags = packet.FlagSYN
		req := base.Clone()
		req.Flags = packet.FlagACK
		req.Payload = []byte("GET /deep/state HTTP/1.1\r\nHost: example.com\r\n")
		rt.HandlePacket(syn)
		rt.HandlePacket(req)
	}
	rt.Drain(60 * time.Second)
	return rt
}

// measureGetPut runs one get of all per-flow state of class on src (timing
// it), then puts every chunk to dst (timing the full pipelined put stream).
func measureGetPut(srcLogic, dstLogic mbox.Logic, class state.Class) (getTime, putTime time.Duration, chunks int, err error) {
	src, err := newDirectMB("src", srcLogic)
	if err != nil {
		return 0, 0, 0, err
	}
	defer src.close()
	dst, err := newDirectMB("dst", dstLogic)
	if err != nil {
		return 0, 0, 0, err
	}
	defer dst.close()

	getOp, putOp := sbi.OpGetSupportPerflow, sbi.OpPutSupportPerflow
	if class == state.Reporting {
		getOp, putOp = sbi.OpGetReportPerflow, sbi.OpPutReportPerflow
	}

	var collected []state.Chunk
	start := time.Now()
	id, err := src.request(&sbi.Message{Type: sbi.MsgRequest, Op: getOp, Match: packet.MatchAll, Batch: transferBatch})
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := src.collect(id, 120*time.Second, func(m *sbi.Message) {
		m.EachChunk(func(c *state.Chunk) { collected = append(collected, *c) })
	}); err != nil {
		return 0, 0, 0, err
	}
	getTime = time.Since(start)

	start = time.Now()
	// Pipelined puts, batched per the transfer tuning: issue all frames,
	// then await all ACKs (Figure 5's stream). Framing reuses the same
	// sbi helper the controller's move pipeline is built on, so the
	// harness measures the production batching rather than a copy of it.
	var ids []uint64
	if err := sbi.FrameChunks(collected, transferBatch, func(frame []state.Chunk) error {
		put := &sbi.Message{Type: sbi.MsgRequest, Op: putOp}
		put.SetChunks(frame)
		pid, err := dst.request(put)
		if err != nil {
			return err
		}
		ids = append(ids, pid)
		return nil
	}); err != nil {
		return 0, 0, 0, err
	}
	acked := map[uint64]bool{}
	deadline := time.After(120 * time.Second)
	for len(acked) < len(ids) {
		select {
		case m, ok := <-dst.replies:
			if !ok {
				return 0, 0, 0, fmt.Errorf("eval: put connection closed")
			}
			if m.Type == sbi.MsgError {
				return 0, 0, 0, fmt.Errorf("eval: put failed: %s", m.Error)
			}
			if m.Type == sbi.MsgDone {
				acked[m.ID] = true
			}
		case <-deadline:
			return 0, 0, 0, fmt.Errorf("eval: put ACKs timed out (%d/%d)", len(acked), len(ids))
		}
	}
	putTime = time.Since(start)
	return getTime, putTime, len(collected), nil
}

// Figure9Config parameterizes the get/put measurements.
type Figure9Config struct {
	ChunkCounts []int // default {250, 500, 1000}
}

func (c *Figure9Config) setDefaults() {
	if len(c.ChunkCounts) == 0 {
		c.ChunkCounts = []int{250, 500, 1000}
	}
}

// Figure9GetPut reproduces Figures 9(a) and 9(b): time to complete a single
// get (all chunks streamed) and all corresponding puts, for PRADS-like and
// Bro-like middleboxes, versus the number of per-flow chunks. Expected
// shapes: linear growth in chunks; gets cost several times more than puts
// (linear table scan versus hash insert); Bro costs more than PRADS (deep
// serialized analyzer trees versus flat records).
func Figure9GetPut(cfg Figure9Config) (*Table, error) {
	cfg.setDefaults()
	t := &Table{
		ID:      "F9ab",
		Title:   "getPerflow / putPerflow time per operation",
		Columns: []string{"mb", "chunks", "get", "put", "get/put"},
	}
	for _, n := range cfg.ChunkCounts {
		mon := monitor.New()
		preloadMonitor(mon, n).Close()
		get, put, chunks, err := measureGetPut(mon, monitor.New(), state.Reporting)
		if err != nil {
			return nil, err
		}
		if chunks != n {
			return nil, fmt.Errorf("eval: monitor exported %d chunks, want %d", chunks, n)
		}
		t.AddRow("prads", n, get, put, ratio(get, put))
	}
	for _, n := range cfg.ChunkCounts {
		b := ips.New()
		preloadIPS(b, n).Close()
		get, put, chunks, err := measureGetPut(b, ips.New(), state.Supporting)
		if err != nil {
			return nil, err
		}
		if chunks != n {
			return nil, fmt.Errorf("eval: ips exported %d chunks, want %d", chunks, n)
		}
		t.AddRow("bro", n, get, put, ratio(get, put))
	}
	t.Notes = append(t.Notes, "paper: linear in chunks; put ≈6x cheaper than get; Bro slower than PRADS")
	return t, nil
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// Figure9EventsConfig parameterizes the events-generated measurement.
type Figure9EventsConfig struct {
	ChunkCounts []int         // default {250, 500, 1000}
	Rates       []int         // packets/s, default {500, 1000, 1500, 2000, 2500}
	Window      time.Duration // post-get window until "routing update" (default 150 ms)
}

func (c *Figure9EventsConfig) setDefaults() {
	if len(c.ChunkCounts) == 0 {
		c.ChunkCounts = []int{250, 500, 1000}
	}
	if len(c.Rates) == 0 {
		c.Rates = []int{500, 1000, 1500, 2000, 2500}
	}
	if c.Window == 0 {
		c.Window = 150 * time.Millisecond
	}
}

// Figure9Events reproduces Figures 9(c)/9(d): the number of reprocess events
// generated during a move, versus packet rate and chunk count. Events are
// raised for packets arriving between the start of the get and the routing
// update taking effect; their count grows linearly with the packet rate.
func Figure9Events(cfg Figure9EventsConfig, deep bool) (*Table, error) {
	cfg.setDefaults()
	name, id := "prads", "F9c"
	if deep {
		name, id = "bro", "F9d"
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("reprocess events generated by %s during moveInternal", name),
		Columns: []string{"rate_pps", "chunks", "events"},
	}
	for _, n := range cfg.ChunkCounts {
		for _, rate := range cfg.Rates {
			var logic mbox.Logic
			if deep {
				b := ips.New()
				preloadIPS(b, n).Close()
				logic = b
			} else {
				m := monitor.New()
				preloadMonitor(m, n).Close()
				logic = m
			}
			events, err := countMoveEvents(logic, n, rate, cfg.Window)
			if err != nil {
				return nil, err
			}
			t.AddRow(rate, n, events)
		}
	}
	t.Notes = append(t.Notes, "paper: events grow linearly with packet rate (more packets land in the move-to-reroute window)")
	return t, nil
}

// countMoveEvents performs a get on a connected middlebox while injecting
// packets at the given rate, continuing for the post-get window, and returns
// the reprocess events raised.
func countMoveEvents(logic mbox.Logic, flows, rate int, window time.Duration) (uint64, error) {
	d, err := newDirectMB("src", logic)
	if err != nil {
		return 0, err
	}
	defer d.close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	src := newPktSource(flows)
	go func() {
		defer wg.Done()
		pace(rate, stop, func(i int) {
			p := src.packetFor(i % flows)
			p.Flags = packet.FlagACK
			d.rt.HandlePacket(p)
		})
	}()

	getOp := sbi.OpGetReportPerflow
	if logic.Kind() == ips.Kind {
		getOp = sbi.OpGetSupportPerflow
	}
	id, err := d.request(&sbi.Message{Type: sbi.MsgRequest, Op: getOp, Match: packet.MatchAll, Batch: transferBatch})
	if err != nil {
		close(stop)
		wg.Wait()
		return 0, err
	}
	if _, err := d.collect(id, 120*time.Second, nil); err != nil {
		close(stop)
		wg.Wait()
		return 0, err
	}
	// The window between get completion and the routing update.
	time.Sleep(window)
	close(stop)
	wg.Wait()
	d.rt.Drain(30 * time.Second)
	// The move window's wire behaviour: the MB-side connection carried the
	// chunk stream and every coalesced event frame.
	recordWire(d.rt.WireCounters())
	return d.rt.Metrics().EventsRaised, nil
}

// Figure10aConfig parameterizes the single-move controller measurement.
type Figure10aConfig struct {
	ChunkCounts []int // default {1000, 5000, 10000, 15000, 20000, 25000}
	EventRate   int   // packets/s during the with-events runs (default 2000)
}

func (c *Figure10aConfig) setDefaults() {
	if len(c.ChunkCounts) == 0 {
		c.ChunkCounts = []int{1000, 5000, 10000, 15000, 20000, 25000}
	}
	if c.EventRate == 0 {
		c.EventRate = 2000
	}
}

// Figure10aSingleMove reproduces Figure 10(a): time per moveInternal versus
// the number of state chunks, with and without events, using dummy MBs
// (202-byte chunks) so the controller dominates. Expected shape: linear in
// chunks; events add a bounded overhead (the paper: at most 9%).
func Figure10aSingleMove(cfg Figure10aConfig) (*Table, error) {
	cfg.setDefaults()
	t := &Table{
		ID:      "F10a",
		Title:   "controller: time per moveInternal vs chunks (dummy MBs)",
		Columns: []string{"chunks", "without_events", "with_events", "overhead"},
	}
	for _, n := range cfg.ChunkCounts {
		without, err := bestMove(n, 0)
		if err != nil {
			return nil, err
		}
		with, err := bestMove(n, cfg.EventRate)
		if err != nil {
			return nil, err
		}
		overhead := "0%"
		if without > 0 {
			overhead = fmt.Sprintf("%.0f%%", 100*float64(with-without)/float64(without))
		}
		t.AddRow(n, without, with, overhead)
	}
	t.Notes = append(t.Notes, "paper: linear in migrated state; events increase operation time by at most 9%")
	return t, nil
}

// bestMove runs timeMove three times and keeps the minimum, suppressing
// scheduler noise at small chunk counts.
func bestMove(n, eventRate int) (time.Duration, error) {
	best := time.Duration(0)
	for i := 0; i < 3; i++ {
		d, err := timeMove(n, eventRate)
		if err != nil {
			return 0, err
		}
		if i == 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// timeMove runs one MoveInternal between two dummy MBs with n preloaded
// chunks, injecting packets at eventRate (0 = no traffic) during the move.
func timeMove(n, eventRate int) (time.Duration, error) {
	r, err := newRig(core.Options{QuietPeriod: 50 * time.Millisecond})
	if err != nil {
		return 0, err
	}
	defer r.close()
	src := mbtest.NewCounterLogic(202)
	dst := mbtest.NewCounterLogic(202)
	src.Preload(n)
	srcRT, err := r.add("src", src)
	if err != nil {
		return 0, err
	}
	if _, err := r.add("dst", dst); err != nil {
		return 0, err
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	if eventRate > 0 {
		wg.Add(1)
		pkts := newPktSource(n)
		go func() {
			defer wg.Done()
			pace(eventRate, stop, func(i int) {
				srcRT.HandlePacket(pkts.packetFor(i % n))
			})
		}()
	}
	start := time.Now()
	err = r.ctrl.MoveInternal("src", "dst", packet.MatchAll)
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	if err != nil {
		return 0, err
	}
	r.ctrl.WaitTxns(60 * time.Second)
	return elapsed, nil
}

// Figure10bConfig parameterizes the concurrent-move measurement.
type Figure10bConfig struct {
	Concurrency []int // default {1, 2, 4, 8, 16, 32, 64}
	ChunkCounts []int // default {1000, 2000, 3000}
	// Shards sets the controller's transaction-router shard count for the
	// sweep: 0 (the default) uses the active transfer tuning (OPENMB_SHARDS
	// or -shards, else the controller's GOMAXPROCS-derived default), and 1
	// is the serialized ablation that reproduces the seed's single-lock
	// transaction path — run both to see what sharding buys at high
	// concurrency.
	Shards int
}

func (c *Figure10bConfig) setDefaults() {
	if len(c.Concurrency) == 0 {
		c.Concurrency = []int{1, 2, 4, 8, 16, 32, 64}
	}
	if len(c.ChunkCounts) == 0 {
		c.ChunkCounts = []int{1000, 2000, 3000}
	}
}

// Figure10bConcurrentMoves reproduces Figure 10(b): average time per move
// versus the number of simultaneous moves, for several chunk counts.
// Expected shape: average move time grows with both concurrency and state;
// with the sharded transaction router the growth stays near-linear where the
// serialized (shards=1) baseline degrades super-linearly.
func Figure10bConcurrentMoves(cfg Figure10bConfig) (*Table, error) {
	cfg.setDefaults()
	t := &Table{
		ID:      "F10b",
		Title:   "controller: avg time per moveInternal vs simultaneous moves",
		Columns: []string{"simultaneous", "chunks", "shards", "avg_move"},
	}
	for _, chunks := range cfg.ChunkCounts {
		for _, k := range cfg.Concurrency {
			avg, shards, err := timeConcurrentMoves(k, chunks, cfg.Shards)
			if err != nil {
				return nil, err
			}
			t.AddRow(k, chunks, shards, avg)
		}
	}
	t.Notes = append(t.Notes,
		"paper: avg move time increases linearly with simultaneous operations and chunk count",
		"shards=1 is the serialized ablation (seed transaction path); compare against the sharded default")
	return t, nil
}

// timeConcurrentMoves runs `pairs` simultaneous moves of `chunks` chunks each
// and returns the average move latency plus the controller's resolved shard
// count.
func timeConcurrentMoves(pairs, chunks, shards int) (time.Duration, int, error) {
	r, err := newRig(core.Options{QuietPeriod: 50 * time.Millisecond, Shards: shards})
	if err != nil {
		return 0, 0, err
	}
	defer r.close()
	for i := 0; i < pairs; i++ {
		src := mbtest.NewCounterLogic(202)
		src.Preload(chunks)
		if _, err := r.add(fmt.Sprintf("src%d", i), src); err != nil {
			return 0, 0, err
		}
		if _, err := r.add(fmt.Sprintf("dst%d", i), mbtest.NewCounterLogic(202)); err != nil {
			return 0, 0, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, pairs)
	times := make([]time.Duration, pairs)
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			errs[i] = r.ctrl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
			times[i] = time.Since(start)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	r.ctrl.WaitTxns(120 * time.Second)
	var sum time.Duration
	for _, d := range times {
		sum += d
	}
	return sum / time.Duration(pairs), r.ctrl.Shards(), nil
}

// SnapshotComparison reproduces the §8.1.2 snapshot experiment: image-size
// deltas for BASE/FULL/HTTP/OTHER images of a Bro-like IPS, the state SDMBN
// would move, and the incorrect conn.log entries caused by unneeded state
// after a snapshot-based migration.
func SnapshotComparison(seed int64, flows int) (*Table, error) {
	if flows == 0 {
		flows = 60
	}
	tr := trace.Cloud(trace.CloudConfig{Seed: seed, Flows: flows})
	httpMatch := trace.HTTPMatch()

	feed := func(pkts []*packet.Packet, only func(*packet.Packet) bool) *ips.IPS {
		b := ips.New()
		rt := mbox.New("b", b, mbox.Options{})
		for _, p := range pkts {
			if only == nil || only(p) {
				rt.HandlePacket(p)
			}
		}
		rt.Drain(60 * time.Second)
		rt.Close()
		return b
	}
	isHTTP := func(p *packet.Packet) bool { return httpMatch.MatchEither(p.Flow()) }
	isOther := func(p *packet.Packet) bool { return !isHTTP(p) }

	base := ips.New()
	imgBase, err := baseline.Snapshot(base)
	if err != nil {
		return nil, err
	}
	full := feed(tr.Packets, nil)
	imgFull, err := baseline.Snapshot(full)
	if err != nil {
		return nil, err
	}
	imgHTTP, err := baseline.Snapshot(feed(tr.Packets, isHTTP))
	if err != nil {
		return nil, err
	}
	imgOther, err := baseline.Snapshot(feed(tr.Packets, isOther))
	if err != nil {
		return nil, err
	}
	sizeOf := func(img *baseline.Image) int {
		n, err := img.Size()
		if err != nil {
			return -1
		}
		return n
	}
	sizeBase, sizeFull := sizeOf(imgBase), sizeOf(imgFull)
	sizeHTTP, sizeOther := sizeOf(imgHTTP), sizeOf(imgOther)
	sdmbnMoved := imgFull.PerflowBytes(httpMatch)

	// Correctness: snapshot-based migration leaves unneeded state at both
	// instances; abruptly terminated flows log anomalous entries.
	newMB := ips.New()
	if err := baseline.Restore(newMB, imgFull); err != nil {
		return nil, err
	}
	// The old instance keeps everything too (a snapshot copies). Flows
	// migrate: HTTP continues at the new MB, other at the old; the
	// leftovers time out.
	countAnomalous := func(lines []string, unwanted packet.FieldMatch) int {
		n := 0
		for _, l := range lines {
			if !strings.Contains(l, "state=SF") && !strings.Contains(l, "state=REJ") {
				n++
			}
		}
		return n
	}
	anomalousNew := countAnomalous(newMB.SweepIdle(1<<62, nil), packet.MatchAll)
	anomalousOld := countAnomalous(full.SweepIdle(1<<62, nil), packet.MatchAll)

	t := &Table{
		ID:      "S-SNAP",
		Title:   "VM snapshot comparison (Bro-like IPS, cloud trace)",
		Columns: []string{"quantity", "bytes"},
	}
	t.AddRow("BASE image", sizeBase)
	t.AddRow("FULL image", sizeFull)
	t.AddRow("FULL-BASE delta", sizeFull-sizeBase)
	t.AddRow("HTTP-BASE delta", sizeHTTP-sizeBase)
	t.AddRow("OTHER-BASE delta", sizeOther-sizeBase)
	t.AddRow("SDMBN would move (HTTP per-flow state)", sdmbnMoved)
	t.Notes = append(t.Notes,
		fmt.Sprintf("incorrect (abrupt-termination) conn.log entries after snapshot migration: old=%d new=%d (paper: 3173 and 716)", anomalousOld, anomalousNew),
		"paper: BASE/FULL delta 22 MB; HTTP 19 MB; OTHER 4 MB; SDMBN moved 8.1 MB",
	)
	return t, nil
}

// SplitMergeBuffering reproduces the §8.1.2 Split/Merge experiment: packets
// buffered and added latency while a halt-based move of n chunks runs at the
// given packet rate.
func SplitMergeBuffering(chunks, rate int) (*Table, error) {
	if chunks == 0 {
		chunks = 1000
	}
	if rate == 0 {
		rate = 1000
	}
	src := monitor.New()
	preloadMonitor(src, chunks).Close()
	dst := monitor.New()
	dstRT := mbox.New("dst", dst, mbox.Options{})
	defer dstRT.Close()

	valve := baseline.NewHaltBuffer(dstRT.HandlePacket)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pace(rate, stop, func(i int) {
			valve.HandlePacket(mbtest.PacketForFlow(i % chunks))
		})
	}()
	// Move over a real wire to make the halt window realistic: get from
	// src and put to dst through directMB connections.
	valve.Halt()
	start := time.Now()
	get, put, moved, err := measureGetPut(src, dst, state.Reporting)
	if err != nil {
		close(stop)
		wg.Wait()
		return nil, err
	}
	moveDur := time.Since(start)
	// The halt window must actually witness paced traffic: the coalesced
	// move path finishes small transfers in single-digit milliseconds,
	// shorter than a scheduling quantum for the injection goroutine on a
	// loaded box. A halt-based migration holds the valve until the
	// operator flips routing anyway, so keep it closed (bounded) until at
	// least one packet has been caught — buffered ≈ rate × window still
	// holds, with the window being the real halt duration.
	for valve.QueueLen() == 0 && time.Since(start) < 250*time.Millisecond {
		time.Sleep(time.Millisecond)
	}
	buffered, added := valve.Release(dstRT.HandlePacket)
	close(stop)
	wg.Wait()

	t := &Table{
		ID:      "S-SM",
		Title:   "Split/Merge halt-based migration cost",
		Columns: []string{"quantity", "value"},
	}
	t.AddRow("chunks moved", moved)
	t.AddRow("packet rate (pps)", rate)
	t.AddRow("move duration (get+put)", moveDur)
	t.AddRow("get time", get)
	t.AddRow("put time", put)
	t.AddRow("packets buffered", buffered)
	avg := time.Duration(0)
	if buffered > 0 {
		avg = added / time.Duration(buffered)
	}
	t.AddRow("avg added latency per buffered packet", avg)
	t.Notes = append(t.Notes,
		"paper: 244 packets buffered, +863 ms average processing latency (1000 chunks, 1000 pkt/s)",
		"shape: buffered ≈ rate x halt window; added latency proportional to the halt window",
	)
	return t, nil
}
