package eval

import (
	"strings"
	"testing"

	"openmb/internal/obs"
	"openmb/internal/packet"
)

// TestChainTracerHopSequence drives the monitor→NAT→IPS chain with the flow
// tracer armed on every hop and checks the per-hop record stream: every
// injected packet produces an ingress, dispatch, verdict (emits=1), and
// egress record at every middlebox, and a destination-based predicate keeps
// matching across the NAT's source rewrite.
func TestChainTracerHopSequence(t *testing.T) {
	const packets = 4
	rig := NewChainRig(1)
	defer rig.Close()
	m, err := packet.ParseFieldMatch("nw_dst=8.8.8.8,tp_dst=8080")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rig.Runtime(i).ArmTrace(obs.TraceSpec{Match: m})
	}
	if err := rig.Inject(packets); err != nil {
		t.Fatal(err)
	}
	if got := rig.Delivered(); got != packets {
		t.Fatalf("delivered %d, want %d", got, packets)
	}
	for i, name := range []string{"chain-mon", "chain-nat", "chain-ips"} {
		recs := rig.Runtime(i).TraceRecords()
		perHop := map[obs.Hop]int{}
		for _, r := range recs {
			if r.MB != name {
				t.Fatalf("%s: record attributed to %q", name, r.MB)
			}
			perHop[r.Hop]++
			if r.Hop == obs.HopVerdict && r.Note != "emits=1" {
				t.Fatalf("%s: verdict note %q, want emits=1", name, r.Note)
			}
		}
		for _, h := range []obs.Hop{obs.HopIngress, obs.HopDispatch, obs.HopVerdict, obs.HopEgress} {
			if perHop[h] != packets {
				t.Fatalf("%s: %d %s records, want %d (all: %v)", name, perHop[h], h, packets, perHop)
			}
		}
		// A packet must hit ingress before anything else records it.
		if len(recs) == 0 || recs[0].Hop != obs.HopIngress {
			t.Fatalf("%s: first record is %v, want ingress", name, recs[0].Hop)
		}
	}
	// The NAT rewrites the source to its external IP; egress records are
	// captured post-rewrite, so the dst-based predicate is what kept the
	// flow visible.
	for _, r := range rig.Runtime(1).TraceRecords() {
		if r.Hop == obs.HopEgress && r.Key.SrcIP.String() != "192.0.2.1" {
			t.Fatalf("NAT egress record not post-rewrite: %v", r.Key)
		}
	}
}

// TestChainTracerNonMatching pins the armed-but-filtered behaviour: a
// predicate naming a flow that never appears captures nothing, and the chain
// delivers identically — arming a narrow trace is free for everyone else.
func TestChainTracerNonMatching(t *testing.T) {
	const packets = 8
	rig := NewChainRig(2)
	defer rig.Close()
	m, err := packet.ParseFieldMatch("nw_src=172.16.0.1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rig.Runtime(i).ArmTrace(obs.TraceSpec{Match: m, Budget: 16})
	}
	if err := rig.Inject(packets); err != nil {
		t.Fatal(err)
	}
	if got := rig.Delivered(); got != packets {
		t.Fatalf("delivered %d, want %d", got, packets)
	}
	for i := 0; i < 3; i++ {
		if recs := rig.Runtime(i).TraceRecords(); len(recs) != 0 {
			t.Fatalf("hop %d captured %d records for a flow that never appeared: %v", i, len(recs), recs)
		}
	}
}

// TestChainTracerBudget checks the per-hop record cap: a budget smaller than
// the traffic stops capture without disturbing delivery.
func TestChainTracerBudget(t *testing.T) {
	const packets = 16
	rig := NewChainRig(1)
	defer rig.Close()
	rig.Runtime(0).ArmTrace(obs.TraceSpec{Match: packet.MatchAll, Budget: 5})
	if err := rig.Inject(packets); err != nil {
		t.Fatal(err)
	}
	if got := len(rig.Runtime(0).TraceRecords()); got != 5 {
		t.Fatalf("budget 5, captured %d", got)
	}
	if got := rig.Delivered(); got != packets {
		t.Fatalf("delivered %d, want %d", got, packets)
	}
}

// TestObsReportShape runs the observability experiment end to end and pins
// the table shape: one row per op window, move count equal to the moves run,
// and the scrape/tracer notes present.
func TestObsReportShape(t *testing.T) {
	tbl := mustRun(t, func() (*Table, error) { return ObsReport(ObsConfig{Moves: 2, Chunks: 50}) })
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	if cell(t, tbl, 0, 0) != "move" || atoi(t, cell(t, tbl, 0, 1)) != 2 {
		t.Fatalf("move row = %v", tbl.Rows[0])
	}
	if atoi(t, cell(t, tbl, 1, 1)) < 2 {
		t.Fatalf("get row = %v", tbl.Rows[1])
	}
	if atoi(t, cell(t, tbl, 2, 1)) < 50 {
		t.Fatalf("put-ack row = %v", tbl.Rows[2])
	}
	var sawTracer, sawScrape bool
	for _, n := range tbl.Notes {
		if strings.Contains(n, "flow tracer armed") {
			sawTracer = true
		}
		if strings.Contains(n, "Prometheus text format") {
			sawScrape = true
		}
	}
	if !sawTracer || !sawScrape {
		t.Fatalf("missing notes: %v", tbl.Notes)
	}
}
