package eval

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/core"
	"openmb/internal/faults"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// This file adds the failure-recovery experiment: the Figure 10(b)-style
// concurrent-move workload run on a 3-replica cluster, with the coordinating
// replica killed mid-flight over a fault-injecting transport. The paper's
// evaluation assumes a well-behaved control channel; this measures what the
// robustness layer (heartbeats, transaction abort/restart, rollback) costs
// when nothing fails and how fast it recovers when something does.

// ChaosConfig parameterizes RecoveryUnderFailure.
type ChaosConfig struct {
	// Pairs is the number of simultaneous moves (default 2).
	Pairs int
	// Chunks is the per-source resident state (default 800; large enough
	// that the replica kill lands while chunk streams are in flight).
	Chunks int
}

func (c *ChaosConfig) setDefaults() {
	if c.Pairs == 0 {
		c.Pairs = 2
	}
	if c.Chunks == 0 {
		c.Chunks = 800
	}
}

// RecoveryUnderFailure runs the concurrent-move workload three ways on a
// 3-replica cluster: heartbeats off on a clean transport (baseline),
// heartbeats on with a clean transport (the faults-off ablation — avg_move
// parity against the baseline is the "heartbeats cost nothing" claim), and
// heartbeats on over a fault-injecting transport (partial writes, jittered
// delays) with the replica coordinating the moves killed mid-flight.
// Loss-freedom is asserted after every run; the chaos row's recovery column
// is the time from FailReplica until every move has returned.
func RecoveryUnderFailure(cfg ChaosConfig) (*Table, error) {
	cfg.setDefaults()
	t := &Table{
		ID:      "F12",
		Title:   "failure recovery: concurrent moves with the coordinator replica killed mid-flight",
		Columns: []string{"faults", "heartbeat", "pairs", "chunks", "avg_move", "recovery"},
	}
	rows := []struct{ heartbeat, chaos bool }{
		{false, false},
		{true, false},
		{true, true},
	}
	for _, r := range rows {
		avg, recovery, err := runRecovery(cfg.Pairs, cfg.Chunks, r.heartbeat, r.chaos)
		if err != nil {
			return nil, err
		}
		rec := "-"
		if r.chaos {
			rec = recovery.Round(time.Microsecond).String()
		}
		t.AddRow(onOff(r.chaos), onOff(r.heartbeat), cfg.Pairs, cfg.Chunks, avg, rec)
	}
	t.Notes = append(t.Notes,
		"row 2 vs row 1 is the heartbeat ablation: avg_move parity shows liveness probing adds no overhead",
		"row 3 kills the replica coordinating src0's move over a faulty wire; moves retry on the survivors",
		"loss-freedom (destination sums exact, sources empty) is asserted after every run")
	return t, nil
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// runRecovery builds a 3-replica cluster rig, runs pairs concurrent moves,
// optionally killing the coordinating replica a few milliseconds in, and
// returns the average move latency plus (for chaos runs) the recovery time
// from FailReplica to the last move returning.
func runRecovery(pairs, chunks int, heartbeat, chaos bool) (avg, recovery time.Duration, err error) {
	opts := core.Options{
		QuietPeriod: 50 * time.Millisecond,
		BatchSize:   transferBatch,
		Shards:      transferShards,
	}
	if heartbeat {
		opts.HeartbeatInterval = 25 * time.Millisecond
	}
	cl := core.NewCluster(core.ClusterOptions{Replicas: 3, Controller: opts})
	defer cl.Close()
	var tr sbi.Transport = sbi.NewMemTransport()
	if chaos {
		tr = faults.New(sbi.NewMemTransport(), faults.Options{
			Seed:          11,
			PartialWrites: true,
			Delay:         200 * time.Microsecond,
			DelayProb:     0.2,
		})
	}
	if err := cl.Serve(tr, "cluster"); err != nil {
		return 0, 0, err
	}

	srcs := make([]*mbtest.CounterLogic, pairs)
	dsts := make([]*mbtest.CounterLogic, pairs)
	var rts []*mbox.Runtime
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()
	attach := func(name string, logic mbox.Logic) error {
		rt := mbox.New(name, logic, mbox.Options{Codec: transferCodec})
		if err := rt.Connect(tr, "cluster"); err != nil {
			rt.Close()
			return err
		}
		rts = append(rts, rt)
		return cl.WaitForMB(name, 5*time.Second)
	}
	for i := 0; i < pairs; i++ {
		srcs[i] = mbtest.NewCounterLogic(202)
		srcs[i].Preload(chunks)
		dsts[i] = mbtest.NewCounterLogic(202)
		if err := attach(fmt.Sprintf("src%d", i), srcs[i]); err != nil {
			return 0, 0, err
		}
		if err := attach(fmt.Sprintf("dst%d", i), dsts[i]); err != nil {
			return 0, 0, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, pairs)
	times := make([]time.Duration, pairs)
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			errs[i] = cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
			times[i] = time.Since(start)
		}(i)
	}

	if chaos {
		// Let the chunk streams get into flight, then kill the replica
		// coordinating src0's move. MoveInternal aborts, rolls back, and
		// retries against the surviving replicas.
		time.Sleep(5 * time.Millisecond)
		coord, err := cl.ReplicaOf("src0")
		if err != nil {
			return 0, 0, err
		}
		failStart := time.Now()
		if err := cl.FailReplica(coord); err != nil {
			return 0, 0, err
		}
		wg.Wait()
		recovery = time.Since(failStart)
	} else {
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	if !cl.WaitTxns(120 * time.Second) {
		return 0, 0, fmt.Errorf("eval: cluster transactions did not complete")
	}

	// Loss-freedom: every preloaded chunk landed at its destination exactly
	// once even across the abort/rollback/retry path, no source kept state.
	for i := 0; i < pairs; i++ {
		if got := dsts[i].SumCounts(); got != uint64(chunks) {
			return 0, 0, fmt.Errorf("eval: pair %d: destination sum %d, want %d (lost or duplicated state under failure)", i, got, chunks)
		}
		if got := srcs[i].Flows(); got != 0 {
			return 0, 0, fmt.Errorf("eval: pair %d: source retains %d flows", i, got)
		}
	}

	var sum time.Duration
	for _, d := range times {
		sum += d
	}
	return sum / time.Duration(pairs), recovery, nil
}
