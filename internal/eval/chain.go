package eval

import (
	"fmt"
	"net/netip"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/ips"
	"openmb/internal/mbox/monitor"
	"openmb/internal/mbox/nat"
	"openmb/internal/obs"
	"openmb/internal/packet"
)

// fwdMonitor adapts the passive monitor into a chain hop: the monitor taps
// every packet exactly as it does on a mirror port, and the wrapper forwards
// the tapped packet to the next NF. Burst delivery stays a burst end to end
// — the whole batch goes through Monitor.ProcessBurst, then every packet is
// re-emitted in order.
type fwdMonitor struct {
	*monitor.Monitor
}

func (f *fwdMonitor) Process(ctx *mbox.Context, p *packet.Packet) {
	f.Monitor.Process(ctx, p)
	ctx.Emit(p)
}

func (f *fwdMonitor) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	f.Monitor.ProcessBurst(ctxs, pkts)
	for i := range pkts {
		ctxs[i].Emit(pkts[i])
	}
}

// chainBurst is the injection batch size, matching the runtimes' ingress
// batch so one injected burst is one ring synchronization per hop.
const chainBurst = 64

// chainOutstanding bounds the packets in flight inside the chain during
// closed-loop injection — far below the 8192-slot ingress rings, so a
// burst of injection can never overflow a downstream ring and drop (a drop
// would make the delivered-count wait hang).
const chainOutstanding = 2048

// ChainRig is the co-located NF chain the burst benchmarks drive: a
// monitor tap, a NAT, and an IPS wired hop to hop by direct handoff
// (SetForward/SetForwardBurst straight into the next runtime's ingress) —
// no simulated wire, the paper's same-node chain layout. The rig honours
// the ambient OPENMB_BURST mode captured at construction: burst on injects
// and hands off whole batches; burst off is the seed-faithful per-packet
// path.
type ChainRig struct {
	burst     bool
	pool      *packet.Pool
	tmpl      []*packet.Packet
	first     *mbox.Runtime
	rts       []*mbox.Runtime
	delivered atomic.Uint64
}

// chainPacket builds the i-th flow's template: an internal (10/8) source —
// so the NAT translates it — toward a non-HTTP port, keeping the IPS's
// analyzer work identical across packets of a flow.
func chainPacket(i int) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}),
		DstIP:   netip.AddrFrom4([4]byte{8, 8, 8, 8}),
		Proto:   packet.ProtoTCP,
		SrcPort: uint16(1024 + i%60000),
		DstPort: 8080,
		Flags:   packet.FlagACK,
		Payload: []byte("chain-benchmark-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	}
}

// NewChainRig assembles the chain with the given number of distinct flows
// (0 means 256).
func NewChainRig(flows int) *ChainRig {
	if flows <= 0 {
		flows = 256
	}
	r := &ChainRig{
		burst: packet.BurstDefault(),
		pool:  packet.NewPool(packet.PoolOptions{}),
	}
	r.tmpl = make([]*packet.Packet, flows)
	for i := range r.tmpl {
		r.tmpl[i] = chainPacket(i)
	}
	rtMon := mbox.New("chain-mon", &fwdMonitor{Monitor: monitor.New()}, mbox.Options{})
	rtNAT := mbox.New("chain-nat", nat.New(netip.MustParseAddr("192.0.2.1")), mbox.Options{})
	rtIPS := mbox.New("chain-ips", ips.New(), mbox.Options{})
	rtMon.SetForward(rtNAT.HandlePacket)
	rtMon.SetForwardBurst(rtNAT.HandleBurst)
	rtNAT.SetForward(rtIPS.HandlePacket)
	rtNAT.SetForwardBurst(rtIPS.HandleBurst)
	rtIPS.SetForward(func(p *packet.Packet) {
		r.delivered.Add(1)
		p.Release()
	})
	rtIPS.SetForwardBurst(func(ps []*packet.Packet) {
		r.delivered.Add(uint64(len(ps)))
		for _, p := range ps {
			p.Release()
		}
	})
	r.first = rtMon
	r.rts = []*mbox.Runtime{rtMon, rtNAT, rtIPS}
	return r
}

// Delivered returns the packets the chain's terminal hop has emitted.
func (r *ChainRig) Delivered() uint64 { return r.delivered.Load() }

// Runtime returns the i-th hop's runtime (0 = monitor, 1 = NAT, 2 = IPS).
func (r *ChainRig) Runtime(i int) *mbox.Runtime { return r.rts[i] }

// Inject drives n pooled packets through the chain closed-loop (as fast as
// the chain drains, with bounded in-flight population) and waits until the
// terminal hop has delivered them all. In burst mode injection is whole
// bursts; otherwise per packet.
func (r *ChainRig) Inject(n int) error {
	start := r.delivered.Load()
	deadline := time.Now().Add(120 * time.Second)
	var buf [chainBurst]*packet.Packet
	sent := 0
	for sent < n {
		k := chainBurst
		if n-sent < k {
			k = n - sent
		}
		for i := 0; i < k; i++ {
			buf[i] = r.pool.Clone(r.tmpl[(sent+i)%len(r.tmpl)])
		}
		if r.burst {
			r.first.HandleBurst(buf[:k])
		} else {
			for i := 0; i < k; i++ {
				r.first.HandlePacket(buf[i])
			}
		}
		sent += k
		for int64(sent)-int64(r.delivered.Load()-start) > chainOutstanding {
			if time.Now().After(deadline) {
				return fmt.Errorf("eval: chain stalled: %d/%d delivered", r.delivered.Load()-start, sent)
			}
			runtime.Gosched()
		}
	}
	return r.waitDelivered(start, n, deadline)
}

// InjectPaced drives n packets at the given rate (pps) through the chain
// and waits for full delivery; rate <= 0 falls back to closed-loop Inject.
// Pacing injects per packet — burst formation under paced load comes from
// the ingress rings' batched pops, the organic path.
func (r *ChainRig) InjectPaced(n, rate int) error {
	if rate <= 0 {
		return r.Inject(n)
	}
	start := r.delivered.Load()
	deadline := time.Now().Add(120 * time.Second)
	stop := make(chan struct{})
	closed := false
	pace(rate, stop, func(i int) {
		if i >= n {
			if !closed {
				closed = true
				close(stop)
			}
			return
		}
		r.first.HandlePacket(r.pool.Clone(r.tmpl[i%len(r.tmpl)]))
	})
	return r.waitDelivered(start, n, deadline)
}

func (r *ChainRig) waitDelivered(start uint64, n int, deadline time.Time) error {
	for r.delivered.Load()-start < uint64(n) {
		if time.Now().After(deadline) {
			return fmt.Errorf("eval: chain stalled: %d/%d delivered", r.delivered.Load()-start, n)
		}
		runtime.Gosched()
	}
	return nil
}

// Close shuts the chain down upstream first, so no hop closes while its
// predecessor still forwards into it.
func (r *ChainRig) Close() {
	for _, rt := range r.rts {
		rt.Drain(10 * time.Second)
		rt.Close()
	}
}

// ChainConfig parameterizes ChainThroughput.
type ChainConfig struct {
	Packets int // packets per mode (default 200000)
	Flows   int // distinct flows (default 256)
	Rate    int // paced injection rate in pps; 0 = closed-loop max rate

	// TraceFlow, when non-empty, arms the filtered flow tracer on every
	// hop of the chain before injection — the armed-tracer overhead
	// ablation. The value is a FieldMatch in the northbound syntax
	// (e.g. "nw_dst=8.8.8.8,tp_dst=8080"); per-hop record counts land in
	// the table notes. TraceBudget bounds records per hop (0 = default).
	TraceFlow   string
	TraceBudget int
}

func (c *ChainConfig) setDefaults() {
	if c.Packets == 0 {
		c.Packets = 200000
	}
	if c.Flows == 0 {
		c.Flows = 256
	}
}

// ChainThroughput measures the burst data path end to end: the same
// monitor→NAT→IPS chain, burst mode on versus the OPENMB_BURST=off
// per-packet ablation, reporting per-packet cost and throughput. This is
// the tentpole's headline number — what vectorized NF chains with direct
// co-located handoff buy over the seed path.
func ChainThroughput(cfg ChainConfig) (*Table, error) {
	cfg.setDefaults()
	var spec *obs.TraceSpec
	if cfg.TraceFlow != "" {
		m, err := packet.ParseFieldMatch(cfg.TraceFlow)
		if err != nil {
			return nil, fmt.Errorf("eval: chain trace-flow: %w", err)
		}
		spec = &obs.TraceSpec{Match: m, Budget: cfg.TraceBudget}
	}
	tbl := &Table{
		ID:      "chain",
		Title:   "NF chain throughput: monitor→NAT→IPS, direct co-located handoff",
		Columns: []string{"burst", "packets", "ns/packet", "pps"},
		Notes: []string{
			"burst=off is the seed-faithful per-packet ablation (OPENMB_BURST=off)",
			fmt.Sprintf("closed-loop injection, %d flows, rate=%d", cfg.Flows, cfg.Rate),
		},
	}
	if spec != nil {
		tbl.Notes = append(tbl.Notes,
			fmt.Sprintf("flow tracer ARMED on every hop: match %q, budget %d/hop — armed-overhead ablation", cfg.TraceFlow, spec.Budget))
	}
	prev := packet.BurstDefault()
	defer packet.SetBurstDefault(prev)
	for _, on := range []bool{true, false} {
		packet.SetBurstDefault(on)
		rig := NewChainRig(cfg.Flows)
		if spec != nil {
			for _, rt := range rig.rts {
				rt.ArmTrace(*spec)
			}
		}
		startT := time.Now()
		err := rig.InjectPaced(cfg.Packets, cfg.Rate)
		elapsed := time.Since(startT)
		if spec != nil {
			mode := "on"
			if !on {
				mode = "off"
			}
			counts := make([]string, 0, len(rig.rts))
			for i, rt := range rig.rts {
				counts = append(counts, fmt.Sprintf("hop%d=%d", i, len(rt.TraceRecords())))
			}
			tbl.Notes = append(tbl.Notes,
				fmt.Sprintf("burst=%s trace records captured: %s", mode, strings.Join(counts, " ")))
		}
		rig.Close()
		if err != nil {
			return nil, err
		}
		mode := "on"
		if !on {
			mode = "off"
		}
		tbl.AddRow(mode, cfg.Packets,
			float64(elapsed.Nanoseconds())/float64(cfg.Packets),
			float64(cfg.Packets)/elapsed.Seconds())
	}
	return tbl, nil
}
