package eval

import (
	"fmt"
	"net/netip"
	"time"

	"openmb/internal/apps"
	"openmb/internal/baseline"
	"openmb/internal/bed"
	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/monitor"
	"openmb/internal/mbox/re"
	"openmb/internal/packet"
	"openmb/internal/sdn"
	"openmb/internal/trace"
)

// Figure7Config parameterizes the scale-up timeline capture.
type Figure7Config struct {
	Flows      int           // distinct HTTP flows (default 60)
	Rate       int           // packets per second (default 2000)
	Duration   time.Duration // total injection window (default 1.2 s)
	MoveAt     time.Duration // when the scale-up starts (default 400 ms)
	Bucket     time.Duration // sampling bucket (default 100 ms)
	QuietAfter time.Duration // controller quiet period (default 150 ms)
	// RouteDelay models controller-to-switch rule propagation; it is the
	// window in which packets keep arriving at the original instance for
	// moved state, producing the reprocess events Figure 7 shows
	// (default 30 ms per rule).
	RouteDelay time.Duration
}

func (c *Figure7Config) setDefaults() {
	if c.Flows == 0 {
		c.Flows = 60
	}
	if c.Rate == 0 {
		c.Rate = 2000
	}
	if c.Duration == 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.MoveAt == 0 {
		c.MoveAt = 400 * time.Millisecond
	}
	if c.Bucket == 0 {
		c.Bucket = 100 * time.Millisecond
	}
	if c.QuietAfter == 0 {
		c.QuietAfter = 150 * time.Millisecond
	}
	if c.RouteDelay == 0 {
		c.RouteDelay = 30 * time.Millisecond
	}
}

// httpFlowPacket builds one forward HTTP packet for flow index i; the lower
// half of the flow space sits in 10.1.0.0/17 (the subnet the scale-up
// moves).
func httpFlowPacket(i, flows int) *packet.Packet {
	third := byte(0)
	if i >= flows/2 {
		third = 128 // upper /17: stays on the original instance
	}
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 1, third, byte(i)}),
		DstIP:   netip.AddrFrom4([4]byte{52, 20, 0, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: uint16(10000 + i), DstPort: 80,
		Payload: []byte("GET /assets HTTP/1.1\r\n"),
	}
}

// Figure7ScaleUpTimeline reproduces Figure 7: packet processing, event
// raising/processing, and operation handling at the original and new
// monitor instances across a scale-up, in time buckets. The paper's
// qualitative shape: the original MB processes all HTTP packets until
// slightly after the final put completes; events are raised from soon after
// the get begins until slightly after it completes; the new MB processes
// the events after the corresponding state was put, then takes over the
// packets once routing updates.
func Figure7ScaleUpTimeline(cfg Figure7Config) (*Table, error) {
	cfg.setDefaults()
	b, err := bed.New(core.Options{QuietPeriod: cfg.QuietAfter})
	if err != nil {
		return nil, err
	}
	defer b.Close()
	b.AddSwitch("s1")
	prads1 := monitor.New()
	prads2 := monitor.New()
	rt1, err := b.AddMB("prads1", prads1, "")
	if err != nil {
		return nil, err
	}
	rt2, err := b.AddMB("prads2", prads2, "")
	if err != nil {
		return nil, err
	}
	for _, pair := range [][2]string{{"s1", "prads1"}, {"s1", "prads2"}} {
		if err := b.Connect(pair[0], pair[1], 0); err != nil {
			return nil, err
		}
	}
	if _, err := b.SDN.Route(packet.MatchAll, 10, []sdn.Hop{{Switch: "s1", OutPort: "prads1"}}); err != nil {
		return nil, err
	}
	// Rule installations after this point (the scale-up's routing update)
	// take RouteDelay to propagate, as on a physical switch.
	b.SDN.SetUpdateDelay(cfg.RouteDelay)

	type sample struct {
		at                 time.Duration
		orig, new          uint64
		events, replays    uint64
		moveMark, doneMark bool
	}
	var samples []sample
	start := time.Now()
	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		tick := time.NewTicker(cfg.Bucket)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				samples = append(samples, sample{
					at:      time.Since(start),
					orig:    rt1.Metrics().Processed,
					new:     rt2.Metrics().Processed,
					events:  rt1.Metrics().EventsRaised,
					replays: rt2.Metrics().Replayed,
				})
			}
		}
	}()

	// Paced injection. On the zero-copy path the per-event packet is a
	// pooled clone of a prebuilt template (matching bed.InjectTrace), so
	// the scenario's steady state carries the mode's allocation behaviour.
	templates := make([]*packet.Packet, cfg.Flows)
	for i := range templates {
		templates[i] = httpFlowPacket(i, cfg.Flows)
	}
	zero := b.Net.ZeroCopy()
	injectDone := make(chan struct{})
	stopInject := make(chan struct{})
	go func() {
		defer close(injectDone)
		pace(cfg.Rate, stopInject, func(i int) {
			p := templates[i%cfg.Flows]
			if zero {
				p = b.Pool.Clone(p)
			} else {
				p = p.Clone() // the seed's fresh heap packet per event
			}
			_ = b.Net.Inject("s1", p)
		})
	}()
	go func() {
		time.Sleep(time.Until(start.Add(cfg.Duration)))
		close(stopInject)
	}()

	// The scale-up at MoveAt.
	time.Sleep(time.Until(start.Add(cfg.MoveAt)))
	env := &apps.Env{MB: b.Ctrl}
	moveMatch, _ := packet.ParseFieldMatch("[nw_src=10.1.0.0/17]")
	moveStart := time.Since(start)
	if _, err := env.ScaleUp("prads1", "prads2", moveMatch, func() error {
		_, err := b.SDN.Route(moveMatch, 20, []sdn.Hop{{Switch: "s1", OutPort: "prads2"}})
		return err
	}); err != nil {
		return nil, err
	}
	moveEnd := time.Since(start)

	<-injectDone
	b.Quiesce(10 * time.Second)
	b.Ctrl.WaitTxns(30 * time.Second)
	close(stopSampler)
	<-samplerDone

	t := &Table{
		ID:      "F7",
		Title:   "MB actions during scale-up (per-bucket deltas)",
		Columns: []string{"t_ms", "orig_pkts", "new_pkts", "events_raised", "events_replayed"},
	}
	var prev sample
	for _, s := range samples {
		t.AddRow(int(s.at.Milliseconds()), s.orig-prev.orig, s.new-prev.new, s.events-prev.events, s.replays-prev.replays)
		prev = s
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("get/put window (moveInternal): %d ms .. %d ms", moveStart.Milliseconds(), moveEnd.Milliseconds()),
		fmt.Sprintf("events raised total=%d, replayed total=%d", rt1.Metrics().EventsRaised, rt2.Metrics().Replayed),
		fmt.Sprintf("conservation: orig+new shared packets = %d",
			prads1.Snapshot().Shared.Packets+prads2.Snapshot().Shared.Packets),
	)
	return t, nil
}

// Figure8Config parameterizes the flow-duration CDF.
type Figure8Config struct {
	Flows int   // default 4000
	Seed  int64 // default 8
}

// Figure8FlowDurationCDF reproduces Figure 8: the CDF of flow completion
// times in the university data-center trace. The paper's headline: ~9% of
// flows take more than 1500 s to complete — the hold-up problem for
// drain-based approaches.
func Figure8FlowDurationCDF(cfg Figure8Config) (*Table, error) {
	if cfg.Flows == 0 {
		cfg.Flows = 4000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 8
	}
	tr := trace.UnivDC(trace.UnivDCConfig{Seed: cfg.Seed, Flows: cfg.Flows})
	durations := make([]time.Duration, len(tr.Flows))
	for i, f := range tr.Flows {
		durations[i] = f.Duration()
	}
	sortDurations(durations)
	t := &Table{
		ID:      "F8",
		Title:   "CDF of flow completion times (university data-center trace)",
		Columns: []string{"duration_s", "cdf"},
	}
	for _, p := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.91, 0.95, 0.99, 1.0} {
		t.AddRow(fmt.Sprintf("%.1f", percentile(durations, p).Seconds()), fmt.Sprintf("%.2f", p))
	}
	over := 0
	for _, d := range durations {
		if d > 1500*time.Second {
			over++
		}
	}
	frac := float64(over) / float64(len(durations))
	t.Notes = append(t.Notes,
		fmt.Sprintf("P(duration > 1500 s) = %.3f (paper: ~0.09)", frac),
		fmt.Sprintf("drain time after a mid-trace re-route: %v",
			baseline.DrainTime(tr.Flows, 30*time.Minute).Round(time.Second)),
	)
	return t, nil
}

// Table2Applicability reproduces Table 2: which approaches support scale-up,
// scale-down, and live migration. Classifications are derived from measured
// evidence on small concrete runs, recorded in the notes.
func Table2Applicability() (*Table, error) {
	tr := trace.Cloud(trace.CloudConfig{Seed: 40, Flows: 40})

	// --- Snapshot evidence: unneeded state and no merge path.
	src := monitor.New()
	rt := mbox.New("m", src, mbox.Options{})
	for _, p := range tr.Packets {
		rt.HandlePacket(p)
	}
	rt.Drain(10 * time.Second)
	rt.Close()
	img, err := baseline.Snapshot(src)
	if err != nil {
		return nil, err
	}
	httpBytes := img.PerflowBytes(trace.HTTPMatch())
	allBytes := img.PerflowBytes(packet.MatchAll)
	unneededFrac := 1 - float64(httpBytes)/float64(allBytes)

	// --- Config+routing evidence: drain time.
	dcTrace := trace.UnivDC(trace.UnivDCConfig{Seed: 41, Flows: 800})
	drain := baseline.DrainTime(dcTrace.Flows, 30*time.Minute)

	// --- Split/Merge evidence: shared state stranded at the source.
	smSrc := monitor.New()
	rt2 := mbox.New("m2", smSrc, mbox.Options{})
	for _, p := range tr.Packets {
		rt2.HandlePacket(p)
	}
	rt2.Drain(10 * time.Second)
	rt2.Close()
	smDst := monitor.New()
	valve := baseline.NewHaltBuffer(nil)
	if _, err := baseline.Move(valve, smSrc, smDst, packet.MatchAll, nil); err != nil {
		return nil, err
	}
	stranded := smSrc.Snapshot().Shared.Packets

	t := &Table{
		ID:      "T2",
		Title:   "Applicability of MB control approaches (Y supported, ~ partial, N unsupported)",
		Columns: []string{"approach", "scale-up", "scale-down", "migration"},
	}
	t.AddRow("SDMBN (OpenMB)", "Y", "Y", "Y")
	t.AddRow("VM snapshot", "~", "N", "~")
	t.AddRow("config+routing", "~", "~", "~")
	t.AddRow("Split/Merge", "Y", "~", "~")
	t.Notes = append(t.Notes,
		"SDMBN: all three scenarios pass conservation and correctness checks (see apps integration tests / S-CORR)",
		fmt.Sprintf("snapshot: %.0f%% of per-flow state in the image is unneeded at the destination; two images cannot merge (scale-down N)", unneededFrac*100),
		fmt.Sprintf("config+routing: deprecated instance held up %v by in-progress flows (partial everywhere)", drain.Round(time.Second)),
		fmt.Sprintf("Split/Merge: %d shared-state packet counts stranded at the source (no shared merge: scale-down/migration partial)", stranded),
	)
	return t, nil
}

// Table3Config parameterizes the RE migration comparison.
type Table3Config struct {
	Flows          int // default 16
	PacketsPerFlow int // default 30
	RoutingLagPkts int // default 10, as in the paper
	CacheBytes     int // default 256 KiB
	Seed           int64
}

func (c *Table3Config) setDefaults() {
	if c.Flows == 0 {
		c.Flows = 16
	}
	if c.PacketsPerFlow == 0 {
		c.PacketsPerFlow = 30
	}
	if c.RoutingLagPkts == 0 {
		c.RoutingLagPkts = 10
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 1 << 18
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
}

// Table3REMigration reproduces Table 3: redundancy elimination performance
// and correctness during live migration, SDMBN versus config+routing. The
// shape: SDMBN encodes more redundant bytes (warm cloned cache) and decodes
// everything; config+routing encodes less (cold cache) and, after the
// routing lag desynchronizes the caches, none of its encoded bytes can be
// decoded.
func Table3REMigration(cfg Table3Config) (*Table, error) {
	cfg.setDefaults()
	trc := trace.Redundant(trace.RedundantConfig{Seed: cfg.Seed, Flows: cfg.Flows, PacketsPerFlow: cfg.PacketsPerFlow})
	half := len(trc.Packets) / 2

	// ---- SDMBN run: full bed with the migrate control application.
	sdmbnEnc, sdmbnUndec, err := runSDMBNMigration(trc, half, cfg.CacheBytes)
	if err != nil {
		return nil, err
	}

	// ---- Config+routing run: new empty encoder/decoder pair for the
	// migrated prefix; the first RoutingLagPkts encoded packets reach the
	// OLD decoder (routing not yet updated), desynchronizing the caches.
	cfgEnc, cfgUndec, err := runConfigRouteMigration(trc, half, cfg)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "T3",
		Title:   "Performance of RE in live migration",
		Columns: []string{"approach", "encoded_bytes", "undecodable_bytes"},
	}
	t.AddRow("SDMBN (OpenMB)", sdmbnEnc, sdmbnUndec)
	t.AddRow("config+routing", cfgEnc, cfgUndec)
	t.Notes = append(t.Notes,
		fmt.Sprintf("routing lag for the baseline: %d packets (as in the paper)", cfg.RoutingLagPkts),
		"paper: SDMBN 148.42 MB encoded / 0 undecodable; config+routing 97.33 MB encoded / 97.33 MB undecodable",
	)
	return t, nil
}

// runSDMBNMigration drives the Figure 6(a) scenario through the full stack
// and returns (encoded redundant bytes, undecodable bytes).
func runSDMBNMigration(trc *trace.Trace, half, cacheBytes int) (uint64, uint64, error) {
	b, err := bed.New(core.Options{QuietPeriod: 60 * time.Millisecond})
	if err != nil {
		return 0, 0, err
	}
	defer b.Close()
	b.AddSwitch("wan")
	b.AddHost("sinkA", 1)
	b.AddHost("sinkB", 1)
	enc := re.NewEncoder(cacheBytes)
	decA := re.NewDecoder(cacheBytes)
	decB := re.NewDecoder(cacheBytes)
	if _, err := b.AddMB("enc", enc, "wan"); err != nil {
		return 0, 0, err
	}
	if _, err := b.AddMB("decA", decA, "sinkA"); err != nil {
		return 0, 0, err
	}
	if _, err := b.AddMB("decB", decB, "sinkB"); err != nil {
		return 0, 0, err
	}
	for _, pair := range [][2]string{{"enc", "wan"}, {"wan", "decA"}, {"wan", "decB"}, {"decA", "sinkA"}, {"decB", "sinkB"}} {
		if err := b.Connect(pair[0], pair[1], 0); err != nil {
			return 0, 0, err
		}
	}
	if _, err := b.SDN.Route(packet.MatchAll, 10, []sdn.Hop{{Switch: "wan", OutPort: "decA"}}); err != nil {
		return 0, 0, err
	}
	if err := b.InjectTrace("enc", trc.Packets[:half], 0); err != nil {
		return 0, 0, err
	}
	if !b.Quiesce(30 * time.Second) {
		return 0, 0, fmt.Errorf("eval: SDMBN run did not quiesce")
	}
	env := &apps.Env{MB: b.Ctrl}
	dcB, _ := packet.ParseFieldMatch("[nw_dst=1.1.2.0/24]")
	err = env.MigrateRE("decA", "decB", "enc", []string{"1.1.1.0/24", "1.1.2.0/24"}, func() error {
		_, err := b.SDN.Route(dcB, 20, []sdn.Hop{{Switch: "wan", OutPort: "decB"}})
		return err
	})
	if err != nil {
		return 0, 0, err
	}
	if !b.Ctrl.WaitTxns(30 * time.Second) {
		return 0, 0, fmt.Errorf("eval: clone transaction did not complete")
	}
	if err := b.InjectTrace("enc", trc.Packets[half:], 0); err != nil {
		return 0, 0, err
	}
	if !b.Quiesce(30 * time.Second) {
		return 0, 0, fmt.Errorf("eval: SDMBN run did not quiesce after migration")
	}
	_, _, matchBytes, _ := enc.Report()
	_, undecA, _ := decA.Report()
	_, undecB, _ := decB.Report()
	return matchBytes, undecA + undecB, nil
}

// runConfigRouteMigration drives the baseline: empty caches for the
// migrated prefix, with the first lag packets misrouted to the old decoder.
func runConfigRouteMigration(trc *trace.Trace, half int, cfg Table3Config) (uint64, uint64, error) {
	encA := re.NewEncoder(cfg.CacheBytes)
	decA := re.NewDecoder(cfg.CacheBytes)
	encB := re.NewEncoder(cfg.CacheBytes)
	decB := re.NewDecoder(cfg.CacheBytes)
	dcB := netip.MustParsePrefix("1.1.2.0/24")

	// Chain runtimes: encoder forward delivers into a router function.
	rtDecA := mbox.New("decA", decA, mbox.Options{})
	defer rtDecA.Close()
	rtDecB := mbox.New("decB", decB, mbox.Options{})
	defer rtDecB.Close()

	migrated := false
	lagLeft := cfg.RoutingLagPkts
	routeB := func(p *packet.Packet) {
		// Until the routing update takes effect, encoded DC-B traffic
		// still reaches the OLD decoder.
		if lagLeft > 0 {
			lagLeft--
			rtDecA.HandlePacket(p)
			return
		}
		rtDecB.HandlePacket(p)
	}
	rtEncA := mbox.New("encA", encA, mbox.Options{Forward: rtDecA.HandlePacket})
	defer rtEncA.Close()
	rtEncB := mbox.New("encB", encB, mbox.Options{Forward: routeB})
	defer rtEncB.Close()

	if err := baseline.ConfigRouteMigrate(encA, encB); err != nil {
		return 0, 0, err
	}
	for i, p := range trc.Packets {
		if i == half {
			// Migration instant: DC-B traffic switches to the new
			// (empty) encoder; routing lags by RoutingLagPkts.
			rtEncA.Drain(10 * time.Second)
			rtDecA.Drain(10 * time.Second)
			migrated = true
		}
		if migrated && dcB.Contains(p.DstIP) {
			rtEncB.HandlePacket(p)
		} else {
			rtEncA.HandlePacket(p)
		}
	}
	for _, rt := range []*mbox.Runtime{rtEncA, rtEncB, rtDecA, rtDecB} {
		rt.Drain(10 * time.Second)
	}
	// Encoded bytes across both encoder instances, for a like-for-like
	// comparison with SDMBN's single (dual-cache) encoder. The baseline
	// encodes less because the new encoder starts with a cold cache.
	_, _, matchBytesA, _ := encA.Report()
	_, _, matchBytesB, _ := encB.Report()
	_, undecB, _ := decB.Report()
	_, undecA, _ := decA.Report()
	// Bytes encoded by encB but delivered to decA during the routing lag
	// are unrecoverable there (undecA); everything encB encoded after the
	// lag fails at the desynchronized decB (undecB).
	return matchBytesA + matchBytesB, undecA + undecB, nil
}
