package eval

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/mbox/monitor"
	"openmb/internal/obs"
	"openmb/internal/packet"
)

// ObsConfig parameterizes ObsReport.
type ObsConfig struct {
	Moves  int // controller-brokered moves to sample (default 4)
	Chunks int // chunks preloaded into the moving middlebox (default 400)
}

func (c *ObsConfig) setDefaults() {
	if c.Moves == 0 {
		c.Moves = 4
	}
	if c.Chunks == 0 {
		c.Chunks = 400
	}
}

// ObsReport exercises the observability plane end to end on a live rig. A
// series of controller-brokered moves populates the move-window, per-flow
// get, and put-ACK latency histograms; the filtered flow tracer is armed
// over the northbound API and offered matching and non-matching traffic;
// and the controller is scraped through an obs.Registry — the same render
// the /metrics endpoint serves. The table reports each op window's
// histogram (count, p50, p95, p99, mean), i.e. the series exported as
// openmb_{move,get,put_ack}_duration_seconds.
func ObsReport(cfg ObsConfig) (*Table, error) {
	cfg.setDefaults()
	r, err := newRig(core.Options{QuietPeriod: 30 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer r.close()

	src := mbtest.NewCounterLogic(307)
	dst := mbtest.NewCounterLogic(307)
	src.Preload(cfg.Chunks)
	if _, err := r.add("obs-src", src); err != nil {
		return nil, err
	}
	if _, err := r.add("obs-dst", dst); err != nil {
		return nil, err
	}
	names := [2]string{"obs-src", "obs-dst"}
	for i := 0; i < cfg.Moves; i++ {
		if err := r.ctrl.MoveInternal(names[i%2], names[(i+1)%2], packet.MatchAll); err != nil {
			return nil, err
		}
	}
	r.ctrl.WaitTxns(60 * time.Second)

	// Flow tracer, end to end over the northbound API: arm a one-flow
	// predicate with a budget, offer the runtime a mix of matching and
	// non-matching packets, then pull the per-hop records back over the
	// southbound traceDump op.
	monRT, err := r.add("obs-mon", monitor.New())
	if err != nil {
		return nil, err
	}
	key := mbtest.FlowN(7)
	match := packet.FieldMatch{
		SrcPrefix:  netip.PrefixFrom(key.SrcIP, key.SrcIP.BitLen()),
		HasDstPort: true,
		DstPort:    key.DstPort,
	}
	if err := r.ctrl.ArmFlowTrace("obs-mon", match, 64); err != nil {
		return nil, err
	}
	const offered, flows = 32, 8 // flow 7 recurs offered/flows times
	for i := 0; i < offered; i++ {
		monRT.HandlePacket(mbtest.PacketForFlow(i % flows))
	}
	monRT.Drain(30 * time.Second)
	recs, err := r.ctrl.FlowTraceRecords("obs-mon")
	if err != nil {
		return nil, err
	}
	if err := r.ctrl.DisarmFlowTrace("obs-mon"); err != nil {
		return nil, err
	}

	// Scrape the controller through a registry — the /metrics render.
	reg := obs.NewRegistry()
	reg.Register(r.ctrl)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	series, err := obs.ParseSeries(buf.String())
	if err != nil {
		return nil, fmt.Errorf("eval: obs: scrape did not parse: %w", err)
	}

	move, get, put := r.ctrl.OpLatencies()
	tbl := &Table{
		ID:      "obs",
		Title:   "Observability plane: op-window latency histograms, flow tracer, /metrics scrape",
		Columns: []string{"op", "count", "p50", "p95", "p99", "mean"},
		Notes: []string{
			fmt.Sprintf("%d moves of %d chunks; windows: move = freeze→all puts ACKed, get = per-flow state stream, put = put-ACK round trip", cfg.Moves, cfg.Chunks),
			fmt.Sprintf("flow tracer armed on %s over the northbound API: %d records from %d offered packets (%d matching)",
				match, len(recs), offered, offered/flows),
			fmt.Sprintf("registry scrape rendered %d series (%d bytes) in Prometheus text format", len(series), buf.Len()),
		},
	}
	for _, row := range []struct {
		op string
		s  obs.HistogramSnapshot
	}{{"move", move}, {"get", get}, {"put-ack", put}} {
		tbl.AddRow(row.op, row.s.Count,
			row.s.Quantile(0.50), row.s.Quantile(0.95), row.s.Quantile(0.99), row.s.Mean())
	}
	return tbl, nil
}
