package eval

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// This file adds the controller-cluster experiment: a Figure 10(b)-style
// concurrent-move sweep run against a replicated controller, with live
// ownership handoffs forced while the moves are in flight. The paper's
// Figure 10(b) asks how move latency scales with simultaneous operations on
// ONE controller; this asks what partitioning the middleboxes over replicas
// — and rebalancing them mid-move — costs or buys on the same workload.

// RebalanceConfig parameterizes RebalanceUnderLoad.
type RebalanceConfig struct {
	// Pairs is the number of simultaneous moves (default 4).
	Pairs int
	// Chunks is the per-source resident state (default 1000).
	Chunks int
	// Replicas are the cluster sizes to sweep (default {1, 3}; 1 is the
	// single-controller ablation).
	Replicas []int
	// Handoffs is how many live rebalances to force while the moves run
	// (default 4; ignored at replicas=1 where there is nowhere to go).
	Handoffs int
}

func (c *RebalanceConfig) setDefaults() {
	if c.Pairs == 0 {
		c.Pairs = 4
	}
	if c.Chunks == 0 {
		c.Chunks = 1000
	}
	if len(c.Replicas) == 0 {
		c.Replicas = []int{1, 3}
	}
	if c.Handoffs == 0 {
		c.Handoffs = 4
	}
}

// RebalanceUnderLoad runs `pairs` simultaneous moves of `chunks` chunks on
// a controller cluster, forcing live handoffs mid-move, for each replica
// count. Loss-freedom is verified after every run (the destination must
// hold exactly the preloaded counts); the table reports average move
// latency and the handoffs performed, so the replicas=1 row is directly
// comparable to the Figure 10(b) single-controller numbers.
func RebalanceUnderLoad(cfg RebalanceConfig) (*Table, error) {
	cfg.setDefaults()
	t := &Table{
		ID:      "F10c",
		Title:   "cluster: avg time per moveInternal under live replica handoffs",
		Columns: []string{"replicas", "simultaneous", "chunks", "handoffs", "avg_move"},
	}
	for _, replicas := range cfg.Replicas {
		handoffs := cfg.Handoffs
		if replicas < 2 {
			handoffs = 0
		}
		avg, performed, err := timeClusterMoves(cfg.Pairs, cfg.Chunks, replicas, handoffs)
		if err != nil {
			return nil, err
		}
		t.AddRow(replicas, cfg.Pairs, cfg.Chunks, performed, avg)
	}
	t.Notes = append(t.Notes,
		"replicas=1 is the single-controller ablation (directly comparable to F10b)",
		"handoffs freeze one MB's flowspace each, mid-move; loss-freedom is asserted after every run")
	return t, nil
}

// timeClusterMoves builds a cluster rig, runs the concurrent moves with
// handoffs rotating middleboxes across replicas mid-flight, verifies
// conservation, and returns the average move latency and handoffs done.
func timeClusterMoves(pairs, chunks, replicas, handoffs int) (time.Duration, uint64, error) {
	cl := core.NewCluster(core.ClusterOptions{
		Replicas: replicas,
		Controller: core.Options{
			QuietPeriod: 50 * time.Millisecond,
			BatchSize:   transferBatch,
			Shards:      transferShards,
		},
	})
	defer cl.Close()
	tr := sbi.NewMemTransport()
	if err := cl.Serve(tr, "cluster"); err != nil {
		return 0, 0, err
	}

	srcs := make([]*mbtest.CounterLogic, pairs)
	dsts := make([]*mbtest.CounterLogic, pairs)
	var rts []*mbox.Runtime
	defer func() {
		for _, rt := range rts {
			rt.Close()
		}
	}()
	attach := func(name string, logic mbox.Logic) error {
		rt := mbox.New(name, logic, mbox.Options{Codec: transferCodec})
		if err := rt.Connect(tr, "cluster"); err != nil {
			rt.Close()
			return err
		}
		rts = append(rts, rt)
		return cl.WaitForMB(name, 5*time.Second)
	}
	for i := 0; i < pairs; i++ {
		srcs[i] = mbtest.NewCounterLogic(202)
		srcs[i].Preload(chunks)
		dsts[i] = mbtest.NewCounterLogic(202)
		if err := attach(fmt.Sprintf("src%d", i), srcs[i]); err != nil {
			return 0, 0, err
		}
		if err := attach(fmt.Sprintf("dst%d", i), dsts[i]); err != nil {
			return 0, 0, err
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, pairs)
	times := make([]time.Duration, pairs)
	for i := 0; i < pairs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start := time.Now()
			errs[i] = cl.MoveInternal(fmt.Sprintf("src%d", i), fmt.Sprintf("dst%d", i), packet.MatchAll)
			times[i] = time.Since(start)
		}(i)
	}

	// Force the handoffs while the moves run: rotate middleboxes to the
	// next replica, spread over the expected move window.
	before := cl.Handoffs()
	names := cl.Middleboxes()
	for h := 0; h < handoffs; h++ {
		name := names[h%len(names)]
		cur, err := cl.ReplicaOf(name)
		if err != nil {
			continue
		}
		_ = cl.Rebalance(name, (cur+1)%replicas)
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, 0, err
		}
	}
	if !cl.WaitTxns(120 * time.Second) {
		return 0, 0, fmt.Errorf("eval: cluster transactions did not complete")
	}
	performed := cl.Handoffs() - before

	// Loss-freedom: every preloaded chunk landed at its destination
	// exactly once, no source retained state.
	for i := 0; i < pairs; i++ {
		if got := dsts[i].SumCounts(); got != uint64(chunks) {
			return 0, 0, fmt.Errorf("eval: pair %d: destination sum %d, want %d (lost or duplicated state under handoff)", i, got, chunks)
		}
		if got := srcs[i].Flows(); got != 0 {
			return 0, 0, fmt.Errorf("eval: pair %d: source retains %d flows", i, got)
		}
	}

	var sum time.Duration
	for _, d := range times {
		sum += d
	}
	return sum / time.Duration(pairs), performed, nil
}
