package eval

import (
	"fmt"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/ips"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/mbox/monitor"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
	"openmb/internal/trace"
)

// CorrectnessDiff reproduces the §8.2 correctness experiment: the output of
// a single unmodified middlebox is compared against the combined output of
// two OpenMB-enabled instances with a mid-trace moveInternal between them.
// The paper observed no differences in Bro's conn.log/http.log, PRADS's
// statistics, or RE's decoded packets; mismatches here are counted per
// middlebox.
func CorrectnessDiff(seed int64, flows int) (*Table, error) {
	if flows == 0 {
		flows = 50
	}
	tr := trace.Cloud(trace.CloudConfig{Seed: seed, Flows: flows})
	half := len(tr.Packets) / 2

	t := &Table{
		ID:      "S-CORR",
		Title:   "correctness: unmodified vs OpenMB-enabled output",
		Columns: []string{"mb", "metric", "reference", "openmb", "mismatches"},
	}

	// ---- Bro-like IPS: conn.log + http.log multiset equality.
	refIPS := ips.New()
	refRT := mbox.New("ref", refIPS, mbox.Options{})
	for _, p := range tr.Packets {
		refRT.HandlePacket(p)
	}
	refRT.Drain(60 * time.Second)
	refConn := append(refRT.Log("conn"), refIPS.FlushAll(nil)...)
	refHTTP := refRT.Log("http")
	refRT.Close()

	splitConn, splitHTTP, err := splitRunIPS(tr, half)
	if err != nil {
		return nil, err
	}
	t.AddRow("bro", "conn.log entries", len(refConn), len(splitConn), multisetDiff(refConn, splitConn))
	t.AddRow("bro", "http.log entries", len(refHTTP), len(splitHTTP), multisetDiff(refHTTP, splitHTTP))

	// ---- PRADS-like monitor: collective statistics equality.
	refMon := monitor.New()
	rt := mbox.New("refmon", refMon, mbox.Options{})
	for _, p := range tr.Packets {
		rt.HandlePacket(p)
	}
	rt.Drain(60 * time.Second)
	rt.Close()
	refSnap := refMon.Snapshot()

	gotPkts, gotPerflow, err := splitRunMonitor(tr, half)
	if err != nil {
		return nil, err
	}
	mism := 0
	if gotPkts != refSnap.Shared.Packets {
		mism++
	}
	t.AddRow("prads", "shared packet count", refSnap.Shared.Packets, gotPkts, mism)
	mism = 0
	if gotPerflow != refMon.TotalPerflowPackets() {
		mism++
	}
	t.AddRow("prads", "per-flow packet counts", refMon.TotalPerflowPackets(), gotPerflow, mism)

	t.Notes = append(t.Notes, "paper: no differences in conn.log/http.log, PRADS statistics, or RE decode (RE verified in T3: 0 undecodable)")
	return t, nil
}

// splitRunIPS runs the trace through instance A, moves all state to B via
// the controller mid-trace, then finishes at B. Returns combined logs.
func splitRunIPS(tr *trace.Trace, half int) (conn, http []string, err error) {
	r, err := newRig(core.Options{QuietPeriod: 40 * time.Millisecond})
	if err != nil {
		return nil, nil, err
	}
	defer r.close()
	a, b := ips.New(), ips.New()
	rtA, err := r.add("a", a)
	if err != nil {
		return nil, nil, err
	}
	rtB, err := r.add("b", b)
	if err != nil {
		return nil, nil, err
	}
	for _, p := range tr.Packets[:half] {
		rtA.HandlePacket(p)
	}
	if !rtA.Drain(60 * time.Second) {
		return nil, nil, fmt.Errorf("eval: instance A did not drain")
	}
	if err := r.ctrl.MoveInternal("a", "b", packet.MatchAll); err != nil {
		return nil, nil, err
	}
	if !r.ctrl.WaitTxns(60 * time.Second) {
		return nil, nil, fmt.Errorf("eval: move did not complete")
	}
	for _, p := range tr.Packets[half:] {
		rtB.HandlePacket(p)
	}
	if !rtB.Drain(60 * time.Second) {
		return nil, nil, fmt.Errorf("eval: instance B did not drain")
	}
	conn = append(rtA.Log("conn"), rtB.Log("conn")...)
	conn = append(conn, b.FlushAll(nil)...)
	conn = append(conn, a.FlushAll(nil)...)
	http = append(rtA.Log("http"), rtB.Log("http")...)
	return conn, http, nil
}

// splitRunMonitor does the same for the monitor, returning the combined
// shared packet count and per-flow counter sum.
func splitRunMonitor(tr *trace.Trace, half int) (sharedPkts, perflowPkts uint64, err error) {
	r, err := newRig(core.Options{QuietPeriod: 40 * time.Millisecond})
	if err != nil {
		return 0, 0, err
	}
	defer r.close()
	a, b := monitor.New(), monitor.New()
	rtA, err := r.add("a", a)
	if err != nil {
		return 0, 0, err
	}
	rtB, err := r.add("b", b)
	if err != nil {
		return 0, 0, err
	}
	for _, p := range tr.Packets[:half] {
		rtA.HandlePacket(p)
	}
	rtA.Drain(60 * time.Second)
	if err := r.ctrl.MoveInternal("a", "b", packet.MatchAll); err != nil {
		return 0, 0, err
	}
	if err := r.ctrl.MergeInternal("a", "b"); err != nil {
		return 0, 0, err
	}
	if !r.ctrl.WaitTxns(60 * time.Second) {
		return 0, 0, fmt.Errorf("eval: transactions did not complete")
	}
	for _, p := range tr.Packets[half:] {
		rtB.HandlePacket(p)
	}
	rtB.Drain(60 * time.Second)
	return b.Snapshot().Shared.Packets, a.TotalPerflowPackets() + b.TotalPerflowPackets(), nil
}

// multisetDiff counts entries not matched one-to-one between a and b.
func multisetDiff(a, b []string) int {
	counts := map[string]int{}
	for _, s := range a {
		counts[s]++
	}
	for _, s := range b {
		counts[s]--
	}
	diff := 0
	for _, c := range counts {
		if c < 0 {
			c = -c
		}
		diff += c
	}
	return diff
}

// LatencyDuringGet reproduces the §8.2 performance check: mean per-packet
// processing latency during normal operation versus while the middlebox is
// serving a get. The paper: Bro 6.93 ms -> 7.06 ms (+1.9%); RE
// 0.781 ms -> 0.790 ms (+1.2%) — i.e. at most ~2%.
func LatencyDuringGet(flows, packetsPerPhase int) (*Table, error) {
	if flows == 0 {
		flows = 500
	}
	if packetsPerPhase == 0 {
		packetsPerPhase = 3000
	}
	t := &Table{
		ID:      "S-PERF",
		Title:   "per-packet processing latency, normal vs during get",
		Columns: []string{"mb", "normal", "during_get", "increase"},
	}
	run := func(name string, logic mbox.Logic, class state.Class) error {
		d, err := newDirectMB("mb", logic)
		if err != nil {
			return err
		}
		defer d.close()
		// Warm phase: normal processing.
		for i := 0; i < packetsPerPhase; i++ {
			p := mbtest.PacketForFlow(i % flows)
			p.Flags = packet.FlagACK
			d.rt.HandlePacket(p)
		}
		d.rt.Drain(120 * time.Second)
		// Get phase: repeated gets while packets flow. Gets are issued
		// back to back so processing overlaps the whole phase.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < packetsPerPhase; i++ {
				p := mbtest.PacketForFlow(i % flows)
				p.Flags = packet.FlagACK
				d.rt.HandlePacket(p)
			}
		}()
		getOp := sbi.OpGetReportPerflow
		if class == state.Supporting {
			getOp = sbi.OpGetSupportPerflow
		}
		for i := 0; i < 3; i++ {
			id, err := d.request(&sbi.Message{Type: sbi.MsgRequest, Op: getOp, Match: packet.MatchAll, Batch: transferBatch})
			if err != nil {
				return err
			}
			if _, err := d.collect(id, 120*time.Second, nil); err != nil {
				return err
			}
		}
		<-done
		d.rt.Drain(120 * time.Second)
		m := d.rt.Metrics()
		inc := "n/a"
		if m.LatencyNormal > 0 {
			inc = fmt.Sprintf("%+.1f%%", 100*(float64(m.LatencyDuringOp)-float64(m.LatencyNormal))/float64(m.LatencyNormal))
		}
		t.AddRow(name, m.LatencyNormal, m.LatencyDuringOp, inc)
		return nil
	}
	mon := monitor.New()
	if err := run("prads", mon, state.Reporting); err != nil {
		return nil, err
	}
	b := ips.New()
	if err := run("bro", b, state.Supporting); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "paper: no significant change (Bro 6.93→7.06 ms, RE 0.781→0.790 ms)")
	return t, nil
}

// CompressionAblation reproduces the §8.3 compression experiment: a move of
// n chunks with and without flate compression of state transfers.
func CompressionAblation(chunks int) (*Table, error) {
	if chunks == 0 {
		chunks = 500
	}
	run := func(compress bool) (time.Duration, uint64, error) {
		r, err := newRig(core.Options{QuietPeriod: 50 * time.Millisecond, Compress: compress})
		if err != nil {
			return 0, 0, err
		}
		defer r.close()
		src := mbtest.NewCounterLogic(202)
		src.Preload(chunks)
		if _, err := r.add("src", src); err != nil {
			return 0, 0, err
		}
		if _, err := r.add("dst", mbtest.NewCounterLogic(202)); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if err := r.ctrl.MoveInternal("src", "dst", packet.MatchAll); err != nil {
			return 0, 0, err
		}
		elapsed := time.Since(start)
		bytes := r.ctrl.Metrics().BytesMoved
		r.ctrl.WaitTxns(60 * time.Second)
		return elapsed, bytes, nil
	}
	plainTime, plainBytes, err := run(false)
	if err != nil {
		return nil, err
	}
	compTime, compBytes, err := run(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "S-COMP",
		Title:   "state-transfer compression ablation (move of dummy chunks)",
		Columns: []string{"variant", "move_time", "bytes_on_wire"},
	}
	t.AddRow("uncompressed", plainTime, plainBytes)
	t.AddRow("compressed", compTime, compBytes)
	if plainBytes > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("compression ratio: %.0f%% reduction (paper: 38%%, latency 110→70 ms)",
			100*(1-float64(compBytes)/float64(plainBytes))))
	}
	return t, nil
}

// AblationLinearScan quantifies footnote 6 of the paper: the linear-scan
// get's cost grows with the resident table size even when the matched subset
// is constant, while the indexed variant (the monitor's "indexed_get" knob —
// the wildcard-match structure the footnote suggests) stays near-flat.
func AblationLinearScan(matched int, tableSizes []int) (*Table, error) {
	if matched == 0 {
		matched = 100
	}
	if len(tableSizes) == 0 {
		tableSizes = []int{1000, 2000, 4000, 8000}
	}
	t := &Table{
		ID:      "A-SCAN",
		Title:   "get time vs resident table size (constant matched subset): scan vs indexed",
		Columns: []string{"table_size", "matched", "scan_get", "indexed_get"},
	}
	m, _ := packet.ParseFieldMatch(fmt.Sprintf("[nw_src=10.0.0.0/%d]", 32-bitsFor(matched)))
	timeGet := func(mon *monitor.Monitor) (time.Duration, int, error) {
		// Repeat and take the minimum: at small table sizes the get is
		// microseconds and allocator noise would dominate a single shot.
		best := time.Duration(0)
		n := 0
		for rep := 0; rep < 7; rep++ {
			start := time.Now()
			n = 0
			err := mon.GetPerflow(state.Reporting, m, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
				if _, err := build(func() {}); err != nil {
					return err
				}
				n++
				return nil
			})
			if err != nil {
				return 0, 0, err
			}
			if elapsed := time.Since(start); rep == 0 || elapsed < best {
				best = elapsed
			}
		}
		return best, n, nil
	}
	for _, size := range tableSizes {
		scanMon := monitor.New()
		// The index is on by default now; the scan column measures the
		// paper-faithful linear search, so force it off here.
		if err := scanMon.Config().Set("indexed_get", []string{"off"}); err != nil {
			return nil, err
		}
		preloadMonitor(scanMon, size).Close()
		scanTime, n, err := timeGet(scanMon)
		if err != nil {
			return nil, err
		}
		idxMon := monitor.New()
		if err := idxMon.Config().Set("indexed_get", []string{"on"}); err != nil {
			return nil, err
		}
		preloadMonitor(idxMon, size).Close()
		idxTime, n2, err := timeGet(idxMon)
		if err != nil {
			return nil, err
		}
		if n2 != n {
			return nil, fmt.Errorf("eval: indexed get returned %d chunks, scan returned %d", n2, n)
		}
		t.AddRow(size, n, scanTime, idxTime)
	}
	t.Notes = append(t.Notes, "paper footnote 6: wildcard-match techniques from switches could avoid the scan; the indexed column is that technique")
	return t, nil
}

func bitsFor(n int) int {
	b := 0
	for (1 << b) < n {
		b++
	}
	return b
}

// RenderAll runs every experiment with test-scale defaults and returns the
// rendered tables in a stable order. cmd/openmb-bench uses larger scales.
func RenderAll() ([]string, error) {
	var out []string
	type exp struct {
		name string
		run  func() (*Table, error)
	}
	exps := []exp{
		{"F7", func() (*Table, error) {
			return Figure7ScaleUpTimeline(Figure7Config{Duration: 600 * time.Millisecond, MoveAt: 200 * time.Millisecond, Bucket: 50 * time.Millisecond})
		}},
		{"F8", func() (*Table, error) { return Figure8FlowDurationCDF(Figure8Config{Flows: 1500}) }},
		{"T2", Table2Applicability},
		{"T3", func() (*Table, error) { return Table3REMigration(Table3Config{}) }},
		{"F9ab", func() (*Table, error) { return Figure9GetPut(Figure9Config{ChunkCounts: []int{100, 200}}) }},
		{"F9c", func() (*Table, error) {
			return Figure9Events(Figure9EventsConfig{ChunkCounts: []int{100}, Rates: []int{500, 1500}, Window: 60 * time.Millisecond}, false)
		}},
		{"F9d", func() (*Table, error) {
			return Figure9Events(Figure9EventsConfig{ChunkCounts: []int{100}, Rates: []int{500, 1500}, Window: 60 * time.Millisecond}, true)
		}},
		{"F10a", func() (*Table, error) {
			return Figure10aSingleMove(Figure10aConfig{ChunkCounts: []int{500, 1000}})
		}},
		{"F10b", func() (*Table, error) {
			return Figure10bConcurrentMoves(Figure10bConfig{Concurrency: []int{1, 2, 4}, ChunkCounts: []int{500}})
		}},
		{"S-SNAP", func() (*Table, error) { return SnapshotComparison(50, 40) }},
		{"S-SM", func() (*Table, error) { return SplitMergeBuffering(300, 1000) }},
		{"S-CORR", func() (*Table, error) { return CorrectnessDiff(51, 30) }},
		{"S-PERF", func() (*Table, error) { return LatencyDuringGet(200, 1500) }},
		{"S-COMP", func() (*Table, error) { return CompressionAblation(200) }},
		{"A-SCAN", func() (*Table, error) { return AblationLinearScan(50, []int{500, 1000, 2000}) }},
	}
	for _, e := range exps {
		tbl, err := e.run()
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", e.name, err)
		}
		out = append(out, tbl.Render())
	}
	return out, nil
}
