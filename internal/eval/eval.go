// Package eval is the evaluation harness: one entry point per table and
// figure of the paper's §8, each returning a rendered Table with the same
// rows/series the paper reports. The absolute numbers differ from the
// paper's testbed (this substrate is a simulator and an in-memory
// transport), but the shapes — who wins, the linear trends, the crossovers —
// are the reproduction targets. EXPERIMENTS.md records paper-vs-measured for
// each entry.
package eval

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/sbi"
)

// Codec re-exports sbi.Codec for flag plumbing in cmd/openmb-bench.
type Codec = sbi.Codec

// Transfer tuning: which SBI codec, chunk batch size, and controller shard
// count every experiment rig uses. Defaults are the binary codec (the SBI
// default since the hello negotiation shipped; OPENMB_CODEC=json restores
// the paper-faithful framing), one chunk per frame, and automatic router
// sharding. cmd/openmb-bench overrides them from -codec/-batch/-shards
// flags, and the OPENMB_CODEC / OPENMB_BATCH / OPENMB_SHARDS environment
// variables tune `go test -bench` runs without touching the benchmark table
// (so before/after sweeps compare identical experiments).
var (
	transferCodec = sbi.CodecBinary
	transferBatch = 1
	// transferShards is the controller router shard count: 0 selects the
	// controller's GOMAXPROCS-derived default, 1 the serialized ablation.
	transferShards = 0
)

func init() {
	if env := os.Getenv("OPENMB_CODEC"); env != "" {
		c, err := sbi.ParseCodec(env)
		if err != nil {
			// A typo'd sweep config must not silently fall back and
			// mislabel the resulting numbers.
			panic("eval: OPENMB_CODEC: " + err.Error())
		}
		transferCodec = c
	}
	if env := os.Getenv("OPENMB_BATCH"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 1 {
			panic("eval: OPENMB_BATCH: want a positive integer, got " + strconv.Quote(env))
		}
		transferBatch = n
	}
	if env := os.Getenv("OPENMB_SHARDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n < 0 {
			panic("eval: OPENMB_SHARDS: want a non-negative integer, got " + strconv.Quote(env))
		}
		transferShards = n
	}
}

// SetTransferTuning sets the codec and batch size used by every experiment's
// controller and middlebox connections. batch < 1 means 1.
func SetTransferTuning(codec sbi.Codec, batch int) error {
	c, err := sbi.ParseCodec(string(codec))
	if err != nil {
		return err
	}
	if batch < 1 {
		batch = 1
	}
	transferCodec, transferBatch = c, batch
	return nil
}

// TransferTuning reports the active codec and batch size.
func TransferTuning() (sbi.Codec, int) { return transferCodec, transferBatch }

// SetShards sets the controller router shard count every experiment rig uses:
// 0 means the controller's automatic default, 1 the serialized ablation.
func SetShards(n int) error {
	if n < 0 {
		return fmt.Errorf("eval: shards must be >= 0, got %d", n)
	}
	transferShards = n
	return nil
}

// Shards reports the active router shard setting (0 = automatic).
func Shards() int { return transferShards }

// Table is one experiment's output.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// rig is a lightweight controller plus middleboxes over an in-memory
// transport, for experiments that need no packet network.
type rig struct {
	ctrl *core.Controller
	tr   *sbi.MemTransport
	rts  []*mbox.Runtime
}

func newRig(opts core.Options) (*rig, error) {
	if opts.BatchSize == 0 {
		opts.BatchSize = transferBatch
	}
	if opts.Shards == 0 {
		opts.Shards = transferShards
	}
	r := &rig{ctrl: core.NewController(opts), tr: sbi.NewMemTransport()}
	if err := r.ctrl.Serve(r.tr, "ctrl"); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *rig) add(name string, logic mbox.Logic) (*mbox.Runtime, error) {
	rt := mbox.New(name, logic, mbox.Options{Codec: transferCodec})
	if err := rt.Connect(r.tr, "ctrl"); err != nil {
		rt.Close()
		return nil, err
	}
	if err := r.ctrl.WaitForMB(name, 5*time.Second); err != nil {
		rt.Close()
		return nil, err
	}
	r.rts = append(r.rts, rt)
	return rt, nil
}

func (r *rig) close() {
	for _, rt := range r.rts {
		rt.Close()
	}
	r.ctrl.Close()
}

// directMB wires a runtime to a raw southbound connection controlled by the
// harness itself, for timing individual get/put operations (Figure 9)
// without controller brokering in the measurement path.
type directMB struct {
	rt     *mbox.Runtime
	conn   *sbi.Conn
	mu     chan struct{} // serializes request issue
	nextID uint64
	// replies carries non-event frames; events are counted.
	replies chan *sbi.Message
	events  chan *sbi.Message
}

func newDirectMB(name string, logic mbox.Logic) (*directMB, error) {
	tr := sbi.NewMemTransport()
	l, err := tr.Listen("ctrl")
	if err != nil {
		return nil, err
	}
	rt := mbox.New(name, logic, mbox.Options{Codec: transferCodec})
	accepted := make(chan *sbi.Conn, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		c := sbi.NewConn(raw)
		hello, err := c.Receive()
		if err != nil {
			return
		}
		if err := c.Upgrade(hello.Codec); err != nil {
			return
		}
		accepted <- c
	}()
	if err := rt.Connect(tr, "ctrl"); err != nil {
		rt.Close()
		return nil, err
	}
	conn := <-accepted
	d := &directMB{
		rt: rt, conn: conn,
		mu:      make(chan struct{}, 1),
		replies: make(chan *sbi.Message, 4096),
		events:  make(chan *sbi.Message, 65536),
	}
	go func() {
		for {
			m, err := conn.Receive()
			if err != nil {
				close(d.replies)
				return
			}
			if m.Type == sbi.MsgEvent {
				select {
				case d.events <- m:
				default:
				}
			} else {
				d.replies <- m
			}
		}
	}()
	return d, nil
}

func (d *directMB) close() {
	d.conn.Close()
	d.rt.Close()
}

// request sends a request and returns its ID.
func (d *directMB) request(m *sbi.Message) (uint64, error) {
	d.nextID++
	m.ID = d.nextID
	return m.ID, d.conn.Send(m)
}

// collect reads replies for id until done/error, invoking onChunk per chunk.
func (d *directMB) collect(id uint64, timeout time.Duration, onChunk func(*sbi.Message)) (*sbi.Message, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case m, ok := <-d.replies:
			if !ok {
				return nil, fmt.Errorf("eval: connection closed")
			}
			if m.ID != id {
				continue
			}
			switch m.Type {
			case sbi.MsgChunk:
				if onChunk != nil {
					onChunk(m)
				}
			case sbi.MsgDone:
				return m, nil
			case sbi.MsgError:
				return nil, fmt.Errorf("eval: %s", m.Error)
			}
		case <-deadline.C:
			return nil, fmt.Errorf("eval: timed out waiting for reply %d", id)
		}
	}
}

// paceSpinWindow is how close to a packet deadline the pacer switches from
// sleeping to yielding: within the window, timer granularity (~1 ms on a
// loaded box) would overshoot the deadline, so the pacer spins on the clock
// instead — cooperatively (runtime.Gosched per iteration), because on a
// single-CPU host a hard busy-wait would starve the consumer it is pacing.
const paceSpinWindow = 100 * time.Microsecond

// pace runs send at the given packet rate until stop closes, following an
// absolute-deadline schedule: packet i is due at start + i/rate, and the
// loop sleeps until just before the next deadline, then spins to it (a
// hybrid sleep/spin pacer in the timerfd-plus-busy-poll style). The seed
// slept a fixed 1 ms per wakeup and relied on due-count catch-up, which
// holds the average rate but quantizes arrivals into scheduler-sized bursts
// and caps honest injection around the sleep granularity; the deadline
// schedule keeps per-packet fidelity into the >100k pps range while still
// absorbing oversleeps through the same catch-up arithmetic.
func pace(rate int, stop <-chan struct{}, send func(i int)) {
	start := time.Now()
	sent := 0
	for {
		select {
		case <-stop:
			return
		default:
		}
		due := int(time.Since(start) * time.Duration(rate) / time.Second)
		for sent < due {
			send(sent)
			sent++
		}
		// The next packet's absolute deadline; sleeping relative-to-now
		// would accumulate wakeup latency into the schedule.
		next := start.Add(time.Duration(sent+1) * time.Second / time.Duration(rate))
		for {
			select {
			case <-stop:
				return
			default:
			}
			remain := time.Until(next)
			if remain <= 0 {
				break
			}
			if remain > paceSpinWindow {
				time.Sleep(remain - paceSpinWindow)
				continue
			}
			runtime.Gosched()
		}
	}
}

// Wire-counter accumulation: experiments that exercise the southbound wire
// path record their middlebox connections' frame/flush counters here, so
// the benchmark table can report the frames-per-flush ratio the coalesced
// write path exists to raise (and the CI bench job can persist it in
// BENCH_5.json).
var (
	wireFrames  atomic.Uint64
	wireFlushes atomic.Uint64
)

// recordWire adds one connection's counters to the accumulated wire stats.
func recordWire(c sbi.Counters) {
	wireFrames.Add(c.Sent)
	wireFlushes.Add(c.Flushes)
}

// TakeWireStats returns the frames and flushes accumulated since the last
// call and resets the counters. frames/flushes is the mean frames-per-flush
// across the runs in between.
func TakeWireStats() (frames, flushes uint64) {
	return wireFrames.Swap(0), wireFlushes.Swap(0)
}

// percentile returns the p-quantile (0..1) of sorted durations.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// sortDurations sorts in place and returns its argument.
func sortDurations(d []time.Duration) []time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d
}
