package eval

import (
	"fmt"
	"math/bits"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/core"
	"openmb/internal/elastic"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// This file adds the elasticity experiment: a flash-crowd ramp driven
// through the deadline pacer against a middlebox group whose per-packet
// service time is latency-bound (each packet waits on a simulated downstream
// lookup), with the Stratos-style elasticity loop free to clone and merge
// instances while the crowd arrives. The paper scales instances by hand and
// measures the data-plane cost of one move (Figures 7/10); this closes the
// loop the paper leaves to the operator and asserts the end-to-end contract:
// the fleet grows under the crowd, shrinks after it, and not one packet or
// per-flow record is lost along the way. The OPENMB_ELASTIC=off ablation
// rides the identical workload on the frozen fleet and is expected to shed.

// FlashCrowdConfig parameterizes FlashCrowd.
type FlashCrowdConfig struct {
	// Flows is the flowspace width (power of two <= 256; default 64).
	Flows int
	// QueueSize bounds each instance's ingress ring (default 512).
	QueueSize int
	// PerPacket is the simulated downstream wait per packet (default 1ms;
	// host timer granularity caps one instance near 1/PerPacket pps).
	PerPacket time.Duration
	// Warm/Peak/Cool are the three phase lengths (defaults 300ms, 1.6s,
	// 1.2s); WarmRate/PeakRate/CoolRate the corresponding aggregate packet
	// rates (defaults 300, 2000, 200 pps). The defaults put the peak at
	// roughly 2.3x one instance's capacity, so the unscaled ablation must
	// overflow its ring while a fleet of three or four absorbs it.
	Warm, Peak, Cool             time.Duration
	WarmRate, PeakRate, CoolRate int
	// SLO bounds the controller's p99 move latency (default 1.5s).
	SLO time.Duration
	// Rows selects which rows to run: true = loop on, false = the frozen
	// ablation (default both, on first).
	Rows []bool
}

func (c *FlashCrowdConfig) setDefaults() {
	if c.Flows == 0 {
		c.Flows = 64
	}
	if c.QueueSize == 0 {
		c.QueueSize = 512
	}
	if c.PerPacket == 0 {
		c.PerPacket = time.Millisecond
	}
	if c.Warm == 0 {
		c.Warm = 300 * time.Millisecond
	}
	if c.Peak == 0 {
		c.Peak = 1600 * time.Millisecond
	}
	if c.Cool == 0 {
		c.Cool = 1200 * time.Millisecond
	}
	if c.WarmRate == 0 {
		c.WarmRate = 300
	}
	if c.PeakRate == 0 {
		c.PeakRate = 2000
	}
	if c.CoolRate == 0 {
		c.CoolRate = 200
	}
	if c.SLO == 0 {
		c.SLO = 1500 * time.Millisecond
	}
	if c.Rows == nil {
		c.Rows = []bool{true, false}
	}
}

// FlashCrowd ramps a heavy-tailed workload warm -> peak -> cool through the
// deadline pacer while the elasticity loop resizes the group, then verifies
// the equivalence contract. The loop-on row must finish with zero ring
// drops, exact per-flow conservation across every instance that ever
// existed (retired clones included), at least one scale-out AND one
// scale-in, and the controller's p99 move latency inside the SLO. The
// loop-off row must demonstrate the crowd was real: the frozen instance has
// to shed packets (or blow the SLO), and its sheds must account exactly for
// the per-flow shortfall.
func FlashCrowd(cfg FlashCrowdConfig) (*Table, error) {
	cfg.setDefaults()
	if cfg.Flows&(cfg.Flows-1) != 0 || cfg.Flows > 256 {
		return nil, fmt.Errorf("flashcrowd: Flows must be a power of two <= 256, got %d", cfg.Flows)
	}
	t := &Table{
		ID:      "elastic",
		Title:   "flash crowd: elasticity loop vs frozen fleet on the same ramp",
		Columns: []string{"loop", "peak_pps", "members_max", "scaleouts", "scaleins", "drops", "p99_move"},
	}
	for _, on := range cfg.Rows {
		r, err := runFlashCrowd(cfg, on)
		if err != nil {
			return nil, fmt.Errorf("flashcrowd loop=%s: %w", onOff(on), err)
		}
		p99 := "-"
		if on {
			p99 = r.p99Move.Round(time.Microsecond).String()
		}
		t.AddRow(onOff(on), cfg.PeakRate, r.maxMembers, int(r.totals.ScaleOuts), int(r.totals.ScaleIns), int(r.drops), p99)
		recordElastic(r.totals, r.drops)
	}
	t.Notes = append(t.Notes,
		"loop-on asserts zero drops, exact per-flow conservation over every instance ever spawned, >=1 scale-out and >=1 scale-in, p99 move inside SLO",
		"loop-off rides the identical ramp on one frozen instance; its ring must shed, and sheds must equal the per-flow shortfall exactly",
		fmt.Sprintf("per-packet service wait %v caps one instance near %d pps; the peak is ~%.1fx that",
			cfg.PerPacket, int(time.Second/cfg.PerPacket), float64(cfg.PeakRate)*float64(cfg.PerPacket)/float64(time.Second)))
	return t, nil
}

type fcResult struct {
	totals     elastic.Totals
	maxMembers int
	drops      uint64
	p99Move    time.Duration
}

// runFlashCrowd builds a 2-replica cluster rig with one seeded slow
// instance, runs the three-phase ramp, and (loop on) waits for the fleet to
// converge back to one member before auditing.
func runFlashCrowd(cfg FlashCrowdConfig, loopOn bool) (fcResult, error) {
	var res fcResult
	cl := core.NewCluster(core.ClusterOptions{
		Replicas: 2,
		Controller: core.Options{
			QuietPeriod: 50 * time.Millisecond,
			BatchSize:   transferBatch,
			Shards:      transferShards,
		},
	})
	defer cl.Close()
	tr := sbi.NewMemTransport()
	if err := cl.Serve(tr, "cluster"); err != nil {
		return res, err
	}

	drv := newFcDriver(cl, tr, cfg)
	defer drv.closeAll()
	seed, err := drv.seed("fc0")
	if err != nil {
		return res, err
	}
	src := elastic.NewClusterSource(cl)
	act := elastic.NewClusterActuator(cl, src, drv)
	act.Seed("fc", seed)

	var loop *elastic.Loop
	if loopOn {
		loop = elastic.New(elastic.Config{
			Interval:     20 * time.Millisecond,
			HighUtil:     0.25,
			LowRate:      120,
			HighWindows:  2,
			LowWindows:   3,
			Cooldown:     150 * time.Millisecond,
			MaxInstances: 4,
			MigrateRatio: -1, // scale decisions only; no replica migration noise
		}, src, act)
		loop.Start()
		defer loop.Close()
	}

	// Three-phase ramp. One sequence counter spans the phases so the
	// heavy-tailed schedule never restarts mid-run.
	sched := fcSchedule(cfg.Flows)
	injected := make([]uint64, cfg.Flows)
	seq := 0
	send := func(int) {
		f := sched[seq%len(sched)]
		seq++
		injected[f]++
		drv.inject(f)
	}
	for _, ph := range []struct {
		rate int
		dur  time.Duration
	}{{cfg.WarmRate, cfg.Warm}, {cfg.PeakRate, cfg.Peak}, {cfg.CoolRate, cfg.Cool}} {
		stop := make(chan struct{})
		timer := time.AfterFunc(ph.dur, func() { close(stop) })
		pace(ph.rate, stop, send)
		timer.Stop()
	}

	if loopOn {
		// Traffic is gone, so every member reads cold; the loop must now
		// retrace its own splits back down to the single seed.
		deadline := time.Now().Add(20 * time.Second)
		for len(act.Members("fc")) > 1 {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("fleet never converged back to 1 member (at %d)", len(act.Members("fc")))
			}
			time.Sleep(10 * time.Millisecond)
		}
		loop.Close()
		res.totals = loop.Totals()
	}

	if !drv.drainLive(10 * time.Second) {
		return res, fmt.Errorf("live instances did not drain")
	}
	if !cl.WaitTxns(30 * time.Second) {
		return res, fmt.Errorf("transactions never settled (%d live)", cl.LiveTxns())
	}

	res.maxMembers = drv.maxMembersSeen()
	res.drops = drv.ringDrops()
	for i := 0; i < cl.Replicas(); i++ {
		move, _, _ := cl.Replica(i).OpLatencies()
		if p := move.Quantile(0.99); p > res.p99Move {
			res.p99Move = p
		}
	}

	if loopOn && res.drops != 0 {
		return res, fmt.Errorf("loop-on run shed %d packets", res.drops)
	}
	var totalInjected, totalCounted uint64
	for f := 0; f < cfg.Flows; f++ {
		totalInjected += injected[f]
		got := drv.countFlow(f)
		totalCounted += got
		if loopOn && got != 1+injected[f] {
			return res, fmt.Errorf("flow %d: counted %d across all instances, want %d (preload 1 + injected %d)",
				f, got, 1+injected[f], injected[f])
		}
	}

	if loopOn {
		if res.totals.ScaleOuts < 1 || res.totals.ScaleIns < 1 {
			return res, fmt.Errorf("fleet never resized: %d scale-outs, %d scale-ins", res.totals.ScaleOuts, res.totals.ScaleIns)
		}
		if res.totals.Errors != 0 {
			return res, fmt.Errorf("%d actuator errors during the ramp", res.totals.Errors)
		}
		if res.p99Move > cfg.SLO {
			return res, fmt.Errorf("p99 move %v blew the %v SLO", res.p99Move, cfg.SLO)
		}
	} else {
		if res.drops == 0 && res.p99Move <= cfg.SLO {
			return res, fmt.Errorf("ablation showed no distress: 0 drops and p99 move %v inside SLO — the crowd was not a crowd", res.p99Move)
		}
		// Every injected packet was either counted or shed; the identity
		// failing would mean loss the ring never admitted to.
		if totalCounted+res.drops != uint64(cfg.Flows)+totalInjected {
			return res, fmt.Errorf("conservation identity broken: counted %d + drops %d != preload %d + injected %d",
				totalCounted, res.drops, cfg.Flows, totalInjected)
		}
	}
	return res, nil
}

// slowLogic wraps the counter middlebox with a per-packet downstream wait —
// a latency-bound service in the style of a DPI box blocking on an external
// reputation lookup. The wait is a sleep, not a spin, so instances sharing a
// host still scale aggregate throughput with instance count; that is the
// property scale-out exploits.
type slowLogic struct {
	*mbtest.CounterLogic
	cost time.Duration
}

func (l *slowLogic) Process(ctx *mbox.Context, p *packet.Packet) {
	time.Sleep(l.cost)
	l.CounterLogic.Process(ctx, p)
}

// fcRange is a contiguous flowspace slice [base, base+size).
type fcRange struct{ base, size int }

// fcDriver is the deployment half of the elastic group for this experiment:
// it spawns slow instances onto the shared cluster transport, carves
// flowspace in halves (buddy-style, so LIFO scale-in always rejoins
// cleanly), and routes injected packets through an atomically swapped
// flow->runtime table.
type fcDriver struct {
	cl  *core.Cluster
	tr  sbi.Transport
	cfg FlashCrowdConfig

	mu     sync.Mutex
	logics map[string]*slowLogic    // every instance ever spawned (audit)
	all    map[string]*mbox.Runtime // every runtime ever spawned (drop audit)
	live   map[string]*mbox.Runtime // not yet retired (drain set)
	ranges map[string]fcRange
	peak   int

	route atomic.Pointer[[]*mbox.Runtime]
}

func newFcDriver(cl *core.Cluster, tr sbi.Transport, cfg FlashCrowdConfig) *fcDriver {
	return &fcDriver{
		cl: cl, tr: tr, cfg: cfg,
		logics: map[string]*slowLogic{},
		all:    map[string]*mbox.Runtime{},
		live:   map[string]*mbox.Runtime{},
		ranges: map[string]fcRange{},
	}
}

// connect builds a slow instance and attaches it to the cluster.
func (d *fcDriver) connect(name string, preload int) (*elastic.Member, error) {
	logic := &slowLogic{CounterLogic: mbtest.NewCounterLogic(202), cost: d.cfg.PerPacket}
	if preload > 0 {
		logic.Preload(preload)
	}
	rt := mbox.New(name, logic, mbox.Options{Codec: transferCodec, QueueSize: d.cfg.QueueSize})
	if err := rt.Connect(d.tr, "cluster"); err != nil {
		rt.Close()
		return nil, err
	}
	if err := d.cl.WaitForMB(name, 5*time.Second); err != nil {
		rt.Close()
		return nil, err
	}
	d.mu.Lock()
	d.logics[name] = logic
	d.all[name] = rt
	d.live[name] = rt
	d.mu.Unlock()
	return &elastic.Member{Name: name, Runtime: rt}, nil
}

// seed creates the base member owning the whole flowspace.
func (d *fcDriver) seed(name string) (*elastic.Member, error) {
	m, err := d.connect(name, d.cfg.Flows)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	d.ranges[name] = fcRange{0, d.cfg.Flows}
	d.mu.Unlock()
	d.Route("fc", []*elastic.Member{m})
	return m, nil
}

// Spawn implements elastic.GroupDriver.
func (d *fcDriver) Spawn(group string, ordinal int) (*elastic.Member, error) {
	return d.connect(fmt.Sprintf("%s-%d", group, ordinal), 0)
}

// SplitMatch implements elastic.GroupDriver: halve the hot member's range,
// upper half to the clone.
func (d *fcDriver) SplitMatch(group string, from, to *elastic.Member) packet.FieldMatch {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := d.ranges[from.Name]
	lower := fcRange{r.base, r.size / 2}
	upper := fcRange{r.base + r.size/2, r.size / 2}
	d.ranges[from.Name] = lower
	d.ranges[to.Name] = upper
	return packet.FieldMatch{SrcPrefix: fcPrefix(upper)}
}

// Route implements elastic.GroupDriver: rebuild the flow->runtime table.
// Flows in no member's range (the window while a retiring member's slice is
// still being merged back) fall to the base member; any live member is a
// correct counter since the audit sums over all instances.
func (d *fcDriver) Route(group string, members []*elastic.Member) {
	d.mu.Lock()
	table := make([]*mbox.Runtime, d.cfg.Flows)
	for _, m := range members {
		if r, ok := d.ranges[m.Name]; ok {
			for f := r.base; f < r.base+r.size && f < d.cfg.Flows; f++ {
				table[f] = m.Runtime
			}
		}
	}
	for f := range table {
		if table[f] == nil {
			table[f] = members[0].Runtime
		}
	}
	if len(members) > d.peak {
		d.peak = len(members)
	}
	d.mu.Unlock()
	d.route.Store(&table)
}

// Retire implements elastic.GroupDriver: rejoin the retiree's slice with its
// buddy (the member holding the other half of the split) and close the
// runtime. The logic and runtime stay on the books for the audit.
func (d *fcDriver) Retire(group string, m *elastic.Member) {
	d.mu.Lock()
	r, ok := d.ranges[m.Name]
	if ok {
		delete(d.ranges, m.Name)
		for name, pr := range d.ranges {
			if pr.base+pr.size == r.base && pr.size == r.size {
				d.ranges[name] = fcRange{pr.base, pr.size + r.size}
				break
			}
		}
	}
	delete(d.live, m.Name)
	d.mu.Unlock()
	if m.Runtime != nil {
		m.Runtime.Close()
	}
}

func (d *fcDriver) inject(f int) {
	(*d.route.Load())[f].HandlePacket(mbtest.PacketForFlow(f))
}

func (d *fcDriver) drainLive(timeout time.Duration) bool {
	d.mu.Lock()
	rts := make([]*mbox.Runtime, 0, len(d.live))
	for _, rt := range d.live {
		rts = append(rts, rt)
	}
	d.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for _, rt := range rts {
		if !rt.Drain(time.Until(deadline)) {
			return false
		}
	}
	return true
}

func (d *fcDriver) ringDrops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, rt := range d.all {
		m := rt.Metrics()
		total += m.DroppedPackets + m.DroppedReplays
	}
	return total
}

// countFlow sums the flow's counter across every instance ever spawned.
func (d *fcDriver) countFlow(f int) uint64 {
	key := mbtest.FlowN(f).Canonical()
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, l := range d.logics {
		total += l.Count(key)
	}
	return total
}

func (d *fcDriver) maxMembersSeen() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

func (d *fcDriver) closeAll() {
	d.mu.Lock()
	rts := make([]*mbox.Runtime, 0, len(d.all))
	for _, rt := range d.all {
		rts = append(rts, rt)
	}
	d.mu.Unlock()
	for _, rt := range rts {
		rt.Close()
	}
}

// fcPrefix maps a flowspace slice onto the source prefix FlowN generates:
// flow i sources from 10.0.0.i, so an aligned power-of-two slice is exactly
// one /26.../32 prefix.
func fcPrefix(r fcRange) netip.Prefix {
	return netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(r.base)}), 32-bits.TrailingZeros(uint(r.size)))
}

// fcSchedule builds the heavy-tailed injection order: flow popularity falls
// off as 1/(1+rank), with ranks assigned by bit-reversal so every aligned
// half of the flowspace carries an equal share of the load — a prefix split
// therefore halves a member's traffic, which is what makes scale-out
// effective against a skewed crowd. The order is shuffled by a fixed-seed
// LCG so interleaving is adversarial but deterministic.
func fcSchedule(flows int) []int {
	logF := bits.TrailingZeros(uint(flows))
	var sched []int
	for f := 0; f < flows; f++ {
		rank := int(bits.Reverse8(uint8(f)) >> (8 - logF))
		for n := 0; n <= 96/(1+rank); n++ {
			sched = append(sched, f)
		}
	}
	s := uint64(0x9e3779b97f4a7c15)
	for i := len(sched) - 1; i > 0; i-- {
		s = s*6364136223846793005 + 1442695040888963407
		j := int(s % uint64(i+1))
		sched[i], sched[j] = sched[j], sched[i]
	}
	return sched
}

// Elastic-stat accumulation for the CI bench job, in the TakeWireStats
// pattern: FlashCrowd records each row's decisions and sheds here so the
// benchmark harness can persist them in BENCH_9.json.
var (
	elasticScaleOuts atomic.Uint64
	elasticScaleIns  atomic.Uint64
	elasticDrops     atomic.Uint64
)

func recordElastic(t elastic.Totals, drops uint64) {
	elasticScaleOuts.Add(t.ScaleOuts)
	elasticScaleIns.Add(t.ScaleIns)
	elasticDrops.Add(drops)
}

// TakeElasticStats returns the scale-outs, scale-ins, and ring drops
// accumulated by FlashCrowd runs since the last call, and resets them.
func TakeElasticStats() (scaleOuts, scaleIns, drops uint64) {
	return elasticScaleOuts.Swap(0), elasticScaleIns.Swap(0), elasticDrops.Swap(0)
}
