package packet

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Pool recycles Packet values so the simulator's data path performs no
// steady-state heap allocation per packet. It implements the borrow/release
// discipline the zero-copy netsim path is built on:
//
//   - Get/Clone hand out a packet holding one reference;
//   - whoever is handed a pooled packet owns exactly one reference and must
//     either pass it on (a netsim Send/Inject or a runtime forward transfers
//     ownership) or call Release;
//   - Retain takes an additional reference for holders that keep the packet
//     past the hand-off (a recording Host, an event attachment);
//   - when the last reference is released the packet returns to the free
//     list, payload buffer and all.
//
// Heap packets (anything not obtained from a Pool) are outside the
// discipline: Retain and Release on them are no-ops, so code written against
// the borrow contract runs unchanged on the copying (ablation) path.
type Pool struct {
	opts PoolOptions

	mu   sync.Mutex
	free []*Packet

	// live tracks outstanding reference counts in accounting mode; it is
	// the invariant checker behind the leak/double-release tests.
	live map[*Packet]int32

	gets     atomic.Uint64
	news     atomic.Uint64
	releases atomic.Uint64

	// outstanding counts packets currently borrowed (Get/Clone minus final
	// releases). Zero after quiesce means every borrow was balanced.
	outstanding atomic.Int64
}

// PoolOptions configures a Pool.
type PoolOptions struct {
	// Accounting enables the invariant checker: every reference operation
	// is cross-checked against a live table under the pool lock, so leaks
	// (borrowed packets never released) are attributable and double
	// releases are caught even after the packet was recycled. It is meant
	// for tests; the fast path uses atomics only.
	Accounting bool
	// PayloadCap preallocates this much payload capacity in fresh packets
	// (default 256), so pooled clones of typical trace payloads never grow
	// their buffer after warm-up.
	PayloadCap int
}

// NewPool creates an empty pool.
func NewPool(opts PoolOptions) *Pool {
	if opts.PayloadCap <= 0 {
		opts.PayloadCap = 256
	}
	p := &Pool{opts: opts}
	if opts.Accounting {
		p.live = map[*Packet]int32{}
	}
	return p
}

// Get returns a reset packet holding one reference.
func (pl *Pool) Get() *Packet {
	pl.gets.Add(1)
	pl.outstanding.Add(1)
	pl.mu.Lock()
	var p *Packet
	if n := len(pl.free); n > 0 {
		p = pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
	} else {
		pl.news.Add(1)
		p = &Packet{Payload: make([]byte, 0, pl.opts.PayloadCap)}
		p.pool = pl
	}
	if pl.live != nil {
		pl.live[p] = 1
	}
	pl.mu.Unlock()
	p.refs = 1
	return p
}

// Clone returns a pooled deep copy of src (which may be a heap packet or
// belong to any pool), holding one reference.
func (pl *Pool) Clone(src *Packet) *Packet {
	q := pl.Get()
	src.copyFieldsTo(q)
	q.Payload = append(q.Payload[:0], src.Payload...)
	return q
}

// release drops one reference; on the last it resets the packet and returns
// it to the free list. Releasing more references than were held panics: a
// double release is a caller bug that would otherwise corrupt a recycled
// packet silently.
func (pl *Pool) release(p *Packet) {
	if pl.live != nil {
		pl.releaseAccounted(p)
		return
	}
	n := atomic.AddInt32(&p.refs, -1)
	if n < 0 {
		panic("packet: release of a packet with no outstanding references (double release?)")
	}
	if n > 0 {
		return
	}
	pl.recycle(p)
}

// releaseAccounted is the accounting-mode release: reference counts live in
// the pool's table, checked under the pool lock, so a release of an already
// freed (possibly recycled) packet is always caught. The refs update happens
// under the same lock: deferring it past the unlock would race the final
// releaser's recycle (Reset's plain write to refs), since nothing else
// orders the two.
func (pl *Pool) releaseAccounted(p *Packet) {
	pl.mu.Lock()
	n, ok := pl.live[p]
	if !ok || n <= 0 {
		pl.mu.Unlock()
		panic("packet: release of a packet with no outstanding references (double release?)")
	}
	n--
	atomic.AddInt32(&p.refs, -1)
	if n > 0 {
		pl.live[p] = n
		pl.mu.Unlock()
		return
	}
	delete(pl.live, p)
	pl.mu.Unlock()
	pl.recycle(p)
}

func (pl *Pool) recycle(p *Packet) {
	pl.releases.Add(1)
	pl.outstanding.Add(-1)
	p.Reset()
	pl.mu.Lock()
	pl.free = append(pl.free, p)
	pl.mu.Unlock()
}

// retain adds one reference. In accounting mode the refs update stays under
// the pool lock for the same reason as releaseAccounted's.
func (pl *Pool) retain(p *Packet) {
	if pl.live == nil {
		atomic.AddInt32(&p.refs, 1)
		return
	}
	pl.mu.Lock()
	n, ok := pl.live[p]
	if !ok || n <= 0 {
		pl.mu.Unlock()
		panic("packet: retain of a packet with no outstanding references")
	}
	pl.live[p] = n + 1
	atomic.AddInt32(&p.refs, 1)
	pl.mu.Unlock()
}

// PoolStats is a snapshot of pool counters.
type PoolStats struct {
	// Gets counts Get/Clone calls, News the subset that allocated a fresh
	// packet (steady state: News stops growing), Releases the final
	// releases that recycled a packet.
	Gets, News, Releases uint64
	// Outstanding is the number of currently borrowed packets.
	Outstanding int64
	// FreeLen is the current free-list length.
	FreeLen int
}

// Stats returns a snapshot of the pool's counters.
func (pl *Pool) Stats() PoolStats {
	pl.mu.Lock()
	freeLen := len(pl.free)
	pl.mu.Unlock()
	return PoolStats{
		Gets:        pl.gets.Load(),
		News:        pl.news.Load(),
		Releases:    pl.releases.Load(),
		Outstanding: pl.outstanding.Load(),
		FreeLen:     freeLen,
	}
}

// Outstanding returns the number of borrowed packets not yet fully released.
func (pl *Pool) Outstanding() int64 { return pl.outstanding.Load() }

// CheckLeaks returns nil when every borrowed packet has been released
// exactly once (Outstanding == 0). In accounting mode the error lists the
// leaked packets; otherwise it reports only the count. Call after the
// network has quiesced and all holders (hosts, runtimes) have drained.
func (pl *Pool) CheckLeaks() error {
	n := pl.outstanding.Load()
	if n == 0 {
		return nil
	}
	if pl.live == nil {
		return fmt.Errorf("packet: %d borrowed packets never released", n)
	}
	pl.mu.Lock()
	var leaks []string
	for p, refs := range pl.live {
		leaks = append(leaks, fmt.Sprintf("%s refs=%d", p, refs))
	}
	pl.mu.Unlock()
	sort.Strings(leaks)
	const maxListed = 8
	if len(leaks) > maxListed {
		leaks = append(leaks[:maxListed], fmt.Sprintf("... and %d more", len(leaks)-maxListed))
	}
	return fmt.Errorf("packet: %d borrowed packets never released: %s", n, strings.Join(leaks, "; "))
}

// Pooled reports whether p is managed by a pool (and therefore subject to
// the borrow/release discipline).
func (p *Packet) Pooled() bool { return p.pool != nil }

// Retain takes an additional reference on a pooled packet, for holders that
// keep it beyond the hand-off that delivered it. No-op for heap packets.
func (p *Packet) Retain() {
	if p.pool != nil {
		p.pool.retain(p)
	}
}

// Release drops one reference on a pooled packet, recycling it when it was
// the last. No-op for heap packets, so callers can release unconditionally.
func (p *Packet) Release() {
	if p.pool != nil {
		p.pool.release(p)
	}
}

// Reset clears every field but keeps the payload buffer's capacity (and the
// owning pool), so a recycled packet absorbs its next payload without
// allocating.
func (p *Packet) Reset() {
	payload := p.Payload[:0]
	pool := p.pool
	*p = Packet{}
	p.Payload = payload
	p.pool = pool
}
