package packet

import (
	"net/netip"
	"strings"
	"sync"
	"testing"
)

func poolPacket() *Packet {
	return &Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   ProtoTCP,
		SrcPort: 1234, DstPort: 80,
		Seq: 42, Ack: 7, Flags: FlagACK, TTL: 64, ID: 9,
		Payload:   []byte("hello pool"),
		Timestamp: 1000,
	}
}

func TestPoolRecyclesPackets(t *testing.T) {
	pl := NewPool(PoolOptions{})
	p := pl.Get()
	if !p.Pooled() {
		t.Fatal("Get returned an unpooled packet")
	}
	p.Release()
	q := pl.Get()
	if q != p {
		t.Fatal("released packet was not recycled")
	}
	q.Release()
	st := pl.Stats()
	if st.News != 1 || st.Gets != 2 || st.Releases != 2 || st.Outstanding != 0 {
		t.Fatalf("stats after recycle: %+v", st)
	}
}

func TestPoolCloneIsDeepAndReset(t *testing.T) {
	pl := NewPool(PoolOptions{})
	src := poolPacket()
	c := pl.Clone(src)
	if c.String() != src.String() || c.Seq != src.Seq || c.Timestamp != src.Timestamp {
		t.Fatalf("clone differs: %v vs %v", c, src)
	}
	c.Payload[0] = 'X'
	if src.Payload[0] == 'X' {
		t.Fatal("clone shares payload storage with source")
	}
	c.Release()
	// The recycled packet must come back fully reset but keep its payload
	// capacity, so the next clone does not allocate.
	r := pl.Get()
	if r != c {
		t.Fatal("expected the released clone back")
	}
	if r.SrcIP.IsValid() || r.Seq != 0 || len(r.Payload) != 0 {
		t.Fatalf("recycled packet not reset: %+v", r)
	}
	if cap(r.Payload) < len(src.Payload) {
		t.Fatalf("recycled packet lost payload capacity: %d", cap(r.Payload))
	}
	r.Release()
}

func TestPooledPacketCloneDrawsFromPool(t *testing.T) {
	pl := NewPool(PoolOptions{})
	p := pl.Clone(poolPacket())
	q := p.Clone() // Packet.Clone on a pooled packet must use the pool
	if !q.Pooled() {
		t.Fatal("clone of a pooled packet is not pooled")
	}
	p.Release()
	q.Release()
	if err := pl.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestHeapPacketRetainReleaseNoops(t *testing.T) {
	p := poolPacket()
	p.Retain()
	p.Release()
	p.Release() // no-ops must tolerate arbitrary imbalance on heap packets
	if q := p.Clone(); q.Pooled() {
		t.Fatal("heap clone became pooled")
	}
}

func TestRetainBalancesRelease(t *testing.T) {
	pl := NewPool(PoolOptions{Accounting: true})
	p := pl.Get()
	p.Retain()
	p.Release()
	if pl.Outstanding() != 1 {
		t.Fatalf("outstanding after retain+release: %d", pl.Outstanding())
	}
	p.Release()
	if err := pl.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	for _, accounting := range []bool{false, true} {
		pl := NewPool(PoolOptions{Accounting: accounting})
		p := pl.Get()
		p.Release()
		// Reborrow so the fast path's refcount alone cannot catch the
		// stale release in accounting mode.
		q := pl.Get()
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("double release did not panic (accounting=%v)", accounting)
				}
			}()
			if accounting {
				// q == p after recycling: the stale holder releases
				// the packet it no longer owns... after the packet
				// was already fully released once more.
				q.Release()
				q.Release()
			} else {
				p.Release()
				p.Release()
			}
		}()
	}
}

func TestCheckLeaksReportsBorrowedPackets(t *testing.T) {
	pl := NewPool(PoolOptions{Accounting: true})
	p := pl.Clone(poolPacket())
	q := pl.Get()
	err := pl.CheckLeaks()
	if err == nil {
		t.Fatal("CheckLeaks missed two borrowed packets")
	}
	if !strings.Contains(err.Error(), "2 borrowed") {
		t.Fatalf("leak report: %v", err)
	}
	p.Release()
	q.Release()
	if err := pl.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolConcurrentBorrowers(t *testing.T) {
	pl := NewPool(PoolOptions{Accounting: true})
	tpl := poolPacket()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := pl.Clone(tpl)
				p.Retain()
				q := p.Clone()
				p.Release()
				q.Release()
				p.Release()
			}
		}()
	}
	wg.Wait()
	if err := pl.CheckLeaks(); err != nil {
		t.Fatal(err)
	}
	if st := pl.Stats(); st.News > 64 {
		t.Fatalf("pool kept allocating under reuse: %+v", st)
	}
}
