package packet

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func samplePacket() *Packet {
	return &Packet{
		SrcIP:   addr("10.0.0.1"),
		DstIP:   addr("192.168.1.2"),
		Proto:   ProtoTCP,
		SrcPort: 43211,
		DstPort: 80,
		Seq:     1000,
		Ack:     2000,
		Flags:   FlagSYN | FlagACK,
		TTL:     64,
		ID:      7,
		Payload: []byte("GET / HTTP/1.1\r\n"),
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	b := p.Marshal(nil)
	if len(b) != p.MarshaledSize() {
		t.Fatalf("MarshaledSize=%d, got %d bytes", p.MarshaledSize(), len(b))
	}
	var q Packet
	if err := q.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	p.Timestamp = 0
	q.Timestamp = 0
	if p.SrcIP != q.SrcIP || p.DstIP != q.DstIP || p.Proto != q.Proto ||
		p.SrcPort != q.SrcPort || p.DstPort != q.DstPort ||
		p.Seq != q.Seq || p.Ack != q.Ack || p.Flags != q.Flags ||
		p.TTL != q.TTL || p.ID != q.ID || !bytes.Equal(p.Payload, q.Payload) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, q)
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	var q Packet
	if err := q.Unmarshal(make([]byte, headerLen-1)); err != ErrTruncated {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	// Exactly headerLen bytes is a valid empty-payload packet.
	if err := q.Unmarshal(make([]byte, headerLen)); err != nil {
		t.Fatalf("headerLen bytes should parse: %v", err)
	}
	if len(q.Payload) != 0 {
		t.Fatalf("want empty payload, got %d bytes", len(q.Payload))
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := samplePacket()
	q := p.Clone()
	q.Payload[0] = 'X'
	if p.Payload[0] == 'X' {
		t.Fatal("Clone shares payload storage")
	}
	q.SrcPort = 1
	if p.SrcPort == 1 {
		t.Fatal("Clone shares header")
	}
}

// randomKey builds a FlowKey from quick-generated raw values.
func randomKey(r *rand.Rand) FlowKey {
	var a, b [4]byte
	r.Read(a[:])
	r.Read(b[:])
	protos := []uint8{ProtoTCP, ProtoUDP, ProtoICMP}
	return FlowKey{
		SrcIP:   netip.AddrFrom4(a),
		DstIP:   netip.AddrFrom4(b),
		Proto:   protos[r.Intn(len(protos))],
		SrcPort: uint16(r.Intn(65536)),
		DstPort: uint16(r.Intn(65536)),
	}
}

func TestFastHashSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := randomKey(r)
		return k.FastHash() == k.Reverse().FastHash()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalIdempotentAndDirectionless(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := randomKey(r)
		c := k.Canonical()
		return c == c.Canonical() && c == k.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := randomKey(r)
		return k.Reverse().Reverse() == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64, payload []byte) bool {
		r := rand.New(rand.NewSource(seed))
		k := randomKey(r)
		p := &Packet{
			SrcIP: k.SrcIP, DstIP: k.DstIP, Proto: k.Proto,
			SrcPort: k.SrcPort, DstPort: k.DstPort,
			Seq: r.Uint32(), Ack: r.Uint32(),
			Flags: uint8(r.Intn(64)), TTL: uint8(r.Intn(256)),
			ID: uint16(r.Intn(65536)), Payload: payload,
		}
		var q Packet
		if err := q.Unmarshal(p.Marshal(nil)); err != nil {
			return false
		}
		return q.Flow() == p.Flow() && bytes.Equal(q.Payload, p.Payload) &&
			q.Seq == p.Seq && q.Ack == p.Ack && q.Flags == p.Flags && q.ID == p.ID
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowKeyAsMapKey(t *testing.T) {
	m := map[FlowKey]int{}
	k := samplePacket().Flow()
	m[k] = 1
	m[k.Reverse()] = 2
	if len(m) != 2 {
		t.Fatalf("directed keys must be distinct, map has %d entries", len(m))
	}
	m2 := map[FlowKey]int{}
	m2[k.Canonical()] = 1
	m2[k.Reverse().Canonical()] = 2
	if len(m2) != 1 {
		t.Fatalf("canonical keys must collide, map has %d entries", len(m2))
	}
}

func TestFieldMatchBasics(t *testing.T) {
	k := FlowKey{
		SrcIP: addr("1.1.1.5"), DstIP: addr("2.2.2.2"),
		Proto: ProtoTCP, SrcPort: 1234, DstPort: 80,
	}
	cases := []struct {
		spec string
		want bool
	}{
		{"[*]", true},
		{"", true},
		{"[nw_src=1.1.1.0/24]", true},
		{"[nw_src=1.1.2.0/24]", false},
		{"[nw_src=1.1.1.5]", true},
		{"[nw_dst=2.2.2.2,tp_dst=80]", true},
		{"[nw_dst=2.2.2.2,tp_dst=443]", false},
		{"[nw_proto=tcp]", true},
		{"[nw_proto=udp]", false},
		{"[tp_src=1234]", true},
		{"[tp_src=1235]", false},
	}
	for _, c := range cases {
		m, err := ParseFieldMatch(c.spec)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if got := m.Match(k); got != c.want {
			t.Errorf("%q.Match(%v) = %v, want %v", c.spec, k, got, c.want)
		}
	}
}

func TestFieldMatchEither(t *testing.T) {
	k := FlowKey{SrcIP: addr("1.1.1.5"), DstIP: addr("2.2.2.2"), Proto: ProtoTCP, SrcPort: 1234, DstPort: 80}
	m, _ := ParseFieldMatch("[nw_src=2.2.2.0/24]")
	if m.Match(k) {
		t.Fatal("forward direction should not match")
	}
	if !m.MatchEither(k) {
		t.Fatal("MatchEither should match the reverse direction")
	}
}

func TestFieldMatchStringRoundTrip(t *testing.T) {
	specs := []string{
		"[*]",
		"[nw_src=1.1.1.0/24]",
		"[nw_src=1.1.1.0/24,nw_dst=10.0.0.0/8,nw_proto=tcp,tp_src=5,tp_dst=80]",
		"[nw_proto=udp,tp_dst=53]",
		"[tp_src=0]",
	}
	for _, s := range specs {
		m, err := ParseFieldMatch(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		m2, err := ParseFieldMatch(m.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", m.String(), err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Errorf("%q: round trip mismatch %v vs %v", s, m, m2)
		}
	}
}

func TestFieldMatchJSONRoundTrip(t *testing.T) {
	m, _ := ParseFieldMatch("[nw_src=1.1.1.0/24,tp_dst=80]")
	b, err := m.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var m2 FieldMatch
	if err := m2.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("JSON round trip mismatch: %v vs %v", m, m2)
	}
}

func TestFieldMatchParseErrors(t *testing.T) {
	bad := []string{
		"[nw_src=notanip]",
		"[bogus=1]",
		"[nw_proto=xyz]",
		"[tp_src=notaport]",
		"[justtext]",
	}
	for _, s := range bad {
		if _, err := ParseFieldMatch(s); err == nil {
			t.Errorf("%q: expected parse error", s)
		}
	}
}

func TestGranularityOrdering(t *testing.T) {
	all, _ := ParseFieldMatch("[*]")
	subnet, _ := ParseFieldMatch("[nw_src=1.1.1.0/24]")
	host, _ := ParseFieldMatch("[nw_src=1.1.1.5]")
	conn, _ := ParseFieldMatch("[nw_src=1.1.1.5,nw_dst=2.2.2.2,nw_proto=tcp,tp_src=9,tp_dst=80]")
	if !(all.Granularity() < subnet.Granularity()) {
		t.Error("subnet should be finer than wildcard")
	}
	if !(subnet.Granularity() < host.Granularity()) {
		t.Error("host should be finer than subnet")
	}
	if !(host.Granularity() < conn.Granularity()) {
		t.Error("5-tuple should be finer than host")
	}
}

func TestConstrainsDst(t *testing.T) {
	m1, _ := ParseFieldMatch("[nw_src=1.1.1.0/24]")
	m2, _ := ParseFieldMatch("[nw_dst=2.2.2.2]")
	m3, _ := ParseFieldMatch("[tp_dst=80]")
	if m1.ConstrainsDst() {
		t.Error("src-only match should not constrain dst")
	}
	if !m2.ConstrainsDst() || !m3.ConstrainsDst() {
		t.Error("dst matches should constrain dst")
	}
}

func TestMatchSubsetProperty(t *testing.T) {
	// If a key matches a host-level predicate it must match the covering
	// subnet predicate too.
	subnet, _ := ParseFieldMatch("[nw_src=1.1.1.0/24]")
	f := func(last uint8, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := randomKey(r)
		k.SrcIP = netip.AddrFrom4([4]byte{1, 1, 1, last})
		host, _ := ParseFieldMatch("[nw_src=" + k.SrcIP.String() + "]")
		if !host.Match(k) {
			return false
		}
		return subnet.Match(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, p.MarshaledSize())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Marshal(buf[:0])
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := samplePacket()
	wire := p.Marshal(nil)
	var q Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := q.Unmarshal(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFastHash(b *testing.B) {
	k := samplePacket().Flow()
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += k.FastHash()
	}
	_ = sink
}

func BenchmarkFieldMatch(b *testing.B) {
	m, _ := ParseFieldMatch("[nw_src=10.0.0.0/8,nw_proto=tcp,tp_dst=80]")
	k := samplePacket().Flow()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Match(k)
	}
}
