package packet

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ParseFlowKey parses the String form of a FlowKey:
// "src:port>dst:port/proto", e.g. "10.0.0.1:1234>192.168.1.2:80/tcp".
func ParseFlowKey(s string) (FlowKey, error) {
	var k FlowKey
	slash := strings.LastIndexByte(s, '/')
	if slash < 0 {
		return k, fmt.Errorf("packet: flow key %q: missing protocol", s)
	}
	switch proto := s[slash+1:]; proto {
	case "tcp":
		k.Proto = ProtoTCP
	case "udp":
		k.Proto = ProtoUDP
	case "icmp":
		k.Proto = ProtoICMP
	default:
		n, err := strconv.Atoi(strings.TrimPrefix(proto, "proto"))
		if err != nil || n < 0 || n > 255 {
			return k, fmt.Errorf("packet: flow key %q: bad protocol %q", s, proto)
		}
		k.Proto = uint8(n)
	}
	dirs := strings.SplitN(s[:slash], ">", 2)
	if len(dirs) != 2 {
		return k, fmt.Errorf("packet: flow key %q: missing direction separator", s)
	}
	var err error
	if k.SrcIP, k.SrcPort, err = parseEndpoint(dirs[0]); err != nil {
		return k, fmt.Errorf("packet: flow key %q: %w", s, err)
	}
	if k.DstIP, k.DstPort, err = parseEndpoint(dirs[1]); err != nil {
		return k, fmt.Errorf("packet: flow key %q: %w", s, err)
	}
	return k, nil
}

func parseEndpoint(s string) (netip.Addr, uint16, error) {
	colon := strings.LastIndexByte(s, ':')
	if colon < 0 {
		return netip.Addr{}, 0, fmt.Errorf("endpoint %q: missing port", s)
	}
	a, err := netip.ParseAddr(s[:colon])
	if err != nil {
		return netip.Addr{}, 0, err
	}
	port, err := strconv.Atoi(s[colon+1:])
	if err != nil || port < 0 || port > 65535 {
		return netip.Addr{}, 0, fmt.Errorf("endpoint %q: bad port", s)
	}
	return a, uint16(port), nil
}
