package packet

import (
	"encoding/json"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// FieldMatch is the HeaderFieldList of the OpenMB APIs: a conjunction of
// header-field predicates naming a set of flows. An empty FieldMatch matches
// every flow (the paper's moveInternal(Prads2,Prads1,[]) uses this to move
// all per-flow state).
//
// Each field is optional; unset fields are wildcards. IP fields accept CIDR
// prefixes, so "nw_src=1.1.1.0/24" from §6.2 is SrcPrefix 1.1.1.0/24.
type FieldMatch struct {
	SrcPrefix netip.Prefix // zero value = wildcard
	DstPrefix netip.Prefix
	Proto     uint8 // 0 = wildcard
	SrcPort   uint16
	DstPort   uint16
	// HasSrcPort/HasDstPort disambiguate "port 0" from "wildcard"; the
	// scenarios in the paper never match port 0, but the API must.
	HasSrcPort bool
	HasDstPort bool
}

// MatchAll is the empty match; it matches every flow.
var MatchAll = FieldMatch{}

// Match reports whether k satisfies every set predicate.
func (m FieldMatch) Match(k FlowKey) bool {
	if m.SrcPrefix.IsValid() && !m.SrcPrefix.Contains(k.SrcIP) {
		return false
	}
	if m.DstPrefix.IsValid() && !m.DstPrefix.Contains(k.DstIP) {
		return false
	}
	if m.Proto != 0 && m.Proto != k.Proto {
		return false
	}
	if m.HasSrcPort && m.SrcPort != k.SrcPort {
		return false
	}
	if m.HasDstPort && m.DstPort != k.DstPort {
		return false
	}
	return true
}

// MatchEither reports whether the match covers the flow in either direction.
// Connection-oriented middleboxes key state canonically, so a request that
// names the client->server direction must also select the reverse direction.
func (m FieldMatch) MatchEither(k FlowKey) bool {
	return m.Match(k) || m.Match(k.Reverse())
}

// Compile lowers the match into a single predicate closure, specialized to
// the fields that are actually set, so a hot path can evaluate it without
// re-checking prefix validity or Has* flags per packet. The returned
// predicate has Match semantics (forward direction only); callers that need
// either-direction coverage compose it with FlowKey.Reverse. The wildcard
// match compiles to a constant-true closure with no captures.
//
// This is the skbtrace discipline the flow tracer relies on: the filter is
// compiled exactly once, at arm time, never on the packet path.
func (m FieldMatch) Compile() func(FlowKey) bool {
	if m.IsAll() {
		return func(FlowKey) bool { return true }
	}
	type check struct {
		hasSrc, hasDst bool
		srcPfx, dstPfx netip.Prefix
		proto          uint8
		srcPort        uint16
		dstPort        uint16
		hasSrcPort     bool
		hasDstPort     bool
	}
	c := check{
		hasSrc: m.SrcPrefix.IsValid(), srcPfx: m.SrcPrefix,
		hasDst: m.DstPrefix.IsValid(), dstPfx: m.DstPrefix,
		proto:      m.Proto,
		srcPort:    m.SrcPort,
		dstPort:    m.DstPort,
		hasSrcPort: m.HasSrcPort,
		hasDstPort: m.HasDstPort,
	}
	return func(k FlowKey) bool {
		if c.proto != 0 && c.proto != k.Proto {
			return false
		}
		if c.hasSrcPort && c.srcPort != k.SrcPort {
			return false
		}
		if c.hasDstPort && c.dstPort != k.DstPort {
			return false
		}
		if c.hasSrc && !c.srcPfx.Contains(k.SrcIP) {
			return false
		}
		if c.hasDst && !c.dstPfx.Contains(k.DstIP) {
			return false
		}
		return true
	}
}

// IsAll reports whether the match is the full wildcard.
func (m FieldMatch) IsAll() bool {
	return !m.SrcPrefix.IsValid() && !m.DstPrefix.IsValid() && m.Proto == 0 && !m.HasSrcPort && !m.HasDstPort
}

// Granularity returns a coarse measure of how specific the match is: the
// number of header fields it constrains (prefixes count fractionally by
// prefix length). Middleboxes use it to reject requests finer than their
// own state granularity (§4.1.2).
func (m FieldMatch) Granularity() int {
	g := 0
	if m.SrcPrefix.IsValid() {
		g++
		if m.SrcPrefix.IsSingleIP() {
			g++
		}
	}
	if m.DstPrefix.IsValid() {
		g++
		if m.DstPrefix.IsSingleIP() {
			g++
		}
	}
	if m.Proto != 0 {
		g++
	}
	if m.HasSrcPort {
		g++
	}
	if m.HasDstPort {
		g++
	}
	return g
}

// ConstrainsDst reports whether the match restricts destination IP or port.
// Middleboxes like a load balancer, which key per-flow state only by source
// endpoint, treat destination constraints as finer-than-supported requests.
func (m FieldMatch) ConstrainsDst() bool {
	return m.DstPrefix.IsValid() || m.HasDstPort
}

// String renders the match in the paper's "nw_src=1.1.1.0/24" style.
func (m FieldMatch) String() string {
	if m.IsAll() {
		return "[*]"
	}
	var parts []string
	if m.SrcPrefix.IsValid() {
		parts = append(parts, "nw_src="+m.SrcPrefix.String())
	}
	if m.DstPrefix.IsValid() {
		parts = append(parts, "nw_dst="+m.DstPrefix.String())
	}
	if m.Proto != 0 {
		parts = append(parts, "nw_proto="+protoName(m.Proto))
	}
	if m.HasSrcPort {
		parts = append(parts, fmt.Sprintf("tp_src=%d", m.SrcPort))
	}
	if m.HasDstPort {
		parts = append(parts, fmt.Sprintf("tp_dst=%d", m.DstPort))
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// ParseFieldMatch parses the String form: a comma-separated list of
// field=value pairs, optionally wrapped in brackets. "[*]", "[]", "*" and ""
// all denote the full wildcard.
func ParseFieldMatch(s string) (FieldMatch, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	s = strings.TrimSpace(s)
	if s == "" || s == "*" {
		return FieldMatch{}, nil
	}
	var m FieldMatch
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return FieldMatch{}, fmt.Errorf("packet: bad match field %q", part)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "nw_src":
			p, err := parsePrefix(val)
			if err != nil {
				return FieldMatch{}, fmt.Errorf("packet: nw_src: %w", err)
			}
			m.SrcPrefix = p
		case "nw_dst":
			p, err := parsePrefix(val)
			if err != nil {
				return FieldMatch{}, fmt.Errorf("packet: nw_dst: %w", err)
			}
			m.DstPrefix = p
		case "nw_proto":
			switch val {
			case "tcp":
				m.Proto = ProtoTCP
			case "udp":
				m.Proto = ProtoUDP
			case "icmp":
				m.Proto = ProtoICMP
			default:
				if _, err := fmt.Sscanf(val, "%d", &m.Proto); err != nil {
					return FieldMatch{}, fmt.Errorf("packet: nw_proto %q", val)
				}
			}
		case "tp_src":
			if _, err := fmt.Sscanf(val, "%d", &m.SrcPort); err != nil {
				return FieldMatch{}, fmt.Errorf("packet: tp_src %q", val)
			}
			m.HasSrcPort = true
		case "tp_dst":
			if _, err := fmt.Sscanf(val, "%d", &m.DstPort); err != nil {
				return FieldMatch{}, fmt.Errorf("packet: tp_dst %q", val)
			}
			m.HasDstPort = true
		default:
			return FieldMatch{}, fmt.Errorf("packet: unknown match field %q", key)
		}
	}
	return m, nil
}

func parsePrefix(s string) (netip.Prefix, error) {
	if strings.Contains(s, "/") {
		return netip.ParsePrefix(s)
	}
	a, err := netip.ParseAddr(s)
	if err != nil {
		return netip.Prefix{}, err
	}
	return netip.PrefixFrom(a, a.BitLen()), nil
}

// MarshalJSON encodes the match as its string form, which keeps the JSON
// wire protocol close to the paper's examples.
func (m FieldMatch) MarshalJSON() ([]byte, error) {
	return json.Marshal(m.String())
}

// UnmarshalJSON decodes the string form.
func (m *FieldMatch) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	parsed, err := ParseFieldMatch(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// SortKeys sorts flow keys deterministically (by string form); harness code
// uses it to make table output stable across runs. The string form is
// computed once per key, not once per comparison — sorting is on every
// get's path, and O(n log n) Sprintf calls were a measurable share of
// Figure 9's get time.
func SortKeys(keys []FlowKey) {
	if len(keys) < 2 {
		return
	}
	type keyed struct {
		s string
		k FlowKey
	}
	tmp := make([]keyed, len(keys))
	for i, k := range keys {
		tmp[i] = keyed{k.String(), k}
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].s < tmp[j].s })
	for i := range tmp {
		keys[i] = tmp[i].k
	}
}
