// Package packet provides the packet model used throughout OpenMB: a small,
// allocation-conscious layer stack (Ethernet, IPv4, TCP, UDP, ICMP) with
// binary marshaling, flow identification, and the header-field match lists
// that the southbound and northbound APIs use to name per-flow state.
//
// The design follows the conventions of mature Go packet libraries: layers
// are decoded into preallocated structs, flows and endpoints are comparable
// values usable as map keys, and a symmetric FastHash supports load
// balancing where A->B and B->A must land in the same bucket.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Protocol numbers used in the IPv4 header. Only the protocols the
// middleboxes understand are defined; anything else is carried opaquely.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: bad IP version")
	ErrBadChecksum = errors.New("packet: bad checksum")
)

// Packet is a decoded packet. Header fields are stored unpacked so that
// middlebox logic can inspect them without re-parsing; Payload aliases the
// application bytes. A Packet is self-contained: Marshal regenerates the
// wire form.
type Packet struct {
	// SrcIP and DstIP are the IPv4 endpoints.
	SrcIP, DstIP netip.Addr
	// Proto is one of ProtoICMP, ProtoTCP, ProtoUDP.
	Proto uint8
	// SrcPort and DstPort are transport ports (zero for ICMP).
	SrcPort, DstPort uint16
	// Seq is the TCP sequence number (zero otherwise).
	Seq uint32
	// Ack is the TCP acknowledgment number (zero otherwise).
	Ack uint32
	// Flags holds TCP flag bits (zero otherwise).
	Flags uint8
	// TTL is the IPv4 time-to-live.
	TTL uint8
	// ID is the IPv4 identification field; traces use it as a per-flow
	// sequence number so experiments can detect loss and reordering.
	ID uint16
	// Payload is the application payload.
	Payload []byte
	// Timestamp is the trace or arrival time in nanoseconds since the
	// start of the run. It is metadata, not serialized on the wire.
	Timestamp int64

	// pool and refs implement the zero-copy borrow/release discipline (see
	// Pool). pool is nil for ordinary heap packets, which makes Retain and
	// Release no-ops on them. refs is manipulated with sync/atomic.
	pool *Pool
	refs int32
}

// copyFieldsTo copies p's protocol fields (everything but Payload and the
// pool bookkeeping) into q. Used by the clone paths, which must not copy the
// reference count: a whole-struct copy would read refs non-atomically while
// other holders release.
func (p *Packet) copyFieldsTo(q *Packet) {
	q.SrcIP, q.DstIP = p.SrcIP, p.DstIP
	q.Proto = p.Proto
	q.SrcPort, q.DstPort = p.SrcPort, p.DstPort
	q.Seq, q.Ack = p.Seq, p.Ack
	q.Flags, q.TTL = p.Flags, p.TTL
	q.ID = p.ID
	q.Timestamp = p.Timestamp
}

// headerLen is the fixed encoding size before the payload: a 2-byte length
// prefix is not included here; see Marshal.
const headerLen = 1 + 4 + 4 + 2 + 2 + 4 + 4 + 1 + 1 + 2 // 25

// MarshaledSize returns the exact length of Marshal's output.
func (p *Packet) MarshaledSize() int { return headerLen + len(p.Payload) }

// Marshal appends the wire form of p to b and returns the extended slice.
// The format is a compact fixed header followed by the payload; it is the
// repository's native trace/wire format (the simulator carries *Packet
// values directly, so no per-hop marshaling happens on the fast path).
func (p *Packet) Marshal(b []byte) []byte {
	var hdr [headerLen]byte
	hdr[0] = p.Proto
	src := p.SrcIP.As4()
	dst := p.DstIP.As4()
	copy(hdr[1:5], src[:])
	copy(hdr[5:9], dst[:])
	binary.BigEndian.PutUint16(hdr[9:11], p.SrcPort)
	binary.BigEndian.PutUint16(hdr[11:13], p.DstPort)
	binary.BigEndian.PutUint32(hdr[13:17], p.Seq)
	binary.BigEndian.PutUint32(hdr[17:21], p.Ack)
	hdr[21] = p.Flags
	hdr[22] = p.TTL
	binary.BigEndian.PutUint16(hdr[23:25], p.ID)
	b = append(b, hdr[:]...)
	return append(b, p.Payload...)
}

// Unmarshal decodes the wire form produced by Marshal. The payload aliases b.
func (p *Packet) Unmarshal(b []byte) error {
	if len(b) < headerLen {
		return ErrTruncated
	}
	p.Proto = b[0]
	p.SrcIP = netip.AddrFrom4([4]byte(b[1:5]))
	p.DstIP = netip.AddrFrom4([4]byte(b[5:9]))
	p.SrcPort = binary.BigEndian.Uint16(b[9:11])
	p.DstPort = binary.BigEndian.Uint16(b[11:13])
	p.Seq = binary.BigEndian.Uint32(b[13:17])
	p.Ack = binary.BigEndian.Uint32(b[17:21])
	p.Flags = b[21]
	p.TTL = b[22]
	p.ID = binary.BigEndian.Uint16(b[23:25])
	p.Payload = b[headerLen:]
	return nil
}

// Clone returns a deep copy of p, including the payload. Middleboxes clone
// packets before attaching them to reprocess events so later in-place reuse
// of trace buffers cannot corrupt the event. A pooled packet clones from its
// pool (the copy holds one reference); a heap packet clones to the heap, so
// the copying ablation path never touches a pool.
func (p *Packet) Clone() *Packet {
	if p.pool != nil {
		return p.pool.Clone(p)
	}
	q := &Packet{}
	p.copyFieldsTo(q)
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return q
}

// CloneDetached returns a heap deep copy of p outside any pool, whatever
// p's origin. Recording endpoints use it to copy a delivered packet out and
// release the pooled original immediately, instead of retaining it — a
// retained record would pin a pool packet for the recorder's whole
// lifetime.
func (p *Packet) CloneDetached() *Packet {
	q := &Packet{}
	p.copyFieldsTo(q)
	if p.Payload != nil {
		q.Payload = make([]byte, len(p.Payload))
		copy(q.Payload, p.Payload)
	}
	return q
}

// Flow returns the directed flow key of the packet.
func (p *Packet) Flow() FlowKey {
	return FlowKey{
		SrcIP:   p.SrcIP,
		DstIP:   p.DstIP,
		Proto:   p.Proto,
		SrcPort: p.SrcPort,
		DstPort: p.DstPort,
	}
}

// String renders a compact human-readable form for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s len=%d", p.SrcIP, p.SrcPort, p.DstIP, p.DstPort, protoName(p.Proto), len(p.Payload))
}

func protoName(proto uint8) string {
	switch proto {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	}
	return fmt.Sprintf("proto%d", proto)
}

// FlowKey is a directed 5-tuple. It is comparable and therefore usable as a
// map key; middleboxes index per-flow state by (possibly masked) FlowKeys.
type FlowKey struct {
	SrcIP, DstIP     netip.Addr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, Proto: k.Proto, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Canonical returns the direction-independent form of the key: the endpoint
// that compares lower is placed first. Both directions of a connection map
// to the same canonical key, which is how connection tables index sessions.
func (k FlowKey) Canonical() FlowKey {
	if endpointLess(k.DstIP, k.DstPort, k.SrcIP, k.SrcPort) {
		return k.Reverse()
	}
	return k
}

func endpointLess(aIP netip.Addr, aPort uint16, bIP netip.Addr, bPort uint16) bool {
	switch aIP.Compare(bIP) {
	case -1:
		return true
	case 1:
		return false
	}
	return aPort < bPort
}

// FastHash returns a symmetric 64-bit hash: k and k.Reverse() hash equal.
// It is an FNV-1a variant over the canonical key, suitable for sharding
// flows across workers while keeping both directions together.
func (k FlowKey) FastHash() uint64 {
	c := k.Canonical()
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	src := c.SrcIP.As4()
	dst := c.DstIP.As4()
	for _, b := range src {
		mix(b)
	}
	for _, b := range dst {
		mix(b)
	}
	mix(byte(c.SrcPort >> 8))
	mix(byte(c.SrcPort))
	mix(byte(c.DstPort >> 8))
	mix(byte(c.DstPort))
	mix(c.Proto)
	return h
}

// String renders the key as "src:port>dst:port/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", k.SrcIP, k.SrcPort, k.DstIP, k.DstPort, protoName(k.Proto))
}

// MarshalText implements encoding.TextMarshaler: the String form, or empty
// text for the zero key. It lets FlowKey-valued fields (events, chunks)
// serialize themselves in JSON without shadow string fields.
func (k FlowKey) MarshalText() ([]byte, error) {
	if k == (FlowKey{}) {
		return nil, nil
	}
	return []byte(k.String()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler, inverting MarshalText.
func (k *FlowKey) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*k = FlowKey{}
		return nil
	}
	parsed, err := ParseFlowKey(string(b))
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// FlowKeyWireSize is the fixed binary encoding size of a FlowKey:
// src(4) dst(4) proto(1) sport(2) dport(2).
const FlowKeyWireSize = 13

// AppendBinary appends the 13-byte wire form of k to b. Invalid (zero)
// addresses encode as 0.0.0.0; callers that must distinguish the zero key
// track presence separately, and callers whose keys may hold non-IPv4
// addresses must reject them before encoding (the SBI binary codec does) —
// the fixed form cannot represent them.
func (k FlowKey) AppendBinary(b []byte) []byte {
	var src, dst [4]byte
	if k.SrcIP.Is4() {
		src = k.SrcIP.As4()
	}
	if k.DstIP.Is4() {
		dst = k.DstIP.As4()
	}
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	b = append(b, k.Proto)
	return append(b,
		byte(k.SrcPort>>8), byte(k.SrcPort),
		byte(k.DstPort>>8), byte(k.DstPort))
}

// DecodeFlowKey decodes the wire form produced by AppendBinary.
func DecodeFlowKey(b []byte) (FlowKey, error) {
	if len(b) < FlowKeyWireSize {
		return FlowKey{}, ErrTruncated
	}
	return FlowKey{
		SrcIP:   netip.AddrFrom4([4]byte(b[0:4])),
		DstIP:   netip.AddrFrom4([4]byte(b[4:8])),
		Proto:   b[8],
		SrcPort: binary.BigEndian.Uint16(b[9:11]),
		DstPort: binary.BigEndian.Uint16(b[11:13]),
	}, nil
}
