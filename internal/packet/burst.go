package packet

import (
	"os"
	"sync/atomic"
)

// burstDefault selects the burst-mode data path: vectorized ProcessBurst
// through middlebox logic, batched HandleBurst delivery on netsim links, and
// direct burst handoff between co-located runtimes. It lives in this package
// (the one layer both mbox and netsim already depend on) so a single switch
// gates the whole path. Default on; OPENMB_BURST=off restores the
// seed-faithful per-packet path as the measurable ablation, following the
// OPENMB_ZEROCOPY / OPENMB_COALESCE discipline.
var burstDefault atomic.Bool

func init() {
	switch v := os.Getenv("OPENMB_BURST"); v {
	case "", "1", "on", "true", "yes":
		burstDefault.Store(true)
	case "0", "off", "false", "no":
		burstDefault.Store(false)
	default:
		// A typo'd ablation sweep must fail loudly, not silently run the
		// wrong configuration and mislabel its numbers.
		panic("packet: OPENMB_BURST: want on/off (or 1/0), got " + v)
	}
}

// SetBurstDefault overrides the burst-mode default for runtimes and networks
// constructed after the call (each captures the setting at construction).
func SetBurstDefault(on bool) { burstDefault.Store(on) }

// BurstDefault reports whether the burst-mode data path is enabled.
func BurstDefault() bool { return burstDefault.Load() }
