package faults

import (
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// TestWritePlanDeterministic proves the fault schedule is a pure function
// of the seed: two transports with the same options produce identical
// drop/delay/split decisions for the same write sequence.
func TestWritePlanDeterministic(t *testing.T) {
	opts := Options{Seed: 99, DropProb: 0.1, Delay: time.Millisecond, DelayProb: 0.4, PartialWrites: true}
	a := New(sbi.NewMemTransport(), opts)
	b := New(sbi.NewMemTransport(), opts)
	ca, cb := &conn{tr: a}, &conn{tr: b}
	for i := 0; i < 500; i++ {
		n := 2 + i%700
		dropA, delayA, splitA, darkA := a.writePlan(ca, n)
		dropB, delayB, splitB, darkB := b.writePlan(cb, n)
		if dropA != dropB || delayA != delayB || splitA != splitB || darkA != darkB {
			t.Fatalf("write %d diverged: (%v %v %v %v) vs (%v %v %v %v)",
				i, dropA, delayA, splitA, darkA, dropB, delayB, splitB, darkB)
		}
	}
}

// TestFramingSurvivesPartialWritesAndDelays runs a real controller/runtime
// pair — binary codec, frames split at arbitrary byte boundaries, jittered
// latency — through a full move. Every layer above the transport must be
// oblivious: registration, the chunk stream, put ACKs, and the final counts
// all exact.
func TestFramingSurvivesPartialWritesAndDelays(t *testing.T) {
	const flows = 25
	ft := New(sbi.NewMemTransport(), Options{
		Seed:          7,
		PartialWrites: true,
		Delay:         200 * time.Microsecond,
		DelayProb:     0.2,
	})
	c := core.NewController(core.Options{QuietPeriod: 60 * time.Millisecond})
	if err := c.Serve(ft, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := mbtest.NewCounterLogic(16)
	dst := mbtest.NewCounterLogic(16)
	for _, mb := range []struct {
		name  string
		logic *mbtest.CounterLogic
	}{{"src", src}, {"dst", dst}} {
		rt := mbox.New(mb.name, mb.logic, mbox.Options{Codec: "binary"})
		defer rt.Close()
		if err := rt.Connect(ft, "ctrl"); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitForMB(mb.name, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}

	src.Preload(flows)
	if _, err := c.Stats("src", packet.MatchAll); err != nil {
		t.Fatalf("stats through faulty transport: %v", err)
	}
	if err := c.MoveInternal("src", "dst", packet.MatchAll); err != nil {
		t.Fatalf("move through faulty transport: %v", err)
	}
	if !c.WaitTxns(30 * time.Second) {
		t.Fatal("move did not complete")
	}
	if got := dst.Flows(); got != flows {
		t.Fatalf("destination holds %d flows, want %d", got, flows)
	}
	if got := src.Flows(); got != 0 {
		t.Fatalf("source still holds %d flows", got)
	}
}

// TestKillAllSevers proves KillAll really cuts every tracked connection:
// the controller sees the disconnect and deregisters, and the transport's
// live-connection count drops to zero.
func TestKillAllSevers(t *testing.T) {
	ft := New(sbi.NewMemTransport(), Options{})
	c := core.NewController(core.Options{})
	if err := c.Serve(ft, "ctrl"); err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rt := mbox.New("mb", mbtest.NewCounterLogic(4), mbox.Options{})
	defer rt.Close()
	if err := rt.Connect(ft, "ctrl"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitForMB("mb", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if n := ft.Conns(); n == 0 {
		t.Fatal("no connections tracked")
	}
	if n := ft.KillAll(); n == 0 {
		t.Fatal("KillAll found nothing to kill")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(c.Middleboxes()) == 0 && ft.Conns() == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after KillAll: %v still registered, %d conns tracked",
				c.Middleboxes(), ft.Conns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
