// Package faults is a deterministic fault-injection harness for the SBI
// transport layer. It wraps any sbi.Transport and perturbs the byte streams
// flowing through it — added latency, partial writes that split frames at
// arbitrary byte boundaries, probabilistic connection drops — and offers
// scenario controls for whole-link failures: KillAll severs every live
// connection (an MB flap storm or a crashed controller, as seen from the
// wire), and SetPartition blackholes one direction (an asymmetric network
// partition: writes pretend to succeed, bytes never arrive).
//
// Randomness is drawn from a single seeded source, so a scenario's fault
// schedule is reproducible run to run for a fixed interleaving of writes;
// under heavy goroutine concurrency the schedule is reproducible
// statistically rather than byte-for-byte (the rng is shared, and draw
// order follows the scheduler). Chaos tests pin the seed so failures
// reproduce under `-race` with the same flag values.
package faults

import (
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options selects which faults the transport injects. The zero value
// injects nothing (a transparent wrapper), so scenarios enable exactly the
// faults they study — including the faults-off ablation the CI chaos job
// runs at parity.
type Options struct {
	// Seed seeds the fault schedule's random source.
	Seed int64
	// DropProb is the per-write probability of severing the connection
	// instead of writing (the write fails, both ends see the close).
	DropProb float64
	// Delay and DelayProb inject Delay of latency before a write with the
	// given probability (1 with any Delay set and DelayProb 0 means every
	// write).
	Delay     time.Duration
	DelayProb float64
	// PartialWrites splits each multi-byte write into two Write calls at a
	// random boundary, exercising the framing layers' partial-read paths.
	PartialWrites bool
}

// Transport wraps an inner sbi.Transport, injecting the configured faults
// into every connection established through it (both the dialed side and
// the accepted side).
type Transport struct {
	inner interface {
		Listen(addr string) (net.Listener, error)
		Dial(addr string) (net.Conn, error)
	}
	opts Options

	mu    sync.Mutex
	rng   *rand.Rand
	conns map[*conn]struct{}

	// partDial blackholes bytes written by dialed (middlebox-side) conns;
	// partAccept blackholes bytes written by accepted (controller-side)
	// conns. Guarded by mu.
	partDial, partAccept bool
}

// New wraps inner with fault injection per opts.
func New(inner interface {
	Listen(addr string) (net.Listener, error)
	Dial(addr string) (net.Conn, error)
}, opts Options) *Transport {
	if opts.Delay > 0 && opts.DelayProb == 0 {
		opts.DelayProb = 1
	}
	return &Transport{
		inner: inner,
		opts:  opts,
		rng:   rand.New(rand.NewSource(opts.Seed)),
		conns: map[*conn]struct{}{},
	}
}

// Listen wraps the inner listener so accepted connections inject faults.
func (t *Transport) Listen(addr string) (net.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &listener{Listener: l, tr: t}, nil
}

// Dial wraps the dialed connection with fault injection.
func (t *Transport) Dial(addr string) (net.Conn, error) {
	raw, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.track(raw, true), nil
}

func (t *Transport) track(raw net.Conn, dialed bool) *conn {
	c := &conn{Conn: raw, tr: t, dialed: dialed}
	t.mu.Lock()
	t.conns[c] = struct{}{}
	t.mu.Unlock()
	return c
}

func (t *Transport) untrack(c *conn) {
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
}

// Conns reports how many connections are currently live through the
// transport.
func (t *Transport) Conns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// KillAll severs every live connection and returns how many it closed: a
// flap storm (every middlebox's link drops at once) or, equivalently, what
// a crashed peer process looks like from the wire.
func (t *Transport) KillAll() int {
	t.mu.Lock()
	victims := make([]*conn, 0, len(t.conns))
	for c := range t.conns {
		victims = append(victims, c)
	}
	t.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
	return len(victims)
}

// SetPartition blackholes traffic per direction: dialToAccept discards
// bytes written by dialed (middlebox-side) connections, acceptToDial those
// written by accepted (controller-side) ones. Discarded writes pretend to
// succeed — the writer keeps going, the bytes never arrive — which is the
// asymmetric-partition failure mode: each side believes it is talking while
// one direction is dark. SetPartition(false, false) heals the link for
// connections established afterwards (an existing conn's stream is
// byte-oriented: resuming delivery mid-frame would desynchronize the codec,
// so partitioned conns stay dark until closed).
func (t *Transport) SetPartition(dialToAccept, acceptToDial bool) {
	t.mu.Lock()
	t.partDial = dialToAccept
	t.partAccept = acceptToDial
	t.mu.Unlock()
}

// writePlan decides one write's fate under the shared rng.
func (t *Transport) writePlan(c *conn, n int) (drop bool, delay time.Duration, split int, blackhole bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c.dialed && t.partDial || !c.dialed && t.partAccept {
		// A blackholed conn stays blackholed (see SetPartition): latch it
		// so a heal cannot resume mid-frame.
		c.dark = true
	}
	if c.dark {
		return false, 0, 0, true
	}
	if t.opts.DropProb > 0 && t.rng.Float64() < t.opts.DropProb {
		return true, 0, 0, false
	}
	if t.opts.DelayProb > 0 && t.rng.Float64() < t.opts.DelayProb {
		delay = t.opts.Delay
	}
	if t.opts.PartialWrites && n > 1 {
		split = 1 + t.rng.Intn(n-1)
	}
	return false, delay, split, false
}

// conn injects faults into one connection's write path. Reads pass through
// untouched: every injected fault is something the peer's write path (or
// the network between) did, which is exactly how the read side experiences
// real faults.
type conn struct {
	net.Conn
	tr     *Transport
	dialed bool
	// dark latches a partition: once any write was discarded, all later
	// ones are too (mid-frame resumption would desynchronize the codec).
	// Guarded by tr.mu.
	dark bool

	closeOnce sync.Once
	closeErr  error
}

func (c *conn) Write(b []byte) (int, error) {
	drop, delay, split, blackhole := c.tr.writePlan(c, len(b))
	if blackhole {
		return len(b), nil
	}
	if drop {
		c.Close()
		return 0, io.ErrClosedPipe
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	if split > 0 {
		n, err := c.Conn.Write(b[:split])
		if err != nil {
			return n, err
		}
		n2, err := c.Conn.Write(b[split:])
		return n + n2, err
	}
	return c.Conn.Write(b)
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() {
		c.tr.untrack(c)
		c.closeErr = c.Conn.Close()
	})
	return c.closeErr
}

// listener wraps accepted connections with fault injection.
type listener struct {
	net.Listener
	tr *Transport
}

func (l *listener) Accept() (net.Conn, error) {
	raw, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.tr.track(raw, false), nil
}
