package sbi

import (
	"net"
	"testing"
	"time"

	"openmb/internal/packet"
)

// TestReceiveMalformedJSON verifies the connection surfaces decode errors
// for garbage frames instead of panicking or hanging.
func TestReceiveMalformedJSON(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		a.Write([]byte("this is not json\n"))
	}()
	if _, err := conn.Receive(); err == nil {
		t.Fatal("garbage frame accepted")
	}
}

// TestReceiveBadEventKey verifies an event with a malformed key string is
// rejected at the framing layer.
func TestReceiveBadEventKey(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		a.Write([]byte(`{"type":"event","event":{"kind":"reprocess","key":"garbage-key","seq":1}}` + "\n"))
	}()
	if _, err := conn.Receive(); err == nil {
		t.Fatal("malformed event key accepted")
	}
}

// TestReceivePartialFrameThenClose verifies a half-written frame ends in a
// clean error once the peer closes.
func TestReceivePartialFrameThenClose(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		a.Write([]byte(`{"type":"done","id":`))
		a.Close()
	}()
	done := make(chan error, 1)
	go func() {
		_, err := conn.Receive()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("partial frame accepted")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("receive hung on partial frame")
	}
}

// TestUnknownFieldsIgnored confirms forward compatibility: frames with
// unknown fields decode (the southbound API can evolve without breaking
// deployed middleboxes — the decoupling argument of §5).
func TestUnknownFieldsIgnored(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	conn := NewConn(b)
	go func() {
		a.Write([]byte(`{"type":"request","id":3,"op":"stats","futureField":{"x":1},"match":"[nw_src=10.0.0.0/8]"}` + "\n"))
	}()
	m, err := conn.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if m.Op != OpStats || m.ID != 3 {
		t.Fatalf("frame: %+v", m)
	}
	want, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/8]")
	if m.Match != want {
		t.Fatalf("match: %v", m.Match)
	}
}
