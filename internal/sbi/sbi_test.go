package sbi

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"testing/quick"

	"openmb/internal/packet"
	"openmb/internal/state"
)

func testKey(t *testing.T) packet.FlowKey {
	t.Helper()
	k, err := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func connPair() (*Conn, *Conn) {
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestSendReceiveRequest(t *testing.T) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	m, _ := packet.ParseFieldMatch("[nw_src=1.1.1.0/24]")
	req := &Message{Type: MsgRequest, ID: 7, Op: OpGetSupportPerflow, Match: m}
	go func() {
		if err := c1.Send(req); err != nil {
			t.Error(err)
		}
	}()
	got, err := c2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgRequest || got.ID != 7 || got.Op != OpGetSupportPerflow {
		t.Fatalf("got %+v", got)
	}
	if got.Match.String() != "[nw_src=1.1.1.0/24]" {
		t.Fatalf("match round trip: %v", got.Match)
	}
}

func TestSendReceiveChunk(t *testing.T) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	k := testKey(t)
	blob := bytes.Repeat([]byte{0xAB}, 189)
	go c1.Send(&Message{Type: MsgChunk, ID: 3, Chunk: &state.Chunk{Key: k, Blob: blob}})
	got, err := c2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Chunk == nil || got.Chunk.Key != k || !bytes.Equal(got.Chunk.Blob, blob) {
		t.Fatalf("chunk mismatch: %+v", got.Chunk)
	}
}

func TestEventKeyRoundTrip(t *testing.T) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	k := testKey(t)
	ev := &Event{Kind: EventReprocess, Key: k, Seq: 42, Class: state.Supporting, Packet: []byte{1, 2, 3}}
	go c1.Send(&Message{Type: MsgEvent, Event: ev})
	got, err := c2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Event == nil || got.Event.Key != k || got.Event.Seq != 42 || got.Event.Kind != EventReprocess {
		t.Fatalf("event mismatch: %+v", got.Event)
	}
	if got.Event.Class != state.Supporting {
		t.Fatalf("class lost: %v", got.Event.Class)
	}
}

func TestIntrospectionEventValues(t *testing.T) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	k := testKey(t)
	ev := &Event{
		Kind: EventIntrospection, Key: k, Code: "nat.mapping.created",
		Values: map[string]string{"external": "5.5.5.5:4000"},
	}
	go c1.Send(&Message{Type: MsgEvent, Event: ev})
	got, err := c2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.Event.Code != "nat.mapping.created" || got.Event.Values["external"] != "5.5.5.5:4000" {
		t.Fatalf("introspection mismatch: %+v", got.Event)
	}
}

func TestConcurrentSends(t *testing.T) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < n/4; j++ {
				c1.Send(&Message{Type: MsgDone, ID: uint64(base + j)})
			}
		}(i * 1000)
	}
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		m, err := c2.Receive()
		if err != nil {
			t.Fatal(err)
		}
		if seen[m.ID] {
			t.Fatalf("duplicate id %d: interleaved frames", m.ID)
		}
		seen[m.ID] = true
	}
	wg.Wait()
	if got := c1.Counters().Sent; got != n {
		t.Fatalf("sent counter: %d", got)
	}
}

func TestReceiveAfterCloseIsEOF(t *testing.T) {
	c1, c2 := connPair()
	c1.Close()
	if _, err := c2.Receive(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
}

func TestMessageJSONOmitsEmpty(t *testing.T) {
	b, err := json.Marshal(&Message{Type: MsgDone, ID: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, forbidden := range []string{"chunk", "event", "entries", "stats", "blob", "op"} {
		if bytes.Contains(b, []byte(`"`+forbidden+`"`)) {
			t.Errorf("empty field %q serialized: %s", forbidden, b)
		}
	}
}

func TestMemTransport(t *testing.T) {
	tr := NewMemTransport()
	l, err := tr.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr().String() != "ctrl" || l.Addr().Network() != "mem" {
		t.Fatalf("addr: %v", l.Addr())
	}

	done := make(chan *Message, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		conn := NewConn(c)
		m, err := conn.Receive()
		if err != nil {
			t.Error(err)
			return
		}
		done <- m
	}()

	raw, err := tr.Dial("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	conn := NewConn(raw)
	if err := conn.Send(&Message{Type: MsgHello, Name: "prads1", Kind: "monitor"}); err != nil {
		t.Fatal(err)
	}
	m := <-done
	if m.Name != "prads1" || m.Kind != "monitor" {
		t.Fatalf("hello mismatch: %+v", m)
	}
}

func TestMemTransportIsolation(t *testing.T) {
	tr1 := NewMemTransport()
	tr2 := NewMemTransport()
	if _, err := tr1.Listen("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr2.Dial("x"); err == nil {
		t.Fatal("transports must be isolated namespaces")
	}
	if _, err := tr1.Listen("x"); err == nil {
		t.Fatal("duplicate listen must fail")
	}
}

func TestMemTransportClosedListener(t *testing.T) {
	tr := NewMemTransport()
	l, _ := tr.Listen("ctrl")
	l.Close()
	if _, err := tr.Dial("ctrl"); err == nil {
		t.Fatal("dial to closed listener must fail")
	}
	if _, err := l.Accept(); err == nil {
		t.Fatal("accept on closed listener must fail")
	}
	// Address is released; re-listen succeeds.
	if _, err := tr.Listen("ctrl"); err != nil {
		t.Fatalf("re-listen: %v", err)
	}
}

func TestTCPTransport(t *testing.T) {
	tr := TCPTransport{}
	l, err := tr.Listen("127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer l.Close()
	got := make(chan *Message, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		m, err := NewConn(c).Receive()
		if err != nil {
			return
		}
		got <- m
	}()
	raw, err := tr.Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if err := NewConn(raw).Send(&Message{Type: MsgHello, Name: "bro1", Kind: "ips"}); err != nil {
		t.Fatal(err)
	}
	if m := <-got; m.Name != "bro1" {
		t.Fatalf("hello over TCP: %+v", m)
	}
}

func TestFlowKeyStringParseProperty(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, pr uint8) bool {
		protos := []uint8{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP, 47}
		k := packet.FlowKey{
			SrcIP:   netip.AddrFrom4(a),
			DstIP:   netip.AddrFrom4(b),
			SrcPort: sp, DstPort: dp,
			Proto: protos[int(pr)%len(protos)],
		}
		parsed, err := packet.ParseFlowKey(k.String())
		return err == nil && parsed == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsReplyTotal(t *testing.T) {
	s := StatsReply{SupportPerflowChunks: 3, ReportPerflowChunks: 4}
	if s.Total() != 7 {
		t.Fatalf("total: %d", s.Total())
	}
}

func TestParseFlowKeyErrors(t *testing.T) {
	bad := []string{
		"",
		"1.2.3.4:80",
		"1.2.3.4:80>5.6.7.8:90",
		"1.2.3.4>5.6.7.8:90/tcp",
		"1.2.3.4:80>5.6.7.8:90/xyz",
		"1.2.3.4:99999>5.6.7.8:90/tcp",
		"notanip:80>5.6.7.8:90/tcp",
	}
	for _, s := range bad {
		if _, err := packet.ParseFlowKey(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
	// proto47 round-trips.
	k, err := packet.ParseFlowKey("1.2.3.4:0>5.6.7.8:0/proto47")
	if err != nil || k.Proto != 47 {
		t.Fatalf("proto47: %v %v", k, err)
	}
}

func BenchmarkSendReceiveChunk(b *testing.B) {
	c1, c2 := connPair()
	defer c1.Close()
	defer c2.Close()
	k, _ := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")
	msg := &Message{Type: MsgChunk, ID: 1, Chunk: &state.Chunk{Key: k, Blob: bytes.Repeat([]byte{1}, 189)}}
	go func() {
		for {
			if err := c1.Send(msg); err != nil {
				return
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c2.Receive(); err != nil {
			b.Fatal(err)
		}
	}
}
