package sbi

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Transport abstracts how middleboxes reach the controller. TCPTransport is
// used by the cmd/ binaries; MemTransport gives tests and benchmarks
// deterministic, kernel-free links with the same message semantics.
type Transport interface {
	// Listen binds the controller side.
	Listen(addr string) (net.Listener, error)
	// Dial connects a middlebox to a controller address.
	Dial(addr string) (net.Conn, error)
}

// TCPTransport is the production transport.
type TCPTransport struct{}

// Listen binds a TCP listener.
func (TCPTransport) Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// Dial opens a TCP connection.
func (TCPTransport) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// MemTransport is an in-memory transport: Listen registers an address in a
// process-local registry and Dial connects to it with net.Pipe. Each
// MemTransport value is an isolated namespace, so parallel tests do not
// collide.
type MemTransport struct {
	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMemTransport returns an empty in-memory transport namespace.
func NewMemTransport() *MemTransport {
	return &MemTransport{listeners: map[string]*memListener{}}
}

// Listen registers addr and returns its listener.
func (t *MemTransport) Listen(addr string) (net.Listener, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.listeners[addr]; ok {
		return nil, fmt.Errorf("sbi: address %q already in use", addr)
	}
	l := &memListener{addr: addr, accept: make(chan net.Conn, 16), done: make(chan struct{}), owner: t}
	t.listeners[addr] = l
	return l, nil
}

// Dial connects to a registered listener.
func (t *MemTransport) Dial(addr string) (net.Conn, error) {
	t.mu.Lock()
	l, ok := t.listeners[addr]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("sbi: connection refused: %q", addr)
	}
	client, server := net.Pipe()
	select {
	case l.accept <- server:
		return client, nil
	case <-l.done:
		return nil, fmt.Errorf("sbi: connection refused: %q closed", addr)
	}
}

type memListener struct {
	addr      string
	accept    chan net.Conn
	done      chan struct{}
	closeOnce sync.Once
	owner     *MemTransport
}

func (l *memListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, errors.New("sbi: listener closed")
	}
}

func (l *memListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.owner.mu.Lock()
		delete(l.owner.listeners, l.addr)
		l.owner.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() net.Addr { return memAddr(l.addr) }

type memAddr string

func (a memAddr) Network() string { return "mem" }
func (a memAddr) String() string  { return string(a) }
