package sbi

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"openmb/internal/packet"
	"openmb/internal/state"
)

// Codec names a wire encoding for Messages. The hello frame is always JSON;
// the codec announced in it governs every frame after.
type Codec string

// Supported codecs.
const (
	// CodecJSON is the paper-faithful compatibility and debug codec:
	// newline-delimited JSON with base64 blobs, readable with a terminal.
	// It is also what an empty codec announcement in a hello means, so
	// peers that predate the negotiation keep working.
	CodecJSON Codec = "json"
	// CodecBinary is the default: length-prefixed compact binary frames
	// with raw (non-base64) blob and packet payloads and pooled encode
	// buffers. Runtimes announce it at hello unless configured otherwise
	// (mbox.Options.Codec).
	CodecBinary Codec = "binary"
)

// ParseCodec validates a codec name. "" means JSON: an absent announcement
// on the wire has always meant the paper's JSON framing, and that meaning is
// frozen for compatibility (the *default* for new runtimes is binary, chosen
// at the mbox.Options layer, and announced explicitly).
func ParseCodec(s string) (Codec, error) {
	switch Codec(s) {
	case "", CodecJSON:
		return CodecJSON, nil
	case CodecBinary:
		return CodecBinary, nil
	}
	return "", fmt.Errorf("sbi: unknown codec %q", s)
}

// wireCodec frames Messages over buffered streams. Implementations are bound
// to one Conn's reader/writer; encode and decode are each externally
// serialized by the Conn's send/receive mutexes. encode appends the frame to
// the buffered writer without flushing — when the bytes reach the transport
// is the Conn's decision (see Conn's coalesced-flushing notes), not the
// codec's.
type wireCodec interface {
	name() Codec
	encode(m *Message) error
	decode() (*Message, error)
}

// ---------------------------------------------------------------------------
// JSON codec: one JSON object per line, exactly the paper prototype's format.

type jsonCodec struct {
	enc *json.Encoder
	bw  *bufio.Writer
	br  *bufio.Reader
}

func newJSONCodec(br *bufio.Reader, bw *bufio.Writer) *jsonCodec {
	return &jsonCodec{enc: json.NewEncoder(bw), bw: bw, br: br}
}

func (c *jsonCodec) name() Codec { return CodecJSON }

func (c *jsonCodec) encode(m *Message) error {
	return c.enc.Encode(m)
}

func (c *jsonCodec) decode() (*Message, error) {
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		if err == io.EOF && len(line) > 0 {
			return nil, fmt.Errorf("sbi: truncated frame: %w", io.ErrUnexpectedEOF)
		}
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// ---------------------------------------------------------------------------
// Binary codec: length-prefixed compact frames.
//
// Frame layout:
//
//	u32  big-endian body length
//	body:
//	  u8      message type
//	  u32     big-endian field-presence bitmap
//	  uvarint id
//	  ...fields present in the bitmap, in bit order
//
// Strings and byte fields are uvarint-length-prefixed; blobs and packets are
// raw bytes (no base64). Flow keys use packet.FlowKey's fixed 13-byte form.
// Encode buffers are pooled; decoded messages own their frame buffer, so
// blob slices alias it safely.

// maxBinaryFrame bounds a frame body so a corrupt or hostile length prefix
// cannot force an arbitrary allocation.
const maxBinaryFrame = 64 << 20

// Field-presence bits.
const (
	fName uint32 = 1 << iota
	fKind
	fCodec
	fOp
	fPath
	fValues
	fMatch
	fBlob
	fEnable
	fTTL
	fCompressed
	fBatch
	fChunk
	fChunks
	fCount
	fEntries
	fStats
	fEvent
	fError
	fHandoff
	fEvents
	fAddr
	fDir
)

// knownFields masks every bit this implementation understands; frames with
// other bits set are from a newer, incompatible binary protocol.
const knownFields = fDir<<1 - 1

// Event-presence bits (one byte).
const (
	efKey uint8 = 1 << iota
	efShared
	efCode
	efPacket
	efValues
	efClass
)

// knownEventBits masks the event-presence bits this implementation
// understands, mirroring knownFields at the message level.
const knownEventBits = efClass<<1 - 1

// errKeyNotBinary rejects flow keys the 13-byte fixed encoding cannot
// represent (non-IPv4 addresses); silently zeroing them would collapse
// distinct flows onto one key at the decoder.
var errKeyNotBinary = fmt.Errorf("sbi: binary encode: flow key is not IPv4")

// flowKeyBinaryOK reports whether k survives the 13-byte encoding: each
// address is IPv4, or the whole key is the zero key (which binary frames
// track with a presence bit, never by encoding it).
func flowKeyBinaryOK(k packet.FlowKey) bool {
	if k == (packet.FlowKey{}) {
		return true
	}
	return k.SrcIP.Is4() && k.DstIP.Is4()
}

var msgTypeToByte = map[MsgType]byte{
	MsgHello: 1, MsgRequest: 2, MsgChunk: 3, MsgDone: 4, MsgEvent: 5, MsgError: 6,
}

var byteToMsgType = map[byte]MsgType{
	1: MsgHello, 2: MsgRequest, 3: MsgChunk, 4: MsgDone, 5: MsgEvent, 6: MsgError,
}

var encBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

type binaryCodec struct {
	bw *bufio.Writer
	br *bufio.Reader
}

func newBinaryCodec(br *bufio.Reader, bw *bufio.Writer) *binaryCodec {
	return &binaryCodec{bw: bw, br: br}
}

func (c *binaryCodec) name() Codec { return CodecBinary }

func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendChunk(b []byte, ch *state.Chunk) []byte {
	b = ch.Key.AppendBinary(b)
	return appendBytes(b, ch.Blob)
}

func (c *binaryCodec) encode(m *Message) error {
	bp := encBufPool.Get().(*[]byte)
	body := (*bp)[:0]
	// Reserve the length prefix; filled in after the body is complete.
	body = append(body, 0, 0, 0, 0)

	tb, ok := msgTypeToByte[m.Type]
	if !ok {
		encBufPool.Put(bp)
		return fmt.Errorf("sbi: binary encode: unknown message type %q", m.Type)
	}
	keysOK := m.Chunk == nil || flowKeyBinaryOK(m.Chunk.Key)
	for i := range m.Chunks {
		keysOK = keysOK && flowKeyBinaryOK(m.Chunks[i].Key)
	}
	if m.Event != nil {
		keysOK = keysOK && flowKeyBinaryOK(m.Event.Key)
	}
	for _, ev := range m.Events {
		keysOK = keysOK && flowKeyBinaryOK(ev.Key)
	}
	if m.Handoff != nil {
		for i := range m.Handoff.Keys {
			hk := &m.Handoff.Keys[i]
			keysOK = keysOK && flowKeyBinaryOK(hk.Key)
			for _, ev := range hk.Events {
				keysOK = keysOK && flowKeyBinaryOK(ev.Key)
			}
		}
	}
	if !keysOK {
		encBufPool.Put(bp)
		return errKeyNotBinary
	}
	body = append(body, tb)

	var flags uint32
	if m.Name != "" {
		flags |= fName
	}
	if m.Kind != "" {
		flags |= fKind
	}
	if m.Codec != "" {
		flags |= fCodec
	}
	if m.Op != "" {
		flags |= fOp
	}
	if m.Path != "" {
		flags |= fPath
	}
	if len(m.Values) > 0 {
		flags |= fValues
	}
	if !m.Match.IsAll() {
		flags |= fMatch
	}
	if len(m.Blob) > 0 {
		flags |= fBlob
	}
	if m.Enable {
		flags |= fEnable
	}
	if m.TTLNanos != 0 {
		flags |= fTTL
	}
	if m.Compressed {
		flags |= fCompressed
	}
	if m.Batch != 0 {
		flags |= fBatch
	}
	if m.Chunk != nil {
		flags |= fChunk
	}
	if len(m.Chunks) > 0 {
		flags |= fChunks
	}
	if m.Count != 0 {
		flags |= fCount
	}
	if len(m.Entries) > 0 {
		flags |= fEntries
	}
	if m.Stats != nil {
		flags |= fStats
	}
	if m.Event != nil {
		flags |= fEvent
	}
	if m.Error != "" {
		flags |= fError
	}
	if m.Handoff != nil {
		flags |= fHandoff
	}
	if len(m.Events) > 0 {
		flags |= fEvents
	}
	if m.Addr != "" {
		flags |= fAddr
	}
	if len(m.Dir) > 0 {
		flags |= fDir
	}
	body = binary.BigEndian.AppendUint32(body, flags)
	body = appendUvarint(body, m.ID)

	if flags&fName != 0 {
		body = appendString(body, m.Name)
	}
	if flags&fKind != 0 {
		body = appendString(body, m.Kind)
	}
	if flags&fCodec != 0 {
		body = appendString(body, string(m.Codec))
	}
	if flags&fOp != 0 {
		body = appendString(body, string(m.Op))
	}
	if flags&fPath != 0 {
		body = appendString(body, m.Path)
	}
	if flags&fValues != 0 {
		body = appendUvarint(body, uint64(len(m.Values)))
		for _, v := range m.Values {
			body = appendString(body, v)
		}
	}
	if flags&fMatch != 0 {
		body = appendString(body, m.Match.String())
	}
	if flags&fBlob != 0 {
		body = appendBytes(body, m.Blob)
	}
	if flags&fTTL != 0 {
		body = appendUvarint(body, uint64(m.TTLNanos))
	}
	if flags&fBatch != 0 {
		body = appendUvarint(body, uint64(m.Batch))
	}
	if flags&fChunk != 0 {
		body = appendChunk(body, m.Chunk)
	}
	if flags&fChunks != 0 {
		body = appendUvarint(body, uint64(len(m.Chunks)))
		for i := range m.Chunks {
			body = appendChunk(body, &m.Chunks[i])
		}
	}
	if flags&fCount != 0 {
		body = appendUvarint(body, uint64(m.Count))
	}
	if flags&fEntries != 0 {
		body = appendUvarint(body, uint64(len(m.Entries)))
		for _, e := range m.Entries {
			body = appendString(body, e.Path)
			body = appendUvarint(body, uint64(len(e.Values)))
			for _, v := range e.Values {
				body = appendString(body, v)
			}
		}
	}
	if flags&fStats != 0 {
		s := m.Stats
		for _, v := range [...]int{
			s.SupportPerflowChunks, s.SupportPerflowBytes,
			s.ReportPerflowChunks, s.ReportPerflowBytes,
			s.SupportSharedBytes, s.ReportSharedBytes,
		} {
			body = appendUvarint(body, uint64(v))
		}
	}
	if flags&fEvent != 0 {
		body = appendEvent(body, m.Event)
	}
	if flags&fError != 0 {
		body = appendString(body, m.Error)
	}
	if flags&fHandoff != 0 {
		body = appendString(body, m.Handoff.MB)
		body = appendUvarint(body, uint64(len(m.Handoff.Keys)))
		for i := range m.Handoff.Keys {
			hk := &m.Handoff.Keys[i]
			body = hk.Key.AppendBinary(body)
			body = appendUvarint(body, hk.Txn)
			body = appendUvarint(body, uint64(hk.Pending))
			body = appendUvarint(body, uint64(len(hk.Events)))
			for _, ev := range hk.Events {
				body = appendEvent(body, ev)
			}
		}
		body = appendUvarint(body, uint64(len(m.Handoff.Txns)))
		for _, id := range m.Handoff.Txns {
			body = appendUvarint(body, id)
		}
	}
	if flags&fEvents != 0 {
		body = appendUvarint(body, uint64(len(m.Events)))
		for _, ev := range m.Events {
			body = appendEvent(body, ev)
		}
	}
	if flags&fAddr != 0 {
		body = appendString(body, m.Addr)
	}
	if flags&fDir != 0 {
		body = appendUvarint(body, uint64(len(m.Dir)))
		for _, de := range m.Dir {
			body = appendString(body, de.Name)
			body = appendString(body, de.Node)
			body = appendUvarint(body, de.Version)
		}
	}

	if len(body)-4 > maxBinaryFrame {
		encBufPool.Put(bp)
		return fmt.Errorf("sbi: binary encode: frame of %d bytes exceeds limit", len(body)-4)
	}
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	_, err := c.bw.Write(body)
	*bp = body
	encBufPool.Put(bp)
	if err != nil {
		return err
	}
	return c.bw.Flush()
}

func appendEvent(b []byte, ev *Event) []byte {
	var ef uint8
	hasKey := ev.Key != (packet.FlowKey{})
	if hasKey {
		ef |= efKey
	}
	if ev.Shared {
		ef |= efShared
	}
	if ev.Code != "" {
		ef |= efCode
	}
	if len(ev.Packet) > 0 {
		ef |= efPacket
	}
	if len(ev.Values) > 0 {
		ef |= efValues
	}
	if ev.Class != 0 {
		ef |= efClass
	}
	b = append(b, ef)
	b = appendString(b, string(ev.Kind))
	if hasKey {
		b = ev.Key.AppendBinary(b)
	}
	if ef&efCode != 0 {
		b = appendString(b, ev.Code)
	}
	if ef&efPacket != 0 {
		b = appendBytes(b, ev.Packet)
	}
	if ef&efValues != 0 {
		b = appendUvarint(b, uint64(len(ev.Values)))
		for k, v := range ev.Values {
			b = appendString(b, k)
			b = appendString(b, v)
		}
	}
	b = appendUvarint(b, ev.Seq)
	if ef&efClass != 0 {
		b = append(b, byte(ev.Class))
	}
	return b
}

// binReader walks a frame body.
type binReader struct {
	b   []byte
	off int
	err error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("sbi: binary decode: truncated %s", what)
	}
}

func (r *binReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail(what)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

// take returns n raw bytes aliasing the frame buffer.
func (r *binReader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail(what)
		return nil
	}
	v := r.b[r.off : r.off+n : r.off+n]
	r.off += n
	return v
}

func (r *binReader) bytes(what string) []byte {
	n := r.uvarint(what)
	if n == 0 {
		// nil, not an empty slice, so decoded messages compare equal to
		// their JSON-decoded counterparts.
		return nil
	}
	return r.take(int(n), what)
}

func (r *binReader) string(what string) string {
	return string(r.bytes(what))
}

func (r *binReader) flowKey(what string) packet.FlowKey {
	raw := r.take(packet.FlowKeyWireSize, what)
	if r.err != nil {
		return packet.FlowKey{}
	}
	k, err := packet.DecodeFlowKey(raw)
	if err != nil && r.err == nil {
		r.err = err
	}
	return k
}

func (r *binReader) chunk(what string) state.Chunk {
	key := r.flowKey(what)
	blob := r.bytes(what)
	return state.Chunk{Key: key, Blob: blob}
}

func (c *binaryCodec) decode() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxBinaryFrame {
		return nil, fmt.Errorf("sbi: binary decode: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("sbi: truncated frame: %w", err)
	}
	r := &binReader{b: body}

	m := &Message{}
	mt, ok := byteToMsgType[r.byte("type")]
	if !ok {
		return nil, fmt.Errorf("sbi: binary decode: unknown message type")
	}
	m.Type = mt
	flagBytes := r.take(4, "flags")
	if r.err != nil {
		return nil, r.err
	}
	flags := binary.BigEndian.Uint32(flagBytes)
	if flags&^uint32(knownFields) != 0 {
		return nil, fmt.Errorf("sbi: binary decode: unknown field bits %#x", flags&^uint32(knownFields))
	}
	m.ID = r.uvarint("id")

	if flags&fName != 0 {
		m.Name = r.string("name")
	}
	if flags&fKind != 0 {
		m.Kind = r.string("kind")
	}
	if flags&fCodec != 0 {
		m.Codec = Codec(r.string("codec"))
	}
	if flags&fOp != 0 {
		m.Op = Op(r.string("op"))
	}
	if flags&fPath != 0 {
		m.Path = r.string("path")
	}
	if flags&fValues != 0 {
		n := r.uvarint("values")
		for i := uint64(0); i < n && r.err == nil; i++ {
			m.Values = append(m.Values, r.string("values"))
		}
	}
	if flags&fMatch != 0 {
		s := r.string("match")
		if r.err == nil {
			match, err := packet.ParseFieldMatch(s)
			if err != nil {
				return nil, err
			}
			m.Match = match
		}
	}
	if flags&fBlob != 0 {
		m.Blob = r.bytes("blob")
	}
	m.Enable = flags&fEnable != 0
	if flags&fTTL != 0 {
		m.TTLNanos = int64(r.uvarint("ttl"))
	}
	m.Compressed = flags&fCompressed != 0
	if flags&fBatch != 0 {
		m.Batch = int(r.uvarint("batch"))
	}
	if flags&fChunk != 0 {
		ch := r.chunk("chunk")
		if r.err == nil {
			m.Chunk = &ch
		}
	}
	if flags&fChunks != 0 {
		n := r.uvarint("chunks")
		if r.err == nil && n > uint64(len(body)/packet.FlowKeyWireSize)+1 {
			return nil, fmt.Errorf("sbi: binary decode: chunk count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			m.Chunks = append(m.Chunks, r.chunk("chunks"))
		}
	}
	if flags&fCount != 0 {
		m.Count = int(r.uvarint("count"))
	}
	if flags&fEntries != 0 {
		n := r.uvarint("entries")
		for i := uint64(0); i < n && r.err == nil; i++ {
			var e state.Entry
			e.Path = r.string("entries")
			nv := r.uvarint("entries")
			for j := uint64(0); j < nv && r.err == nil; j++ {
				e.Values = append(e.Values, r.string("entries"))
			}
			m.Entries = append(m.Entries, e)
		}
	}
	if flags&fStats != 0 {
		var s StatsReply
		s.SupportPerflowChunks = int(r.uvarint("stats"))
		s.SupportPerflowBytes = int(r.uvarint("stats"))
		s.ReportPerflowChunks = int(r.uvarint("stats"))
		s.ReportPerflowBytes = int(r.uvarint("stats"))
		s.SupportSharedBytes = int(r.uvarint("stats"))
		s.ReportSharedBytes = int(r.uvarint("stats"))
		if r.err == nil {
			m.Stats = &s
		}
	}
	if flags&fEvent != 0 {
		ev, err := decodeEvent(r)
		if err != nil {
			return nil, err
		}
		m.Event = ev
	}
	if flags&fError != 0 {
		m.Error = r.string("error")
	}
	if flags&fHandoff != 0 {
		h := &Handoff{MB: r.string("handoff mb")}
		n := r.uvarint("handoff keys")
		if r.err == nil && n > uint64(len(body)/packet.FlowKeyWireSize)+1 {
			return nil, fmt.Errorf("sbi: binary decode: handoff key count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			hk := HandoffKey{Key: r.flowKey("handoff key")}
			hk.Txn = r.uvarint("handoff txn")
			hk.Pending = int(r.uvarint("handoff pending"))
			ne := r.uvarint("handoff events")
			if r.err == nil && ne > uint64(len(body))+1 {
				return nil, fmt.Errorf("sbi: binary decode: handoff event count %d exceeds frame", ne)
			}
			for j := uint64(0); j < ne && r.err == nil; j++ {
				ev, err := decodeEvent(r)
				if err != nil {
					return nil, err
				}
				hk.Events = append(hk.Events, ev)
			}
			h.Keys = append(h.Keys, hk)
		}
		nt := r.uvarint("handoff txns")
		// Each txn ID costs at least one body byte.
		if r.err == nil && nt > uint64(len(body)) {
			return nil, fmt.Errorf("sbi: binary decode: handoff txn count %d exceeds frame", nt)
		}
		for i := uint64(0); i < nt && r.err == nil; i++ {
			h.Txns = append(h.Txns, r.uvarint("handoff txns"))
		}
		if r.err == nil {
			m.Handoff = h
		}
	}
	if flags&fEvents != 0 {
		n := r.uvarint("events")
		// Each event costs at least its presence byte, kind length, and
		// seq — a count beyond the frame size is corrupt.
		if r.err == nil && n > uint64(len(body)) {
			return nil, fmt.Errorf("sbi: binary decode: event count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			ev, err := decodeEvent(r)
			if err != nil {
				return nil, err
			}
			m.Events = append(m.Events, ev)
		}
	}
	if flags&fAddr != 0 {
		m.Addr = r.string("addr")
	}
	if flags&fDir != 0 {
		n := r.uvarint("dir")
		// Each entry costs at least two length bytes and a version byte.
		if r.err == nil && n > uint64(len(body)) {
			return nil, fmt.Errorf("sbi: binary decode: dir entry count %d exceeds frame", n)
		}
		for i := uint64(0); i < n && r.err == nil; i++ {
			var de DirEntry
			de.Name = r.string("dir name")
			de.Node = r.string("dir node")
			de.Version = r.uvarint("dir version")
			m.Dir = append(m.Dir, de)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

func decodeEvent(r *binReader) (*Event, error) {
	ef := r.byte("event")
	if ef&^knownEventBits != 0 {
		return nil, fmt.Errorf("sbi: binary decode: unknown event field bits %#x", ef&^knownEventBits)
	}
	ev := &Event{}
	ev.Kind = EventKind(r.string("event kind"))
	if ef&efKey != 0 {
		ev.Key = r.flowKey("event key")
	}
	ev.Shared = ef&efShared != 0
	if ef&efCode != 0 {
		ev.Code = r.string("event code")
	}
	if ef&efPacket != 0 {
		ev.Packet = r.bytes("event packet")
	}
	if ef&efValues != 0 {
		n := r.uvarint("event values")
		ev.Values = make(map[string]string, n)
		for i := uint64(0); i < n && r.err == nil; i++ {
			k := r.string("event values")
			ev.Values[k] = r.string("event values")
		}
	}
	ev.Seq = r.uvarint("event seq")
	if ef&efClass != 0 {
		ev.Class = state.Class(r.byte("event class"))
	}
	if r.err != nil {
		return nil, r.err
	}
	return ev, nil
}
