package sbi

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"net"
	"net/netip"
	"reflect"
	"testing"

	"openmb/internal/packet"
	"openmb/internal/state"
)

// codecPair returns fresh codecs of both kinds bound to the same buffer.
func roundTrip(t *testing.T, codec Codec, m *Message) *Message {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	br := bufio.NewReader(&buf)
	var c wireCodec
	if codec == CodecBinary {
		c = newBinaryCodec(br, bw)
	} else {
		c = newJSONCodec(br, bw)
	}
	if err := c.encode(m); err != nil {
		t.Fatalf("%s encode: %v", codec, err)
	}
	// Codecs no longer flush per frame (the Conn owns flushing); the test
	// harness plays that role here.
	if err := bw.Flush(); err != nil {
		t.Fatalf("%s flush: %v", codec, err)
	}
	got, err := c.decode()
	if err != nil {
		t.Fatalf("%s decode: %v", codec, err)
	}
	return got
}

func testMessages() []*Message {
	k, _ := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")
	k2, _ := packet.ParseFlowKey("10.9.8.7:5353>1.2.3.4:53/udp")
	match, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/8,tp_dst=80]")
	return []*Message{
		{Type: MsgHello, Name: "prads1", Kind: "monitor"},
		{Type: MsgHello, Name: "bro1", Kind: "ips", Codec: CodecBinary},
		{Type: MsgRequest, ID: 7, Op: OpGetSupportPerflow, Match: match, Batch: 64},
		{Type: MsgRequest, ID: 8, Op: OpGetReportPerflow}, // MatchAll, no batch
		{Type: MsgRequest, ID: 9, Op: OpSetConfig, Path: "limits/conns", Values: []string{"100", "soft"}},
		{Type: MsgRequest, ID: 10, Op: OpSetEventFilter, Path: "nat.", Enable: true, TTLNanos: 5e9},
		{Type: MsgRequest, ID: 11, Op: OpPutSupportShared, Blob: []byte{0, 1, 2, 0xFF}, Compressed: true},
		{Type: MsgChunk, ID: 12, Chunk: &state.Chunk{Key: k, Blob: bytes.Repeat([]byte{0xAB}, 189)}},
		{Type: MsgChunk, ID: 13, Chunks: []state.Chunk{
			{Key: k, Blob: []byte("alpha")},
			{Key: k2, Blob: bytes.Repeat([]byte{7}, 202)},
		}},
		{Type: MsgChunk, ID: 14, Chunk: &state.Chunk{Key: k}}, // empty blob
		{Type: MsgDone, ID: 15, Count: 42},
		{Type: MsgDone, ID: 16}, // everything absent
		{Type: MsgDone, ID: 17, Entries: []state.Entry{
			{Path: "a/b", Values: []string{"x"}},
			{Path: "c", Values: []string{"1", "2", "3"}},
		}},
		{Type: MsgDone, ID: 18, Stats: &StatsReply{
			SupportPerflowChunks: 1, SupportPerflowBytes: 2,
			ReportPerflowChunks: 3, ReportPerflowBytes: 4,
			SupportSharedBytes: 5, ReportSharedBytes: 6,
		}},
		{Type: MsgEvent, Event: &Event{
			Kind: EventReprocess, Key: k, Seq: 99, Class: state.Supporting,
			Packet: []byte{1, 2, 3, 4},
		}},
		{Type: MsgEvent, Event: &Event{
			Kind: EventReprocess, Key: k2, Seq: 100, Class: state.Reporting, Shared: true,
			Packet: []byte{9},
		}},
		{Type: MsgEvent, Event: &Event{
			Kind: EventIntrospection, Key: k, Code: "monitor.asset.detected", Seq: 3,
			Values: map[string]string{"service": "http", "os": "linux/unix"},
		}},
		{Type: MsgEvent, Event: &Event{Kind: EventIntrospection, Seq: 1}}, // zero key
		{Type: MsgEvent, Events: []*Event{ // coalesced event batch
			{Kind: EventReprocess, Key: k, Seq: 41, Class: state.Supporting, Packet: []byte{1, 2}},
			{Kind: EventIntrospection, Key: k2, Code: "nat.mapping.created", Seq: 42,
				Values: map[string]string{"port": "1024"}},
			{Kind: EventReprocess, Key: k2, Seq: 43, Class: state.Reporting, Shared: true, Packet: []byte{3}},
		}},
		{Type: MsgRequest, ID: 19, Op: OpReprocess, Events: []*Event{ // batched reprocess delivery
			{Kind: EventReprocess, Key: k, Seq: 50, Class: state.Supporting, Packet: []byte{7, 8, 9}},
			{Kind: EventReprocess, Key: k, Seq: 51, Class: state.Supporting, Packet: []byte{10}},
		}},
		{Type: MsgError, ID: 20, Error: "mbox: unknown op \"frobnicate\""},
		{Type: MsgRequest, ID: 21, Op: OpTransferOwnership, Handoff: &Handoff{
			MB: "prads1",
			Keys: []HandoffKey{
				{Key: k, Txn: 1, Pending: 2, Events: []*Event{
					{Kind: EventReprocess, Key: k, Seq: 7, Class: state.Supporting, Packet: []byte{1, 2, 3}},
					{Kind: EventReprocess, Key: k, Seq: 8, Class: state.Supporting, Packet: []byte{4}},
				}},
				{Key: k2, Txn: 2}, // registered, nothing outstanding
				{Key: k2, Events: []*Event{ // orphan record
					{Kind: EventReprocess, Key: k2, Seq: 9, Packet: []byte{5, 6}},
				}},
			},
		}},
		{Type: MsgRequest, ID: 22, Op: OpTransferOwnership, Handoff: &Handoff{MB: "empty"}},
		{Type: MsgHello, Name: "node-b", Kind: PeerKind, Codec: CodecBinary, Addr: "127.0.0.1:9754"}, // peer hello
		{Type: MsgRequest, ID: 23, Op: OpDirUpdate, Dir: []DirEntry{
			{Name: "prads1", Node: "node-a", Version: 3},
			{Name: "bro1", Node: "node-b", Version: 1},
		}},
		{Type: MsgRequest, ID: 24, Op: OpDirSync},
		{Type: MsgDone, ID: 24, Dir: []DirEntry{{Name: "prads1", Node: "node-a", Version: 3}},
			Values: []string{"node-a=127.0.0.1:9753", "node-b=127.0.0.1:9754"}}, // dirSync reply
		{Type: MsgRequest, ID: 25, Op: OpRedirect, Addr: "127.0.0.1:9755"},
		{Type: MsgRequest, ID: 26, Op: OpReleaseMB, Name: "prads1", Addr: "127.0.0.1:9755"},
		{Type: MsgRequest, ID: 27, Op: OpTransferOwnership, Handoff: &Handoff{ // registry-ID txn table
			MB:   "prads1",
			Keys: []HandoffKey{{Key: k, Txn: 1, Pending: 1}, {Key: k2, Txn: 2}},
			Txns: []uint64{0x0007_0000_0000_0042, 0x0007_0000_0000_0043},
		}},
	}
}

// TestCodecEquivalence asserts the binary and JSON codecs decode every
// message shape — including empty and absent optional fields — to identical
// Message values.
func TestCodecEquivalence(t *testing.T) {
	for i, m := range testMessages() {
		viaJSON := roundTrip(t, CodecJSON, m)
		viaBinary := roundTrip(t, CodecBinary, m)
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Errorf("message %d (%s): codecs disagree\n json:   %+v\n binary: %+v", i, m.Type, viaJSON, viaBinary)
		}
		if !reflect.DeepEqual(viaBinary.Event, m.Event) {
			t.Errorf("message %d (%s): event mismatch\n want %+v\n got  %+v", i, m.Type, m.Event, viaBinary.Event)
		}
	}
}

// TestCodecEquivalenceRandom is the property-test version: randomized chunk
// batches, events, and stats must decode identically under both codecs.
func TestCodecEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	randKey := func() packet.FlowKey {
		return packet.FlowKey{
			SrcIP:   netip.AddrFrom4([4]byte{10, byte(rng.Intn(256)), byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
			DstIP:   netip.AddrFrom4([4]byte{192, 168, byte(rng.Intn(256)), byte(1 + rng.Intn(254))}),
			Proto:   []uint8{packet.ProtoTCP, packet.ProtoUDP, packet.ProtoICMP}[rng.Intn(3)],
			SrcPort: uint16(rng.Intn(65536)),
			DstPort: uint16(rng.Intn(65536)),
		}
	}
	randBlob := func() []byte {
		if rng.Intn(4) == 0 {
			return nil
		}
		b := make([]byte, 1+rng.Intn(400))
		rng.Read(b)
		return b
	}
	for i := 0; i < 300; i++ {
		var m *Message
		switch rng.Intn(4) {
		case 0:
			m = &Message{Type: MsgChunk, ID: uint64(rng.Intn(1 << 30)), Compressed: rng.Intn(2) == 0}
			if n := rng.Intn(5); n == 0 {
				m.Chunk = &state.Chunk{Key: randKey(), Blob: randBlob()}
			} else {
				for j := 0; j < n; j++ {
					m.Chunks = append(m.Chunks, state.Chunk{Key: randKey(), Blob: randBlob()})
				}
			}
		case 1:
			randEvent := func() *Event {
				return &Event{
					Kind: EventReprocess, Key: randKey(), Seq: rng.Uint64(),
					Class: state.Class(1 + rng.Intn(3)), Shared: rng.Intn(2) == 0,
					Packet: randBlob(),
				}
			}
			m = &Message{Type: MsgEvent}
			if n := rng.Intn(5); n == 0 {
				m.Event = randEvent()
			} else {
				for j := 0; j < n; j++ {
					m.Events = append(m.Events, randEvent())
				}
			}
		case 2:
			m = &Message{
				Type: MsgRequest, ID: uint64(rng.Intn(1 << 20)),
				Op: OpGetSupportPerflow, Batch: rng.Intn(128),
			}
			if rng.Intn(2) == 0 {
				m.Match, _ = packet.ParseFieldMatch(fmt.Sprintf("[nw_src=10.0.0.0/%d]", 8+rng.Intn(25)))
			}
		default:
			m = &Message{Type: MsgDone, ID: uint64(rng.Intn(1 << 20)), Count: rng.Intn(1 << 16)}
		}
		viaJSON := roundTrip(t, CodecJSON, m)
		viaBinary := roundTrip(t, CodecBinary, m)
		if !reflect.DeepEqual(viaJSON, viaBinary) {
			t.Fatalf("iteration %d: codecs disagree\n json:   %+v\n binary: %+v", i, viaJSON, viaBinary)
		}
	}
}

// TestUpgradeNegotiation exercises the full hello handshake: JSON hello
// announcing the binary codec, then binary frames in both directions.
func TestUpgradeNegotiation(t *testing.T) {
	a, b := net.Pipe()
	mb, ctrl := NewConn(a), NewConn(b)
	defer mb.Close()
	defer ctrl.Close()

	k, _ := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")
	done := make(chan error, 1)
	go func() {
		// Middlebox side: JSON hello announcing binary, then upgrade.
		if err := mb.Send(&Message{Type: MsgHello, Name: "prads1", Kind: "monitor", Codec: CodecBinary}); err != nil {
			done <- err
			return
		}
		if err := mb.Upgrade(CodecBinary); err != nil {
			done <- err
			return
		}
		// First post-hello frame travels binary.
		done <- mb.Send(&Message{Type: MsgChunk, ID: 1, Chunk: &state.Chunk{Key: k, Blob: []byte("payload")}})
	}()

	hello, err := ctrl.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if hello.Type != MsgHello || hello.Codec != CodecBinary {
		t.Fatalf("hello: %+v", hello)
	}
	if err := ctrl.Upgrade(hello.Codec); err != nil {
		t.Fatal(err)
	}
	if ctrl.Codec() != CodecBinary {
		t.Fatalf("codec after upgrade: %s", ctrl.Codec())
	}
	chunk, err := ctrl.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if chunk.Chunk == nil || chunk.Chunk.Key != k || string(chunk.Chunk.Blob) != "payload" {
		t.Fatalf("chunk over binary: %+v", chunk)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Reverse direction: the controller's request also travels binary.
	go func() {
		_ = ctrl.Send(&Message{Type: MsgRequest, ID: 2, Op: OpStats})
	}()
	req, err := mb.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpStats || req.ID != 2 {
		t.Fatalf("request over binary: %+v", req)
	}
}

// TestBinaryRejectsMalformed mirrors the JSON robustness tests for the
// binary codec: oversized length prefixes, truncated bodies, and unknown
// field bits all surface as errors, never hangs or panics.
func TestBinaryRejectsMalformed(t *testing.T) {
	decode := func(frame []byte) error {
		c := newBinaryCodec(bufio.NewReader(bytes.NewReader(frame)), nil)
		_, err := c.decode()
		return err
	}
	if err := decode([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err == nil {
		t.Error("oversized length prefix accepted")
	}
	if err := decode([]byte{0, 0, 0, 50, 4}); err == nil {
		t.Error("truncated body accepted")
	}
	// Valid length, unknown message type 99.
	if err := decode([]byte{0, 0, 0, 9, 99, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown message type accepted")
	}
	// Unknown (future) field bit 31 set.
	if err := decode([]byte{0, 0, 0, 9, 4, 0x80, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown field bits accepted")
	}
	// Chunk count claiming more chunks than the frame could hold.
	body := []byte{3}                                // MsgChunk
	body = append(body, 0, 0, 0x20, 0)               // flags: fChunks
	body = append(body, 1)                           // id
	body = append(body, 0xFF, 0xFF, 0xFF, 0xFF, 0xF) // absurd count
	frame := append([]byte{0, 0, 0, byte(len(body))}, body...)
	if err := decode(frame); err == nil {
		t.Error("absurd chunk count accepted")
	}
	// Unknown (future) event-presence bit 7 set.
	ebody := []byte{5}                // MsgEvent
	ebody = append(ebody, 0, 2, 0, 0) // flags: fEvent
	ebody = append(ebody, 1)          // id
	ebody = append(ebody, 0x80)       // event flags: unknown bit
	ebody = append(ebody, 9)          // kind length (truncated on purpose)
	eframe := append([]byte{0, 0, 0, byte(len(ebody))}, ebody...)
	if err := decode(eframe); err == nil {
		t.Error("unknown event field bits accepted")
	}
}

// TestBinaryRejectsNonIPv4Keys: the 13-byte key form cannot represent IPv6
// addresses; encoding must fail loudly rather than zero them (which would
// collapse distinct flows onto one key at the decoder).
func TestBinaryRejectsNonIPv4Keys(t *testing.T) {
	k6 := packet.FlowKey{
		SrcIP: netip.MustParseAddr("2001:db8::1"), DstIP: netip.MustParseAddr("2001:db8::2"),
		Proto: packet.ProtoTCP, SrcPort: 1234, DstPort: 80,
	}
	var buf bytes.Buffer
	c := newBinaryCodec(bufio.NewReader(&buf), bufio.NewWriter(&buf))
	for _, m := range []*Message{
		{Type: MsgChunk, ID: 1, Chunk: &state.Chunk{Key: k6, Blob: []byte("x")}},
		{Type: MsgChunk, ID: 2, Chunks: []state.Chunk{{Key: k6}}},
		{Type: MsgEvent, Event: &Event{Kind: EventReprocess, Key: k6, Seq: 1}},
	} {
		if err := c.encode(m); err == nil {
			t.Errorf("%s with IPv6 key encoded without error", m.Type)
		}
	}
	// The JSON codec carries the same keys fine.
	got := roundTrip(t, CodecJSON, &Message{Type: MsgEvent, Event: &Event{Kind: EventReprocess, Key: k6, Seq: 1}})
	if got.Event.Key != k6 {
		t.Fatalf("json round trip of IPv6 key: %v", got.Event.Key)
	}
}

func TestParseCodec(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Codec
		ok   bool
	}{
		{"", CodecJSON, true},
		{"json", CodecJSON, true},
		{"binary", CodecBinary, true},
		{"protobuf", "", false},
	} {
		got, err := ParseCodec(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseCodec(%q) = %q, %v", tc.in, got, err)
		}
	}
}

func benchCodec(b *testing.B, codec Codec, m *Message) {
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	br := bufio.NewReader(&buf)
	var c wireCodec
	if codec == CodecBinary {
		c = newBinaryCodec(br, bw)
	} else {
		c = newJSONCodec(br, bw)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		br.Reset(&buf)
		if err := c.encode(m); err != nil {
			b.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			b.Fatal(err)
		}
		if _, err := c.decode(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

func benchChunkMessage(batch int) *Message {
	k, _ := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")
	if batch <= 1 {
		return &Message{Type: MsgChunk, ID: 1, Chunk: &state.Chunk{Key: k, Blob: bytes.Repeat([]byte{1}, 189)}}
	}
	m := &Message{Type: MsgChunk, ID: 1}
	for i := 0; i < batch; i++ {
		m.Chunks = append(m.Chunks, state.Chunk{Key: k, Blob: bytes.Repeat([]byte{byte(i)}, 189)})
	}
	return m
}

// BenchmarkCodecJSON and BenchmarkCodecBinary measure one encode+decode of a
// representative 189-byte chunk frame (the paper's PRADS chunk size) under
// each codec, alone and batched 32 to a frame.
func BenchmarkCodecJSON(b *testing.B)   { benchCodec(b, CodecJSON, benchChunkMessage(1)) }
func BenchmarkCodecBinary(b *testing.B) { benchCodec(b, CodecBinary, benchChunkMessage(1)) }
func BenchmarkCodecJSONBatch32(b *testing.B) {
	benchCodec(b, CodecJSON, benchChunkMessage(32))
}
func BenchmarkCodecBinaryBatch32(b *testing.B) {
	benchCodec(b, CodecBinary, benchChunkMessage(32))
}
