package sbi

import (
	"net"
	"sync"
	"testing"
	"time"

	"openmb/internal/packet"
	"openmb/internal/state"
)

// The coalesced write path's liveness and batching properties. net.Pipe is
// the ideal substrate here: it is synchronous and unbuffered, so a frame
// that is never flushed genuinely never arrives — a liveness bug hangs the
// peer instead of hiding behind kernel socket buffers.

// forceCoalesce pins the write-path mode for one test regardless of the
// OPENMB_COALESCE environment (the ablation suite runs with it off), and
// restores the environment's choice afterwards.
func forceCoalesce(t *testing.T, on bool) {
	t.Helper()
	prev := CoalesceDefault()
	SetCoalesceDefault(on)
	t.Cleanup(func() { SetCoalesceDefault(prev) })
}

// receiveAsync pulls n messages on its own goroutine and reports completion.
func receiveAsync(t *testing.T, c *Conn, n int) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := c.Receive(); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	return done
}

// TestCoalescedFlushLiveness: a lone Send must reach the peer — the
// flush-on-idle rule's bounded-latency guarantee. If the last sender out
// did not flush, the peer's Receive would block forever on the synchronous
// pipe.
func TestCoalescedFlushLiveness(t *testing.T) {
	forceCoalesce(t, true)
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b)
	defer c1.Close()
	defer c2.Close()

	done := receiveAsync(t, c2, 3)
	for i := 0; i < 3; i++ {
		if err := c1.Send(&Message{Type: MsgDone, ID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("lone sends never flushed: peer Receive still blocked")
	}
}

// TestDeferredFramesFlushedByNextSend: SendDeferred leaves frames in the
// buffer; the stream-terminating Send publishes them together with its own
// frame, and the explicit Flush path works too.
func TestDeferredFramesFlushedByNextSend(t *testing.T) {
	forceCoalesce(t, true)
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b)
	defer c1.Close()
	defer c2.Close()

	const deferred = 16
	done := receiveAsync(t, c2, deferred+1)
	for i := 0; i < deferred; i++ {
		if err := c1.SendDeferred(&Message{Type: MsgChunk, ID: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// The terminating done-frame Send flushes the whole stream.
	if err := c1.Send(&Message{Type: MsgDone, ID: deferred + 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deferred stream never flushed")
	}
	got := c1.Counters()
	if got.Sent != deferred+1 {
		t.Fatalf("sent = %d, want %d", got.Sent, deferred+1)
	}
	if got.Flushes != 1 {
		t.Fatalf("flushes = %d, want 1 (one flush for the whole stream)", got.Flushes)
	}

	// Explicit Flush publishes a deferred frame with no Send behind it.
	done = receiveAsync(t, c2, 1)
	if err := c1.SendDeferred(&Message{Type: MsgDone, ID: 99}); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("explicit Flush did not publish the deferred frame")
	}
}

// slowConn wraps a net.Conn with a per-Write delay, so concurrent senders
// reliably pile up on sendMu and the flush-on-idle coalescing becomes
// deterministic enough to assert on.
type slowConn struct {
	net.Conn
	delay time.Duration
}

func (s *slowConn) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.Conn.Write(p)
}

// TestFlushOnIdleCoalescesContendingSenders: with several goroutines
// sending over a slow transport, senders queue on sendMu and all but the
// last skip their flush — far fewer flushes than frames — while every
// frame still arrives.
func TestFlushOnIdleCoalescesContendingSenders(t *testing.T) {
	forceCoalesce(t, true)
	a, b := net.Pipe()
	c1 := NewConn(&slowConn{Conn: a, delay: 200 * time.Microsecond})
	c2 := NewConn(b)
	defer c1.Close()
	defer c2.Close()

	const senders, perSender = 4, 32
	done := receiveAsync(t, c2, senders*perSender)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := c1.Send(&Message{Type: MsgDone, ID: uint64(g*1000 + i + 1)}); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("frames lost under contention")
	}
	got := c1.Counters()
	if got.Sent != senders*perSender {
		t.Fatalf("sent = %d, want %d", got.Sent, senders*perSender)
	}
	if got.Flushes >= got.Sent/2 {
		t.Fatalf("flushes = %d of %d frames: flush-on-idle is not coalescing", got.Flushes, got.Sent)
	}
}

// TestAblationFlushesPerFrame: with coalescing off, both Send and
// SendDeferred reproduce the seed's flush-per-frame wire path, so the
// ablation really is the seed's behaviour.
func TestAblationFlushesPerFrame(t *testing.T) {
	forceCoalesce(t, false)
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b)
	defer c1.Close()
	defer c2.Close()

	const frames = 8
	done := receiveAsync(t, c2, frames)
	for i := 0; i < frames; i++ {
		var err error
		if i%2 == 0 {
			err = c1.Send(&Message{Type: MsgDone, ID: uint64(i + 1)})
		} else {
			err = c1.SendDeferred(&Message{Type: MsgDone, ID: uint64(i + 1)})
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ablation frames never arrived")
	}
	got := c1.Counters()
	if got.Flushes != frames {
		t.Fatalf("ablation flushes = %d, want %d (one per frame)", got.Flushes, frames)
	}
}

// TestBatchedEventFrameOrder: a coalesced event frame decodes with its
// events in seq order and EachEvent walks both representations.
func TestBatchedEventFrameOrder(t *testing.T) {
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b)
	defer c1.Close()
	defer c2.Close()
	k, _ := packet.ParseFlowKey("10.0.0.1:1234>192.168.1.2:80/tcp")

	evs := make([]*Event, 5)
	for i := range evs {
		evs[i] = &Event{Kind: EventReprocess, Key: k, Seq: uint64(i + 1), Class: state.Supporting, Packet: []byte{byte(i)}}
	}
	go func() {
		m := &Message{Type: MsgEvent}
		m.SetEvents(evs)
		_ = c1.Send(m)
	}()
	got, err := c2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if got.EventCount() != len(evs) {
		t.Fatalf("event count = %d, want %d", got.EventCount(), len(evs))
	}
	var seqs []uint64
	got.EachEvent(func(ev *Event) { seqs = append(seqs, ev.Seq) })
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq order broken: %v", seqs)
		}
	}

	// The single-event canonical form uses the Event field.
	var m Message
	m.SetEvents(evs[:1])
	if m.Event == nil || m.Events != nil {
		t.Fatalf("SetEvents(1) = %+v, want lone Event field", m)
	}
}

// TestSendNeverDefersToDeferredSender: a Send may skip its flush only when
// another FLUSHING sender is waiting to inherit the dirty buffer. A waiting
// SendDeferred never flushes, so deferring to it would strand the Send's
// frame; with the fix, every Send goroutine's final frame is flushed no
// matter how many deferred senders race it.
func TestSendNeverDefersToDeferredSender(t *testing.T) {
	forceCoalesce(t, true)
	a, b := net.Pipe()
	c1, c2 := NewConn(a), NewConn(b)
	defer c1.Close()
	defer c2.Close()

	const frames = 200
	gotSends := make(chan struct{})
	go func() {
		n := 0
		for n < frames {
			m, err := c2.Receive()
			if err != nil {
				return
			}
			if m.ID < 1000 { // a Send-originated frame
				n++
			}
		}
		close(gotSends)
	}()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if err := c1.Send(&Message{Type: MsgDone, ID: uint64(i + 1)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < frames; i++ {
			if err := c1.SendDeferred(&Message{Type: MsgDone, ID: uint64(1000 + i)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	select {
	case <-gotSends:
	case <-time.After(10 * time.Second):
		t.Fatal("a Send's frame was never flushed: Send deferred to a non-flushing waiter")
	}
}
