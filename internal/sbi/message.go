// Package sbi implements the MB-facing ("southbound") API of OpenMB (§4 of
// the paper): the wire protocol middleboxes use to receive and export state
// and to raise events toward the MB controller.
//
// Two codecs frame messages: length-prefixed binary (the default, announced
// at hello) and newline-delimited JSON, the paper prototype's format (which
// exchanged JSON over UNIX sockets using JSON-C), kept as the compatibility
// and debug path — see docs/SBI.md. Two transports are provided: TCP for
// deployments (cmd/openmb-controller and cmd/openmb-mb) and an in-memory
// pipe transport for deterministic tests and benchmarks.
package sbi

import (
	"openmb/internal/packet"
	"openmb/internal/state"
)

// Op names a southbound state operation (§4.1). The names match the paper.
type Op string

// Southbound operations. Config ops take Path/Values; per-flow ops take
// Match (the HeaderFieldList); shared ops carry a single Blob.
const (
	OpGetConfig Op = "getConfig"
	OpSetConfig Op = "setConfig"
	OpDelConfig Op = "delConfig"

	OpGetSupportPerflow Op = "getSupportPerflow"
	OpPutSupportPerflow Op = "putSupportPerflow"
	OpDelSupportPerflow Op = "delSupportPerflow"
	OpGetSupportShared  Op = "getSupportShared"
	OpPutSupportShared  Op = "putSupportShared"

	OpGetReportPerflow Op = "getReportPerflow"
	OpPutReportPerflow Op = "putReportPerflow"
	OpDelReportPerflow Op = "delReportPerflow"
	OpGetReportShared  Op = "getReportShared"
	OpPutReportShared  Op = "putReportShared"

	// OpStats reports how much shared and per-flow supporting and
	// reporting state exists for a given key (backs the northbound
	// stats() call of §5).
	OpStats Op = "stats"

	// OpSetEventFilter enables or disables introspection event generation
	// for an event-code prefix and flow match (§4.2.2).
	OpSetEventFilter Op = "setEventFilter"

	// OpReprocess delivers a buffered reprocess event's packet to the
	// destination MB of a move/clone; the MB updates state but suppresses
	// external side effects (§4.2.1 step 3).
	OpReprocess Op = "reprocess"

	// OpEndTransaction tells a source MB that a controller transaction
	// has finished, clearing its moved/cloned marks so it stops raising
	// reprocess events. With Enable set it clears shared-state marks;
	// otherwise it clears per-flow marks matching Match. For moves the
	// del operations already clear marks; this op exists for clones and
	// merges, which must not delete state (§5: "no delete operation is
	// called when events stop arriving").
	OpEndTransaction Op = "endTransaction"

	// OpTransferOwnership carries a controller-replica handoff: the frozen
	// per-key routing state (outstanding put counts, buffered reprocess
	// events, orphans) of one middlebox's flowspace, moving from the
	// replica that owned it to the one taking over. It travels
	// replica-to-replica, never controller-to-MB; see Message.Handoff and
	// docs/SBI.md.
	OpTransferOwnership Op = "transferOwnership"

	// OpPing is the controller's liveness probe: a MsgRequest sent when a
	// connection has been quiet for a heartbeat interval. The middlebox
	// answers with a MsgDone echoing the request ID and carrying Op=pong
	// (see OpPong). Peers that predate heartbeats reply MsgError for the
	// unknown op, which also proves liveness; either way the reply stamps
	// the conn's last-received clock, so the probe never needs its own
	// completion tracking.
	OpPing Op = "ping"

	// OpPong marks a MsgDone frame as the explicit answer to an OpPing.
	// It appears only on done frames, never as a request op. The prober
	// counts pong-marked frames (Metrics.PongsReceived) but does not
	// require them: any received frame proves life, so a plain done from a
	// pre-pong middlebox still satisfies the probe.
	OpPong Op = "pong"

	// OpTraceFlow arms (Enable=true) or disarms the middlebox's filtered
	// flow tracer: capture up to Count per-hop records (ingress ring,
	// burst dispatch, app verdict, egress) of packets whose flow satisfies
	// Match in either direction. The match is compiled into a predicate
	// closure once, at arm time; the disarmed data-path cost is a single
	// atomic pointer load per hook. Count<=0 selects the default budget.
	OpTraceFlow Op = "traceFlow"

	// OpTraceDump retrieves the newest trace session's records without
	// disturbing an armed session. The MsgDone reply carries Count records
	// as rendered lines in Values, in capture order.
	OpTraceDump Op = "traceDump"

	// OpDirUpdate propagates replicated-directory entries between cluster
	// nodes: the sender's view of which node owns which middlebox, as
	// versioned entries in the Dir field. The receiver merges each entry
	// under the deterministic conflict rule (higher version wins; equal
	// versions break toward the lexicographically greater node name) and
	// acknowledges with MsgDone. Acks are what ownership commits count
	// toward their quorum, so a partitioned node that cannot reach a
	// majority refuses the change. Travels node-to-node only.
	OpDirUpdate Op = "dirUpdate"

	// OpDirSync asks a peer node for its full directory snapshot. The
	// MsgDone reply carries every entry in Dir plus the sender's known peer
	// list in Values as "name=addr" strings, so a joining node learns both
	// the directory and the mesh from one exchange.
	OpDirSync Op = "dirSync"

	// OpPeerLeave announces a node's graceful departure. The receiver
	// removes the sender from its known-node set (shrinking future commit
	// quorums) and stops redialing it. A crashed node never sends this, so
	// it stays in the denominator — exactly the conservative behavior a
	// partition-safe quorum needs.
	OpPeerLeave Op = "peerLeave"

	// OpRedirect tells a middlebox to reconnect to the controller address
	// in Addr: the final step of a cross-node ownership pull. The middlebox
	// acknowledges with MsgDone, promotes the address to the front of its
	// dial list, and closes the connection so its reconnect machinery
	// redials the new owner.
	OpRedirect Op = "redirect"

	// OpReleaseMB asks the owning node to give up the middlebox named in
	// Name: freeze it, export its routing state, and redirect it to the
	// requesting node's address (carried in Addr). The MsgDone reply
	// carries the exported Handoff so the requester can re-import the
	// frozen state once the middlebox re-registers. Travels node-to-node
	// only.
	OpReleaseMB Op = "releaseMB"
)

// PeerKind is the hello Kind a cluster node announces when dialing a fellow
// node: the connection carries directory ops and ownership releases instead
// of middlebox state ops. Peer hellos also carry the dialer's advertised
// address in Addr, and the acceptor answers with a hello of its own (the
// only hello that is ever answered) so the dialer learns its name.
const PeerKind = "peer"

// MsgType discriminates wire messages.
type MsgType string

// Wire message types.
const (
	// MsgHello is sent by an MB immediately after connecting.
	MsgHello MsgType = "hello"
	// MsgRequest is a controller-to-MB operation request.
	MsgRequest MsgType = "request"
	// MsgChunk streams one piece of per-flow state (MB-to-controller, in
	// response to a get) — the [HeaderFieldList:EncryptedChunk] pair.
	MsgChunk MsgType = "chunk"
	// MsgDone completes a request: the ACK of Figure 5. For get streams
	// it follows the last chunk; for puts it acknowledges installation.
	MsgDone MsgType = "done"
	// MsgEvent carries a reprocess or introspection event (MB-initiated).
	MsgEvent MsgType = "event"
	// MsgError reports a failed request.
	MsgError MsgType = "error"
)

// EventKind discriminates MB-raised events (§4.2).
type EventKind string

// Event kinds.
const (
	// EventReprocess asks the move/clone destination to re-process a
	// packet that updated in-transaction state at the source (§4.2.1).
	EventReprocess EventKind = "reprocess"
	// EventIntrospection announces that the MB established or updated
	// internal state, without revealing why (§4.2.2).
	EventIntrospection EventKind = "introspection"
)

// Event is an MB-raised notification. Reprocess events carry the triggering
// packet; introspection events carry a code (e.g. "nat.mapping.created") and
// MB-specific values. Both always include the key identifying the state.
// Key marshals itself (packet.FlowKey implements TextMarshaler), so the wire
// form is the same "src:port>dst:port/proto" string as before.
type Event struct {
	Kind   EventKind         `json:"kind"`
	Key    packet.FlowKey    `json:"key"`
	Code   string            `json:"code,omitempty"`
	Packet []byte            `json:"packet,omitempty"`
	Values map[string]string `json:"values,omitempty"`
	// Seq is a per-MB monotone sequence number; the controller uses it to
	// preserve event order while buffering (§5).
	Seq uint64 `json:"seq"`
	// Class tells the controller which state class the event concerns,
	// so reprocess buffering can be matched to the right put stream.
	Class state.Class `json:"class,omitempty"`
	// Shared marks reprocess events triggered by updates to shared state
	// (clone/merge transactions) rather than per-flow state; the
	// controller buffers them against the shared put instead of a
	// per-key put.
	Shared bool `json:"shared,omitempty"`
}

// Handoff is the ownership-transfer payload of OpTransferOwnership: the
// frozen routing state one controller replica holds for a middlebox's
// flowspace, serialized so another replica can take over mid-transaction.
// Each record is one flow key's worth of the buffer-until-ACK machinery a
// move maintains (§4.2.1), lifted to replica scope: how many puts are still
// unacknowledged and which reprocess events wait behind them. Transaction
// identity travels as an index into the Txns table, whose entries are
// cluster-wide registry IDs: the importer resolves each ID through its
// transaction registry, so a handoff decoded on a fresh process reconstructs
// txn bindings from bytes alone. IDs the importer's registry cannot resolve
// belong to transactions that died with their coordinator; their keys are
// dropped as aborted-remote.
type Handoff struct {
	// MB names the middlebox instance whose flowspace is moving.
	MB string `json:"mb"`
	// Keys holds one record per in-transaction flow key plus one per
	// orphan key (events that arrived before their registering chunk).
	Keys []HandoffKey `json:"keys,omitempty"`
	// Txns carries the cluster-wide transaction IDs of the sender's
	// transfer table, parallel to the 1-based Txn indices in Keys: entry
	// i is the registry ID of transfer-table slot i+1. Receivers use the
	// IDs to re-bind the imported keys to the same live transactions (and
	// a failure-recovery import uses them to tell which transactions were
	// aborted), so an abort-and-restart is deterministic instead of
	// guessing from key overlap. Empty on handoffs that predate the
	// transaction registry.
	Txns []uint64 `json:"txns,omitempty"`
}

// HandoffKey is one flow key's routing state inside a Handoff.
type HandoffKey struct {
	Key packet.FlowKey `json:"key"`
	// Txn identifies the owning transaction in the sender's transfer
	// table (1-based); 0 marks an orphan record — buffered events with no
	// registered owner yet.
	Txn uint64 `json:"txn,omitempty"`
	// Pending is the key's unacknowledged put count.
	Pending int `json:"pending,omitempty"`
	// Events are the reprocess events buffered for the key (or the
	// orphaned events, when Txn is 0), in arrival order.
	Events []*Event `json:"events,omitempty"`
}

// StatsReply answers the northbound stats() call: how much shared and
// per-flow supporting and reporting state exists for a given key (§5).
type StatsReply struct {
	SupportPerflowChunks int `json:"supportPerflowChunks"`
	SupportPerflowBytes  int `json:"supportPerflowBytes"`
	ReportPerflowChunks  int `json:"reportPerflowChunks"`
	ReportPerflowBytes   int `json:"reportPerflowBytes"`
	SupportSharedBytes   int `json:"supportSharedBytes"`
	ReportSharedBytes    int `json:"reportSharedBytes"`
}

// Total returns the total number of per-flow chunks counted.
func (s StatsReply) Total() int { return s.SupportPerflowChunks + s.ReportPerflowChunks }

// Message is the single wire frame. Fields are populated according to Type;
// unused fields are omitted from the JSON encoding.
type Message struct {
	Type MsgType `json:"type"`
	// ID correlates requests with their chunks/done/error replies.
	ID uint64 `json:"id,omitempty"`

	// Hello fields.
	Name string `json:"name,omitempty"` // MB instance name, e.g. "prads1"
	Kind string `json:"kind,omitempty"` // MB type, e.g. "monitor", "ips"
	// Codec announces the codec the middlebox will use for every frame
	// after the hello (which is always JSON). Empty means JSON; the
	// controller switches its side of the connection to match.
	Codec Codec `json:"codec,omitempty"`

	// Request fields.
	Op     Op                `json:"op,omitempty"`
	Path   string            `json:"path,omitempty"`
	Values []string          `json:"values,omitempty"`
	Match  packet.FieldMatch `json:"match,omitempty"`
	Blob   []byte            `json:"blob,omitempty"`
	// Enable applies to OpSetEventFilter and OpTraceFlow (arm/disarm).
	Enable bool `json:"enable,omitempty"`
	// TTLNanos bounds an event filter's lifetime (§4.2.2: "receive all
	// events only for a limited period of time"); 0 means no expiry.
	TTLNanos int64 `json:"ttlNanos,omitempty"`
	// Compressed marks Blob/Chunk payloads as flate-compressed (§8.3
	// compression ablation).
	Compressed bool `json:"compressed,omitempty"`
	// Batch, on a get request, asks the middlebox to pack up to this many
	// state chunks into each MsgChunk frame (0 and 1 mean one chunk per
	// frame, the paper's original framing). On a hello it announces the
	// largest Events batch the middlebox is willing to receive per
	// OpReprocess frame (0 and 1 mean unbatched delivery, so peers that
	// predate event batching keep the per-event framing).
	Batch int `json:"batch,omitempty"`

	// Chunk payload (MsgChunk, and OpPut*Perflow requests).
	Chunk *state.Chunk `json:"chunk,omitempty"`
	// Chunks is the batched chunk payload: a MsgChunk frame (or a batched
	// put request) carrying several state chunks at once. Chunk and Chunks
	// may not both be set.
	Chunks []state.Chunk `json:"chunks,omitempty"`

	// Done payload. Count also rides OpTraceFlow requests as the record
	// budget (<=0 selects the default).
	Count   int           `json:"count,omitempty"`
	Entries []state.Entry `json:"entries,omitempty"`
	Stats   *StatsReply   `json:"stats,omitempty"`

	// Event payload (MsgEvent, and OpReprocess requests).
	Event *Event `json:"event,omitempty"`
	// Events is the batched event payload: one MsgEvent frame (middlebox to
	// controller) or one OpReprocess request (controller to middlebox)
	// carrying several events raised within one coalescing window, in seq
	// order. Event and Events may not both be set; a lone event travels in
	// Event, the paper's one-event framing, so unbatched peers interoperate.
	// A middlebox announces willingness to RECEIVE batched reprocess frames
	// with the Batch field of its hello; see docs/SBI.md.
	Events []*Event `json:"events,omitempty"`

	// Handoff payload (OpTransferOwnership requests).
	Handoff *Handoff `json:"handoff,omitempty"`

	// Error payload (MsgError).
	Error string `json:"error,omitempty"`

	// Addr carries an endpoint address: the dialer's advertised peer
	// address on a peer hello, the requesting node's address on an
	// OpReleaseMB, and the new controller address on an OpRedirect.
	Addr string `json:"addr,omitempty"`

	// Dir carries replicated-directory entries (OpDirUpdate requests and
	// OpDirSync replies).
	Dir []DirEntry `json:"dir,omitempty"`
}

// DirEntry is one replicated-directory record: which cluster node owns a
// middlebox, at what version. Versions are per-name monotone counters; the
// conflict rule (higher version wins, ties break toward the greater node
// name) makes concurrent merges deterministic on every replica.
type DirEntry struct {
	Name    string `json:"name"`
	Node    string `json:"node"`
	Version uint64 `json:"version,omitempty"`
}

// MaxEventsPerFrame bounds how many events one frame may carry: deep enough
// that a whole coalescing window's burst travels in one frame, shallow
// enough that a frame of packet-bearing reprocess events stays far below
// the binary codec's frame limit. Runtimes announce it in their hello.
const MaxEventsPerFrame = 64

// EventCount returns the number of events the frame carries.
func (m *Message) EventCount() int {
	n := len(m.Events)
	if m.Event != nil {
		n++
	}
	return n
}

// EachEvent invokes fn for every event in the frame, covering both the
// single-event and the batched representation, in wire (seq) order.
func (m *Message) EachEvent(fn func(ev *Event)) {
	if m.Event != nil {
		fn(m.Event)
	}
	for _, ev := range m.Events {
		fn(ev)
	}
}

// SetEvents stores the frame's event payload in the canonical wire
// representation: exactly one event travels in the Event field (the paper's
// one-event framing), several travel in the Events array. Every producer of
// event frames — the mbox outbox flusher and the controller's reprocess
// forwarding — uses this helper so the single-versus-batched choice is made
// in one place, mirroring SetChunks.
func (m *Message) SetEvents(evs []*Event) {
	if len(evs) == 1 {
		m.Event, m.Events = evs[0], nil
		return
	}
	m.Event, m.Events = nil, evs
}

// FrameEvents splits evs into frames of at most batch each (batch < 1 means
// 1, the per-event framing) and invokes fn per frame, stopping at the first
// error. Mirrors FrameChunks.
func FrameEvents(evs []*Event, batch int, fn func(frame []*Event) error) error {
	if batch < 1 {
		batch = 1
	}
	if batch > MaxEventsPerFrame {
		batch = MaxEventsPerFrame
	}
	for lo := 0; lo < len(evs); lo += batch {
		hi := lo + batch
		if hi > len(evs) {
			hi = len(evs)
		}
		if err := fn(evs[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}

// ChunkCount returns the number of state chunks the frame carries.
func (m *Message) ChunkCount() int {
	n := len(m.Chunks)
	if m.Chunk != nil {
		n++
	}
	return n
}

// EachChunk invokes fn for every state chunk in the frame, covering both the
// single-chunk and the batched representation.
func (m *Message) EachChunk(fn func(c *state.Chunk)) {
	if m.Chunk != nil {
		fn(m.Chunk)
	}
	for i := range m.Chunks {
		fn(&m.Chunks[i])
	}
}

// SetChunks stores the frame's chunk payload in the canonical wire
// representation: exactly one chunk travels in the Chunk field (the paper's
// one-chunk framing), several travel in the Chunks array. Every producer of
// chunk frames — the middlebox get streamer, the controller's move
// forwarding, and the eval harness's pipelined puts — uses this helper so
// the single-versus-batched choice is made in one place.
func (m *Message) SetChunks(chunks []state.Chunk) {
	if len(chunks) == 1 {
		m.Chunk, m.Chunks = &chunks[0], nil
		return
	}
	m.Chunk, m.Chunks = nil, chunks
}

// FrameChunks splits chunks into frames of at most batch each (batch < 1
// means 1, the paper's framing) and invokes fn per frame, stopping at the
// first error. The final frame of a stream may be short.
func FrameChunks(chunks []state.Chunk, batch int, fn func(frame []state.Chunk) error) error {
	if batch < 1 {
		batch = 1
	}
	for lo := 0; lo < len(chunks); lo += batch {
		hi := lo + batch
		if hi > len(chunks) {
			hi = len(chunks)
		}
		if err := fn(chunks[lo:hi]); err != nil {
			return err
		}
	}
	return nil
}
