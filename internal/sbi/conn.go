package sbi

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Conn frames Messages over a byte stream. Send is safe for concurrent use;
// the paper's controller dedicates one thread per MB to state operations and
// one to events, both of which write to the same connection.
//
// A Conn starts in the JSON codec (newline-delimited JSON, the paper
// prototype's format). After the hello exchange both ends may switch to the
// binary codec with Upgrade; see the Codec field of MsgHello.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	sendMu sync.Mutex
	recvMu sync.Mutex

	// codec is guarded by both mutexes: readers hold recvMu, writers hold
	// sendMu, and Upgrade holds both.
	codec wireCodec

	closeOnce sync.Once
	closeErr  error

	// Stats counters, read via Counters. Updated under sendMu/recvMu.
	sent, received uint64
}

// NewConn wraps a transport connection. The initial codec is JSON.
func NewConn(raw net.Conn) *Conn {
	c := &Conn{
		raw: raw,
		br:  bufio.NewReaderSize(raw, 64<<10),
		bw:  bufio.NewWriterSize(raw, 64<<10),
	}
	c.codec = newJSONCodec(c.br, c.bw)
	return c
}

// Codec returns the connection's current codec.
func (c *Conn) Codec() Codec {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.codec.name()
}

// Upgrade switches the connection to the named codec. Call it only at a
// protocol quiescence point — immediately after sending or receiving the
// hello — so no frame straddles the switch.
func (c *Conn) Upgrade(codec Codec) error {
	parsed, err := ParseCodec(string(codec))
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if parsed == c.codec.name() {
		return nil
	}
	switch parsed {
	case CodecBinary:
		c.codec = newBinaryCodec(c.br, c.bw)
	default:
		c.codec = newJSONCodec(c.br, c.bw)
	}
	return nil
}

// Send encodes one message. It may be called from multiple goroutines.
func (c *Conn) Send(m *Message) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.codec.encode(m); err != nil {
		return fmt.Errorf("sbi: send: %w", err)
	}
	c.sent++
	return nil
}

// Receive decodes the next message. Only one goroutine should receive.
func (c *Conn) Receive() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	m, err := c.codec.decode()
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("sbi: receive: %w", err)
	}
	c.received++
	return m, nil
}

// Counters returns the number of messages sent and received.
func (c *Conn) Counters() (sent, received uint64) {
	c.sendMu.Lock()
	sent = c.sent
	c.sendMu.Unlock()
	c.recvMu.Lock()
	received = c.received
	c.recvMu.Unlock()
	return sent, received
}

// Close closes the underlying transport. Safe to call multiple times.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}
