package sbi

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// coalesceDefault selects the write-path mode NewConn captures: coalesced
// flushing (the default) or the seed's flush-per-frame path, settable by
// OPENMB_COALESCE and cmd flags so `go test -bench` sweeps flip both ends of
// every connection at once (mirroring OPENMB_ZEROCOPY / OPENMB_SHARDS).
var coalesceDefault atomic.Bool

func init() {
	coalesceDefault.Store(true)
	switch v := os.Getenv("OPENMB_COALESCE"); v {
	case "", "1", "on", "true", "yes":
	case "0", "off", "false", "no":
		coalesceDefault.Store(false)
	default:
		// A typo'd sweep config must not silently run the wrong mode and
		// mislabel the resulting numbers.
		panic("sbi: OPENMB_COALESCE: want on/off (or 1/0), got " + v)
	}
}

// SetCoalesceDefault sets the write-path mode NewConn selects: coalesced
// flushing (flush-on-idle plus deferred stream flushes) or the seed's
// flush-per-frame ablation.
func SetCoalesceDefault(on bool) { coalesceDefault.Store(on) }

// CoalesceDefault reports the write-path mode NewConn currently selects.
// The mbox runtime also keys its event batching off it, so one knob flips
// the whole coalesced wire path.
func CoalesceDefault() bool { return coalesceDefault.Load() }

// Conn frames Messages over a byte stream. Send is safe for concurrent use;
// the paper's controller dedicates one thread per MB to state operations and
// one to events, both of which write to the same connection.
//
// # Write path: coalesced flushing
//
// Encoding appends frames to a buffered writer; when and how the buffer is
// flushed is the per-message overhead the Figure 9(c)/(d) and Figure 10
// experiments measure. In the default (coalesced) mode:
//
//   - Send encodes the frame, marks the writer dirty, and flushes only when
//     no other flushing sender (Send or Flush — never SendDeferred, which
//     would not honor the inheritance) is waiting on the send mutex —
//     flush-on-idle. The last flushing sender out always flushes, so a
//     frame never sits unflushed once the send path goes quiescent; no
//     timer goroutine is needed. Under contention (the move pipeline's put
//     workers, event forwarding racing a stream) consecutive frames share
//     one flush.
//   - SendDeferred encodes without flushing at all, for producers that know
//     more frames follow immediately (the middlebox get streamer, reply
//     coalescing in the southbound serve loop). The stream's terminating
//     Send — or an explicit Flush — publishes the tail; the buffered writer
//     auto-writes full buffers meanwhile, so long streams still make
//     progress in buffer-sized blocks.
//
// With coalescing off (OPENMB_COALESCE=off, the measurable ablation) both
// methods flush per frame, reproducing the seed's one-write-per-message
// wire path exactly.
//
// A Conn starts in the JSON codec (newline-delimited JSON, the paper
// prototype's format). After the hello exchange both ends may switch to the
// binary codec with Upgrade; see the Codec field of MsgHello.
type Conn struct {
	raw net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	sendMu sync.Mutex
	recvMu sync.Mutex

	// flushers counts goroutines inside the FLUSHING send operations —
	// Send and Flush, not SendDeferred: incremented before taking sendMu,
	// decremented while still holding it. A Send whose decrement leaves
	// other flushers accounted for skips its flush — whoever is waiting
	// inherits the dirty buffer and repeats the test, so the last
	// flushing sender out always flushes (the flush-on-idle invariant).
	// Deferred senders must not be counted: they never flush, so a Send
	// deferring to one would strand its frame in the buffer.
	flushers atomic.Int32

	// coalesce selects the write-path mode, captured from the package
	// default at construction (immutable afterwards).
	coalesce bool

	// dirty marks encoded-but-unflushed bytes; guarded by sendMu.
	dirty bool

	// codec is guarded by both mutexes: readers hold recvMu, writers hold
	// sendMu, and Upgrade holds both.
	codec wireCodec

	closeOnce sync.Once
	closeErr  error

	// Stats counters, read via Counters. Atomics, not mutex-guarded state:
	// Receive holds recvMu for the whole blocking read on an idle
	// connection, so a lock-taking snapshot would stall until the next
	// frame arrives.
	sent, received, flushes atomic.Uint64
}

// NewConn wraps a transport connection. The initial codec is JSON; the
// write-path mode is the package default (see SetCoalesceDefault).
func NewConn(raw net.Conn) *Conn {
	c := &Conn{
		raw:      raw,
		br:       bufio.NewReaderSize(raw, 64<<10),
		bw:       bufio.NewWriterSize(raw, 64<<10),
		coalesce: coalesceDefault.Load(),
	}
	c.codec = newJSONCodec(c.br, c.bw)
	return c
}

// Codec returns the connection's current codec.
func (c *Conn) Codec() Codec {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	return c.codec.name()
}

// Upgrade switches the connection to the named codec. Call it only at a
// protocol quiescence point — immediately after sending or receiving the
// hello — so no frame straddles the switch.
func (c *Conn) Upgrade(codec Codec) error {
	parsed, err := ParseCodec(string(codec))
	if err != nil {
		return err
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	// Publish any frames encoded under the old codec before switching.
	if err := c.flushLocked(); err != nil {
		return err
	}
	if parsed == c.codec.name() {
		return nil
	}
	switch parsed {
	case CodecBinary:
		c.codec = newBinaryCodec(c.br, c.bw)
	default:
		c.codec = newJSONCodec(c.br, c.bw)
	}
	return nil
}

// flushLocked flushes the buffered writer if it holds unflushed frames,
// counting the flush. Caller holds sendMu.
func (c *Conn) flushLocked() error {
	if !c.dirty {
		return nil
	}
	c.dirty = false
	c.flushes.Add(1)
	return c.bw.Flush()
}

// Send encodes one message and guarantees it reaches the transport once the
// send path goes quiescent (see the write-path notes on Conn). It may be
// called from multiple goroutines.
func (c *Conn) Send(m *Message) error {
	c.flushers.Add(1)
	c.sendMu.Lock()
	err := c.codec.encode(m)
	if err == nil {
		c.sent.Add(1)
		c.dirty = true
	}
	// The decrement must happen while sendMu is still held: decrementing
	// after unlock would let a waiter observe our stale count, skip its own
	// flush, and leave the final frame stranded in the buffer.
	idle := c.flushers.Add(-1) == 0
	if !c.coalesce || idle {
		if ferr := c.flushLocked(); err == nil {
			err = ferr
		}
	}
	c.sendMu.Unlock()
	if err != nil {
		return fmt.Errorf("sbi: send: %w", err)
	}
	return nil
}

// SendDeferred encodes one message without flushing, for stream producers
// with more frames immediately behind it. The frame is published by the
// buffered writer filling, by any concurrent or later Send going quiescent,
// or by an explicit Flush — every stream must end in one of the latter two
// (the middlebox streamer's terminating done/error Send, the southbound
// loop's flush-at-idle). With coalescing off it flushes per frame, exactly
// like Send.
func (c *Conn) SendDeferred(m *Message) error {
	// Deliberately NOT counted in flushers: a deferred sender never
	// flushes, so a concurrent Send must not defer its flush to this one
	// (the frames a deferred sender leaves behind are the later flushing
	// operation's responsibility, per the producer contract above).
	c.sendMu.Lock()
	err := c.codec.encode(m)
	if err == nil {
		c.sent.Add(1)
		c.dirty = true
	}
	if !c.coalesce {
		if ferr := c.flushLocked(); err == nil {
			err = ferr
		}
	}
	c.sendMu.Unlock()
	if err != nil {
		return fmt.Errorf("sbi: send: %w", err)
	}
	return nil
}

// Flush publishes any deferred frames to the transport. It counts as a
// flushing sender, so a concurrent Send may safely defer to it.
func (c *Conn) Flush() error {
	c.flushers.Add(1)
	c.sendMu.Lock()
	err := c.flushLocked()
	c.flushers.Add(-1)
	c.sendMu.Unlock()
	return err
}

// ReadBuffered reports how many received bytes are already buffered and
// decodable without touching the transport. The southbound serve loop uses
// it for reply coalescing: while more requests are already queued, replies
// stay deferred; when the loop is about to block on the transport, it
// flushes.
func (c *Conn) ReadBuffered() int {
	return c.br.Buffered()
}

// SetReadDeadline bounds how long the next Receive may block on the
// transport, delegating to the underlying connection (the zero time clears
// it). The accept paths use it so a peer that connects and then stalls —
// a truncated hello, a half-open socket — times out instead of pinning the
// accept goroutine forever. It deliberately does not take the receive
// mutex: its whole point is to fire while a Receive is parked inside it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	return c.raw.SetReadDeadline(t)
}

// Receive decodes the next message. Only one goroutine should receive.
func (c *Conn) Receive() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	m, err := c.codec.decode()
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("sbi: receive: %w", err)
	}
	c.received.Add(1)
	return m, nil
}

// Counters is a snapshot of a connection's wire counters. Sent/Flushes is
// the frames-per-flush ratio the coalesced write path exists to raise: the
// ablation pins it at 1, the coalesced path amortizes many frames per
// transport write.
type Counters struct {
	// Sent and Received count frames encoded and decoded.
	Sent, Received uint64
	// Flushes counts explicit buffered-writer flushes that published
	// frames (empty flushes are not counted; neither are the writer's
	// internal full-buffer writes, which cost a syscall but no latency
	// decision).
	Flushes uint64
}

// Counters returns a snapshot of the connection's frame and flush counters.
// It never takes the connection mutexes, so it is safe to call while the
// read loop is parked inside Receive.
//
// Snapshot semantics — the /metrics contract: each field is read with one
// atomic load of a counter that only ever increases, so every field is
// individually monotonic across snapshots and a scraped rate() can never go
// negative. The snapshot is NOT atomic across fields: a scrape concurrent
// with a send may observe the new Sent with the old Flushes (or vice
// versa), so cross-field derivations like frames/flush can be transiently
// off by one frame. That tearing is bounded and self-correcting; making the
// snapshot fully consistent would put a lock on the send path, which is
// exactly what this accessor exists to avoid.
func (c *Conn) Counters() Counters {
	return Counters{
		Sent:     c.sent.Load(),
		Received: c.received.Load(),
		Flushes:  c.flushes.Load(),
	}
}

// Close closes the underlying transport. Safe to call multiple times.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}
