package sbi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"openmb/internal/packet"
)

func parseFlowKey(s string) (packet.FlowKey, error) { return packet.ParseFlowKey(s) }

// Conn frames Messages over a byte stream. Send is safe for concurrent use;
// the paper's controller dedicates one thread per MB to state operations and
// one to events, both of which write to the same connection.
type Conn struct {
	raw net.Conn
	enc *json.Encoder
	dec *json.Decoder

	sendMu sync.Mutex
	recvMu sync.Mutex

	closeOnce sync.Once
	closeErr  error

	// Stats counters, read via Counters. Updated under sendMu/recvMu.
	sent, received uint64
}

// NewConn wraps a transport connection.
func NewConn(raw net.Conn) *Conn {
	return &Conn{raw: raw, enc: json.NewEncoder(raw), dec: json.NewDecoder(raw)}
}

// Send encodes one message. It may be called from multiple goroutines.
func (c *Conn) Send(m *Message) error {
	m.prepare()
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if err := c.enc.Encode(m); err != nil {
		return fmt.Errorf("sbi: send: %w", err)
	}
	c.sent++
	return nil
}

// Receive decodes the next message. Only one goroutine should receive.
func (c *Conn) Receive() (*Message, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	var m Message
	if err := c.dec.Decode(&m); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("sbi: receive: %w", err)
	}
	if err := m.finish(); err != nil {
		return nil, fmt.Errorf("sbi: receive: %w", err)
	}
	c.received++
	return &m, nil
}

// Counters returns the number of messages sent and received.
func (c *Conn) Counters() (sent, received uint64) {
	c.sendMu.Lock()
	sent = c.sent
	c.sendMu.Unlock()
	c.recvMu.Lock()
	received = c.received
	c.recvMu.Unlock()
	return sent, received
}

// Close closes the underlying transport. Safe to call multiple times.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { c.closeErr = c.raw.Close() })
	return c.closeErr
}
