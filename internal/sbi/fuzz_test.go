package sbi

// Native Go fuzz targets for the binary SBI codec, seeded from the
// codec-equivalence corpus (testMessages). The binary protocol is the
// default wire format, so every frame a hostile or corrupted peer could
// deliver goes through decode: the targets assert it never panics, never
// over-allocates past the frame bound, and that every frame it does accept
// re-encodes to a stable message (decode∘encode is the identity on decoded
// messages). CI runs each target for a short -fuzztime on every push so the
// checked-in corpus executes continuously; `go test` alone runs the seeds.

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
)

// encodeBinary renders one message as a binary frame.
func encodeBinary(tb testing.TB, m *Message) []byte {
	tb.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	c := newBinaryCodec(bufio.NewReader(&buf), bw)
	if err := c.encode(m); err != nil {
		tb.Fatalf("seed encode: %v", err)
	}
	if err := bw.Flush(); err != nil {
		tb.Fatalf("seed flush: %v", err)
	}
	return buf.Bytes()
}

// decodeBinary parses one binary frame from raw bytes.
func decodeBinary(raw []byte) (*Message, error) {
	c := newBinaryCodec(bufio.NewReader(bytes.NewReader(raw)), nil)
	return c.decode()
}

// seedCorpus adds every equivalence-corpus message's binary frame (the
// messages with non-IPv4 keys cannot encode and are skipped).
func seedCorpus(f *testing.F) {
	for _, frame := range seedFrames() {
		f.Add(frame)
	}
}

// seedFrames renders every encodable equivalence-corpus message as a binary
// frame (the messages with non-IPv4 keys cannot encode and are skipped).
func seedFrames() [][]byte {
	var frames [][]byte
	for _, m := range testMessages() {
		var buf bytes.Buffer
		bw := bufio.NewWriter(&buf)
		c := newBinaryCodec(bufio.NewReader(&buf), bw)
		if err := c.encode(m); err != nil {
			continue
		}
		if err := bw.Flush(); err != nil {
			continue
		}
		frames = append(frames, buf.Bytes())
	}
	return frames
}

// FuzzBinaryRoundTrip: any frame the decoder accepts must re-encode and
// re-decode to the identical message — the stability property the handoff
// and move paths rely on when they forward decoded frames onward.
func FuzzBinaryRoundTrip(f *testing.F) {
	seedCorpus(f)
	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := decodeBinary(raw)
		if err != nil {
			return // rejection is fine; panics/hangs are what we hunt
		}
		reencoded := encodeBinary(t, m)
		m2, err := decodeBinary(reencoded)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("round trip unstable:\n first:  %+v\n second: %+v", m, m2)
		}
	})
}

// FuzzBinaryRejectsCorrupt: truncations and bit flips of valid frames must
// surface as decode errors (or decode to some message), never as panics,
// hangs, or reads past the frame. The fuzz input picks the seed frame, a
// cut point, and a bit to flip.
func FuzzBinaryRejectsCorrupt(f *testing.F) {
	seeds := seedFrames()
	for i := range seeds {
		f.Add(i, 4, 0)
		f.Add(i, len(seeds[i])/2, 13)
	}
	f.Fuzz(func(t *testing.T, seed, cut, flip int) {
		if len(seeds) == 0 {
			t.Skip()
		}
		frame := append([]byte(nil), seeds[((seed%len(seeds))+len(seeds))%len(seeds)]...)

		// Truncation: every prefix must error (a cut frame is never a
		// valid shorter frame, because the length prefix still claims
		// the full body) — except cutting at 0, which is a clean EOF.
		if cut > 0 && cut < len(frame) {
			if m, err := decodeBinary(frame[:cut]); err == nil {
				t.Fatalf("truncated frame (%d/%d bytes) accepted: %+v", cut, len(frame), m)
			}
		}

		// Bit flip: decode must not panic; acceptance is allowed (many
		// flips land in payload bytes), but an accepted frame must still
		// round-trip stably.
		if flip >= 0 && flip/8 < len(frame) {
			frame[flip/8] ^= 1 << (flip % 8)
		}
		m, err := decodeBinary(frame)
		if err != nil {
			return
		}
		reencoded := encodeBinary(t, m)
		if _, err := decodeBinary(reencoded); err != nil {
			t.Fatalf("accepted corrupt frame did not re-decode: %v", err)
		}
	})
}
