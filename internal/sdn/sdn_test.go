package sdn

import (
	"net/netip"
	"testing"
	"time"

	"openmb/internal/netsim"
	"openmb/internal/packet"
)

func mkPacket(dstPort uint16) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, 0, 1}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: 1000, DstPort: dstPort,
		Payload: []byte("x"),
	}
}

// twoSwitchTopo: src -- s1 -- s2 -- dst, with an alternate host alt on s2.
func twoSwitchTopo(t *testing.T) (*netsim.Network, *Controller, *netsim.Host, *netsim.Host, *netsim.Host) {
	t.Helper()
	n := netsim.New()
	s1 := netsim.NewSwitch(n, "s1")
	s2 := netsim.NewSwitch(n, "s2")
	src := netsim.NewHost(n, "src", 0)
	dst := netsim.NewHost(n, "dst", 0)
	alt := netsim.NewHost(n, "alt", 0)
	for _, pair := range [][2]string{{"src", "s1"}, {"s1", "s2"}, {"s2", "dst"}, {"s2", "alt"}} {
		if err := n.Connect(pair[0], pair[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	c := NewController()
	c.AddSwitch(s1)
	c.AddSwitch(s2)
	t.Cleanup(n.Stop)
	return n, c, src, dst, alt
}

func TestRouteEndToEnd(t *testing.T) {
	n, c, src, dst, _ := twoSwitchTopo(t)
	_, err := c.Route(packet.MatchAll, 10, []Hop{{"s1", "s2"}, {"s2", "dst"}})
	if err != nil {
		t.Fatal(err)
	}
	src.Send("s1", mkPacket(80))
	n.Quiesce(time.Second)
	if dst.Count() != 1 {
		t.Fatalf("dst received %d", dst.Count())
	}
}

func TestRouteUnknownSwitch(t *testing.T) {
	_, c, _, _, _ := twoSwitchTopo(t)
	if _, err := c.Route(packet.MatchAll, 10, []Hop{{"nope", "x"}}); err == nil {
		t.Fatal("route through unknown switch should fail")
	}
}

func TestUnroute(t *testing.T) {
	n, c, src, dst, _ := twoSwitchTopo(t)
	id, _ := c.Route(packet.MatchAll, 10, []Hop{{"s1", "s2"}, {"s2", "dst"}})
	if err := c.Unroute(id); err != nil {
		t.Fatal(err)
	}
	if err := c.Unroute(id); err == nil {
		t.Fatal("double unroute should fail")
	}
	src.Send("s1", mkPacket(80))
	n.Quiesce(time.Second)
	if dst.Count() != 0 {
		t.Fatal("unrouted traffic still delivered")
	}
}

func TestRouteUpdateSteersTraffic(t *testing.T) {
	// The scaling scenario: re-route the HTTP substream to a new instance
	// by installing a higher-priority route.
	n, c, src, dst, alt := twoSwitchTopo(t)
	c.Route(packet.MatchAll, 10, []Hop{{"s1", "s2"}, {"s2", "dst"}})
	src.Send("s1", mkPacket(80))
	n.Quiesce(time.Second)

	http, _ := packet.ParseFieldMatch("[tp_dst=80]")
	c.Route(http, 20, []Hop{{"s1", "s2"}, {"s2", "alt"}})
	src.Send("s1", mkPacket(80))
	src.Send("s1", mkPacket(443))
	n.Quiesce(time.Second)
	if alt.Count() != 1 {
		t.Fatalf("alt received %d, want 1", alt.Count())
	}
	if dst.Count() != 2 { // first HTTP + the 443 packet
		t.Fatalf("dst received %d, want 2", dst.Count())
	}
}

func TestUpdatesCounterAndDelay(t *testing.T) {
	_, c, _, _, _ := twoSwitchTopo(t)
	c.SetUpdateDelay(5 * time.Millisecond)
	start := time.Now()
	id, err := c.Route(packet.MatchAll, 10, []Hop{{"s1", "s2"}, {"s2", "dst"}})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("two hops with 5ms delay took %v", elapsed)
	}
	c.Unroute(id)
	if c.Updates() != 2 {
		t.Fatalf("updates: %d", c.Updates())
	}
	c.Barrier() // no-op, but part of the API contract
}
