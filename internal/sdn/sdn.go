// Package sdn implements the SDN controller half of OpenMB. Control
// applications coordinate middlebox state operations (via the MB controller
// in internal/core) with network forwarding changes issued here — the
// route(k,r) call of the paper's Figure 4.
//
// The controller plays the role Floodlight plays in the paper's prototype:
// it hosts the route-management function and hides per-switch rule plumbing
// behind a path-level northbound call.
package sdn

import (
	"fmt"
	"sync"
	"time"

	"openmb/internal/netsim"
	"openmb/internal/packet"
)

// Hop names one forwarding step: the switch that matches and the neighbor
// port it outputs to.
type Hop struct {
	Switch  string
	OutPort string
}

// RouteID identifies an installed route for later removal.
type RouteID string

// Controller manages flow tables across a set of switches.
type Controller struct {
	mu       sync.Mutex
	switches map[string]*netsim.Switch
	routes   map[RouteID][]ruleRef
	seq      uint64
	// updateDelay artificially delays rule installation, modeling the
	// controller-to-switch propagation window the paper's correctness
	// arguments revolve around. Zero by default.
	updateDelay time.Duration
	// updates counts northbound route operations.
	updates uint64
}

type ruleRef struct {
	sw *netsim.Switch
	id string
}

// NewController returns a controller managing no switches.
func NewController() *Controller {
	return &Controller{switches: map[string]*netsim.Switch{}, routes: map[RouteID][]ruleRef{}}
}

// AddSwitch registers a switch with the controller.
func (c *Controller) AddSwitch(sw *netsim.Switch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.switches[sw.Name()] = sw
}

// SetUpdateDelay sets an artificial delay applied before each rule
// installation, modeling controller-to-switch propagation latency.
func (c *Controller) SetUpdateDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.updateDelay = d
}

// Updates returns the number of Route/Unroute operations performed.
func (c *Controller) Updates() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.updates
}

// Route installs forwarding state so that packets matching m follow the
// given hops: route(k, r) in the paper. Rules are installed from the last
// hop backward — the standard discipline that avoids transient blackholes —
// and all carry the given priority. It returns an ID for Unroute.
func (c *Controller) Route(m packet.FieldMatch, priority int, hops []Hop) (RouteID, error) {
	c.mu.Lock()
	c.seq++
	id := RouteID(fmt.Sprintf("route-%d", c.seq))
	delay := c.updateDelay
	c.updates++
	swByName := make(map[string]*netsim.Switch, len(hops))
	for _, h := range hops {
		sw, ok := c.switches[h.Switch]
		if !ok {
			c.mu.Unlock()
			return "", fmt.Errorf("sdn: unknown switch %q", h.Switch)
		}
		swByName[h.Switch] = sw
	}
	c.mu.Unlock()

	var refs []ruleRef
	for i := len(hops) - 1; i >= 0; i-- {
		h := hops[i]
		if delay > 0 {
			time.Sleep(delay)
		}
		r := swByName[h.Switch].Install(netsim.Rule{
			ID:       fmt.Sprintf("%s-hop%d", id, i),
			Priority: priority,
			Match:    m,
			OutPorts: []string{h.OutPort},
		})
		refs = append(refs, ruleRef{sw: swByName[h.Switch], id: r.ID})
	}
	c.mu.Lock()
	c.routes[id] = refs
	c.mu.Unlock()
	return id, nil
}

// Unroute removes all rules of a previously installed route.
func (c *Controller) Unroute(id RouteID) error {
	c.mu.Lock()
	refs, ok := c.routes[id]
	if ok {
		delete(c.routes, id)
		c.updates++
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("sdn: unknown route %q", id)
	}
	for _, ref := range refs {
		ref.sw.Remove(ref.id)
	}
	return nil
}

// Barrier returns once all previously issued updates have been applied.
// Rule installation is synchronous in this implementation, so Barrier only
// provides the ordering point control applications sequence against.
func (c *Controller) Barrier() {}
