// Package baseline implements the three state-of-the-art alternatives the
// paper compares OpenMB against (§2.1, §8.1.2):
//
//   - VM snapshots: clone a middlebox's state in its entirety, unneeded
//     state included (snapshot.go);
//   - controlling configuration and routing only: clone configuration, route
//     new flows to the new instance, and let existing flows drain
//     (configroute.go);
//   - Split/Merge: move per-flow state with traffic halted and buffered for
//     atomicity (splitmerge.go).
//
// Each baseline runs over the same middlebox implementations and network
// substrate as OpenMB, so the comparisons in the evaluation harness measure
// the approach, not the plumbing.
package baseline

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
)

// Image is a whole-middlebox state snapshot: everything a VM snapshot would
// capture. Unlike OpenMB's fine-grained chunks, an Image is indivisible —
// restoring it installs all state, needed or not, which is exactly the
// failure mode §8.1.2 quantifies (unneeded state causing incorrect log
// entries and wasted memory).
type Image struct {
	Kind           string
	Config         []state.Entry
	SupportPerflow []state.Chunk
	ReportPerflow  []state.Chunk
	SupportShared  []byte
	ReportShared   []byte
}

// Snapshot captures the full state of a middlebox. It bypasses the OpenMB
// controller entirely, reading state through the logic interface the way a
// hypervisor would freeze memory.
func Snapshot(logic mbox.Logic) (*Image, error) {
	img := &Image{Kind: logic.Kind()}
	entries, err := logic.Config().Export("")
	if err != nil {
		return nil, fmt.Errorf("baseline: snapshot config: %w", err)
	}
	img.Config = entries
	collect := func(class state.Class) ([]state.Chunk, error) {
		var chunks []state.Chunk
		err := logic.GetPerflow(class, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
			blob, err := build(func() {})
			if err != nil {
				return err
			}
			chunks = append(chunks, state.Chunk{Key: key, Blob: blob})
			return nil
		})
		return chunks, err
	}
	if img.SupportPerflow, err = collect(state.Supporting); err != nil {
		return nil, fmt.Errorf("baseline: snapshot per-flow supporting: %w", err)
	}
	if img.ReportPerflow, err = collect(state.Reporting); err != nil {
		return nil, fmt.Errorf("baseline: snapshot per-flow reporting: %w", err)
	}
	if blob, err := logic.GetShared(state.Supporting, func() {}); err == nil {
		img.SupportShared = blob
	}
	if blob, err := logic.GetShared(state.Reporting, func() {}); err == nil {
		img.ReportShared = blob
	}
	return img, nil
}

// Restore installs an image into a fresh middlebox of the same kind.
func Restore(logic mbox.Logic, img *Image) error {
	if logic.Kind() != img.Kind {
		return fmt.Errorf("baseline: restore %q image into %q middlebox", img.Kind, logic.Kind())
	}
	if err := logic.Config().Import(img.Config); err != nil {
		return fmt.Errorf("baseline: restore config: %w", err)
	}
	for _, c := range img.SupportPerflow {
		if err := logic.PutPerflow(state.Supporting, c); err != nil {
			return fmt.Errorf("baseline: restore per-flow supporting: %w", err)
		}
	}
	for _, c := range img.ReportPerflow {
		if err := logic.PutPerflow(state.Reporting, c); err != nil {
			return fmt.Errorf("baseline: restore per-flow reporting: %w", err)
		}
	}
	if len(img.SupportShared) > 0 {
		if err := logic.PutShared(state.Supporting, img.SupportShared); err != nil {
			return fmt.Errorf("baseline: restore shared supporting: %w", err)
		}
	}
	if len(img.ReportShared) > 0 {
		if err := logic.PutShared(state.Reporting, img.ReportShared); err != nil {
			return fmt.Errorf("baseline: restore shared reporting: %w", err)
		}
	}
	return nil
}

// Size returns the serialized byte size of the image — the metric behind
// the BASE/FULL/HTTP/OTHER comparison of §8.1.2.
func (img *Image) Size() (int, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// Chunks returns the number of per-flow chunks of both classes.
func (img *Image) Chunks() int { return len(img.SupportPerflow) + len(img.ReportPerflow) }

// PerflowBytes sums the per-flow blob sizes matching m (both classes);
// with MatchAll it measures the state SDMBN would move, for the
// "8.1 MB moved vs 22 MB snapshot delta" style comparison.
func (img *Image) PerflowBytes(m packet.FieldMatch) int {
	total := 0
	for _, c := range img.SupportPerflow {
		if m.MatchEither(c.Key) {
			total += len(c.Blob)
		}
	}
	for _, c := range img.ReportPerflow {
		if m.MatchEither(c.Key) {
			total += len(c.Blob)
		}
	}
	return total
}
