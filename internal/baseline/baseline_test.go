package baseline

import (
	"strings"
	"sync"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/ips"
	"openmb/internal/mbox/monitor"
	"openmb/internal/packet"
	"openmb/internal/trace"
)

func feed(t *testing.T, logic mbox.Logic, pkts []*packet.Packet) *mbox.Runtime {
	t.Helper()
	rt := mbox.New("mb", logic, mbox.Options{})
	t.Cleanup(rt.Close)
	for _, p := range pkts {
		rt.HandlePacket(p)
	}
	if !rt.Drain(10 * time.Second) {
		t.Fatal("drain timeout")
	}
	return rt
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tr := trace.Cloud(trace.CloudConfig{Seed: 30, Flows: 25})
	src := monitor.New()
	feed(t, src, tr.Packets)

	img, err := Snapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	if img.Chunks() != src.FlowCount() {
		t.Fatalf("image chunks %d vs flows %d", img.Chunks(), src.FlowCount())
	}
	dst := monitor.New()
	if err := Restore(dst, img); err != nil {
		t.Fatal(err)
	}
	if dst.FlowCount() != src.FlowCount() {
		t.Fatalf("restored flows: %d vs %d", dst.FlowCount(), src.FlowCount())
	}
	if dst.TotalPerflowPackets() != src.TotalPerflowPackets() {
		t.Fatal("restored counters differ")
	}
	// Shared state came along too — the whole point (and flaw) of
	// snapshots: EVERYTHING copies.
	if dst.Snapshot().Shared.Packets != src.Snapshot().Shared.Packets {
		t.Fatal("shared counters not in image")
	}
}

func TestSnapshotKindMismatch(t *testing.T) {
	img := &Image{Kind: "monitor"}
	if err := Restore(ips.New(), img); err == nil {
		t.Fatal("cross-kind restore should fail")
	}
}

func TestSnapshotSizeGrowsWithState(t *testing.T) {
	base := monitor.New()
	imgBase, _ := Snapshot(base)
	sizeBase, err := imgBase.Size()
	if err != nil {
		t.Fatal(err)
	}

	full := monitor.New()
	feed(t, full, trace.Cloud(trace.CloudConfig{Seed: 31, Flows: 100}).Packets)
	imgFull, _ := Snapshot(full)
	sizeFull, _ := imgFull.Size()
	if sizeFull <= sizeBase {
		t.Fatalf("FULL image (%d) should exceed BASE image (%d)", sizeFull, sizeBase)
	}
}

func TestSnapshotCarriesUnneededState(t *testing.T) {
	// The §8.1.2 correctness flaw: after a snapshot-based migration, the
	// new IPS holds state for flows that never route to it; when those
	// flows terminate abruptly, the log shows anomalous entries.
	tr := trace.Cloud(trace.CloudConfig{Seed: 32, Flows: 30})
	src := ips.New()
	rtSrc := feed(t, src, tr.Packets[:len(tr.Packets)/2])
	_ = rtSrc

	img, err := Snapshot(src)
	if err != nil {
		t.Fatal(err)
	}
	dst := ips.New()
	if err := Restore(dst, img); err != nil {
		t.Fatal(err)
	}
	httpMatch := trace.HTTPMatch()
	// The new MB receives only HTTP flows; everything else it holds is
	// unneeded state that eventually times out with an anomalous state.
	lines := dst.FlushAll(nil)
	anomalous := 0
	for _, l := range lines {
		if !strings.Contains(l, "state=SF") && !strings.Contains(l, "state=REJ") {
			anomalous++
		}
	}
	if anomalous == 0 {
		t.Fatal("snapshot migration produced no anomalous entries — the baseline flaw is not reproduced")
	}
	// In contrast, the state SDMBN would move is only the HTTP subset.
	moved := img.PerflowBytes(httpMatch)
	all := img.PerflowBytes(packet.MatchAll)
	if moved >= all {
		t.Fatalf("HTTP subset (%d) should be smaller than full state (%d)", moved, all)
	}
}

func TestConfigRouteMigrateClonesOnlyConfig(t *testing.T) {
	src := monitor.New()
	src.Config().Set("service_detection", []string{"off"})
	feed(t, src, trace.Cloud(trace.CloudConfig{Seed: 33, Flows: 10}).Packets)
	dst := monitor.New()
	if err := ConfigRouteMigrate(src, dst); err != nil {
		t.Fatal(err)
	}
	if !src.Config().Equal(dst.Config()) {
		t.Fatal("config not cloned")
	}
	if dst.FlowCount() != 0 {
		t.Fatal("config+routing must not move state")
	}
}

func TestDrainTime(t *testing.T) {
	flows := []trace.FlowInfo{
		{Start: 0, End: int64(100 * time.Second)},
		{Start: 0, End: int64(2000 * time.Second)},
		{Start: int64(400 * time.Second), End: int64(500 * time.Second)},
	}
	d := DrainTime(flows, 50*time.Second)
	if d != 1950*time.Second {
		t.Fatalf("drain time: %v", d)
	}
	if got := ActiveAt(flows, 450*time.Second); got != 2 {
		t.Fatalf("active flows: %d", got)
	}
	// Reroute after everything ended: nothing drains.
	if d := DrainTime(flows, 3000*time.Second); d != 0 {
		t.Fatalf("drain after end: %v", d)
	}
}

func TestDrainTimeMatchesUnivDCTail(t *testing.T) {
	tr := trace.UnivDC(trace.UnivDCConfig{Seed: 34, Flows: 1500})
	// Reroute mid-trace: with ~9% of flows outliving 1500 s, the drain
	// time should exceed 1500 s (the paper: "the deprecated MB was held
	// up for over 1500 s!").
	d := DrainTime(tr.Flows, 30*time.Minute)
	if d < 1000*time.Second {
		t.Fatalf("drain time %v too short for a heavy-tailed trace", d)
	}
}

func TestSplitMergeBuffersDuringMove(t *testing.T) {
	src := monitor.New()
	tr := trace.Cloud(trace.CloudConfig{Seed: 35, Flows: 200})
	feed(t, src, tr.Packets)
	dst := monitor.New()

	var delivered []*packet.Packet
	var mu sync.Mutex
	sink := func(p *packet.Packet) {
		mu.Lock()
		delivered = append(delivered, p)
		mu.Unlock()
	}
	valve := NewHaltBuffer(sink)

	// Deterministic halt window: suspend the valve, let packets arrive
	// (they buffer), then run the move. Move re-halts (idempotent) and
	// releases the buffer when the transfer completes. The concurrent
	// variant with paced arrivals is exercised by the S-SM experiment in
	// internal/eval.
	valve.Halt()
	const arrivals = 50
	for i := 0; i < arrivals; i++ {
		valve.HandlePacket(tr.Packets[i%len(tr.Packets)])
	}
	if valve.QueueLen() != arrivals {
		t.Fatalf("halted valve buffered %d, want %d", valve.QueueLen(), arrivals)
	}
	time.Sleep(time.Millisecond) // the buffer holds packets for a measurable while
	res, err := Move(valve, src, dst, packet.MatchAll, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.ChunksMoved != 200 {
		t.Fatalf("chunks moved: %d", res.ChunksMoved)
	}
	if res.Buffered != arrivals {
		t.Fatalf("buffered %d, want %d", res.Buffered, arrivals)
	}
	if res.AvgAddedLatency() <= 0 {
		t.Fatal("no added latency recorded")
	}
	if src.FlowCount() != 0 || dst.FlowCount() != 200 {
		t.Fatalf("state not moved: src=%d dst=%d", src.FlowCount(), dst.FlowCount())
	}
	// Atomicity by suspension: all buffered packets eventually delivered.
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) == 0 {
		t.Fatal("buffered packets were not released")
	}
}

func TestHaltBufferPassthroughWhenOpen(t *testing.T) {
	var got int
	valve := NewHaltBuffer(func(*packet.Packet) { got++ })
	valve.HandlePacket(&packet.Packet{})
	if got != 1 || valve.QueueLen() != 0 {
		t.Fatalf("open valve should pass through: got=%d queue=%d", got, valve.QueueLen())
	}
	valve.Halt()
	valve.HandlePacket(&packet.Packet{})
	if got != 1 || valve.QueueLen() != 1 {
		t.Fatalf("halted valve should buffer: got=%d queue=%d", got, valve.QueueLen())
	}
	n, added := valve.Release(nil)
	if n != 1 || added < 0 {
		t.Fatalf("release: %d %v", n, added)
	}
	if got != 2 {
		t.Fatalf("released packet not forwarded: %d", got)
	}
}

func TestSplitMergeCannotMoveSharedState(t *testing.T) {
	// Table 2: Split/Merge lacks shared-state support. Move transfers
	// per-flow chunks but the shared counters stay behind.
	src := monitor.New()
	feed(t, src, trace.Cloud(trace.CloudConfig{Seed: 36, Flows: 20}).Packets)
	dst := monitor.New()
	valve := NewHaltBuffer(nil)
	if _, err := Move(valve, src, dst, packet.MatchAll, nil); err != nil {
		t.Fatal(err)
	}
	if dst.Snapshot().Shared.Packets != 0 {
		t.Fatal("Split/Merge moved shared state — it must not be able to")
	}
	if src.Snapshot().Shared.Packets == 0 {
		t.Fatal("shared state should remain at the source")
	}
}
