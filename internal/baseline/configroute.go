package baseline

import (
	"fmt"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/trace"
)

// ConfigRouteMigrate performs the "controlling MB configuration and routing"
// approach (§2.1): clone the configuration to the new instance and leave all
// internal state behind. The caller re-routes new flows; existing flows keep
// using the deprecated instance until they finish. No state is moved —
// that is the approach's defining limitation.
func ConfigRouteMigrate(src, dst mbox.Logic) error {
	entries, err := src.Config().Export("")
	if err != nil {
		return fmt.Errorf("baseline: config+route export: %w", err)
	}
	if err := dst.Config().Import(entries); err != nil {
		return fmt.Errorf("baseline: config+route import: %w", err)
	}
	return nil
}

// DrainTime computes how long a deprecated middlebox is "held up" by
// in-progress flows under the config+routing approach: the time from the
// re-route instant until the last active flow completes. §8.1.2 observes
// the deprecated MB was held up for over 1500 s because ~9% of flows in the
// university data-center trace outlive 1500 s (Figure 8).
func DrainTime(flows []trace.FlowInfo, rerouteAt time.Duration) time.Duration {
	reroute := int64(rerouteAt)
	var lastEnd int64
	for _, f := range flows {
		if f.Start <= reroute && f.End > reroute && f.End > lastEnd {
			lastEnd = f.End
		}
	}
	if lastEnd == 0 {
		return 0
	}
	return time.Duration(lastEnd - reroute)
}

// ActiveAt counts flows in progress at t — the state the deprecated
// middlebox still carries.
func ActiveAt(flows []trace.FlowInfo, t time.Duration) int {
	at := int64(t)
	n := 0
	for _, f := range flows {
		if f.Start <= at && f.End > at {
			n++
		}
	}
	return n
}
