package baseline

import (
	"sync"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
)

// SplitMerge implements the halt-based migration of Split/Merge (§2.1,
// §8.1.2): while per-flow state moves between instances, traffic to the
// affected middlebox is suspended and buffered; when the move completes, the
// buffer drains to the new instance. Atomicity is trivially preserved — at
// the cost of added per-packet latency, which is what the paper measures
// (244 packets buffered, +863 ms average processing latency at 1000 chunks
// and 1000 pkt/s).
//
// Shared state is NOT moved: Split/Merge's per-flow abstractions cannot
// express it (Table 2: scale-down with RE or PRADS middleboxes is
// unsupported).

// HaltBuffer is a packet valve placed in front of a middlebox. While
// halted, arriving packets queue with their arrival timestamps; Release
// drains them to the destination and reports the added latency.
type HaltBuffer struct {
	mu      sync.Mutex
	halted  bool
	queue   []timedPacket
	forward func(p *packet.Packet)
}

type timedPacket struct {
	p  *packet.Packet
	at time.Time
}

// NewHaltBuffer returns a valve forwarding to the given function.
func NewHaltBuffer(forward func(p *packet.Packet)) *HaltBuffer {
	return &HaltBuffer{forward: forward}
}

// HandlePacket implements netsim.Endpoint.
func (h *HaltBuffer) HandlePacket(p *packet.Packet) {
	h.mu.Lock()
	if h.halted {
		h.queue = append(h.queue, timedPacket{p: p, at: time.Now()})
		h.mu.Unlock()
		return
	}
	fwd := h.forward
	h.mu.Unlock()
	if fwd == nil {
		// No destination wired: the packet is dropped, and the borrowed
		// reference released with it.
		p.Release()
		return
	}
	fwd(p)
}

// Halt starts buffering.
func (h *HaltBuffer) Halt() {
	h.mu.Lock()
	h.halted = true
	h.mu.Unlock()
}

// Release stops buffering, drains the queue to the (possibly new)
// destination, and returns the number of buffered packets and the total
// added latency (sum over packets of time spent in the buffer).
func (h *HaltBuffer) Release(forward func(p *packet.Packet)) (buffered int, addedLatency time.Duration) {
	h.mu.Lock()
	h.halted = false
	queue := h.queue
	h.queue = nil
	if forward != nil {
		h.forward = forward
	}
	fwd := h.forward
	h.mu.Unlock()
	now := time.Now()
	for _, tp := range queue {
		addedLatency += now.Sub(tp.at)
		if fwd != nil {
			fwd(tp.p)
		} else {
			// No destination: the buffered packets are dropped, and
			// their borrowed references released with them.
			tp.p.Release()
		}
	}
	return len(queue), addedLatency
}

// QueueLen returns the current buffer occupancy.
func (h *HaltBuffer) QueueLen() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.queue)
}

// MoveResult summarizes a Split/Merge migration.
type MoveResult struct {
	// ChunksMoved counts per-flow chunks transferred (both classes).
	ChunksMoved int
	// MoveDuration is the wall time of the state transfer (the traffic
	// suspension window).
	MoveDuration time.Duration
	// Buffered and AddedLatency come from the halt buffer.
	Buffered     int
	AddedLatency time.Duration
}

// AvgAddedLatency returns the mean buffering delay per buffered packet.
func (r MoveResult) AvgAddedLatency() time.Duration {
	if r.Buffered == 0 {
		return 0
	}
	return r.AddedLatency / time.Duration(r.Buffered)
}

// Move performs a Split/Merge-style migration: halt traffic at the valve,
// transfer all matching per-flow state from src to dst synchronously, then
// release the valve toward the destination.
func Move(valve *HaltBuffer, src, dst mbox.Logic, m packet.FieldMatch, releaseTo func(p *packet.Packet)) (MoveResult, error) {
	var res MoveResult
	valve.Halt()
	start := time.Now()
	for _, class := range []state.Class{state.Supporting, state.Reporting} {
		err := src.GetPerflow(class, m, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
			blob, err := build(func() {})
			if err != nil {
				return err
			}
			if err := dst.PutPerflow(class, state.Chunk{Key: key, Blob: blob}); err != nil {
				return err
			}
			res.ChunksMoved++
			return nil
		})
		if err != nil {
			valve.Release(nil) // never leave traffic suspended
			return res, err
		}
		if _, err := src.DelPerflow(class, m); err != nil {
			valve.Release(nil)
			return res, err
		}
	}
	res.MoveDuration = time.Since(start)
	res.Buffered, res.AddedLatency = valve.Release(releaseTo)
	return res, nil
}
