package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of finite histogram buckets. Bounds are
// log-spaced powers of two over microseconds: bucket i covers durations up
// to 1µs<<i, so the range runs 1µs .. ~9 minutes before the +Inf bucket.
// That brackets everything the control plane measures: a put-ACK round trip
// over MemTransport sits near the bottom, a 25k-chunk move near the top.
const NumBuckets = 30

// Histogram is a fixed-bucket latency histogram with an allocation-free,
// lock-free record path: Observe is two atomic adds into a fixed array.
// The zero value is ready to use and must not be copied after first use.
//
// Snapshot consistency: each bucket counter and the sum are individually
// monotonic, but a snapshot taken concurrently with Observe may tear across
// fields (e.g. include an observation's bucket increment but not yet its
// sum). That is the same per-series-monotonicity contract the rest of
// /metrics exposes; rate() and histogram_quantile() tolerate it.
type Histogram struct {
	counts [NumBuckets]atomic.Uint64
	inf    atomic.Uint64
	sumNS  atomic.Int64
}

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) time.Duration {
	return time.Microsecond << i
}

// bucketIndex maps a duration to its bucket, or NumBuckets for +Inf.
func bucketIndex(d time.Duration) int {
	if d <= time.Microsecond {
		return 0
	}
	// Smallest i with d <= 1µs<<i, i.e. ceil(log2(ceil(d/1µs))).
	us := uint64((d + time.Microsecond - 1) / time.Microsecond)
	i := bits.Len64(us - 1)
	if i >= NumBuckets {
		return NumBuckets
	}
	return i
}

// Observe records one duration. Negative durations clamp to zero. Safe for
// concurrent use; performs no allocation and takes no lock.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if i := bucketIndex(d); i < NumBuckets {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram's counters.
// Count is derived from the bucket totals, so Count always equals the
// +Inf cumulative bucket within one snapshot.
type HistogramSnapshot struct {
	Counts [NumBuckets]uint64 // per-bucket (non-cumulative) counts
	Inf    uint64             // observations above the last finite bound
	Count  uint64             // total observations = sum(Counts) + Inf
	Sum    time.Duration      // sum of observed durations
}

// Snapshot returns a copy of the histogram's current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Inf = h.inf.Load()
	s.Count += s.Inf
	s.Sum = time.Duration(h.sumNS.Load())
	return s
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.Snapshot().Count }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket, mirroring histogram_quantile(). Returns 0 when
// the snapshot is empty; observations in the +Inf bucket report the last
// finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		if s.Counts[i] == 0 {
			cum += s.Counts[i]
			continue
		}
		next := cum + s.Counts[i]
		if float64(next) >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (rank - float64(cum)) / float64(s.Counts[i])
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return BucketBound(NumBuckets - 1)
}

// Mean returns the average observed duration, or 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}
