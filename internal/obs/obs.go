// Package obs is the observability plane's core: a collector registry that
// renders Prometheus text-format exposition, fixed-bucket latency histograms
// with a zero-allocation record path, and a compile-once filtered flow
// tracer.
//
// The package deliberately does NOT import net/http. Components deep in the
// tree (core, mbox, sbi) register collectors into a Registry; only the
// daemon binaries (and internal/obs/obshttp) put an HTTP listener in front
// of it. That keeps the data plane free of any server dependency while the
// scrape path stays a plain io.Writer render.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// A Collector contributes metric series to a scrape. Collect is called with
// a fresh Emitter on every scrape; implementations read their counters
// (atomics or locked snapshots) and emit them. Collect must not block on
// the data path.
type Collector interface {
	Collect(e *Emitter)
}

// CollectorFunc adapts a function to the Collector interface.
type CollectorFunc func(e *Emitter)

// Collect calls f(e).
func (f CollectorFunc) Collect(e *Emitter) { f(e) }

// Registry is a set of collectors rendered together on each scrape.
// Registration order is preserved; a scrape walks collectors in order and
// groups series by metric family so the output stays valid exposition even
// when several collectors emit the same family (e.g. one collector per
// cluster replica).
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register appends a collector. Safe for concurrent use with scrapes.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// WritePrometheus runs every registered collector and writes the combined
// exposition in Prometheus text format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	collectors := append([]Collector(nil), r.collectors...)
	r.mu.Unlock()

	e := newEmitter()
	for _, c := range collectors {
		c.Collect(e)
	}
	return e.writeTo(w)
}

// family buffers all series of one metric name so they render consecutively
// (the text format requires a family's samples to be contiguous).
type family struct {
	name  string
	help  string
	typ   string // "counter" | "gauge" | "histogram"
	lines []string
}

// Emitter receives metric samples during a scrape. It groups samples by
// family and renders HELP/TYPE headers exactly once per family. Label
// arguments are alternating key, value pairs; a trailing odd key is
// ignored.
type Emitter struct {
	order    []string
	families map[string]*family
}

func newEmitter() *Emitter {
	return &Emitter{families: map[string]*family{}}
}

func (e *Emitter) fam(name, help, typ string) *family {
	f, ok := e.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		e.families[name] = f
		e.order = append(e.order, name)
	}
	return f
}

// Counter emits one sample of a monotonically non-decreasing series. The
// /metrics contract is per-series monotonicity: each (name, labels) series
// must never decrease between scrapes, so rate() never goes negative.
// Cross-series tearing (one series from scrape N, a sibling from N+1) is
// allowed and benign.
func (e *Emitter) Counter(name, help string, v uint64, labels ...string) {
	f := e.fam(name, help, "counter")
	f.lines = append(f.lines, name+renderLabels(labels)+" "+strconv.FormatUint(v, 10))
}

// Gauge emits one sample of a series that may go up or down.
func (e *Emitter) Gauge(name, help string, v float64, labels ...string) {
	f := e.fam(name, help, "gauge")
	f.lines = append(f.lines, name+renderLabels(labels)+" "+formatFloat(v))
}

// Histogram emits the _bucket/_sum/_count series of h under name. Bounds
// are rendered in seconds per Prometheus convention. The snapshot's count
// is derived from the bucket totals so `le="+Inf"` always equals `_count`
// within one scrape.
func (e *Emitter) Histogram(name, help string, h *Histogram, labels ...string) {
	s := h.Snapshot()
	f := e.fam(name, help, "histogram")
	cum := uint64(0)
	for i := 0; i < NumBuckets; i++ {
		cum += s.Counts[i]
		le := append(append([]string(nil), labels...), "le", formatFloat(BucketBound(i).Seconds()))
		f.lines = append(f.lines, name+"_bucket"+renderLabels(le)+" "+strconv.FormatUint(cum, 10))
	}
	inf := append(append([]string(nil), labels...), "le", "+Inf")
	f.lines = append(f.lines, name+"_bucket"+renderLabels(inf)+" "+strconv.FormatUint(s.Count, 10))
	f.lines = append(f.lines, name+"_sum"+renderLabels(labels)+" "+formatFloat(s.Sum.Seconds()))
	f.lines = append(f.lines, name+"_count"+renderLabels(labels)+" "+strconv.FormatUint(s.Count, 10))
}

func (e *Emitter) writeTo(w io.Writer) error {
	for _, name := range e.order {
		f := e.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, ln := range f.lines {
			if _, err := io.WriteString(w, ln+"\n"); err != nil {
				return err
			}
		}
	}
	return nil
}

func renderLabels(kv []string) string {
	if len(kv) < 2 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseSeries parses Prometheus text exposition into a map from series
// (name plus rendered label set, exactly as exposed) to value. Comment and
// blank lines are skipped. It exists for tests and smoke tooling, not for
// general-purpose scraping.
func ParseSeries(text string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, ln := range strings.Split(text, "\n") {
		ln = strings.TrimSpace(ln)
		if ln == "" || strings.HasPrefix(ln, "#") {
			continue
		}
		sp := strings.LastIndexByte(ln, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: malformed sample line %q", ln)
		}
		v, err := strconv.ParseFloat(ln[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("obs: bad value in %q: %v", ln, err)
		}
		out[ln[:sp]] = v
	}
	return out, nil
}

// SortedSeriesNames returns the distinct family names present in a parsed
// series map (label sets and _bucket/_sum/_count suffixes stripped), sorted.
func SortedSeriesNames(series map[string]float64) []string {
	seen := map[string]bool{}
	for k := range series {
		name := k
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			name = strings.TrimSuffix(name, suf)
		}
		seen[name] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
