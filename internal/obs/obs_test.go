package obs

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"openmb/internal/packet"
)

func TestBucketIndex(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // Observe clamps; raw index also maps to 0
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{4 * time.Microsecond, 2},
		{time.Millisecond, 10},         // 1024µs bound = 1µs<<10
		{time.Second, 20},              // ~1.05s bound = 1µs<<20
		{10 * time.Minute, NumBuckets}, // above the last finite bound
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every finite bucket's bound must land in its own bucket (inclusive
	// upper bound), and one nanosecond above must land in the next.
	for i := 0; i < NumBuckets; i++ {
		if got := bucketIndex(BucketBound(i)); got != i {
			t.Errorf("bucketIndex(BucketBound(%d)) = %d", i, got)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100 * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	// 100µs lives in bucket 7 (64µs, 128µs]; interpolation stays inside it.
	p50 := s.Quantile(0.5)
	if p50 <= 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Errorf("p50 = %v, want within (64µs, 128µs]", p50)
	}
	if got := s.Mean(); got != 100*time.Microsecond {
		t.Errorf("mean = %v, want 100µs", got)
	}
	// An out-of-range observation lands in +Inf and reports the last
	// finite bound at q=1.
	h.Observe(time.Hour)
	s = h.Snapshot()
	if s.Inf != 1 || s.Count != 101 {
		t.Fatalf("inf=%d count=%d, want 1/101", s.Inf, s.Count)
	}
	if got := s.Quantile(1); got != BucketBound(NumBuckets-1) {
		t.Errorf("q=1 with +Inf obs = %v, want %v", got, BucketBound(NumBuckets-1))
	}
}

func TestHistogramObserveAllocs(t *testing.T) {
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", n)
	}
}

func TestEmitterRender(t *testing.T) {
	reg := NewRegistry()
	// Two collectors emitting the same counter family: samples must render
	// contiguously under a single HELP/TYPE header.
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Counter("openmb_widgets_total", "widgets", 3, "side", "a")
		e.Gauge("openmb_depth", "queue depth", 1.5)
	}))
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Counter("openmb_widgets_total", "widgets", 7, "side", `b"quote\`)
	}))
	var h Histogram
	h.Observe(3 * time.Microsecond)
	reg.Register(CollectorFunc(func(e *Emitter) {
		e.Histogram("openmb_lat_seconds", "latency", &h)
	}))

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	if n := strings.Count(text, "# TYPE openmb_widgets_total counter"); n != 1 {
		t.Errorf("TYPE header appears %d times, want 1\n%s", n, text)
	}
	if !strings.Contains(text, `openmb_widgets_total{side="a"} 3`) ||
		!strings.Contains(text, `openmb_widgets_total{side="b\"quote\\"} 7`) {
		t.Errorf("missing counter samples:\n%s", text)
	}
	// Family contiguity: no header between the two widget samples.
	i := strings.Index(text, `openmb_widgets_total{side="a"}`)
	j := strings.Index(text, `openmb_widgets_total{side="b`)
	if i < 0 || j < 0 || strings.Contains(text[i:j], "# ") {
		t.Errorf("family samples not contiguous:\n%s", text)
	}

	series, err := ParseSeries(text)
	if err != nil {
		t.Fatal(err)
	}
	if series[`openmb_widgets_total{side="a"}`] != 3 {
		t.Errorf("parsed a=%v", series[`openmb_widgets_total{side="a"}`])
	}
	if series["openmb_depth"] != 1.5 {
		t.Errorf("parsed gauge=%v", series["openmb_depth"])
	}
	// Histogram invariants within one scrape: +Inf cumulative == _count,
	// buckets cumulative non-decreasing.
	if series[`openmb_lat_seconds_bucket{le="+Inf"}`] != series["openmb_lat_seconds_count"] {
		t.Errorf("+Inf bucket != _count:\n%s", text)
	}
	prev := -1.0
	for i := 0; i < NumBuckets; i++ {
		k := `openmb_lat_seconds_bucket{le="` + formatFloat(BucketBound(i).Seconds()) + `"}`
		v, ok := series[k]
		if !ok {
			t.Fatalf("missing bucket %s", k)
		}
		if v < prev {
			t.Fatalf("bucket %s not cumulative: %v < %v", k, v, prev)
		}
		prev = v
	}

	names := SortedSeriesNames(series)
	want := []string{"openmb_depth", "openmb_lat_seconds", "openmb_widgets_total"}
	if len(names) != len(want) {
		t.Fatalf("families = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("families = %v, want %v", names, want)
		}
	}
}

func traceKey(last byte, dport uint16) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, 0, last}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: 4000,
		DstPort: dport,
	}
}

func TestTracerArmDisarmBudget(t *testing.T) {
	var tr FlowTracer
	if tr.Enabled() != nil || tr.IsArmed() || tr.Records() != nil {
		t.Fatal("zero-value tracer should be disarmed with no records")
	}

	m, err := packet.ParseFieldMatch("tp_dst=80")
	if err != nil {
		t.Fatal(err)
	}
	tr.Arm(TraceSpec{Match: m, Budget: 3})
	a := tr.Enabled()
	if a == nil {
		t.Fatal("armed tracer returned nil session")
	}
	match, other := traceKey(1, 80), traceKey(1, 443)
	for i := 0; i < 10; i++ {
		a.Record("mb1", HopIngress, match, "")
		a.Record("mb1", HopIngress, other, "") // never captured
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("budget 3, got %d records", len(recs))
	}
	for _, r := range recs {
		if r.Key != match || r.MB != "mb1" || r.Hop != HopIngress || r.When.IsZero() {
			t.Fatalf("bad record %+v", r)
		}
	}

	// Either-direction: the reverse flow of a match is captured too.
	tr.Arm(TraceSpec{Match: m})
	tr.Enabled().Record("mb1", HopEgress, match.Reverse(), "")
	if got := len(tr.Records()); got != 1 {
		t.Fatalf("reverse-direction record not captured (got %d)", got)
	}

	tr.Disarm()
	if tr.Enabled() != nil || tr.IsArmed() {
		t.Fatal("still armed after Disarm")
	}
	// Records survive disarm (arm, capture, disarm, dump).
	if got := len(tr.Records()); got != 1 {
		t.Fatalf("records lost on disarm (got %d)", got)
	}
	spec, ok := tr.Spec()
	if !ok || spec.Budget != DefaultTraceBudget {
		t.Fatalf("spec after disarm = %+v ok=%v", spec, ok)
	}
}

func TestTracerRecordEmitsNote(t *testing.T) {
	var tr FlowTracer
	tr.Arm(TraceSpec{Match: packet.MatchAll})
	tr.Enabled().RecordEmits("mb1", traceKey(1, 80), 2)
	recs := tr.Records()
	if len(recs) != 1 || recs[0].Note != "emits=2" || recs[0].Hop != HopVerdict {
		t.Fatalf("bad verdict record: %+v", recs)
	}
	if !strings.Contains(recs[0].String(), "mb1 verdict") {
		t.Fatalf("rendered record %q", recs[0].String())
	}
}

// TestCompileEquivalence pins FieldMatch.Compile to Match semantics across
// every predicate shape the tracer arms with.
func TestCompileEquivalence(t *testing.T) {
	keys := []packet.FlowKey{
		traceKey(1, 80), traceKey(2, 80), traceKey(1, 443),
		traceKey(1, 80).Reverse(),
		{SrcIP: netip.AddrFrom4([4]byte{172, 16, 0, 1}), DstIP: netip.AddrFrom4([4]byte{8, 8, 8, 8}), Proto: packet.ProtoUDP, SrcPort: 53, DstPort: 53},
	}
	for _, spec := range []string{
		"", "nw_src=10.0.0.1", "nw_src=10.0.0.0/24", "nw_dst=1.1.1.1",
		"tp_src=4000", "tp_dst=80", "nw_proto=tcp",
		"nw_src=10.0.0.1,tp_dst=80,nw_proto=tcp",
	} {
		m, err := packet.ParseFieldMatch(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		pred := m.Compile()
		for _, k := range keys {
			if pred(k) != m.Match(k) {
				t.Errorf("Compile(%q)(%v) = %v, Match = %v", spec, k, pred(k), m.Match(k))
			}
		}
	}
}

// TestTracerDisarmedAllocs pins the disarmed hot path: the Enabled() check
// must not allocate.
func TestTracerDisarmedAllocs(t *testing.T) {
	var tr FlowTracer
	if n := testing.AllocsPerRun(1000, func() {
		if tr.Enabled() != nil {
			t.Fatal("unexpectedly armed")
		}
	}); n != 0 {
		t.Fatalf("disarmed check allocates %v/op, want 0", n)
	}
}

// TestTracerArmedNonMatchingAllocs pins the armed-but-filtered path: packets
// that fail the predicate must not allocate either, so arming a narrow
// filter on a busy runtime costs only the predicate calls.
func TestTracerArmedNonMatchingAllocs(t *testing.T) {
	var tr FlowTracer
	m, err := packet.ParseFieldMatch("nw_src=192.0.2.99")
	if err != nil {
		t.Fatal(err)
	}
	tr.Arm(TraceSpec{Match: m})
	key := traceKey(1, 80)
	a := tr.Enabled()
	if n := testing.AllocsPerRun(1000, func() {
		a.Record("mb1", HopIngress, key, "")
		a.RecordEmits("mb1", key, 1)
	}); n != 0 {
		t.Fatalf("armed non-matching path allocates %v/op, want 0", n)
	}
}

// BenchmarkTracerDisarmed measures the disarmed hot-path check — the cost
// every packet pays once the tracer exists. One atomic pointer load:
// sub-nanosecond on anything modern.
func BenchmarkTracerDisarmed(b *testing.B) {
	var tr FlowTracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() != nil {
			b.Fatal("armed")
		}
	}
}

// BenchmarkTracerArmedNonMatching measures the armed-but-filtered per-hook
// cost: the compiled predicate, twice (both directions).
func BenchmarkTracerArmedNonMatching(b *testing.B) {
	var tr FlowTracer
	m, err := packet.ParseFieldMatch("nw_src=192.0.2.99")
	if err != nil {
		b.Fatal(err)
	}
	tr.Arm(TraceSpec{Match: m})
	key := traceKey(1, 80)
	a := tr.Enabled()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Record("mb1", HopIngress, key, "")
	}
}
