package obs

import "openmb/internal/packet"

// PoolCollector exports a packet pool's accounting under the given pool
// label: get/new/release totals plus outstanding-borrow and free-list
// gauges. The stats closure decouples obs from the pool's owner (packet
// cannot import obs without a cycle).
func PoolCollector(pool string, stats func() packet.PoolStats) Collector {
	return CollectorFunc(func(e *Emitter) {
		s := stats()
		e.Counter("openmb_pool_gets_total", "Packet pool Get/Clone calls.", s.Gets, "pool", pool)
		e.Counter("openmb_pool_news_total", "Pool gets that allocated a fresh packet (steady state: flat).", s.News, "pool", pool)
		e.Counter("openmb_pool_releases_total", "Final releases that recycled a packet.", s.Releases, "pool", pool)
		e.Gauge("openmb_pool_outstanding", "Currently borrowed packets.", float64(s.Outstanding), "pool", pool)
		e.Gauge("openmb_pool_free", "Current free-list length.", float64(s.FreeLen), "pool", pool)
	})
}
