package obs

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/packet"
)

// Hop identifies the data-path stage a trace record was captured at.
type Hop uint8

const (
	// HopIngress: the packet was accepted into (or dropped by) the mbox
	// ingress ring.
	HopIngress Hop = iota
	// HopDispatch: the worker dequeued the packet and is about to run the
	// middlebox logic (burst or per-packet path).
	HopDispatch
	// HopVerdict: the middlebox logic returned; the note carries the
	// emit count (0 = dropped/absorbed).
	HopVerdict
	// HopEgress: an emitted packet left the runtime toward the forward
	// sink.
	HopEgress
)

// String returns the lowercase hop name used in rendered records.
func (h Hop) String() string {
	switch h {
	case HopIngress:
		return "ingress"
	case HopDispatch:
		return "dispatch"
	case HopVerdict:
		return "verdict"
	case HopEgress:
		return "egress"
	}
	return fmt.Sprintf("hop(%d)", uint8(h))
}

// TraceRecord is one per-hop observation of a matched packet.
type TraceRecord struct {
	MB   string         // runtime name that captured the record
	Hop  Hop            // data-path stage
	Key  packet.FlowKey // the packet's flow at that stage (post-rewrite on egress)
	When time.Time
	Note string // stage detail: "replay", "emits=2", "drop:ring-full", ...
}

// String renders the record in the one-line wire/dump form.
func (r TraceRecord) String() string {
	s := fmt.Sprintf("%s %s %s", r.MB, r.Hop, r.Key)
	if r.Note != "" {
		s += " " + r.Note
	}
	return s
}

// TraceSpec arms a tracer: capture up to Budget records of packets whose
// flow satisfies Match in either direction.
type TraceSpec struct {
	Match  packet.FieldMatch
	Budget int // max records; <=0 selects DefaultTraceBudget
}

// DefaultTraceBudget is the record cap applied when a spec leaves Budget
// unset.
const DefaultTraceBudget = 256

// ArmedTrace is one arming session: the predicate compiled from the spec,
// the remaining budget, and the captured records. Obtained from
// FlowTracer.Enabled on the hot path; nil means disarmed.
type ArmedTrace struct {
	spec TraceSpec
	// pred is the spec's match compiled once, at arm time, into a single
	// closure (skbtrace's compile-the-filter-once discipline). The hot
	// path never re-parses or re-validates the filter.
	pred func(packet.FlowKey) bool
	used atomic.Int64
	mu   sync.Mutex
	recs []TraceRecord
}

// Record captures one hop observation if key matches the compiled predicate
// (either direction) and budget remains. Non-matching packets pay only the
// predicate call; matching packets pay an atomic add and, within budget, a
// short critical section.
func (a *ArmedTrace) Record(mb string, hop Hop, key packet.FlowKey, note string) {
	if !a.pred(key) && !a.pred(key.Reverse()) {
		return
	}
	a.capture(TraceRecord{MB: mb, Hop: hop, Key: key, Note: note})
}

// RecordEmits captures a HopVerdict record carrying the logic's emit count.
// The note string is built only after the predicate matches, so an armed
// tracer costs non-matching packets no allocation.
func (a *ArmedTrace) RecordEmits(mb string, key packet.FlowKey, emits int) {
	if !a.pred(key) && !a.pred(key.Reverse()) {
		return
	}
	a.capture(TraceRecord{MB: mb, Hop: HopVerdict, Key: key, Note: "emits=" + strconv.Itoa(emits)})
}

func (a *ArmedTrace) capture(rec TraceRecord) {
	if a.used.Add(1) > int64(a.spec.Budget) {
		return
	}
	rec.When = time.Now()
	a.mu.Lock()
	a.recs = append(a.recs, rec)
	a.mu.Unlock()
}

func (a *ArmedTrace) records() []TraceRecord {
	a.mu.Lock()
	out := append([]TraceRecord(nil), a.recs...)
	a.mu.Unlock()
	return out
}

// FlowTracer is a filtered packet tracer embedded in each mbox runtime.
// Disarmed cost is a single atomic pointer load per hook (see
// BenchmarkTracerDisarmed); the zero value is disarmed and ready to use.
//
// Records survive Disarm: Records() returns the current session's records
// while armed, or the last session's after disarming, so a caller can arm,
// run traffic, disarm, then dump.
type FlowTracer struct {
	armed atomic.Pointer[ArmedTrace]

	mu   sync.Mutex
	last *ArmedTrace
}

// Arm compiles spec.Match once and starts capturing. Re-arming replaces the
// previous session (its records remain retrievable until the new session
// captures, i.e. Records() always reflects the newest session).
func (t *FlowTracer) Arm(spec TraceSpec) {
	if spec.Budget <= 0 {
		spec.Budget = DefaultTraceBudget
	}
	a := &ArmedTrace{spec: spec, pred: spec.Match.Compile()}
	t.mu.Lock()
	t.last = a
	t.armed.Store(a)
	t.mu.Unlock()
}

// Disarm stops capturing. Already-captured records remain retrievable.
func (t *FlowTracer) Disarm() {
	t.armed.Store(nil)
}

// Enabled returns the active session, or nil when disarmed. This is the
// hot-path check: exactly one atomic pointer load, no branches beyond the
// caller's nil test, no allocation.
func (t *FlowTracer) Enabled() *ArmedTrace {
	return t.armed.Load()
}

// IsArmed reports whether a session is currently capturing.
func (t *FlowTracer) IsArmed() bool { return t.armed.Load() != nil }

// Records returns a snapshot of the newest session's records (armed or
// not). Nil if the tracer was never armed.
func (t *FlowTracer) Records() []TraceRecord {
	t.mu.Lock()
	a := t.last
	t.mu.Unlock()
	if a == nil {
		return nil
	}
	return a.records()
}

// Spec returns the newest session's spec and whether one exists.
func (t *FlowTracer) Spec() (TraceSpec, bool) {
	t.mu.Lock()
	a := t.last
	t.mu.Unlock()
	if a == nil {
		return TraceSpec{}, false
	}
	return a.spec, true
}
