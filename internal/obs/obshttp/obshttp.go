// Package obshttp puts a stdlib net/http front end on an obs.Registry.
// It is the only observability package that imports net/http: core, mbox,
// and sbi register collectors through internal/obs and never see a server.
package obshttp

import (
	"net"
	"net/http"

	"openmb/internal/obs"
)

// Handler serves Prometheus text exposition rendered from reg.
func Handler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// Serve listens on addr and serves GET /metrics from reg in a background
// goroutine. It returns the bound address (useful with ":0") and a close
// function. Listen errors are returned synchronously so a daemon with a
// bad -metrics flag fails at startup, not on first scrape.
func Serve(addr string, reg *obs.Registry) (bound string, closeFn func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
