package mbox

// Regression tests for the tear-proof ingress snapshot the elasticity loop
// samples. The /metrics scrape contract tolerates cross-series tearing; a
// control loop differencing (depth, drops) pairs cannot — a snapshot whose
// depth predates its drop counters would pair "ring not yet full" with
// "ring shed packets", which reads as load appearing from nowhere.

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// gateLogic blocks every Process call until the gate opens, wedging the
// worker so tests control queue depth exactly.
type gateLogic struct {
	gate chan struct{}
	cfg  *state.ConfigTree
}

func newGateLogic() *gateLogic {
	return &gateLogic{gate: make(chan struct{}), cfg: state.NewConfigTree()}
}

func (l *gateLogic) Kind() string                           { return "gate" }
func (l *gateLogic) Process(ctx *Context, p *packet.Packet) { <-l.gate }
func (l *gateLogic) GetPerflow(state.Class, packet.FieldMatch, func(packet.FlowKey, func(func()) ([]byte, error)) error) error {
	return nil
}
func (l *gateLogic) PutPerflow(state.Class, state.Chunk) error              { return nil }
func (l *gateLogic) DelPerflow(state.Class, packet.FieldMatch) (int, error) { return 0, nil }
func (l *gateLogic) GetShared(state.Class, func()) ([]byte, error)          { return nil, ErrNoSharedState }
func (l *gateLogic) PutShared(state.Class, []byte) error                    { return nil }
func (l *gateLogic) Stats(packet.FieldMatch) sbi.StatsReply                 { return sbi.StatsReply{} }
func (l *gateLogic) Config() *state.ConfigTree                              { return l.cfg }

func ringPacket(i int) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, 0, byte(i)}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: uint16(1024 + i),
		DstPort: 80,
	}
}

// TestRingStatsSnapshot pins the single-observer arithmetic: with the
// worker wedged on one packet, a filled ring plus K overflow pushes must
// appear in ONE snapshot as exactly {Live: capacity, Dropped: K}.
func TestRingStatsSnapshot(t *testing.T) {
	const q = 8
	logic := newGateLogic()
	rt := New("ringstats", logic, Options{QueueSize: q})
	defer rt.Close()

	// Wedge the worker, then wait until it has popped the first packet so
	// ring occupancy is deterministic.
	rt.HandlePacket(ringPacket(0))
	deadline := time.Now().Add(2 * time.Second)
	for rt.RingStats().Live != 0 || rt.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the wedge packet")
		}
		time.Sleep(100 * time.Microsecond)
	}

	for i := 0; i < q; i++ { // fill
		rt.HandlePacket(ringPacket(1 + i))
	}
	const overflow = 5
	for i := 0; i < overflow; i++ { // shed
		rt.HandlePacket(ringPacket(100 + i))
	}

	rs := rt.RingStats()
	if rs.Live != q || rs.Capacity != q || rs.Replay != 0 {
		t.Fatalf("ring = %+v, want live %d of %d", rs, q, q)
	}
	if rs.DroppedPackets != overflow || rs.DroppedReplays != 0 {
		t.Fatalf("drops = %d/%d, want %d/0", rs.DroppedPackets, rs.DroppedReplays, overflow)
	}
	if m := rt.Metrics(); m.DroppedPackets != rs.DroppedPackets {
		t.Fatalf("Metrics drops %d != RingStats drops %d", m.DroppedPackets, rs.DroppedPackets)
	}

	close(logic.gate)
	if !rt.Drain(5 * time.Second) {
		t.Fatal("runtime did not drain")
	}
	rs = rt.RingStats()
	if rs.Live != 0 || rs.Replay != 0 {
		t.Fatalf("post-drain ring = %+v, want empty", rs)
	}
	if rs.DroppedPackets != overflow {
		t.Fatalf("post-drain drops = %d, want %d (cumulative)", rs.DroppedPackets, overflow)
	}
}

// TestRingStatsNoTornSheds is the concurrent tear regression. With the
// worker wedged, pops never happen, so a drop can occur only when the ring
// is full — and once it fills it stays full. Any snapshot pairing
// DroppedPackets > 0 with Live < Capacity is therefore torn: its depth was
// read before sheds the drop counters already include. The double-read
// stabilization in RingStats makes that pairing impossible; a sampler racing
// the producers must never observe it.
func TestRingStatsNoTornSheds(t *testing.T) {
	const q = 16
	logic := newGateLogic()
	rt := New("ringstats-torn", logic, Options{QueueSize: q})

	// Wedge the worker on a first packet BEFORE the producers start, so its
	// one batch pop (of exactly that packet) is already behind us — from
	// here on nothing ever leaves the ring and the invariant is exact.
	rt.HandlePacket(ringPacket(0))
	deadline := time.Now().Add(2 * time.Second)
	for rt.RingStats().Live != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the wedge packet")
		}
		time.Sleep(100 * time.Microsecond)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				rt.HandlePacket(ringPacket(w*50 + i%50))
				i++
			}
		}(w)
	}

	var prevDrops uint64
	for n := 0; n < 20000; n++ {
		rs := rt.RingStats()
		if rs.Live < 0 || rs.Live > rs.Capacity || rs.Replay != 0 {
			t.Errorf("snapshot %d: impossible depth %+v", n, rs)
			break
		}
		if rs.DroppedPackets < prevDrops {
			t.Errorf("snapshot %d: drops went backwards (%d -> %d)", n, prevDrops, rs.DroppedPackets)
			break
		}
		prevDrops = rs.DroppedPackets
		// The pinned invariant: sheds imply a full ring in the SAME
		// snapshot. The worker was wedged before any producer started, so
		// nothing ever pops: once the ring fills it stays full, and a drop
		// can only ever be counted against a full ring.
		if rs.DroppedPackets > 0 && rs.Live != rs.Capacity {
			t.Errorf("snapshot %d: torn read — %d drops paired with depth %d/%d",
				n, rs.DroppedPackets, rs.Live, rs.Capacity)
			break
		}
	}
	close(stop)
	wg.Wait()
	close(logic.gate)
	rt.Close()
}
