// Package mbox is the middlebox runtime shared by every OpenMB-enabled
// middlebox. It implements the mechanics of the southbound API (§4 of the
// paper) once, so that concrete middleboxes (internal/mbox/ips, monitor, re,
// nat, lb) only supply their packet-processing logic and state
// serialization:
//
//   - a packet loop decoupling link delivery from processing;
//   - the moved-flag registry and the three-step reprocess-event scheme of
//     §4.2.1 (process normally at the source, raise an event if moved state
//     was updated, replay at the destination with side effects suppressed);
//   - introspection events with enable/disable filters (§4.2.2);
//   - the southbound request dispatch: get/put/del for per-flow and shared
//     supporting and reporting state, config ops, stats, and event filters.
//
// The division of responsibility follows §3.2: the middlebox logic remains
// autonomous — it creates and modifies supporting and reporting state as it
// always has — while the runtime only controls where state resides and
// provides visibility into state-changing actions.
package mbox

import (
	"errors"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// ErrNoSharedState is returned by Logic.GetShared/PutShared for state
// classes the middlebox does not maintain (e.g. a monitor has no shared
// supporting state). The runtime reports it as an empty transfer and the
// controller skips that class during clone/merge, so heterogeneous state
// shapes do not fail whole operations.
var ErrNoSharedState = errors.New("mbox: middlebox has no shared state of this class")

// Logic is the contract a concrete middlebox implements. Implementations
// must be safe for concurrent calls: the packet loop invokes Process while
// the southbound loop invokes state operations. Hold locks per chunk, not
// per operation, so that a long-running get does not stall the data path
// (the paper measures at most a 2% per-packet latency increase during gets).
type Logic interface {
	// Kind returns the middlebox type name, e.g. "ips" or "monitor".
	Kind() string

	// Process handles one packet. State touches and external side effects
	// are reported through ctx; see Context.
	Process(ctx *Context, p *packet.Packet)

	// GetPerflow streams the plaintext chunks of the given class whose
	// keys match m, at the middlebox's own keying granularity. If m is
	// finer than that granularity, return an error (§4.1.2).
	//
	// For each matching chunk, call emit with the chunk's key and a
	// build function that snapshots the chunk's state. build receives a
	// mark callback and MUST invoke it while holding the lock that
	// serializes this chunk against packet processing, immediately
	// before serializing. This makes the moved-mark and the snapshot
	// atomic with respect to packets: an update that lands before the
	// snapshot is in the blob and raises no event; an update after it
	// raises a reprocess event. State is transferred exactly once —
	// atomicity requirements (ii) and (iii) of §4.2.1.
	//
	// Implementations should collect matching keys under their lock,
	// then emit each chunk with build serializing under a short
	// per-chunk lock acquisition.
	GetPerflow(class state.Class, m packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error

	// PutPerflow installs one chunk previously exported by a peer
	// instance of the same kind.
	PutPerflow(class state.Class, c state.Chunk) error

	// DelPerflow removes matching state without side effects (no log
	// entries, no alerts: the state has moved, not terminated). Returns
	// the number of chunks removed.
	DelPerflow(class state.Class, m packet.FieldMatch) (int, error)

	// GetShared exports the shared state of the given class as a single
	// chunk (§4.1.2: "all shared state must be cloned/merged"). Like
	// GetPerflow's build, implementations MUST invoke mark under the
	// lock serializing shared state against packet processing, right
	// before serializing.
	GetShared(class state.Class, mark func()) ([]byte, error)

	// PutShared installs shared state. If shared state of that class
	// already exists the middlebox must merge, using whatever semantics
	// its state requires (§4.1.2, §4.1.3) — e.g. summing counters, or
	// retaining cache entries by hit count.
	PutShared(class state.Class, blob []byte) error

	// Stats reports how much state exists for the given key (§5).
	Stats(m packet.FieldMatch) sbi.StatsReply

	// Config returns the middlebox's hierarchical configuration tree.
	Config() *state.ConfigTree
}

// BurstLogic is optionally implemented by middlebox logic that can process a
// whole ingress burst in one call, amortizing lock acquisitions, config
// parses, and per-flow map lookups across the batch. ctxs[i] is the Context
// for pkts[i] (len(ctxs) == len(pkts), all live — the runtime routes replayed
// reprocess packets through Process individually).
//
// The contract matches Process per element: the implementation must produce
// the same state updates, Touch/TouchShared calls, Emits, Logs, and raised
// events — in the same per-packet order — as len(pkts) sequential Process
// calls would. Packet references are owned by the runtime exactly as in
// Process (Emit of pkts[i] takes its own reference; the runtime releases its
// borrow after ProcessBurst returns). Emits are buffered by the Context and
// flushed downstream in one hand-off after the call, so Emit is safe — and
// intended — to call while holding the logic's own lock.
//
// Logic that does not implement BurstLogic runs unchanged: the runtime falls
// back to a per-packet Process loop (still amortizing the runtime-side costs:
// one latency clock pair and one emit hand-off per burst).
type BurstLogic interface {
	Logic
	ProcessBurst(ctxs []Context, pkts []*packet.Packet)
}
