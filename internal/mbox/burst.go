package mbox

import (
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
)

// This file is the runtime half of the burst-mode data path (OPENMB_BURST,
// default on): the vectorized worker that partitions ingress batches into
// live bursts, the per-burst scratch state contexts share, and the batched
// ingress/egress hand-offs (HandleBurst in, flushEmits out). The per-packet
// path in runtime.go is the seed-faithful ablation and stays byte-for-byte
// untouched when the switch is off.

// burstState is the scratch state one burst's contexts share: the buffered
// emits (flushed downstream in one hand-off after ProcessBurst) and a lazy
// snapshot of the introspection filters (one filtersMu acquisition and one
// clock read per burst, however many events the burst raises).
type burstState struct {
	emits  []*packet.Packet
	fsnap  []eventFilter
	fnow   time.Time
	fvalid bool
}

func (bs *burstState) reset() {
	for i := range bs.emits {
		bs.emits[i] = nil
	}
	bs.emits = bs.emits[:0]
	bs.fsnap = bs.fsnap[:0]
	bs.fvalid = false
}

// HandleBurst implements netsim.BurstEndpoint: it enqueues a whole delivery
// batch in one ring synchronization. Packets that do not fit (queue full, or
// ring closed after Close) are dropped and their borrows released, exactly as
// HandlePacket sheds them one at a time; the ring accepts a prefix in order,
// so the rejects are the trailing packets.
func (rt *Runtime) HandleBurst(ps []*packet.Packet) {
	n := len(ps)
	if n == 0 {
		return
	}
	rt.pending.Add(int64(n))
	if a := rt.tracer.Enabled(); a != nil {
		rt.handleBurstTraced(a, ps)
		return
	}
	if rejected := rt.ring.tryPushBurst(ps); rejected > 0 {
		rt.droppedPackets.Add(uint64(rejected))
		rt.pending.Add(int64(-rejected))
		for _, p := range ps[n-rejected:] {
			p.Release()
		}
	}
}

// handleBurstTraced is HandleBurst with the tracer armed: flow keys are
// captured before the push (accepted packets may be processed and recycled
// by the worker concurrently), then recorded with the ring's accept/drop
// outcome per packet.
func (rt *Runtime) handleBurstTraced(a *obs.ArmedTrace, ps []*packet.Packet) {
	n := len(ps)
	keys := make([]packet.FlowKey, n)
	for i, p := range ps {
		keys[i] = p.Flow()
	}
	rejected := rt.ring.tryPushBurst(ps)
	if rejected > 0 {
		rt.droppedPackets.Add(uint64(rejected))
		rt.pending.Add(int64(-rejected))
	}
	for i, key := range keys {
		note := ""
		if i >= n-rejected {
			note = "drop:ring-full"
		}
		a.Record(rt.name, obs.HopIngress, key, note)
	}
	for _, p := range ps[n-rejected:] {
		p.Release()
	}
}

// workerBurst is the vectorized drain loop. Each popped batch is partitioned
// in order: replayed reprocess packets keep the per-packet process path (they
// carry per-item suppression state and are rare), and every maximal run of
// live packets becomes one burst through processBurst. Partitioning preserves
// the single-threaded packet stream the per-packet worker guarantees — the
// logic still observes packets strictly in arrival order.
func (rt *Runtime) workerBurst() {
	var rctx Context
	var bs burstState
	ctxs := make([]Context, ingressBatch)
	pkts := make([]*packet.Packet, ingressBatch)
	batch := make([]ingressItem, 0, ingressBatch)
	for {
		batch = rt.ring.popBatch(batch)
		if len(batch) == 0 {
			return
		}
		i := 0
		for i < len(batch) {
			if it := batch[i]; it.replay {
				batch[i] = ingressItem{}
				i++
				select {
				case <-rt.stop:
					rt.pending.Add(-1)
					it.p.Release()
				default:
					rt.process(&rctx, it.p, true, it.shared)
				}
				continue
			}
			j := i
			for j < len(batch) && !batch[j].replay {
				pkts[j-i] = batch[j].p
				batch[j] = ingressItem{}
				j++
			}
			rt.processBurst(ctxs[:j-i], pkts[:j-i], &bs)
			i = j
		}
	}
}

// processBurst runs one run of live packets through the logic — natively via
// ProcessBurst when the logic implements BurstLogic, otherwise through a
// per-packet Process shim — then raises any reprocess events, flushes the
// buffered emits downstream in one hand-off, and releases the runtime's
// borrows. The latency clock is read once per burst (not twice per packet)
// and the mean attributed across the burst's packets, with the during-op /
// normal split decided at burst start.
func (rt *Runtime) processBurst(ctxs []Context, pkts []*packet.Packet, bs *burstState) {
	n := len(pkts)
	select {
	case <-rt.stop:
		rt.pending.Add(int64(-n))
		for i, p := range pkts {
			p.Release()
			pkts[i] = nil
		}
		return
	default:
	}
	bs.reset()
	// Parity clock (see Runtime.procSeq): odd from the first Touch of the
	// burst until every packet's reprocess event is enqueued, so a
	// mark-clearing op can wait out the burst in flight.
	rt.procSeq.Add(1)
	tr := rt.tracer.Enabled()
	if tr != nil {
		for _, p := range pkts {
			tr.Record(rt.name, obs.HopDispatch, p.Flow(), "burst")
		}
	}
	duringOp := rt.activeOps.Load() > 0
	start := time.Now()
	for i := range ctxs {
		ctxs[i] = Context{rt: rt, pkt: pkts[i], burst: bs}
	}
	if rt.burstLogic != nil {
		rt.burstLogic.ProcessBurst(ctxs, pkts)
	} else {
		for i := range ctxs {
			rt.logic.Process(&ctxs[i], pkts[i])
		}
	}
	if tr != nil {
		for i := range ctxs {
			tr.RecordEmits(rt.name, pkts[i].Flow(), ctxs[i].emitted)
		}
	}
	elapsed := time.Since(start)
	if duringOp {
		rt.latDuringOpNS.Add(int64(elapsed))
		rt.latDuringOpN.Add(int64(n))
	} else {
		rt.latNormalNS.Add(int64(elapsed))
		rt.latNormalN.Add(int64(n))
	}
	for i := range ctxs {
		rt.maybeRaiseReprocess(&ctxs[i], pkts[i])
	}
	rt.procSeq.Add(1)
	rt.flushEmits(bs)
	rt.processed.Add(uint64(n))
	rt.pending.Add(int64(-n))
	for i, p := range pkts {
		p.Release()
		pkts[i] = nil
	}
}

// flushEmits hands one burst's buffered emits downstream: through the
// SetForwardBurst sink in a single call when one is wired (the co-located
// handoff), else through the per-packet forward sink in order. Reference
// ownership transfers with the hand-off, exactly as per-packet Emit
// forwarding does.
func (rt *Runtime) flushEmits(bs *burstState) {
	if len(bs.emits) == 0 {
		return
	}
	rt.emitted.Add(uint64(len(bs.emits)))
	if a := rt.tracer.Enabled(); a != nil {
		// Before the hand-off: reference ownership transfers with it.
		for _, p := range bs.emits {
			a.Record(rt.name, obs.HopEgress, p.Flow(), "")
		}
	}
	rt.forwardMu.RLock()
	fb, fn := rt.forwardBurst, rt.forward
	rt.forwardMu.RUnlock()
	switch {
	case fb != nil:
		fb(bs.emits)
	case fn != nil:
		for _, p := range bs.emits {
			fn(p)
		}
	default:
		// No sink: counted but discarded, as in forwardPacket.
		for _, p := range bs.emits {
			p.Release()
		}
	}
}

// filterAllowsBurst is filterAllows evaluated against the burst's lazily
// captured filter snapshot: the first event of a burst pays the filtersMu
// acquisition and the expiry clock read, burst-mates reuse both. Snapshot
// staleness is bounded by one burst (tens of microseconds) — well inside the
// delivery slack filter changes already tolerate on the wire.
func (rt *Runtime) filterAllowsBurst(bs *burstState, code string, key packet.FlowKey) bool {
	if !bs.fvalid {
		rt.filtersMu.Lock()
		bs.fsnap = append(bs.fsnap[:0], rt.filters...)
		rt.filtersMu.Unlock()
		bs.fnow = time.Now()
		bs.fvalid = true
	}
	for i := len(bs.fsnap) - 1; i >= 0; i-- {
		f := bs.fsnap[i]
		if !f.expires.IsZero() && bs.fnow.After(f.expires) {
			continue
		}
		if len(f.codePrefix) <= len(code) && code[:len(f.codePrefix)] == f.codePrefix && f.match.MatchEither(key) {
			return f.enable
		}
	}
	return false
}
