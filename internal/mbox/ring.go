package mbox

import (
	"sync"

	"openmb/internal/packet"
)

// ingressItem is one queued unit of packet work: a live packet from the
// network or a replayed reprocess event (with the originating transaction's
// shared-state flag).
type ingressItem struct {
	p      *packet.Packet
	replay bool
	shared bool
}

// ingressRing is the runtime's packet queue: two fixed-capacity rings (live
// and replay) behind one mutex and one not-empty condition, replacing the
// seed's pair of buffered channels. It follows the netsim link-ring pattern:
// producers signal only on the empty->non-empty transition and the single
// worker pops whole batches per lock acquisition, so wakeups and
// synchronization amortize across packet bursts instead of costing one
// channel rendezvous per packet. Replay items are drained first — a
// reprocess event's packet is state another middlebox is waiting on.
//
// Pushes never block: like the seed's non-blocking channel sends, a full
// queue drops the packet (a loaded middlebox would too) and the caller
// keeps its borrow to release.
type ingressRing struct {
	mu       sync.Mutex
	notEmpty sync.Cond
	live     itemQueue
	replay   itemQueue
	closed   bool
}

// itemQueue is a fixed-capacity FIFO ring of ingress items.
type itemQueue struct {
	buf  []ingressItem
	head int
	n    int
}

func (q *itemQueue) push(it ingressItem) bool {
	if q.n == len(q.buf) {
		return false
	}
	q.buf[(q.head+q.n)%len(q.buf)] = it
	q.n++
	return true
}

// popInto appends up to cap(dst)-len(dst) items to dst and returns it.
func (q *itemQueue) popInto(dst []ingressItem) []ingressItem {
	for q.n > 0 && len(dst) < cap(dst) {
		dst = append(dst, q.buf[q.head])
		q.buf[q.head] = ingressItem{}
		q.head = (q.head + 1) % len(q.buf)
		q.n--
	}
	return dst
}

func newIngressRing(capacity int) *ingressRing {
	r := &ingressRing{
		live:   itemQueue{buf: make([]ingressItem, capacity)},
		replay: itemQueue{buf: make([]ingressItem, capacity)},
	}
	r.notEmpty.L = &r.mu
	return r
}

// tryPush enqueues it, reporting false when the target queue is full or the
// ring closed (the caller still owns the packet's borrow in that case).
func (r *ingressRing) tryPush(it ingressItem) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	q := &r.live
	if it.replay {
		q = &r.replay
	}
	wasEmpty := r.live.n+r.replay.n == 0
	if !q.push(it) {
		r.mu.Unlock()
		return false
	}
	r.mu.Unlock()
	if wasEmpty {
		r.notEmpty.Signal()
	}
	return true
}

// tryPushBurst enqueues live items for ps in order under a single lock
// acquisition and at most one wakeup — the burst-mode analogue of len(ps)
// tryPush calls. It returns the number of trailing packets that did NOT fit
// (queue full or ring closed); the caller still owns those borrows. Accepted
// packets keep FIFO order.
func (r *ingressRing) tryPushBurst(ps []*packet.Packet) int {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return len(ps)
	}
	wasEmpty := r.live.n+r.replay.n == 0
	accepted := 0
	for _, p := range ps {
		if !r.live.push(ingressItem{p: p}) {
			break
		}
		accepted++
	}
	r.mu.Unlock()
	if wasEmpty && accepted > 0 {
		r.notEmpty.Signal()
	}
	return len(ps) - accepted
}

// popBatch fills dst (up to its capacity) with queued items, blocking while
// the ring is empty. It returns an empty slice only when the ring is closed
// and drained; after close it keeps returning the backlog so the worker can
// dispose of every queued borrow.
func (r *ingressRing) popBatch(dst []ingressItem) []ingressItem {
	dst = dst[:0]
	r.mu.Lock()
	for r.live.n+r.replay.n == 0 && !r.closed {
		r.notEmpty.Wait()
	}
	dst = r.replay.popInto(dst)
	dst = r.live.popInto(dst)
	r.mu.Unlock()
	return dst
}

// stats returns the live and replay queue depths and the per-queue capacity
// in one consistent view (both depths under the same lock acquisition, so a
// sampler can never see a packet counted in neither or both queues
// mid-transfer).
func (r *ingressRing) stats() (live, replay, capacity int) {
	r.mu.Lock()
	live, replay, capacity = r.live.n, r.replay.n, len(r.live.buf)
	r.mu.Unlock()
	return live, replay, capacity
}

// close marks the ring closed and wakes the worker. Queued items remain for
// the worker to drain.
func (r *ingressRing) close() {
	r.mu.Lock()
	r.closed = true
	r.mu.Unlock()
	r.notEmpty.Broadcast()
}
