package ips

import (
	"encoding/json"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
	"openmb/internal/trace"
)

func tcpPkt(src, dst string, sp, dp uint16, flags uint8, payload string) *packet.Packet {
	return &packet.Packet{
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst),
		Proto: packet.ProtoTCP, SrcPort: sp, DstPort: dp,
		Flags: flags, TTL: 64, Payload: []byte(payload),
	}
}

// run processes packets through a runtime and returns it (caller closes).
func run(t *testing.T, i *IPS, pkts ...*packet.Packet) *mbox.Runtime {
	t.Helper()
	rt := mbox.New("ips1", i, mbox.Options{})
	t.Cleanup(rt.Close)
	for _, p := range pkts {
		rt.HandlePacket(p)
	}
	if !rt.Drain(5 * time.Second) {
		t.Fatal("drain timeout")
	}
	return rt
}

// handshake returns the three packets of a TCP handshake for a flow.
func handshake(src, dst string, sp, dp uint16) []*packet.Packet {
	return []*packet.Packet{
		tcpPkt(src, dst, sp, dp, packet.FlagSYN, ""),
		tcpPkt(dst, src, dp, sp, packet.FlagSYN|packet.FlagACK, ""),
		tcpPkt(src, dst, sp, dp, packet.FlagACK, ""),
	}
}

// teardown returns FIN/FIN-ACK packets closing the flow.
func teardown(src, dst string, sp, dp uint16) []*packet.Packet {
	return []*packet.Packet{
		tcpPkt(src, dst, sp, dp, packet.FlagFIN|packet.FlagACK, ""),
		tcpPkt(dst, src, dp, sp, packet.FlagFIN|packet.FlagACK, ""),
	}
}

func TestConnStateMachineCleanClose(t *testing.T) {
	i := New()
	pkts := append(handshake("10.0.0.1", "1.1.1.1", 1234, 80),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK|packet.FlagPSH, "hello"))
	pkts = append(pkts, teardown("10.0.0.1", "1.1.1.1", 1234, 80)...)
	rt := run(t, i, pkts...)
	if i.ConnCount() != 0 {
		t.Fatalf("connection not removed after close: %d", i.ConnCount())
	}
	logs := rt.Log("conn")
	if len(logs) != 1 {
		t.Fatalf("conn.log entries: %v", logs)
	}
	if !strings.Contains(logs[0], "state=SF") {
		t.Fatalf("clean close should log SF: %s", logs[0])
	}
}

func TestConnStateRejected(t *testing.T) {
	i := New()
	rt := run(t, i,
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagSYN, ""),
		tcpPkt("1.1.1.1", "10.0.0.1", 80, 1234, packet.FlagRST, ""),
	)
	logs := rt.Log("conn")
	if len(logs) != 1 || !strings.Contains(logs[0], "state=REJ") {
		t.Fatalf("rejected conn log: %v", logs)
	}
}

func TestConnStateMidstream(t *testing.T) {
	i := New()
	run(t, i, tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "data"))
	conn, ok := i.Connection(tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, 0, "").Flow())
	if !ok || conn.State != StateOTH {
		t.Fatalf("midstream conn: %+v ok=%v", conn, ok)
	}
}

func TestHTTPLogPairsRequestResponse(t *testing.T) {
	i := New()
	pkts := append(handshake("10.0.0.1", "1.1.1.1", 1234, 80),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n"),
		tcpPkt("1.1.1.1", "10.0.0.1", 80, 1234, packet.FlagACK, "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"),
	)
	rt := run(t, i, pkts...)
	httpLog := rt.Log("http")
	if len(httpLog) != 1 {
		t.Fatalf("http.log: %v", httpLog)
	}
	for _, want := range []string{"GET", "/index.html", "status=200", "host=example.com"} {
		if !strings.Contains(httpLog[0], want) {
			t.Fatalf("http.log missing %q: %s", want, httpLog[0])
		}
	}
}

func TestHTTPParserSurvivesPacketSplit(t *testing.T) {
	// A request line split across two packets must still parse — the
	// parser buffer is part of the serialized state.
	i := New()
	pkts := append(handshake("10.0.0.1", "1.1.1.1", 1234, 80),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET /split"),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, ".html HTTP/1.1\r\n"),
		tcpPkt("1.1.1.1", "10.0.0.1", 80, 1234, packet.FlagACK, "HTTP/1.1 404 Not Found\r\n"),
	)
	rt := run(t, i, pkts...)
	httpLog := rt.Log("http")
	if len(httpLog) != 1 || !strings.Contains(httpLog[0], "/split.html") || !strings.Contains(httpLog[0], "status=404") {
		t.Fatalf("split request: %v", httpLog)
	}
}

func TestSignatureAlertAndDrop(t *testing.T) {
	i := New()
	if err := i.Config().Set("rules/r1", []string{`alert tcp dport=80 content="evil" msg="evil seen"`}); err != nil {
		t.Fatal(err)
	}
	if err := i.Config().Set("rules/r2", []string{`drop tcp dport=80 content="attack" msg="blocked"`}); err != nil {
		t.Fatal(err)
	}
	var emitted int
	rt := mbox.New("ips1", i, mbox.Options{Forward: func(*packet.Packet) { emitted++ }})
	defer rt.Close()
	rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "an evil payload"))
	rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "an attack payload"))
	rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "benign"))
	rt.Drain(5 * time.Second)
	alerts, dropped, _, _ := i.Report()
	if alerts != 2 || dropped != 1 {
		t.Fatalf("alerts=%d dropped=%d", alerts, dropped)
	}
	if emitted != 2 { // the drop rule suppressed one packet
		t.Fatalf("emitted=%d, want 2", emitted)
	}
	if lines := rt.Log("alert"); len(lines) != 2 {
		t.Fatalf("alert log: %v", lines)
	}
}

func TestSignatureRecompileOnConfigChange(t *testing.T) {
	i := New()
	rt := run(t, i, tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "evil"))
	if a, _, _, _ := i.Report(); a != 0 {
		t.Fatal("alert before rule installed")
	}
	i.Config().Set("rules/r1", []string{`alert tcp content="evil" msg="m"`})
	rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "evil"))
	rt.Drain(5 * time.Second)
	if a, _, _, _ := i.Report(); a != 1 {
		t.Fatalf("rule not recompiled: alerts=%d", a)
	}
}

func TestParseSignatureErrors(t *testing.T) {
	bad := []string{
		"",
		"alert",
		`bogus tcp content="x"`,
		`alert xyz content="x"`,
		`alert tcp dport=notaport content="x"`,
		`alert tcp msg="no content"`,
		`alert tcp badopt=1 content="x"`,
	}
	for _, rule := range bad {
		if _, err := parseSignature("r", rule); err == nil {
			t.Errorf("%q: expected error", rule)
		}
	}
	sig, err := parseSignature("r", `drop udp dport=53 content="x" msg="m"`)
	if err != nil || sig.action != "drop" || sig.proto != 17 || sig.dport != 53 {
		t.Fatalf("good rule: %+v err=%v", sig, err)
	}
}

func TestScanDetection(t *testing.T) {
	i := New()
	i.Config().Set("scan/port_threshold", []string{"5"})
	var pkts []*packet.Packet
	for port := uint16(1); port <= 6; port++ {
		pkts = append(pkts, tcpPkt("10.9.9.9", "1.1.1.1", 40000+port, port, packet.FlagSYN, ""))
	}
	rt := run(t, i, pkts...)
	_, _, _, scans := i.Report()
	if scans != 1 {
		t.Fatalf("scan alerts: %d", scans)
	}
	found := false
	for _, l := range rt.Log("alert") {
		if strings.Contains(l, "scan src=10.9.9.9") {
			found = true
		}
	}
	if !found {
		t.Fatalf("scan alert not logged: %v", rt.Log("alert"))
	}
	// Only once.
	rt.HandlePacket(tcpPkt("10.9.9.9", "1.1.1.1", 40010, 99, packet.FlagSYN, ""))
	rt.Drain(5 * time.Second)
	if _, _, _, scans := i.Report(); scans != 1 {
		t.Fatalf("scan alert duplicated: %d", scans)
	}
}

func TestScanTrackerMergeUnion(t *testing.T) {
	a, b := newScanTracker(10), newScanTracker(10)
	src := netip.MustParseAddr("10.9.9.9")
	dst := netip.MustParseAddr("1.1.1.1")
	for port := uint16(1); port <= 6; port++ {
		a.observe(src, dst, port)
	}
	for port := uint16(4); port <= 9; port++ {
		b.observe(src, dst, port)
	}
	blob, err := a.marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := b.mergeFrom(blob); err != nil {
		t.Fatal(err)
	}
	rec := b.Sources[src.String()]
	if len(rec.Ports) != 9 {
		t.Fatalf("merged ports: %d, want 9 (union)", len(rec.Ports))
	}
}

func TestScanMergeCrossesThreshold(t *testing.T) {
	// Neither instance saw enough ports alone; the merged tracker has.
	// A subsequent packet at the merged instance must fire the alert —
	// the cross-MB behaviour Split/Merge cannot provide (§2.1).
	a, b := New(), New()
	a.Config().Set("scan/port_threshold", []string{"8"})
	b.Config().Set("scan/port_threshold", []string{"8"})
	var aPkts, bPkts []*packet.Packet
	for port := uint16(1); port <= 4; port++ {
		aPkts = append(aPkts, tcpPkt("10.9.9.9", "1.1.1.1", 40000+port, port, packet.FlagSYN, ""))
	}
	for port := uint16(5); port <= 7; port++ {
		bPkts = append(bPkts, tcpPkt("10.9.9.9", "1.1.1.1", 40000+port, port, packet.FlagSYN, ""))
	}
	run(t, a, aPkts...)
	rtB := run(t, b, bPkts...)
	blob, _ := a.GetShared(state.Supporting, func() {})
	if err := b.PutShared(state.Supporting, blob); err != nil {
		t.Fatal(err)
	}
	rtB.HandlePacket(tcpPkt("10.9.9.9", "1.1.1.1", 41000, 99, packet.FlagSYN, ""))
	rtB.Drain(5 * time.Second)
	if _, _, _, scans := b.Report(); scans != 1 {
		t.Fatalf("merged scan state did not trigger alert: %d", scans)
	}
}

func TestGetPutMovesAnalyzerTree(t *testing.T) {
	src := New()
	pkts := append(handshake("10.0.0.1", "1.1.1.1", 1234, 80),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET /page HTTP/1.1\r\n"))
	run(t, src, pkts...)

	dst := New()
	moved := 0
	err := src.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		moved++
		return dst.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil || moved != 1 {
		t.Fatalf("get: moved=%d err=%v", moved, err)
	}
	src.DelPerflow(state.Supporting, packet.MatchAll)

	// The destination continues the flow: the response completes the
	// HTTP transaction parsed from state moved mid-request.
	rtDst := mbox.New("dst", dst, mbox.Options{})
	defer rtDst.Close()
	rtDst.HandlePacket(tcpPkt("1.1.1.1", "10.0.0.1", 80, 1234, packet.FlagACK, "HTTP/1.1 200 OK\r\n"))
	rtDst.Drain(5 * time.Second)
	httpLog := rtDst.Log("http")
	if len(httpLog) != 1 || !strings.Contains(httpLog[0], "/page") || !strings.Contains(httpLog[0], "status=200") {
		t.Fatalf("moved analyzer tree lost request state: %v", httpLog)
	}
}

func TestMovedFlagNoLogOnDelete(t *testing.T) {
	i := New()
	rt := run(t, i, handshake("10.0.0.1", "1.1.1.1", 1234, 80)...)
	n, err := i.DelPerflow(state.Supporting, packet.MatchAll)
	if err != nil || n != 1 {
		t.Fatalf("del: %d %v", n, err)
	}
	if logs := rt.Log("conn"); len(logs) != 0 {
		t.Fatalf("delete after move must not log: %v", logs)
	}
}

func TestSweepIdleLogsAbruptTerminations(t *testing.T) {
	i := New()
	p := handshake("10.0.0.1", "1.1.1.1", 1234, 80)
	for idx, pk := range p {
		pk.Timestamp = int64(idx)
	}
	run(t, i, p...)
	lines := i.SweepIdle(1000, nil)
	if len(lines) != 1 || !strings.Contains(lines[0], "state=S1") {
		t.Fatalf("sweep: %v", lines)
	}
	if i.ConnCount() != 0 {
		t.Fatal("sweep did not remove connection")
	}
}

func TestConnJSONRoundTripProperty(t *testing.T) {
	f := func(op, rp, ob, rb uint64, sigMatches uint64, established bool) bool {
		conn := &Conn{
			Key:   tcpPkt("10.0.0.1", "1.1.1.1", 99, 80, 0, "").Flow(),
			Proto: packet.ProtoTCP, State: StateS1,
			Orig: EndpointStats{Packets: op, Bytes: ob},
			Resp: EndpointStats{Packets: rp, Bytes: rb},
			HTTP: &HTTPAnalyzer{
				ReqBuf:  []byte("GET /partial"),
				Pending: []HTTPRequest{{Method: "GET", URI: "/a"}},
			},
			SigMatches: sigMatches, Established: established,
			History: "ShAdD",
		}
		conn.KeyS = conn.Key.String()
		blob, err := jsonMarshal(conn)
		if err != nil {
			return false
		}
		var got Conn
		if err := jsonUnmarshal(blob, &got); err != nil {
			return false
		}
		return got.Orig == conn.Orig && got.Resp == conn.Resp &&
			got.SigMatches == conn.SigMatches && got.Established == conn.Established &&
			got.History == conn.History &&
			got.HTTP != nil && string(got.HTTP.ReqBuf) == "GET /partial" &&
			len(got.HTTP.Pending) == 1 && got.HTTP.Pending[0].URI == "/a"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPutMergesWithLocallyStartedFlow(t *testing.T) {
	// The flow also started at the destination (packets raced the move):
	// counters must sum, not reset.
	dst := New()
	run(t, dst, tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "xx"))
	incoming := newConn(tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, 0, "").Flow(), 0)
	incoming.Orig.Packets = 5
	incoming.Orig.Bytes = 50
	incoming.KeyS = incoming.Key.String()
	blob, _ := jsonMarshal(incoming)
	if err := dst.PutPerflow(state.Supporting, state.Chunk{Key: incoming.Key.Canonical(), Blob: blob}); err != nil {
		t.Fatal(err)
	}
	conn, ok := dst.Connection(incoming.Key)
	if !ok || conn.Orig.Packets != 6 || conn.Orig.Bytes != 52 {
		t.Fatalf("merge: %+v ok=%v", conn.Orig, ok)
	}
}

func TestCorrectnessUnmodifiedVsMoved(t *testing.T) {
	// §8.2: the output of an unmodified IPS and of a pair of
	// OpenMB-enabled IPSes with a mid-trace move must be identical.
	tr := trace.Cloud(trace.CloudConfig{Seed: 42, Flows: 40})

	// Reference: single IPS sees everything.
	ref := New()
	rtRef := mbox.New("ref", ref, mbox.Options{})
	defer rtRef.Close()
	for _, p := range tr.Packets {
		rtRef.HandlePacket(p)
	}
	rtRef.Drain(10 * time.Second)
	refLogs := append(rtRef.Log("conn"), ref.FlushAll(nil)...)

	// Split run: first half at A, state moved, second half at B.
	a, b := New(), New()
	rtA := mbox.New("a", a, mbox.Options{})
	rtB := mbox.New("b", b, mbox.Options{})
	defer rtA.Close()
	defer rtB.Close()
	half := len(tr.Packets) / 2
	for _, p := range tr.Packets[:half] {
		rtA.HandlePacket(p)
	}
	rtA.Drain(10 * time.Second)
	err := a.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		return b.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil {
		t.Fatal(err)
	}
	a.DelPerflow(state.Supporting, packet.MatchAll)
	for _, p := range tr.Packets[half:] {
		rtB.HandlePacket(p)
	}
	rtB.Drain(10 * time.Second)
	splitLogs := append(rtA.Log("conn"), rtB.Log("conn")...)
	splitLogs = append(splitLogs, b.FlushAll(nil)...)

	if len(refLogs) != len(splitLogs) {
		t.Fatalf("conn.log entry counts differ: ref=%d split=%d", len(refLogs), len(splitLogs))
	}
	refSet := map[string]int{}
	for _, l := range refLogs {
		refSet[l]++
	}
	for _, l := range splitLogs {
		refSet[l]--
		if refSet[l] < 0 {
			t.Fatalf("split run produced entry absent from reference: %s", l)
		}
	}
}

func BenchmarkProcessHTTP(b *testing.B) {
	i := New()
	ctx := mbox.NewBenchContext()
	p := tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET /x HTTP/1.1\r\n")
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		i.Process(ctx, p)
	}
}

func BenchmarkSerializeConn(b *testing.B) {
	i := New()
	run := mbox.New("b", i, mbox.Options{})
	defer run.Close()
	pkts := append(handshake("10.0.0.1", "1.1.1.1", 1234, 80),
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET /page HTTP/1.1\r\nHost: h\r\n"))
	for _, p := range pkts {
		run.HandlePacket(p)
	}
	run.Drain(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		err := i.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
			_, err := build(func() {})
			return err
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// jsonMarshal/jsonUnmarshal alias encoding/json for test readability.
func jsonMarshal(v interface{}) ([]byte, error)   { return json.Marshal(v) }
func jsonUnmarshal(b []byte, v interface{}) error { return json.Unmarshal(b, v) }

func TestUDPAndICMPConnections(t *testing.T) {
	i := New()
	udp := &packet.Packet{
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("1.1.1.1"),
		Proto: packet.ProtoUDP, SrcPort: 5353, DstPort: 53, Payload: []byte("query"),
	}
	udpResp := &packet.Packet{
		SrcIP: netip.MustParseAddr("1.1.1.1"), DstIP: netip.MustParseAddr("10.0.0.1"),
		Proto: packet.ProtoUDP, SrcPort: 53, DstPort: 5353, Payload: []byte("answer"),
	}
	icmp := &packet.Packet{
		SrcIP: netip.MustParseAddr("10.0.0.2"), DstIP: netip.MustParseAddr("1.1.1.1"),
		Proto: packet.ProtoICMP, Payload: []byte("ping"),
	}
	run(t, i, udp, udpResp, icmp)
	if i.ConnCount() != 2 {
		t.Fatalf("connections: %d", i.ConnCount())
	}
	conn, ok := i.Connection(udp.Flow())
	if !ok || conn.State != StateSF {
		t.Fatalf("udp conn after both directions: %+v ok=%v", conn.State, ok)
	}
	conn, ok = i.Connection(icmp.Flow())
	if !ok || conn.State != StateS0 {
		t.Fatalf("one-way icmp conn: %+v ok=%v", conn.State, ok)
	}
	// UDP/ICMP state moves like TCP state.
	dst := New()
	moved := 0
	err := i.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		moved++
		return dst.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil || moved != 2 {
		t.Fatalf("moved=%d err=%v", moved, err)
	}
	if dst.ConnCount() != 2 {
		t.Fatalf("dst connections: %d", dst.ConnCount())
	}
}

func TestHistoryBounded(t *testing.T) {
	i := New()
	rt := mbox.New("b", i, mbox.Options{})
	defer rt.Close()
	for n := 0; n < 200; n++ {
		rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, packet.FlagACK, "d"))
	}
	rt.Drain(10 * time.Second)
	conn, _ := i.Connection(tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "").Flow())
	if len(conn.History) > 64 {
		t.Fatalf("history unbounded: %d", len(conn.History))
	}
}

func TestPutGarbageBlob(t *testing.T) {
	i := New()
	if err := i.PutPerflow(state.Supporting, state.Chunk{Blob: []byte("not json")}); err == nil {
		t.Fatal("garbage blob accepted")
	}
	if err := i.PutPerflow(state.Supporting, state.Chunk{Blob: []byte(`{"key":"garbage"}`)}); err == nil {
		t.Fatal("bad key accepted")
	}
	if err := i.PutShared(state.Supporting, []byte("not json")); err == nil {
		t.Fatal("garbage shared blob accepted")
	}
}
