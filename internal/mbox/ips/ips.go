package ips

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Kind is the middlebox type name.
const Kind = "ips"

var _ mbox.BurstLogic = (*IPS)(nil)

// IPS is the middlebox logic. It implements mbox.Logic.
type IPS struct {
	mu sync.Mutex
	// tables holds connections per transport protocol, as Bro stores
	// Connection objects in one of three hash tables (§7).
	tables map[uint8]map[packet.FlowKey]*Conn
	// index spans all three tables so prefix-constrained gets avoid the
	// full linear scan (state.FlowIndex; footnote 6 of the paper).
	index  *state.FlowIndex
	scans  *scanTracker
	report reportCounters
	sigs   []*signature
	config *state.ConfigTree
	// sigsDirty is set by the config watcher; rules recompile lazily on
	// the next packet.
	sigsDirty bool
}

// reportCounters is the IPS's shared reporting state.
type reportCounters struct {
	Alerts      uint64 `json:"alerts"`
	Dropped     uint64 `json:"dropped"`
	ConnsLogged uint64 `json:"connsLogged"`
	ScanAlerts  uint64 `json:"scanAlerts"`
}

// New returns an IPS with default configuration: scan threshold 10, no
// signature rules.
func New() *IPS {
	ips := &IPS{
		tables: map[uint8]map[packet.FlowKey]*Conn{
			packet.ProtoTCP:  {},
			packet.ProtoUDP:  {},
			packet.ProtoICMP: {},
		},
		index:  state.NewFlowIndex(),
		config: state.NewConfigTree(),
	}
	if err := ips.config.Set("scan/port_threshold", []string{"10"}); err != nil {
		panic("ips: default config: " + err.Error())
	}
	ips.scans = newScanTracker(10)
	ips.config.Watch(func(path string) {
		ips.mu.Lock()
		ips.sigsDirty = true
		ips.mu.Unlock()
	})
	ips.recompileLocked()
	return ips
}

// Kind implements mbox.Logic.
func (i *IPS) Kind() string { return Kind }

// recompileLocked re-reads rules and tuning from the config tree. Callers
// hold i.mu (or are the constructor).
func (i *IPS) recompileLocked() {
	i.sigsDirty = false
	i.sigs = i.sigs[:0]
	entries, err := i.config.Export("rules")
	if err == nil {
		for _, e := range entries {
			for _, rule := range e.Values {
				sig, err := parseSignature(e.Path, rule)
				if err != nil {
					continue // malformed rules are skipped, not fatal
				}
				i.sigs = append(i.sigs, sig)
			}
		}
		sort.Slice(i.sigs, func(a, b int) bool { return i.sigs[a].name < i.sigs[b].name })
	}
	if v, err := i.config.Get("scan/port_threshold"); err == nil && len(v) == 1 {
		var thr int
		if _, err := fmt.Sscanf(v[0], "%d", &thr); err == nil && thr > 0 {
			i.scans.PortThreshold = thr
		}
	}
}

func (i *IPS) table(proto uint8) map[packet.FlowKey]*Conn {
	t, ok := i.tables[proto]
	if !ok {
		t = map[packet.FlowKey]*Conn{}
		i.tables[proto] = t
	}
	return t
}

// Process implements mbox.Logic: the Bro packet path. It updates the
// connection and its analyzer tree, evaluates signatures, feeds the scan
// detector, and forwards the packet unless a drop rule fired.
func (i *IPS) Process(ctx *mbox.Context, p *packet.Packet) {
	key := p.Flow().Canonical()
	i.mu.Lock()
	if i.sigsDirty {
		i.recompileLocked()
	}
	logLines, httpLines, drop, terminated := i.processLocked(ctx, p, key)
	i.mu.Unlock()

	for _, line := range httpLines {
		ctx.Log("http", line)
	}
	for _, line := range logLines {
		if strings.HasPrefix(line, "sig ") || strings.HasPrefix(line, "scan ") {
			ctx.Log("alert", line)
		} else {
			ctx.Log("conn", line)
		}
	}
	if terminated {
		ctx.RaiseIntrospection("ips.conn.closed", key, nil)
	}
	if !drop {
		ctx.Emit(p)
	}
}

// ipsEffect records one packet's out-of-lock side effects from a burst: log
// lines and the termination raise must run outside i.mu, so ProcessBurst
// collects them and replays after the lock in packet order. The steady state
// (no alerts, no terminations) appends nothing.
type ipsEffect struct {
	idx        int
	key        packet.FlowKey
	logLines   []string
	httpLines  []string
	terminated bool
}

// ProcessBurst implements mbox.BurstLogic: one mutex acquisition and at most
// one signature recompilation cover the whole burst; the per-packet analyzer
// path is processLocked, byte-identical to Process's. Emits are buffered by
// the burst context, so they are appended in-loop under the lock in packet
// order.
func (i *IPS) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	var effects []ipsEffect
	i.mu.Lock()
	if i.sigsDirty {
		i.recompileLocked()
	}
	for idx, p := range pkts {
		ctx := &ctxs[idx]
		key := p.Flow().Canonical()
		logLines, httpLines, drop, terminated := i.processLocked(ctx, p, key)
		if !drop {
			ctx.Emit(p)
		}
		if len(logLines) > 0 || len(httpLines) > 0 || terminated {
			effects = append(effects, ipsEffect{idx: idx, key: key, logLines: logLines, httpLines: httpLines, terminated: terminated})
		}
	}
	i.mu.Unlock()
	for _, e := range effects {
		ctx := &ctxs[e.idx]
		for _, line := range e.httpLines {
			ctx.Log("http", line)
		}
		for _, line := range e.logLines {
			if strings.HasPrefix(line, "sig ") || strings.HasPrefix(line, "scan ") {
				ctx.Log("alert", line)
			} else {
				ctx.Log("conn", line)
			}
		}
		if e.terminated {
			ctx.RaiseIntrospection("ips.conn.closed", e.key, nil)
		}
	}
}

// processLocked is the per-packet Bro path shared by Process and
// ProcessBurst. Caller holds i.mu and has already handled lazy signature
// recompilation. Log lines and the termination flag are returned for the
// caller to act on outside the lock.
func (i *IPS) processLocked(ctx *mbox.Context, p *packet.Packet, key packet.FlowKey) (logLines, httpLines []string, drop, terminated bool) {
	if !ctx.SkipPerflow() {
		tbl := i.table(p.Proto)
		conn, ok := tbl[key]
		if !ok {
			conn = newConn(p.Flow(), p.Timestamp)
			tbl[key] = conn
			i.index.Insert(key)
			// A new flow opening feeds the scan detector (shared
			// supporting state).
			if p.Proto == packet.ProtoTCP && p.Flags&packet.FlagSYN != 0 && p.Flags&packet.FlagACK == 0 && !ctx.SkipShared() {
				if i.scans.observe(p.SrcIP, p.DstIP, p.DstPort) {
					i.report.ScanAlerts++
					logLines = append(logLines, fmt.Sprintf("scan src=%s distinct_ports>=%d", p.SrcIP, i.scans.PortThreshold))
				}
				ctx.TouchShared(state.Supporting)
				ctx.TouchShared(state.Reporting)
			}
		}
		fromOrig := p.Flow() == conn.Key
		terminated = conn.update(p, fromOrig)

		// Signature evaluation.
		for _, sig := range i.sigs {
			if sig.match(p.Proto, p.DstPort, p.Payload) {
				conn.SigMatches++
				if !ctx.SkipShared() {
					i.report.Alerts++
					ctx.TouchShared(state.Reporting)
				}
				logLines = append(logLines, fmt.Sprintf("sig rule=%s msg=%q flow=%s", sig.name, sig.msg, conn.Key))
				if sig.action == "drop" {
					drop = true
					if !ctx.SkipShared() {
						i.report.Dropped++
					}
				}
			}
		}

		// HTTP analyzer: attach on port-80 TCP traffic.
		if p.Proto == packet.ProtoTCP && (conn.Key.DstPort == 80 || conn.Key.SrcPort == 80) {
			if conn.HTTP == nil {
				conn.HTTP = &HTTPAnalyzer{}
			}
			if len(p.Payload) > 0 {
				toServer := fromOrig == (conn.Key.DstPort == 80)
				if toServer {
					conn.HTTP.feedOrig(p.Payload)
				} else {
					for _, e := range conn.HTTP.feedResp(p.Payload) {
						httpLines = append(httpLines, fmt.Sprintf("%s %s %s status=%d host=%s",
							conn.Key, e.Req.Method, e.Req.URI, e.Status, e.Req.Host))
					}
				}
			}
		}

		ctx.Touch(state.Supporting, key)
		if terminated {
			logLines = append(logLines, conn.logLine())
			delete(tbl, key)
			i.index.Remove(key)
			if !ctx.SkipShared() {
				i.report.ConnsLogged++
				ctx.TouchShared(state.Reporting)
			}
		}
	} else if p.Proto == packet.ProtoTCP && p.Flags&packet.FlagSYN != 0 && p.Flags&packet.FlagACK == 0 {
		// Shared-transaction replay: only the scan detector (shared
		// supporting state) updates; set semantics make repeated
		// observations idempotent.
		if i.scans.observe(p.SrcIP, p.DstIP, p.DstPort) {
			i.report.ScanAlerts++
		}
		ctx.TouchShared(state.Supporting)
	}
	return logLines, httpLines, drop, terminated
}

// SweepIdle logs and removes connections idle since before cutoff (trace
// timestamp). Abrupt terminations keep their in-progress state (S0/S1/OTH),
// which is how the snapshot experiment's "incorrect entries" manifest: a
// migrated flow that terminates abruptly at the wrong instance logs a
// non-SF entry. Returns the log lines emitted.
func (i *IPS) SweepIdle(cutoff int64, log func(stream, line string)) []string {
	i.mu.Lock()
	var lines []string
	for _, tbl := range i.tables {
		for k, conn := range tbl {
			if conn.Last < cutoff {
				lines = append(lines, conn.logLine())
				delete(tbl, k)
				i.index.Remove(k)
				i.report.ConnsLogged++
			}
		}
	}
	i.mu.Unlock()
	sort.Strings(lines)
	if log != nil {
		for _, l := range lines {
			log("conn", l)
		}
	}
	return lines
}

// FlushAll logs and removes every live connection (Bro's exit-time flush),
// in deterministic order. Returns the log lines.
func (i *IPS) FlushAll(log func(stream, line string)) []string {
	return i.SweepIdle(int64(^uint64(0)>>1), log)
}

// GetPerflow implements mbox.Logic: collect the matching keys — via the
// flow index for prefix-constrained matches, else a linear scan over the
// connection tables — then serialize each matching connection's full
// analyzer tree under a short lock (the per-Connection mutex of §7).
func (i *IPS) GetPerflow(class state.Class, match packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	if class != state.Supporting {
		return nil // Bro's movable per-flow state is supporting state
	}
	i.mu.Lock()
	keys, ok := i.index.Lookup(match)
	if !ok {
		for _, tbl := range i.tables {
			for k := range tbl {
				if match.MatchEither(k) {
					keys = append(keys, k)
				}
			}
		}
	}
	i.mu.Unlock()
	packet.SortKeys(keys)
	for _, k := range keys {
		key := k
		err := emit(key, func(mark func()) ([]byte, error) {
			i.mu.Lock()
			defer i.mu.Unlock()
			mark()
			conn, ok := i.table(key.Proto)[key]
			if !ok {
				conn = newConn(key, 0)
				conn.State = StateMOVED
			}
			conn.KeyS = conn.Key.String()
			return json.Marshal(conn)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PutPerflow implements mbox.Logic: install a connection moved from a peer.
// If the flow already exists here (it started while the move was in flight),
// the peer's record is authoritative for structure; endpoint counters sum.
func (i *IPS) PutPerflow(class state.Class, c state.Chunk) error {
	if class != state.Supporting {
		return fmt.Errorf("ips: no per-flow %v state", class)
	}
	var conn Conn
	if err := json.Unmarshal(c.Blob, &conn); err != nil {
		return fmt.Errorf("ips: decode connection: %w", err)
	}
	key, err := packet.ParseFlowKey(conn.KeyS)
	if err != nil {
		return fmt.Errorf("ips: decode connection key: %w", err)
	}
	conn.Key = key
	canon := key.Canonical()
	i.mu.Lock()
	defer i.mu.Unlock()
	tbl := i.table(canon.Proto)
	if existing, ok := tbl[canon]; ok {
		conn.Orig.Packets += existing.Orig.Packets
		conn.Orig.Bytes += existing.Orig.Bytes
		conn.Resp.Packets += existing.Resp.Packets
		conn.Resp.Bytes += existing.Resp.Bytes
		if existing.Start < conn.Start {
			conn.Start = existing.Start
		}
		if existing.Last > conn.Last {
			conn.Last = existing.Last
		}
		conn.SigMatches += existing.SigMatches
	}
	tbl[canon] = &conn
	i.index.Insert(canon)
	return nil
}

// DelPerflow implements mbox.Logic: silent removal — no conn.log entries
// (the moved flag of §7).
func (i *IPS) DelPerflow(class state.Class, match packet.FieldMatch) (int, error) {
	if class != state.Supporting {
		return 0, nil
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, tbl := range i.tables {
		for k := range tbl {
			if match.MatchEither(k) {
				delete(tbl, k)
				i.index.Remove(k)
				n++
			}
		}
	}
	return n, nil
}

// GetShared implements mbox.Logic: the scan tracker (supporting) or the
// alert counters (reporting).
func (i *IPS) GetShared(class state.Class, mark func()) ([]byte, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	mark()
	switch class {
	case state.Supporting:
		return i.scans.marshal()
	case state.Reporting:
		return json.Marshal(i.report)
	}
	return nil, fmt.Errorf("ips: no shared %v state", class)
}

// PutShared implements mbox.Logic with MB-specific merge semantics: scan
// records union; report counters sum.
func (i *IPS) PutShared(class state.Class, blob []byte) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	switch class {
	case state.Supporting:
		return i.scans.mergeFrom(blob)
	case state.Reporting:
		var other reportCounters
		if err := json.Unmarshal(blob, &other); err != nil {
			return err
		}
		i.report.Alerts += other.Alerts
		i.report.Dropped += other.Dropped
		i.report.ConnsLogged += other.ConnsLogged
		i.report.ScanAlerts += other.ScanAlerts
		return nil
	}
	return fmt.Errorf("ips: no shared %v state", class)
}

// Stats implements mbox.Logic.
func (i *IPS) Stats(match packet.FieldMatch) sbi.StatsReply {
	i.mu.Lock()
	defer i.mu.Unlock()
	var s sbi.StatsReply
	for _, tbl := range i.tables {
		for k, conn := range tbl {
			if match.MatchEither(k) {
				s.SupportPerflowChunks++
				if b, err := json.Marshal(conn); err == nil {
					s.SupportPerflowBytes += len(b)
				}
			}
		}
	}
	if b, err := i.scans.marshal(); err == nil {
		s.SupportSharedBytes = len(b)
	}
	if b, err := json.Marshal(i.report); err == nil {
		s.ReportSharedBytes = len(b)
	}
	return s
}

// Config implements mbox.Logic.
func (i *IPS) Config() *state.ConfigTree { return i.config }

// ConnCount returns the number of live connections.
func (i *IPS) ConnCount() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := 0
	for _, tbl := range i.tables {
		n += len(tbl)
	}
	return n
}

// Connection returns a copy of the live connection for key, if present.
func (i *IPS) Connection(key packet.FlowKey) (Conn, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	conn, ok := i.table(key.Canonical().Proto)[key.Canonical()]
	if !ok {
		return Conn{}, false
	}
	cp := *conn
	return cp, true
}

// Report returns a copy of the shared reporting counters.
func (i *IPS) Report() (alerts, dropped, connsLogged, scanAlerts uint64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.report.Alerts, i.report.Dropped, i.report.ConnsLogged, i.report.ScanAlerts
}

// ScanSources returns the tracked scan sources, for tests.
func (i *IPS) ScanSources() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.scans.sortedSources()
}
