package ips

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// signature is one compiled content-matching rule. Rules live in the
// configuration tree under "rules/<name>" with a Snort-ish syntax:
//
//	alert tcp dport=80 content="evil" msg="evil payload"
//	drop  tcp dport=80 content="attack" msg="blocked"
//
// The controller creates and updates them (configuration state is
// controller-owned, §3.2); the IPS only reads them on the packet path.
type signature struct {
	name    string
	action  string // "alert" or "drop"
	proto   uint8  // 0 = any
	dport   uint16 // 0 = any
	content []byte
	msg     string
}

// parseSignature compiles one rule string.
func parseSignature(name, rule string) (*signature, error) {
	sig := &signature{name: name}
	fields := tokenizeRule(rule)
	if len(fields) < 2 {
		return nil, fmt.Errorf("ips: rule %q: too few fields", name)
	}
	switch fields[0] {
	case "alert", "drop":
		sig.action = fields[0]
	default:
		return nil, fmt.Errorf("ips: rule %q: unknown action %q", name, fields[0])
	}
	switch fields[1] {
	case "tcp":
		sig.proto = 6
	case "udp":
		sig.proto = 17
	case "any":
		sig.proto = 0
	default:
		return nil, fmt.Errorf("ips: rule %q: unknown proto %q", name, fields[1])
	}
	for _, f := range fields[2:] {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("ips: rule %q: bad option %q", name, f)
		}
		val := strings.Trim(kv[1], `"`)
		switch kv[0] {
		case "dport":
			p, err := strconv.Atoi(val)
			if err != nil || p < 0 || p > 65535 {
				return nil, fmt.Errorf("ips: rule %q: bad dport %q", name, val)
			}
			sig.dport = uint16(p)
		case "content":
			sig.content = []byte(val)
		case "msg":
			sig.msg = val
		default:
			return nil, fmt.Errorf("ips: rule %q: unknown option %q", name, kv[0])
		}
	}
	if len(sig.content) == 0 {
		return nil, fmt.Errorf("ips: rule %q: missing content", name)
	}
	return sig, nil
}

// tokenizeRule splits on spaces but keeps quoted strings intact.
func tokenizeRule(rule string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for _, r := range rule {
		switch {
		case r == '"':
			inQuote = !inQuote
			cur.WriteRune(r)
		case r == ' ' && !inQuote:
			if cur.Len() > 0 {
				out = append(out, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteRune(r)
		}
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// match reports whether the signature fires on a packet with the given
// protocol, destination port, and payload.
func (s *signature) match(proto uint8, dport uint16, payload []byte) bool {
	if s.proto != 0 && s.proto != proto {
		return false
	}
	if s.dport != 0 && s.dport != dport {
		return false
	}
	return bytes.Contains(payload, s.content)
}
