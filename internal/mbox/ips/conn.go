// Package ips implements a Bro-like intrusion prevention system (§7 of the
// paper). It reproduces the properties of Bro that the evaluation leans on:
//
//   - deep per-flow supporting state: each connection owns a tree of
//     analyzer objects (TCP state machine, HTTP analyzer with buffered
//     parser state and a pending-request queue, per-connection signature
//     matches) — the stand-in for Bro's Connection object and the >100
//     classes the paper serialized with libboost;
//   - shared supporting state: a cross-flow scan detector (per-source
//     distinct destination ports/hosts), which Split/Merge cannot handle
//     and OpenMB moves via getSupportShared/putSupportShared;
//   - conn.log and http.log output streams, written at connection
//     termination and response completion — the artifacts the correctness
//     experiment (§8.2) diffs between an unmodified and an OpenMB-enabled
//     run;
//   - a linear-scan get over the connection tables (one per transport, as
//     in Bro) with per-connection serialization under a short lock.
package ips

import (
	"fmt"

	"openmb/internal/packet"
)

// ConnState is the Bro-style connection state summary.
type ConnState string

// Connection states, after Bro's conn_state field.
const (
	// StateS0: connection attempt seen, no reply.
	StateS0 ConnState = "S0"
	// StateS1: connection established, not terminated.
	StateS1 ConnState = "S1"
	// StateSF: normal establishment and termination.
	StateSF ConnState = "SF"
	// StateREJ: connection attempt rejected (RST).
	StateREJ ConnState = "REJ"
	// StateRSTO: connection established, originator aborted.
	StateRSTO ConnState = "RSTO"
	// StateOTH: midstream traffic, no SYN seen.
	StateOTH ConnState = "OTH"
	// StateMOVED: internal marker — state departed via the southbound
	// API; never logged (the moved flag of §7 prevents Bro from logging
	// errors when state is deleted after a successful move).
	StateMOVED ConnState = "MOVED"
)

// EndpointStats tracks one direction of a connection.
type EndpointStats struct {
	Packets uint64 `json:"pkts"`
	Bytes   uint64 `json:"bytes"`
	SYN     bool   `json:"syn"`
	FIN     bool   `json:"fin"`
	RST     bool   `json:"rst"`
	// LastSeq is the highest sequence number seen.
	LastSeq uint32 `json:"lastSeq"`
}

// Conn is the per-flow supporting state: Bro's Connection object plus its
// analyzer tree. The whole tree serializes as one chunk.
type Conn struct {
	Key   packet.FlowKey `json:"-"`
	KeyS  string         `json:"key"`
	Proto uint8          `json:"proto"`
	State ConnState      `json:"state"`
	Start int64          `json:"start"`
	Last  int64          `json:"last"`
	Orig  EndpointStats  `json:"orig"`
	Resp  EndpointStats  `json:"resp"`
	// History is the Bro-style per-packet event history string
	// (S=SYN, h=handshake done, d/D=data, f/F=fin, r/R=rst; lowercase
	// originator, uppercase responder).
	History string `json:"history"`
	// HTTP is the HTTP analyzer, attached lazily on port-80 traffic.
	HTTP *HTTPAnalyzer `json:"http,omitempty"`
	// SigMatches counts signature-rule hits on this connection.
	SigMatches uint64 `json:"sigMatches"`
	// Established reports whether the three-way handshake completed.
	Established bool `json:"established"`
}

func newConn(key packet.FlowKey, ts int64) *Conn {
	return &Conn{Key: key, Proto: key.Proto, State: StateOTH, Start: ts, Last: ts}
}

// update advances the connection state machine for one packet. fromOrig
// reports the packet direction. It returns true when the packet terminates
// the connection (both FINs acknowledged, or an RST).
func (c *Conn) update(p *packet.Packet, fromOrig bool) (terminated bool) {
	c.Last = p.Timestamp
	ep := &c.Resp
	if fromOrig {
		ep = &c.Orig
	}
	ep.Packets++
	ep.Bytes += uint64(len(p.Payload))
	if p.Seq > ep.LastSeq {
		ep.LastSeq = p.Seq
	}

	if c.Proto != packet.ProtoTCP {
		if c.State == StateOTH && c.Orig.Packets+c.Resp.Packets == 1 {
			c.State = StateS0
		}
		if c.Orig.Packets > 0 && c.Resp.Packets > 0 {
			c.State = StateSF
		}
		return false
	}

	switch {
	case p.Flags&packet.FlagRST != 0:
		ep.RST = true
		c.appendHistory(fromOrig, 'r')
		if c.Established {
			c.State = StateRSTO
		} else {
			c.State = StateREJ
		}
		return true
	case p.Flags&packet.FlagSYN != 0 && p.Flags&packet.FlagACK == 0:
		ep.SYN = true
		c.appendHistory(fromOrig, 's')
		if c.State == StateOTH {
			c.State = StateS0
		}
	case p.Flags&packet.FlagSYN != 0 && p.Flags&packet.FlagACK != 0:
		ep.SYN = true
		c.appendHistory(fromOrig, 'h')
		if c.State == StateS0 {
			c.State = StateS1
			c.Established = true
		}
	case p.Flags&packet.FlagFIN != 0:
		ep.FIN = true
		c.appendHistory(fromOrig, 'f')
		if c.Orig.FIN && c.Resp.FIN {
			if c.Established {
				c.State = StateSF
			}
			return true
		}
	}
	if len(p.Payload) > 0 {
		c.appendHistory(fromOrig, 'd')
	}
	return false
}

func (c *Conn) appendHistory(fromOrig bool, ch byte) {
	if len(c.History) >= 64 {
		return // bounded, as in Bro
	}
	if !fromOrig {
		ch = ch - 'a' + 'A'
	}
	c.History += string(ch)
}

// logLine renders the conn.log entry for this connection. The format is
// stable and timestamp-free apart from trace-relative times, so two runs
// over the same trace diff cleanly.
func (c *Conn) logLine() string {
	return fmt.Sprintf("%s proto=%d state=%s dur=%d opkts=%d rpkts=%d obytes=%d rbytes=%d hist=%s sigs=%d",
		c.Key, c.Proto, c.State, c.Last-c.Start,
		c.Orig.Packets, c.Resp.Packets, c.Orig.Bytes, c.Resp.Bytes, c.History, c.SigMatches)
}
