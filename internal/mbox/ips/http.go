package ips

import (
	"bytes"
	"fmt"
	"strings"
)

// HTTPAnalyzer is one node of the per-connection analyzer tree: it parses
// request lines from originator payloads and status lines from responder
// payloads, pairing them into http.log entries. Parser buffers and the
// pending-request queue are part of the serialized state — moving a
// connection mid-request must not lose the half-parsed request (this is the
// "deep, detailed information" §4.1.2 describes: portions of payloads,
// header fields, parser positions).
type HTTPAnalyzer struct {
	// ReqBuf and RespBuf hold bytes not yet terminated by CRLF.
	ReqBuf  []byte `json:"reqBuf,omitempty"`
	RespBuf []byte `json:"respBuf,omitempty"`
	// Pending queues parsed requests awaiting their response, in order.
	Pending []HTTPRequest `json:"pending,omitempty"`
	// Requests and Responses count completed parses.
	Requests  uint64 `json:"requests"`
	Responses uint64 `json:"responses"`
}

// HTTPRequest is one parsed request line.
type HTTPRequest struct {
	Method string `json:"method"`
	URI    string `json:"uri"`
	Host   string `json:"host,omitempty"`
}

const maxHTTPBuf = 4096

// feedOrig consumes originator-to-responder bytes, returning newly completed
// requests.
func (h *HTTPAnalyzer) feedOrig(payload []byte) []HTTPRequest {
	h.ReqBuf = appendBounded(h.ReqBuf, payload)
	var done []HTTPRequest
	for {
		line, rest, ok := cutLine(h.ReqBuf)
		if !ok {
			break
		}
		h.ReqBuf = rest
		if req, ok := parseRequestLine(line); ok {
			h.Pending = append(h.Pending, req)
			h.Requests++
			done = append(done, req)
		} else if host, ok := parseHostHeader(line); ok && len(h.Pending) > 0 {
			h.Pending[len(h.Pending)-1].Host = host
		}
	}
	return done
}

// httpLogEntry is a completed request/response pair.
type httpLogEntry struct {
	Req    HTTPRequest
	Status int
}

// feedResp consumes responder-to-originator bytes, returning completed
// request/response pairs.
func (h *HTTPAnalyzer) feedResp(payload []byte) []httpLogEntry {
	h.RespBuf = appendBounded(h.RespBuf, payload)
	var done []httpLogEntry
	for {
		line, rest, ok := cutLine(h.RespBuf)
		if !ok {
			break
		}
		h.RespBuf = rest
		status, ok := parseStatusLine(line)
		if !ok {
			continue
		}
		h.Responses++
		entry := httpLogEntry{Status: status}
		if len(h.Pending) > 0 {
			entry.Req = h.Pending[0]
			h.Pending = h.Pending[1:]
		}
		done = append(done, entry)
	}
	return done
}

func appendBounded(buf, data []byte) []byte {
	buf = append(buf, data...)
	if len(buf) > maxHTTPBuf {
		buf = buf[len(buf)-maxHTTPBuf:]
	}
	return buf
}

// cutLine splits off the first CRLF- or LF-terminated line.
func cutLine(buf []byte) (line, rest []byte, ok bool) {
	i := bytes.IndexByte(buf, '\n')
	if i < 0 {
		return nil, buf, false
	}
	line = buf[:i]
	if len(line) > 0 && line[len(line)-1] == '\r' {
		line = line[:len(line)-1]
	}
	return line, buf[i+1:], true
}

var httpMethods = map[string]bool{
	"GET": true, "POST": true, "HEAD": true, "PUT": true,
	"DELETE": true, "OPTIONS": true, "PATCH": true,
}

func parseRequestLine(line []byte) (HTTPRequest, bool) {
	parts := strings.SplitN(string(line), " ", 3)
	if len(parts) != 3 || !httpMethods[parts[0]] || !strings.HasPrefix(parts[2], "HTTP/") {
		return HTTPRequest{}, false
	}
	return HTTPRequest{Method: parts[0], URI: parts[1]}, true
}

func parseHostHeader(line []byte) (string, bool) {
	s := string(line)
	if !strings.HasPrefix(s, "Host:") && !strings.HasPrefix(s, "host:") {
		return "", false
	}
	return strings.TrimSpace(s[5:]), true
}

func parseStatusLine(line []byte) (int, bool) {
	s := string(line)
	if !strings.HasPrefix(s, "HTTP/") {
		return 0, false
	}
	parts := strings.SplitN(s, " ", 3)
	if len(parts) < 2 {
		return 0, false
	}
	var status int
	if _, err := fmt.Sscanf(parts[1], "%d", &status); err != nil || status < 100 || status > 599 {
		return 0, false
	}
	return status, true
}
