package ips

import (
	"encoding/json"
	"net/netip"
	"sort"
)

// scanTracker is the IPS's shared supporting state: per-source-host records
// of distinct destination ports and hosts, used to detect scanning. It is
// shared because it spans flows — precisely the state Split/Merge's per-flow
// abstractions cannot move or clone (§2.1), and which OpenMB transfers via
// getSupportShared/putSupportShared with MB-implemented merge.
type scanTracker struct {
	// Sources maps source-IP string to its record. String keys keep JSON
	// serialization simple and deterministic.
	Sources map[string]*scanRecord `json:"sources"`
	// PortThreshold triggers a scan alert at this many distinct ports.
	PortThreshold int `json:"portThreshold"`
}

// scanRecord tracks one source host.
type scanRecord struct {
	// Ports and Hosts are sets, bounded to keep state small.
	Ports map[uint16]bool `json:"ports"`
	Hosts map[string]bool `json:"hosts"`
	// Alerted marks that a scan alert has fired for this source, so the
	// alert fires once (and is not duplicated after a clone).
	Alerted bool `json:"alerted"`
}

const scanSetCap = 256

func newScanTracker(threshold int) *scanTracker {
	return &scanTracker{Sources: map[string]*scanRecord{}, PortThreshold: threshold}
}

// observe records a flow-opening packet. It returns true when the source
// crosses the scan threshold for the first time.
func (t *scanTracker) observe(src netip.Addr, dst netip.Addr, dstPort uint16) bool {
	key := src.String()
	rec, ok := t.Sources[key]
	if !ok {
		rec = &scanRecord{Ports: map[uint16]bool{}, Hosts: map[string]bool{}}
		t.Sources[key] = rec
	}
	if len(rec.Ports) < scanSetCap {
		rec.Ports[dstPort] = true
	}
	if len(rec.Hosts) < scanSetCap {
		rec.Hosts[dst.String()] = true
	}
	if !rec.Alerted && len(rec.Ports) >= t.PortThreshold {
		rec.Alerted = true
		return true
	}
	return false
}

// marshal serializes the tracker deterministically.
func (t *scanTracker) marshal() ([]byte, error) {
	return json.Marshal(t)
}

// mergeFrom folds another tracker's records into this one: sets are
// unioned, alert flags are OR-ed. This is the MB-implemented merge logic
// invoked when put is called on an instance that already holds shared state
// (§4.1.2).
func (t *scanTracker) mergeFrom(blob []byte) error {
	var other scanTracker
	if err := json.Unmarshal(blob, &other); err != nil {
		return err
	}
	if other.PortThreshold != 0 && (t.PortThreshold == 0 || other.PortThreshold < t.PortThreshold) {
		t.PortThreshold = other.PortThreshold
	}
	for src, rec := range other.Sources {
		mine, ok := t.Sources[src]
		if !ok {
			t.Sources[src] = rec
			continue
		}
		for p := range rec.Ports {
			if len(mine.Ports) < scanSetCap {
				mine.Ports[p] = true
			}
		}
		for h := range rec.Hosts {
			if len(mine.Hosts) < scanSetCap {
				mine.Hosts[h] = true
			}
		}
		mine.Alerted = mine.Alerted || rec.Alerted
	}
	return nil
}

// sortedSources returns source IPs in deterministic order (for tests).
func (t *scanTracker) sortedSources() []string {
	out := make([]string, 0, len(t.Sources))
	for s := range t.Sources {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
