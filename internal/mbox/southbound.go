package mbox

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strings"
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Connect dials the controller at addr over the given transport, announces
// the middlebox, and starts the southbound service loop. It corresponds to
// the paper's MBs connecting to the controller, which then launches one
// thread for state operations and one for events per MB.
//
// addr may be a comma-separated list of controller addresses. The first is
// preferred; the rest are failover candidates tried in order when a dial
// fails or a controller refuses the registration (a partitioned cluster
// node that cannot commit ownership), and a cross-node pull's redirect
// promotes the new owner's address to the front of the list.
func (rt *Runtime) Connect(tr sbi.Transport, addr string) error {
	var addrs []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("mbox: connect: no controller address")
	}
	rt.connMu.Lock()
	rt.tr, rt.addrs = tr, addrs
	rt.connMu.Unlock()
	conn, err := rt.dialSouthbound()
	if err != nil {
		return err
	}
	rt.connMu.Lock()
	rt.conn = conn
	rt.connMu.Unlock()
	rt.workersWG.Add(1)
	go rt.serveSouthbound(conn)
	return nil
}

// dialSouthbound dials the stored controller addresses in preference order
// and performs the session-establishing exchange on the first that answers:
// hello (always JSON) announcing name, kind, codec, and event-batch
// willingness, then the codec upgrade. The winning address is promoted to
// the front of the list so later redials prefer the controller that last
// worked. Used by Connect and by the reconnect loop — session resume IS
// this exchange re-run: marks, filters, and logic state live runtime-side
// and carry over, while the controller rebuilds its routing view from the
// registration.
func (rt *Runtime) dialSouthbound() (*sbi.Conn, error) {
	rt.connMu.RLock()
	tr := rt.tr
	addrs := append([]string(nil), rt.addrs...)
	rt.connMu.RUnlock()
	codec, err := sbi.ParseCodec(string(rt.codec))
	if err != nil {
		return nil, fmt.Errorf("mbox: connect %q: %w", addrs[0], err)
	}
	var lastErr error
	for _, addr := range addrs {
		raw, err := tr.Dial(addr)
		if err != nil {
			lastErr = fmt.Errorf("mbox: connect %q: %w", addr, err)
			continue
		}
		conn := sbi.NewConn(raw)
		hello := &sbi.Message{Type: sbi.MsgHello, Name: rt.name, Kind: rt.logic.Kind()}
		if codec != sbi.CodecJSON {
			hello.Codec = codec
		}
		if rt.coalesce {
			// Announce willingness to receive batched reprocess frames (the
			// event analogue of chunk batching); a controller that predates
			// event batching ignores the field and keeps per-event delivery.
			hello.Batch = sbi.MaxEventsPerFrame
		}
		if err := conn.Send(hello); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		// The hello is always JSON; every frame after it uses the announced
		// codec, on both sides.
		if err := conn.Upgrade(codec); err != nil {
			conn.Close()
			lastErr = err
			continue
		}
		rt.promoteAddr(addr)
		return conn, nil
	}
	return nil, lastErr
}

// promoteAddr makes addr the preferred (first-dialed) controller address,
// learning it if it was not in the list. Called when a dial succeeds and
// when a controller redirects the middlebox to its new owner.
func (rt *Runtime) promoteAddr(addr string) {
	if addr == "" {
		return
	}
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	out := make([]string, 0, len(rt.addrs)+1)
	out = append(out, addr)
	for _, a := range rt.addrs {
		if a != addr {
			out = append(out, a)
		}
	}
	rt.addrs = out
}

// rotateAddr demotes the preferred address behind the other candidates, so
// the next dial tries a different controller first. Called when a
// controller accepts the connection but refuses the registration — a dial
// failure already skips ahead on its own, but a refusal needs an explicit
// rotation or the runtime would redial the refuser forever.
func (rt *Runtime) rotateAddr() {
	rt.connMu.Lock()
	defer rt.connMu.Unlock()
	if len(rt.addrs) > 1 {
		rt.addrs = append(rt.addrs[1:], rt.addrs[0])
	}
}

// reconnectLoop redials the controller after a southbound disconnect:
// exponential backoff between reconnectMin and reconnectMax, with up to
// half a step of deterministic jitter derived from the instance name. It
// exits on rt.stop or once a fresh session is established and its serve
// loop started.
func (rt *Runtime) reconnectLoop() {
	defer rt.workersWG.Done()
	h := fnv.New64a()
	h.Write([]byte(rt.name))
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	delay := rt.reconnectMin
	for {
		jitter := time.Duration(rng.Int63n(int64(delay)/2 + 1))
		select {
		case <-rt.stop:
			return
		case <-time.After(delay + jitter):
		}
		conn, err := rt.dialSouthbound()
		if err == nil {
			rt.connMu.Lock()
			select {
			case <-rt.stop:
				// Close won the race: it already closed (or will never
				// see) this conn, so shut it down here and bail.
				rt.connMu.Unlock()
				conn.Close()
				return
			default:
			}
			rt.conn = conn
			rt.connMu.Unlock()
			rt.reconnects.Add(1)
			rt.workersWG.Add(1)
			go rt.serveSouthbound(conn)
			return
		}
		delay *= 2
		if delay > rt.reconnectMax {
			delay = rt.reconnectMax
		}
	}
}

// maxDeferredReplies bounds reply coalescing: after this many served
// requests the loop flushes even if more input is already buffered. The
// cap matters under sustained inbound load — during a move the controller
// keeps the destination's read buffer non-empty with reprocess deliveries,
// and an uncapped "flush only at idle" rule would park the put ACKs the
// controller's pipeline is waiting on indefinitely (a starvation feedback:
// stalled ACKs lengthen the move window, which buffers more events, which
// keeps the read buffer fuller).
const maxDeferredReplies = 16

func (rt *Runtime) serveSouthbound(conn *sbi.Conn) {
	defer rt.workersWG.Done()
	served, received := 0, 0
	for {
		m, err := conn.Receive()
		if err != nil {
			if received == 0 {
				// The session died before a single frame arrived: the
				// controller cut us off at the hello (HelloTimeout on a
				// partitioned path) or its refusal never made it through.
				// Prefer a different candidate on the redial.
				rt.rotateAddr()
			}
			// The loop is exiting with replies possibly still deferred;
			// publish them so a half-served pipeline is not lost with the
			// buffer (a no-op on a closed transport).
			_ = conn.Flush()
			if rt.reconnect {
				// Spawn the redial loop unless the runtime is shutting
				// down. The Add is safe against Close's Wait: this
				// goroutine still holds its own workersWG count until
				// the deferred Done runs, after the Add.
				select {
				case <-rt.stop:
				default:
					rt.workersWG.Add(1)
					go rt.reconnectLoop()
				}
			}
			return
		}
		received++
		if m.Type == sbi.MsgError && m.ID == 0 {
			// An unsolicited error is a refused registration — a
			// partitioned cluster node that cannot quorum-commit ownership
			// answers the hello this way and closes. Rotate so the redial
			// tries the next candidate controller instead of the refuser.
			rt.rotateAddr()
			conn.Close()
			continue
		}
		if m.Type != sbi.MsgRequest {
			continue
		}
		// Requests are served on the southbound goroutine; the packet
		// worker runs concurrently, so logic implementations lock
		// per chunk (see Logic contract).
		rt.serveRequest(conn, m)
		served++
		// Reply coalescing: replies are encoded deferred, and the flush
		// happens when the loop is about to block on the transport — or
		// at the deferral cap, whichever comes first. A pipelined request
		// burst thus shares flushes across its ACKs, while a lone
		// request's reply still reaches the wire before the loop sleeps —
		// the same flush-on-idle discipline the Conn applies to racing
		// senders.
		if served >= maxDeferredReplies || conn.ReadBuffered() == 0 {
			_ = conn.Flush()
			served = 0
		}
	}
}

func (rt *Runtime) serveRequest(conn *sbi.Conn, m *sbi.Message) {
	fail := func(err error) {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
	}
	switch m.Op {
	case sbi.OpGetConfig:
		entries, err := rt.logic.Config().Export(m.Path)
		if err != nil {
			fail(err)
			return
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Entries: entries, Count: len(entries)})

	case sbi.OpSetConfig:
		var err error
		if len(m.Entries) > 0 {
			// Bulk import: writeConfig(MB, "*", values) cloning.
			err = rt.logic.Config().Import(m.Entries)
		} else {
			err = rt.logic.Config().Set(m.Path, m.Values)
		}
		if err != nil {
			fail(err)
			return
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})

	case sbi.OpDelConfig:
		if err := rt.logic.Config().Del(m.Path); err != nil {
			fail(err)
			return
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})

	case sbi.OpGetSupportPerflow:
		rt.serveGetPerflow(conn, m, state.Supporting)
	case sbi.OpGetReportPerflow:
		rt.serveGetPerflow(conn, m, state.Reporting)

	case sbi.OpPutSupportPerflow:
		rt.servePutPerflow(conn, m, state.Supporting)
	case sbi.OpPutReportPerflow:
		rt.servePutPerflow(conn, m, state.Reporting)

	case sbi.OpDelSupportPerflow:
		rt.serveDelPerflow(conn, m, state.Supporting)
	case sbi.OpDelReportPerflow:
		rt.serveDelPerflow(conn, m, state.Reporting)

	case sbi.OpGetSupportShared:
		rt.serveGetShared(conn, m, state.Supporting)
	case sbi.OpGetReportShared:
		rt.serveGetShared(conn, m, state.Reporting)

	case sbi.OpPutSupportShared:
		rt.servePutShared(conn, m, state.Supporting)
	case sbi.OpPutReportShared:
		rt.servePutShared(conn, m, state.Reporting)

	case sbi.OpStats:
		s := rt.logic.Stats(m.Match)
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Stats: &s})

	case sbi.OpSetEventFilter:
		f := eventFilter{codePrefix: m.Path, match: m.Match, enable: m.Enable}
		if m.TTLNanos > 0 {
			f.expires = time.Now().Add(time.Duration(m.TTLNanos))
		}
		rt.filtersMu.Lock()
		rt.filters = append(rt.filters, f)
		rt.filtersMu.Unlock()
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})

	case sbi.OpPing:
		// Liveness probe (docs/SBI.md): the done reply carries Op=pong so
		// the probe is answered explicitly on the wire. Pre-pong peers
		// interoperate both ways — the prober's liveness clock advances on
		// any received frame, so a plain done (old mbox) or an ignored op
		// marker (old controller, which skips done frames with no pending
		// call) are both still a valid pong. The reply rides the
		// reply-coalescing path like any other response — the serve loop
		// flushes before blocking, so a pong never lingers.
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Op: sbi.OpPong})

	case sbi.OpTraceFlow:
		// Arm (Enable) or disarm the filtered flow tracer. The match
		// predicate is compiled once here, at arm time; Count is the
		// record budget (0 = default). Near-zero data-path cost while
		// disarmed is the contract docs/ARCHITECTURE.md pins.
		if m.Enable {
			rt.ArmTrace(obs.TraceSpec{Match: m.Match, Budget: m.Count})
		} else {
			rt.DisarmTrace()
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})

	case sbi.OpTraceDump:
		// Dump the newest trace session's records, one rendered line per
		// record in capture order, without disturbing an armed session.
		recs := rt.TraceRecords()
		vals := make([]string, len(recs))
		for i, r := range recs {
			vals[i] = r.String()
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: len(recs), Values: vals})

	case sbi.OpRedirect:
		// Ownership moved across the cluster: reconnect to the named node.
		// The ack must reach the wire before the connection drops (the old
		// owner's release call is waiting on it), then the new address is
		// promoted and the session closed — the serve loop's exit path
		// redials, now preferring the new owner.
		if m.Addr == "" {
			fail(fmt.Errorf("mbox: redirect without address"))
			return
		}
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})
		_ = conn.Flush()
		rt.promoteAddr(m.Addr)
		conn.Close()
		if !rt.reconnect {
			// A redirect implies a redial even when the steady-state
			// reconnect loop is disabled; one-shot, same stop-race
			// discipline as the serve loop's exit path.
			select {
			case <-rt.stop:
			default:
				rt.workersWG.Add(1)
				go rt.reconnectLoop()
			}
		}

	case sbi.OpEndTransaction:
		if m.Enable {
			rt.marksMu.Lock()
			rt.sharedMoved = map[state.Class]bool{}
			rt.marksMu.Unlock()
		} else {
			rt.clearMarks(m.Match, state.Supporting, false)
			rt.clearMarks(m.Match, state.Reporting, false)
		}
		// Events decided against the old marks must reach the wire before
		// the ack: the controller detaches the transaction's routing once
		// this op completes.
		rt.syncEvents()
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID})

	case sbi.OpReprocess:
		// One frame may carry a whole coalescing window's events (the
		// controller batches per destination when the hello announced it);
		// each replays independently, in frame (seq) order. Validation is
		// all-or-nothing: every packet unmarshals before any replay is
		// enqueued, so the error reply keeps the seed's single-event
		// meaning of "nothing was applied", and a packetless event
		// anywhere in the frame is the same frame error it was alone.
		var replays []replayJob
		var evErr error
		m.EachEvent(func(ev *sbi.Event) {
			if evErr != nil {
				return
			}
			if len(ev.Packet) == 0 {
				evErr = fmt.Errorf("mbox: reprocess without packet")
				return
			}
			var p packet.Packet
			if err := p.Unmarshal(ev.Packet); err != nil {
				evErr = err
				return
			}
			replays = append(replays, replayJob{p: &p, shared: ev.Shared})
		})
		if evErr != nil {
			fail(evErr)
			return
		}
		if len(replays) == 0 {
			fail(fmt.Errorf("mbox: reprocess without packet"))
			return
		}
		for _, r := range replays {
			rt.enqueueReplay(r.p, r.shared)
		}
		// Reprocess events are not individually acknowledged (Figure 5
		// tracks ACKs only for puts).

	default:
		fail(fmt.Errorf("mbox: unknown op %q", m.Op))
	}
}

func (rt *Runtime) serveGetPerflow(conn *sbi.Conn, m *sbi.Message, class state.Class) {
	rt.activeOps.Add(1)
	defer rt.activeOps.Add(-1)
	// The request's Batch asks for up to that many chunks per MsgChunk
	// frame; 0/1 is the paper's one-chunk-per-frame framing.
	batch := m.Batch
	if batch < 1 {
		batch = 1
	}
	count := 0
	var pending []state.Chunk
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		out := &sbi.Message{Type: sbi.MsgChunk, ID: m.ID, Compressed: m.Compressed}
		out.SetChunks(pending)
		pending = nil
		return conn.SendDeferred(out)
	}
	err := rt.logic.GetPerflow(class, m.Match, func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error {
		// build invokes mark under the logic's lock immediately before
		// serializing, so the moved-mark and the snapshot are atomic:
		// every packet update is either inside the blob or covered by
		// a reprocess event, never both and never neither.
		blob, err := build(func() { rt.markKey(key, class) })
		if err != nil {
			return err
		}
		if m.Compressed {
			blob = deflate(blob)
		}
		count++
		pending = append(pending, state.Chunk{Key: key, Blob: rt.sealer.Seal(blob)})
		if len(pending) >= batch {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	if err != nil {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	// The get's ACK (Figure 5): all matching chunks have been exported.
	_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: count})
}

func (rt *Runtime) servePutPerflow(conn *sbi.Conn, m *sbi.Message, class state.Class) {
	rt.activeOps.Add(1)
	defer rt.activeOps.Add(-1)
	if m.ChunkCount() == 0 {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: "mbox: put without chunk"})
		return
	}
	installed := 0
	var err error
	m.EachChunk(func(c *state.Chunk) {
		if err != nil {
			return
		}
		var blob []byte
		blob, err = rt.sealer.Open(c.Blob)
		if err == nil && m.Compressed {
			blob, err = inflate(blob)
		}
		if err == nil {
			err = rt.logic.PutPerflow(class, state.Chunk{Key: c.Key, Blob: blob})
		}
		if err == nil {
			installed++
		}
	})
	if err != nil {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	// The put's ACK: every chunk in the frame is installed and replayed
	// events for their keys may now be applied.
	_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: installed})
}

func (rt *Runtime) serveDelPerflow(conn *sbi.Conn, m *sbi.Message, class state.Class) {
	rt.activeOps.Add(1)
	defer rt.activeOps.Add(-1)
	n, err := rt.logic.DelPerflow(class, m.Match)
	if err != nil {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	// Completing a move ends the transaction for these keys; Enable
	// doubles as "also clear the shared mark" for clone/merge endings.
	rt.clearMarks(m.Match, class, m.Enable)
	// The delete above destroyed state that includes updates from marked
	// packets still draining off the ingress ring; their reprocess events
	// are the only surviving record. Publish them all before the ack so
	// the controller forwards them while the move is still attached.
	rt.syncEvents()
	_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: n})
}

func (rt *Runtime) serveGetShared(conn *sbi.Conn, m *sbi.Message, class state.Class) {
	rt.activeOps.Add(1)
	defer rt.activeOps.Add(-1)
	blob, err := rt.logic.GetShared(class, func() { rt.markShared(class) })
	if errors.Is(err, ErrNoSharedState) {
		// Absent class: an empty transfer, not a failure (Count 0).
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: 0})
		return
	}
	if err != nil {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	if m.Compressed {
		blob = deflate(blob)
	}
	_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Blob: rt.sealer.Seal(blob), Compressed: m.Compressed, Count: 1})
}

func (rt *Runtime) servePutShared(conn *sbi.Conn, m *sbi.Message, class state.Class) {
	rt.activeOps.Add(1)
	defer rt.activeOps.Add(-1)
	blob, err := rt.sealer.Open(m.Blob)
	if err == nil && m.Compressed {
		blob, err = inflate(blob)
	}
	if err == nil {
		err = rt.logic.PutShared(class, blob)
	}
	if err != nil {
		_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgError, ID: m.ID, Error: err.Error()})
		return
	}
	_ = conn.SendDeferred(&sbi.Message{Type: sbi.MsgDone, ID: m.ID, Count: 1})
}

func (rt *Runtime) enqueueReplay(p *packet.Packet, shared bool) {
	rt.pending.Add(1)
	if !rt.ring.tryPush(ingressItem{p: p, replay: true, shared: shared}) {
		rt.droppedReplays.Add(1)
		rt.pending.Add(-1)
		p.Release()
	}
}

// deflate compresses b with flate at default compression.
func deflate(b []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		panic("mbox: flate: " + err.Error())
	}
	if _, err := w.Write(b); err != nil {
		panic("mbox: flate write: " + err.Error())
	}
	if err := w.Close(); err != nil {
		panic("mbox: flate close: " + err.Error())
	}
	return buf.Bytes()
}

// inflate reverses deflate.
func inflate(b []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(b))
	defer r.Close()
	return io.ReadAll(r)
}

// replayJob is one validated reprocess event awaiting enqueue (batched
// frames validate every event before enqueuing any).
type replayJob struct {
	p      *packet.Packet
	shared bool
}
