package mbox

import (
	"sync"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// defaultEventWindow is the event coalescing window: after the first event
// of a burst wakes the flusher, it waits this long for burst-mates before
// framing, ClickOS-style interrupt coalescing for the southbound wire. The
// added delivery latency is negligible against the controller's quiet
// period (50 ms in benchmarks, 5 s in the paper) and the buffer-until-ACK
// discipline — the controller parks in-transaction events anyway — while a
// 2 ms window turns a 2500 pps move's per-event frames-and-flushes into
// ~5-event batches.
const defaultEventWindow = 2 * time.Millisecond

// maxEventWindow caps Options.EventWindow. Outbox residence time is
// invisible to the controller's quiescence accounting, so the window must
// stay a small fraction of the tightest quiet period in use (50 ms in the
// benchmark rigs; 5 s in the paper's deployment default) — see the
// Options.EventWindow doc.
const maxEventWindow = 10 * time.Millisecond

// minEventWindow is the floor the adaptive coalescing window shrinks to
// under light event load: deep enough that near-simultaneous events still
// share a frame, shallow enough that a lone event's delivery latency is
// dominated by scheduling, not by the linger.
const minEventWindow = 250 * time.Microsecond

// maxOutboxEvents bounds the event backlog. When the raiser outruns the
// wire, add blocks until the flusher drains below the bound — the batched
// analogue of the seed's synchronous per-event send, which throttled the
// packet worker to wire speed one event at a time. Without it a saturating
// packet loop grows the backlog without limit and the event firehose
// starves same-connection request streams. The bound is deliberately a
// small multiple of the frame size: a worker stall lasts one drain cycle,
// and a cycle's length scales with the backlog it swallowed — a deep
// backlog turns smooth per-event throttling into bursty stalls long
// enough for the ingress ring to overflow.
const maxOutboxEvents = 16 * sbi.MaxEventsPerFrame

// eventOutbox decouples event raising from event transmission: the packet
// worker appends events (reprocess packet payloads marshal into a shared
// arena, so the steady state allocates no per-event buffer) and a single
// flusher goroutine frames everything pending into batched MsgEvent frames.
// FIFO order — and therefore seq order — is preserved end to end.
type eventOutbox struct {
	mu      sync.Mutex
	cond    sync.Cond
	notFull sync.Cond
	jobs    []*sbi.Event
	arena   []byte
	closed  bool
	// draining is true while the flusher is framing a swapped-out batch;
	// gen counts completed drain cycles. Together they let barrier wait
	// until everything queued before the call is on the wire.
	draining bool
	gen      uint64
}

func (ob *eventOutbox) init() {
	ob.cond.L = &ob.mu
	ob.notFull.L = &ob.mu
}

// add queues ev; if p is non-nil its wire form is marshaled into the arena
// and attached as the event's packet. Blocks while the backlog is at its
// bound (wire-speed backpressure on the raiser). Reports false when the
// outbox closed (the event is dropped, as a send on a dead connection
// would be).
func (ob *eventOutbox) add(ev *sbi.Event, p *packet.Packet) bool {
	ob.mu.Lock()
	for len(ob.jobs) >= maxOutboxEvents && !ob.closed {
		ob.notFull.Wait()
	}
	if ob.closed {
		ob.mu.Unlock()
		return false
	}
	if p != nil {
		// An arena grow moves earlier events' payloads to a new backing
		// array; their slices keep aliasing the old one, which stays valid
		// until they are framed. Steady state: capacity sticks at one
		// window's worth of payload and nothing allocates.
		off := len(ob.arena)
		ob.arena = p.Marshal(ob.arena)
		ev.Packet = ob.arena[off:len(ob.arena):len(ob.arena)]
	}
	ob.jobs = append(ob.jobs, ev)
	wake := len(ob.jobs) == 1
	ob.mu.Unlock()
	if wake {
		ob.cond.Signal()
	}
	return true
}

// barrier blocks until every event queued before the call has been framed
// and flushed to the transport (or the outbox closed, or the cap expired).
// Because every drain swaps out the WHOLE backlog, the events in question
// are covered by at most two more drain completions: the batch currently
// mid-send plus one drain of the present jobs slice. Waiting on the drain
// generation instead of an empty backlog keeps the bound independent of
// concurrent raisers refilling the queue.
func (ob *eventOutbox) barrier(timeout time.Duration) {
	ob.mu.Lock()
	var target uint64
	switch {
	case ob.draining && len(ob.jobs) > 0:
		target = ob.gen + 2
	case ob.draining || len(ob.jobs) > 0:
		target = ob.gen + 1
	default:
		ob.mu.Unlock()
		return
	}
	ob.mu.Unlock()
	deadline := time.Now().Add(timeout)
	for {
		ob.mu.Lock()
		done := ob.gen >= target || ob.closed
		ob.mu.Unlock()
		if done || !time.Now().Before(deadline) {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// close wakes the flusher to drain the backlog and exit, and releases any
// raiser blocked on the bound.
func (ob *eventOutbox) close() {
	ob.mu.Lock()
	ob.closed = true
	ob.mu.Unlock()
	ob.cond.Broadcast()
	ob.notFull.Broadcast()
}

// eventFlusher is the outbox consumer: wait for the first event of a burst,
// linger for the coalescing window, then swap out the whole backlog and
// frame it. The previous cycle's job slice and arena are handed back as the
// next fill buffers (double buffering), so the flusher allocates nothing in
// steady state beyond the frames themselves.
//
// In burst mode the window is adaptive, NAPI-style: a drain that fills half
// a frame or more stretches the next linger (×2, capped at maxEventWindow —
// sustained bursts buy bigger batches per flush), while a near-empty drain
// shrinks it (÷2, floored at minEventWindow — light load buys latency). The
// configured Options.EventWindow is the starting point; the OPENMB_BURST=off
// ablation keeps it fixed, the seed-faithful 2 ms behaviour.
func (rt *Runtime) eventFlusher() {
	defer rt.workersWG.Done()
	ob := &rt.outbox
	var spareJobs []*sbi.Event
	var spareArena []byte
	lastBatch := 0
	window := rt.eventWindow
	for {
		ob.mu.Lock()
		for len(ob.jobs) == 0 && !ob.closed {
			ob.cond.Wait()
		}
		if len(ob.jobs) == 0 {
			ob.mu.Unlock()
			return
		}
		pending, closed := len(ob.jobs), ob.closed
		ob.mu.Unlock()
		// Linger only at low rates — when neither the pending backlog nor
		// the previous drain reached a full frame. Once a full frame's
		// worth is flowing per cycle, batching has nothing left to gain
		// and the sleep would only throttle the pipeline below the wire's
		// capacity (the raiser is blocked on the backlog bound meanwhile).
		if !closed && window > 0 &&
			pending < sbi.MaxEventsPerFrame && lastBatch < sbi.MaxEventsPerFrame {
			time.Sleep(window)
		}
		ob.mu.Lock()
		batch, arena := ob.jobs, ob.arena
		ob.jobs, ob.arena = spareJobs[:0], spareArena[:0]
		ob.draining = true
		ob.notFull.Broadcast()
		ob.mu.Unlock()

		rt.sendEventFrames(batch)
		rt.eventsQueued.Add(-int64(len(batch)))
		ob.mu.Lock()
		ob.draining = false
		ob.gen++
		ob.mu.Unlock()
		lastBatch = len(batch)
		for i := range batch {
			batch[i] = nil
		}
		spareJobs, spareArena = batch, arena
		if rt.burst && rt.eventWindow > 0 {
			switch {
			case lastBatch >= sbi.MaxEventsPerFrame/2:
				if window *= 2; window > maxEventWindow {
					window = maxEventWindow
				}
			case lastBatch <= 2:
				if window /= 2; window < minEventWindow {
					window = minEventWindow
				}
			}
		}
	}
}

// sendEventFrames frames a drained batch — one frame per MaxEventsPerFrame
// events, deferred, with a single flush publishing the cycle — and sends it
// southbound. With no controller connected the events are dropped, exactly
// as a send on a failed connection would be.
func (rt *Runtime) sendEventFrames(batch []*sbi.Event) {
	rt.connMu.RLock()
	conn := rt.conn
	rt.connMu.RUnlock()
	if conn == nil || len(batch) == 0 {
		return
	}
	err := sbi.FrameEvents(batch, sbi.MaxEventsPerFrame, func(frame []*sbi.Event) error {
		m := &sbi.Message{Type: sbi.MsgEvent}
		m.SetEvents(frame)
		return conn.SendDeferred(m)
	})
	if err == nil {
		// The events-path bounded-latency guarantee: one explicit flush
		// per drain cycle, so a raised event reaches the transport within
		// the coalescing window plus one framing pass.
		err = conn.Flush()
	}
	// Send errors mean the controller is gone; the events are dropped, as
	// they would be on a failed TCP connection.
	_ = err
}
