package mbox

// Microbench guard for the filterAllows clock hoist: the introspection
// filter check runs per raised event under filtersMu on the packet worker's
// path, and before the hoist it read the clock once per *filter* per event.
// With 64 TTL-bearing filters that was 64 clock calls per event; now it is
// one. The benchmark pins the shape so a regression (a clock read creeping
// back into the loop) shows up as a step change in ns/op.

import (
	"fmt"
	"testing"
	"time"

	"openmb/internal/packet"
	"openmb/internal/state"
)

func benchFilterStack(b *testing.B, filters int) {
	rt := &Runtime{
		movedKeys:   map[touchRef]bool{},
		sharedMoved: map[state.Class]bool{},
		logs:        map[string][]string{},
	}
	expires := time.Now().Add(time.Hour)
	for i := 0; i < filters; i++ {
		rt.filters = append(rt.filters, eventFilter{
			codePrefix: fmt.Sprintf("app%d.", i),
			match:      packet.MatchAll,
			enable:     true,
			expires:    expires, // every entry pays the expiry check
		})
	}
	key := packet.FlowKey{SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A code matching no prefix walks the whole stack — the worst case
		// the hoist targets.
		if rt.filterAllows("zz.miss", key) {
			b.Fatal("unexpected filter match")
		}
	}
}

func BenchmarkFilterAllowsDeepStack(b *testing.B)    { benchFilterStack(b, 64) }
func BenchmarkFilterAllowsShallowStack(b *testing.B) { benchFilterStack(b, 4) }
