package mbox

import (
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Options configures a Runtime.
type Options struct {
	// Sealer encrypts exported state chunks. Defaults to a sealer derived
	// from the logic's Kind, so all instances of one middlebox type share
	// a key and the controller cannot inspect blobs.
	Sealer state.BlobSealer
	// QueueSize bounds the ingress packet queue (default 8192).
	QueueSize int
	// Forward receives packets the logic emits (external side effects).
	// Typically wired to a netsim port. Nil counts but discards.
	Forward func(p *packet.Packet)
	// Codec selects the southbound wire codec, announced in the hello
	// frame (which itself is always JSON, so any controller can read the
	// announcement). Empty selects sbi.CodecBinary, the length-prefixed
	// binary fast path — the default now that both sides negotiate at
	// hello. sbi.CodecJSON keeps the paper's newline-delimited JSON, the
	// compatibility and debugging path.
	Codec sbi.Codec
}

// Runtime hosts one middlebox instance: its logic, its southbound
// connection, and its packet loop. It implements netsim.Endpoint so it can
// be attached directly to the simulated network.
type Runtime struct {
	name   string
	logic  Logic
	sealer state.BlobSealer
	codec  sbi.Codec

	in        chan *packet.Packet
	inReplay  chan replayItem
	stop      chan struct{}
	stopOnce  sync.Once
	workersWG sync.WaitGroup

	// pending counts queued plus in-process packets, for Drain.
	pending atomic.Int64

	forwardMu sync.RWMutex
	forward   func(p *packet.Packet)

	conn   *sbi.Conn
	connMu sync.RWMutex

	// marks is the moved/cloned registry: per-flow keys and shared
	// classes currently part of a controller transaction.
	marksMu     sync.Mutex
	movedKeys   map[touchRef]bool
	sharedMoved map[state.Class]bool

	filtersMu sync.Mutex
	filters   []eventFilter

	logMu sync.Mutex
	logs  map[string][]string

	eventSeq atomic.Uint64

	// Metrics.
	processed       atomic.Uint64
	replayed        atomic.Uint64
	eventsRaised    atomic.Uint64
	introRaised     atomic.Uint64
	suppressedEmits atomic.Uint64
	suppressedLogs  atomic.Uint64
	emitted         atomic.Uint64
	activeOps       atomic.Int32
	latNormalNS     atomic.Int64
	latNormalN      atomic.Int64
	latDuringOpNS   atomic.Int64
	latDuringOpN    atomic.Int64
}

type eventFilter struct {
	codePrefix string
	match      packet.FieldMatch
	enable     bool
	// expires bounds the filter's lifetime; zero means no expiry
	// (§4.2.2: events can be enabled "only for a limited period of
	// time" to protect the controller from overload).
	expires time.Time
}

// New creates a runtime for the given logic. The runtime's packet worker
// starts immediately; connect it to a controller with Connect and to a
// network with netsim's Attach.
func New(name string, logic Logic, opts Options) *Runtime {
	if opts.Sealer == nil {
		opts.Sealer = state.NewSealer("openmb-mbtype-" + logic.Kind())
	}
	if opts.QueueSize == 0 {
		opts.QueueSize = 8192
	}
	if opts.Codec == "" {
		opts.Codec = sbi.CodecBinary
	}
	rt := &Runtime{
		name:        name,
		logic:       logic,
		sealer:      opts.Sealer,
		codec:       opts.Codec,
		in:          make(chan *packet.Packet, opts.QueueSize),
		inReplay:    make(chan replayItem, opts.QueueSize),
		stop:        make(chan struct{}),
		forward:     opts.Forward,
		movedKeys:   map[touchRef]bool{},
		sharedMoved: map[state.Class]bool{},
		logs:        map[string][]string{},
	}
	rt.workersWG.Add(1)
	go rt.worker()
	return rt
}

// Name returns the instance name (e.g. "prads1").
func (rt *Runtime) Name() string { return rt.name }

// Logic returns the hosted middlebox logic.
func (rt *Runtime) Logic() Logic { return rt.logic }

// HandlePacket implements netsim.Endpoint: it enqueues the packet for
// processing. If the queue is full the packet is dropped (and its borrowed
// reference released), as a loaded middlebox would; after Close it is
// dropped the same way, so late link deliveries cannot strand a borrow.
func (rt *Runtime) HandlePacket(p *packet.Packet) {
	rt.pending.Add(1)
	select {
	case <-rt.stop:
		rt.pending.Add(-1)
		p.Release()
		return
	default:
	}
	select {
	case rt.in <- p:
	default:
		rt.pending.Add(-1)
		p.Release()
	}
}

// SetForward replaces the emitted-packet sink.
func (rt *Runtime) SetForward(fn func(p *packet.Packet)) {
	rt.forwardMu.Lock()
	rt.forward = fn
	rt.forwardMu.Unlock()
}

func (rt *Runtime) forwardPacket(p *packet.Packet) {
	rt.emitted.Add(1)
	rt.forwardMu.RLock()
	fn := rt.forward
	rt.forwardMu.RUnlock()
	if fn == nil {
		// No sink: the emit is counted but the packet goes nowhere, so
		// its reference is released here.
		p.Release()
		return
	}
	fn(p)
}

// worker drains the ingress queues. Replayed packets (reprocess events) and
// live packets are serialized through the same loop, so logic observes a
// single-threaded packet stream, as the paper's per-Connection mutex
// achieves for Bro. The Context is reused across packets (the worker is the
// only caller of process, and Logic must not retain it past Process), so the
// steady-state path allocates nothing per packet.
func (rt *Runtime) worker() {
	defer rt.workersWG.Done()
	var ctx Context
	for {
		select {
		case <-rt.stop:
			return
		case item := <-rt.inReplay:
			rt.process(&ctx, item.p, true, item.shared)
		case p := <-rt.in:
			rt.process(&ctx, p, false, false)
		}
	}
}

// replayItem is one queued reprocess event: the packet plus whether the
// originating transaction covered shared state (which determines the state
// classes the replay may update; see Context.SkipShared/SkipPerflow).
type replayItem struct {
	p      *packet.Packet
	shared bool
}

// process runs one packet through the logic and then releases the runtime's
// borrowed reference (the logic takes its own via Context.Emit/Retain if it
// keeps or forwards the packet).
func (rt *Runtime) process(ctx *Context, p *packet.Packet, replay, replayShared bool) {
	defer rt.pending.Add(-1)
	defer p.Release()
	start := time.Now()
	*ctx = Context{rt: rt, pkt: p, Replay: replay, replayShared: replayShared}
	rt.logic.Process(ctx, p)
	elapsed := time.Since(start)
	if rt.activeOps.Load() > 0 {
		rt.latDuringOpNS.Add(int64(elapsed))
		rt.latDuringOpN.Add(1)
	} else {
		rt.latNormalNS.Add(int64(elapsed))
		rt.latNormalN.Add(1)
	}
	if replay {
		rt.replayed.Add(1)
		return
	}
	rt.processed.Add(1)
	rt.maybeRaiseReprocess(ctx, p)
}

// eventBufPool recycles the per-event packet encode buffer. A move window
// raises one reprocess event per in-transaction packet, and each used to
// pay a fresh p.Marshal(nil) allocation sized to the packet — the dominant
// per-event cost the Figure 9(c)/(d) experiments measure. sendEvent encodes
// the frame synchronously (both codecs copy the payload into their own
// write buffers before Send returns), so the buffer can be recycled the
// moment the event is sent.
var eventBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// maybeRaiseReprocess implements step 2 of §4.2.1: if the packet updated
// state that is part of an in-progress move or clone (decided at Touch time,
// under the logic's lock), send a reprocess event with a copy of the packet
// toward the controller. At most one event is raised per packet; the
// destination replays the whole packet, which renews every piece of state it
// touches.
func (rt *Runtime) maybeRaiseReprocess(ctx *Context, p *packet.Packet) {
	if !ctx.raise {
		return
	}
	key := ctx.raiseKey
	if ctx.raiseShared {
		key = p.Flow()
	}
	rt.eventsRaised.Add(1)
	bp := eventBufPool.Get().(*[]byte)
	buf := p.Marshal((*bp)[:0])
	rt.sendEvent(&sbi.Event{
		Kind:   sbi.EventReprocess,
		Key:    key,
		Class:  ctx.raiseClass,
		Shared: ctx.raiseShared,
		Packet: buf,
		Seq:    rt.eventSeq.Add(1),
	})
	// Keep whatever capacity Marshal grew the buffer to.
	*bp = buf[:0]
	eventBufPool.Put(bp)
}

func (rt *Runtime) raiseIntrospection(code string, key packet.FlowKey, values map[string]string) {
	if !rt.filterAllows(code, key) {
		return
	}
	rt.introRaised.Add(1)
	rt.sendEvent(&sbi.Event{
		Kind:   sbi.EventIntrospection,
		Key:    key,
		Code:   code,
		Values: values,
		Seq:    rt.eventSeq.Add(1),
	})
}

// filterAllows evaluates introspection filters. Filters are evaluated in
// reverse registration order; the most recent matching filter wins. With no
// matching filter, events are disabled — the safe default against overload.
func (rt *Runtime) filterAllows(code string, key packet.FlowKey) bool {
	rt.filtersMu.Lock()
	defer rt.filtersMu.Unlock()
	for i := len(rt.filters) - 1; i >= 0; i-- {
		f := rt.filters[i]
		if !f.expires.IsZero() && time.Now().After(f.expires) {
			continue
		}
		if len(f.codePrefix) <= len(code) && code[:len(f.codePrefix)] == f.codePrefix && f.match.MatchEither(key) {
			return f.enable
		}
	}
	return false
}

func (rt *Runtime) sendEvent(ev *sbi.Event) {
	rt.connMu.RLock()
	conn := rt.conn
	rt.connMu.RUnlock()
	if conn == nil {
		return
	}
	// Send errors mean the controller is gone; the event is dropped, as
	// it would be on a failed TCP connection.
	_ = conn.Send(&sbi.Message{Type: sbi.MsgEvent, Event: ev})
}

// markKey records that per-flow state (key, class) is part of a transaction.
func (rt *Runtime) markKey(key packet.FlowKey, class state.Class) {
	rt.marksMu.Lock()
	rt.movedKeys[touchRef{key: key, class: class}] = true
	rt.marksMu.Unlock()
}

// markShared records that shared state of class is part of a transaction.
func (rt *Runtime) markShared(class state.Class) {
	rt.marksMu.Lock()
	rt.sharedMoved[class] = true
	rt.marksMu.Unlock()
}

// clearMarks removes transaction marks for keys matching m (either
// direction) in the given class, plus the shared mark if clearShared.
func (rt *Runtime) clearMarks(m packet.FieldMatch, class state.Class, clearShared bool) {
	rt.marksMu.Lock()
	for ref := range rt.movedKeys {
		if ref.class == class && m.MatchEither(ref.key) {
			delete(rt.movedKeys, ref)
		}
	}
	if clearShared {
		delete(rt.sharedMoved, class)
	}
	rt.marksMu.Unlock()
}

// MarkedKeys returns the number of per-flow keys currently in transactions.
func (rt *Runtime) MarkedKeys() int {
	rt.marksMu.Lock()
	defer rt.marksMu.Unlock()
	return len(rt.movedKeys)
}

func (rt *Runtime) writeLog(stream, line string) {
	rt.logMu.Lock()
	rt.logs[stream] = append(rt.logs[stream], line)
	rt.logMu.Unlock()
}

// Log returns a snapshot of the named log stream (e.g. "conn", "http").
func (rt *Runtime) Log(stream string) []string {
	rt.logMu.Lock()
	defer rt.logMu.Unlock()
	return append([]string(nil), rt.logs[stream]...)
}

// Drain blocks until the ingress queues are empty and no packet is being
// processed, or the timeout elapses. Returns true if drained.
func (rt *Runtime) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	streak := 0
	for time.Now().Before(deadline) {
		if rt.pending.Load() == 0 {
			streak++
			if streak >= 3 {
				return true
			}
		} else {
			streak = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	return rt.pending.Load() == 0
}

// Metrics is a snapshot of runtime counters.
type Metrics struct {
	Processed       uint64
	Replayed        uint64
	EventsRaised    uint64
	IntroRaised     uint64
	Emitted         uint64
	SuppressedEmits uint64
	SuppressedLogs  uint64
	// LatencyNormal and LatencyDuringOp are mean per-packet processing
	// latencies outside and inside southbound-operation windows.
	LatencyNormal   time.Duration
	LatencyDuringOp time.Duration
}

// Metrics returns a snapshot of the runtime's counters.
func (rt *Runtime) Metrics() Metrics {
	m := Metrics{
		Processed:       rt.processed.Load(),
		Replayed:        rt.replayed.Load(),
		EventsRaised:    rt.eventsRaised.Load(),
		IntroRaised:     rt.introRaised.Load(),
		Emitted:         rt.emitted.Load(),
		SuppressedEmits: rt.suppressedEmits.Load(),
		SuppressedLogs:  rt.suppressedLogs.Load(),
	}
	if n := rt.latNormalN.Load(); n > 0 {
		m.LatencyNormal = time.Duration(rt.latNormalNS.Load() / n)
	}
	if n := rt.latDuringOpN.Load(); n > 0 {
		m.LatencyDuringOp = time.Duration(rt.latDuringOpNS.Load() / n)
	}
	return m
}

// Close stops the packet worker and closes the controller connection.
// Packets still queued are released undelivered; a delivery racing Close
// either lands in the queue before the drain below or observes the closed
// stop channel in HandlePacket and releases its own borrow, so no packet is
// stranded either way.
func (rt *Runtime) Close() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		rt.connMu.Lock()
		if rt.conn != nil {
			rt.conn.Close()
		}
		rt.connMu.Unlock()
	})
	rt.workersWG.Wait()
	// Drain until pending reaches zero: an in-flight HandlePacket that
	// passed the stop check before it closed may still be about to
	// enqueue, so keep sweeping (bounded) while borrows are outstanding.
	deadline := time.Now().Add(time.Second)
	for {
		drained := false
		for {
			select {
			case p := <-rt.in:
				rt.pending.Add(-1)
				p.Release()
				drained = true
				continue
			case item := <-rt.inReplay:
				rt.pending.Add(-1)
				item.p.Release()
				drained = true
				continue
			default:
			}
			break
		}
		if rt.pending.Load() == 0 || (!drained && time.Now().After(deadline)) {
			return
		}
		time.Sleep(50 * time.Microsecond)
	}
}
