package mbox

import (
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/obs"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Options configures a Runtime.
type Options struct {
	// Sealer encrypts exported state chunks. Defaults to a sealer derived
	// from the logic's Kind, so all instances of one middlebox type share
	// a key and the controller cannot inspect blobs.
	Sealer state.BlobSealer
	// QueueSize bounds the ingress packet queue (default 8192).
	QueueSize int
	// Forward receives packets the logic emits (external side effects).
	// Typically wired to a netsim port. Nil counts but discards.
	Forward func(p *packet.Packet)
	// Codec selects the southbound wire codec, announced in the hello
	// frame (which itself is always JSON, so any controller can read the
	// announcement). Empty selects sbi.CodecBinary, the length-prefixed
	// binary fast path — the default now that both sides negotiate at
	// hello. sbi.CodecJSON keeps the paper's newline-delimited JSON, the
	// compatibility and debugging path.
	Codec sbi.Codec
	// EventWindow is the event coalescing window: how long the outbox
	// flusher lingers after a burst's first event before framing, so
	// events raised close together share one frame and one flush. 0
	// selects the default (2 ms); negative disables the linger (events
	// still batch when they outpace the flusher). Values are clamped to
	// 10 ms: events lingering in the outbox are invisible to the
	// controller's quiescence accounting (it can only see events that
	// reached the wire), so the window must stay well below any quiet
	// period — a window at or past it would let transactions complete
	// while count-bearing events are still parked source-side. Ignored
	// when the coalesced wire path is off (OPENMB_COALESCE=off), which
	// restores the seed's synchronous frame-and-flush per event.
	EventWindow time.Duration
	// Reconnect enables southbound resilience: when the controller
	// connection drops, the runtime redials with exponential backoff plus
	// deterministic jitter (seeded from the instance name, so a flap storm
	// of many runtimes does not thundering-herd the controller while each
	// runtime's own schedule stays reproducible) and resumes the session
	// by re-sending its hello. Runtime-held session state — transaction
	// marks, event filters, logic state — survives the reconnect; the
	// controller side rebuilds its routing view from the fresh
	// registration.
	Reconnect bool
	// ReconnectMin and ReconnectMax bound the backoff delay (defaults
	// 50 ms and 2 s).
	ReconnectMin, ReconnectMax time.Duration
}

// Runtime hosts one middlebox instance: its logic, its southbound
// connection, and its packet loop. It implements netsim.Endpoint so it can
// be attached directly to the simulated network.
type Runtime struct {
	name   string
	logic  Logic
	sealer state.BlobSealer
	codec  sbi.Codec

	// ring is the ingress queue: live and replayed packets behind one
	// batched-wake ring (see ingressRing), drained by the single worker.
	ring      *ingressRing
	stop      chan struct{}
	stopOnce  sync.Once
	workersWG sync.WaitGroup

	// coalesce selects the batched event path (outbox + flusher); off is
	// the seed's synchronous frame-and-flush per event, captured from
	// sbi.CoalesceDefault at construction.
	coalesce    bool
	eventWindow time.Duration

	// burst selects the vectorized worker path (captured from
	// packet.BurstDefault at construction); burstLogic is non-nil when the
	// logic natively implements BurstLogic (otherwise the burst worker
	// shims ProcessBurst with a per-packet Process loop).
	burst      bool
	burstLogic BurstLogic
	outbox     eventOutbox
	// eventsQueued counts events raised but not yet handed to the
	// transport; Drain waits for it so "drained" still means every raised
	// event is on the wire.
	eventsQueued atomic.Int64

	// pending counts queued plus in-process packets, for Drain.
	pending atomic.Int64

	// procSeq is the worker's packet parity clock: odd while a packet (or
	// burst) is between its mark check and its reprocess-event enqueue, even
	// between packets. syncEvents uses it to wait out the one in-flight
	// packet whose Touch may have seen marks a clearing op just removed.
	procSeq atomic.Uint64

	forwardMu sync.RWMutex
	forward   func(p *packet.Packet)
	// forwardBurst, when set, receives whole emitted bursts in one call —
	// the direct co-located handoff (typically a peer Runtime's
	// HandleBurst, pushing the burst into its ingress ring in a single
	// synchronization). Consulted only on the burst path; the per-packet
	// forward sink is the fallback.
	forwardBurst func(ps []*packet.Packet)

	// conn is the live southbound connection; tr and addrs remember how it
	// was dialed so the reconnect loop can redial. addrs is the candidate
	// controller list, preferred first: a dial walks it in order, success
	// promotes the winner to the front, an sbi.OpRedirect promotes the new
	// owner's address, and a refused registration rotates the refuser to
	// the back. All three ride connMu.
	conn   *sbi.Conn
	tr     sbi.Transport
	addrs  []string
	connMu sync.RWMutex

	// reconnect enables the southbound redial loop; the bounds shape its
	// exponential backoff.
	reconnect                  bool
	reconnectMin, reconnectMax time.Duration
	reconnects                 atomic.Uint64

	// marks is the moved/cloned registry: per-flow keys and shared
	// classes currently part of a controller transaction.
	marksMu     sync.Mutex
	movedKeys   map[touchRef]bool
	sharedMoved map[state.Class]bool

	filtersMu sync.Mutex
	filters   []eventFilter

	logMu sync.Mutex
	logs  map[string][]string

	eventSeq atomic.Uint64

	// tracer is the filtered flow tracer (armed via ArmTrace or the
	// southbound sbi.OpTraceFlow). Disarmed, every hook is one atomic
	// pointer load; the zero value starts disarmed.
	tracer obs.FlowTracer

	// Metrics.
	processed       atomic.Uint64
	replayed        atomic.Uint64
	droppedPackets  atomic.Uint64
	droppedReplays  atomic.Uint64
	eventsRaised    atomic.Uint64
	introRaised     atomic.Uint64
	suppressedEmits atomic.Uint64
	suppressedLogs  atomic.Uint64
	emitted         atomic.Uint64
	activeOps       atomic.Int32
	latNormalNS     atomic.Int64
	latNormalN      atomic.Int64
	latDuringOpNS   atomic.Int64
	latDuringOpN    atomic.Int64
}

type eventFilter struct {
	codePrefix string
	match      packet.FieldMatch
	enable     bool
	// expires bounds the filter's lifetime; zero means no expiry
	// (§4.2.2: events can be enabled "only for a limited period of
	// time" to protect the controller from overload).
	expires time.Time
}

// New creates a runtime for the given logic. The runtime's packet worker
// starts immediately; connect it to a controller with Connect and to a
// network with netsim's Attach.
func New(name string, logic Logic, opts Options) *Runtime {
	if opts.Sealer == nil {
		opts.Sealer = state.NewSealer("openmb-mbtype-" + logic.Kind())
	}
	if opts.QueueSize == 0 {
		opts.QueueSize = 8192
	}
	if opts.Codec == "" {
		opts.Codec = sbi.CodecBinary
	}
	if opts.EventWindow == 0 {
		opts.EventWindow = defaultEventWindow
	}
	if opts.EventWindow > maxEventWindow {
		opts.EventWindow = maxEventWindow
	}
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 50 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 2 * time.Second
	}
	rt := &Runtime{
		name:         name,
		logic:        logic,
		sealer:       opts.Sealer,
		codec:        opts.Codec,
		ring:         newIngressRing(opts.QueueSize),
		stop:         make(chan struct{}),
		coalesce:     sbi.CoalesceDefault(),
		burst:        packet.BurstDefault(),
		eventWindow:  opts.EventWindow,
		forward:      opts.Forward,
		reconnect:    opts.Reconnect,
		reconnectMin: opts.ReconnectMin,
		reconnectMax: opts.ReconnectMax,
		movedKeys:    map[touchRef]bool{},
		sharedMoved:  map[state.Class]bool{},
		logs:         map[string][]string{},
	}
	if rt.burst {
		rt.burstLogic, _ = logic.(BurstLogic)
	}
	rt.outbox.init()
	rt.workersWG.Add(1)
	go rt.worker()
	if rt.coalesce {
		rt.workersWG.Add(1)
		go rt.eventFlusher()
	}
	return rt
}

// Name returns the instance name (e.g. "prads1").
func (rt *Runtime) Name() string { return rt.name }

// Logic returns the hosted middlebox logic.
func (rt *Runtime) Logic() Logic { return rt.logic }

// HandlePacket implements netsim.Endpoint: it enqueues the packet for
// processing. If the queue is full the packet is dropped (and its borrowed
// reference released), as a loaded middlebox would; after Close the ring
// rejects the push the same way, so late link deliveries cannot strand a
// borrow.
func (rt *Runtime) HandlePacket(p *packet.Packet) {
	rt.pending.Add(1)
	if a := rt.tracer.Enabled(); a != nil {
		// Armed path: capture the flow before the push — once the ring
		// owns the packet the worker may process and recycle it
		// concurrently, so reading headers after a successful push races.
		key := p.Flow()
		if !rt.ring.tryPush(ingressItem{p: p}) {
			rt.droppedPackets.Add(1)
			rt.pending.Add(-1)
			a.Record(rt.name, obs.HopIngress, key, "drop:ring-full")
			p.Release()
			return
		}
		a.Record(rt.name, obs.HopIngress, key, "")
		return
	}
	if !rt.ring.tryPush(ingressItem{p: p}) {
		rt.droppedPackets.Add(1)
		rt.pending.Add(-1)
		p.Release()
	}
}

// SetForward replaces the emitted-packet sink.
func (rt *Runtime) SetForward(fn func(p *packet.Packet)) {
	rt.forwardMu.Lock()
	rt.forward = fn
	rt.forwardMu.Unlock()
}

// SetForwardBurst installs a burst-capable emitted-packet sink — the direct
// co-located handoff. On the burst path, a whole burst's emits are handed to
// fn in one call (packet references transfer with the call; fn must not
// retain the slice past its return). Runtimes on the per-packet ablation
// ignore it and use the SetForward sink, so callers wire both and the
// OPENMB_BURST switch picks the path.
func (rt *Runtime) SetForwardBurst(fn func(ps []*packet.Packet)) {
	rt.forwardMu.Lock()
	rt.forwardBurst = fn
	rt.forwardMu.Unlock()
}

func (rt *Runtime) forwardPacket(p *packet.Packet) {
	rt.emitted.Add(1)
	if a := rt.tracer.Enabled(); a != nil {
		// Post-rewrite flow: a NAT'd packet traces here under its
		// translated key. Captured before the sink call — the sink owns
		// the reference once handed over.
		a.Record(rt.name, obs.HopEgress, p.Flow(), "")
	}
	rt.forwardMu.RLock()
	fn := rt.forward
	rt.forwardMu.RUnlock()
	if fn == nil {
		// No sink: the emit is counted but the packet goes nowhere, so
		// its reference is released here.
		p.Release()
		return
	}
	fn(p)
}

// ingressBatch is how many queued packets the worker takes per ring
// synchronization.
const ingressBatch = 64

// worker drains the ingress ring in batches. Replayed packets (reprocess
// events) and live packets are serialized through the same loop, so logic
// observes a single-threaded packet stream, as the paper's per-Connection
// mutex achieves for Bro; replay items are drained first (another middlebox
// waits on them). The Context is reused across packets (the worker is the
// only caller of process, and Logic must not retain it past Process), so
// the steady-state path allocates nothing per packet, and under bursts one
// ring synchronization covers up to ingressBatch packets. After Close the
// ring's backlog is released undelivered.
func (rt *Runtime) worker() {
	defer rt.workersWG.Done()
	if rt.burst {
		rt.workerBurst()
		return
	}
	var ctx Context
	batch := make([]ingressItem, 0, ingressBatch)
	for {
		batch = rt.ring.popBatch(batch)
		if len(batch) == 0 {
			return
		}
		for i := range batch {
			it := batch[i]
			batch[i] = ingressItem{}
			select {
			case <-rt.stop:
				rt.pending.Add(-1)
				it.p.Release()
			default:
				rt.process(&ctx, it.p, it.replay, it.shared)
			}
		}
	}
}

// process runs one packet through the logic and then releases the runtime's
// borrowed reference (the logic takes its own via Context.Emit/Retain if it
// keeps or forwards the packet).
func (rt *Runtime) process(ctx *Context, p *packet.Packet, replay, replayShared bool) {
	rt.procSeq.Add(1)
	defer rt.procSeq.Add(1)
	defer rt.pending.Add(-1)
	defer p.Release()
	tr := rt.tracer.Enabled()
	if tr != nil {
		note := ""
		if replay {
			note = "replay"
		}
		tr.Record(rt.name, obs.HopDispatch, p.Flow(), note)
	}
	start := time.Now()
	*ctx = Context{rt: rt, pkt: p, Replay: replay, replayShared: replayShared}
	rt.logic.Process(ctx, p)
	if tr != nil {
		tr.RecordEmits(rt.name, p.Flow(), ctx.emitted)
	}
	elapsed := time.Since(start)
	if rt.activeOps.Load() > 0 {
		rt.latDuringOpNS.Add(int64(elapsed))
		rt.latDuringOpN.Add(1)
	} else {
		rt.latNormalNS.Add(int64(elapsed))
		rt.latNormalN.Add(1)
	}
	if replay {
		rt.replayed.Add(1)
		return
	}
	rt.processed.Add(1)
	rt.maybeRaiseReprocess(ctx, p)
}

// eventBufPool recycles the per-event packet encode buffer. A move window
// raises one reprocess event per in-transaction packet, and each used to
// pay a fresh p.Marshal(nil) allocation sized to the packet — the dominant
// per-event cost the Figure 9(c)/(d) experiments measure. sendEvent encodes
// the frame synchronously (both codecs copy the payload into their own
// write buffers before Send returns), so the buffer can be recycled the
// moment the event is sent.
var eventBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// maybeRaiseReprocess implements step 2 of §4.2.1: if the packet updated
// state that is part of an in-progress move or clone (decided at Touch time,
// under the logic's lock), send a reprocess event with a copy of the packet
// toward the controller. At most one event is raised per packet; the
// destination replays the whole packet, which renews every piece of state it
// touches. On the coalesced wire path the event is queued on the outbox —
// the packet's wire form marshals into the outbox arena, so the steady
// state allocates no per-event buffer — and the flusher frames it with its
// burst-mates; the ablation keeps the seed's synchronous frame-and-flush.
func (rt *Runtime) maybeRaiseReprocess(ctx *Context, p *packet.Packet) {
	if !ctx.raise {
		return
	}
	key := ctx.raiseKey
	if ctx.raiseShared {
		key = p.Flow()
	}
	rt.eventsRaised.Add(1)
	ev := &sbi.Event{
		Kind:   sbi.EventReprocess,
		Key:    key,
		Class:  ctx.raiseClass,
		Shared: ctx.raiseShared,
		Seq:    rt.eventSeq.Add(1),
	}
	if rt.coalesce {
		rt.queueEvent(ev, p)
		return
	}
	bp := eventBufPool.Get().(*[]byte)
	buf := p.Marshal((*bp)[:0])
	ev.Packet = buf
	rt.sendEvent(ev)
	// Keep whatever capacity Marshal grew the buffer to.
	*bp = buf[:0]
	eventBufPool.Put(bp)
}

func (rt *Runtime) raiseIntrospection(code string, key packet.FlowKey, values map[string]string) {
	if !rt.filterAllows(code, key) {
		return
	}
	rt.emitIntrospection(code, key, values)
}

// emitIntrospection builds and queues an introspection event whose filter
// check has already passed (the per-packet path checks filterAllows; the
// burst path checks a per-burst filter snapshot).
func (rt *Runtime) emitIntrospection(code string, key packet.FlowKey, values map[string]string) {
	rt.introRaised.Add(1)
	ev := &sbi.Event{
		Kind:   sbi.EventIntrospection,
		Key:    key,
		Code:   code,
		Values: values,
		Seq:    rt.eventSeq.Add(1),
	}
	if rt.coalesce {
		rt.queueEvent(ev, nil)
		return
	}
	rt.sendEvent(ev)
}

// eventSyncTimeout caps how long a mark-clearing op will wait for the
// worker's in-flight packet and the outbox drain. The cap only matters with
// pathological logic (a Process wedged mid-packet); in that case the op
// proceeds and accepts the pre-fix one-packet race rather than wedging the
// southbound serve loop.
const eventSyncTimeout = time.Second

// syncEvents publishes every reprocess event already decided against the
// marks as they stood before a clearing op: wait for the in-flight packet
// (whose Touch may have seen the old marks) to finish its raise step, then
// barrier the outbox so those events are flushed to the transport. The
// serve loop replies to the clearing op only after this returns, so the ack
// is serialized on the wire BEHIND every event the cleared marks produced —
// the controller routes them while the transaction is still attached, and
// the quiet-period delete can no longer outrun a slow consumer's backlog of
// marked packets (each of those events carries a packet whose source-side
// update the delete is about to destroy; losing one loses the packet).
func (rt *Runtime) syncEvents() {
	s := rt.procSeq.Load()
	if s&1 == 1 {
		deadline := time.Now().Add(eventSyncTimeout)
		for rt.procSeq.Load() == s && time.Now().Before(deadline) {
			time.Sleep(20 * time.Microsecond)
		}
	}
	if rt.coalesce {
		rt.outbox.barrier(eventSyncTimeout)
	}
	// The synchronous ablation path writes events to the conn inside the
	// worker's raise step; the parity wait above already covers it.
}

// queueEvent hands one raised event to the outbox flusher, keeping the
// Drain accounting exact.
func (rt *Runtime) queueEvent(ev *sbi.Event, p *packet.Packet) {
	rt.eventsQueued.Add(1)
	if !rt.outbox.add(ev, p) {
		rt.eventsQueued.Add(-1)
	}
}

// filterAllows evaluates introspection filters. Filters are evaluated in
// reverse registration order; the most recent matching filter wins. With no
// matching filter, events are disabled — the safe default against overload.
// The expiry clock is read once per call (not per filter): a long filter
// list otherwise pays one vDSO clock call per entry per event, all under
// filtersMu on the packet worker's critical path
// (BenchmarkFilterAllowsDeepStack guards the cost).
func (rt *Runtime) filterAllows(code string, key packet.FlowKey) bool {
	rt.filtersMu.Lock()
	defer rt.filtersMu.Unlock()
	if len(rt.filters) == 0 {
		return false
	}
	now := time.Now()
	for i := len(rt.filters) - 1; i >= 0; i-- {
		f := rt.filters[i]
		if !f.expires.IsZero() && now.After(f.expires) {
			continue
		}
		if len(f.codePrefix) <= len(code) && code[:len(f.codePrefix)] == f.codePrefix && f.match.MatchEither(key) {
			return f.enable
		}
	}
	return false
}

// sendEvent is the ablation's synchronous event path: one frame, one flush,
// per event (the flush because the ablation Conn flushes every Send).
func (rt *Runtime) sendEvent(ev *sbi.Event) {
	rt.connMu.RLock()
	conn := rt.conn
	rt.connMu.RUnlock()
	if conn == nil {
		return
	}
	// Send errors mean the controller is gone; the event is dropped, as
	// it would be on a failed TCP connection.
	_ = conn.Send(&sbi.Message{Type: sbi.MsgEvent, Event: ev})
}

// markKey records that per-flow state (key, class) is part of a transaction.
func (rt *Runtime) markKey(key packet.FlowKey, class state.Class) {
	rt.marksMu.Lock()
	rt.movedKeys[touchRef{key: key, class: class}] = true
	rt.marksMu.Unlock()
}

// markShared records that shared state of class is part of a transaction.
func (rt *Runtime) markShared(class state.Class) {
	rt.marksMu.Lock()
	rt.sharedMoved[class] = true
	rt.marksMu.Unlock()
}

// clearMarks removes transaction marks for keys matching m (either
// direction) in the given class, plus the shared mark if clearShared.
func (rt *Runtime) clearMarks(m packet.FieldMatch, class state.Class, clearShared bool) {
	rt.marksMu.Lock()
	for ref := range rt.movedKeys {
		if ref.class == class && m.MatchEither(ref.key) {
			delete(rt.movedKeys, ref)
		}
	}
	if clearShared {
		delete(rt.sharedMoved, class)
	}
	rt.marksMu.Unlock()
}

// MarkedKeys returns the number of per-flow keys currently in transactions.
func (rt *Runtime) MarkedKeys() int {
	rt.marksMu.Lock()
	defer rt.marksMu.Unlock()
	return len(rt.movedKeys)
}

func (rt *Runtime) writeLog(stream, line string) {
	rt.logMu.Lock()
	rt.logs[stream] = append(rt.logs[stream], line)
	rt.logMu.Unlock()
}

// Log returns a snapshot of the named log stream (e.g. "conn", "http").
func (rt *Runtime) Log(stream string) []string {
	rt.logMu.Lock()
	defer rt.logMu.Unlock()
	return append([]string(nil), rt.logs[stream]...)
}

// Drain blocks until the ingress queues are empty, no packet is being
// processed, and every raised event has been handed to the transport — or
// the timeout elapses. Returns true if drained.
func (rt *Runtime) Drain(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	idle := func() bool { return rt.pending.Load() == 0 && rt.eventsQueued.Load() == 0 }
	streak := 0
	for time.Now().Before(deadline) {
		if idle() {
			streak++
			if streak >= 3 {
				return true
			}
		} else {
			streak = 0
		}
		time.Sleep(200 * time.Microsecond)
	}
	return idle()
}

// Metrics is a snapshot of runtime counters.
type Metrics struct {
	Processed uint64
	Replayed  uint64
	// DroppedPackets and DroppedReplays count ingress-ring rejections
	// (full or closed): live deliveries shed like a loaded middlebox, and
	// replayed reprocess packets that could not be queued.
	DroppedPackets  uint64
	DroppedReplays  uint64
	EventsRaised    uint64
	IntroRaised     uint64
	Emitted         uint64
	SuppressedEmits uint64
	SuppressedLogs  uint64
	// Reconnects counts successful southbound session resumes.
	Reconnects uint64
	// LatencyNormal and LatencyDuringOp are mean per-packet processing
	// latencies outside and inside southbound-operation windows.
	LatencyNormal   time.Duration
	LatencyDuringOp time.Duration
}

// WireCounters returns the southbound connection's frame and flush
// counters (zero before Connect). The Sent/Flushes ratio is the coalesced
// wire path's effectiveness measure; eval's move-window experiments report
// it as frames/flush.
func (rt *Runtime) WireCounters() sbi.Counters {
	rt.connMu.RLock()
	conn := rt.conn
	rt.connMu.RUnlock()
	if conn == nil {
		return sbi.Counters{}
	}
	return conn.Counters()
}

// RingStats is a consistent snapshot of the ingress ring for load sampling:
// queue depths and drop counters that belong to the same instant.
type RingStats struct {
	// Live and Replay are the queued (not yet dispatched) packet counts;
	// Capacity is each queue's slot count.
	Live, Replay, Capacity int
	// DroppedPackets and DroppedReplays are the cumulative ring-full sheds,
	// coherent with the depths above: no shed happened between the depth
	// read and these counter reads.
	DroppedPackets, DroppedReplays uint64
}

// ringStatsAttempts bounds the RingStats stabilization loop; each retry is a
// handful of atomic loads, so a few attempts ride out even a shed storm.
const ringStatsAttempts = 4

// RingStats returns a tear-proof ingress snapshot. The depths come from one
// lock acquisition on the ring (a packet mid-transfer can never be counted
// twice or not at all), and the drop counters are read before and after the
// depth until both reads agree — so a concurrent shed cannot produce a
// snapshot whose depth and drop count belong to different instants. The
// /metrics scrape contract explicitly allows cross-series tearing; a control
// loop making scale decisions from (depth, drops) deltas cannot, which is
// why it samples here instead of scraping.
func (rt *Runtime) RingStats() RingStats {
	for attempt := 0; ; attempt++ {
		d1, r1 := rt.droppedPackets.Load(), rt.droppedReplays.Load()
		live, replay, capacity := rt.ring.stats()
		d2, r2 := rt.droppedPackets.Load(), rt.droppedReplays.Load()
		if (d1 == d2 && r1 == r2) || attempt >= ringStatsAttempts {
			return RingStats{
				Live: live, Replay: replay, Capacity: capacity,
				DroppedPackets: d2, DroppedReplays: r2,
			}
		}
	}
}

// Metrics returns a snapshot of the runtime's counters.
func (rt *Runtime) Metrics() Metrics {
	m := Metrics{
		Processed:       rt.processed.Load(),
		Replayed:        rt.replayed.Load(),
		DroppedPackets:  rt.droppedPackets.Load(),
		DroppedReplays:  rt.droppedReplays.Load(),
		EventsRaised:    rt.eventsRaised.Load(),
		IntroRaised:     rt.introRaised.Load(),
		Emitted:         rt.emitted.Load(),
		SuppressedEmits: rt.suppressedEmits.Load(),
		SuppressedLogs:  rt.suppressedLogs.Load(),
		Reconnects:      rt.reconnects.Load(),
	}
	if n := rt.latNormalN.Load(); n > 0 {
		m.LatencyNormal = time.Duration(rt.latNormalNS.Load() / n)
	}
	if n := rt.latDuringOpN.Load(); n > 0 {
		m.LatencyDuringOp = time.Duration(rt.latDuringOpNS.Load() / n)
	}
	return m
}

// ArmTrace arms the runtime's filtered flow tracer: capture up to
// spec.Budget per-hop records (ingress ring, dispatch, app verdict, egress)
// of packets matching spec.Match in either direction. The predicate is
// compiled once here; re-arming replaces the previous session.
func (rt *Runtime) ArmTrace(spec obs.TraceSpec) { rt.tracer.Arm(spec) }

// DisarmTrace stops capturing; records stay retrievable via TraceRecords.
func (rt *Runtime) DisarmTrace() { rt.tracer.Disarm() }

// TraceArmed reports whether the flow tracer is currently capturing.
func (rt *Runtime) TraceArmed() bool { return rt.tracer.IsArmed() }

// TraceRecords returns the newest trace session's captured records.
func (rt *Runtime) TraceRecords() []obs.TraceRecord { return rt.tracer.Records() }

// Collect implements obs.Collector: the runtime's counters, its southbound
// wire counters, and ingress-queue depth, labeled by instance and kind.
func (rt *Runtime) Collect(e *obs.Emitter) {
	m := rt.Metrics()
	mb, kind := rt.name, rt.logic.Kind()
	e.Counter("openmb_mb_packets_processed_total", "Live packets run through the middlebox logic.", m.Processed, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_packets_replayed_total", "Reprocess-event packets replayed through the logic.", m.Replayed, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_ring_dropped_packets_total", "Live packets shed by a full or closed ingress ring.", m.DroppedPackets, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_ring_dropped_replays_total", "Replay packets rejected by the ingress ring.", m.DroppedReplays, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_events_raised_total", "Reprocess events raised toward the controller.", m.EventsRaised, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_intro_events_raised_total", "Introspection events raised toward the controller.", m.IntroRaised, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_packets_emitted_total", "Packets the logic emitted toward the forward sink.", m.Emitted, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_suppressed_emits_total", "Emits suppressed during state operations.", m.SuppressedEmits, "mb", mb, "kind", kind)
	e.Counter("openmb_mb_reconnects_total", "Successful southbound session resumes.", m.Reconnects, "mb", mb, "kind", kind)
	e.Gauge("openmb_mb_pending_packets", "Packets queued or in process on the ingress path.", float64(rt.pending.Load()), "mb", mb, "kind", kind)
	rs := rt.RingStats()
	e.Gauge("openmb_mb_ring_depth", "Packets queued in the ingress ring (live + replay).", float64(rs.Live+rs.Replay), "mb", mb, "kind", kind)
	wc := rt.WireCounters()
	e.Counter("openmb_conn_sent_frames_total", "SBI frames sent on the southbound connection.", wc.Sent, "conn", mb, "side", "mb")
	e.Counter("openmb_conn_received_frames_total", "SBI frames received on the southbound connection.", wc.Received, "conn", mb, "side", "mb")
	e.Counter("openmb_conn_flushes_total", "Transport flushes on the southbound connection.", wc.Flushes, "conn", mb, "side", "mb")
}

// Close stops the packet worker and closes the controller connection.
// Packets still queued are released undelivered: closing the ring wakes the
// worker, which releases the backlog (stop is already closed), and a
// delivery racing Close either lands in the ring before that drain or has
// its push rejected by the closed ring and releases its own borrow in
// HandlePacket — no packet is stranded either way.
func (rt *Runtime) Close() {
	rt.stopOnce.Do(func() {
		close(rt.stop)
		rt.ring.close()
		rt.outbox.close()
		rt.connMu.Lock()
		if rt.conn != nil {
			rt.conn.Close()
		}
		rt.connMu.Unlock()
	})
	rt.workersWG.Wait()
	// Bounded wait for in-flight HandlePacket racers: they incremented
	// pending before their push was rejected and release their own borrow
	// right after.
	deadline := time.Now().Add(time.Second)
	for rt.pending.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Microsecond)
	}
}
