package mbox

import (
	"openmb/internal/packet"
	"openmb/internal/state"
)

// Context carries per-packet processing state between the runtime and the
// middlebox logic. The logic reports which pieces of state it updated
// (Touch/TouchShared) and performs external side effects through it
// (Emit/Log); during replay of a reprocess event the runtime suppresses the
// side effects while still applying state updates — atomicity requirement
// (ii) of §4.2.1.
type Context struct {
	rt *Runtime
	// pkt is the packet being processed. The runtime owns its borrowed
	// reference; Emit of this exact packet takes an extra reference so the
	// downstream hand-off and the runtime's release stay balanced.
	pkt *packet.Packet
	// Replay is true when the packet is being re-processed from an event
	// raised by a peer middlebox. Logic may consult it for rare cases
	// (e.g. suppressing retransmission heuristics) but normally need not.
	Replay bool
	// replayShared records whether the originating transaction covered
	// shared state; see SkipShared and SkipPerflow.
	replayShared bool

	// raise records whether a reprocess event must be raised for this
	// packet, and for which state. The decision is made inside Touch,
	// which the logic calls while holding its own lock — making the
	// moved-mark check atomic with the state update it reports.
	raise       bool
	raiseKey    packet.FlowKey
	raiseClass  state.Class
	raiseShared bool
	emitted     int

	// burst is set on contexts handed to the vectorized burst path: Emit
	// buffers into it (one downstream hand-off per burst instead of one
	// per packet) and introspection filters are evaluated against a
	// once-per-burst snapshot. Nil on the per-packet path.
	burst *burstState
}

type touchRef struct {
	key   packet.FlowKey
	class state.Class
}

// Touch records that the logic created or updated the per-flow state
// identified by key (at the middlebox's own keying granularity) of the given
// class. Call it while holding the lock that serializes this state against
// export: if the state is currently part of a move or clone transaction, the
// runtime will raise a reprocess event after the packet completes.
func (c *Context) Touch(class state.Class, key packet.FlowKey) {
	if c.Replay || c.raise {
		return
	}
	c.rt.marksMu.Lock()
	moved := c.rt.movedKeys[touchRef{key: key, class: class}]
	c.rt.marksMu.Unlock()
	if moved {
		c.raise = true
		c.raiseKey = key
		c.raiseClass = class
		c.raiseShared = false
	}
}

// TouchShared records that the logic updated shared state of the given
// class, under the same locking discipline as Touch.
func (c *Context) TouchShared(class state.Class) {
	if c.Replay || c.raise {
		return
	}
	c.rt.marksMu.Lock()
	moved := c.rt.sharedMoved[class]
	c.rt.marksMu.Unlock()
	if moved {
		c.raise = true
		c.raiseClass = class
		c.raiseShared = true
	}
}

// Emit sends a packet onward into the network — an external side effect,
// suppressed during replay. Emit consumes one reference on p: emit a packet
// the logic created (e.g. a Clone it rewrote) to hand it off entirely, or
// emit the packet currently being processed to pass it through (Emit takes
// the downstream's reference itself; the runtime still releases its borrow
// after Process returns).
func (c *Context) Emit(p *packet.Packet) {
	c.emitted++
	if c.Replay {
		c.rt.suppressedEmits.Add(1)
		if p != c.pkt {
			p.Release()
		}
		return
	}
	if p == c.pkt {
		p.Retain()
	}
	if c.burst != nil {
		// Buffered: the runtime flushes the whole burst's emits downstream
		// in one hand-off after ProcessBurst returns. This is why Emit is
		// safe to call under the logic's lock on the burst path — nothing
		// leaves the runtime here.
		c.burst.emits = append(c.burst.emits, p)
		return
	}
	c.rt.forwardPacket(p)
}

// Log appends a line to the middlebox's log (conn.log / http.log style) —
// an external side effect, suppressed during replay.
func (c *Context) Log(stream, line string) {
	if c.Replay {
		c.rt.suppressedLogs.Add(1)
		return
	}
	c.rt.writeLog(stream, line)
}

// SkipShared reports whether the logic must skip updates to SHARED state
// for this packet. True during replay of a per-flow transaction's event:
// the packet was already counted in the source's shared state, which is not
// part of the transaction — updating it here would double-report (§4.1.3).
func (c *Context) SkipShared() bool { return c.Replay && !c.replayShared }

// SkipPerflow reports whether the logic must skip updates to PER-FLOW state
// for this packet. True during replay of a shared transaction's event (e.g.
// an RE cache clone): the flow itself still lives at the source, and
// creating per-flow state here would fabricate flows that were never
// routed to this instance.
func (c *Context) SkipPerflow() bool { return c.Replay && c.replayShared }

// NewBenchContext returns a Context backed by a detached runtime, for
// benchmarking or fuzzing Logic implementations directly, without a packet
// loop or controller connection. Side effects are recorded but go nowhere.
func NewBenchContext() *Context {
	rt := &Runtime{
		movedKeys:   map[touchRef]bool{},
		sharedMoved: map[state.Class]bool{},
		logs:        map[string][]string{},
	}
	return &Context{rt: rt}
}

// RaiseIntrospection raises an introspection event (§4.2.2) announcing that
// the middlebox created or updated state identified by key. code is the
// MB-specific event code (e.g. "nat.mapping.created"); values carry optional
// MB-specific details. The event is delivered only if a matching filter has
// been enabled, and never during replay.
func (c *Context) RaiseIntrospection(code string, key packet.FlowKey, values map[string]string) {
	if c.Replay {
		return
	}
	if c.burst != nil {
		// Evaluate against the burst's filter snapshot: one filtersMu
		// acquisition and one clock read per burst, not per event.
		if !c.rt.filterAllowsBurst(c.burst, code, key) {
			return
		}
		c.rt.emitIntrospection(code, key, values)
		return
	}
	c.rt.raiseIntrospection(code, key, values)
}
