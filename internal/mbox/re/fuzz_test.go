package re

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestDecodeArbitraryBytesNeverPanics feeds random byte strings (with and
// without the RE magic) through the decoder: malformed encodings must
// return errors, never panic or read out of bounds.
func TestDecodeArbitraryBytesNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n)%2048)
		r.Read(b)
		cache := NewCache(4096)
		// Raw garbage: must be rejected as not encoded.
		if _, _, err := decode(b, cache); err == nil && !IsEncoded(b) {
			return false
		}
		// Garbage behind a valid magic: parse errors or zero-filled
		// regions, never a panic.
		withMagic := append(append([]byte(nil), encMagic[:]...), b...)
		_, _, _ = decode(withMagic, cache)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalCacheArbitraryBytesNeverPanics does the same for the cache
// wire format (what a corrupted shared-state blob would look like).
func TestUnmarshalCacheArbitraryBytesNeverPanics(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		r := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n)%4096)
		r.Read(b)
		_, _ = UnmarshalCache(b)
		// Also corrupt a VALID blob at a random position.
		c := NewCache(2048)
		c.Insert(randBytes(r, 300))
		blob := c.Marshal()
		if len(blob) > 0 {
			blob[r.Intn(len(blob))] ^= 0xFF
			_, _ = UnmarshalCache(blob)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMergeFromArbitraryBytes verifies merge rejects garbage without
// corrupting the local cache.
func TestMergeFromArbitraryBytes(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	c := NewCache(4096)
	c.Insert(randBytes(r, 500))
	posBefore := c.InsertPos()
	for i := 0; i < 100; i++ {
		garbage := randBytes(r, r.Intn(512))
		if err := c.MergeFrom(garbage); err == nil {
			t.Fatal("garbage merge accepted")
		}
	}
	if c.InsertPos() != posBefore {
		t.Fatal("failed merges mutated the cache")
	}
}
