package re

import (
	"encoding/binary"
	"fmt"
)

// Encoded payload wire format: a 4-byte magic, then tokens.
//
//	literal: 0x00, u16 length, bytes
//	match:   0x01, u64 cache position, u16 length, u32 region checksum
//
// The match token's position refers to the encoder's cache; the decoder
// resolves it against its own cache, which is position-synchronized. The
// checksum guards against silent desynchronization: a failed check counts
// the region as undecodable (Table 3's metric).

var encMagic = [4]byte{'R', 'E', '0', '1'}

const (
	tokLiteral = 0x00
	tokMatch   = 0x01
	// minMatch is the smallest region worth a match token (the token
	// itself costs 15 bytes).
	minMatch = fpWindow
)

// IsEncoded reports whether a payload carries the RE encoding.
func IsEncoded(payload []byte) bool {
	return len(payload) >= 4 && [4]byte(payload[:4]) == encMagic
}

// encode compresses payload against the cache, returning the encoded bytes,
// and then inserts the original payload into insertInto (the encoding cache
// plus any mirrors). Payloads shorter than a window are passed through as a
// single literal.
func encode(payload []byte, cache *Cache, insertInto []*Cache) ([]byte, encodeStats) {
	var stats encodeStats
	out := make([]byte, 0, len(payload)+8)
	out = append(out, encMagic[:]...)

	lastEmit := 0
	emitLiteral := func(upto int) {
		for lastEmit < upto {
			n := upto - lastEmit
			if n > 65535 {
				n = 65535
			}
			out = append(out, tokLiteral)
			out = binary.BigEndian.AppendUint16(out, uint16(n))
			out = append(out, payload[lastEmit:lastEmit+n]...)
			stats.LiteralBytes += uint64(n)
			lastEmit += n
		}
	}

	if len(payload) >= fpWindow {
		h := windowHash(payload)
		i := 0
		for {
			if i >= lastEmit && sampled(h) {
				if pos, ok := cache.lookup(h, payload[i:i+fpWindow]); ok {
					start, end, cstart := extendMatch(payload, i, pos, cache, lastEmit)
					if end-start >= minMatch {
						emitLiteral(start)
						region := cache.read(cstart, end-start)
						out = append(out, tokMatch)
						out = binary.BigEndian.AppendUint64(out, cstart)
						out = binary.BigEndian.AppendUint16(out, uint16(end-start))
						out = binary.BigEndian.AppendUint32(out, regionChecksum(region))
						stats.MatchBytes += uint64(end - start)
						stats.Matches++
						lastEmit = end
						if end+fpWindow > len(payload) {
							break
						}
						i = end
						h = windowHash(payload[i:])
						continue
					}
				}
			}
			if i+fpWindow >= len(payload) {
				break
			}
			h = roll(h, payload[i], payload[i+fpWindow])
			i++
		}
	}
	emitLiteral(len(payload))

	for _, c := range insertInto {
		c.Insert(payload)
	}
	return out, stats
}

// extendMatch grows a window match [i, i+fpWindow) vs cache position pos in
// both directions, bounded by the payload, the emitted prefix, and cache
// residency. It returns the payload range [start, end) and the cache start.
func extendMatch(payload []byte, i int, pos uint64, cache *Cache, lowBound int) (start, end int, cacheStart uint64) {
	start, end = i, i+fpWindow
	cacheStart = pos
	// Extend left.
	for start > lowBound && cacheStart > 0 && cache.resident(cacheStart-1, 1) &&
		cache.byteAt(cacheStart-1) == payload[start-1] {
		start--
		cacheStart--
	}
	// Extend right.
	cacheEnd := pos + fpWindow
	for end < len(payload) && end-start < 65535 && cache.resident(cacheEnd, 1) &&
		cache.byteAt(cacheEnd) == payload[end] {
		end++
		cacheEnd++
	}
	return start, end, cacheStart
}

type encodeStats struct {
	LiteralBytes uint64
	MatchBytes   uint64
	Matches      uint64
}

// decode reconstructs the original payload from encoded bytes against the
// decoder's cache. Match regions whose checksum fails (or that are not
// resident) are zero-filled and counted as undecodable. The reconstructed
// payload is then inserted into the cache, mirroring the encoder's insert.
func decode(encoded []byte, cache *Cache) ([]byte, decodeStats, error) {
	var stats decodeStats
	if !IsEncoded(encoded) {
		return nil, stats, fmt.Errorf("re: payload is not RE-encoded")
	}
	b := encoded[4:]
	var out []byte
	for len(b) > 0 {
		switch b[0] {
		case tokLiteral:
			if len(b) < 3 {
				return nil, stats, fmt.Errorf("re: truncated literal token")
			}
			n := int(binary.BigEndian.Uint16(b[1:3]))
			if len(b) < 3+n {
				return nil, stats, fmt.Errorf("re: truncated literal body")
			}
			out = append(out, b[3:3+n]...)
			stats.LiteralBytes += uint64(n)
			b = b[3+n:]
		case tokMatch:
			if len(b) < 15 {
				return nil, stats, fmt.Errorf("re: truncated match token")
			}
			pos := binary.BigEndian.Uint64(b[1:9])
			n := int(binary.BigEndian.Uint16(b[9:11]))
			sum := binary.BigEndian.Uint32(b[11:15])
			b = b[15:]
			if cache.resident(pos, n) {
				region := cache.read(pos, n)
				if regionChecksum(region) == sum {
					out = append(out, region...)
					stats.MatchBytes += uint64(n)
					stats.Matches++
					break
				}
			}
			// Desynchronized or evicted: the region cannot be
			// recovered (§8.1.2: "none of the encoded bytes can be
			// decoded").
			out = append(out, make([]byte, n)...)
			stats.UndecodableBytes += uint64(n)
			stats.Failures++
		default:
			return nil, stats, fmt.Errorf("re: unknown token 0x%02x", b[0])
		}
	}
	cache.Insert(out)
	return out, stats, nil
}

type decodeStats struct {
	LiteralBytes     uint64
	MatchBytes       uint64
	UndecodableBytes uint64
	Matches          uint64
	Failures         uint64
}
