// Package re implements a SmartRE-like redundancy elimination encoder and
// decoder pair (§6.1, §7 of the paper). The encoder replaces redundant
// payload regions with small shims referencing a packet cache; the decoder
// reconstructs payloads from its own, position-synchronized cache.
//
// Both middleboxes rely solely on SHARED SUPPORTING state (the cache), the
// state class whose clone/merge semantics motivate cloneSupport: a migrated
// decoder needs the cache contents to decode in-flight traffic, and the
// encoder maintains one cache per decoder ("We assume the encoder maintains
// a separate packet cache and fingerprint table for each decoder").
//
// Configuration follows the paper's migration recipe (§6.1): writing
// "NumCaches" [n] makes the encoder clone its cache for a new decoder and
// mirror inserts into all caches; writing "CacheFlows" [prefix0 prefix1 ...]
// assigns destination prefixes to caches and stops mirroring.
package re

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Middlebox type names.
const (
	EncoderKind = "re-encoder"
	DecoderKind = "re-decoder"
)

var (
	_ mbox.BurstLogic = (*Encoder)(nil)
	_ mbox.BurstLogic = (*Decoder)(nil)
)

// DefaultCacheSize is the default ring capacity (the paper uses 500 MB;
// experiments here scale it down).
const DefaultCacheSize = 1 << 22 // 4 MiB

// reportStats is the shared reporting state of either end.
type reportStats struct {
	InputBytes  uint64
	OutputBytes uint64
	MatchBytes  uint64
	Matches     uint64
	// Decoder only.
	UndecodableBytes uint64
	Failures         uint64
}

const reportWireSize = 6 * 8

func (r *reportStats) marshal() []byte {
	b := make([]byte, reportWireSize)
	for i, v := range []uint64{r.InputBytes, r.OutputBytes, r.MatchBytes, r.Matches, r.UndecodableBytes, r.Failures} {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func (r *reportStats) unmarshalAdd(b []byte) error {
	if len(b) < reportWireSize {
		return fmt.Errorf("re: short report blob (%d bytes)", len(b))
	}
	r.InputBytes += binary.BigEndian.Uint64(b[0:])
	r.OutputBytes += binary.BigEndian.Uint64(b[8:])
	r.MatchBytes += binary.BigEndian.Uint64(b[16:])
	r.Matches += binary.BigEndian.Uint64(b[24:])
	r.UndecodableBytes += binary.BigEndian.Uint64(b[32:])
	r.Failures += binary.BigEndian.Uint64(b[40:])
	return nil
}

// Encoder is the RE encoder middlebox logic.
type Encoder struct {
	mu       sync.Mutex
	caches   []*Cache
	prefixes []netip.Prefix // prefixes[i] routes to caches[i]; empty = all to 0
	mirror   bool
	report   reportStats
	config   *state.ConfigTree
	dirty    bool
	capacity int
}

// NewEncoder returns an encoder with one cache of the given capacity
// (0 means DefaultCacheSize).
func NewEncoder(capacity int) *Encoder {
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	e := &Encoder{
		caches:   []*Cache{NewCache(capacity)},
		config:   state.NewConfigTree(),
		capacity: capacity,
	}
	if err := e.config.Set("NumCaches", []string{"1"}); err != nil {
		panic("re: default config: " + err.Error())
	}
	e.config.Watch(func(string) {
		e.mu.Lock()
		e.dirty = true
		e.mu.Unlock()
	})
	return e
}

// Kind implements mbox.Logic.
func (e *Encoder) Kind() string { return EncoderKind }

// applyConfigLocked folds configuration changes into encoder state.
func (e *Encoder) applyConfigLocked() {
	e.dirty = false
	if v, err := e.config.Get("NumCaches"); err == nil && len(v) == 1 {
		var n int
		if _, err := fmt.Sscanf(v[0], "%d", &n); err == nil && n > len(e.caches) && n <= 64 {
			// Clone the primary cache for each new decoder and
			// mirror inserts until CacheFlows splits traffic
			// ("Internally, the encoder will clone its original
			// cache to create a new second cache", §6.1).
			for len(e.caches) < n {
				e.caches = append(e.caches, e.caches[0].Clone())
			}
			e.mirror = true
		}
	}
	if v, err := e.config.Get("CacheFlows"); err == nil && len(v) > 0 {
		prefixes := make([]netip.Prefix, 0, len(v))
		ok := true
		for _, s := range v {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				ok = false
				break
			}
			prefixes = append(prefixes, p)
		}
		if ok {
			e.prefixes = prefixes
			e.mirror = false
		}
	}
}

// cacheFor selects the cache for a destination address.
func (e *Encoder) cacheFor(dst netip.Addr) *Cache {
	for i, p := range e.prefixes {
		if i < len(e.caches) && p.Contains(dst) {
			return e.caches[i]
		}
	}
	return e.caches[0]
}

// Process implements mbox.Logic: encode the payload against the cache for
// the packet's destination and forward the encoded packet.
func (e *Encoder) Process(ctx *mbox.Context, p *packet.Packet) {
	if len(p.Payload) == 0 || ctx.SkipShared() {
		ctx.Emit(p)
		return
	}
	e.mu.Lock()
	if e.dirty {
		e.applyConfigLocked()
	}
	cache := e.cacheFor(p.DstIP)
	insertInto := []*Cache{cache}
	if e.mirror {
		insertInto = e.caches
	}
	encoded, st := encode(p.Payload, cache, insertInto)
	e.report.InputBytes += uint64(len(p.Payload))
	e.report.OutputBytes += uint64(len(encoded))
	e.report.MatchBytes += st.MatchBytes
	e.report.Matches += st.Matches
	ctx.TouchShared(state.Supporting)
	ctx.TouchShared(state.Reporting)
	e.mu.Unlock()

	out := p.Clone()
	out.Payload = encoded
	ctx.Emit(out)
}

// ProcessBurst implements mbox.BurstLogic: one mutex acquisition and at most
// one config re-parse cover the whole burst, and the single-cache insert
// list is a reused stack buffer instead of a fresh slice per packet. Emits
// are buffered by the burst context, so they are appended in-loop under the
// lock in packet order.
func (e *Encoder) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	var single [1]*Cache
	e.mu.Lock()
	if e.dirty {
		e.applyConfigLocked()
	}
	for i, p := range pkts {
		ctx := &ctxs[i]
		if len(p.Payload) == 0 || ctx.SkipShared() {
			ctx.Emit(p)
			continue
		}
		cache := e.cacheFor(p.DstIP)
		insertInto := e.caches
		if !e.mirror {
			single[0] = cache
			insertInto = single[:]
		}
		encoded, st := encode(p.Payload, cache, insertInto)
		e.report.InputBytes += uint64(len(p.Payload))
		e.report.OutputBytes += uint64(len(encoded))
		e.report.MatchBytes += st.MatchBytes
		e.report.Matches += st.Matches
		ctx.TouchShared(state.Supporting)
		ctx.TouchShared(state.Reporting)
		out := p.Clone()
		out.Payload = encoded
		ctx.Emit(out)
	}
	e.mu.Unlock()
}

// GetPerflow implements mbox.Logic: RE has no per-flow state.
func (e *Encoder) GetPerflow(state.Class, packet.FieldMatch, func(packet.FlowKey, func(func()) ([]byte, error)) error) error {
	return nil
}

// PutPerflow implements mbox.Logic.
func (e *Encoder) PutPerflow(class state.Class, c state.Chunk) error {
	return fmt.Errorf("re: encoder has no per-flow state")
}

// DelPerflow implements mbox.Logic.
func (e *Encoder) DelPerflow(state.Class, packet.FieldMatch) (int, error) { return 0, nil }

// GetShared implements mbox.Logic: all caches (supporting) or the
// counters (reporting).
func (e *Encoder) GetShared(class state.Class, mark func()) ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	mark()
	switch class {
	case state.Supporting:
		out := binary.BigEndian.AppendUint16(nil, uint16(len(e.caches)))
		for _, c := range e.caches {
			blob := c.Marshal()
			out = binary.BigEndian.AppendUint32(out, uint32(len(blob)))
			out = append(out, blob...)
		}
		return out, nil
	case state.Reporting:
		return e.report.marshal(), nil
	}
	return nil, mbox.ErrNoSharedState
}

// PutShared implements mbox.Logic: supporting state replaces the cache set;
// reporting counters sum.
func (e *Encoder) PutShared(class state.Class, blob []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch class {
	case state.Supporting:
		if len(blob) < 2 {
			return fmt.Errorf("re: short encoder cache blob")
		}
		n := int(binary.BigEndian.Uint16(blob[:2]))
		rest := blob[2:]
		caches := make([]*Cache, 0, n)
		for i := 0; i < n; i++ {
			if len(rest) < 4 {
				return fmt.Errorf("re: truncated encoder cache set")
			}
			sz := binary.BigEndian.Uint32(rest[:4])
			rest = rest[4:]
			if uint32(len(rest)) < sz {
				return fmt.Errorf("re: truncated encoder cache %d", i)
			}
			c, err := UnmarshalCache(rest[:sz])
			if err != nil {
				return err
			}
			caches = append(caches, c)
			rest = rest[sz:]
		}
		if len(caches) == 0 {
			return fmt.Errorf("re: empty encoder cache set")
		}
		e.caches = caches
		return nil
	case state.Reporting:
		return e.report.unmarshalAdd(blob)
	}
	return mbox.ErrNoSharedState
}

// Stats implements mbox.Logic.
func (e *Encoder) Stats(packet.FieldMatch) sbi.StatsReply {
	e.mu.Lock()
	defer e.mu.Unlock()
	var s sbi.StatsReply
	for _, c := range e.caches {
		s.SupportSharedBytes += c.Capacity() + c.FPCount()*20
	}
	s.ReportSharedBytes = reportWireSize
	return s
}

// Config implements mbox.Logic.
func (e *Encoder) Config() *state.ConfigTree { return e.config }

// Report returns a copy of the encoder's counters.
func (e *Encoder) Report() (input, output, matchBytes, matches uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.report.InputBytes, e.report.OutputBytes, e.report.MatchBytes, e.report.Matches
}

// CacheCount returns the number of per-decoder caches.
func (e *Encoder) CacheCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dirty {
		e.applyConfigLocked()
	}
	return len(e.caches)
}

// Decoder is the RE decoder middlebox logic.
type Decoder struct {
	mu     sync.Mutex
	cache  *Cache
	report reportStats
	config *state.ConfigTree
}

// NewDecoder returns a decoder with a cache of the given capacity
// (0 means DefaultCacheSize).
func NewDecoder(capacity int) *Decoder {
	if capacity == 0 {
		capacity = DefaultCacheSize
	}
	d := &Decoder{cache: NewCache(capacity), config: state.NewConfigTree()}
	if err := d.config.Set("CacheSize", []string{fmt.Sprint(capacity)}); err != nil {
		panic("re: default config: " + err.Error())
	}
	return d
}

// Kind implements mbox.Logic.
func (d *Decoder) Kind() string { return DecoderKind }

// Process implements mbox.Logic: reconstruct encoded payloads and forward
// the original packet. Non-encoded packets pass through.
func (d *Decoder) Process(ctx *mbox.Context, p *packet.Packet) {
	if !IsEncoded(p.Payload) {
		ctx.Emit(p)
		return
	}
	if ctx.SkipShared() {
		return
	}
	d.mu.Lock()
	payload, st, err := decode(p.Payload, d.cache)
	d.report.InputBytes += uint64(len(p.Payload))
	d.report.OutputBytes += uint64(len(payload))
	d.report.MatchBytes += st.MatchBytes
	d.report.Matches += st.Matches
	d.report.UndecodableBytes += st.UndecodableBytes
	d.report.Failures += st.Failures
	ctx.TouchShared(state.Supporting)
	ctx.TouchShared(state.Reporting)
	d.mu.Unlock()
	if err != nil {
		return // malformed encoding: drop
	}
	out := p.Clone()
	out.Payload = payload
	ctx.Emit(out)
}

// ProcessBurst implements mbox.BurstLogic: one mutex acquisition covers the
// whole burst. Emits are buffered by the burst context, so they are appended
// in-loop under the lock in packet order.
func (d *Decoder) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	d.mu.Lock()
	for i, p := range pkts {
		ctx := &ctxs[i]
		if !IsEncoded(p.Payload) {
			ctx.Emit(p)
			continue
		}
		if ctx.SkipShared() {
			continue
		}
		payload, st, err := decode(p.Payload, d.cache)
		d.report.InputBytes += uint64(len(p.Payload))
		d.report.OutputBytes += uint64(len(payload))
		d.report.MatchBytes += st.MatchBytes
		d.report.Matches += st.Matches
		d.report.UndecodableBytes += st.UndecodableBytes
		d.report.Failures += st.Failures
		ctx.TouchShared(state.Supporting)
		ctx.TouchShared(state.Reporting)
		if err != nil {
			continue // malformed encoding: drop
		}
		out := p.Clone()
		out.Payload = payload
		ctx.Emit(out)
	}
	d.mu.Unlock()
}

// GetPerflow implements mbox.Logic: RE has no per-flow state.
func (d *Decoder) GetPerflow(state.Class, packet.FieldMatch, func(packet.FlowKey, func(func()) ([]byte, error)) error) error {
	return nil
}

// PutPerflow implements mbox.Logic.
func (d *Decoder) PutPerflow(class state.Class, c state.Chunk) error {
	return fmt.Errorf("re: decoder has no per-flow state")
}

// DelPerflow implements mbox.Logic.
func (d *Decoder) DelPerflow(state.Class, packet.FieldMatch) (int, error) { return 0, nil }

// GetShared implements mbox.Logic.
func (d *Decoder) GetShared(class state.Class, mark func()) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	mark()
	switch class {
	case state.Supporting:
		return d.cache.Marshal(), nil
	case state.Reporting:
		return d.report.marshal(), nil
	}
	return nil, mbox.ErrNoSharedState
}

// PutShared implements mbox.Logic: an empty cache adopts the incoming one
// (clone); a non-empty cache merges by hit count (consolidation).
func (d *Decoder) PutShared(class state.Class, blob []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch class {
	case state.Supporting:
		return d.cache.MergeFrom(blob)
	case state.Reporting:
		return d.report.unmarshalAdd(blob)
	}
	return mbox.ErrNoSharedState
}

// Stats implements mbox.Logic.
func (d *Decoder) Stats(packet.FieldMatch) sbi.StatsReply {
	d.mu.Lock()
	defer d.mu.Unlock()
	return sbi.StatsReply{
		SupportSharedBytes: d.cache.Capacity() + d.cache.FPCount()*20,
		ReportSharedBytes:  reportWireSize,
	}
}

// Config implements mbox.Logic.
func (d *Decoder) Config() *state.ConfigTree { return d.config }

// Report returns a copy of the decoder's counters.
func (d *Decoder) Report() (decodedMatch, undecodable, failures uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.report.MatchBytes, d.report.UndecodableBytes, d.report.Failures
}

// CachePos returns the decoder cache's absolute insert position (for
// synchronization checks in tests).
func (d *Decoder) CachePos() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cache.InsertPos()
}
