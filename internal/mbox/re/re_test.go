package re

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
	"openmb/internal/trace"
)

func payloadPkt(dst string, payload []byte) *packet.Packet {
	return &packet.Packet{
		SrcIP: netip.MustParseAddr("172.16.0.1"), DstIP: netip.MustParseAddr(dst),
		Proto: packet.ProtoTCP, SrcPort: 4000, DstPort: 80,
		Payload: payload,
	}
}

func randBytes(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	r.Read(b)
	return b
}

func TestEncodeDecodeRoundTripFresh(t *testing.T) {
	enc := NewCache(1 << 16)
	dec := NewCache(1 << 16)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		payload := randBytes(r, 200+r.Intn(800))
		encoded, _ := encode(payload, enc, []*Cache{enc})
		got, st, err := decode(encoded, dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch at packet %d", i)
		}
		if st.UndecodableBytes != 0 {
			t.Fatalf("undecodable bytes on synced caches: %d", st.UndecodableBytes)
		}
	}
	if enc.InsertPos() != dec.InsertPos() {
		t.Fatalf("cache positions diverged: %d vs %d", enc.InsertPos(), dec.InsertPos())
	}
}

func TestRedundantPayloadCompresses(t *testing.T) {
	enc := NewCache(1 << 16)
	dec := NewCache(1 << 16)
	r := rand.New(rand.NewSource(2))
	block := randBytes(r, 700)
	// First sight: no compression possible.
	e1, st1 := encode(block, enc, []*Cache{enc})
	if st1.MatchBytes != 0 {
		t.Fatalf("first sight matched: %+v", st1)
	}
	if _, _, err := decode(e1, dec); err != nil {
		t.Fatal(err)
	}
	// Second sight: nearly everything should match.
	e2, st2 := encode(block, enc, []*Cache{enc})
	if st2.MatchBytes < uint64(len(block))*8/10 {
		t.Fatalf("repeat not compressed: %+v (encoded %d bytes)", st2, len(e2))
	}
	if len(e2) >= len(block) {
		t.Fatalf("encoded repeat not smaller: %d vs %d", len(e2), len(block))
	}
	got, st, err := decode(e2, dec)
	if err != nil || !bytes.Equal(got, block) {
		t.Fatalf("repeat decode: %v", err)
	}
	if st.UndecodableBytes != 0 {
		t.Fatal("undecodable on synced repeat")
	}
}

func TestDecodeDesyncIsUndecodable(t *testing.T) {
	// The decoder misses one insert (the routing-lag failure of §8.1.2):
	// subsequent matches must fail verification, not silently corrupt.
	enc := NewCache(1 << 16)
	dec := NewCache(1 << 16)
	r := rand.New(rand.NewSource(3))
	block := randBytes(r, 700)
	e1, _ := encode(block, enc, []*Cache{enc})
	_ = e1 // lost in flight: decoder never sees it
	e2, st2 := encode(block, enc, []*Cache{enc})
	if st2.MatchBytes == 0 {
		t.Fatal("setup: repeat did not match")
	}
	got, st, err := decode(e2, dec)
	if err != nil {
		t.Fatal(err)
	}
	if st.UndecodableBytes == 0 {
		t.Fatal("desynced decode reported success")
	}
	if bytes.Equal(got, block) {
		t.Fatal("desynced decode silently produced correct bytes")
	}
}

func TestShortPayloadPassthrough(t *testing.T) {
	enc := NewCache(1 << 12)
	dec := NewCache(1 << 12)
	payload := []byte("tiny")
	encoded, st := encode(payload, enc, []*Cache{enc})
	if st.MatchBytes != 0 || st.LiteralBytes != 4 {
		t.Fatalf("stats: %+v", st)
	}
	got, _, err := decode(encoded, dec)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("short payload: %v", err)
	}
}

func TestEncodeDecodePropertyRandomStreams(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		enc := NewCache(1 << 14)
		dec := NewCache(1 << 14)
		pool := [][]byte{randBytes(r, 300), randBytes(r, 500), randBytes(r, 700)}
		for i := 0; i < 30; i++ {
			var payload []byte
			if r.Float64() < 0.6 {
				payload = pool[r.Intn(len(pool))]
			} else {
				payload = randBytes(r, 100+r.Intn(600))
			}
			encoded, _ := encode(payload, enc, []*Cache{enc})
			got, st, err := decode(encoded, dec)
			if err != nil || !bytes.Equal(got, payload) || st.UndecodableBytes != 0 {
				return false
			}
		}
		return enc.InsertPos() == dec.InsertPos()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWrapAround(t *testing.T) {
	// Cache far smaller than the stream: old regions evict; encoding
	// still round-trips because both sides evict identically.
	enc := NewCache(4096)
	dec := NewCache(4096)
	r := rand.New(rand.NewSource(4))
	block := randBytes(r, 700)
	for i := 0; i < 40; i++ {
		var payload []byte
		if i%3 == 0 {
			payload = block
		} else {
			payload = randBytes(r, 500)
		}
		encoded, _ := encode(payload, enc, []*Cache{enc})
		got, st, err := decode(encoded, dec)
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("wrap-around packet %d: %v", i, err)
		}
		if st.UndecodableBytes != 0 {
			t.Fatalf("wrap-around undecodable at %d", i)
		}
	}
}

func TestCacheMarshalRoundTrip(t *testing.T) {
	c := NewCache(8192)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 10; i++ {
		c.Insert(randBytes(r, 400))
	}
	got, err := UnmarshalCache(c.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.InsertPos() != c.InsertPos() || got.FPCount() != c.FPCount() {
		t.Fatalf("round trip: pos %d/%d fps %d/%d", got.InsertPos(), c.InsertPos(), got.FPCount(), c.FPCount())
	}
	if !bytes.Equal(got.ring, c.ring) {
		t.Fatal("ring content differs")
	}
}

func TestCacheUnmarshalErrors(t *testing.T) {
	if _, err := UnmarshalCache(nil); err == nil {
		t.Fatal("nil blob")
	}
	c := NewCache(4096)
	blob := c.Marshal()
	blob[0] = 99
	if _, err := UnmarshalCache(blob); err == nil {
		t.Fatal("bad version")
	}
	blob[0] = cacheWireVersion
	if _, err := UnmarshalCache(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob")
	}
}

func TestCacheCloneIndependence(t *testing.T) {
	c := NewCache(8192)
	r := rand.New(rand.NewSource(6))
	c.Insert(randBytes(r, 400))
	cl := c.Clone()
	if cl.InsertPos() != c.InsertPos() {
		t.Fatal("clone position differs")
	}
	c.Insert(randBytes(r, 400))
	if cl.InsertPos() == c.InsertPos() {
		t.Fatal("clone shares state with original")
	}
}

func TestCacheMergeAdoptsWhenEmpty(t *testing.T) {
	src := NewCache(8192)
	r := rand.New(rand.NewSource(7))
	src.Insert(randBytes(r, 500))
	dst := NewCache(8192)
	if err := dst.MergeFrom(src.Marshal()); err != nil {
		t.Fatal(err)
	}
	if dst.InsertPos() != src.InsertPos() || dst.FPCount() != src.FPCount() {
		t.Fatal("empty-cache merge should adopt wholesale")
	}
}

func TestCacheMergeByHitCount(t *testing.T) {
	src := NewCache(8192)
	r := rand.New(rand.NewSource(8))
	hot := randBytes(r, 200)
	src.Insert(hot)
	// Touch the hot content so its fingerprints gain hits.
	for i := 0; i < 5; i++ {
		encode(hot, src, nil)
	}
	dst := NewCache(8192)
	dst.Insert(randBytes(r, 300)) // non-empty: real merge path
	before := dst.FPCount()
	if err := dst.MergeFrom(src.Marshal()); err != nil {
		t.Fatal(err)
	}
	if dst.FPCount() <= before {
		t.Fatal("merge imported no fingerprints")
	}
}

func TestEncoderNumCachesAndCacheFlows(t *testing.T) {
	enc := NewEncoder(1 << 14)
	rt := mbox.New("enc", enc, mbox.Options{})
	defer rt.Close()
	if enc.CacheCount() != 1 {
		t.Fatalf("initial caches: %d", enc.CacheCount())
	}
	// Step 3 of the migration app: add a second cache.
	if err := enc.Config().Set("NumCaches", []string{"2"}); err != nil {
		t.Fatal(err)
	}
	if enc.CacheCount() != 2 {
		t.Fatalf("caches after NumCaches=2: %d", enc.CacheCount())
	}
	// Step 5: split traffic between the caches.
	if err := enc.Config().Set("CacheFlows", []string{"1.1.1.0/24", "1.1.2.0/24"}); err != nil {
		t.Fatal(err)
	}
	enc.mu.Lock()
	enc.applyConfigLocked()
	mirror, prefixes := enc.mirror, len(enc.prefixes)
	enc.mu.Unlock()
	if mirror || prefixes != 2 {
		t.Fatalf("CacheFlows not applied: mirror=%v prefixes=%d", mirror, prefixes)
	}
}

func TestEncoderDecoderEndToEnd(t *testing.T) {
	enc := NewEncoder(1 << 16)
	dec := NewDecoder(1 << 16)
	decRT := mbox.New("dec", dec, mbox.Options{})
	defer decRT.Close()
	var got [][]byte
	decRT.SetForward(func(p *packet.Packet) {
		got = append(got, append([]byte(nil), p.Payload...))
	})
	encRT := mbox.New("enc", enc, mbox.Options{Forward: decRT.HandlePacket})
	defer encRT.Close()

	tr := trace.Redundant(trace.RedundantConfig{Seed: 9, Flows: 6})
	var want [][]byte
	for _, p := range tr.Packets {
		if len(p.Payload) > 0 {
			want = append(want, append([]byte(nil), p.Payload...))
			encRT.HandlePacket(p)
		}
	}
	encRT.Drain(10 * time.Second)
	decRT.Drain(10 * time.Second)

	if len(got) != len(want) {
		t.Fatalf("packets: got %d want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
	if _, undec, _ := dec.Report(); undec != 0 {
		t.Fatalf("undecodable bytes on clean path: %d", undec)
	}
	if _, _, matchBytes, _ := enc.Report(); matchBytes == 0 {
		t.Fatal("redundant trace produced no matches")
	}
}

func TestDecoderCloneViaSharedState(t *testing.T) {
	// Live migration, steps 2: the new decoder receives the cache clone
	// and can immediately decode traffic encoded against the original.
	enc := NewEncoder(1 << 16)
	oldDec := NewDecoder(1 << 16)
	r := rand.New(rand.NewSource(10))

	// Drive encoder->oldDec through runtimes for realism.
	oldRT := mbox.New("old", oldDec, mbox.Options{})
	defer oldRT.Close()
	encRT := mbox.New("enc", enc, mbox.Options{Forward: oldRT.HandlePacket})
	defer encRT.Close()
	block := randBytes(r, 700)
	for i := 0; i < 10; i++ {
		encRT.HandlePacket(payloadPkt("1.1.2.5", block))
	}
	encRT.Drain(5 * time.Second)
	oldRT.Drain(5 * time.Second)

	// Clone old decoder's cache into a new decoder.
	blob, err := oldDec.GetShared(state.Supporting, func() {})
	if err != nil {
		t.Fatal(err)
	}
	newDec := NewDecoder(1 << 16)
	if err := newDec.PutShared(state.Supporting, blob); err != nil {
		t.Fatal(err)
	}
	if newDec.CachePos() != oldDec.CachePos() {
		t.Fatalf("clone out of sync: %d vs %d", newDec.CachePos(), oldDec.CachePos())
	}

	// Traffic encoded against the (single) encoder cache now decodes at
	// the new decoder.
	newRT := mbox.New("new", newDec, mbox.Options{})
	defer newRT.Close()
	var decoded []byte
	newRT.SetForward(func(p *packet.Packet) { decoded = append([]byte(nil), p.Payload...) })
	encRT.SetForward(newRT.HandlePacket)
	encRT.HandlePacket(payloadPkt("1.1.2.5", block))
	encRT.Drain(5 * time.Second)
	newRT.Drain(5 * time.Second)
	if !bytes.Equal(decoded, block) {
		t.Fatal("cloned decoder failed to decode")
	}
	if _, undec, _ := newDec.Report(); undec != 0 {
		t.Fatalf("undecodable at cloned decoder: %d", undec)
	}
}

func TestMirrorKeepsCachesInSync(t *testing.T) {
	enc := NewEncoder(1 << 14)
	enc.Config().Set("NumCaches", []string{"2"})
	r := rand.New(rand.NewSource(11))
	ctx := mbox.NewBenchContext()
	for i := 0; i < 5; i++ {
		enc.Process(ctx, payloadPkt("1.1.1.5", randBytes(r, 300)))
	}
	enc.mu.Lock()
	pos0, pos1 := enc.caches[0].InsertPos(), enc.caches[1].InsertPos()
	enc.mu.Unlock()
	if pos0 != pos1 {
		t.Fatalf("mirror mode diverged: %d vs %d", pos0, pos1)
	}
	// After CacheFlows, inserts split.
	enc.Config().Set("CacheFlows", []string{"1.1.1.0/24", "1.1.2.0/24"})
	enc.Process(ctx, payloadPkt("1.1.1.5", randBytes(r, 300)))
	enc.mu.Lock()
	pos0b, pos1b := enc.caches[0].InsertPos(), enc.caches[1].InsertPos()
	enc.mu.Unlock()
	if pos0b == pos0 || pos1b != pos1 {
		t.Fatalf("CacheFlows split not applied: %d->%d, %d->%d", pos0, pos0b, pos1, pos1b)
	}
}

func TestReportMergeSums(t *testing.T) {
	a, b := NewDecoder(1<<12), NewDecoder(1<<12)
	a.report.Matches = 5
	a.report.UndecodableBytes = 100
	blob, err := a.GetShared(state.Reporting, func() {})
	if err != nil {
		t.Fatal(err)
	}
	b.report.Matches = 2
	if err := b.PutShared(state.Reporting, blob); err != nil {
		t.Fatal(err)
	}
	if b.report.Matches != 7 || b.report.UndecodableBytes != 100 {
		t.Fatalf("merged report: %+v", b.report)
	}
}

func TestNoPerflowState(t *testing.T) {
	enc, dec := NewEncoder(1<<12), NewDecoder(1<<12)
	for _, logic := range []mbox.Logic{enc, dec} {
		calls := 0
		err := logic.GetPerflow(state.Supporting, packet.MatchAll, func(packet.FlowKey, func(func()) ([]byte, error)) error {
			calls++
			return nil
		})
		if err != nil || calls != 0 {
			t.Fatalf("%s: per-flow get should be empty", logic.Kind())
		}
		if err := logic.PutPerflow(state.Supporting, state.Chunk{}); err == nil {
			t.Fatalf("%s: per-flow put should fail", logic.Kind())
		}
	}
}

func TestNonEncodedPassthrough(t *testing.T) {
	dec := NewDecoder(1 << 12)
	rt := mbox.New("dec", dec, mbox.Options{})
	defer rt.Close()
	var got []byte
	rt.SetForward(func(p *packet.Packet) { got = p.Payload })
	rt.HandlePacket(payloadPkt("1.1.1.1", []byte("plain traffic")))
	rt.Drain(5 * time.Second)
	if string(got) != "plain traffic" {
		t.Fatalf("passthrough: %q", got)
	}
}

func BenchmarkEncodeRedundant(b *testing.B) {
	enc := NewCache(1 << 20)
	r := rand.New(rand.NewSource(12))
	block := randBytes(r, 1400)
	encode(block, enc, []*Cache{enc})
	b.SetBytes(int64(len(block)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode(block, enc, nil)
	}
}

func BenchmarkEncodeFresh(b *testing.B) {
	enc := NewCache(1 << 20)
	r := rand.New(rand.NewSource(13))
	payloads := make([][]byte, 64)
	for i := range payloads {
		payloads[i] = randBytes(r, 1400)
	}
	b.SetBytes(1400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		encode(payloads[i%len(payloads)], enc, []*Cache{enc})
	}
}

func BenchmarkCacheMarshal(b *testing.B) {
	c := NewCache(1 << 20)
	r := rand.New(rand.NewSource(14))
	for i := 0; i < 100; i++ {
		c.Insert(randBytes(r, 1000))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Marshal()
	}
}
