package re

// Rolling Rabin-Karp-style fingerprinting over fixed windows, used to find
// redundant regions between packet payloads and the packet cache. Window
// positions are content-sampled: a window is an anchor when its fingerprint
// has sampleBits trailing zero bits, giving an expected anchor density of
// 1/2^sampleBits positions, independent of alignment (the property that
// makes redundancy detectable across shifted payloads).

const (
	// fpWindow is the fingerprint window size in bytes.
	fpWindow = 32
	// fpBase is the polynomial base.
	fpBase = 1000000007
	// sampleBits sets anchor density to 1/16 window positions.
	sampleBits = 4
	sampleMask = 1<<sampleBits - 1
)

// fpBasePowW = fpBase^(fpWindow-1), precomputed for the rolling update.
var fpBasePowW = func() uint64 {
	v := uint64(1)
	for i := 0; i < fpWindow-1; i++ {
		v *= fpBase
	}
	return v
}()

// windowHash computes the fingerprint of b[:fpWindow].
func windowHash(b []byte) uint64 {
	var h uint64
	for i := 0; i < fpWindow; i++ {
		h = h*fpBase + uint64(b[i])
	}
	return h
}

// roll advances the hash by removing out and appending in.
func roll(h uint64, out, in byte) uint64 {
	return (h-uint64(out)*fpBasePowW)*fpBase + uint64(in)
}

// sampled reports whether fp is an anchor.
func sampled(fp uint64) bool { return fp&sampleMask == 0 }

// regionChecksum is an FNV-1a checksum over a matched region; match tokens
// carry it so the decoder can verify its cache holds identical bytes at the
// referenced position (strict position synchronization, as in the paper's
// RE: "packet contents are stored locally at the exact same memory
// locations").
func regionChecksum(b []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for _, c := range b {
		h ^= uint32(c)
		h *= prime32
	}
	return h
}
