package re

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Cache is the RE packet cache: a ring buffer of recently seen content plus
// a fingerprint table indexing sampled anchor windows (§6.1: "adds each
// received packet to a packet cache (implemented as a ring buffer) and
// inserts hashes of the packets' contents into a fingerprint table
// (implemented as a hash table)").
//
// Positions are absolute byte offsets since cache creation; the ring index
// is pos modulo capacity. A region [pos, pos+len) is resident while
// pos >= insertPos - capacity. Strict position addressing means encoder and
// decoder caches must apply identical insert sequences — the synchronization
// assumption the migration scenario has to preserve.
type Cache struct {
	ring []byte
	// insertPos is the absolute offset of the next byte to be written.
	insertPos uint64
	// fps maps anchor fingerprint -> fpEntry.
	fps map[uint64]*fpEntry
}

type fpEntry struct {
	Pos  uint64
	Hits uint32
}

// NewCache creates a cache with the given capacity in bytes.
func NewCache(capacity int) *Cache {
	if capacity < 4*fpWindow {
		capacity = 4 * fpWindow
	}
	return &Cache{ring: make([]byte, capacity), fps: map[uint64]*fpEntry{}}
}

// Capacity returns the ring size in bytes.
func (c *Cache) Capacity() int { return len(c.ring) }

// InsertPos returns the absolute offset of the next insert.
func (c *Cache) InsertPos() uint64 { return c.insertPos }

// resident reports whether [pos, pos+n) is still in the ring.
func (c *Cache) resident(pos uint64, n int) bool {
	if pos+uint64(n) > c.insertPos {
		return false
	}
	return c.insertPos-pos <= uint64(len(c.ring))
}

// read copies the region [pos, pos+n) out of the ring. Caller must have
// checked residency.
func (c *Cache) read(pos uint64, n int) []byte {
	out := make([]byte, n)
	cap64 := uint64(len(c.ring))
	start := pos % cap64
	first := copy(out, c.ring[start:])
	if first < n {
		copy(out[first:], c.ring[:n-first])
	}
	return out
}

// Insert appends content to the ring and indexes its anchor windows.
// Returns the absolute position at which content was written.
func (c *Cache) Insert(content []byte) uint64 {
	at := c.insertPos
	cap64 := uint64(len(c.ring))
	idx := at % cap64
	first := copy(c.ring[idx:], content)
	if first < len(content) {
		copy(c.ring, content[first:])
	}
	c.insertPos += uint64(len(content))
	// Index anchors.
	if len(content) >= fpWindow {
		h := windowHash(content)
		for i := 0; ; i++ {
			if sampled(h) {
				e, ok := c.fps[h]
				if !ok {
					c.fps[h] = &fpEntry{Pos: at + uint64(i)}
				} else {
					e.Pos = at + uint64(i) // newest occurrence wins
				}
			}
			if i+fpWindow >= len(content) {
				break
			}
			h = roll(h, content[i], content[i+fpWindow])
		}
	}
	return at
}

// lookup finds a resident anchor for fp, verifying the window content
// matches (hash collisions and overwritten regions are rejected). It bumps
// the entry's hit counter on success.
func (c *Cache) lookup(fp uint64, window []byte) (uint64, bool) {
	e, ok := c.fps[fp]
	if !ok {
		return 0, false
	}
	if !c.resident(e.Pos, fpWindow) {
		delete(c.fps, fp)
		return 0, false
	}
	got := c.read(e.Pos, fpWindow)
	for i := range got {
		if got[i] != window[i] {
			return 0, false
		}
	}
	e.Hits++
	return e.Pos, true
}

// byteAt returns the byte at absolute position pos. Caller checks residency.
func (c *Cache) byteAt(pos uint64) byte {
	return c.ring[pos%uint64(len(c.ring))]
}

// Clone returns a deep copy: identical content, positions, and fingerprint
// table. This is cloneSupport's substrate and the encoder's NumCaches
// behaviour ("the encoder will clone its original cache to create a new
// second cache", §6.1).
func (c *Cache) Clone() *Cache {
	n := &Cache{
		ring:      append([]byte(nil), c.ring...),
		insertPos: c.insertPos,
		fps:       make(map[uint64]*fpEntry, len(c.fps)),
	}
	for fp, e := range c.fps {
		cp := *e
		n.fps[fp] = &cp
	}
	return n
}

// cacheWireVersion guards the serialization format.
const cacheWireVersion = 1

// Marshal serializes the cache: version, capacity, insertPos, ring bytes,
// and the fingerprint table sorted by fingerprint for determinism.
func (c *Cache) Marshal() []byte {
	out := make([]byte, 0, 21+len(c.ring)+len(c.fps)*20)
	var tmp [8]byte
	out = append(out, cacheWireVersion)
	binary.BigEndian.PutUint64(tmp[:], uint64(len(c.ring)))
	out = append(out, tmp[:]...)
	binary.BigEndian.PutUint64(tmp[:], c.insertPos)
	out = append(out, tmp[:]...)
	out = append(out, c.ring...)
	binary.BigEndian.PutUint32(tmp[:4], uint32(len(c.fps)))
	out = append(out, tmp[:4]...)
	fps := make([]uint64, 0, len(c.fps))
	for fp := range c.fps {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		e := c.fps[fp]
		binary.BigEndian.PutUint64(tmp[:], fp)
		out = append(out, tmp[:]...)
		binary.BigEndian.PutUint64(tmp[:], e.Pos)
		out = append(out, tmp[:]...)
		binary.BigEndian.PutUint32(tmp[:4], e.Hits)
		out = append(out, tmp[:4]...)
	}
	return out
}

// UnmarshalCache reconstructs a cache from Marshal output.
func UnmarshalCache(b []byte) (*Cache, error) {
	if len(b) < 21 {
		return nil, fmt.Errorf("re: cache blob too short (%d bytes)", len(b))
	}
	if b[0] != cacheWireVersion {
		return nil, fmt.Errorf("re: unsupported cache version %d", b[0])
	}
	capacity := binary.BigEndian.Uint64(b[1:9])
	insertPos := binary.BigEndian.Uint64(b[9:17])
	if uint64(len(b)) < 21+capacity {
		return nil, fmt.Errorf("re: truncated cache ring")
	}
	c := &Cache{
		ring:      append([]byte(nil), b[17:17+capacity]...),
		insertPos: insertPos,
		fps:       map[uint64]*fpEntry{},
	}
	rest := b[17+capacity:]
	nfps := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if uint64(len(rest)) < uint64(nfps)*20 {
		return nil, fmt.Errorf("re: truncated fingerprint table")
	}
	for i := uint32(0); i < nfps; i++ {
		fp := binary.BigEndian.Uint64(rest[:8])
		pos := binary.BigEndian.Uint64(rest[8:16])
		hits := binary.BigEndian.Uint32(rest[16:20])
		c.fps[fp] = &fpEntry{Pos: pos, Hits: hits}
		rest = rest[20:]
	}
	return c, nil
}

// MergeFrom folds another cache into this one using hit counts — the
// MB-specific merge logic the paper sketches for content caches ("the MB
// may require extra meta-data (e.g., hit counts) for each cache entry to
// determine from which piece of state a particular entry should be
// retained", §4.1.2). Entries from the other cache are imported in
// descending hit order: each resident region is appended to the local ring
// and re-indexed, until half the local capacity has been consumed.
func (c *Cache) MergeFrom(blob []byte) error {
	other, err := UnmarshalCache(blob)
	if err != nil {
		return err
	}
	if c.insertPos == 0 {
		// Empty local cache: adopt the other wholesale.
		*c = *other
		return nil
	}
	type imp struct {
		e  *fpEntry
		fp uint64
	}
	var imports []imp
	for fp, e := range other.fps {
		if other.resident(e.Pos, fpWindow) {
			imports = append(imports, imp{e: e, fp: fp})
		}
	}
	sort.Slice(imports, func(i, j int) bool {
		if imports[i].e.Hits != imports[j].e.Hits {
			return imports[i].e.Hits > imports[j].e.Hits
		}
		return imports[i].fp < imports[j].fp
	})
	budget := len(c.ring) / 2
	for _, im := range imports {
		if budget < fpWindow {
			break
		}
		if _, exists := c.fps[im.fp]; exists {
			continue
		}
		region := other.read(im.e.Pos, fpWindow)
		c.Insert(region)
		budget -= fpWindow
	}
	return nil
}

// FPCount returns the number of indexed fingerprints.
func (c *Cache) FPCount() int { return len(c.fps) }
