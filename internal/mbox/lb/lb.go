// Package lb implements a Balance-like TCP load balancer (§4.1.2 of the
// paper). Its defining property for OpenMB is its keying granularity:
// "Balance only maintains a chunk of per-flow state based on source IP/port,
// since the destination IP/port is the same for all connections, namely, the
// IP/port of the load balancer." Requests for per-flow state at a finer
// granularity than that — any match constraining destination fields — return
// an error, per the southbound API contract.
//
// The balancer also demonstrates introspection: it raises "lb.assigned"
// events when a new flow is bound to a backend, carrying the chosen server
// in the event values — the paper's running example of event payloads.
package lb

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Kind is the middlebox type name.
const Kind = "lb"

var _ mbox.BurstLogic = (*LB)(nil)

// Backend is one load-balanced server.
type Backend struct {
	IP   netip.Addr
	Port uint16
}

// String renders "ip:port".
func (b Backend) String() string { return fmt.Sprintf("%s:%d", b.IP, b.Port) }

// ParseBackend parses "ip:port".
func ParseBackend(s string) (Backend, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Backend{}, fmt.Errorf("lb: backend %q: missing port", s)
	}
	ip, err := netip.ParseAddr(s[:i])
	if err != nil {
		return Backend{}, fmt.Errorf("lb: backend %q: %w", s, err)
	}
	port, err := strconv.Atoi(s[i+1:])
	if err != nil || port <= 0 || port > 65535 {
		return Backend{}, fmt.Errorf("lb: backend %q: bad port", s)
	}
	return Backend{IP: ip, Port: uint16(port)}, nil
}

// assignment is the per-flow supporting state: which backend serves a
// source endpoint.
type assignment struct {
	Backend Backend
	// Packets counts forwarded packets (useful for rebalancing
	// decisions; carried along on moves).
	Packets uint64
}

// LB is the middlebox logic. It implements mbox.Logic.
type LB struct {
	mu sync.Mutex
	// assigns is keyed by source endpoint only: dst fields zeroed.
	assigns  map[packet.FlowKey]*assignment
	backends []Backend
	rr       int
	vip      netip.Addr
	vipPort  uint16
	config   *state.ConfigTree
	dirty    bool
}

// New returns a load balancer fronting vip:vipPort with the given backends.
func New(vip netip.Addr, vipPort uint16, backends []Backend) *LB {
	l := &LB{
		assigns:  map[packet.FlowKey]*assignment{},
		backends: append([]Backend(nil), backends...),
		vip:      vip,
		vipPort:  vipPort,
		config:   state.NewConfigTree(),
	}
	values := make([]string, len(backends))
	for i, b := range backends {
		values[i] = b.String()
	}
	if err := l.config.Set("backends", values); err != nil {
		panic("lb: default config: " + err.Error())
	}
	l.config.Watch(func(string) {
		l.mu.Lock()
		l.dirty = true
		l.mu.Unlock()
	})
	return l
}

// Kind implements mbox.Logic.
func (l *LB) Kind() string { return Kind }

// srcKey masks a flow to the balancer's keying granularity.
func srcKey(p *packet.Packet) packet.FlowKey {
	return packet.FlowKey{SrcIP: p.SrcIP, SrcPort: p.SrcPort, Proto: p.Proto}
}

func (l *LB) applyConfigLocked() {
	l.dirty = false
	v, err := l.config.Get("backends")
	if err != nil {
		return
	}
	backends := make([]Backend, 0, len(v))
	for _, s := range v {
		b, err := ParseBackend(s)
		if err != nil {
			return // keep the old set on a malformed update
		}
		backends = append(backends, b)
	}
	l.backends = backends
	if l.rr >= len(backends) {
		l.rr = 0
	}
}

// Process implements mbox.Logic: bind new flows round-robin and rewrite the
// destination to the assigned backend.
func (l *LB) Process(ctx *mbox.Context, p *packet.Packet) {
	if p.DstIP != l.vip || p.DstPort != l.vipPort {
		ctx.Emit(p) // return traffic or unrelated: pass through
		return
	}
	key := srcKey(p)
	l.mu.Lock()
	if l.dirty {
		l.applyConfigLocked()
	}
	if len(l.backends) == 0 {
		l.mu.Unlock()
		return // no backends: drop
	}
	a, ok := l.assigns[key]
	assigned := false
	if !ok {
		a = &assignment{Backend: l.backends[l.rr%len(l.backends)]}
		l.rr++
		l.assigns[key] = a
		assigned = true
	}
	a.Packets++
	ctx.Touch(state.Supporting, key)
	backend := a.Backend
	l.mu.Unlock()

	if assigned {
		ctx.RaiseIntrospection("lb.assigned", key, map[string]string{"server": backend.String()})
	}
	out := p.Clone()
	out.DstIP = backend.IP
	out.DstPort = backend.Port
	ctx.Emit(out)
}

// lbRaise is one deferred "lb.assigned" raise from a burst: raises must run
// outside l.mu, so ProcessBurst collects them under the lock and replays
// them after it in packet order.
type lbRaise struct {
	idx     int
	key     packet.FlowKey
	backend Backend
}

// ProcessBurst implements mbox.BurstLogic: one mutex acquisition and at most
// one config re-parse cover the whole burst, and consecutive packets from
// the same source endpoint reuse the last assignment lookup. Emits are
// buffered by the burst context, so they are appended in-loop under the lock
// in packet order.
func (l *LB) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	var raises []lbRaise
	var lastKey packet.FlowKey
	var lastA *assignment
	l.mu.Lock()
	if l.dirty {
		l.applyConfigLocked()
	}
	for i, p := range pkts {
		ctx := &ctxs[i]
		if p.DstIP != l.vip || p.DstPort != l.vipPort {
			ctx.Emit(p) // return traffic or unrelated: pass through
			continue
		}
		if len(l.backends) == 0 {
			continue // no backends: drop
		}
		key := srcKey(p)
		var a *assignment
		if lastA != nil && lastKey == key {
			a = lastA
		} else {
			var ok bool
			a, ok = l.assigns[key]
			if !ok {
				a = &assignment{Backend: l.backends[l.rr%len(l.backends)]}
				l.rr++
				l.assigns[key] = a
				raises = append(raises, lbRaise{idx: i, key: key, backend: a.Backend})
			}
			lastKey, lastA = key, a
		}
		a.Packets++
		ctx.Touch(state.Supporting, key)
		out := p.Clone()
		out.DstIP = a.Backend.IP
		out.DstPort = a.Backend.Port
		ctx.Emit(out)
	}
	l.mu.Unlock()
	for _, r := range raises {
		ctxs[r.idx].RaiseIntrospection("lb.assigned", r.key, map[string]string{"server": r.backend.String()})
	}
}

// GetPerflow implements mbox.Logic. Destination constraints are rejected:
// they are finer than the balancer's source-endpoint keying (§4.1.2:
// "requests for per-flow state at a granularity finer than the MB uses will
// return an error").
func (l *LB) GetPerflow(class state.Class, match packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	if class != state.Supporting {
		return nil
	}
	if match.ConstrainsDst() {
		return fmt.Errorf("lb: per-flow state is keyed by source IP/port only; destination constraints are finer than the keying granularity")
	}
	l.mu.Lock()
	keys := make([]packet.FlowKey, 0, len(l.assigns))
	for k := range l.assigns {
		if match.Match(k) {
			keys = append(keys, k)
		}
	}
	l.mu.Unlock()
	packet.SortKeys(keys)
	for _, k := range keys {
		key := k
		err := emit(key, func(mark func()) ([]byte, error) {
			l.mu.Lock()
			defer l.mu.Unlock()
			mark()
			a, ok := l.assigns[key]
			if !ok {
				return nil, fmt.Errorf("lb: assignment for %s vanished during get", key)
			}
			return []byte(fmt.Sprintf("%s %d", a.Backend, a.Packets)), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PutPerflow implements mbox.Logic.
func (l *LB) PutPerflow(class state.Class, c state.Chunk) error {
	if class != state.Supporting {
		return fmt.Errorf("lb: no per-flow %v state", class)
	}
	parts := strings.Fields(string(c.Blob))
	if len(parts) != 2 {
		return fmt.Errorf("lb: malformed assignment blob %q", c.Blob)
	}
	b, err := ParseBackend(parts[0])
	if err != nil {
		return err
	}
	pkts, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return fmt.Errorf("lb: malformed packet count %q", parts[1])
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if existing, ok := l.assigns[c.Key]; ok {
		// The flow raced the move and was assigned here too; the
		// incoming (original) binding wins — an in-progress
		// transaction must not switch servers (§2, R4).
		existing.Backend = b
		existing.Packets += pkts
		return nil
	}
	l.assigns[c.Key] = &assignment{Backend: b, Packets: pkts}
	return nil
}

// DelPerflow implements mbox.Logic.
func (l *LB) DelPerflow(class state.Class, match packet.FieldMatch) (int, error) {
	if class != state.Supporting {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for k := range l.assigns {
		if match.Match(k) {
			delete(l.assigns, k)
			n++
		}
	}
	return n, nil
}

// GetShared implements mbox.Logic: the balancer has no shared state worth
// moving (the round-robin cursor is reconstructible).
func (l *LB) GetShared(class state.Class, mark func()) ([]byte, error) {
	return nil, mbox.ErrNoSharedState
}

// PutShared implements mbox.Logic.
func (l *LB) PutShared(class state.Class, blob []byte) error {
	return mbox.ErrNoSharedState
}

// Stats implements mbox.Logic.
func (l *LB) Stats(match packet.FieldMatch) sbi.StatsReply {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s sbi.StatsReply
	for k, a := range l.assigns {
		if match.Match(k) {
			s.SupportPerflowChunks++
			s.SupportPerflowBytes += len(a.Backend.String()) + 8
		}
	}
	return s
}

// Config implements mbox.Logic.
func (l *LB) Config() *state.ConfigTree { return l.config }

// Assignment returns the backend bound to a source endpoint.
func (l *LB) Assignment(srcIP netip.Addr, srcPort uint16, proto uint8) (Backend, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	a, ok := l.assigns[packet.FlowKey{SrcIP: srcIP, SrcPort: srcPort, Proto: proto}]
	if !ok {
		return Backend{}, false
	}
	return a.Backend, true
}

// AssignmentCount returns the number of bound flows.
func (l *LB) AssignmentCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.assigns)
}

// BackendLoads returns the number of flows bound to each backend.
func (l *LB) BackendLoads() map[string]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	loads := map[string]int{}
	for _, a := range l.assigns {
		loads[a.Backend.String()]++
	}
	return loads
}
