package lb

import (
	"net/netip"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
)

var (
	vip      = netip.MustParseAddr("1.1.1.100")
	backends = []Backend{
		{IP: netip.MustParseAddr("1.1.1.10"), Port: 8080},
		{IP: netip.MustParseAddr("1.1.1.11"), Port: 8080},
		{IP: netip.MustParseAddr("1.1.1.12"), Port: 8080},
	}
)

func clientPkt(srcLast byte, srcPort uint16) *packet.Packet {
	return &packet.Packet{
		SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, srcLast}), DstIP: vip,
		Proto: packet.ProtoTCP, SrcPort: srcPort, DstPort: 80,
		Payload: []byte("GET /"),
	}
}

func runLB(t *testing.T, l *LB) (*mbox.Runtime, *[]*packet.Packet) {
	t.Helper()
	var out []*packet.Packet
	rt := mbox.New("lb1", l, mbox.Options{Forward: func(p *packet.Packet) { out = append(out, p) }})
	t.Cleanup(rt.Close)
	return rt, &out
}

func TestRoundRobinAssignment(t *testing.T) {
	l := New(vip, 80, backends)
	rt, out := runLB(t, l)
	for i := byte(1); i <= 6; i++ {
		rt.HandlePacket(clientPkt(i, 1000+uint16(i)))
	}
	rt.Drain(5 * time.Second)
	if len(*out) != 6 {
		t.Fatalf("forwarded: %d", len(*out))
	}
	loads := l.BackendLoads()
	for _, b := range backends {
		if loads[b.String()] != 2 {
			t.Fatalf("uneven round robin: %v", loads)
		}
	}
}

func TestAssignmentIsSticky(t *testing.T) {
	l := New(vip, 80, backends)
	rt, out := runLB(t, l)
	rt.HandlePacket(clientPkt(1, 1000))
	rt.HandlePacket(clientPkt(2, 2000))
	rt.HandlePacket(clientPkt(1, 1000))
	rt.Drain(5 * time.Second)
	if (*out)[0].DstIP != (*out)[2].DstIP {
		t.Fatal("same flow sent to different backends")
	}
	if l.AssignmentCount() != 2 {
		t.Fatalf("assignments: %d", l.AssignmentCount())
	}
}

func TestNonVIPPassthrough(t *testing.T) {
	l := New(vip, 80, backends)
	rt, out := runLB(t, l)
	p := &packet.Packet{
		SrcIP: netip.MustParseAddr("10.0.0.1"), DstIP: netip.MustParseAddr("9.9.9.9"),
		Proto: packet.ProtoTCP, SrcPort: 5, DstPort: 443,
	}
	rt.HandlePacket(p)
	rt.Drain(5 * time.Second)
	if len(*out) != 1 || (*out)[0].DstIP != netip.MustParseAddr("9.9.9.9") {
		t.Fatal("non-VIP traffic should pass through unmodified")
	}
	if l.AssignmentCount() != 0 {
		t.Fatal("passthrough created an assignment")
	}
}

func TestGranularityErrorOnDstConstraint(t *testing.T) {
	// The paper's example: Balance keys by source IP/port only; a
	// destination-constrained get is finer than the keying granularity.
	l := New(vip, 80, backends)
	m, _ := packet.ParseFieldMatch("[nw_dst=1.1.1.10]")
	err := l.GetPerflow(state.Supporting, m, func(packet.FlowKey, func(func()) ([]byte, error)) error { return nil })
	if err == nil {
		t.Fatal("destination-constrained get should fail")
	}
	m2, _ := packet.ParseFieldMatch("[tp_dst=80]")
	if err := l.GetPerflow(state.Supporting, m2, func(packet.FlowKey, func(func()) ([]byte, error)) error { return nil }); err == nil {
		t.Fatal("destination-port get should fail")
	}
	// Source constraints are at or coarser than the keying granularity.
	m3, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/24]")
	if err := l.GetPerflow(state.Supporting, m3, func(packet.FlowKey, func(func()) ([]byte, error)) error { return nil }); err != nil {
		t.Fatalf("source-constrained get should succeed: %v", err)
	}
}

func TestMovePreservesAssignments(t *testing.T) {
	// R1/R4: moving in-progress flows to another balancer must not
	// reassign them to different servers mid-transaction.
	src := New(vip, 80, backends)
	rt, _ := runLB(t, src)
	for i := byte(1); i <= 4; i++ {
		rt.HandlePacket(clientPkt(i, 1000+uint16(i)))
	}
	rt.Drain(5 * time.Second)
	want, _ := src.Assignment(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1001, packet.ProtoTCP)

	dst := New(vip, 80, backends)
	err := src.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		return dst.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dst.Assignment(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1001, packet.ProtoTCP)
	if !ok || got != want {
		t.Fatalf("assignment changed across move: %v vs %v", got, want)
	}
	// A continued flow at the destination sticks to the same server.
	rtDst, outDst := runLB(t, dst)
	rtDst.HandlePacket(clientPkt(1, 1001))
	rtDst.Drain(5 * time.Second)
	if (*outDst)[0].DstIP != want.IP {
		t.Fatal("moved flow switched servers")
	}
}

func TestPutMergePrefersIncomingBackend(t *testing.T) {
	dst := New(vip, 80, backends)
	rt, _ := runLB(t, dst)
	rt.HandlePacket(clientPkt(1, 1000)) // locally assigned (raced the move)
	rt.Drain(5 * time.Second)
	incoming := Backend{IP: netip.MustParseAddr("1.1.1.12"), Port: 8080}
	key := packet.FlowKey{SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}), SrcPort: 1000, Proto: packet.ProtoTCP}
	if err := dst.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: []byte(incoming.String() + " 7")}); err != nil {
		t.Fatal(err)
	}
	got, _ := dst.Assignment(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1000, packet.ProtoTCP)
	if got != incoming {
		t.Fatalf("incoming binding should win: %v", got)
	}
}

func TestBackendConfigUpdate(t *testing.T) {
	l := New(vip, 80, backends[:1])
	rt, out := runLB(t, l)
	rt.HandlePacket(clientPkt(1, 1000))
	rt.Drain(5 * time.Second)
	// Reconfigure: R3, dynamically modify MB configurations.
	l.Config().Set("backends", []string{"2.2.2.2:9090"})
	rt.HandlePacket(clientPkt(2, 2000))
	rt.Drain(5 * time.Second)
	if (*out)[1].DstIP != netip.MustParseAddr("2.2.2.2") || (*out)[1].DstPort != 9090 {
		t.Fatalf("new backend set not applied: %v", (*out)[1])
	}
	// Existing assignment unaffected.
	rt.HandlePacket(clientPkt(1, 1000))
	rt.Drain(5 * time.Second)
	if (*out)[2].DstIP != backends[0].IP {
		t.Fatal("existing assignment rebound on config change")
	}
}

func TestParseBackendErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3.4", "notanip:80", "1.2.3.4:0", "1.2.3.4:99999"} {
		if _, err := ParseBackend(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
	b, err := ParseBackend("1.2.3.4:80")
	if err != nil || b.Port != 80 {
		t.Fatalf("good backend: %v %v", b, err)
	}
}

func TestNoSharedState(t *testing.T) {
	l := New(vip, 80, backends)
	if _, err := l.GetShared(state.Supporting, func() {}); err == nil {
		t.Fatal("lb has no shared state")
	}
	if err := l.PutShared(state.Supporting, nil); err == nil {
		t.Fatal("lb has no shared state")
	}
}

func TestPutBlobErrors(t *testing.T) {
	l := New(vip, 80, backends)
	key := packet.FlowKey{SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}), SrcPort: 1, Proto: packet.ProtoTCP}
	for _, blob := range []string{"", "garbage", "1.1.1.1:80", "notanip:80 5", "1.1.1.1:80 notanumber"} {
		if err := l.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: []byte(blob)}); err == nil {
			t.Errorf("%q: expected error", blob)
		}
	}
}

func TestStatsCountsAssignments(t *testing.T) {
	l := New(vip, 80, backends)
	rt, _ := runLB(t, l)
	for i := byte(1); i <= 3; i++ {
		rt.HandlePacket(clientPkt(i, uint16(i)))
	}
	rt.Drain(5 * time.Second)
	s := l.Stats(packet.MatchAll)
	if s.SupportPerflowChunks != 3 {
		t.Fatalf("stats: %+v", s)
	}
}
