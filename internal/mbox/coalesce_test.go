package mbox_test

// Behavioural tests for the coalesced event path: batching within the send
// window, seq-order preservation, and batched reprocess delivery.

import (
	"testing"
	"time"

	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// forceCoalesce pins the coalesced wire path for one test regardless of the
// OPENMB_COALESCE environment (the runtime captures the mode at
// construction), restoring the environment's choice afterwards.
func forceCoalesce(t *testing.T, on bool) {
	t.Helper()
	prev := sbi.CoalesceDefault()
	sbi.SetCoalesceDefault(on)
	t.Cleanup(func() { sbi.SetCoalesceDefault(prev) })
}

// TestEventBatchingCoalescesAndPreservesOrder marks a set of flows (via a
// get, as a move would), bursts packets at them, and checks the raised
// reprocess events arrive (a) all of them, (b) in strictly increasing seq
// order, and (c) coalesced — fewer frames than events, with at least one
// genuine multi-event frame.
func TestEventBatchingCoalescesAndPreservesOrder(t *testing.T) {
	forceCoalesce(t, true)
	logic := mbtest.NewCounterLogic(16)
	h := newHarness(t, logic)
	if h.hello.Batch != sbi.MaxEventsPerFrame {
		t.Fatalf("hello announced event batch %d, want %d", h.hello.Batch, sbi.MaxEventsPerFrame)
	}

	const flows = 8
	for i := 0; i < flows; i++ {
		h.rt.HandlePacket(mbtest.PacketForFlow(i))
	}
	if !h.rt.Drain(10 * time.Second) {
		t.Fatal("preload did not drain")
	}
	// The get marks every exported key as in-transaction.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: packet.MatchAll, Batch: 16})
	if chunks, _ := h.collectGet(t, 1); len(chunks) == 0 {
		t.Fatal("no chunks exported")
	}

	const burst = 200
	for i := 0; i < burst; i++ {
		h.rt.HandlePacket(mbtest.PacketForFlow(i % flows))
	}
	// Drain guarantees the burst is processed AND every raised event was
	// handed to the transport (the outbox accounting), so reading the
	// event channel afterwards cannot under-count.
	if !h.rt.Drain(10 * time.Second) {
		t.Fatal("burst did not drain")
	}

	var frames, events, multi int
	var lastSeq uint64
	deadline := time.After(10 * time.Second)
	for events < burst {
		select {
		case m, ok := <-h.events:
			if !ok {
				t.Fatal("controller connection closed")
			}
			frames++
			if m.EventCount() > 1 {
				multi++
			}
			m.EachEvent(func(ev *sbi.Event) {
				events++
				if ev.Kind != sbi.EventReprocess {
					t.Fatalf("unexpected event kind %q", ev.Kind)
				}
				if len(ev.Packet) == 0 {
					t.Fatal("reprocess event without packet")
				}
				if ev.Seq <= lastSeq {
					t.Fatalf("seq order broken: %d after %d", ev.Seq, lastSeq)
				}
				lastSeq = ev.Seq
			})
		case <-deadline:
			t.Fatalf("only %d/%d events arrived", events, burst)
		}
	}
	if events != burst {
		t.Fatalf("events = %d, want %d", events, burst)
	}
	if frames >= events {
		t.Fatalf("no coalescing: %d frames for %d events", frames, events)
	}
	if multi == 0 {
		t.Fatal("no multi-event frame in a 200-packet burst")
	}
	t.Logf("%d events in %d frames (%d batched)", events, frames, multi)
}

// TestBatchedReprocessDelivery: one OpReprocess frame carrying several
// events replays each of them, in order, exactly as per-event frames would.
func TestBatchedReprocessDelivery(t *testing.T) {
	forceCoalesce(t, true)
	logic := mbtest.NewCounterLogic(16)
	h := newHarness(t, logic)

	key := mbtest.FlowN(0)
	evs := make([]*sbi.Event, 3)
	for i := range evs {
		p := mbtest.PacketForFlow(0)
		evs[i] = &sbi.Event{Kind: sbi.EventReprocess, Key: key, Seq: uint64(i + 1), Packet: p.Marshal(nil)}
	}
	m := &sbi.Message{Type: sbi.MsgRequest, ID: 7, Op: sbi.OpReprocess}
	m.SetEvents(evs)
	h.send(t, m)

	deadline := time.Now().Add(10 * time.Second)
	for h.rt.Metrics().Replayed < uint64(len(evs)) {
		if time.Now().After(deadline) {
			t.Fatalf("replayed %d of %d batched events", h.rt.Metrics().Replayed, len(evs))
		}
		time.Sleep(time.Millisecond)
	}
	// Replays must not raise fresh events or count as processed traffic.
	if got := h.rt.Metrics().Processed; got != 0 {
		t.Fatalf("replays counted as processed: %d", got)
	}

	// An all-empty frame is still rejected like the seed's nil-event case.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 8, Op: sbi.OpReprocess})
	if r := h.reply(t); r.Type != sbi.MsgError {
		t.Fatalf("empty reprocess frame accepted: %+v", r)
	}
}
