// Package mbtest provides a minimal middlebox logic for tests and
// controller benchmarks: a per-flow packet counter with shared counters.
// It doubles as the paper's "dummy MB" (§8.3), which replays synthetic state
// in response to gets and generates events under packet load, letting the
// controller's performance be isolated from real middlebox processing cost.
package mbtest

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// CounterLogic counts packets per flow (per-flow supporting state) and
// globally (shared supporting and reporting counters). Chunks are padded to
// ChunkBytes, defaulting to 202 bytes — the dummy-state size the paper uses
// for controller benchmarks.
type CounterLogic struct {
	// ChunkBytes is the exported chunk payload size (min 8).
	ChunkBytes int

	mu            sync.Mutex
	flows         map[packet.FlowKey]uint64
	sharedSupport uint64
	sharedReport  uint64
	config        *state.ConfigTree
}

// NewCounterLogic returns a CounterLogic with the given chunk size
// (0 means 202 bytes).
func NewCounterLogic(chunkBytes int) *CounterLogic {
	if chunkBytes == 0 {
		chunkBytes = 202
	}
	if chunkBytes < 8 {
		chunkBytes = 8
	}
	return &CounterLogic{
		ChunkBytes: chunkBytes,
		flows:      map[packet.FlowKey]uint64{},
		config:     state.NewConfigTree(),
	}
}

// Kind implements mbox.Logic.
func (l *CounterLogic) Kind() string { return "counter" }

// Process counts the packet per flow and globally.
func (l *CounterLogic) Process(ctx *mbox.Context, p *packet.Packet) {
	key := p.Flow().Canonical()
	l.mu.Lock()
	// Touch under the same lock that serializes exports, so the
	// moved-mark check is atomic with the update (see mbox.Logic).
	if !ctx.SkipPerflow() {
		l.flows[key]++
		ctx.Touch(state.Supporting, key)
	}
	if !ctx.SkipShared() {
		l.sharedSupport++
		l.sharedReport++
		ctx.TouchShared(state.Supporting)
		ctx.TouchShared(state.Reporting)
	}
	l.mu.Unlock()
	ctx.Emit(p)
	ctx.Log("conn", key.String())
	ctx.RaiseIntrospection("counter.flow.seen", key, nil)
}

func (l *CounterLogic) encode(v uint64) []byte {
	b := make([]byte, l.ChunkBytes)
	binary.BigEndian.PutUint64(b, v)
	return b
}

// GetPerflow implements mbox.Logic: per-flow state exists only in the
// Supporting class. Requests constraining destination fields are rejected as
// finer than the keying granularity.
func (l *CounterLogic) GetPerflow(class state.Class, m packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	if class != state.Supporting {
		return nil
	}
	if m.ConstrainsDst() {
		return fmt.Errorf("counter: requested granularity finer than per-flow keying")
	}
	l.mu.Lock()
	keys := make([]packet.FlowKey, 0, len(l.flows))
	for k := range l.flows {
		if m.MatchEither(k) {
			keys = append(keys, k)
		}
	}
	l.mu.Unlock()
	packet.SortKeys(keys)
	for _, k := range keys {
		key := k
		err := emit(key, func(mark func()) ([]byte, error) {
			l.mu.Lock()
			mark() // atomic with the snapshot: see mbox.Logic
			v := l.flows[key]
			l.mu.Unlock()
			return l.encode(v), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PutPerflow merges the incoming count into any existing record.
func (l *CounterLogic) PutPerflow(class state.Class, c state.Chunk) error {
	if class != state.Supporting {
		return fmt.Errorf("counter: no per-flow %v state", class)
	}
	if len(c.Blob) < 8 {
		return fmt.Errorf("counter: short blob (%d bytes)", len(c.Blob))
	}
	l.mu.Lock()
	l.flows[c.Key] += binary.BigEndian.Uint64(c.Blob)
	l.mu.Unlock()
	return nil
}

// DelPerflow removes matching per-flow records.
func (l *CounterLogic) DelPerflow(class state.Class, m packet.FieldMatch) (int, error) {
	if class != state.Supporting {
		return 0, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for k := range l.flows {
		if m.MatchEither(k) {
			delete(l.flows, k)
			n++
		}
	}
	return n, nil
}

// GetShared exports the shared counter of the class.
func (l *CounterLogic) GetShared(class state.Class, mark func()) ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	mark() // atomic with the snapshot: see mbox.Logic
	switch class {
	case state.Supporting:
		return l.encode(l.sharedSupport), nil
	case state.Reporting:
		return l.encode(l.sharedReport), nil
	}
	return nil, mbox.ErrNoSharedState
}

// PutShared merges (sums) the incoming counter.
func (l *CounterLogic) PutShared(class state.Class, blob []byte) error {
	if len(blob) < 8 {
		return fmt.Errorf("counter: short shared blob")
	}
	v := binary.BigEndian.Uint64(blob)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch class {
	case state.Supporting:
		l.sharedSupport += v
	case state.Reporting:
		l.sharedReport += v
	default:
		return mbox.ErrNoSharedState
	}
	return nil
}

// Stats implements mbox.Logic.
func (l *CounterLogic) Stats(m packet.FieldMatch) sbi.StatsReply {
	l.mu.Lock()
	defer l.mu.Unlock()
	var s sbi.StatsReply
	for k := range l.flows {
		if m.MatchEither(k) {
			s.SupportPerflowChunks++
			s.SupportPerflowBytes += l.ChunkBytes
		}
	}
	s.SupportSharedBytes = l.ChunkBytes
	s.ReportSharedBytes = l.ChunkBytes
	return s
}

// Config implements mbox.Logic.
func (l *CounterLogic) Config() *state.ConfigTree { return l.config }

// Count returns the per-flow count for key (canonicalized).
func (l *CounterLogic) Count(key packet.FlowKey) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flows[key.Canonical()]
}

// SharedSupport returns the shared supporting counter.
func (l *CounterLogic) SharedSupport() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sharedSupport
}

// SharedReport returns the shared reporting counter.
func (l *CounterLogic) SharedReport() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sharedReport
}

// Flows returns the number of per-flow records.
func (l *CounterLogic) Flows() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.flows)
}

// SumCounts returns the sum of all per-flow counts.
func (l *CounterLogic) SumCounts() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var sum uint64
	for _, v := range l.flows {
		sum += v
	}
	return sum
}

// Preload installs n per-flow records with count 1, returning their keys.
// Keys are synthetic flows inside 10.0.0.0/8, all destined to port 80 —
// the dummy state the controller benchmarks move around.
func (l *CounterLogic) Preload(n int) []packet.FlowKey {
	keys := make([]packet.FlowKey, n)
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i < n; i++ {
		k := FlowN(i)
		l.flows[k.Canonical()] = 1
		keys[i] = k
	}
	return keys
}

// FlowN returns the i-th synthetic flow key used by Preload.
func FlowN(i int) packet.FlowKey {
	return packet.FlowKey{
		SrcIP:   netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: uint16(1024 + i%60000),
		DstPort: 80,
	}
}

// PacketForFlow builds a packet belonging to FlowN(i).
func PacketForFlow(i int) *packet.Packet {
	k := FlowN(i)
	return &packet.Packet{
		SrcIP: k.SrcIP, DstIP: k.DstIP, Proto: k.Proto,
		SrcPort: k.SrcPort, DstPort: k.DstPort,
		Payload: []byte("dummy-event-payload-128-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
	}
}
