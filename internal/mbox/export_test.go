package mbox

// Test hooks exposing internals to the external test package.

// SetActiveOpsForTest adjusts the active-operation counter, letting tests
// exercise the during-operation latency bucket without a live southbound
// call.
func SetActiveOpsForTest(rt *Runtime, delta int32) { rt.activeOps.Add(delta) }

// DeflateForTest exposes the wire compression helper.
func DeflateForTest(b []byte) []byte { return deflate(b) }

// InflateForTest exposes the wire decompression helper.
func InflateForTest(b []byte) ([]byte, error) { return inflate(b) }
