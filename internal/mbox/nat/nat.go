// Package nat implements a NAT middlebox. The paper uses a NAT to motivate
// two OpenMB capabilities:
//
//   - introspection events (§4.2.2): "a control application may be
//     interested in knowing when a NAT has created a new IP address/port
//     mapping". The NAT raises "nat.mapping.created" and
//     "nat.mapping.expired" events carrying the mapping in the event values.
//   - efficient failure recovery (§2, R6): the viable recovery option keeps
//     "a minimal live snapshot of only critical state (e.g., IP address and
//     port mappings from a NAT), with non-critical state (e.g., mapping
//     timeouts) set to default values when a failed MB instance is
//     replaced". Mapping chunks therefore serialize only the critical
//     fields; timers are reset to defaults on import.
//
// State classes: per-flow supporting (the mappings, keyed by internal
// endpoint) and shared supporting (the external port allocator).
package nat

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Kind is the middlebox type name.
const Kind = "nat"

var _ mbox.BurstLogic = (*NAT)(nil)

// mapping is one NAT binding. External IP/port are CRITICAL state (must
// survive failover); LastActive is non-critical bookkeeping reset on import.
type mapping struct {
	Internal packet.FlowKey // key at NAT granularity: src endpoint + proto
	ExtPort  uint16
	Created  int64
	// LastActive drives idle expiry; non-critical.
	LastActive int64
}

const mappingWireSize = 2 + 8

// NAT is the middlebox logic. It implements mbox.Logic.
type NAT struct {
	mu sync.Mutex
	// byInternal maps internal (src IP, src port, proto) to mapping. The
	// key is a masked FlowKey: destination fields zeroed — the NAT's
	// keying granularity, coarser than a 5-tuple (§4.1.2).
	byInternal map[packet.FlowKey]*mapping
	byExtPort  map[uint16]*mapping
	nextPort   uint16
	extIP      netip.Addr
	config     *state.ConfigTree
}

// New returns a NAT translating to the given external IP.
func New(extIP netip.Addr) *NAT {
	n := &NAT{
		byInternal: map[packet.FlowKey]*mapping{},
		byExtPort:  map[uint16]*mapping{},
		nextPort:   20000,
		extIP:      extIP,
		config:     state.NewConfigTree(),
	}
	if err := n.config.Set("idle_timeout_ns", []string{"300000000000"}); err != nil { // 300 s
		panic("nat: default config: " + err.Error())
	}
	if err := n.config.Set("internal_prefix", []string{"10.0.0.0/8"}); err != nil {
		panic("nat: default config: " + err.Error())
	}
	return n
}

// Kind implements mbox.Logic.
func (n *NAT) Kind() string { return Kind }

// internalKey masks a flow down to the NAT's keying granularity.
func internalKey(srcIP netip.Addr, srcPort uint16, proto uint8) packet.FlowKey {
	return packet.FlowKey{SrcIP: srcIP, SrcPort: srcPort, Proto: proto, DstIP: netip.AddrFrom4([4]byte{}), DstPort: 0}
}

func (n *NAT) internalPrefix() netip.Prefix {
	v, err := n.config.Get("internal_prefix")
	if err != nil || len(v) != 1 {
		return netip.MustParsePrefix("10.0.0.0/8")
	}
	p, err := netip.ParsePrefix(v[0])
	if err != nil {
		return netip.MustParsePrefix("10.0.0.0/8")
	}
	return p
}

func (n *NAT) idleTimeout() int64 {
	v, err := n.config.Get("idle_timeout_ns")
	if err != nil || len(v) != 1 {
		return 300e9
	}
	var ns int64
	if _, err := fmt.Sscanf(v[0], "%d", &ns); err != nil || ns <= 0 {
		return 300e9
	}
	return ns
}

// Process implements mbox.Logic: translate and forward.
func (n *NAT) Process(ctx *mbox.Context, p *packet.Packet) {
	internal := n.internalPrefix()
	switch {
	case internal.Contains(p.SrcIP):
		n.processOutbound(ctx, p)
	case p.DstIP == n.extIP:
		n.processInbound(ctx, p)
	default:
		ctx.Emit(p) // not ours to translate
	}
}

func (n *NAT) processOutbound(ctx *mbox.Context, p *packet.Packet) {
	key := internalKey(p.SrcIP, p.SrcPort, p.Proto)
	n.mu.Lock()
	expired := n.expireLocked(p.Timestamp)
	m, ok := n.byInternal[key]
	created := false
	if !ok && ctx.SkipPerflow() {
		n.mu.Unlock()
		return
	}
	if !ok {
		port, ok2 := n.allocPortLocked()
		if !ok2 {
			n.mu.Unlock()
			return // port exhaustion: drop
		}
		m = &mapping{Internal: key, ExtPort: port, Created: p.Timestamp, LastActive: p.Timestamp}
		n.byInternal[key] = m
		n.byExtPort[port] = m
		created = true
		ctx.TouchShared(state.Supporting) // port allocator advanced
	}
	m.LastActive = p.Timestamp
	ctx.Touch(state.Supporting, key)
	extPort := m.ExtPort
	n.mu.Unlock()

	n.raiseExpired(ctx, expired)
	if created {
		ctx.RaiseIntrospection("nat.mapping.created", key, map[string]string{
			"external": fmt.Sprintf("%s:%d", n.extIP, extPort),
		})
	}
	out := p.Clone()
	out.SrcIP = n.extIP
	out.SrcPort = extPort
	ctx.Emit(out)
}

// natRaise is one deferred introspection raise from a burst: raises must run
// outside n.mu, so ProcessBurst collects them under the lock and replays them
// after it in packet order (expiries before the creation they preceded,
// exactly as the per-packet path orders them).
type natRaise struct {
	idx  int
	code string
	key  packet.FlowKey
	ext  uint16
}

// ProcessBurst implements mbox.BurstLogic. Against the per-packet path it
// amortizes three costs: the internal-prefix config parse happens once per
// burst instead of once per packet, the mutex is taken once for the whole
// burst, and the idle-expiry sweep runs once (at the first NAT-relevant
// packet's timestamp) instead of per packet. The expiry granularity is the
// one deliberate divergence: a mapping whose idle deadline falls mid-burst
// expires at the next burst boundary rather than mid-burst — at the default
// 300 s timeout and microsecond-scale bursts the difference is unobservable.
// Consecutive outbound packets of the same flow reuse the last mapping
// lookup.
func (n *NAT) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	internal := n.internalPrefix()
	var raises []natRaise
	var lastKey packet.FlowKey
	var lastM *mapping
	expiredOnce := false
	n.mu.Lock()
	for i, p := range pkts {
		ctx := &ctxs[i]
		switch {
		case internal.Contains(p.SrcIP):
			if !expiredOnce {
				expiredOnce = true
				for _, m := range n.expireLocked(p.Timestamp) {
					raises = append(raises, natRaise{idx: i, code: "nat.mapping.expired", key: m.Internal, ext: m.ExtPort})
				}
			}
			key := internalKey(p.SrcIP, p.SrcPort, p.Proto)
			var m *mapping
			if lastM != nil && lastKey == key {
				m = lastM
			} else {
				var ok bool
				m, ok = n.byInternal[key]
				if !ok {
					if ctx.SkipPerflow() {
						continue
					}
					port, ok2 := n.allocPortLocked()
					if !ok2 {
						continue // port exhaustion: drop
					}
					m = &mapping{Internal: key, ExtPort: port, Created: p.Timestamp, LastActive: p.Timestamp}
					n.byInternal[key] = m
					n.byExtPort[port] = m
					ctx.TouchShared(state.Supporting) // port allocator advanced
					raises = append(raises, natRaise{idx: i, code: "nat.mapping.created", key: key, ext: port})
				}
				lastKey, lastM = key, m
			}
			m.LastActive = p.Timestamp
			ctx.Touch(state.Supporting, key)
			out := p.Clone()
			out.SrcIP = n.extIP
			out.SrcPort = m.ExtPort
			ctx.Emit(out)
		case p.DstIP == n.extIP:
			if !expiredOnce {
				expiredOnce = true
				for _, m := range n.expireLocked(p.Timestamp) {
					raises = append(raises, natRaise{idx: i, code: "nat.mapping.expired", key: m.Internal, ext: m.ExtPort})
				}
			}
			m, ok := n.byExtPort[p.DstPort]
			if !ok {
				continue // no mapping: drop
			}
			m.LastActive = p.Timestamp
			ctx.Touch(state.Supporting, m.Internal)
			out := p.Clone()
			out.DstIP = m.Internal.SrcIP
			out.DstPort = m.Internal.SrcPort
			ctx.Emit(out)
		default:
			ctx.Emit(p) // not ours to translate
		}
	}
	n.mu.Unlock()
	for _, r := range raises {
		ctxs[r.idx].RaiseIntrospection(r.code, r.key, map[string]string{
			"external": fmt.Sprintf("%s:%d", n.extIP, r.ext),
		})
	}
}

func (n *NAT) processInbound(ctx *mbox.Context, p *packet.Packet) {
	n.mu.Lock()
	expired := n.expireLocked(p.Timestamp)
	m, ok := n.byExtPort[p.DstPort]
	if ok {
		m.LastActive = p.Timestamp
		ctx.Touch(state.Supporting, m.Internal)
	}
	n.mu.Unlock()
	n.raiseExpired(ctx, expired)
	if !ok {
		return // no mapping: drop
	}
	out := p.Clone()
	out.DstIP = m.Internal.SrcIP
	out.DstPort = m.Internal.SrcPort
	ctx.Emit(out)
}

// expireLocked removes idle mappings and returns them so the caller can
// raise expiry introspection events outside the lock.
func (n *NAT) expireLocked(now int64) []mapping {
	timeout := n.idleTimeout()
	var expired []mapping
	for key, m := range n.byInternal {
		if now-m.LastActive > timeout {
			delete(n.byInternal, key)
			delete(n.byExtPort, m.ExtPort)
			expired = append(expired, *m)
		}
	}
	return expired
}

func (n *NAT) raiseExpired(ctx *mbox.Context, expired []mapping) {
	for _, m := range expired {
		ctx.RaiseIntrospection("nat.mapping.expired", m.Internal, map[string]string{
			"external": fmt.Sprintf("%s:%d", n.extIP, m.ExtPort),
		})
	}
}

func (n *NAT) allocPortLocked() (uint16, bool) {
	for tries := 0; tries < 65536; tries++ {
		port := n.nextPort
		n.nextPort++
		if n.nextPort < 20000 {
			n.nextPort = 20000
		}
		if _, used := n.byExtPort[port]; !used && port >= 20000 {
			return port, true
		}
	}
	return 0, false
}

// GetPerflow implements mbox.Logic: mappings serialize only critical fields
// (external port + creation time); idle timers reset on import.
func (n *NAT) GetPerflow(class state.Class, match packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	if class != state.Supporting {
		return nil
	}
	if match.ConstrainsDst() {
		return fmt.Errorf("nat: mappings are keyed by internal endpoint; destination constraints are finer than keying granularity")
	}
	n.mu.Lock()
	keys := make([]packet.FlowKey, 0, len(n.byInternal))
	for k := range n.byInternal {
		if match.MatchEither(k) {
			keys = append(keys, k)
		}
	}
	n.mu.Unlock()
	packet.SortKeys(keys)
	for _, k := range keys {
		key := k
		err := emit(key, func(mark func()) ([]byte, error) {
			n.mu.Lock()
			defer n.mu.Unlock()
			mark()
			m, ok := n.byInternal[key]
			if !ok {
				return nil, fmt.Errorf("nat: mapping for %s expired during get", key)
			}
			b := make([]byte, mappingWireSize)
			binary.BigEndian.PutUint16(b[0:2], m.ExtPort)
			binary.BigEndian.PutUint64(b[2:10], uint64(m.Created))
			return b, nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// PutPerflow implements mbox.Logic: restore a mapping with non-critical
// fields (LastActive) reset to defaults — the failure-recovery semantics of
// §2.
func (n *NAT) PutPerflow(class state.Class, c state.Chunk) error {
	if class != state.Supporting {
		return fmt.Errorf("nat: no per-flow %v state", class)
	}
	if len(c.Blob) < mappingWireSize {
		return fmt.Errorf("nat: short mapping blob (%d bytes)", len(c.Blob))
	}
	m := &mapping{
		Internal: c.Key,
		ExtPort:  binary.BigEndian.Uint16(c.Blob[0:2]),
		Created:  int64(binary.BigEndian.Uint64(c.Blob[2:10])),
		// LastActive deliberately restarts at import time (zero): the
		// idle clock is non-critical state.
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if old, ok := n.byExtPort[m.ExtPort]; ok && old.Internal != m.Internal {
		return fmt.Errorf("nat: external port %d already bound", m.ExtPort)
	}
	n.byInternal[m.Internal] = m
	n.byExtPort[m.ExtPort] = m
	return nil
}

// DelPerflow implements mbox.Logic.
func (n *NAT) DelPerflow(class state.Class, match packet.FieldMatch) (int, error) {
	if class != state.Supporting {
		return 0, nil
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 0
	for k, m := range n.byInternal {
		if match.MatchEither(k) {
			delete(n.byInternal, k)
			delete(n.byExtPort, m.ExtPort)
			count++
		}
	}
	return count, nil
}

// GetShared implements mbox.Logic: the port allocator cursor.
func (n *NAT) GetShared(class state.Class, mark func()) ([]byte, error) {
	if class != state.Supporting {
		return nil, mbox.ErrNoSharedState
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	mark()
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, n.nextPort)
	return b, nil
}

// PutShared implements mbox.Logic: adopt the later allocator cursor, so a
// merged NAT never re-allocates a port the source had handed out.
func (n *NAT) PutShared(class state.Class, blob []byte) error {
	if class != state.Supporting {
		return mbox.ErrNoSharedState
	}
	if len(blob) < 2 {
		return fmt.Errorf("nat: short allocator blob")
	}
	port := binary.BigEndian.Uint16(blob)
	n.mu.Lock()
	defer n.mu.Unlock()
	if port > n.nextPort {
		n.nextPort = port
	}
	return nil
}

// Stats implements mbox.Logic.
func (n *NAT) Stats(match packet.FieldMatch) sbi.StatsReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	var s sbi.StatsReply
	for k := range n.byInternal {
		if match.MatchEither(k) {
			s.SupportPerflowChunks++
			s.SupportPerflowBytes += mappingWireSize
		}
	}
	s.SupportSharedBytes = 2
	return s
}

// Config implements mbox.Logic.
func (n *NAT) Config() *state.ConfigTree { return n.config }

// MappingCount returns the number of live mappings.
func (n *NAT) MappingCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.byInternal)
}

// Lookup returns the external port bound to an internal endpoint.
func (n *NAT) Lookup(srcIP netip.Addr, srcPort uint16, proto uint8) (uint16, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.byInternal[internalKey(srcIP, srcPort, proto)]
	if !ok {
		return 0, false
	}
	return m.ExtPort, true
}
