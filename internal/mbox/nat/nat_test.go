package nat

import (
	"net/netip"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
)

var extIP = netip.MustParseAddr("5.5.5.5")

func outPkt(srcLast byte, srcPort uint16, ts int64) *packet.Packet {
	return &packet.Packet{
		SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, srcLast}), DstIP: netip.MustParseAddr("8.8.8.8"),
		Proto: packet.ProtoTCP, SrcPort: srcPort, DstPort: 443,
		Payload: []byte("req"), Timestamp: ts,
	}
}

func runNAT(t *testing.T, n *NAT) (*mbox.Runtime, *[]*packet.Packet) {
	t.Helper()
	var out []*packet.Packet
	rt := mbox.New("nat1", n, mbox.Options{Forward: func(p *packet.Packet) { out = append(out, p) }})
	t.Cleanup(rt.Close)
	return rt, &out
}

func TestOutboundCreatesMappingAndRewrites(t *testing.T) {
	n := New(extIP)
	rt, out := runNAT(t, n)
	rt.HandlePacket(outPkt(1, 1000, 0))
	rt.Drain(5 * time.Second)
	if len(*out) != 1 {
		t.Fatalf("forwarded: %d", len(*out))
	}
	p := (*out)[0]
	if p.SrcIP != extIP {
		t.Fatalf("src not rewritten: %s", p.SrcIP)
	}
	if n.MappingCount() != 1 {
		t.Fatalf("mappings: %d", n.MappingCount())
	}
	// Same internal endpoint reuses the mapping.
	rt.HandlePacket(outPkt(1, 1000, 1))
	rt.Drain(5 * time.Second)
	if n.MappingCount() != 1 {
		t.Fatalf("mapping duplicated: %d", n.MappingCount())
	}
	if (*out)[1].SrcPort != p.SrcPort {
		t.Fatal("mapping not stable across packets")
	}
}

func TestInboundReverseTranslation(t *testing.T) {
	n := New(extIP)
	rt, out := runNAT(t, n)
	rt.HandlePacket(outPkt(1, 1000, 0))
	rt.Drain(5 * time.Second)
	extPort := (*out)[0].SrcPort

	reply := &packet.Packet{
		SrcIP: netip.MustParseAddr("8.8.8.8"), DstIP: extIP,
		Proto: packet.ProtoTCP, SrcPort: 443, DstPort: extPort,
		Payload: []byte("resp"), Timestamp: 2,
	}
	rt.HandlePacket(reply)
	rt.Drain(5 * time.Second)
	if len(*out) != 2 {
		t.Fatalf("forwarded: %d", len(*out))
	}
	got := (*out)[1]
	if got.DstIP != netip.AddrFrom4([4]byte{10, 0, 0, 1}) || got.DstPort != 1000 {
		t.Fatalf("reverse translation: %s:%d", got.DstIP, got.DstPort)
	}
}

func TestInboundWithoutMappingDrops(t *testing.T) {
	n := New(extIP)
	rt, out := runNAT(t, n)
	rt.HandlePacket(&packet.Packet{
		SrcIP: netip.MustParseAddr("8.8.8.8"), DstIP: extIP,
		Proto: packet.ProtoTCP, SrcPort: 443, DstPort: 33333,
	})
	rt.Drain(5 * time.Second)
	if len(*out) != 0 {
		t.Fatal("unsolicited inbound packet forwarded")
	}
}

func TestIdleExpiry(t *testing.T) {
	n := New(extIP)
	n.Config().Set("idle_timeout_ns", []string{"100"})
	rt, _ := runNAT(t, n)
	rt.HandlePacket(outPkt(1, 1000, 0))
	rt.Drain(5 * time.Second)
	if n.MappingCount() != 1 {
		t.Fatal("no mapping")
	}
	// A later packet from another host triggers expiry of the idle one.
	rt.HandlePacket(outPkt(2, 2000, 1000))
	rt.Drain(5 * time.Second)
	if _, ok := n.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1000, packet.ProtoTCP); ok {
		t.Fatal("idle mapping not expired")
	}
}

func TestCriticalStateFailover(t *testing.T) {
	// The failure-recovery scenario (§2): move the minimal live snapshot
	// (mappings) to a replacement instance; in-progress flows keep their
	// external ports; idle timers restart.
	primary := New(extIP)
	rt, out := runNAT(t, primary)
	for i := byte(1); i <= 5; i++ {
		rt.HandlePacket(outPkt(i, 1000+uint16(i), int64(i)))
	}
	rt.Drain(5 * time.Second)
	extPort, _ := primary.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1001, packet.ProtoTCP)

	replacement := New(extIP)
	err := primary.GetPerflow(state.Supporting, packet.MatchAll, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		return replacement.PutPerflow(state.Supporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil {
		t.Fatal(err)
	}
	sharedBlob, _ := primary.GetShared(state.Supporting, func() {})
	if err := replacement.PutShared(state.Supporting, sharedBlob); err != nil {
		t.Fatal(err)
	}

	if replacement.MappingCount() != 5 {
		t.Fatalf("replacement mappings: %d", replacement.MappingCount())
	}
	gotPort, ok := replacement.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1001, packet.ProtoTCP)
	if !ok || gotPort != extPort {
		t.Fatalf("critical state lost: port %d vs %d", gotPort, extPort)
	}
	// New allocations at the replacement must not collide with ports the
	// primary handed out (the shared allocator cursor moved).
	rt2, out2 := runNAT(t, replacement)
	rt2.HandlePacket(outPkt(9, 9999, 10))
	rt2.Drain(5 * time.Second)
	newPort := (*out2)[0].SrcPort
	for i := byte(1); i <= 5; i++ {
		if p, _ := primary.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, i}), 1000+uint16(i), packet.ProtoTCP); p == newPort {
			t.Fatalf("port %d reallocated after failover", newPort)
		}
	}
	_ = out
}

func TestPortCollisionOnPut(t *testing.T) {
	n := New(extIP)
	rt, _ := runNAT(t, n)
	rt.HandlePacket(outPkt(1, 1000, 0))
	rt.Drain(5 * time.Second)
	extPort, _ := n.Lookup(netip.AddrFrom4([4]byte{10, 0, 0, 1}), 1000, packet.ProtoTCP)
	// A chunk binding a DIFFERENT internal endpoint to the same external
	// port must be rejected.
	blob := make([]byte, mappingWireSize)
	blob[0] = byte(extPort >> 8)
	blob[1] = byte(extPort)
	other := packet.FlowKey{SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, 99}), SrcPort: 9, Proto: packet.ProtoTCP, DstIP: netip.AddrFrom4([4]byte{})}
	if err := n.PutPerflow(state.Supporting, state.Chunk{Key: other, Blob: blob}); err == nil {
		t.Fatal("conflicting put accepted")
	}
}

func TestGranularityError(t *testing.T) {
	n := New(extIP)
	m, _ := packet.ParseFieldMatch("[nw_dst=8.8.8.8]")
	err := n.GetPerflow(state.Supporting, m, func(packet.FlowKey, func(func()) ([]byte, error)) error { return nil })
	if err == nil {
		t.Fatal("destination-constrained get should fail")
	}
}

func TestIntrospectionEventCodes(t *testing.T) {
	n := New(extIP)
	rt, _ := runNAT(t, n)
	_ = rt
	// Events require a controller connection; here we verify the counter
	// paths don't fire without filters (defaults off).
	rt.HandlePacket(outPkt(1, 1000, 0))
	rt.Drain(5 * time.Second)
	if rt.Metrics().IntroRaised != 0 {
		t.Fatal("introspection raised without filter")
	}
}

func TestStatsAndPassthrough(t *testing.T) {
	n := New(extIP)
	rt, out := runNAT(t, n)
	rt.HandlePacket(outPkt(1, 1000, 0))
	// Traffic neither from the internal prefix nor to the external IP
	// passes through untouched.
	rt.HandlePacket(&packet.Packet{
		SrcIP: netip.MustParseAddr("9.9.9.9"), DstIP: netip.MustParseAddr("8.8.8.8"),
		Proto: packet.ProtoTCP, SrcPort: 1, DstPort: 2,
	})
	rt.Drain(5 * time.Second)
	if len(*out) != 2 {
		t.Fatalf("forwarded: %d", len(*out))
	}
	if (*out)[1].SrcIP != netip.MustParseAddr("9.9.9.9") {
		t.Fatal("passthrough packet modified")
	}
	s := n.Stats(packet.MatchAll)
	if s.SupportPerflowChunks != 1 || s.SupportSharedBytes != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPutBlobErrors(t *testing.T) {
	n := New(extIP)
	if err := n.PutPerflow(state.Supporting, state.Chunk{Blob: []byte{1}}); err == nil {
		t.Fatal("short blob accepted")
	}
	if err := n.PutPerflow(state.Reporting, state.Chunk{}); err == nil {
		t.Fatal("wrong class accepted")
	}
	if err := n.PutShared(state.Supporting, nil); err == nil {
		t.Fatal("short shared blob accepted")
	}
}
