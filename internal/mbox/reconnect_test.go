package mbox_test

import (
	"sync/atomic"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/sbi"
)

// reconnectAcceptor is a fake controller that keeps accepting sessions: it
// reads each hello, upgrades to the announced codec, and hands the upgraded
// connection plus its hello to the test.
type reconnectAcceptor struct {
	conns  chan *sbi.Conn
	hellos chan *sbi.Message
	dials  atomic.Int64
}

func startReconnectAcceptor(t *testing.T, tr sbi.Transport, addr string) *reconnectAcceptor {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	a := &reconnectAcceptor{conns: make(chan *sbi.Conn, 8), hellos: make(chan *sbi.Message, 8)}
	go func() {
		for {
			raw, err := l.Accept()
			if err != nil {
				return
			}
			a.dials.Add(1)
			go func() {
				c := sbi.NewConn(raw)
				m, err := c.Receive()
				if err != nil || m.Type != sbi.MsgHello {
					c.Close()
					return
				}
				if err := c.Upgrade(m.Codec); err != nil {
					c.Close()
					return
				}
				a.hellos <- m
				a.conns <- c
			}()
		}
	}()
	return a
}

func (a *reconnectAcceptor) session(t *testing.T) (*sbi.Conn, *sbi.Message) {
	t.Helper()
	select {
	case c := <-a.conns:
		return c, <-a.hellos
	case <-time.After(5 * time.Second):
		t.Fatal("no session established")
		return nil, nil
	}
}

// TestReconnectResumesSession drops the southbound connection under a
// reconnecting runtime and verifies session resume: the runtime redials on
// its own, re-announces the exact same hello (name, kind, codec, event
// batch — the registration IS the resume), and serves requests on the new
// session.
func TestReconnectResumesSession(t *testing.T) {
	tr := sbi.NewMemTransport()
	a := startReconnectAcceptor(t, tr, "ctrl")
	rt := mbox.New("mb1", mbtest.NewCounterLogic(4), mbox.Options{
		Reconnect:    true,
		ReconnectMin: 2 * time.Millisecond,
		ReconnectMax: 20 * time.Millisecond,
	})
	t.Cleanup(rt.Close)
	if err := rt.Connect(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	conn1, hello1 := a.session(t)

	// Sever the session; the runtime must come back by itself.
	conn1.Close()
	conn2, hello2 := a.session(t)
	defer conn2.Close()
	if hello2.Name != hello1.Name || hello2.Kind != hello1.Kind ||
		hello2.Codec != hello1.Codec || hello2.Batch != hello1.Batch {
		t.Fatalf("resumed hello diverged:\n first: %+v\n resume: %+v", hello1, hello2)
	}

	// The new session serves requests: a liveness probe pongs.
	if err := conn2.Send(&sbi.Message{Type: sbi.MsgRequest, Op: sbi.OpPing, ID: 7}); err != nil {
		t.Fatal(err)
	}
	pong, err := conn2.Receive()
	if err != nil {
		t.Fatal(err)
	}
	if pong.Type != sbi.MsgDone || pong.ID != 7 {
		t.Fatalf("ping reply: %+v", pong)
	}
	if got := rt.Metrics().Reconnects; got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
}

// TestReconnectStopsOnClose closes the runtime while it is mid-backoff
// (disconnected, redial loop armed) and verifies the dialing stops: Close
// must win the race against the reconnect loop, with no session churn
// afterwards.
func TestReconnectStopsOnClose(t *testing.T) {
	tr := sbi.NewMemTransport()
	a := startReconnectAcceptor(t, tr, "ctrl")
	rt := mbox.New("mb1", mbtest.NewCounterLogic(4), mbox.Options{
		Reconnect:    true,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 10 * time.Millisecond,
	})
	if err := rt.Connect(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	conn1, _ := a.session(t)
	conn1.Close()
	rt.Close()
	settled := a.dials.Load()
	time.Sleep(100 * time.Millisecond)
	if got := a.dials.Load(); got != settled {
		t.Fatalf("runtime kept dialing after Close: %d -> %d", settled, got)
	}
}
