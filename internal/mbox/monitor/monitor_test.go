package monitor

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/state"
	"openmb/internal/trace"
)

func process(t *testing.T, m *Monitor, pkts ...*packet.Packet) {
	t.Helper()
	rt := mbox.New("m", m, mbox.Options{})
	defer rt.Close()
	for _, p := range pkts {
		rt.HandlePacket(p)
	}
	if !rt.Drain(5e9) {
		t.Fatal("drain timeout")
	}
}

func tcpPkt(src, dst string, sp, dp uint16, flags uint8, payload string) *packet.Packet {
	return &packet.Packet{
		SrcIP: netip.MustParseAddr(src), DstIP: netip.MustParseAddr(dst),
		Proto: packet.ProtoTCP, SrcPort: sp, DstPort: dp,
		Flags: flags, TTL: 64, Payload: []byte(payload),
	}
}

func TestProcessCountsBothDirections(t *testing.T) {
	m := New()
	fwd := tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagSYN, "")
	rev := tcpPkt("1.1.1.1", "10.0.0.1", 80, 1234, packet.FlagSYN|packet.FlagACK, "")
	process(t, m, fwd, rev, fwd)
	if m.FlowCount() != 1 {
		t.Fatalf("flows: %d", m.FlowCount())
	}
	rec, ok := m.FlowRecord(fwd.Flow())
	if !ok {
		t.Fatal("record missing")
	}
	if rec.Packets[0]+rec.Packets[1] != 3 {
		t.Fatalf("packets: %v", rec.Packets)
	}
	s := m.Snapshot()
	if s.Shared.Packets != 3 || s.Shared.TCP != 3 || s.Shared.Flows != 1 {
		t.Fatalf("shared: %+v", s.Shared)
	}
}

func TestServiceDetection(t *testing.T) {
	m := New()
	process(t, m,
		tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET / HTTP/1.1\r\n"),
		tcpPkt("10.0.0.2", "1.1.1.2", 1235, 22, packet.FlagACK, "SSH-2.0-OpenSSH"),
	)
	rec1, _ := m.FlowRecord(tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, 0, "").Flow())
	rec2, _ := m.FlowRecord(tcpPkt("10.0.0.2", "1.1.1.2", 1235, 22, 0, "").Flow())
	if rec1.Service != "http" || rec2.Service != "ssh" {
		t.Fatalf("services: %q %q", rec1.Service, rec2.Service)
	}
	if m.Snapshot().Shared.AssetsFound != 2 {
		t.Fatalf("assets: %d", m.Snapshot().Shared.AssetsFound)
	}
}

func TestServiceDetectionConfigurable(t *testing.T) {
	m := New()
	if err := m.Config().Set("service_detection", []string{"off"}); err != nil {
		t.Fatal(err)
	}
	process(t, m, tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET / HTTP/1.1\r\n"))
	rec, _ := m.FlowRecord(tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, 0, "").Flow())
	if rec.Service != "" {
		t.Fatalf("detection ran while disabled: %q", rec.Service)
	}
}

func TestOSDetectionFromSYN(t *testing.T) {
	m := New()
	p := tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagSYN, "")
	p.TTL = 128
	process(t, m, p)
	rec, _ := m.FlowRecord(p.Flow())
	if rec.OS != "windows" {
		t.Fatalf("os: %q", rec.OS)
	}
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	f := func(p0, p1, b0, b1 uint64, first, last int64, svcIdx uint8) bool {
		services := []string{"", "http", "ssh", "smtp"}
		rec := connRecord{
			FirstSeen: first, LastSeen: last,
			Packets: [2]uint64{p0, p1}, Bytes: [2]uint64{b0, b1},
			Service: services[int(svcIdx)%len(services)], OS: "linux/unix",
		}
		var got connRecord
		if err := got.unmarshal(rec.marshal()); err != nil {
			return false
		}
		return got.Packets == rec.Packets && got.Bytes == rec.Bytes &&
			got.FirstSeen == rec.FirstSeen && got.LastSeen == rec.LastSeen &&
			got.Service == rec.Service && got.OS == rec.OS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordUnmarshalErrors(t *testing.T) {
	var rec connRecord
	if err := rec.unmarshal(make([]byte, 10)); err == nil {
		t.Fatal("short record should fail")
	}
	good := (&connRecord{Service: "http"}).marshal()
	if err := rec.unmarshal(good[:len(good)-2]); err == nil {
		t.Fatal("truncated strings should fail")
	}
}

func TestGetPutMoveConservesCounts(t *testing.T) {
	src := New()
	tr := trace.Cloud(trace.CloudConfig{Seed: 1, Flows: 30})
	rt := mbox.New("src", src, mbox.Options{})
	defer rt.Close()
	for _, p := range tr.Packets {
		rt.HandlePacket(p)
	}
	if !rt.Drain(5e9) {
		t.Fatal("drain")
	}
	total := src.TotalPerflowPackets()

	dst := New()
	err := src.GetPerflow(state.Reporting, packet.MatchAll, func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error {
		blob, err := build(func() {})
		if err != nil {
			return err
		}
		return dst.PutPerflow(state.Reporting, state.Chunk{Key: key, Blob: blob})
	})
	if err != nil {
		t.Fatal(err)
	}
	if dst.TotalPerflowPackets() != total {
		t.Fatalf("per-flow packet counters not conserved: %d vs %d", dst.TotalPerflowPackets(), total)
	}
	if dst.FlowCount() != src.FlowCount() {
		t.Fatalf("flow counts: %d vs %d", dst.FlowCount(), src.FlowCount())
	}
}

func TestPutMergesExistingRecord(t *testing.T) {
	m := New()
	p := tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "x")
	process(t, m, p)
	incoming := connRecord{FirstSeen: -100, LastSeen: 999, Packets: [2]uint64{5, 3}, Bytes: [2]uint64{50, 30}, Service: "http"}
	if err := m.PutPerflow(state.Reporting, state.Chunk{Key: p.Flow().Canonical(), Blob: incoming.marshal()}); err != nil {
		t.Fatal(err)
	}
	rec, _ := m.FlowRecord(p.Flow())
	if rec.Packets[0]+rec.Packets[1] != 9 { // 1 local + 8 incoming
		t.Fatalf("merged packets: %v", rec.Packets)
	}
	if rec.FirstSeen != -100 || rec.LastSeen != 999 {
		t.Fatalf("merged times: %d %d", rec.FirstSeen, rec.LastSeen)
	}
	if rec.Service != "http" {
		t.Fatalf("merged service: %q", rec.Service)
	}
	if m.Snapshot().Shared.Flows != 1 {
		t.Fatal("merge inflated flow count")
	}
}

func TestSharedMergeIsSum(t *testing.T) {
	a, b := New(), New()
	process(t, a, tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "xx"))
	process(t, b,
		tcpPkt("10.0.0.2", "1.1.1.1", 2, 80, 0, "yyy"),
		tcpPkt("10.0.0.3", "1.1.1.1", 3, 80, 0, "z"))
	blob, err := a.GetShared(state.Reporting, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.PutShared(state.Reporting, blob); err != nil {
		t.Fatal(err)
	}
	s := b.Snapshot()
	if s.Shared.Packets != 3 || s.Shared.Bytes != 6 || s.Shared.Flows != 3 {
		t.Fatalf("merged shared: %+v", s.Shared)
	}
}

func TestSharedMergeProperty(t *testing.T) {
	// Merging shared stats is commutative in the total: sum(a)+sum(b)
	// regardless of merge direction.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() *Monitor {
			m := New()
			var s sharedStat
			s.Packets = uint64(r.Intn(1000))
			s.Bytes = uint64(r.Intn(100000))
			s.Flows = uint64(r.Intn(50))
			m.shared = s
			return m
		}
		a1, b1 := mk(), mk()
		aPkts, bPkts := a1.shared.Packets, b1.shared.Packets
		blob, _ := a1.GetShared(state.Reporting, func() {})
		if err := b1.PutShared(state.Reporting, blob); err != nil {
			return false
		}
		return b1.shared.Packets == aPkts+bPkts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDelPerflowSilent(t *testing.T) {
	m := New()
	process(t, m,
		tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "x"),
		tcpPkt("10.0.0.2", "1.1.1.1", 2, 80, 0, "x"))
	match, _ := packet.ParseFieldMatch("[nw_src=10.0.0.1]")
	n, err := m.DelPerflow(state.Reporting, match)
	if err != nil || n != 1 {
		t.Fatalf("del: n=%d err=%v", n, err)
	}
	if m.FlowCount() != 1 {
		t.Fatalf("flows after del: %d", m.FlowCount())
	}
	// Shared flow counter unchanged: the flows were genuinely observed.
	if m.Snapshot().Shared.Flows != 2 {
		t.Fatalf("shared flows: %d", m.Snapshot().Shared.Flows)
	}
}

func TestGetPerflowOnlyReporting(t *testing.T) {
	m := New()
	process(t, m, tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "x"))
	calls := 0
	err := m.GetPerflow(state.Supporting, packet.MatchAll, func(packet.FlowKey, func(func()) ([]byte, error)) error {
		calls++
		return nil
	})
	if err != nil || calls != 0 {
		t.Fatalf("supporting get should be empty: calls=%d err=%v", calls, err)
	}
}

func TestSharedClassErrors(t *testing.T) {
	m := New()
	if _, err := m.GetShared(state.Supporting, func() {}); err == nil {
		t.Fatal("monitor has no shared supporting state")
	}
	if err := m.PutShared(state.Supporting, make([]byte, sharedWireSize)); err == nil {
		t.Fatal("put of unsupported class should fail")
	}
	if err := m.PutShared(state.Reporting, []byte{1, 2}); err == nil {
		t.Fatal("short shared blob should fail")
	}
}

func TestStatsMatchesContents(t *testing.T) {
	m := New()
	process(t, m,
		tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "x"),
		tcpPkt("10.0.0.2", "1.1.1.1", 2, 80, 0, "x"),
		tcpPkt("10.0.1.3", "1.1.1.1", 3, 80, 0, "x"))
	match, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/24]")
	s := m.Stats(match)
	if s.ReportPerflowChunks != 2 {
		t.Fatalf("stats chunks: %d", s.ReportPerflowChunks)
	}
	if s.ReportSharedBytes != sharedWireSize {
		t.Fatalf("stats shared bytes: %d", s.ReportSharedBytes)
	}
}

func TestIntrospectionEventOnAsset(t *testing.T) {
	m := New()
	rt := mbox.New("m", m, mbox.Options{})
	defer rt.Close()
	rt.HandlePacket(tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET / HTTP/1.1\r\n"))
	rt.Drain(5e9)
	// Without a controller connection events go nowhere, but the counter
	// still shows whether the filter would have fired; filters default
	// off, so IntroRaised must be zero.
	if rt.Metrics().IntroRaised != 0 {
		t.Fatal("introspection raised without an enabled filter")
	}
}

func BenchmarkProcess(b *testing.B) {
	m := New()
	ctx := mbox.NewBenchContext()
	p := tcpPkt("10.0.0.1", "1.1.1.1", 1234, 80, packet.FlagACK, "GET / HTTP/1.1\r\n")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Process(ctx, p)
	}
}

func BenchmarkLinearScanGet(b *testing.B) {
	m := New()
	rt := mbox.New("m", m, mbox.Options{})
	defer rt.Close()
	tr := trace.Cloud(trace.CloudConfig{Seed: 2, Flows: 500})
	for _, p := range tr.Packets {
		rt.HandlePacket(p)
	}
	rt.Drain(30e9)
	match, _ := packet.ParseFieldMatch("[nw_src=10.1.0.0/16]")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.GetPerflow(state.Reporting, match, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
			_, err := build(func() {})
			return err
		})
	}
}

func TestIndexedGetEquivalence(t *testing.T) {
	// With indexed_get on, gets must return exactly the same chunks as
	// the linear scan, for matches in either direction.
	tr := trace.Cloud(trace.CloudConfig{Seed: 70, Flows: 60})
	scan := New()
	indexed := New()
	if err := indexed.Config().Set("indexed_get", []string{"on"}); err != nil {
		t.Fatal(err)
	}
	rtA := mbox.New("a", scan, mbox.Options{})
	rtB := mbox.New("b", indexed, mbox.Options{})
	defer rtA.Close()
	defer rtB.Close()
	for _, p := range tr.Packets {
		rtA.HandlePacket(p)
		rtB.HandlePacket(p)
	}
	rtA.Drain(10e9)
	rtB.Drain(10e9)

	for _, spec := range []string{
		"[nw_src=10.1.0.0/17]",
		"[nw_src=10.1.0.0/16]",
		"[nw_dst=52.20.0.0/16]", // reverse-direction prefix
		"[nw_src=10.1.0.0/17,nw_proto=tcp]",
	} {
		m, err := packet.ParseFieldMatch(spec)
		if err != nil {
			t.Fatal(err)
		}
		collect := func(mon *Monitor) []string {
			var keys []string
			err := mon.GetPerflow(state.Reporting, m, func(key packet.FlowKey, build func(func()) ([]byte, error)) error {
				if _, err := build(func() {}); err != nil {
					return err
				}
				keys = append(keys, key.String())
				return nil
			})
			if err != nil {
				t.Fatalf("%s: %v", spec, err)
			}
			return keys
		}
		a, b := collect(scan), collect(indexed)
		if len(a) != len(b) {
			t.Fatalf("%s: scan=%d indexed=%d", spec, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: key %d differs: %s vs %s", spec, i, a[i], b[i])
			}
		}
	}
}

func TestIndexMaintainedAcrossPutDel(t *testing.T) {
	m := New()
	m.Config().Set("indexed_get", []string{"on"})
	process(t, m,
		tcpPkt("10.0.0.1", "1.1.1.1", 1, 80, 0, "x"),
		tcpPkt("10.0.0.2", "1.1.1.1", 2, 80, 0, "x"))
	if m.index == nil || m.index.Len() != 2 {
		t.Fatalf("index size: %v", m.index)
	}
	match, _ := packet.ParseFieldMatch("[nw_src=10.0.0.1]")
	if _, err := m.DelPerflow(state.Reporting, match); err != nil {
		t.Fatal(err)
	}
	if m.index.Len() != 1 {
		t.Fatalf("index after del: %d", m.index.Len())
	}
	// Put re-indexes.
	rec := connRecord{Packets: [2]uint64{1, 0}}
	key := tcpPkt("10.0.0.9", "1.1.1.1", 9, 80, 0, "").Flow().Canonical()
	if err := m.PutPerflow(state.Reporting, state.Chunk{Key: key, Blob: rec.marshal()}); err != nil {
		t.Fatal(err)
	}
	if m.index.Len() != 2 {
		t.Fatalf("index after put: %d", m.index.Len())
	}
	// Turning the index off drops it; gets still work.
	m.Config().Set("indexed_get", []string{"off"})
	if m.index != nil {
		t.Fatal("index not dropped")
	}
	s := m.Stats(packet.MatchAll)
	if s.ReportPerflowChunks != 2 {
		t.Fatalf("stats after index off: %+v", s)
	}
}

func TestIndexInsertRemoveProperty(t *testing.T) {
	// Insert/remove keep the index consistent and duplicate-free: a lookup
	// covering everything returns each inserted key exactly once, and
	// removing every key empties the index.
	all, _ := packet.ParseFieldMatch("[nw_dst=1.1.1.1]")
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ix := state.NewFlowIndex()
		distinct := map[packet.FlowKey]bool{}
		var keys []packet.FlowKey
		for i := 0; i < 50; i++ {
			var a [4]byte
			r.Read(a[:])
			k := packet.FlowKey{
				SrcIP: netip.AddrFrom4(a), DstIP: netip.AddrFrom4([4]byte{1, 1, 1, 1}),
				Proto: packet.ProtoTCP, SrcPort: uint16(r.Intn(1000)), DstPort: 80,
			}
			ix.Insert(k)
			ix.Insert(k) // duplicate: no-op
			distinct[k] = true
			keys = append(keys, k)
		}
		got, ok := ix.Lookup(all)
		if !ok || len(got) != len(distinct) || ix.Len() != len(distinct) {
			return false
		}
		seen := map[packet.FlowKey]bool{}
		for _, k := range got {
			if seen[k] || !distinct[k] {
				return false
			}
			seen[k] = true
		}
		for _, k := range keys {
			ix.Remove(k)
		}
		return ix.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
