package monitor

import (
	"net/netip"
	"sort"

	"openmb/internal/packet"
)

// srcIndex orders connection keys by source and by destination address, so
// gets whose match constrains an address prefix can binary-search the
// covered ranges instead of scanning the whole table — the wildcard-match
// structure footnote 6 of the paper suggests. Because a request may name
// either direction of a flow, each constrained prefix is probed against
// both orderings; candidates are then filtered exactly with MatchEither.
type srcIndex struct {
	bySrc []packet.FlowKey // sorted by (SrcIP, SrcPort, DstIP, DstPort, Proto)
	byDst []packet.FlowKey // sorted by (DstIP, DstPort, SrcIP, SrcPort, Proto)
}

func newSrcIndex() *srcIndex { return &srcIndex{} }

func srcLess(a, b packet.FlowKey) bool {
	if c := a.SrcIP.Compare(b.SrcIP); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if c := a.DstIP.Compare(b.DstIP); c != 0 {
		return c < 0
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

func dstLess(a, b packet.FlowKey) bool {
	if c := a.DstIP.Compare(b.DstIP); c != 0 {
		return c < 0
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	if c := a.SrcIP.Compare(b.SrcIP); c != 0 {
		return c < 0
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	return a.Proto < b.Proto
}

func insertSorted(keys []packet.FlowKey, k packet.FlowKey, less func(a, b packet.FlowKey) bool) []packet.FlowKey {
	i := sort.Search(len(keys), func(i int) bool { return !less(keys[i], k) })
	if i < len(keys) && keys[i] == k {
		return keys
	}
	keys = append(keys, packet.FlowKey{})
	copy(keys[i+1:], keys[i:])
	keys[i] = k
	return keys
}

func removeSorted(keys []packet.FlowKey, k packet.FlowKey, less func(a, b packet.FlowKey) bool) []packet.FlowKey {
	i := sort.Search(len(keys), func(i int) bool { return !less(keys[i], k) })
	if i < len(keys) && keys[i] == k {
		return append(keys[:i], keys[i+1:]...)
	}
	return keys
}

func (ix *srcIndex) insert(k packet.FlowKey) {
	ix.bySrc = insertSorted(ix.bySrc, k, srcLess)
	ix.byDst = insertSorted(ix.byDst, k, dstLess)
}

func (ix *srcIndex) remove(k packet.FlowKey) {
	ix.bySrc = removeSorted(ix.bySrc, k, srcLess)
	ix.byDst = removeSorted(ix.byDst, k, dstLess)
}

// rangeKeys returns the keys matching m using the indexes, and whether the
// index was applicable (a source or destination prefix was constrained).
func (ix *srcIndex) rangeKeys(m packet.FieldMatch) ([]packet.FlowKey, bool) {
	var prefixes []netip.Prefix
	if m.SrcPrefix.IsValid() {
		prefixes = append(prefixes, m.SrcPrefix)
	}
	if m.DstPrefix.IsValid() {
		prefixes = append(prefixes, m.DstPrefix)
	}
	if len(prefixes) == 0 {
		return nil, false // full address wildcard: a scan is optimal anyway
	}
	seen := map[packet.FlowKey]bool{}
	var out []packet.FlowKey
	add := func(k packet.FlowKey) {
		if !seen[k] && m.MatchEither(k) {
			seen[k] = true
			out = append(out, k)
		}
	}
	for _, p := range prefixes {
		lo := p.Masked().Addr()
		start := sort.Search(len(ix.bySrc), func(i int) bool { return ix.bySrc[i].SrcIP.Compare(lo) >= 0 })
		for i := start; i < len(ix.bySrc) && p.Contains(ix.bySrc[i].SrcIP); i++ {
			add(ix.bySrc[i])
		}
		start = sort.Search(len(ix.byDst), func(i int) bool { return ix.byDst[i].DstIP.Compare(lo) >= 0 })
		for i := start; i < len(ix.byDst) && p.Contains(ix.byDst[i].DstIP); i++ {
			add(ix.byDst[i])
		}
	}
	return out, true
}

// Len returns the number of indexed keys.
func (ix *srcIndex) Len() int { return len(ix.bySrc) }
