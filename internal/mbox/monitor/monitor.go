// Package monitor implements a PRADS-like passive asset monitor (§7 of the
// paper). It mirrors the state shapes of PRADS that the paper's evaluation
// depends on:
//
//   - one flat per-flow connection record per flow — per-flow REPORTING
//     state (PRADS keeps a connection object per flow, stored in buckets);
//   - a single shared statistics structure (prads_stat) counting packets,
//     bytes, and flows across all traffic — shared REPORTING state, merged
//     by summation when instances consolidate (putSharedReport adds counter
//     values, exactly as the paper describes);
//   - passive asset detection: service fingerprints recognized from payload
//     prefixes, raising introspection events on first detection.
//
// Prefix-constrained gets use a flow-keyed index (state.FlowIndex — the
// wildcard-match structure of the paper's footnote 6) so their cost is
// O(matched), not O(resident). Setting the "indexed_get" config knob to
// "off" restores the PRADS-faithful full-table linear scan, which the
// ablation benchmarks use to quantify the index's benefit; full-wildcard
// gets scan either way, reproducing the get/put cost asymmetry measured in
// Figure 9 (the paper attributes the ~6x gap to PRADS's and Bro's linear
// search).
package monitor

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"

	"openmb/internal/mbox"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// Kind is the middlebox type name.
const Kind = "monitor"

var _ mbox.BurstLogic = (*Monitor)(nil)

// connRecord is the per-flow reporting state: PRADS's connection object.
type connRecord struct {
	Key       packet.FlowKey
	FirstSeen int64
	LastSeen  int64
	// Packets and Bytes per direction: index 0 = forward (same direction
	// as Key), 1 = reverse.
	Packets [2]uint64
	Bytes   [2]uint64
	// Service is the detected service name ("" until detected).
	Service string
	// OS is a coarse passive OS guess from SYN TTL.
	OS string
}

// recordWireSize is the fixed binary encoding size of a connRecord minus the
// variable-length strings.
const recordWireSize = 8 + 8 + 4*8 + 2 + 2

func (c *connRecord) marshal() []byte {
	b := make([]byte, 0, recordWireSize+len(c.Service)+len(c.OS))
	var tmp [8]byte
	put64 := func(v uint64) {
		binary.BigEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:8]...)
	}
	put64(uint64(c.FirstSeen))
	put64(uint64(c.LastSeen))
	put64(c.Packets[0])
	put64(c.Packets[1])
	put64(c.Bytes[0])
	put64(c.Bytes[1])
	b = append(b, byte(len(c.Service)), byte(len(c.OS)))
	b = append(b, c.Service...)
	b = append(b, c.OS...)
	return b
}

func (c *connRecord) unmarshal(b []byte) error {
	if len(b) < recordWireSize-2 {
		return fmt.Errorf("monitor: short record (%d bytes)", len(b))
	}
	c.FirstSeen = int64(binary.BigEndian.Uint64(b[0:8]))
	c.LastSeen = int64(binary.BigEndian.Uint64(b[8:16]))
	c.Packets[0] = binary.BigEndian.Uint64(b[16:24])
	c.Packets[1] = binary.BigEndian.Uint64(b[24:32])
	c.Bytes[0] = binary.BigEndian.Uint64(b[32:40])
	c.Bytes[1] = binary.BigEndian.Uint64(b[40:48])
	sl, ol := int(b[48]), int(b[49])
	rest := b[50:]
	if len(rest) < sl+ol {
		return fmt.Errorf("monitor: truncated record strings")
	}
	c.Service = string(rest[:sl])
	c.OS = string(rest[sl : sl+ol])
	return nil
}

// sharedStat is the shared reporting state: PRADS's prads_stat.
type sharedStat struct {
	Packets     uint64
	Bytes       uint64
	TCP         uint64
	UDP         uint64
	ICMP        uint64
	Flows       uint64
	AssetsFound uint64
}

const sharedWireSize = 7 * 8

func (s *sharedStat) marshal() []byte {
	b := make([]byte, sharedWireSize)
	for i, v := range []uint64{s.Packets, s.Bytes, s.TCP, s.UDP, s.ICMP, s.Flows, s.AssetsFound} {
		binary.BigEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func (s *sharedStat) unmarshalAdd(b []byte) error {
	if len(b) < sharedWireSize {
		return fmt.Errorf("monitor: short shared stat (%d bytes)", len(b))
	}
	s.Packets += binary.BigEndian.Uint64(b[0:])
	s.Bytes += binary.BigEndian.Uint64(b[8:])
	s.TCP += binary.BigEndian.Uint64(b[16:])
	s.UDP += binary.BigEndian.Uint64(b[24:])
	s.ICMP += binary.BigEndian.Uint64(b[32:])
	s.Flows += binary.BigEndian.Uint64(b[40:])
	s.AssetsFound += binary.BigEndian.Uint64(b[48:])
	return nil
}

// serviceFingerprints map payload prefixes to service names, mimicking
// PRADS's passive service detection.
var serviceFingerprints = []struct {
	prefix  []byte
	service string
}{
	{[]byte("HTTP/1."), "http"},
	{[]byte("GET "), "http"},
	{[]byte("POST "), "http"},
	{[]byte("HEAD "), "http"},
	{[]byte("SSH-"), "ssh"},
	{[]byte("220 "), "smtp"},
	{[]byte("+OK"), "pop3"},
	{[]byte("* OK"), "imap"},
}

// Monitor is the middlebox logic. It implements mbox.Logic.
type Monitor struct {
	mu     sync.Mutex
	conns  map[packet.FlowKey]*connRecord
	shared sharedStat
	config *state.ConfigTree
	// index is the flow-keyed index behind prefix-constrained gets — the
	// wildcard-match structure of the paper's footnote 6, now the default.
	// The "indexed_get" config knob ("off") disables it, restoring the
	// PRADS-faithful full-table linear scan for the ablation benchmarks.
	index *state.FlowIndex
	// serviceOn caches the "service_detection" knob: reading the config
	// tree costs per-packet allocations (path splitting), which the
	// zero-copy data path cannot afford. Refreshed by the config watcher.
	serviceOn bool
}

// New returns an empty monitor with default configuration.
func New() *Monitor {
	m := &Monitor{
		conns:  map[packet.FlowKey]*connRecord{},
		config: state.NewConfigTree(),
	}
	// Default PRADS-style configuration knobs; control applications clone
	// and adjust these (§6.2 step 1).
	if err := m.config.Set("service_detection", []string{"on"}); err != nil {
		panic("monitor: default config: " + err.Error())
	}
	if err := m.config.Set("os_detection", []string{"on"}); err != nil {
		panic("monitor: default config: " + err.Error())
	}
	if err := m.config.Set("indexed_get", []string{"on"}); err != nil {
		panic("monitor: default config: " + err.Error())
	}
	m.config.Watch(func(string) {
		m.mu.Lock()
		m.applyConfigLocked()
		m.mu.Unlock()
	})
	m.index = state.NewFlowIndex()
	m.serviceOn = true
	return m
}

// applyConfigLocked refreshes the cached knobs: builds or drops the flow
// index and re-reads the service-detection switch.
func (m *Monitor) applyConfigLocked() {
	v, err := m.config.Get("indexed_get")
	on := err == nil && len(v) == 1 && v[0] == "on"
	switch {
	case on && m.index == nil:
		m.index = state.NewFlowIndex()
		for k := range m.conns {
			m.index.Insert(k)
		}
	case !on && m.index != nil:
		m.index = nil
	}
	v, err = m.config.Get("service_detection")
	m.serviceOn = err == nil && len(v) > 0 && v[0] == "on"
}

// Kind implements mbox.Logic.
func (m *Monitor) Kind() string { return Kind }

// Process implements mbox.Logic: update the flow's connection record and the
// shared statistics.
func (m *Monitor) Process(ctx *mbox.Context, p *packet.Packet) {
	m.mu.Lock()
	key, newService := m.processLocked(ctx, p, nil)
	m.mu.Unlock()

	if newService != "" {
		ctx.RaiseIntrospection("monitor.asset.detected", key, map[string]string{"service": newService})
	}
	// A passive monitor taps traffic; it does not forward packets.
}

// recCache caches the last (canonical key -> record) resolution within one
// burst, so consecutive packets of the same flow — the common arrival
// pattern — skip the connection-table lookup. Only valid while m.mu is held
// continuously (ProcessBurst holds it for the whole burst).
type recCache struct {
	key packet.FlowKey
	rec *connRecord
}

// processLocked is the per-packet body shared by Process and ProcessBurst.
// Caller holds m.mu. It returns the packet's canonical key and the newly
// detected service name ("" if none) for the introspection raise, which must
// happen outside the lock.
func (m *Monitor) processLocked(ctx *mbox.Context, p *packet.Packet, cache *recCache) (packet.FlowKey, string) {
	key := p.Flow().Canonical()
	dir := 0
	if p.Flow() != key {
		dir = 1
	}
	newService := ""
	if !ctx.SkipPerflow() {
		var rec *connRecord
		if cache != nil && cache.rec != nil && cache.key == key {
			rec = cache.rec
		} else {
			var ok bool
			rec, ok = m.conns[key]
			if !ok {
				rec = &connRecord{Key: key, FirstSeen: p.Timestamp}
				m.conns[key] = rec
				if m.index != nil {
					m.index.Insert(key)
				}
				if !ctx.SkipShared() {
					m.shared.Flows++
				}
			}
			if cache != nil {
				cache.key, cache.rec = key, rec
			}
		}
		rec.LastSeen = p.Timestamp
		rec.Packets[dir]++
		rec.Bytes[dir] += uint64(len(p.Payload))

		if rec.Service == "" && len(p.Payload) > 0 && m.serviceOn {
			for _, fp := range serviceFingerprints {
				if bytes.HasPrefix(p.Payload, fp.prefix) {
					rec.Service = fp.service
					if !ctx.SkipShared() {
						m.shared.AssetsFound++
					}
					newService = fp.service
					break
				}
			}
		}
		if rec.OS == "" && p.Flags&packet.FlagSYN != 0 && p.Flags&packet.FlagACK == 0 {
			rec.OS = osFromTTL(p.TTL)
		}
		ctx.Touch(state.Reporting, key)
	}

	if !ctx.SkipShared() {
		m.shared.Packets++
		m.shared.Bytes += uint64(len(p.Payload))
		switch p.Proto {
		case packet.ProtoTCP:
			m.shared.TCP++
		case packet.ProtoUDP:
			m.shared.UDP++
		case packet.ProtoICMP:
			m.shared.ICMP++
		}
		ctx.TouchShared(state.Reporting)
	}
	return key, newService
}

// ProcessBurst implements mbox.BurstLogic: one mutex acquisition covers the
// whole burst, and consecutive same-flow packets reuse the last record
// lookup. Introspection raises are collected under the lock and raised after
// it in packet order, exactly as the per-packet path orders them; the common
// case (no new detections) allocates nothing.
func (m *Monitor) ProcessBurst(ctxs []mbox.Context, pkts []*packet.Packet) {
	type detection struct {
		idx     int
		key     packet.FlowKey
		service string
	}
	var found []detection
	var cache recCache
	m.mu.Lock()
	for i, p := range pkts {
		if key, svc := m.processLocked(&ctxs[i], p, &cache); svc != "" {
			found = append(found, detection{idx: i, key: key, service: svc})
		}
	}
	m.mu.Unlock()
	for _, d := range found {
		ctxs[d.idx].RaiseIntrospection("monitor.asset.detected", d.key, map[string]string{"service": d.service})
	}
}

// osFromTTL is the classic passive-OS heuristic from initial TTL.
func osFromTTL(ttl uint8) string {
	switch {
	case ttl > 128:
		return "solaris/cisco"
	case ttl > 64:
		return "windows"
	default:
		return "linux/unix"
	}
}

// GetPerflow implements mbox.Logic. Per-flow state is reporting state;
// prefix-constrained matches use the flow index, everything else scans the
// connection table linearly, as in PRADS (§7).
func (m *Monitor) GetPerflow(class state.Class, match packet.FieldMatch, emit func(key packet.FlowKey, build func(mark func()) ([]byte, error)) error) error {
	if class != state.Reporting {
		return nil // PRADS has no per-flow supporting state
	}
	keys := m.scanKeys(match)
	for _, k := range keys {
		key := k
		err := emit(key, func(mark func()) ([]byte, error) {
			m.mu.Lock()
			defer m.mu.Unlock()
			mark()
			rec, ok := m.conns[key]
			if !ok {
				// Deleted between scan and serialize: an empty
				// record is correct (events cover any updates).
				rec = &connRecord{Key: key}
			}
			return rec.marshal(), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// scanKeys collects the keys matching match: via the flow index when it
// applies (prefix-constrained match, index enabled), else the full-table
// linear search of PRADS — the behaviour footnote 6 of the paper points at,
// kept behind the "indexed_get=off" knob for the ablation benchmarks.
func (m *Monitor) scanKeys(match packet.FieldMatch) []packet.FlowKey {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.index != nil {
		if keys, ok := m.index.Lookup(match); ok {
			packet.SortKeys(keys)
			return keys
		}
	}
	var keys []packet.FlowKey
	for k := range m.conns {
		if match.MatchEither(k) {
			keys = append(keys, k)
		}
	}
	packet.SortKeys(keys)
	return keys
}

// PutPerflow implements mbox.Logic: install a record moved from a peer. If a
// record already exists (the flow started at this instance while the move
// was in flight), counters are summed — reporting state merges additively.
func (m *Monitor) PutPerflow(class state.Class, c state.Chunk) error {
	if class != state.Reporting {
		return fmt.Errorf("monitor: no per-flow %v state", class)
	}
	var rec connRecord
	if err := rec.unmarshal(c.Blob); err != nil {
		return err
	}
	rec.Key = c.Key
	m.mu.Lock()
	defer m.mu.Unlock()
	if existing, ok := m.conns[c.Key]; ok {
		existing.Packets[0] += rec.Packets[0]
		existing.Packets[1] += rec.Packets[1]
		existing.Bytes[0] += rec.Bytes[0]
		existing.Bytes[1] += rec.Bytes[1]
		if rec.FirstSeen < existing.FirstSeen {
			existing.FirstSeen = rec.FirstSeen
		}
		if rec.LastSeen > existing.LastSeen {
			existing.LastSeen = rec.LastSeen
		}
		if existing.Service == "" {
			existing.Service = rec.Service
		}
		if existing.OS == "" {
			existing.OS = rec.OS
		}
		return nil
	}
	m.conns[c.Key] = &rec
	if m.index != nil {
		m.index.Insert(c.Key)
	}
	m.shared.Flows++
	return nil
}

// DelPerflow implements mbox.Logic: remove without reporting side effects.
// The shared flow counter is NOT decremented: the flows were observed here,
// and the state accounting for them now lives elsewhere.
func (m *Monitor) DelPerflow(class state.Class, match packet.FieldMatch) (int, error) {
	if class != state.Reporting {
		return 0, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for k := range m.conns {
		if match.MatchEither(k) {
			delete(m.conns, k)
			if m.index != nil {
				m.index.Remove(k)
			}
			n++
		}
	}
	return n, nil
}

// GetShared implements mbox.Logic: export the prads_stat counters.
func (m *Monitor) GetShared(class state.Class, mark func()) ([]byte, error) {
	if class != state.Reporting {
		return nil, mbox.ErrNoSharedState
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	mark()
	return m.shared.marshal(), nil
}

// PutShared implements mbox.Logic: merge by adding the counter values in the
// incoming structure to the counters already here — the paper's PRADS
// putSharedReport implementation (§7).
func (m *Monitor) PutShared(class state.Class, blob []byte) error {
	if class != state.Reporting {
		return mbox.ErrNoSharedState
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.shared.unmarshalAdd(blob)
}

// Stats implements mbox.Logic.
func (m *Monitor) Stats(match packet.FieldMatch) sbi.StatsReply {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s sbi.StatsReply
	for k, rec := range m.conns {
		if match.MatchEither(k) {
			s.ReportPerflowChunks++
			s.ReportPerflowBytes += recordWireSize + len(rec.Service) + len(rec.OS)
		}
	}
	s.ReportSharedBytes = sharedWireSize
	return s
}

// Config implements mbox.Logic.
func (m *Monitor) Config() *state.ConfigTree { return m.config }

// Snapshot is the exported view of the monitor's statistics, used by the
// evaluation harness to compare collective monitoring behaviour across
// scaling events (§6.2: "no over-reporting or under-reporting").
type Snapshot struct {
	Shared struct {
		Packets, Bytes, TCP, UDP, ICMP, Flows, AssetsFound uint64
	}
	Flows int
}

// Snapshot returns a copy of the monitor's counters.
func (m *Monitor) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s Snapshot
	s.Shared.Packets = m.shared.Packets
	s.Shared.Bytes = m.shared.Bytes
	s.Shared.TCP = m.shared.TCP
	s.Shared.UDP = m.shared.UDP
	s.Shared.ICMP = m.shared.ICMP
	s.Shared.Flows = m.shared.Flows
	s.Shared.AssetsFound = m.shared.AssetsFound
	s.Flows = len(m.conns)
	return s
}

// FlowRecord returns a copy of the record for key, if present.
func (m *Monitor) FlowRecord(key packet.FlowKey) (connRecord, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.conns[key.Canonical()]
	if !ok {
		return connRecord{}, false
	}
	return *rec, true
}

// FlowCount returns the number of per-flow records.
func (m *Monitor) FlowCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.conns)
}

// TotalPerflowPackets sums packet counters across all per-flow records —
// the quantity that must be conserved across moves (no over/under
// reporting).
func (m *Monitor) TotalPerflowPackets() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum uint64
	for _, rec := range m.conns {
		sum += rec.Packets[0] + rec.Packets[1]
	}
	return sum
}
