package mbox_test

import (
	"encoding/binary"
	"net/netip"
	"sync"
	"testing"
	"time"

	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// harness wires a runtime to a fake controller endpoint over MemTransport.
type harness struct {
	rt   *mbox.Runtime
	ctrl *sbi.Conn
	// hello is the runtime's registration frame, kept for assertions on
	// its announcements (codec, event batch).
	hello *sbi.Message
	// events receives MsgEvent frames; replies receives everything else.
	events  chan *sbi.Message
	replies chan *sbi.Message
}

func newHarness(t *testing.T, logic mbox.Logic) *harness {
	t.Helper()
	tr := sbi.NewMemTransport()
	l, err := tr.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	rt := mbox.New("mb1", logic, mbox.Options{})
	t.Cleanup(rt.Close)
	// The hello must be consumed concurrently with Connect: the in-memory
	// pipe is synchronous, so Connect's hello send blocks until read.
	accepted := make(chan *sbi.Conn, 1)
	hellos := make(chan *sbi.Message, 1)
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		c := sbi.NewConn(raw)
		m, err := c.Receive()
		if err != nil {
			return
		}
		hellos <- m
		accepted <- c
	}()
	if err := rt.Connect(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}
	ctrl := <-accepted
	hello := <-hellos
	if hello.Type != sbi.MsgHello || hello.Name != "mb1" || hello.Kind != logic.Kind() {
		t.Fatalf("hello: %+v", hello)
	}
	// Honor the codec announcement as a real controller would (the
	// runtime defaults to the binary fast path).
	if err := ctrl.Upgrade(hello.Codec); err != nil {
		t.Fatal(err)
	}
	h := &harness{rt: rt, ctrl: ctrl, hello: hello, events: make(chan *sbi.Message, 1024), replies: make(chan *sbi.Message, 1024)}
	go func() {
		for {
			m, err := ctrl.Receive()
			if err != nil {
				close(h.events)
				close(h.replies)
				return
			}
			if m.Type == sbi.MsgEvent {
				h.events <- m
			} else {
				h.replies <- m
			}
		}
	}()
	t.Cleanup(func() { ctrl.Close() })
	return h
}

func (h *harness) send(t *testing.T, m *sbi.Message) {
	t.Helper()
	if err := h.ctrl.Send(m); err != nil {
		t.Fatal(err)
	}
}

func (h *harness) reply(t *testing.T) *sbi.Message {
	t.Helper()
	select {
	case m, ok := <-h.replies:
		if !ok {
			t.Fatal("controller connection closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for reply")
	}
	return nil
}

func (h *harness) collectGet(t *testing.T, id uint64) ([]*state.Chunk, int) {
	t.Helper()
	var chunks []*state.Chunk
	for {
		m := h.reply(t)
		if m.ID != id {
			t.Fatalf("unexpected id %d (want %d): %+v", m.ID, id, m)
		}
		switch m.Type {
		case sbi.MsgChunk:
			chunks = append(chunks, m.Chunk)
		case sbi.MsgDone:
			return chunks, m.Count
		case sbi.MsgError:
			t.Fatalf("get failed: %s", m.Error)
		}
	}
}

func pkt(srcLast byte, srcPort uint16) *packet.Packet {
	return &packet.Packet{
		SrcIP:   netip.AddrFrom4([4]byte{10, 0, 0, srcLast}),
		DstIP:   netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto:   packet.ProtoTCP,
		SrcPort: srcPort, DstPort: 80,
		Payload: []byte("data"),
	}
}

func TestPacketLoopAndMetrics(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	var forwarded int
	var mu sync.Mutex
	rt := mbox.New("mb1", logic, mbox.Options{Forward: func(p *packet.Packet) {
		mu.Lock()
		forwarded++
		mu.Unlock()
	}})
	defer rt.Close()
	for i := 0; i < 10; i++ {
		rt.HandlePacket(pkt(1, 1000))
	}
	if !rt.Drain(time.Second) {
		t.Fatal("drain timeout")
	}
	m := rt.Metrics()
	if m.Processed != 10 || m.Emitted != 10 {
		t.Fatalf("metrics: %+v", m)
	}
	mu.Lock()
	defer mu.Unlock()
	if forwarded != 10 {
		t.Fatalf("forwarded: %d", forwarded)
	}
	if logic.Count(pkt(1, 1000).Flow()) != 10 {
		t.Fatal("logic did not see packets")
	}
	if got := rt.Log("conn"); len(got) != 10 {
		t.Fatalf("log lines: %d", len(got))
	}
}

func TestGetMarksAndRaisesEvents(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	// Create state for two flows.
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.HandlePacket(pkt(2, 2000))
	h.rt.Drain(time.Second)

	m, _ := packet.ParseFieldMatch("[nw_src=10.0.0.1]")
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: m})
	chunks, count := h.collectGet(t, 1)
	if count != 1 || len(chunks) != 1 {
		t.Fatalf("chunks: %d count: %d", len(chunks), count)
	}
	if h.rt.MarkedKeys() != 1 {
		t.Fatalf("marked keys: %d", h.rt.MarkedKeys())
	}

	// Packet on the moved flow raises a reprocess event...
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		if ev.Event.Kind != sbi.EventReprocess || len(ev.Event.Packet) == 0 {
			t.Fatalf("event: %+v", ev.Event)
		}
	case <-time.After(time.Second):
		t.Fatal("no reprocess event")
	}
	// ...but a packet on the unmoved flow does not.
	h.rt.HandlePacket(pkt(2, 2000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		t.Fatalf("unexpected event for unmoved flow: %+v", ev.Event)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestChunksAreSealed(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: packet.MatchAll})
	chunks, _ := h.collectGet(t, 1)
	if len(chunks) != 1 {
		t.Fatal("no chunk")
	}
	// The blob must be opaque: bigger than the 8-byte plaintext and not
	// decodable as the raw counter.
	if len(chunks[0].Blob) <= 8 {
		t.Fatalf("blob looks unsealed: %d bytes", len(chunks[0].Blob))
	}
	// A same-kind sealer opens it.
	sealer := state.NewSealer("openmb-mbtype-counter")
	pt, err := sealer.Open(chunks[0].Blob)
	if err != nil || len(pt) != 8 {
		t.Fatalf("open: %v len=%d", err, len(pt))
	}
}

func TestPutAndDelPerflow(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	sealer := state.NewSealer("openmb-mbtype-counter")
	key := pkt(5, 5000).Flow().Canonical()
	blob := make([]byte, 8)
	binary.BigEndian.PutUint64(blob, 42)
	h.send(t, &sbi.Message{
		Type: sbi.MsgRequest, ID: 2, Op: sbi.OpPutSupportPerflow,
		Chunk: &state.Chunk{Key: key, Blob: sealer.Seal(blob)},
	})
	if m := h.reply(t); m.Type != sbi.MsgDone || m.ID != 2 {
		t.Fatalf("put ack: %+v", m)
	}
	if logic.Count(key) != 42 {
		t.Fatalf("state not installed: %d", logic.Count(key))
	}
	// Delete clears state and marks.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 3, Op: sbi.OpDelSupportPerflow, Match: packet.MatchAll})
	if m := h.reply(t); m.Type != sbi.MsgDone || m.Count != 1 {
		t.Fatalf("del ack: %+v", m)
	}
	if logic.Count(key) != 0 {
		t.Fatal("state not deleted")
	}
}

func TestDelClearsMarksStopsEvents(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: packet.MatchAll})
	h.collectGet(t, 1)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 2, Op: sbi.OpDelSupportPerflow, Match: packet.MatchAll})
	h.reply(t)
	if h.rt.MarkedKeys() != 0 {
		t.Fatalf("marks remain: %d", h.rt.MarkedKeys())
	}
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		t.Fatalf("event after del: %+v", ev.Event)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestReplaySuppressesSideEffects(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	p := pkt(9, 9000)
	h.send(t, &sbi.Message{
		Type: sbi.MsgRequest, Op: sbi.OpReprocess,
		Event: &sbi.Event{Kind: sbi.EventReprocess, Key: p.Flow(), Packet: p.Marshal(nil)},
	})
	deadline := time.Now().Add(2 * time.Second)
	for h.rt.Metrics().Replayed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	m := h.rt.Metrics()
	if m.Replayed != 1 {
		t.Fatalf("replayed: %d", m.Replayed)
	}
	if m.Emitted != 0 || m.SuppressedEmits != 1 || m.SuppressedLogs != 1 {
		t.Fatalf("side effects not suppressed: %+v", m)
	}
	if logic.Count(p.Flow()) != 1 {
		t.Fatal("replay did not update state")
	}
	if len(h.rt.Log("conn")) != 0 {
		t.Fatal("replay wrote a log line")
	}
}

func TestSharedGetPutMerge(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	for i := 0; i < 5; i++ {
		h.rt.HandlePacket(pkt(1, 1000))
	}
	h.rt.Drain(time.Second)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetReportShared})
	m := h.reply(t)
	if m.Type != sbi.MsgDone || len(m.Blob) == 0 {
		t.Fatalf("shared get: %+v", m)
	}
	// Put it back: merge doubles the counter.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 2, Op: sbi.OpPutReportShared, Blob: m.Blob})
	if ack := h.reply(t); ack.Type != sbi.MsgDone {
		t.Fatalf("shared put: %+v", ack)
	}
	if got := logic.SharedReport(); got != 10 {
		t.Fatalf("merged shared counter: %d, want 10", got)
	}
}

func TestSharedMarkRaisesEvents(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetReportShared})
	h.reply(t)
	h.rt.HandlePacket(pkt(3, 3000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		if ev.Event.Kind != sbi.EventReprocess {
			t.Fatalf("event: %+v", ev.Event)
		}
	case <-time.After(time.Second):
		t.Fatal("no event for cloned shared state")
	}
	// A del with Enable=true ends the shared transaction.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 2, Op: sbi.OpDelReportPerflow, Match: packet.MatchAll, Enable: true})
	h.reply(t)
	h.rt.HandlePacket(pkt(3, 3000))
	h.rt.Drain(time.Second)
	select {
	case <-h.events:
		t.Fatal("event after shared transaction end")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestIntrospectionFilters(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	// Default: no introspection events.
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		t.Fatalf("event without filter: %+v", ev.Event)
	case <-time.After(50 * time.Millisecond):
	}
	// Enable for a subnet.
	m, _ := packet.ParseFieldMatch("[nw_src=10.0.0.0/24]")
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpSetEventFilter, Path: "counter.", Match: m, Enable: true})
	h.reply(t)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		if ev.Event.Kind != sbi.EventIntrospection || ev.Event.Code != "counter.flow.seen" {
			t.Fatalf("event: %+v", ev.Event)
		}
	case <-time.After(time.Second):
		t.Fatal("no introspection event after enable")
	}
	// Disable again (most recent filter wins).
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 2, Op: sbi.OpSetEventFilter, Path: "counter.", Match: m, Enable: false})
	h.reply(t)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	select {
	case ev := <-h.events:
		t.Fatalf("event after disable: %+v", ev.Event)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestConfigOpsOverWire(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpSetConfig, Path: "rules/0", Values: []string{"drop all"}})
	if m := h.reply(t); m.Type != sbi.MsgDone {
		t.Fatalf("set: %+v", m)
	}
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 2, Op: sbi.OpGetConfig, Path: "*"})
	m := h.reply(t)
	if m.Type != sbi.MsgDone || len(m.Entries) != 1 || m.Entries[0].Values[0] != "drop all" {
		t.Fatalf("get: %+v", m)
	}
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 3, Op: sbi.OpDelConfig, Path: "rules/0"})
	if m := h.reply(t); m.Type != sbi.MsgDone {
		t.Fatalf("del: %+v", m)
	}
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 4, Op: sbi.OpGetConfig, Path: "rules/0"})
	if m := h.reply(t); m.Type != sbi.MsgError {
		t.Fatalf("get deleted: %+v", m)
	}
}

func TestStatsOverWire(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.HandlePacket(pkt(2, 2000))
	h.rt.Drain(time.Second)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpStats, Match: packet.MatchAll})
	m := h.reply(t)
	if m.Stats == nil || m.Stats.SupportPerflowChunks != 2 {
		t.Fatalf("stats: %+v", m.Stats)
	}
}

func TestGranularityErrorPropagates(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	m, _ := packet.ParseFieldMatch("[tp_dst=80]")
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: m})
	if r := h.reply(t); r.Type != sbi.MsgError {
		t.Fatalf("want error for finer-than-keying get, got %+v", r)
	}
}

func TestCompressedTransfer(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.rt.HandlePacket(pkt(1, 1000))
	h.rt.Drain(time.Second)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: packet.MatchAll, Compressed: true})
	chunks, _ := h.collectGet(t, 1)
	if len(chunks) != 1 {
		t.Fatal("no chunk")
	}
	// Round-trip through a compressed put into a second logic.
	logic2 := mbtest.NewCounterLogic(8)
	rt2 := mbox.New("mb2", logic2, mbox.Options{})
	defer rt2.Close()
	// Feed the put directly through the same southbound path by driving
	// serveRequest via a fresh harness.
	h2 := newHarness(t, logic2)
	h2.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 9, Op: sbi.OpPutSupportPerflow, Chunk: chunks[0], Compressed: true})
	if m := h2.reply(t); m.Type != sbi.MsgDone {
		t.Fatalf("compressed put: %+v", m)
	}
	if logic2.Count(chunks[0].Key) != 1 {
		t.Fatal("compressed chunk not installed")
	}
}

func DeflateForInflateForTestRoundTrip(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog, repeatedly repeatedly repeatedly")
	got, err := mbox.InflateForTest(mbox.DeflateForTest(data))
	if err != nil || string(got) != string(data) {
		t.Fatalf("round trip: %v", err)
	}
	if len(mbox.DeflateForTest(data)) >= len(data) {
		t.Fatal("repetitive data did not compress")
	}
}

func TestLatencyBuckets(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	rt := mbox.New("mb1", logic, mbox.Options{})
	defer rt.Close()
	rt.HandlePacket(pkt(1, 1000))
	rt.Drain(time.Second)
	mbox.SetActiveOpsForTest(rt, 1)
	rt.HandlePacket(pkt(1, 1000))
	rt.Drain(time.Second)
	mbox.SetActiveOpsForTest(rt, -1)
	m := rt.Metrics()
	if m.LatencyNormal == 0 || m.LatencyDuringOp == 0 {
		t.Fatalf("latency buckets not populated: %+v", m)
	}
}

func TestQueueOverflowDropsNotBlocks(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	rt := mbox.New("mb1", logic, mbox.Options{QueueSize: 4})
	defer rt.Close()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			rt.HandlePacket(pkt(byte(i), uint16(i)))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("HandlePacket blocked on full queue")
	}
	rt.Drain(2 * time.Second)
}

func TestUnknownOpErrors(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: "bogus"})
	if m := h.reply(t); m.Type != sbi.MsgError {
		t.Fatalf("want error, got %+v", m)
	}
}

func TestBatchedGetFraming(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	const flows = 10
	for i := 0; i < flows; i++ {
		h.rt.HandlePacket(pkt(byte(i+1), uint16(1000+i)))
	}
	h.rt.Drain(time.Second)

	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 1, Op: sbi.OpGetSupportPerflow, Match: packet.MatchAll, Batch: 4})
	var frames [][]state.Chunk
	total := 0
	for {
		m := h.reply(t)
		if m.Type == sbi.MsgError {
			t.Fatalf("get failed: %s", m.Error)
		}
		if m.Type == sbi.MsgDone {
			if m.Count != flows {
				t.Fatalf("done count %d, want %d", m.Count, flows)
			}
			break
		}
		if m.Chunk != nil {
			t.Fatalf("batched get produced a single-chunk frame: %+v", m)
		}
		if len(m.Chunks) == 0 || len(m.Chunks) > 4 {
			t.Fatalf("frame carries %d chunks, want 1..4", len(m.Chunks))
		}
		frames = append(frames, m.Chunks)
		total += len(m.Chunks)
	}
	if total != flows || len(frames) != 3 { // 4+4+2
		t.Fatalf("frames=%d total=%d, want 3 frames / %d chunks", len(frames), total, flows)
	}
}

func TestBatchedPutInstallsAll(t *testing.T) {
	logic := mbtest.NewCounterLogic(8)
	h := newHarness(t, logic)
	sealer := state.NewSealer("openmb-mbtype-counter")
	blob := func(v uint64) []byte {
		b := make([]byte, 8)
		binary.BigEndian.PutUint64(b, v)
		return sealer.Seal(b)
	}
	var chunks []state.Chunk
	for i := 0; i < 5; i++ {
		chunks = append(chunks, state.Chunk{Key: pkt(byte(40+i), uint16(4000+i)).Flow().Canonical(), Blob: blob(uint64(i + 1))})
	}
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 9, Op: sbi.OpPutSupportPerflow, Chunks: chunks})
	m := h.reply(t)
	if m.Type != sbi.MsgDone || m.Count != 5 {
		t.Fatalf("batched put reply: %+v", m)
	}
	if logic.Flows() != 5 {
		t.Fatalf("flows installed: %d", logic.Flows())
	}
	if got := logic.SumCounts(); got != 1+2+3+4+5 {
		t.Fatalf("sum: %d", got)
	}
	// An empty put (no chunk in either representation) still errors.
	h.send(t, &sbi.Message{Type: sbi.MsgRequest, ID: 10, Op: sbi.OpPutSupportPerflow})
	if m := h.reply(t); m.Type != sbi.MsgError {
		t.Fatalf("empty put accepted: %+v", m)
	}
}
