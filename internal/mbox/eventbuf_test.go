package mbox

// Allocation assertion for the pooled reprocess-event encode buffer (the
// zero-copy follow-on flagged in ROADMAP): during a move window the event
// path — Touch, event construction, packet marshal, frame encode, transport
// write — must not allocate the packet-sized marshal buffer per event.
// testing.AllocsPerRun counts the whole path, mirroring the approach of
// TestZeroCopySteadyStateAllocs at the repo root.

import (
	"io"
	"net/netip"
	"testing"
	"time"

	"openmb/internal/packet"
	"openmb/internal/sbi"
	"openmb/internal/state"
)

// touchLogic is the minimal Logic that touches per-flow supporting state on
// every packet, so a marked flow raises a reprocess event per packet.
type touchLogic struct{ cfg *state.ConfigTree }

func (l *touchLogic) Kind() string { return "touch" }
func (l *touchLogic) Process(ctx *Context, p *packet.Packet) {
	ctx.Touch(state.Supporting, p.Flow())
}
func (l *touchLogic) GetPerflow(state.Class, packet.FieldMatch, func(packet.FlowKey, func(func()) ([]byte, error)) error) error {
	return nil
}
func (l *touchLogic) PutPerflow(state.Class, state.Chunk) error            { return nil }
func (l *touchLogic) DelPerflow(state.Class, packet.FieldMatch) (int, error) { return 0, nil }
func (l *touchLogic) GetShared(state.Class, func()) ([]byte, error)        { return nil, ErrNoSharedState }
func (l *touchLogic) PutShared(state.Class, []byte) error                  { return nil }
func (l *touchLogic) Stats(packet.FieldMatch) sbi.StatsReply               { return sbi.StatsReply{} }
func (l *touchLogic) Config() *state.ConfigTree                            { return l.cfg }

// TestReprocessEventEncodeAllocs drives packets for a marked (mid-move)
// flow through a connected runtime and bounds the steady-state allocations
// of the full event path. Before the pooled encode buffer, every event paid
// one allocation proportional to the packet (header + payload — here 4 KiB,
// so the bound also proves the pool is doing the work, not luck); with it,
// the remaining allocations are the small fixed event/frame structures.
func TestReprocessEventEncodeAllocs(t *testing.T) {
	tr := sbi.NewMemTransport()
	l, err := tr.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	// Controller stand-in: accept and drain raw bytes (the pipe transport
	// is synchronous, so someone must keep reading). It never decodes —
	// the assertion measures the SENDER's event path, not a peer's
	// decoder.
	go func() {
		raw, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, raw)
	}()

	rt := New("mb", &touchLogic{cfg: state.NewConfigTree()}, Options{})
	defer rt.Close()
	if err := rt.Connect(tr, "ctrl"); err != nil {
		t.Fatal(err)
	}

	pkt := &packet.Packet{
		SrcIP: netip.AddrFrom4([4]byte{10, 0, 0, 1}), DstIP: netip.AddrFrom4([4]byte{1, 1, 1, 1}),
		Proto: packet.ProtoTCP, SrcPort: 4242, DstPort: 80,
		Payload: make([]byte, 4096),
	}
	rt.markKey(pkt.Flow(), state.Supporting)

	send := func() {
		raised := rt.Metrics().EventsRaised
		rt.HandlePacket(pkt)
		deadline := time.Now().Add(5 * time.Second)
		for rt.Metrics().EventsRaised <= raised {
			if time.Now().After(deadline) {
				t.Fatal("no reprocess event raised")
			}
			time.Sleep(5 * time.Microsecond)
		}
	}
	// Warm up: size the pooled buffer and the codec's encode buffer.
	for i := 0; i < 32; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(400, send)
	// Observed: ~3 allocs/event with the pooled buffer (event struct,
	// frame struct, codec internals); the unpooled path adds the 4 KiB
	// marshal buffer and lands at ~4+. The bound separates the two.
	if allocs > 3.5 {
		t.Errorf("reprocess event path: %.2f allocs/event, want <= 3.5 (is the encode buffer pooled?)", allocs)
	}
}
