package elastic

// Integration beds for the cluster-backed actuator:
//
//   - the clone/merge round-trip equivalence bed — scale out under live
//     traffic, scale back in, and require the surviving instance's per-flow
//     state to be byte-identical to a never-scaled control run;
//   - the chaos bed — kill a controller replica while the armed loop is
//     mid-scale-out and require the loop to converge on the survivors with
//     nothing leaked.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"openmb/internal/core"
	"openmb/internal/faults"
	"openmb/internal/mbox"
	"openmb/internal/mbox/mbtest"
	"openmb/internal/packet"
	"openmb/internal/sbi"
)

// nFlows is the bed's flowspace: mbtest.FlowN(i) for i < 256 keeps the flow
// index in the source address's last octet, so power-of-two flow ranges are
// exactly expressible as prefixes (flows 32..63 = 10.0.0.32/27) and a
// flowspace split is one FieldMatch.
const nFlows = 64

type flowRange struct{ base, size int }

// rangeDriver is the test GroupDriver: buddy-system flowspace splitting
// over mbtest.CounterLogic instances. Each scale-out halves the hot
// member's range and hands the upper half to the clone; each retire gives
// the range back. Routing is a flow-indexed runtime table swapped
// atomically, read by the injector per packet.
type rangeDriver struct {
	t         *testing.T
	cl        *core.Cluster
	tr        sbi.Transport
	reconnect bool
	spawned   chan string

	mu         sync.Mutex
	logics     map[string]*mbtest.CounterLogic
	rts        map[string]*mbox.Runtime
	ranges     map[string]flowRange
	carvedFrom map[string]string

	route atomic.Pointer[[nFlows]*mbox.Runtime]
}

func newRangeDriver(t *testing.T, cl *core.Cluster, tr sbi.Transport, reconnect bool) *rangeDriver {
	return &rangeDriver{
		t: t, cl: cl, tr: tr, reconnect: reconnect,
		spawned:    make(chan string, 16),
		logics:     map[string]*mbtest.CounterLogic{},
		rts:        map[string]*mbox.Runtime{},
		ranges:     map[string]flowRange{},
		carvedFrom: map[string]string{},
	}
}

// seed attaches the group's base instance owning the whole flowspace and
// routes everything to it.
func (d *rangeDriver) seed(name string, preload int) *Member {
	logic := mbtest.NewCounterLogic(0)
	if preload > 0 {
		logic.Preload(preload)
	}
	rt := d.connect(name, logic)
	d.mu.Lock()
	d.ranges[name] = flowRange{0, nFlows}
	d.mu.Unlock()
	var tbl [nFlows]*mbox.Runtime
	for i := range tbl {
		tbl[i] = rt
	}
	d.route.Store(&tbl)
	return &Member{Name: name, Runtime: rt}
}

func (d *rangeDriver) connect(name string, logic *mbtest.CounterLogic) *mbox.Runtime {
	opts := mbox.Options{}
	if d.reconnect {
		opts.Reconnect = true
		opts.ReconnectMin = 2 * time.Millisecond
		opts.ReconnectMax = 40 * time.Millisecond
	}
	rt := mbox.New(name, logic, opts)
	if err := rt.Connect(d.tr, "cluster"); err != nil {
		d.t.Errorf("connect %s: %v", name, err)
		rt.Close()
		return rt
	}
	d.mu.Lock()
	d.logics[name] = logic
	d.rts[name] = rt
	d.mu.Unlock()
	return rt
}

func (d *rangeDriver) Spawn(group string, ordinal int) (*Member, error) {
	name := fmt.Sprintf("%s-%d", group, ordinal)
	rt := d.connect(name, mbtest.NewCounterLogic(0))
	select {
	case d.spawned <- name:
	default:
	}
	return &Member{Name: name, Runtime: rt}, nil
}

func (d *rangeDriver) SplitMatch(group string, from, to *Member) packet.FieldMatch {
	d.mu.Lock()
	defer d.mu.Unlock()
	r := d.ranges[from.Name]
	if r.size < 2 {
		d.t.Errorf("split of unsplittable range %+v on %s", r, from.Name)
		return packet.MatchAll
	}
	half := r.size / 2
	upper := flowRange{r.base + half, half}
	d.ranges[from.Name] = flowRange{r.base, half}
	d.ranges[to.Name] = upper
	d.carvedFrom[to.Name] = from.Name
	return packet.FieldMatch{SrcPrefix: prefixFor(upper)}
}

// prefixFor maps a power-of-two flow range onto the 10.0.0.0/24 source
// block FlowN uses.
func prefixFor(r flowRange) netip.Prefix {
	return netip.PrefixFrom(
		netip.AddrFrom4([4]byte{10, 0, 0, byte(r.base)}),
		32-bits.TrailingZeros(uint(r.size)),
	)
}

func (d *rangeDriver) Route(group string, members []*Member) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var tbl [nFlows]*mbox.Runtime
	// Flows whose owner is not in the member list (a derouting victim's
	// range, not yet merged back) fall to the seed, members[0]; any live
	// member is CORRECT for counting — scale-in merges every member's
	// records into the survivor — so routing choices affect locality only.
	for f := range tbl {
		tbl[f] = d.rts[members[0].Name]
		for _, m := range members {
			if r, ok := d.ranges[m.Name]; ok && f >= r.base && f < r.base+r.size {
				tbl[f] = d.rts[m.Name]
			}
		}
	}
	d.route.Store(&tbl)
}

func (d *rangeDriver) Retire(group string, m *Member) {
	d.mu.Lock()
	if r, ok := d.ranges[m.Name]; ok {
		parent := d.carvedFrom[m.Name]
		pr := d.ranges[parent]
		// LIFO scale-in means the buddy halves rejoin exactly.
		if pr.base+pr.size == r.base && pr.size == r.size {
			d.ranges[parent] = flowRange{pr.base, pr.size * 2}
		}
		delete(d.ranges, m.Name)
		delete(d.carvedFrom, m.Name)
	}
	rt := d.rts[m.Name]
	delete(d.rts, m.Name)
	d.mu.Unlock()
	if rt != nil {
		rt.Close()
	}
}

// inject delivers one packet for flow f through the current routing table.
func (d *rangeDriver) inject(f int) {
	tbl := d.route.Load()
	if rt := tbl[f]; rt != nil {
		rt.HandlePacket(mbtest.PacketForFlow(f))
	}
}

// sumCounts totals per-flow counts over every live logic (spawn order is
// irrelevant to a sum).
func (d *rangeDriver) sumCounts() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var sum uint64
	for _, l := range d.logics {
		sum += l.SumCounts()
	}
	return sum
}

func (d *rangeDriver) drainAll(t *testing.T) {
	t.Helper()
	d.mu.Lock()
	rts := make(map[string]*mbox.Runtime, len(d.rts))
	for n, rt := range d.rts {
		rts[n] = rt
	}
	d.mu.Unlock()
	for name, rt := range rts {
		if !rt.Drain(10 * time.Second) {
			t.Fatalf("%s did not drain", name)
		}
	}
}

func (d *rangeDriver) closeAll() {
	d.mu.Lock()
	rts := d.rts
	d.rts = map[string]*mbox.Runtime{}
	d.mu.Unlock()
	for _, rt := range rts {
		rt.Close()
	}
}

// ringDrops totals ingress sheds across every live runtime.
func (d *rangeDriver) ringDrops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total uint64
	for _, rt := range d.rts {
		rs := rt.RingStats()
		total += rs.DroppedPackets + rs.DroppedReplays
	}
	return total
}

// chunkDump renders a logic's per-flow state the way the southbound wire
// does — one ChunkBytes blob per flow, count big-endian in front — in flow
// order, so two logics with identical state dump identical bytes.
func chunkDump(l *mbtest.CounterLogic) []byte {
	var out []byte
	for f := 0; f < nFlows; f++ {
		b := make([]byte, l.ChunkBytes)
		binary.BigEndian.PutUint64(b, l.Count(mbtest.FlowN(f)))
		out = append(out, b...)
	}
	return out
}

// schedule builds the deterministic heavy-tailed injection order: low flow
// indices get many repetitions, the tail few, shuffled by a fixed LCG.
func schedule(perFlowTotal *[nFlows]int) []int {
	var sched []int
	for f := 0; f < nFlows; f++ {
		rank := (f*29 + 7) % nFlows
		reps := 1 + 96/(1+rank)
		perFlowTotal[f] = reps
		for i := 0; i < reps; i++ {
			sched = append(sched, f)
		}
	}
	// Fixed LCG Fisher-Yates: deterministic interleaving across flows.
	seed := uint64(0x9e3779b97f4a7c15)
	for i := len(sched) - 1; i > 0; i-- {
		seed = seed*6364136223846793005 + 1442695040888963407
		j := int(seed % uint64(i+1))
		sched[i], sched[j] = sched[j], sched[i]
	}
	return sched
}

// TestCloneMergeRoundTripEquivalence is the round-trip equivalence bed:
// preload a flowspace, inject a deterministic workload while the group
// scales out (CloneSupport + split MoveInternal) mid-stream and scales back
// in (MoveInternal + MergeInternal) mid-stream, and require the final
// per-flow state to be byte-identical to a never-scaled control run and
// exactly preload+injected per flow. Shared counters are excluded by
// design: CloneSupport copies the running totals and MergeInternal sums
// them back, so the shared baseline legitimately double-counts.
func TestCloneMergeRoundTripEquivalence(t *testing.T) {
	cl := core.NewCluster(core.ClusterOptions{
		Replicas:   1,
		Controller: core.Options{QuietPeriod: 50 * time.Millisecond},
	})
	defer cl.Close()
	tr := sbi.NewMemTransport()
	if err := cl.Serve(tr, "cluster"); err != nil {
		t.Fatal(err)
	}

	drv := newRangeDriver(t, cl, tr, false)
	defer drv.closeAll()
	seed := drv.seed("m0", nFlows)
	if err := cl.WaitForMB("m0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	src := NewClusterSource(cl)
	act := NewClusterActuator(cl, src, drv)
	act.Seed("g", seed)

	// The never-scaled control: same preload, same workload, one instance.
	control := mbtest.NewCounterLogic(0)
	control.Preload(nFlows)
	controlRT := mbox.New("control", control, mbox.Options{})
	defer controlRT.Close()

	var perFlow [nFlows]int
	sched := schedule(&perFlow)
	third := len(sched) / 3

	var progress atomic.Int64
	var inj sync.WaitGroup
	inj.Add(1)
	go func() {
		defer inj.Done()
		for i, f := range sched {
			drv.inject(f)
			controlRT.HandlePacket(mbtest.PacketForFlow(f))
			progress.Store(int64(i + 1))
			if i%64 == 63 {
				runtime.Gosched()
			}
		}
	}()
	waitProgress := func(n int) {
		deadline := time.Now().Add(30 * time.Second)
		for progress.Load() < int64(n) {
			if time.Now().After(deadline) {
				t.Fatalf("injector stalled at %d/%d", progress.Load(), n)
			}
			time.Sleep(100 * time.Microsecond)
		}
	}

	// Scale out while the middle third is in flight, back in while the
	// last third is.
	waitProgress(third)
	if err := act.ScaleOut("g", "m0"); err != nil {
		t.Fatalf("scale-out under traffic: %v", err)
	}
	if got := len(act.Members("g")); got != 2 {
		t.Fatalf("members after scale-out = %d, want 2", got)
	}
	waitProgress(2 * third)
	if err := act.ScaleIn("g"); err != nil {
		t.Fatalf("scale-in under traffic: %v", err)
	}
	inj.Wait()

	if got := len(act.Members("g")); got != 1 {
		t.Fatalf("members after round trip = %d, want 1", got)
	}
	drv.drainAll(t)
	if !controlRT.Drain(10 * time.Second) {
		t.Fatal("control did not drain")
	}
	if !cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete")
	}
	drv.drainAll(t)
	if got := cl.LiveTxns(); got != 0 {
		t.Fatalf("%d transactions leaked", got)
	}
	if got := drv.ringDrops(); got != 0 {
		t.Fatalf("%d ring drops during round trip", got)
	}

	// Exactness: every flow holds exactly preload (1) + injected, and the
	// survivor's whole per-flow image matches the control run byte for
	// byte.
	final := drv.logics["m0"]
	for f := 0; f < nFlows; f++ {
		want := uint64(1 + perFlow[f])
		if got := final.Count(mbtest.FlowN(f)); got != want {
			t.Fatalf("flow %d: count %d, want %d", f, got, want)
		}
	}
	if got, want := chunkDump(final), chunkDump(control); !bytes.Equal(got, want) {
		t.Fatal("survivor state differs from never-scaled control run")
	}
	if got := final.Flows(); got != nFlows {
		t.Fatalf("survivor holds %d flows, want %d", got, nFlows)
	}
	// The retired clone gave everything back: its logic (kept by the
	// driver after retirement) must be empty, or the byte-identical check
	// above passed only because state was duplicated rather than moved.
	if got := drv.logics["g-1"].Flows(); got != 0 {
		t.Fatalf("retired clone still holds %d flows", got)
	}
}

// hotSource drives the chaos loop: it reports every current member of "g"
// with a near-full ring, so the loop keeps deciding scale-out until the
// group caps out — no real traffic needed to arm the failure window.
type hotSource struct{ act *ClusterActuator }

func (s *hotSource) Sample() Sample {
	var out Sample
	for _, m := range s.act.Members("g") {
		out.Instances = append(out.Instances, InstanceSample{
			MB: m.Name, Group: "g", Replica: 0,
			QueueLen: 90, QueueCap: 100,
		})
	}
	return out
}

// TestElasticLoopSurvivesReplicaFailure kills a controller replica while
// the armed loop is mid-scale-out, through the fault-injection transport
// (delays + partial writes), with heartbeats running. The loop must
// converge on the survivors — a completed scale-out, every preloaded chunk
// accounted for exactly once across the group, an empty transaction
// registry — and the whole bed must tear down without leaking goroutines.
func TestElasticLoopSurvivesReplicaFailure(t *testing.T) {
	before := runtime.NumGoroutine()
	ft := faults.New(sbi.NewMemTransport(), faults.Options{
		Seed:          11,
		PartialWrites: true,
		Delay:         200 * time.Microsecond,
		DelayProb:     0.2,
	})
	cl := core.NewCluster(core.ClusterOptions{
		Replicas: 3,
		Controller: core.Options{
			QuietPeriod:       60 * time.Millisecond,
			HeartbeatInterval: 25 * time.Millisecond,
		},
	})
	if err := cl.Serve(ft, "cluster"); err != nil {
		t.Fatal(err)
	}

	const chunks = 800
	drv := newRangeDriver(t, cl, ft, true)
	seed := drv.seed("m0", chunks)
	if err := cl.WaitForMB("m0", 5*time.Second); err != nil {
		t.Fatal(err)
	}
	src := NewClusterSource(cl)
	act := NewClusterActuator(cl, src, drv)
	act.Seed("g", seed)

	loop := New(Config{
		Interval:     10 * time.Millisecond,
		HighWindows:  1,
		Cooldown:     100 * time.Millisecond,
		MaxInstances: 2,
	}, &hotSource{act: act}, act)
	loop.Start()

	// The kill lands a few milliseconds after the clone spawns — inside
	// the scale-out's clone-support/split-move window.
	select {
	case <-drv.spawned:
	case <-time.After(10 * time.Second):
		t.Fatal("loop never attempted a scale-out")
	}
	time.Sleep(3 * time.Millisecond)
	coord, err := cl.ReplicaOf("m0")
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FailReplica(coord); err != nil {
		t.Fatalf("fail replica %d: %v", coord, err)
	}

	// The loop must converge on the survivors: either the interrupted
	// scale-out's internal retries complete it, or the loop's cooldown
	// expires and a fresh attempt lands.
	deadline := time.Now().Add(20 * time.Second)
	for loop.Totals().ScaleOuts == 0 {
		if time.Now().After(deadline) {
			tot := loop.Totals()
			t.Fatalf("no scale-out completed after replica kill (totals %+v)", tot)
		}
		time.Sleep(5 * time.Millisecond)
	}
	loop.Close()

	if !cl.WaitTxns(30 * time.Second) {
		t.Fatal("transactions did not complete after replica failure")
	}
	if got := cl.LiveTxns(); got != 0 {
		t.Fatalf("%d transactions leaked in the registry", got)
	}
	if got := len(act.Members("g")); got != 2 {
		t.Fatalf("group has %d members, want 2 after converged scale-out", got)
	}
	// Conservation: no traffic ran, so the preloaded chunks must be
	// distributed across the group with nothing lost or duplicated by the
	// aborted/retried clone-and-split.
	if got := drv.sumCounts(); got != chunks {
		t.Fatalf("group holds %d counts, want %d (lost or duplicated across failure)", got, chunks)
	}
	if got := drv.ringDrops(); got != 0 {
		t.Fatalf("%d ring drops with no traffic", got)
	}

	// Goroutine hygiene across the whole bed: loop ticker, heartbeats,
	// reconnect loops, spawned clones, failed replica's teardown.
	drv.closeAll()
	cl.Close()
	hygiene := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+10 {
			break
		} else if time.Now().After(hygiene) {
			t.Fatalf("goroutines leaked: %d before, %d after teardown", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
