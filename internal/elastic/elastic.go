// Package elastic closes the feedback loop the paper's cloneSupport /
// mergeInternal operations were designed for: a Stratos-style placement
// controller that watches live load signals — per-instance packet rates,
// ingress-ring depth and drops, per-replica control-plane traffic — scores
// hotspots, and acts through the cluster's existing northbound API:
//
//   - scale-out: when one instance of an elastic group saturates, clone its
//     shared supporting state (CloneSupport) onto a fresh instance and carve
//     off part of its flowspace with a live per-flow move (MoveInternal with
//     a FieldMatch), then repoint traffic;
//   - scale-in: when load recedes, move the retiring instance's per-flow
//     state back and merge its shared state (MergeInternal) into a survivor;
//   - migrate: when one controller replica carries a disproportionate share
//     of the control-plane load, hand its hottest middlebox to the coolest
//     replica with the live freeze→transfer→switch handoff (Rebalance).
//
// Decisions are pure functions of (previous sample, current sample, clock),
// so the whole policy is deterministically testable: inject a scripted
// Source and a fake Clock, call Tick, and assert the Decision slice. Two
// dampers keep the loop from thrashing: hysteresis (an instance must stay
// hot for HighWindows consecutive samples, cold for LowWindows) and a
// cooldown window after every action during which the loop only holds.
//
// The loop never holds its own lock across a cluster operation's internal
// locking in a way that could invert the documented handoff lock order
// (Cluster.mu → mbConn.handoffMu → Controller.mu → router shards): it calls
// the northbound API exactly as a control application would, from a single
// goroutine, owning no core lock.
package elastic

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/obs"
)

// elasticDefault gates whether daemons and eval rigs arm the loop by
// default; OPENMB_ELASTIC=off selects the unmanaged ablation.
var elasticDefault atomic.Bool

func init() {
	switch v := os.Getenv("OPENMB_ELASTIC"); v {
	case "", "on", "1", "true":
		elasticDefault.Store(true)
	case "off", "0", "false":
		elasticDefault.Store(false)
	default:
		panic("elastic: OPENMB_ELASTIC: want on/off (or 1/0), got " + v)
	}
}

// SetDefault sets whether the elasticity loop is armed by default. Also
// settable with OPENMB_ELASTIC=off.
func SetDefault(on bool) { elasticDefault.Store(on) }

// Default reports whether the elasticity loop is armed by default.
func Default() bool { return elasticDefault.Load() }

// Clock abstracts time for the loop so hysteresis and cooldown arithmetic
// is deterministically testable.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// InstanceSample is one middlebox instance's load snapshot. Counter fields
// are cumulative; the loop differences consecutive samples itself, clamping
// an apparent decrease (a reconnected connection or replaced instance resets
// its counters) to zero so a reset can never masquerade as a load spike.
type InstanceSample struct {
	// MB is the instance name; Group the elastic group it belongs to. An
	// empty group means the instance is not elastically managed (it is
	// still a migration candidate).
	MB    string
	Group string
	// Replica is the controller replica currently owning the instance's
	// connection, or -1 when unknown (mid-handoff, mid-recovery).
	Replica int
	// Processed is the cumulative packet count through the instance.
	Processed uint64
	// RingDrops is the cumulative ingress-ring shed count.
	RingDrops uint64
	// QueueLen and QueueCap describe the ingress ring: queued packets and
	// ring capacity. QueueCap 0 means depth is unknown (a cross-process
	// instance sampled only through its connection) and utilization-based
	// scoring is skipped for the instance.
	QueueLen, QueueCap int
}

// ReplicaSample is one controller replica's control-plane load snapshot;
// all fields are cumulative.
type ReplicaSample struct {
	Replica int
	// ControlFrames is the southbound frames received across the replica's
	// connections; Events its forwarded reprocess events; Moves its
	// started move transactions.
	ControlFrames uint64
	Events        uint64
	Moves         uint64
}

// Sample is one observation of the whole deployment.
type Sample struct {
	Instances []InstanceSample
	Replicas  []ReplicaSample
}

// Source produces load samples. Implementations must return internally
// consistent per-series snapshots (see mbox.Runtime.RingStats for the
// tear-proofing the ring signals need); the loop tolerates counter resets
// but not depth/drop pairs from different instants.
type Source interface {
	Sample() Sample
}

// Actuator executes the loop's decisions. Implementations act through the
// cluster northbound API; ClusterActuator is the standard one.
type Actuator interface {
	// ScaleOut grows the group by one instance, splitting flowspace off
	// the named hot instance.
	ScaleOut(group, hot string) error
	// ScaleIn shrinks the group by one instance, merging the retiring
	// instance's state into a survivor.
	ScaleIn(group string) error
	// Migrate hands the middlebox to the target replica live.
	Migrate(mb string, target int) error
}

// Op is a decision kind.
type Op int

// Decision kinds, in descending priority order per tick.
const (
	Hold Op = iota
	ScaleOut
	ScaleIn
	Migrate
)

func (o Op) String() string {
	switch o {
	case ScaleOut:
		return "scale-out"
	case ScaleIn:
		return "scale-in"
	case Migrate:
		return "migrate"
	}
	return "hold"
}

// Decision is one tick's verdict.
type Decision struct {
	Op     Op
	Group  string // scale decisions
	MB     string // hot instance (scale-out) or migrating instance
	Target int    // migrate target replica
	Reason string
	// Err records the actuator failure when the action did not take; the
	// decision still consumed the cooldown so a failing action cannot be
	// hammered every tick.
	Err error
}

// Config tunes the placement controller. Zero values select the defaults
// noted per field.
type Config struct {
	// Interval is the sampling period of the background loop (default
	// 50 ms). Tick-driven tests ignore it.
	Interval time.Duration
	// HighUtil is the ingress-ring utilization (queued/capacity) at or
	// above which an instance counts as hot (default 0.5; instances with
	// unknown ring depth are never util-hot).
	HighUtil float64
	// HighRate is the per-instance packet rate (pps) at or above which an
	// instance counts as hot (0 = rate never marks hot).
	HighRate float64
	// LowRate is the per-instance packet rate (pps) at or below which a
	// whole group counts as cold (default 0 = groups never go cold).
	LowRate float64
	// HighWindows is how many consecutive hot samples a group needs
	// before a scale-out fires (default 2); LowWindows the consecutive
	// cold samples before a scale-in (default 4). This is the hysteresis:
	// one noisy sample moves no state.
	HighWindows, LowWindows int
	// Cooldown is the quiet window after any action (including a failed
	// one) during which the loop only holds (default 500 ms).
	Cooldown time.Duration
	// MaxInstances and MinInstances bound every group's size (defaults 4
	// and 1).
	MaxInstances, MinInstances int
	// MigrateRatio is how many times the mean control-plane load of the
	// other replicas one replica must carry before a migration fires
	// (default 4; 0 disables migration). MigrateMin is the minimum
	// absolute per-interval load on the hot replica (default 256), so an
	// idle cluster's rounding noise never migrates anything.
	MigrateRatio float64
	MigrateMin   float64
	// Clock overrides the loop's time source (nil = wall clock); tests
	// inject a fake to drive hysteresis and cooldown deterministically.
	Clock Clock
}

func (c *Config) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.HighUtil == 0 {
		c.HighUtil = 0.5
	}
	if c.HighWindows <= 0 {
		c.HighWindows = 2
	}
	if c.LowWindows <= 0 {
		c.LowWindows = 4
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.MaxInstances <= 0 {
		c.MaxInstances = 4
	}
	if c.MinInstances <= 0 {
		c.MinInstances = 1
	}
	if c.MigrateRatio == 0 {
		c.MigrateRatio = 4
	}
	if c.MigrateMin == 0 {
		c.MigrateMin = 256
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
}

// Totals is a snapshot of the loop's decision counters.
type Totals struct {
	ScaleOuts, ScaleIns, Migrations, Holds, Errors uint64
}

// Loop is the placement controller. Create with New, then either Start for
// the background sampling loop or call Tick directly (tests).
type Loop struct {
	cfg Config
	src Source
	act Actuator

	// mu serializes Tick (manual and background) and guards the decision
	// state below. Actions run under it too: the loop is single-track by
	// design, one decision in flight at a time.
	mu            sync.Mutex
	prev          Sample
	prevAt        time.Time
	havePrev      bool
	groups        map[string]*groupState
	cooldownUntil time.Time
	last          []Decision

	// Decision counters, exported at /metrics as
	// openmb_elastic_{scaleouts,scaleins,migrations,holds}_total.
	scaleOuts  atomic.Uint64
	scaleIns   atomic.Uint64
	migrations atomic.Uint64
	holds      atomic.Uint64
	errors     atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// groupState is the hysteresis memory for one elastic group.
type groupState struct {
	hotStreak  int
	coldStreak int
}

// New creates a placement controller over the given source and actuator.
func New(cfg Config, src Source, act Actuator) *Loop {
	cfg.setDefaults()
	return &Loop{
		cfg:    cfg,
		src:    src,
		act:    act,
		groups: map[string]*groupState{},
		stop:   make(chan struct{}),
	}
}

// Start runs the background sampling loop: one Tick per Config.Interval
// until Close.
func (l *Loop) Start() {
	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		t := time.NewTicker(l.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-l.stop:
				return
			case <-t.C:
				l.Tick()
			}
		}
	}()
}

// Close stops the background loop and waits for an in-flight tick to finish.
func (l *Loop) Close() {
	l.stopOnce.Do(func() { close(l.stop) })
	l.wg.Wait()
}

// Totals returns the decision counters.
func (l *Loop) Totals() Totals {
	return Totals{
		ScaleOuts:  l.scaleOuts.Load(),
		ScaleIns:   l.scaleIns.Load(),
		Migrations: l.migrations.Load(),
		Holds:      l.holds.Load(),
		Errors:     l.errors.Load(),
	}
}

// LastDecisions returns the decisions of the most recent tick.
func (l *Loop) LastDecisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Decision(nil), l.last...)
}

// Collect implements obs.Collector: the loop's decision counters.
func (l *Loop) Collect(e *obs.Emitter) {
	t := l.Totals()
	e.Counter("openmb_elastic_scaleouts_total", "Scale-out actions taken by the elasticity loop.", t.ScaleOuts)
	e.Counter("openmb_elastic_scaleins_total", "Scale-in actions taken by the elasticity loop.", t.ScaleIns)
	e.Counter("openmb_elastic_migrations_total", "Live migrations taken by the elasticity loop.", t.Migrations)
	e.Counter("openmb_elastic_holds_total", "Loop ticks that decided to take no action.", t.Holds)
	e.Counter("openmb_elastic_errors_total", "Elasticity actions that failed.", t.Errors)
}

// Tick takes one sample, evaluates the policy, and executes at most one
// action. It returns the tick's decisions (always at least one entry).
func (l *Loop) Tick() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()

	now := l.cfg.Clock.Now()
	cur := l.src.Sample()
	decisions := l.evaluate(now, cur)
	l.prev, l.prevAt, l.havePrev = cur, now, true

	acted := false
	for i := range decisions {
		d := &decisions[i]
		switch d.Op {
		case Hold:
			continue
		case ScaleOut:
			d.Err = l.act.ScaleOut(d.Group, d.MB)
			if d.Err == nil {
				l.scaleOuts.Add(1)
			}
		case ScaleIn:
			d.Err = l.act.ScaleIn(d.Group)
			if d.Err == nil {
				l.scaleIns.Add(1)
			}
		case Migrate:
			d.Err = l.act.Migrate(d.MB, d.Target)
			if d.Err == nil {
				l.migrations.Add(1)
			}
		}
		if d.Err != nil {
			l.errors.Add(1)
		}
		// An action — even a failed one — consumes the cooldown and the
		// group's streak, so a persistent condition re-fires only after
		// the damper, never every tick.
		acted = true
		l.cooldownUntil = now.Add(l.cfg.Cooldown)
		if g := l.groups[d.Group]; g != nil {
			g.hotStreak, g.coldStreak = 0, 0
		}
	}
	if !acted {
		l.holds.Add(1)
	}
	l.last = decisions
	return decisions
}

// instDelta is one instance's differenced view: rate in pps and drops since
// the previous sample, plus the instantaneous ring utilization.
type instDelta struct {
	s     InstanceSample
	rate  float64
	drops uint64
	util  float64
}

// counterDelta differences two cumulative counters, clamping an apparent
// decrease to zero. A reconnected southbound session or a replaced instance
// restarts its counters at zero; the naive uint64 subtraction would wrap to
// an enormous "rate" and trigger a spurious scale or migrate decision (the
// regression tests pin this).
func counterDelta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// evaluate computes this tick's decisions from the previous and current
// samples. Priority: scale-out beats scale-in beats migrate, one action per
// tick; everything else is a hold.
func (l *Loop) evaluate(now time.Time, cur Sample) []Decision {
	elapsed := time.Duration(0)
	if l.havePrev {
		elapsed = now.Sub(l.prevAt)
	}
	secs := elapsed.Seconds()

	prevInst := map[string]InstanceSample{}
	if l.havePrev {
		for _, s := range l.prev.Instances {
			prevInst[s.MB] = s
		}
	}

	// Difference every instance and bucket by group. Instances appearing
	// for the first time (fresh clones) contribute no rate or drop delta:
	// their history starts now.
	byGroup := map[string][]instDelta{}
	var groupNames []string
	all := make([]instDelta, 0, len(cur.Instances))
	for _, s := range cur.Instances {
		d := instDelta{s: s}
		if p, ok := prevInst[s.MB]; ok && secs > 0 {
			d.rate = float64(counterDelta(s.Processed, p.Processed)) / secs
			d.drops = counterDelta(s.RingDrops, p.RingDrops)
		}
		if s.QueueCap > 0 {
			d.util = float64(s.QueueLen) / float64(s.QueueCap)
			if d.util > 1 {
				// A sampler feeding queued+in-process depth could exceed
				// the ring capacity; clamp so scoring stays in [0, 1].
				d.util = 1
			}
		}
		all = append(all, d)
		if s.Group != "" {
			if _, ok := byGroup[s.Group]; !ok {
				groupNames = append(groupNames, s.Group)
			}
			byGroup[s.Group] = append(byGroup[s.Group], d)
		}
	}
	sort.Strings(groupNames)

	cooling := now.Before(l.cooldownUntil)
	var decisions []Decision

	// Scale decisions, per group. Streaks advance even while cooling —
	// hysteresis measures how long the condition has held, and cooldown
	// separately gates when the loop may act on it.
	for _, name := range groupNames {
		members := byGroup[name]
		g := l.groups[name]
		if g == nil {
			g = &groupState{}
			l.groups[name] = g
		}
		hot, hotMB, hotWhy := l.hottest(members)
		cold := l.isCold(members)
		switch {
		case hot:
			g.hotStreak++
			g.coldStreak = 0
		case cold:
			g.coldStreak++
			g.hotStreak = 0
		default:
			g.hotStreak, g.coldStreak = 0, 0
		}
		if len(decisions) > 0 {
			continue // one action per tick; later groups wait their turn
		}
		switch {
		case g.hotStreak >= l.cfg.HighWindows && !cooling && len(members) < l.cfg.MaxInstances:
			decisions = append(decisions, Decision{
				Op: ScaleOut, Group: name, MB: hotMB,
				Reason: fmt.Sprintf("%s hot %d windows (%s)", hotMB, g.hotStreak, hotWhy),
			})
		case g.coldStreak >= l.cfg.LowWindows && !cooling && len(members) > l.cfg.MinInstances:
			decisions = append(decisions, Decision{
				Op: ScaleIn, Group: name,
				Reason: fmt.Sprintf("group cold %d windows", g.coldStreak),
			})
		}
	}

	// Migration: only when no scale action fired, at least two replicas
	// reported, and one of them carries a disproportionate control load.
	if len(decisions) == 0 && !cooling && l.havePrev && l.cfg.MigrateRatio > 0 && len(cur.Replicas) > 1 {
		if d, ok := l.migration(cur, all); ok {
			decisions = append(decisions, d)
		}
	}

	if len(decisions) == 0 {
		decisions = append(decisions, Decision{Op: Hold, Reason: "no hotspot"})
	}
	return decisions
}

// hottest reports whether any member is hot and which one is hottest,
// scoring by ring utilization first, packet rate second. Fresh drops alone
// also mark a member hot: a shedding ring is saturated by definition.
func (l *Loop) hottest(members []instDelta) (hot bool, mb, why string) {
	best := -1.0
	for _, d := range members {
		memberHot, memberWhy := false, ""
		switch {
		case d.s.QueueCap > 0 && d.util >= l.cfg.HighUtil:
			memberHot, memberWhy = true, fmt.Sprintf("ring %.0f%% full", d.util*100)
		case d.drops > 0:
			memberHot, memberWhy = true, fmt.Sprintf("%d ring drops", d.drops)
		case l.cfg.HighRate > 0 && d.rate >= l.cfg.HighRate:
			memberHot, memberWhy = true, fmt.Sprintf("%.0f pps", d.rate)
		}
		if !memberHot {
			continue
		}
		score := d.util*1e9 + d.rate
		if score > best {
			best, hot, mb, why = score, true, d.s.MB, memberWhy
		}
	}
	return hot, mb, why
}

// isCold reports whether the whole group is cold: every member under the
// low-rate watermark, sheds nothing, and holds a near-empty ring.
func (l *Loop) isCold(members []instDelta) bool {
	if l.cfg.LowRate <= 0 || !l.havePrev {
		return false
	}
	for _, d := range members {
		if d.rate > l.cfg.LowRate || d.drops > 0 || d.util > l.cfg.HighUtil/2 {
			return false
		}
	}
	return true
}

// migration looks for a replica whose control-plane load delta dwarfs its
// peers' and proposes handing its busiest instance to the coolest replica.
func (l *Loop) migration(cur Sample, insts []instDelta) (Decision, bool) {
	prevRep := map[int]ReplicaSample{}
	for _, r := range l.prev.Replicas {
		prevRep[r.Replica] = r
	}
	type repLoad struct {
		replica int
		load    float64
	}
	loads := make([]repLoad, 0, len(cur.Replicas))
	for _, r := range cur.Replicas {
		p := prevRep[r.Replica]
		load := float64(counterDelta(r.ControlFrames, p.ControlFrames) +
			counterDelta(r.Events, p.Events) +
			counterDelta(r.Moves, p.Moves))
		loads = append(loads, repLoad{r.Replica, load})
	}
	if len(loads) < 2 {
		return Decision{}, false
	}
	hotIdx, coolIdx := 0, 0
	var total float64
	for i, rl := range loads {
		total += rl.load
		if rl.load > loads[hotIdx].load {
			hotIdx = i
		}
		if rl.load < loads[coolIdx].load {
			coolIdx = i
		}
	}
	hotLoad := loads[hotIdx].load
	othersMean := (total - hotLoad) / float64(len(loads)-1)
	if othersMean < 1 {
		othersMean = 1
	}
	if hotLoad < l.cfg.MigrateMin || hotLoad < l.cfg.MigrateRatio*othersMean {
		return Decision{}, false
	}
	// The busiest instance currently owned by the hot replica.
	mb, best := "", -1.0
	for _, d := range insts {
		if d.s.Replica == loads[hotIdx].replica && d.rate > best {
			mb, best = d.s.MB, d.rate
		}
	}
	if mb == "" {
		return Decision{}, false
	}
	return Decision{
		Op: Migrate, MB: mb, Target: loads[coolIdx].replica,
		Reason: fmt.Sprintf("replica %d load %.0f vs peer mean %.0f", loads[hotIdx].replica, hotLoad, othersMean),
	}, true
}
