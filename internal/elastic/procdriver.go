package elastic

import (
	"fmt"
	"io"
	"math/bits"
	"net/netip"
	"openmb/internal/packet"
	"os"
	"os/exec"
	"sync"
	"syscall"
	"time"
)

// ProcessConfig configures a ProcessDriver.
type ProcessConfig struct {
	// Bin is the path to the openmb-mb binary to spawn.
	Bin string
	// Controller is the -controller value handed to every spawned instance:
	// a comma-separated list of cluster node addresses, so an instance can
	// fail over (and be redirected) across nodes.
	Controller string
	// Kind is the -kind value (monitor, ips, nat, ...).
	Kind string
	// ExtraArgs is appended verbatim to every spawn's command line.
	ExtraArgs []string
	// FlowSpace is the IPv4 source block the group partitions among its
	// members by prefix halving (default 10.0.0.0/24 — the eval harness's
	// flow numbering).
	FlowSpace netip.Prefix
	// GraceTimeout bounds a retirement's SIGTERM→SIGKILL escalation
	// (default 3s). The mb daemon drains in-flight work on SIGTERM.
	GraceTimeout time.Duration
	// Stderr receives the children's stderr (default: this process's).
	Stderr io.Writer
	// Route, when set, is invoked on every membership change to repoint
	// external traffic steering (a dataplane rule push, a config reload).
	// Nil means steering happens out of band.
	Route func(group string, members []*Member)
}

// ProcessDriver implements GroupDriver by running each group member as a
// real openmb-mb OS process: Spawn execs the binary pointed at the cluster,
// Retire terminates it gracefully (SIGTERM, then SIGKILL after the grace
// window). Members carry no Runtime handle — their state moves through the
// southbound protocol like any other remote middlebox, and the sampler
// falls back to connection counters for their load signal.
//
// The flowspace book mirrors the in-process drivers: the group's first
// split assumes the hot member owns the whole FlowSpace; each SplitMatch
// halves the hot member's current range and hands the upper half to the
// clone; Retire folds the victim's range back into the member it was carved
// from, retracing the splits LIFO.
type ProcessDriver struct {
	cfg ProcessConfig

	mu         sync.Mutex
	procs      map[string]*proc
	ranges     map[string]procRange
	carvedFrom map[string]string
}

// proc is one spawned child; exited closes when its reaper has Waited.
type proc struct {
	cmd    *exec.Cmd
	exited chan struct{}
}

// procRange is a power-of-two aligned slice of the flowspace, in addresses
// offset from the FlowSpace base.
type procRange struct {
	base, size uint32
}

// NewProcessDriver creates a driver spawning cfg.Bin processes.
func NewProcessDriver(cfg ProcessConfig) *ProcessDriver {
	if !cfg.FlowSpace.IsValid() {
		cfg.FlowSpace = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 0, 0, 0}), 24)
	}
	if cfg.GraceTimeout <= 0 {
		cfg.GraceTimeout = 3 * time.Second
	}
	if cfg.Stderr == nil {
		cfg.Stderr = os.Stderr
	}
	return &ProcessDriver{
		cfg:        cfg,
		procs:      map[string]*proc{},
		ranges:     map[string]procRange{},
		carvedFrom: map[string]string{},
	}
}

// Spawn implements GroupDriver: exec one openmb-mb process named after the
// group and ordinal, dialing the configured controller list with reconnect
// enabled (failover across cluster nodes is the point of the list).
func (d *ProcessDriver) Spawn(group string, ordinal int) (*Member, error) {
	name := fmt.Sprintf("%s-%d", group, ordinal)
	args := []string{
		"-name", name,
		"-kind", d.cfg.Kind,
		"-controller", d.cfg.Controller,
		"-reconnect",
	}
	args = append(args, d.cfg.ExtraArgs...)
	cmd := exec.Command(d.cfg.Bin, args...)
	cmd.Stderr = d.cfg.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("elastic: exec %s: %w", d.cfg.Bin, err)
	}
	// One reaper owns the Wait (no zombies, no racing waits); Retire's
	// grace window watches the exited channel instead.
	p := &proc{cmd: cmd, exited: make(chan struct{})}
	go func() {
		_ = cmd.Wait()
		close(p.exited)
	}()
	d.mu.Lock()
	d.procs[name] = p
	d.mu.Unlock()
	return &Member{Name: name}, nil
}

// SplitMatch implements GroupDriver: halve the hot member's slice of the
// flowspace, upper half to the clone.
func (d *ProcessDriver) SplitMatch(group string, from, to *Member) packet.FieldMatch {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.ranges[from.Name]
	if !ok {
		r = procRange{0, d.flowSpaceSize()}
	}
	if r.size < 2 {
		// Unsplittable: the move matches nothing, the clone idles until
		// scale-in folds it back. Never hand out MatchAll — that would move
		// the hot member's entire flowspace to the clone.
		d.ranges[to.Name] = procRange{r.base, 0}
		d.carvedFrom[to.Name] = from.Name
		return packet.FieldMatch{SrcPrefix: d.prefixFor(procRange{r.base, 1})}
	}
	half := r.size / 2
	d.ranges[from.Name] = procRange{r.base, half}
	d.ranges[to.Name] = procRange{r.base + half, half}
	d.carvedFrom[to.Name] = from.Name
	return packet.FieldMatch{SrcPrefix: d.prefixFor(procRange{r.base + half, half})}
}

// Route implements GroupDriver: delegate to the configured steering hook.
func (d *ProcessDriver) Route(group string, members []*Member) {
	if d.cfg.Route != nil {
		d.cfg.Route(group, members)
	}
}

// Retire implements GroupDriver: fold the member's flowspace back into the
// member it was carved from, then terminate its process — SIGTERM first
// (the daemon drains), SIGKILL when the grace window lapses.
func (d *ProcessDriver) Retire(group string, m *Member) {
	d.mu.Lock()
	if r, ok := d.ranges[m.Name]; ok {
		if parent, ok := d.carvedFrom[m.Name]; ok {
			pr := d.ranges[parent]
			if pr.base+pr.size == r.base {
				d.ranges[parent] = procRange{pr.base, pr.size + r.size}
			}
		}
		delete(d.ranges, m.Name)
	}
	delete(d.carvedFrom, m.Name)
	p := d.procs[m.Name]
	delete(d.procs, m.Name)
	d.mu.Unlock()
	if p == nil || p.cmd.Process == nil {
		return
	}
	_ = p.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-p.exited:
	case <-time.After(d.cfg.GraceTimeout):
		_ = p.cmd.Process.Kill()
		<-p.exited
	}
}

// Procs reports the live child processes by member name (for tests and the
// daemon's shutdown path).
func (d *ProcessDriver) Procs() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.procs))
	for name := range d.procs {
		out = append(out, name)
	}
	return out
}

// Close retires every live child (used on daemon shutdown).
func (d *ProcessDriver) Close() {
	d.mu.Lock()
	names := make([]string, 0, len(d.procs))
	for name := range d.procs {
		names = append(names, name)
	}
	d.mu.Unlock()
	for _, name := range names {
		d.Retire("", &Member{Name: name})
	}
}

func (d *ProcessDriver) flowSpaceSize() uint32 {
	return 1 << (32 - d.cfg.FlowSpace.Bits())
}

// prefixFor maps a power-of-two aligned range onto a prefix inside the
// flowspace block.
func (d *ProcessDriver) prefixFor(r procRange) netip.Prefix {
	base := d.cfg.FlowSpace.Addr().As4()
	off := uint32(base[0])<<24 | uint32(base[1])<<16 | uint32(base[2])<<8 | uint32(base[3])
	off += r.base
	addr := netip.AddrFrom4([4]byte{byte(off >> 24), byte(off >> 16), byte(off >> 8), byte(off)})
	size := r.size
	if size == 0 {
		size = 1
	}
	return netip.PrefixFrom(addr, 32-bits.TrailingZeros32(size))
}
