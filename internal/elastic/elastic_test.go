package elastic

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced Clock; with it and a scripted source,
// every hysteresis and cooldown decision is a pure function of the test
// script — no sleeps, no real traffic.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time          { return c.t }
func (c *fakeClock) Advance(d time.Duration) { c.t = c.t.Add(d) }

// scriptSource replays a queue of samples; the last one repeats.
type scriptSource struct {
	samples []Sample
	i       int
}

func (s *scriptSource) Sample() Sample {
	if s.i < len(s.samples)-1 {
		s.i++
		return s.samples[s.i-1]
	}
	return s.samples[len(s.samples)-1]
}

func (s *scriptSource) push(sm ...Sample) { s.samples = append(s.samples, sm...) }

// call records one actuator invocation.
type call struct {
	op     Op
	group  string
	mb     string
	target int
}

// recActuator records calls and returns scripted errors.
type recActuator struct {
	calls []call
	err   error
}

func (a *recActuator) ScaleOut(group, hot string) error {
	a.calls = append(a.calls, call{op: ScaleOut, group: group, mb: hot})
	return a.err
}

func (a *recActuator) ScaleIn(group string) error {
	a.calls = append(a.calls, call{op: ScaleIn, group: group})
	return a.err
}

func (a *recActuator) Migrate(mb string, target int) error {
	a.calls = append(a.calls, call{op: Migrate, mb: mb, target: target})
	return a.err
}

func testConfig(clk Clock) Config {
	return Config{
		HighUtil:     0.5,
		HighRate:     1000,
		LowRate:      100,
		HighWindows:  2,
		LowWindows:   3,
		Cooldown:     time.Second,
		MaxInstances: 3,
		MigrateRatio: 4,
		MigrateMin:   100,
		Clock:        clk,
	}
}

// inst builds a group-member sample with the given ring fill percentage.
func inst(mb string, processed uint64, utilPct int) InstanceSample {
	return InstanceSample{
		MB: mb, Group: "g", Replica: 0,
		Processed: processed,
		QueueLen:  utilPct, QueueCap: 100,
	}
}

func sample(insts ...InstanceSample) Sample { return Sample{Instances: insts} }

// tick advances the clock then ticks, like the background loop would.
func tick(t *testing.T, clk *fakeClock, l *Loop) []Decision {
	t.Helper()
	clk.Advance(50 * time.Millisecond)
	return l.Tick()
}

// TestScaleOutHysteresis: a hot instance must stay hot HighWindows
// consecutive samples before the loop acts — the first hot sample is a
// hold, the second fires, and the action names the hot instance.
func TestScaleOutHysteresis(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(
		sample(inst("m0", 0, 0)),  // baseline, idle
		sample(inst("m0", 0, 90)), // hot window 1
		sample(inst("m0", 0, 90)), // hot window 2 -> act
	)
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	if d := tick(t, clk, l); d[0].Op != Hold {
		t.Fatalf("baseline tick: got %v, want hold", d[0].Op)
	}
	if d := tick(t, clk, l); d[0].Op != Hold {
		t.Fatalf("first hot window must hold (hysteresis), got %v", d[0].Op)
	}
	d := tick(t, clk, l)
	if d[0].Op != ScaleOut || d[0].Group != "g" || d[0].MB != "m0" {
		t.Fatalf("second hot window: got %+v, want scale-out g/m0", d[0])
	}
	if len(act.calls) != 1 || act.calls[0] != (call{op: ScaleOut, group: "g", mb: "m0"}) {
		t.Fatalf("actuator calls = %+v", act.calls)
	}
	tot := l.Totals()
	if tot.ScaleOuts != 1 || tot.Holds != 2 || tot.Errors != 0 {
		t.Fatalf("totals = %+v", tot)
	}
}

// TestCooldownSuppression: after an action the loop holds until the
// cooldown elapses even if the hot condition persists, then fires again
// once hysteresis re-accumulates.
func TestCooldownSuppression(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(inst("m0", 0, 90))) // permanently hot
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l) // hot 1 (hold: hysteresis)
	if d := tick(t, clk, l); d[0].Op != ScaleOut {
		t.Fatalf("want scale-out on second hot window, got %v", d[0].Op)
	}
	// Cooldown is 1s and ticks advance 50ms: the next many ticks must all
	// hold even though the instance stays hot and the streak passes
	// HighWindows again.
	for i := 0; i < 10; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("tick %d inside cooldown: got %v, want hold", i, d[0].Op)
		}
	}
	// Jump past the cooldown; streak is already over the threshold, so the
	// first eligible tick acts.
	clk.Advance(2 * time.Second)
	if d := l.Tick(); d[0].Op != ScaleOut {
		t.Fatalf("after cooldown: got %v, want scale-out", d[0].Op)
	}
	if got := l.Totals().ScaleOuts; got != 2 {
		t.Fatalf("scale-outs = %d, want 2", got)
	}
}

// TestScaleInWindows: a two-member group idling below LowRate for
// LowWindows consecutive samples scales in; fewer windows hold.
func TestScaleInWindows(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	// Counters frozen => rate 0 <= LowRate once a baseline exists.
	src.push(sample(inst("m0", 5000, 0), inst("m1", 5000, 0)))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l) // baseline (no prev => not cold)
	for i := 0; i < 2; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("cold window %d: got %v, want hold", i+1, d[0].Op)
		}
	}
	d := tick(t, clk, l) // cold window 3 = LowWindows
	if d[0].Op != ScaleIn || d[0].Group != "g" {
		t.Fatalf("got %+v, want scale-in g", d[0])
	}
}

// TestScaleInRespectsMinInstances: a single-member group never scales in
// no matter how cold.
func TestScaleInRespectsMinInstances(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(inst("m0", 5000, 0)))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)
	for i := 0; i < 10; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("tick %d: got %v, want hold", i, d[0].Op)
		}
	}
}

// TestScaleOutRespectsMaxInstances: a group at MaxInstances holds under
// sustained heat.
func TestScaleOutRespectsMaxInstances(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(inst("m0", 0, 90), inst("m1", 0, 90), inst("m2", 0, 90)))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)
	for i := 0; i < 6; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("tick %d: got %v, want hold (group at max size)", i, d[0].Op)
		}
	}
}

// TestDropsMarkHot: fresh ring drops mark an instance hot even with an
// empty ring and no rate signal.
func TestDropsMarkHot(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	s0 := sample(inst("m0", 0, 0))
	s1 := sample(inst("m0", 0, 0))
	s1.Instances[0].RingDrops = 7
	s2 := sample(inst("m0", 0, 0))
	s2.Instances[0].RingDrops = 14
	src.push(s0, s1, s2)
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l) // baseline
	tick(t, clk, l) // drop delta 7: hot window 1
	if d := tick(t, clk, l); d[0].Op != ScaleOut {
		t.Fatalf("got %v, want scale-out from drop deltas", d[0].Op)
	}
}

// TestRateMarksHot: packet rate at or above HighRate marks hot without any
// ring signal (QueueCap 0 = depth unknown).
func TestRateMarksHot(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	mk := func(processed uint64) Sample {
		return sample(InstanceSample{MB: "m0", Group: "g", Replica: 0, Processed: processed})
	}
	// 50ms ticks; +100 packets per tick = 2000 pps >= HighRate 1000.
	src.push(mk(0), mk(100), mk(200))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l)
	tick(t, clk, l)
	if d := tick(t, clk, l); d[0].Op != ScaleOut {
		t.Fatalf("got %v, want scale-out from rate", d[0].Op)
	}
}

// TestMigrateImbalance: one replica carrying MigrateRatio times its peers'
// control load gets its busiest instance handed to the coolest replica.
func TestMigrateImbalance(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	mk := func(frames0, frames1 uint64, proc uint64) Sample {
		return Sample{
			Instances: []InstanceSample{
				{MB: "busy", Replica: 0, Processed: proc},
				{MB: "quiet", Replica: 0, Processed: proc / 10},
				{MB: "other", Replica: 1},
			},
			Replicas: []ReplicaSample{
				{Replica: 0, ControlFrames: frames0},
				{Replica: 1, ControlFrames: frames1},
			},
		}
	}
	src.push(mk(0, 0, 0), mk(1000, 10, 500))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l) // baseline
	d := tick(t, clk, l)
	if d[0].Op != Migrate || d[0].MB != "busy" || d[0].Target != 1 {
		t.Fatalf("got %+v, want migrate busy -> replica 1", d[0])
	}
	if got := l.Totals().Migrations; got != 1 {
		t.Fatalf("migrations = %d, want 1", got)
	}
}

// TestMigrateNeedsMinLoad: the same imbalance ratio below MigrateMin
// absolute load holds — an idle cluster's rounding noise moves nothing.
func TestMigrateNeedsMinLoad(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	mk := func(frames0 uint64) Sample {
		return Sample{
			Instances: []InstanceSample{{MB: "busy", Replica: 0}},
			Replicas: []ReplicaSample{
				{Replica: 0, ControlFrames: frames0},
				{Replica: 1},
			},
		}
	}
	src.push(mk(0), mk(50)) // 50 < MigrateMin 100, ratio infinite
	act := &recActuator{}
	l := New(testConfig(clk), src, act)
	tick(t, clk, l)
	if d := tick(t, clk, l); d[0].Op != Hold {
		t.Fatalf("got %v, want hold below MigrateMin", d[0].Op)
	}
}

// TestCounterResetNoSpuriousDecision pins the torn-sample fix: a counter
// that jumps backwards (a reconnected connection or respawned instance
// restarts at zero) must difference to zero, not wrap to a huge uint64
// "rate" that triggers a spurious scale-out or migration.
func TestCounterResetNoSpuriousDecision(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	mk := func(proc, drops, frames uint64) Sample {
		s := sample(InstanceSample{MB: "m0", Group: "g", Replica: 0, Processed: proc, RingDrops: drops})
		s.Replicas = []ReplicaSample{
			{Replica: 0, ControlFrames: frames},
			{Replica: 1, ControlFrames: 0},
		}
		return s
	}
	src.push(
		mk(1_000_000, 50, 500_000), // established history
		mk(120, 0, 300),            // reconnect: every counter reset near zero
		mk(240, 0, 600),            // small real deltas after the reset
	)
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l) // baseline
	// The reset tick: naive subtraction would see ~2^64 rates and drop
	// deltas on the instance AND a massive replica imbalance.
	if d := tick(t, clk, l); d[0].Op != Hold {
		t.Fatalf("reset tick: got %+v, want hold", d[0])
	}
	// Post-reset deltas are real but tiny (120 packets / 50ms = 2400 pps is
	// above HighRate, so use the recorded ops to catch wrap explosions
	// specifically: no drops, modest rate => at most a legitimate decision,
	// never one on the reset tick itself).
	if len(act.calls) != 0 {
		t.Fatalf("reset produced actuator calls: %+v", act.calls)
	}
	if got := l.Totals().Errors; got != 0 {
		t.Fatalf("errors = %d, want 0", got)
	}
}

// TestActuatorErrorCountsAndCoolsDown: a failing action increments Errors,
// still consumes the cooldown (so a broken actuator is not hammered every
// tick), and surfaces the error on the decision.
func TestActuatorErrorCountsAndCoolsDown(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(inst("m0", 0, 90)))
	boom := errors.New("boom")
	act := &recActuator{err: boom}
	l := New(testConfig(clk), src, act)

	tick(t, clk, l)
	d := tick(t, clk, l)
	if d[0].Op != ScaleOut || !errors.Is(d[0].Err, boom) {
		t.Fatalf("got %+v, want failed scale-out", d[0])
	}
	tot := l.Totals()
	if tot.Errors != 1 || tot.ScaleOuts != 0 {
		t.Fatalf("totals = %+v, want 1 error, 0 scale-outs", tot)
	}
	for i := 0; i < 5; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("tick %d after failed action: got %v, want hold (cooldown)", i, d[0].Op)
		}
	}
}

// TestUnmanagedGroupNeverScales: instances with Group "" are migration
// candidates only; sustained heat on them produces no scale decision.
func TestUnmanagedGroupNeverScales(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(InstanceSample{MB: "m0", Replica: 0, QueueLen: 90, QueueCap: 100}))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)
	for i := 0; i < 6; i++ {
		if d := tick(t, clk, l); d[0].Op != Hold {
			t.Fatalf("tick %d: got %v, want hold for unmanaged instance", i, d[0].Op)
		}
	}
}

// TestScaleOutBeatsScaleIn: when one group is hot and another cold on the
// same tick, the single action slot goes to the scale-out.
func TestScaleOutBeatsScaleIn(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	hot := InstanceSample{MB: "h0", Group: "hotg", Replica: 0, QueueLen: 90, QueueCap: 100}
	cold0 := InstanceSample{MB: "c0", Group: "coldg", Replica: 0, QueueCap: 100}
	cold1 := InstanceSample{MB: "c1", Group: "coldg", Replica: 0, QueueCap: 100}
	src.push(Sample{Instances: []InstanceSample{cold0, cold1, hot}})
	act := &recActuator{}
	l := New(testConfig(clk), src, act)

	// Run enough ticks that both conditions are past their windows; the
	// first action must be the scale-out. (Group evaluation is sorted by
	// name, so "coldg" is seen before "hotg" — priority, not order, must
	// decide.)
	var first *Decision
	for i := 0; i < 6 && first == nil; i++ {
		d := tick(t, clk, l)
		if d[0].Op != Hold {
			first = &d[0]
		}
	}
	if first == nil || first.Op != ScaleOut || first.Group != "hotg" {
		t.Fatalf("first action = %+v, want scale-out hotg", first)
	}
}

// TestCollectEmitsCounters: the loop's obs integration reports all five
// series with the decided values.
func TestCollectEmitsCounters(t *testing.T) {
	clk := newFakeClock()
	src := &scriptSource{}
	src.push(sample(inst("m0", 0, 90)))
	act := &recActuator{}
	l := New(testConfig(clk), src, act)
	tick(t, clk, l)
	tick(t, clk, l) // scale-out

	tot := l.Totals()
	if tot.ScaleOuts != 1 || tot.Holds != 1 {
		t.Fatalf("totals = %+v", tot)
	}
}
