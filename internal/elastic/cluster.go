package elastic

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"openmb/internal/core"
	"openmb/internal/mbox"
	"openmb/internal/obs"
	"openmb/internal/packet"
)

// spawnWait bounds how long a scale-out waits for the freshly spawned
// instance to register with the cluster before giving up.
const spawnWait = 2 * time.Second

// txnSettle bounds the transaction-quiescence waits inside ScaleIn. A move's
// source-side delete is deferred background completion (it fires after the
// event quiet period); merging state back into an instance that still has a
// pending outbound delete would hand that delete the merged records to
// destroy, so scale-in refuses to re-import state until the registry drains.
const txnSettle = 15 * time.Second

// ClusterSource samples a live core.Cluster for the loop. Co-located
// middlebox runtimes registered with Register are sampled directly — their
// ingress ring via the tear-proof mbox.Runtime.RingStats and their packet
// counters via mbox.Runtime.Metrics. Middleboxes known only through their
// southbound connections (a cross-process daemon deployment) appear as
// unmanaged instances (Group "") whose Processed is the connection's
// received-frame counter: they can be migrated but never scaled, since the
// controller cannot see their ring.
type ClusterSource struct {
	cl *core.Cluster

	mu    sync.Mutex
	insts map[string]regEntry
}

type regEntry struct {
	group string
	rt    *mbox.Runtime
}

// NewClusterSource creates a source over the cluster.
func NewClusterSource(cl *core.Cluster) *ClusterSource {
	return &ClusterSource{cl: cl, insts: map[string]regEntry{}}
}

// Register makes the runtime an elastically managed instance of the group.
// Group "" registers it for direct sampling without scale management.
func (s *ClusterSource) Register(group, name string, rt *mbox.Runtime) {
	s.mu.Lock()
	s.insts[name] = regEntry{group: group, rt: rt}
	s.mu.Unlock()
}

// Deregister removes the instance from sampling (a retiring clone, or one
// whose runtime is gone).
func (s *ClusterSource) Deregister(name string) {
	s.mu.Lock()
	delete(s.insts, name)
	s.mu.Unlock()
}

// Sample implements Source.
func (s *ClusterSource) Sample() Sample {
	s.mu.Lock()
	reg := make(map[string]regEntry, len(s.insts))
	for name, e := range s.insts {
		reg[name] = e
	}
	s.mu.Unlock()

	var out Sample
	names := make([]string, 0, len(reg))
	for name := range reg {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := reg[name]
		if e.rt == nil {
			// A process-driver member: the instance lives in another OS
			// process, so there is no runtime handle to sample. It is still
			// a managed group member — its load sample comes from the
			// connection counters below.
			continue
		}
		m := e.rt.Metrics()
		rs := e.rt.RingStats()
		replica := -1
		if r, err := s.cl.ReplicaOf(name); err == nil {
			replica = r
		}
		out.Instances = append(out.Instances, InstanceSample{
			MB:        name,
			Group:     e.group,
			Replica:   replica,
			Processed: m.Processed + m.Replayed,
			RingDrops: rs.DroppedPackets + rs.DroppedReplays,
			QueueLen:  rs.Live + rs.Replay,
			QueueCap:  rs.Capacity,
		})
	}

	// Per-replica control-plane load, plus connection-only instances for
	// middleboxes with no registered runtime.
	for i := 0; i < s.cl.Replicas(); i++ {
		ctrl := s.cl.Replica(i)
		cm := ctrl.Metrics()
		rs := ReplicaSample{
			Replica: i,
			Events:  cm.EventsForwarded,
			Moves:   cm.MovesStarted,
		}
		conns := ctrl.ConnCounters()
		connNames := make([]string, 0, len(conns))
		for name := range conns {
			connNames = append(connNames, name)
		}
		sort.Strings(connNames)
		for _, name := range connNames {
			wc := conns[name]
			rs.ControlFrames += wc.Received + wc.Sent
			if e, ok := reg[name]; ok {
				if e.rt == nil {
					// Registered process-driver member, sampled here by its
					// southbound connection: Group is preserved so the loop
					// can scale it, Processed is the received-frame proxy.
					out.Instances = append(out.Instances, InstanceSample{
						MB:        name,
						Group:     e.group,
						Replica:   i,
						Processed: wc.Received,
					})
				}
				continue
			}
			out.Instances = append(out.Instances, InstanceSample{
				MB:        name,
				Replica:   i,
				Processed: wc.Received,
			})
		}
		out.Replicas = append(out.Replicas, rs)
	}
	return out
}

// Member is one instance of an elastic group as the actuator tracks it: the
// cluster-visible name plus the co-located runtime handle the driver spawned.
type Member struct {
	Name    string
	Runtime *mbox.Runtime
}

// GroupDriver supplies the deployment-specific halves of scaling that the
// cluster API cannot: creating and destroying instances and steering
// traffic. The actuator owns the state-movement choreography; the driver
// owns everything outside the southbound protocol.
type GroupDriver interface {
	// Spawn creates, connects, and returns instance #ordinal of the group.
	// The actuator waits for it to register before touching its state.
	Spawn(group string, ordinal int) (*Member, error)
	// SplitMatch chooses the flowspace slice to carve off `from` and hand
	// to the fresh `to` (e.g. half of from's prefix range).
	SplitMatch(group string, from, to *Member) packet.FieldMatch
	// Route repoints traffic across the group's current members; called
	// after state has moved, never concurrently with itself.
	Route(group string, members []*Member)
	// Retire disposes of a merged-out member (expand the survivor's range,
	// close the runtime). Its state has already moved.
	Retire(group string, m *Member)
}

// ClusterActuator executes loop decisions against a live cluster using the
// existing northbound operations: CloneSupport + MoveInternal for
// scale-out, MoveInternal + MergeInternal for scale-in, Rebalance for
// migration. A nil driver selects migrate-only mode (the daemon default,
// where no co-located runtimes exist to clone).
//
// Scale-in is LIFO: the retiring instance is always the most recently
// spawned clone and its state merges back into the member it was split
// from, so repeated scale-out/scale-in cycles retrace their own splits.
type ClusterActuator struct {
	cl  *core.Cluster
	src *ClusterSource
	drv GroupDriver

	// mu guards the membership book only; cluster operations run outside
	// it so driver callbacks may consult Members.
	mu     sync.Mutex
	groups map[string]*memberBook

	// Spawn/retire outcome counters, exported via Collect.
	spawns        atomic.Uint64
	spawnFailures atomic.Uint64
	retires       atomic.Uint64
}

type memberBook struct {
	members []*Member
	parent  map[string]string // clone name -> name it split from
	ordinal int
}

// NewClusterActuator creates an actuator. src may be nil when no sampling
// registration is wanted; drv nil means migrate-only.
func NewClusterActuator(cl *core.Cluster, src *ClusterSource, drv GroupDriver) *ClusterActuator {
	return &ClusterActuator{cl: cl, src: src, drv: drv, groups: map[string]*memberBook{}}
}

// Seed declares an already-running instance as the group's base member and
// registers it with the source. Every group needs at least one seed before
// the loop can scale it.
func (a *ClusterActuator) Seed(group string, m *Member) {
	a.mu.Lock()
	b := a.book(group)
	b.members = append(b.members, m)
	b.ordinal++
	a.mu.Unlock()
	if a.src != nil {
		a.src.Register(group, m.Name, m.Runtime)
	}
}

// Members returns the group's current members, spawn-ordered.
func (a *ClusterActuator) Members(group string) []*Member {
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.groups[group]
	if b == nil {
		return nil
	}
	return append([]*Member(nil), b.members...)
}

func (a *ClusterActuator) book(group string) *memberBook {
	b := a.groups[group]
	if b == nil {
		b = &memberBook{parent: map[string]string{}}
		a.groups[group] = b
	}
	return b
}

// ScaleOut implements Actuator: spawn a clone, copy the hot instance's
// shared supporting state, carve off part of its flowspace with a live
// per-flow move, then repoint traffic. Routing switches only after the
// move completes — during the move the hot instance keeps receiving and
// marks/forwards the moving flows, so no packet is lost or double-handled.
func (a *ClusterActuator) ScaleOut(group, hot string) error {
	if a.drv == nil {
		return fmt.Errorf("elastic: group %q: no driver (migrate-only actuator)", group)
	}
	a.mu.Lock()
	b := a.book(group)
	var hotM *Member
	for _, m := range b.members {
		if m.Name == hot {
			hotM = m
		}
	}
	ordinal := b.ordinal
	b.ordinal++
	a.mu.Unlock()
	if hotM == nil {
		return fmt.Errorf("elastic: group %q: hot instance %q is not a member", group, hot)
	}

	clone, err := a.drv.Spawn(group, ordinal)
	if err != nil {
		a.spawnFailures.Add(1)
		return fmt.Errorf("elastic: spawn %s#%d: %w", group, ordinal, err)
	}
	if err := a.cl.WaitForMB(clone.Name, spawnWait); err != nil {
		a.spawnFailures.Add(1)
		a.retire(group, clone)
		return fmt.Errorf("elastic: clone %q never registered: %w", clone.Name, err)
	}
	a.spawns.Add(1)
	if err := a.cl.CloneSupport(hot, clone.Name); err != nil {
		a.retire(group, clone)
		return fmt.Errorf("elastic: clone support %s -> %s: %w", hot, clone.Name, err)
	}
	match := a.drv.SplitMatch(group, hotM, clone)
	if err := a.cl.MoveInternal(hot, clone.Name, match); err != nil {
		a.retire(group, clone)
		return fmt.Errorf("elastic: split move %s -> %s: %w", hot, clone.Name, err)
	}

	a.mu.Lock()
	b.members = append(b.members, clone)
	b.parent[clone.Name] = hot
	members := append([]*Member(nil), b.members...)
	a.mu.Unlock()
	if a.src != nil {
		a.src.Register(group, clone.Name, clone.Runtime)
	}
	a.drv.Route(group, members)
	return nil
}

// ScaleIn implements Actuator: deroute the most recent clone, drain its
// queue, move its per-flow state back to the member it split from, merge
// its shared state, and retire it. Deroute happens first so no new packet
// races the move; the drain bounds how long in-queue packets may still
// mutate the retiring state before the move snapshots it.
func (a *ClusterActuator) ScaleIn(group string) error {
	if a.drv == nil {
		return fmt.Errorf("elastic: group %q: no driver (migrate-only actuator)", group)
	}
	a.mu.Lock()
	b := a.groups[group]
	if b == nil || len(b.members) < 2 {
		a.mu.Unlock()
		return fmt.Errorf("elastic: group %q: nothing to scale in", group)
	}
	victim := b.members[len(b.members)-1]
	survivorName := b.parent[victim.Name]
	var survivor *Member
	for _, m := range b.members {
		if m.Name == survivorName {
			survivor = m
		}
	}
	if survivor == nil {
		// LIFO discipline makes this unreachable (a clone's parent outlives
		// it), but fall back to the seed rather than wedging the group.
		survivor = b.members[0]
	}
	b.members = b.members[:len(b.members)-1]
	delete(b.parent, victim.Name)
	remaining := append([]*Member(nil), b.members...)
	a.mu.Unlock()

	if a.src != nil {
		a.src.Deregister(victim.Name)
	}
	a.drv.Route(group, remaining)
	if victim.Runtime != nil {
		victim.Runtime.Drain(spawnWait)
	}
	// Outstanding moves must finish before state flows back INTO the
	// survivor: the earlier scale-out's deferred source-side delete (issued
	// after its quiet period) would otherwise wipe the very records this
	// merge is about to return. Derouting already cut the event stream that
	// keeps those transactions alive, so this settles in ~one quiet period.
	if !a.cl.WaitTxns(txnSettle) {
		return fmt.Errorf("elastic: group %q: transactions never settled before scale-in merge", group)
	}
	if err := a.cl.MoveInternal(victim.Name, survivor.Name, packet.MatchAll); err != nil {
		return fmt.Errorf("elastic: merge move %s -> %s: %w", victim.Name, survivor.Name, err)
	}
	if err := a.cl.MergeInternal(victim.Name, survivor.Name); err != nil {
		return fmt.Errorf("elastic: merge shared %s -> %s: %w", victim.Name, survivor.Name, err)
	}
	// The merge-move's own source delete is deferred too; retire only once
	// it has landed, so the victim really is empty when the driver disposes
	// of it.
	if !a.cl.WaitTxns(txnSettle) {
		return fmt.Errorf("elastic: group %q: merge transactions never settled", group)
	}
	a.retire(group, victim)
	return nil
}

// retire counts and delegates a member disposal.
func (a *ClusterActuator) retire(group string, m *Member) {
	a.retires.Add(1)
	a.drv.Retire(group, m)
}

// Collect implements obs.Collector: spawn/retire outcomes of the actuator's
// scaling actions.
func (a *ClusterActuator) Collect(e *obs.Emitter) {
	e.Counter("openmb_elastic_spawns_total", "Group members spawned and registered by scale-outs.", a.spawns.Load())
	e.Counter("openmb_elastic_spawn_failures_total", "Spawn attempts that failed or never registered.", a.spawnFailures.Load())
	e.Counter("openmb_elastic_retires_total", "Group members retired (scale-in merges and failed-spawn cleanups).", a.retires.Load())
}

// Migrate implements Actuator: the live freeze→transfer→switch replica
// handoff.
func (a *ClusterActuator) Migrate(mb string, target int) error {
	return a.cl.Rebalance(mb, target)
}
